(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. VI), plus the mechanism experiments of Secs. IV-V, and
   runs Bechamel micro-benchmarks of the simulator itself.

   Usage:
     dune exec bench/main.exe                        -- everything, serial
     dune exec bench/main.exe -- --jobs 4 table1     -- across 4 domains
     dune exec bench/main.exe -- --json [PATH]       -- baselines JSON (v4)
     dune exec bench/main.exe -- --backend prevv64 --json
     dune exec bench/main.exe -- fig1 table1 table2 fig7 queue_states
                                  deadlock depth_sweep scalability
                                  ablation bounds micro soak

   Backend names (--backend, engine baselines of --json) are parsed by
   the scheme registry (Pv_core.Scheme.of_string), the same parser the
   CLI's --backend flag uses.

   Grid-shaped sections fan their (kernel, scheme) cells across --jobs
   worker domains (Pv_core.Parallel); workers only compute, all printing
   happens on the main domain afterwards, so output is byte-identical to a
   serial run.  --cache / --no-cache control the content-addressed result
   cache (default: on for --json, off for tables). *)

open Pv_core

(* wall clock (CLOCK_MONOTONIC via Pv_core.Clock).  Sys.time is
   per-process CPU time: under multiple domains it sums the busy time of
   every worker and is inflated by their GC, so it is wrong for any
   multi-domain measurement. *)
let now_s () = Clock.now_s ()

let line = String.make 118 '-'

let header title =
  Printf.printf "\n%s\n== %s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Fig. 1: LSQ share of resources in plain Dynamatic circuits          *)
(* ------------------------------------------------------------------ *)

let fig1 ~grid () =
  header
    "Fig. 1 — LSQ resource usage in Dynamatic: share of LUT+FF+mux spent in \
     the LSQ (paper: >80% across tasks)";
  Printf.printf "%-14s %10s %10s %10s %12s\n" "benchmark" "LSQ LUT" "LSQ FF"
    "datapath" "LSQ share";
  List.iter
    (fun row ->
      match row with
      | (p : Experiment.point) :: _ ->
          (* column 0 of the grid is the plain-LSQ Dynamatic baseline *)
          let r = p.Experiment.report in
          Printf.printf "%-14s %10d %10d %10d %11.1f%%\n" p.Experiment.kernel
            r.Pv_resource.Report.queue_luts r.Pv_resource.Report.queue_ffs
            (r.Pv_resource.Report.datapath_luts
            + r.Pv_resource.Report.datapath_ffs)
            (100.0 *. Pv_resource.Report.queue_share r)
      | [] -> assert false)
    (Lazy.force grid)

(* ------------------------------------------------------------------ *)
(* Table I: resource usage                                             *)
(* ------------------------------------------------------------------ *)

let table1 ~grid () =
  header
    "Table I — Resource usage (LUT / FF) for Dynamatic [15], fast-LSQ [8], \
     PreVV16 and PreVV64";
  Printf.printf "%-12s | %31s | %31s | %9s %9s | %9s %9s\n" "" "LUT" "FF"
    "v16/[8]" "v64/[8]" "v16/[8]" "v64/[8]";
  Printf.printf "%-12s | %7s %7s %7s %7s | %7s %7s %7s %7s | %9s %9s | %9s %9s\n"
    "benchmark" "[15]" "[8]" "v16" "v64" "[15]" "[8]" "v16" "v64" "LUT" "LUT"
    "FF" "FF";
  let l16 = ref [] and l64 = ref [] and f16 = ref [] and f64 = ref [] in
  List.iter
    (fun row ->
      match row with
      | [ p15; p8; v16; v64 ] ->
          let lut (p : Experiment.point) = p.Experiment.report.Pv_resource.Report.luts in
          let ff (p : Experiment.point) = p.Experiment.report.Pv_resource.Report.ffs in
          l16 := (float_of_int (lut v16) /. float_of_int (lut p8)) :: !l16;
          l64 := (float_of_int (lut v64) /. float_of_int (lut p8)) :: !l64;
          f16 := (float_of_int (ff v16) /. float_of_int (ff p8)) :: !f16;
          f64 := (float_of_int (ff v64) /. float_of_int (ff p8)) :: !f64;
          Printf.printf
            "%-12s | %7d %7d %7d %7d | %7d %7d %7d %7d | %8.2f%% %8.2f%% | \
             %8.2f%% %8.2f%%\n"
            p15.Experiment.kernel (lut p15) (lut p8) (lut v16) (lut v64)
            (ff p15) (ff p8) (ff v16) (ff v64)
            (Experiment.pct (lut v16) (lut p8))
            (Experiment.pct (lut v64) (lut p8))
            (Experiment.pct (ff v16) (ff p8))
            (Experiment.pct (ff v64) (ff p8))
      | _ -> assert false)
    (Lazy.force grid);
  Printf.printf
    "%-12s | %31s | %31s | %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n" "geomean" "" ""
    (100.0 *. (Experiment.geomean !l16 -. 1.0))
    (100.0 *. (Experiment.geomean !l64 -. 1.0))
    (100.0 *. (Experiment.geomean !f16 -. 1.0))
    (100.0 *. (Experiment.geomean !f64 -. 1.0));
  Printf.printf
    "(paper geomeans: LUT v16 -43.75%%, v64 -26.45%%; FF v16 -44.70%%, v64 \
     -33.54%%)\n"

(* ------------------------------------------------------------------ *)
(* Table II: timing performance                                        *)
(* ------------------------------------------------------------------ *)

let table2 ~grid () =
  header
    "Table II — Timing: cycle count, clock period (ns) and execution time \
     (us)";
  Printf.printf "%-12s | %27s | %23s | %27s | %9s %9s\n" "" "cycles"
    "CP (ns)" "exec time (us)" "v16/[8]" "v64/[8]";
  Printf.printf "%-12s | %6s %6s %6s %6s | %5s %5s %5s %5s | %6s %6s %6s %6s |\n"
    "benchmark" "[15]" "[8]" "v16" "v64" "[15]" "[8]" "v16" "v64" "[15]" "[8]"
    "v16" "v64";
  let e16 = ref [] and e64 = ref [] in
  List.iter
    (fun row ->
      match row with
      | [ p15; p8; v16; v64 ] ->
          let cyc (p : Experiment.point) = p.Experiment.cycles in
          let cp (p : Experiment.point) = p.Experiment.report.Pv_resource.Report.cp_ns in
          let ex (p : Experiment.point) = p.Experiment.exec_us in
          e16 := (ex v16 /. ex p8) :: !e16;
          e64 := (ex v64 /. ex p8) :: !e64;
          Printf.printf
            "%-12s | %6d %6d %6d %6d | %5.2f %5.2f %5.2f %5.2f | %6.2f %6.2f \
             %6.2f %6.2f | %8.2f%% %8.2f%%\n"
            p15.Experiment.kernel (cyc p15) (cyc p8) (cyc v16) (cyc v64)
            (cp p15) (cp p8) (cp v16) (cp v64) (ex p15) (ex p8) (ex v16)
            (ex v64)
            (Experiment.pctf (ex v16) (ex p8))
            (Experiment.pctf (ex v64) (ex p8))
      | _ -> assert false)
    (Lazy.force grid);
  Printf.printf "%-12s | %27s | %23s | %27s | %8.2f%% %8.2f%%\n" "geomean" ""
    "" ""
    (100.0 *. (Experiment.geomean !e16 -. 1.0))
    (100.0 *. (Experiment.geomean !e64 -. 1.0));
  Printf.printf
    "(paper: PreVV16 +10.79%% cycles; PreVV64 -2.64%% execution time vs [8])\n"

(* ------------------------------------------------------------------ *)
(* Fig. 7: resource usage normalised to Dynamatic [15]                 *)
(* ------------------------------------------------------------------ *)

let fig7 ~grid () =
  header
    "Fig. 7 — LUT (solid) and FF (dashed) normalised to Dynamatic [15]";
  Printf.printf "%-12s | %8s %8s %8s | %8s %8s %8s\n" "" "LUT[8]" "LUTv16"
    "LUTv64" "FF[8]" "FFv16" "FFv64";
  List.iter
    (fun row ->
      match row with
      | [ p15; p8; v16; v64 ] ->
          let lut (p : Experiment.point) =
            float_of_int p.Experiment.report.Pv_resource.Report.luts
          in
          let ff (p : Experiment.point) =
            float_of_int p.Experiment.report.Pv_resource.Report.ffs
          in
          Printf.printf "%-12s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f\n"
            p15.Experiment.kernel
            (lut p8 /. lut p15) (lut v16 /. lut p15) (lut v64 /. lut p15)
            (ff p8 /. ff p15) (ff v16 /. ff p15) (ff v64 /. ff p15)
      | _ -> assert false)
    (Lazy.force grid)

(* ------------------------------------------------------------------ *)
(* Fig. 4: premature queue states                                      *)
(* ------------------------------------------------------------------ *)

let queue_states () =
  header "Fig. 4 — premature queue states (normal / wrap-around / full)";
  let q = Pv_prevv.Premature_queue.create 8 in
  let push seq =
    ignore
      (Pv_prevv.Premature_queue.push_exn q ~seq ~pos:0 ~port:0
         ~kind:Pv_memory.Portmap.OStore ~index:seq ~value:seq)
  in
  let show what =
    Printf.printf "  %-30s head=%d tail=%d occ=%d state=%s\n" what
      q.Pv_prevv.Premature_queue.head q.Pv_prevv.Premature_queue.tail
      (Pv_prevv.Premature_queue.occupancy q)
      (match Pv_prevv.Premature_queue.state q with
      | `Empty -> "empty"
      | `Normal -> "normal"
      | `Wrapped -> "wrap-around"
      | `Full -> "full")
  in
  show "fresh queue";
  for s = 0 to 4 do push s done;
  show "after 5 pushes";
  Pv_prevv.Premature_queue.retire_seq q ~seq:0;
  Pv_prevv.Premature_queue.retire_seq q ~seq:1;
  Pv_prevv.Premature_queue.retire_seq q ~seq:2;
  show "after retiring 3 (head moved)";
  for s = 5 to 9 do push s done;
  show "tail wrapped past the end";
  push 10;
  show "filled to capacity";
  try push 11 with Pv_prevv.Premature_queue.Full ->
    Printf.printf "  %-30s push refused (backpressure)\n" "one more push:"

(* ------------------------------------------------------------------ *)
(* Fig. 6 / Sec. V-C: deadlock without fake tokens                     *)
(* ------------------------------------------------------------------ *)

let deadlock () =
  header
    "Fig. 6 / Sec. V-C — conditional ambiguous pair: fake tokens prevent \
     deadlock";
  let kernel = Pv_kernels.Defs.cond_update () in
  List.iter
    (fun (what, fake_tokens) ->
      let compiled =
        Pipeline.compile
          ~options:
            { Pv_frontend.Build.default_options with
              Pv_frontend.Build.fake_tokens }
          kernel
      in
      let sim_cfg =
        { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.stall_limit = 512 }
      in
      let r =
        Pipeline.simulate ~sim_cfg compiled (Pipeline.prevv ~fake_tokens 8)
      in
      Printf.printf "  %-24s -> %s (fake tokens seen: %d)\n" what
        (Format.asprintf "%a" Pv_dataflow.Sim.pp_outcome r.Pipeline.outcome)
        r.Pipeline.mem_stats.Pv_dataflow.Memif.fake_tokens)
    [ ("with fake tokens", true); ("without fake tokens", false) ]

(* ------------------------------------------------------------------ *)
(* Eqs. 6-10: premature queue depth sweep and the sizing model          *)
(* ------------------------------------------------------------------ *)

let depth_sweep ~jobs ~cache () =
  header
    "Sec. V-A — queue-depth sweep: cycles and LUTs vs Depth_q (Defs. 2-3)";
  let kernel = Pv_kernels.Defs.gaussian () in
  Printf.printf "%-8s %10s %10s %12s %10s\n" "depth" "cycles" "LUT" "stalls"
    "squashes";
  let depths = [ 4; 8; 16; 24; 32; 48; 64; 96; 128 ] in
  let cells = List.map (fun d -> (kernel, Pipeline.prevv d)) depths in
  let results = Experiment.sweep ?cache ~jobs cells in
  List.iter2
    (fun d result ->
      match result with
      | Ok (p : Experiment.point) ->
          Printf.printf "%-8d %10d %10d %12d %10d%s\n" d p.Experiment.cycles
            p.Experiment.report.Pv_resource.Report.luts
            p.Experiment.mem_stats.Pv_dataflow.Memif.stall_full
            p.Experiment.mem_stats.Pv_dataflow.Memif.squashes
            (if p.Experiment.verified then "" else "  (NOT VERIFIED)")
      | Error msg -> Printf.printf "%-8d infeasible: %s\n" d msg)
    depths results;
  let t_org = 10.0 and p_s = 0.02 and t_token = 60.0 in
  Printf.printf
    "sizing model: matched depth (Eq. 6/7, t_org=%.0f cyc, P_s=%.2f, \
     t_token=%.0f cyc) = %d\n"
    t_org p_s t_token
    (Pv_prevv.Sizing.matched_depth ~t_org ~p_s ~t_token)

(* ------------------------------------------------------------------ *)
(* Eqs. 11-12: overlap scalability                                     *)
(* ------------------------------------------------------------------ *)

let scalability () =
  header
    "Sec. V-B — overlapping pairs: naive replication (Eqs. 11-12) vs \
     dimension reduction";
  let frq1 = 150.0 in
  Printf.printf "%-10s %16s %16s %14s %12s %12s\n" "overlap n" "naive compl."
    "reduced compl." "naive MHz" "naive pairs" "red. pairs";
  List.iter
    (fun n ->
      let ops =
        List.init (2 * n) (fun k ->
            ( (if k mod 2 = 0 then Pv_memory.Portmap.OLoad
               else Pv_memory.Portmap.OStore),
              k ))
      in
      Printf.printf "%-10d %16.0f %16.0f %14.1f %12d %12d\n" n
        (Pv_prevv.Overlap.naive_complexity ~n ~com1:1.0)
        (Pv_prevv.Overlap.reduced_complexity ~n ~com1:1.0)
        (Pv_prevv.Overlap.naive_frequency ~n ~frq1)
        (Pv_prevv.Overlap.naive_pairs ops)
        (Pv_prevv.Overlap.reduced_pairs ops))
    [ 1; 2; 4; 6; 8; 12; 16 ];
  Printf.printf
    "(Eq. 11: naive cost 2^n; Eq. 12: frequency Frq_1/n at Frq_1 = %.0f MHz; \
     reduction keeps one instance per array, linear in members)\n"
    frq1

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)
(* ------------------------------------------------------------------ *)

(* every ablation job computes in a worker and returns plain data; the
   main domain prints after the fan-out, keeping output byte-identical
   whatever the worker count *)
let ablation ~jobs () =
  header "Ablations — value validation (Eq. 5), queue collapse, forwarding,           slack buffers";
  (* Eq. 5 on/off: when stores often rewrite unchanged values, comparing
     values instead of only addresses eliminates squashes *)
  Printf.printf "value validation (PreVV16):\n";
  Printf.printf "  %-16s %14s %14s %14s %14s\n" "kernel" "cycles(on)"
    "squash(on)" "cycles(off)" "squash(off)";
  let vv_rows =
    Parallel.map ~jobs
      (fun (k : Pv_kernels.Ast.kernel) ->
        let run value_validation =
          let compiled = Pipeline.compile k in
          Pipeline.simulate compiled
            (Pipeline.Prevv
               { (Pv_prevv.Backend.named ~depth:16) with
                 Pv_prevv.Backend.value_validation })
        in
        let on = run true and off = run false in
        ( k.Pv_kernels.Ast.name,
          on.Pipeline.cycles,
          on.Pipeline.mem_stats.Pv_dataflow.Memif.squashes,
          off.Pipeline.cycles,
          off.Pipeline.mem_stats.Pv_dataflow.Memif.squashes ))
      [
        Pv_kernels.Defs.running_max ();
        Pv_kernels.Defs.stencil1d ();
        Pv_kernels.Defs.triangular_tight ();
        Pv_kernels.Defs.fn_dependent ();
      ]
  in
  List.iter
    (fun (name, cyc_on, sq_on, cyc_off, sq_off) ->
      Printf.printf "  %-16s %14d %14d %14d %14d\n" name cyc_on sq_on cyc_off
        sq_off)
    vv_rows;
  (* collapsing queue on/off: without interior reclamation the queue
     fragments and the pipeline wedges *)
  Printf.printf "\ncollapsing premature queue (gaussian, PreVV16):\n";
  let collapse_rows =
    Parallel.map ~jobs
      (fun (what, collapse_queue) ->
        let compiled = Pipeline.compile (Pv_kernels.Defs.gaussian ()) in
        let sim_cfg =
          { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.stall_limit = 2000 }
        in
        let r =
          Pipeline.simulate ~sim_cfg compiled
            (Pipeline.Prevv
               { (Pv_prevv.Backend.named ~depth:16) with
                 Pv_prevv.Backend.collapse_queue })
        in
        (what, Format.asprintf "%a" Pv_dataflow.Sim.pp_outcome r.Pipeline.outcome))
      [ ("with collapse", true); ("without collapse", false) ]
  in
  List.iter
    (fun (what, outcome) -> Printf.printf "  %-22s -> %s\n" what outcome)
    collapse_rows;
  (* store-to-load forwarding in the LSQ *)
  Printf.printf "\nLSQ store-to-load forwarding (matvec, fast LSQ):\n";
  let fwd_rows =
    Parallel.map ~jobs
      (fun (what, forwarding) ->
        let compiled = Pipeline.compile (Pv_kernels.Defs.matvec ()) in
        let r =
          Pipeline.simulate compiled
            (Pipeline.Fast_lsq { Pv_lsq.Lsq.fast with Pv_lsq.Lsq.forwarding })
        in
        (what, r.Pipeline.cycles, r.Pipeline.mem_stats.Pv_dataflow.Memif.forwarded))
      [ ("with forwarding", true); ("without forwarding", false) ]
  in
  List.iter
    (fun (what, cycles, forwarded) ->
      Printf.printf "  %-22s -> %d cycles (%d forwarded)\n" what cycles forwarded)
    fwd_rows;
  (* load CSE: repeated loads share one port, shrinking the premature
     record count per iteration *)
  Printf.printf "\nload CSE (histogram, PreVV16):\n";
  let cse_rows =
    Parallel.map ~jobs
      (fun (what, cse) ->
        let options =
          { Pv_frontend.Build.default_options with Pv_frontend.Build.cse }
        in
        let compiled = Pipeline.compile ~options (Pv_kernels.Defs.histogram ()) in
        let ports =
          Array.length
            compiled.Pipeline.info.Pv_frontend.Depend.portmap.Pv_memory.Portmap.ports
        in
        let p =
          Pv_resource.Report.of_circuit compiled.Pipeline.graph
            compiled.Pipeline.info.Pv_frontend.Depend.portmap
            (Pv_netlist.Elaborate.D_prevv 16)
        in
        let r = Pipeline.simulate compiled (Pipeline.prevv 16) in
        (what, ports, p.Pv_resource.Report.luts, r.Pipeline.cycles))
      [ ("without CSE", false); ("with CSE", true) ]
  in
  List.iter
    (fun (what, ports, luts, cycles) ->
      Printf.printf "  %-22s -> %d ports, %d LUTs, %d cycles\n" what ports luts
        cycles)
    cse_rows;
  (* slack-buffer balancing *)
  Printf.printf "\nthroughput balancing (polyn_mult, PreVV16):\n";
  let bal_rows =
    Parallel.map ~jobs
      (fun (what, balance) ->
        let compiled =
          Pipeline.compile
            ~options:{ Pv_frontend.Build.default_options with Pv_frontend.Build.balance }
            (Pv_kernels.Defs.polyn_mult ())
        in
        let r = Pipeline.simulate compiled (Pipeline.prevv 16) in
        (what, r.Pipeline.cycles))
      [ ("with slack buffers", true); ("without", false) ]
  in
  List.iter
    (fun (what, cycles) -> Printf.printf "  %-22s -> %d cycles\n" what cycles)
    bal_rows

(* ------------------------------------------------------------------ *)
(* Bound chain: differential harness across every registered scheme    *)
(* ------------------------------------------------------------------ *)

let bounds_section () =
  header
    "Bound chain — oracle <= prevv <= dynamatic <= serial (differential \
     harness over every registered backend)";
  List.iter
    (fun k -> Format.printf "%a@." Differential.pp (Differential.run k))
    (Pv_kernels.Defs.paper_benchmarks ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator itself                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (simulator and analysis throughput)";
  let open Bechamel in
  let kernel = Pv_kernels.Defs.histogram () in
  let compiled = Pipeline.compile kernel in
  let tests =
    Test.make_grouped ~name:"prevv"
      [
        Test.make ~name:"compile_histogram"
          (Staged.stage (fun () -> ignore (Pipeline.compile kernel)));
        Test.make ~name:"simulate_histogram_prevv16"
          (Staged.stage (fun () ->
               ignore (Pipeline.simulate compiled (Pipeline.prevv 16))));
        Test.make ~name:"simulate_histogram_lsq"
          (Staged.stage (fun () ->
               ignore (Pipeline.simulate compiled Pipeline.fast_lsq)));
        Test.make ~name:"elaborate_netlist"
          (Staged.stage (fun () ->
               ignore
                 (Pv_netlist.Elaborate.circuit compiled.Pipeline.graph
                    compiled.Pipeline.info.Pv_frontend.Depend.portmap
                    (Pv_netlist.Elaborate.D_prevv 16))));
        Test.make ~name:"analyse_gaussian"
          (Staged.stage (fun () ->
               ignore (Pv_frontend.Depend.analyse (Pv_kernels.Defs.gaussian ()))));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "  %-40s %14.1f ns/run\n" name t
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Chaos soak: the supervised service under load, kills and faults     *)
(* ------------------------------------------------------------------ *)

(* A deterministic request stream over the paper grid: every (kernel,
   backend) cell, ~1% low-budget requests whose simulation times out
   deterministically (the "timeout fault plan"), and a seeded
   recoverable-fault slice.  Ids and ordering are fixed, so two runs of
   the same stream must produce byte-identical response streams. *)
let soak_requests n =
  let kernels =
    Array.of_list
      (List.map
         (fun (k : Pv_kernels.Ast.kernel) -> k.Pv_kernels.Ast.name)
         (Pv_kernels.Defs.paper_benchmarks ()))
  in
  let backends =
    Array.of_list (List.map Pv_core.Scheme.to_string (Experiment.paper_configs ()))
  in
  List.init n (fun i ->
      let kernel = kernels.(i * 7919 mod Array.length kernels) in
      let backend = backends.((i * 104729 / 13) mod Array.length backends) in
      let r =
        Service.request ~id:(Printf.sprintf "r%05d" i) ~kernel ~backend ()
      in
      if i mod 97 = 3 then { r with Service.max_cycles = Some 50 }
      else if i mod 131 = 7 then
        { r with Service.fault_seed = Some (1 + (i mod 3)) }
      else r)

(* feed [requests] through the service and collect the response stream *)
let run_soak ~jobs ~capacity ~kill_at requests =
  let cache = Parallel.Cache.in_memory () in
  let remaining = ref requests in
  let out = Buffer.create 4096 in
  let cfg =
    {
      Service.default_config with
      Service.jobs;
      Service.queue_capacity = capacity;
      Service.cache = Some cache;
      Service.kill_at;
    }
  in
  let summary =
    Service.run cfg
      ~next:(fun () ->
        match !remaining with
        | [] -> None
        | r :: tl ->
            remaining := tl;
            Some (Service.request_to_json r))
      ~emit:(fun l ->
        Buffer.add_string out l;
        Buffer.add_char out '\n')
  in
  (summary, Buffer.contents out)

let hit_rate (s : Service.summary) =
  let total = s.Service.cache_hits + s.Service.cache_misses in
  if total = 0 then 0.0
  else float_of_int s.Service.cache_hits /. float_of_int total

(* Returns the BENCH_sim.json "soak" object.  The main phase uses an
   unoverflowable queue so the response stream is byte-comparable to the
   serial replay (shedding depends on queue dynamics); the burst phase
   then drives a tiny queue past capacity to exercise explicit
   load-shedding. *)
let soak ~jobs ~n () =
  header
    (Printf.sprintf
       "chaos soak — %d requests through the supervised service (--jobs %d, \
        one worker kill injected)"
       n jobs);
  (* the kill target gets a unique budget so it cannot dedupe against an
     in-flight twin: it must reach a worker as its own queue item *)
  let requests =
    List.mapi
      (fun i r ->
        if i = n / 3 then { r with Service.max_cycles = Some 777 } else r)
      (soak_requests n)
  in
  let kill_at = [ n / 3 ] in
  let sp, out_parallel = run_soak ~jobs ~capacity:(2 * n) ~kill_at requests in
  let ss, out_serial = run_soak ~jobs:1 ~capacity:(2 * n) ~kill_at:[] requests in
  let identical = String.equal out_parallel out_serial in
  Printf.printf
    "parallel: %.1f req/s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, cache hit \
     rate %.3f, dedup %d, retries %d, kills %d, respawns %d, shed %d, lost: \
     %d\n"
    sp.Service.requests_per_s sp.Service.p50_ms sp.Service.p95_ms
    sp.Service.p99_ms (hit_rate sp) sp.Service.dedup_hits sp.Service.retries
    sp.Service.worker_kills sp.Service.respawns sp.Service.shed
    sp.Service.lost;
  Printf.printf "serial replay: %.1f req/s, lost: %d\n"
    ss.Service.requests_per_s ss.Service.lost;
  Printf.printf "byte-identical to serial replay: %b\n" identical;
  (* overload burst: cold cache, distinct cells, a queue of 4 — every
     request past capacity must get an explicit overloaded response *)
  let burst =
    List.init 64 (fun i ->
        let r =
          Service.request
            ~id:(Printf.sprintf "b%03d" i)
            ~kernel:"gaussian" ~backend:"prevv16" ()
        in
        { r with Service.max_cycles = Some (1000 + i) })
  in
  let sb, _ = run_soak ~jobs ~capacity:4 ~kill_at:[] burst in
  Printf.printf "overload burst (queue=4): %d requests, shed %d, lost: %d\n"
    sb.Service.received sb.Service.shed sb.Service.lost;
  let ok =
    sp.Service.lost = 0 && ss.Service.lost = 0 && sb.Service.lost = 0
    && identical
  in
  if not ok then
    Printf.eprintf "SOAK FAILURE: lost=%d/%d/%d identical=%b\n" sp.Service.lost
      ss.Service.lost sb.Service.lost identical;
  let json =
    Printf.sprintf
      "{ \"requests\": %d, \"jobs_requested\": %d, \"jobs_effective\": %d, \
       \"wall_s\": %.6f, \"requests_per_s\": %.1f, \"p50_ms\": %.4f, \
       \"p95_ms\": %.4f, \"p99_ms\": %.4f, \"cache_hit_rate\": %.4f, \
       \"dedup_hits\": %d, \
       \"retries\": %d, \"worker_kills\": %d, \"respawns\": %d, \"shed\": %d, \
       \"lost\": %d, \"identical_to_serial_replay\": %b, \"overload\": { \
       \"requests\": %d, \"shed\": %d, \"lost\": %d } }"
      sp.Service.received jobs
      (Parallel.effective_jobs jobs)
      sp.Service.wall_s sp.Service.requests_per_s sp.Service.p50_ms
      sp.Service.p95_ms sp.Service.p99_ms (hit_rate sp) sp.Service.dedup_hits
      sp.Service.retries
      sp.Service.worker_kills sp.Service.respawns sp.Service.shed
      sp.Service.lost identical sb.Service.received sb.Service.shed
      sb.Service.lost
  in
  (json, ok)

(* ------------------------------------------------------------------ *)
(* --json: machine-readable simulator baselines (BENCH_sim.json)       *)
(* ------------------------------------------------------------------ *)

(* Per-kernel cycles, wall-clock time, throughput (cycles/s) and node
   evaluations for both simulator engines across two activity regimes —
   the selected backend (default PreVV16, streaming: nearly every node
   busy every cycle, where the adaptive event engine runs dense and ties
   the scan) and the serializing bound (sparse: long memory stalls, where
   the sparse sweep skips most of the circuit) — plus each engine's
   steady-state minor-heap allocation per cycle over the allocation-free
   direct backend, the bound-chain curves of the differential harness
   (oracle / serial bracketing every ranked scheme), the serial-vs-parallel
   wall clock of the full Table I/II grid with the result-cache
   statistics, each grid cell's metric snapshot (Pv_obs.Metrics — cycles,
   fires, backend traffic, arbiter tallies), and the chaos-soak section
   (the supervised service under 10k requests, one injected worker kill
   and an overload burst), as a stable JSON document the CI archives and
   diffs against the committed baseline (schema prevv-bench-sim/v7; v7
   adds each kernel cell's arbiter_scan / pq_validate attribution shares
   from a profiled pass, the regression surface of the incremental
   arbiter-validation work). *)

let bench_json ~path ~jobs ~cache ~backend () =
  let module Sim = Pv_dataflow.Sim in
  let module Memif = Pv_dataflow.Memif in
  let dis = backend in
  let reps = 5 in
  let measure_pair compiled dis =
    (* interleaved best-of-N on the monotonic wall clock: scan and event
       alternate inside every rep so both engines sample the same
       allocator / frequency / cache state, and the ratio is not polluted
       by drift between two back-to-back measurement blocks *)
    let run engine =
      let sim_cfg = { Sim.default_config with Sim.engine } in
      let t0 = now_s () in
      let r = Pipeline.simulate ~sim_cfg compiled dis in
      (r, now_s () -. t0)
    in
    let best_s = ref infinity and best_e = ref infinity in
    let scan = ref None and event = ref None in
    for _ = 1 to reps do
      let r, dt = run Sim.Scan in
      if dt < !best_s then best_s := dt;
      scan := Some r;
      let r, dt = run Sim.Event in
      if dt < !best_e then best_e := dt;
      event := Some r
    done;
    ((Option.get !scan, !best_s), (Option.get !event, !best_e))
  in
  let allocs_per_cycle compiled engine =
    (* steady-state minor words per cycle over the allocation-free direct
       backend, so the slope isolates the simulator core; two windows of
       different length cancel the probes' own constant boxing overhead
       (same technique as test_sim_perf) *)
    let mem =
      Pv_memory.Layout.initial_memory compiled.Pipeline.layout
        compiled.Pipeline.kernel ~init:[]
    in
    let sim =
      Sim.create
        ~cfg:{ Sim.default_config with Sim.engine }
        compiled.Pipeline.graph
        (Memif.direct ~latency:2 mem)
    in
    let window n =
      let w0 = Gc.minor_words () in
      for _ = 1 to n do
        Sim.step sim
      done;
      Gc.minor_words () -. w0
    in
    for _ = 1 to 200 do
      Sim.step sim
    done;
    let d_short = window 300 in
    let d_long = window 1000 in
    (d_long -. d_short) /. 700.0
  in
  (* the two activity regimes; when serial itself is selected there is
     only one *)
  let regimes =
    if Pv_core.Scheme.to_string dis = Pv_core.Scheme.to_string Pv_core.Scheme.serial
    then [ dis ]
    else [ dis; Pv_core.Scheme.serial ]
  in
  header
    (Printf.sprintf "engine baselines (scan vs event; regimes: %s)"
       (String.concat ", " (List.map Pv_core.Scheme.to_string regimes)));
  Printf.printf "%-14s %-10s | %10s %9s | %10s %9s | %6s %6s %5s\n" "kernel"
    "backend" "scan ev" "time(s)" "event ev" "time(s)" "evr" "tr" "equiv";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"prevv-bench-sim/v7\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"backend\": %S,\n" (Pv_core.Scheme.to_string dis));
  Buffer.add_string buf
    (Printf.sprintf "  \"regime_backends\": [ %s ],\n"
       (String.concat ", "
          (List.map
             (fun d -> Printf.sprintf "%S" (Pv_core.Scheme.to_string d))
             regimes)));
  Buffer.add_string buf
    (Printf.sprintf "  \"default_engine\": %S,\n"
       (Sim.string_of_engine Sim.default_config.Sim.engine));
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf "  \"kernels\": [\n";
  let eval_ratios = ref [] and time_ratios = ref [] in
  let time_ratios_by_backend =
    List.map (fun d -> (Pv_core.Scheme.to_string d, ref [])) regimes
  in
  let kernels = Pv_kernels.Defs.paper_benchmarks () in
  let n_kernels = List.length kernels in
  let n_regimes = List.length regimes in
  List.iteri
    (fun i kernel ->
      let name = kernel.Pv_kernels.Ast.name in
      let compiled = Pipeline.compile kernel in
      let alloc_scan = allocs_per_cycle compiled Sim.Scan in
      let alloc_event = allocs_per_cycle compiled Sim.Event in
      (* attribution shares of the disambiguation hot loops under the
         selected backend, from one profiled pass (the gate for the
         incremental-validation / CAM-view regression surface) *)
      let arb_share, pqv_share =
        let prof = Pv_obs.Prof.create () in
        ignore (Pipeline.simulate ~prof compiled dis);
        let tot = float_of_int (max (Pv_obs.Prof.total prof) 1) in
        let ph = Pv_obs.Prof.phase_totals prof in
        ( float_of_int ph.(Pv_obs.Prof.phase_arbiter_scan) /. tot,
          float_of_int ph.(Pv_obs.Prof.phase_pq_validate) /. tot )
      in
      let kernel_time_ratios = ref [] in
      let cells =
        List.mapi
          (fun j regime ->
            let bname = Pv_core.Scheme.to_string regime in
            let (scan, scan_t), (event, event_t) =
              measure_pair compiled regime
            in
            let epc (r : Pipeline.result) =
              float_of_int r.Pipeline.run_stats.Sim.evals
              /. float_of_int (max r.Pipeline.cycles 1)
            in
            let side (r : Pipeline.result) dt =
              Printf.sprintf
                "{ \"cycles\": %d, \"time_s\": %.6f, \"cycles_per_s\": %.0f, \
                 \"evals\": %d, \"evals_per_cycle\": %.3f }"
                r.Pipeline.cycles dt
                (float_of_int r.Pipeline.cycles /. max dt epsilon_float)
                r.Pipeline.run_stats.Sim.evals (epc r)
            in
            let equivalent =
              scan.Pipeline.cycles = event.Pipeline.cycles
              && scan.Pipeline.run_stats.Sim.node_fires
                 = event.Pipeline.run_stats.Sim.node_fires
              && scan.Pipeline.mem = event.Pipeline.mem
            in
            let eval_ratio =
              float_of_int event.Pipeline.run_stats.Sim.evals
              /. float_of_int (max scan.Pipeline.run_stats.Sim.evals 1)
            in
            let time_ratio = event_t /. max scan_t epsilon_float in
            eval_ratios := eval_ratio :: !eval_ratios;
            time_ratios := time_ratio :: !time_ratios;
            kernel_time_ratios := time_ratio :: !kernel_time_ratios;
            (List.assoc bname time_ratios_by_backend)
            := time_ratio :: !(List.assoc bname time_ratios_by_backend);
            Printf.printf
              "%-14s %-10s | %10d %9.4f | %10d %9.4f | %6.3f %6.3f %5b\n"
              (if j = 0 then name else "") bname
              scan.Pipeline.run_stats.Sim.evals scan_t
              event.Pipeline.run_stats.Sim.evals event_t eval_ratio time_ratio
              equivalent;
            Printf.sprintf
              "        { \"backend\": %S,\n\
              \          \"scan\": %s,\n\
              \          \"event\": %s,\n\
              \          \"equivalent\": %b,\n\
              \          \"event_eval_ratio\": %.4f,\n\
              \          \"event_time_ratio\": %.4f }%s"
              bname (side scan scan_t) (side event event_t) equivalent
              eval_ratio time_ratio
              (if j = n_regimes - 1 then "" else ","))
          regimes
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kernel\": %S,\n\
           \      \"allocs_per_cycle\": { \"scan\": %.4f, \"event\": %.4f },\n\
           \      \"arbiter_scan_share\": %.4f,\n\
           \      \"pq_validate_share\": %.4f,\n\
           \      \"event_time_ratio\": %.4f,\n\
           \      \"regimes\": [\n%s\n      ] }%s\n"
           name alloc_scan alloc_event arb_share pqv_share
           (Experiment.geomean !kernel_time_ratios)
           (String.concat "\n" cells)
           (if i = n_kernels - 1 then "" else ",")))
    kernels;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_event_eval_ratio\": %.4f,\n"
       (Experiment.geomean !eval_ratios));
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_event_time_ratio\": %.4f,\n"
       (Experiment.geomean !time_ratios));
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_event_time_ratio_by_backend\": { %s },\n"
       (String.concat ", "
          (List.map
             (fun (bname, rs) ->
               Printf.sprintf "%S: %.4f" bname (Experiment.geomean !rs))
             time_ratios_by_backend)));
  (* bound curves: every registered scheme on every paper kernel, with the
     differential harness's agreement and ordering verdicts — the data
     behind the oracle/serial bracketing of Table II *)
  header "bound chain (oracle <= prevv <= dynamatic <= serial)";
  let reports =
    List.map (fun k -> Differential.run k) (Pv_kernels.Defs.paper_benchmarks ())
  in
  List.iter (fun r -> Format.printf "%a@." Differential.pp r) reports;
  let n_reports = List.length reports in
  Buffer.add_string buf "  \"bounds\": [\n";
  List.iteri
    (fun i (r : Differential.report) ->
      let schemes =
        String.concat ", "
          (List.map
             (fun (row : Differential.row) ->
               Printf.sprintf
                 "{ \"scheme\": %S, \"cycles\": %d, \"finished\": %b, \
                  \"verified\": %b }"
                 row.Differential.scheme row.Differential.cycles
                 row.Differential.finished row.Differential.verified)
             r.Differential.rows)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kernel\": %S, \"agree\": %b, \"ordering_ok\": %b, \
            \"schemes\": [ %s ] }%s\n"
           r.Differential.kernel r.Differential.agree
           r.Differential.ordering_ok schemes
           (if i = n_reports - 1 then "" else ",")))
    reports;
  Buffer.add_string buf "  ],\n";
  (* the full Table I/II grid: serial vs parallel wall clock (both
     cache-cold so the comparison is compute vs compute), then a cached
     pass whose hit count a second invocation raises to the full grid *)
  header "table1+table2 grid: serial vs parallel wall clock";
  let t0 = now_s () in
  let serial_grid = Experiment.paper_grid () in
  let wall_serial = now_s () -. t0 in
  let t0 = now_s () in
  let parallel_grid = Experiment.paper_grid ~jobs () in
  let wall_parallel = now_s () -. t0 in
  let identical = serial_grid = parallel_grid in
  let n_points = List.length (List.concat serial_grid) in
  let cached_wall, hits, misses, cache_consistent =
    match cache with
    | None -> (0.0, 0, 0, true)
    | Some cache ->
        Parallel.Cache.reset_stats cache;
        let t0 = now_s () in
        let cached_grid = Experiment.paper_grid ~cache ~jobs () in
        ( now_s () -. t0,
          Parallel.Cache.hits cache,
          Parallel.Cache.misses cache,
          cached_grid = serial_grid )
  in
  Printf.printf
    "%d points: serial %.3fs, parallel (%d jobs requested, %d effective) \
     %.3fs, speedup %.2fx, identical %b\n"
    n_points wall_serial jobs
    (Parallel.effective_jobs jobs)
    wall_parallel
    (wall_serial /. max wall_parallel epsilon_float)
    identical;
  (* an explicit request within [1, max_jobs] must be honoured exactly;
     silent divergence is the clamp bug this harness exists to catch *)
  let jobs_diverged =
    jobs <= Parallel.max_jobs && Parallel.effective_jobs jobs <> jobs
  in
  if jobs_diverged then
    Printf.eprintf
      "WARNING: jobs_effective %d diverged from jobs_requested %d\n"
      (Parallel.effective_jobs jobs)
      jobs;
  if cache <> None then
    Printf.printf "cached pass: %.3fs, %d hits / %d misses, consistent %b\n"
      cached_wall hits misses cache_consistent;
  (* per-cell metric snapshots: deterministic (engine- and jobs-invariant),
     so CI can diff this section across runs and machines *)
  let flat = List.concat serial_grid in
  let n_flat = List.length flat in
  Buffer.add_string buf "  \"grid_cells\": [\n";
  List.iteri
    (fun i (p : Experiment.point) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kernel\": %S, \"config\": %S, \"metrics\": %s }%s\n"
           p.Experiment.kernel p.Experiment.config
           (Pv_obs.Json.to_string
              (Pv_obs.Metrics.snapshot_to_json p.Experiment.metrics))
           (if i = n_flat - 1 then "" else ",")))
    flat;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"grid\": { \"points\": %d, \"jobs\": %d, \"jobs_requested\": %d, \
        \"jobs_effective\": %d, \
        \"wall_s_serial\": %.6f, \"wall_s_parallel\": %.6f, \
        \"parallel_speedup\": %.3f, \"identical_to_serial\": %b, \
        \"cache_hits\": %d, \"cache_misses\": %d, \"cache_consistent\": %b, \
        \"wall_s_cached\": %.6f },\n"
       n_points jobs jobs
       (Parallel.effective_jobs jobs)
       wall_serial wall_parallel
       (wall_serial /. max wall_parallel epsilon_float)
       identical hits misses cache_consistent cached_wall);
  let soak_json, soak_ok = soak ~jobs ~n:10_000 () in
  Buffer.add_string buf (Printf.sprintf "  \"soak\": %s\n" soak_json);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "geomean eval ratio %.3f, geomean time ratio %.3f -> wrote %s\n"
    (Experiment.geomean !eval_ratios)
    (Experiment.geomean !time_ratios)
    path;
  if jobs_diverged || not soak_ok then exit 1

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] [--cache|--no-cache] [--backend NAME] \
     [--json [PATH]] [SECTION...]";
  exit 2

let () =
  (* hand-rolled flag parsing: sections and flags may be interleaved *)
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let jobs = ref 1 in
  let json = ref None in
  let cache_flag = ref None in
  let backend = ref (Pipeline.prevv 16) in
  let sections = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ -> usage ())
    | [ "--jobs" ] -> usage ()
    | "--backend" :: b :: rest -> (
        (* one parser with the CLI: the scheme registry *)
        match Pv_core.Scheme.of_string b with
        | Ok d ->
            backend := d;
            parse rest
        | Error e ->
            prerr_endline e;
            usage ())
    | [ "--backend" ] -> usage ()
    | "--cache" :: rest ->
        cache_flag := Some true;
        parse rest
    | "--no-cache" :: rest ->
        cache_flag := Some false;
        parse rest
    | "--json" :: p :: rest when String.length p > 0 && p.[0] <> '-' ->
        json := Some p;
        parse rest
    | "--json" :: rest ->
        json := Some "BENCH_sim.json";
        parse rest
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        Printf.eprintf "unknown flag %S\n" s;
        usage ()
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse args;
  let jobs = !jobs in
  (* the result cache defaults on for --json (so a second invocation
     reports hits) and off for tables (so CI's serial-vs-parallel diff
     compares real computations) *)
  let cache_on =
    match !cache_flag with Some b -> b | None -> !json <> None
  in
  let cache =
    if cache_on then
      Some (Parallel.Cache.on_disk ~dir:(Parallel.Cache.default_dir ()) ())
    else None
  in
  match !json with
  | Some path -> bench_json ~path ~jobs ~cache ~backend:!backend ()
  | None ->
      let requested =
        match List.rev !sections with
        | _ :: _ as l -> l
        | [] ->
            [
              "fig1"; "table1"; "table2"; "fig7"; "queue_states"; "deadlock";
              "depth_sweep"; "scalability"; "ablation"; "bounds"; "micro";
            ]
      in
      (* one shared grid for the grid-based sections, computed across the
         worker pool on first use *)
      let grid = lazy (Experiment.paper_grid ?cache ~jobs ()) in
      List.iter
        (fun name ->
          match name with
          | "fig1" -> fig1 ~grid ()
          | "table1" -> table1 ~grid ()
          | "table2" -> table2 ~grid ()
          | "fig7" -> fig7 ~grid ()
          | "queue_states" -> queue_states ()
          | "deadlock" -> deadlock ()
          | "depth_sweep" -> depth_sweep ~jobs ~cache ()
          | "scalability" -> scalability ()
          | "ablation" -> ablation ~jobs ()
          | "bounds" -> bounds_section ()
          | "micro" -> micro ()
          | "soak" ->
              let _, ok = soak ~jobs ~n:10_000 () in
              if not ok then exit 1
          | s -> Printf.eprintf "unknown section %S\n" s)
        requested
