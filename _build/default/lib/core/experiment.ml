(** One evaluation point: a kernel under a disambiguation scheme, with
    cycle count (simulated), area and clock period (modelled), and
    execution time — one cell group of Tables I and II. *)

type point = {
  kernel : string;
  config : string;
  cycles : int;
  report : Pv_resource.Report.t;
  exec_us : float;
  mem_stats : Pv_dataflow.Memif.stats;
  verified : bool;  (** final memory matched the reference interpreter *)
}

let elaboration_of (dis : Pipeline.disambiguation) :
    Pv_netlist.Elaborate.disambiguation =
  match dis with
  | Pipeline.Plain_lsq cfg ->
      Pv_netlist.Elaborate.D_plain_lsq cfg.Pv_lsq.Lsq.lq_depth
  | Pipeline.Fast_lsq cfg ->
      Pv_netlist.Elaborate.D_fast_lsq cfg.Pv_lsq.Lsq.lq_depth
  | Pipeline.Prevv cfg ->
      (* area model is calibrated in paper-named depth units *)
      Pv_netlist.Elaborate.D_prevv
        (cfg.Pv_prevv.Backend.depth_q / Pv_prevv.Backend.depth_scale)

(** Run one (kernel, scheme) point: compile, simulate, verify, elaborate. *)
let run ?sim_cfg ?init (kernel : Pv_kernels.Ast.kernel)
    (dis : Pipeline.disambiguation) : point =
  let compiled = Pipeline.compile kernel in
  let result = Pipeline.simulate ?sim_cfg ?init compiled dis in
  let verified =
    match result.Pipeline.outcome with
    | Pv_dataflow.Sim.Finished _ -> Pipeline.verify ?init compiled result = []
    | _ -> false
  in
  let report =
    Pv_resource.Report.of_circuit compiled.Pipeline.graph
      compiled.Pipeline.info.Pv_frontend.Depend.portmap (elaboration_of dis)
  in
  {
    kernel = kernel.Pv_kernels.Ast.name;
    config = Pipeline.name_of dis;
    cycles = result.Pipeline.cycles;
    report;
    exec_us =
      Pv_resource.Timing.exec_time_us ~cycles:result.Pipeline.cycles
        ~cp_ns:report.Pv_resource.Report.cp_ns;
    mem_stats = result.Pipeline.mem_stats;
    verified;
  }

(** The paper's four evaluated configurations, in table-column order. *)
let paper_configs () =
  [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16; Pipeline.prevv 64 ]

(** Run the full grid for the paper's five kernels (Tables I & II). *)
let paper_grid ?sim_cfg () : point list list =
  List.map
    (fun kernel -> List.map (run ?sim_cfg kernel) (paper_configs ()))
    (Pv_kernels.Defs.paper_benchmarks ())

let pct a b = 100.0 *. (float_of_int a /. float_of_int b -. 1.0)
let pctf a b = 100.0 *. ((a /. b) -. 1.0)

let geomean ratios =
  exp (List.fold_left (fun acc r -> acc +. log r) 0.0 ratios
       /. float_of_int (List.length ratios))
