(** One evaluation point: a kernel under a disambiguation scheme, with
    cycle count (simulated), area and clock period (modelled), and
    execution time — one cell group of Tables I and II. *)

type point = {
  kernel : string;
  config : string;
  cycles : int;
  report : Pv_resource.Report.t;
  exec_us : float;
  mem_stats : Pv_dataflow.Memif.stats;
  verified : bool;  (** final memory matched the reference interpreter *)
}

(** Map a simulation scheme to the area model's configuration (paper-unit
    depths). *)
val elaboration_of :
  Pipeline.disambiguation -> Pv_netlist.Elaborate.disambiguation

(** Run one (kernel, scheme) point: compile, simulate, verify, elaborate.
    @raise Invalid_argument for infeasible configurations (e.g. a queue
    depth below one iteration's operation count). *)
val run :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  Pv_kernels.Ast.kernel ->
  Pipeline.disambiguation ->
  point

(** The paper's four evaluated configurations, in table-column order:
    [15], [8], PreVV16, PreVV64. *)
val paper_configs : unit -> Pipeline.disambiguation list

(** The full grid for the paper's five kernels (Tables I & II): one row
    per kernel, one point per configuration. *)
val paper_grid : ?sim_cfg:Pv_dataflow.Sim.config -> unit -> point list list

(** Percentage delta [100 * (a/b - 1)], integer and float versions. *)
val pct : int -> int -> float

val pctf : float -> float -> float

(** Geometric mean of a non-empty list of ratios. *)
val geomean : float list -> float
