lib/core/pipeline.ml: Format List Printf Pv_dataflow Pv_frontend Pv_kernels Pv_lsq Pv_memory Pv_prevv Stdlib
