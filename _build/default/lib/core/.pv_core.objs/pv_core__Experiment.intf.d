lib/core/experiment.mli: Pipeline Pv_dataflow Pv_kernels Pv_netlist Pv_resource
