lib/core/experiment.ml: List Pipeline Pv_dataflow Pv_frontend Pv_kernels Pv_lsq Pv_netlist Pv_prevv Pv_resource
