(** Construction of elastic dataflow graphs.

    A graph is a set of nodes connected by single-slot channels; elasticity
    (pipelining capacity) comes from explicit {!Types.Buffer} nodes,
    exactly as in real dataflow circuits where channels are wire pairs and
    storage is a component. *)

(** One end of a channel: a node and a slot index on that node. *)
type endpoint = { node : Types.node_id; slot : int }

type channel = {
  cid : Types.chan_id;
  src : endpoint;
  dst : endpoint;
  width : int;  (** data width in bits, used by the resource model *)
}

type node = {
  nid : Types.node_id;
  kind : Types.kind;
  label : string;  (** human-readable name for reports and DOT/VCD output *)
  mutable inputs : Types.chan_id array;  (** index = input slot; -1 = unwired *)
  mutable outputs : Types.chan_id array;
}

(** A finalized, immutable graph. *)
type t

(** Mutable construction state. *)
type builder

val create : unit -> builder

(** [add ?label b kind] appends a node and returns its id.  Ids are dense
    and assigned in creation order. *)
val add : ?label:string -> builder -> Types.kind -> Types.node_id

(** [connect b (src, out_slot) (dst, in_slot)] wires a new channel.
    @raise Invalid_argument on out-of-range slots or double wiring. *)
val connect :
  ?width:int -> builder -> Types.node_id * int -> Types.node_id * int -> unit

(** Convenience: interpose an opaque buffer between the two endpoints. *)
val connect_buffered :
  ?width:int ->
  ?slots:int ->
  builder ->
  Types.node_id * int ->
  Types.node_id * int ->
  unit

val finalize : builder -> t
val n_nodes : t -> int
val n_chans : t -> int
val node : t -> Types.node_id -> node
val chan : t -> Types.chan_id -> channel
val iter_nodes : (node -> unit) -> t -> unit
val iter_chans : (channel -> unit) -> t -> unit

(** Count of nodes matching a predicate; used by reports and tests. *)
val count_nodes : (node -> bool) -> t -> int
