(** Structural validation of a finalized graph.

    Two properties are enforced before simulation:
    - every declared input/output slot of every node is wired;
    - every directed cycle of the graph passes through an opaque buffer
      (otherwise the combinational handshake of a cycle would not
      converge — a combinational loop). *)

type error =
  | Unwired of { node : Types.node_id; label : string; dir : string; slot : int }
  | Combinational_cycle of Types.node_id list
      (** one representative path around the offending cycle *)

val pp_error : Format.formatter -> error -> unit

exception Invalid of error

(** All structural errors of the graph, in stable order. *)
val errors : Graph.t -> error list

(** @raise Invalid with the first error, if any. *)
val validate_exn : Graph.t -> unit
