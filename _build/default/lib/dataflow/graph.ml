(** Construction of elastic dataflow graphs.

    A graph is a set of nodes connected by single-slot channels; elasticity
    (pipelining capacity) comes from explicit {!Types.Buffer} nodes, exactly
    as in real dataflow circuits where every channel is a wire pair and
    storage is a component. *)

open Types

type endpoint = { node : node_id; slot : int }

type channel = {
  cid : chan_id;
  src : endpoint;
  dst : endpoint;
  width : int;  (** data width in bits, used by the resource model *)
}

type node = {
  nid : node_id;
  kind : kind;
  label : string;
  mutable inputs : chan_id array;  (** index = input slot; -1 = unwired *)
  mutable outputs : chan_id array;
}

type t = {
  nodes : node array;
  chans : channel array;
}

type builder = {
  mutable b_nodes : node list;  (** reverse order *)
  mutable b_chans : channel list;
  mutable n_count : int;
  mutable c_count : int;
}

let create () = { b_nodes = []; b_chans = []; n_count = 0; c_count = 0 }

let add ?label b kind =
  let n_in, n_out = kind_arity kind in
  let nid = b.n_count in
  let label = match label with Some l -> l | None -> kind_name kind in
  let node =
    {
      nid;
      kind;
      label;
      inputs = Array.make n_in (-1);
      outputs = Array.make n_out (-1);
    }
  in
  b.n_count <- nid + 1;
  b.b_nodes <- node :: b.b_nodes;
  nid

let node_of b nid = List.find (fun n -> n.nid = nid) b.b_nodes

let connect ?(width = 32) b (src, sslot) (dst, dslot) =
  let sn = node_of b src and dn = node_of b dst in
  if sslot >= Array.length sn.outputs then
    invalid_arg
      (Printf.sprintf "connect: node %d (%s) has no output slot %d" src
         sn.label sslot);
  if dslot >= Array.length dn.inputs then
    invalid_arg
      (Printf.sprintf "connect: node %d (%s) has no input slot %d" dst
         dn.label dslot);
  if sn.outputs.(sslot) <> -1 then
    invalid_arg
      (Printf.sprintf "connect: output %d of node %d (%s) already wired" sslot
         src sn.label);
  if dn.inputs.(dslot) <> -1 then
    invalid_arg
      (Printf.sprintf "connect: input %d of node %d (%s) already wired" dslot
         dst dn.label);
  let cid = b.c_count in
  b.c_count <- cid + 1;
  let chan =
    { cid; src = { node = src; slot = sslot }; dst = { node = dst; slot = dslot }; width }
  in
  b.b_chans <- chan :: b.b_chans;
  sn.outputs.(sslot) <- cid;
  dn.inputs.(dslot) <- cid

(** Convenience: interpose an opaque buffer on the way from [src] to [dst]. *)
let connect_buffered ?(width = 32) ?(slots = 1) b (src, sslot) (dst, dslot) =
  let buf = add b (Buffer { transparent = false; slots }) in
  connect ~width b (src, sslot) (buf, 0);
  connect ~width b (buf, 0) (dst, dslot)

let finalize b : t =
  let ntbl = Hashtbl.create 64 and ctbl = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace ntbl n.nid n) b.b_nodes;
  List.iter (fun c -> Hashtbl.replace ctbl c.cid c) b.b_chans;
  {
    nodes = Array.init b.n_count (Hashtbl.find ntbl);
    chans = Array.init b.c_count (Hashtbl.find ctbl);
  }

let n_nodes g = Array.length g.nodes
let n_chans g = Array.length g.chans
let node g nid = g.nodes.(nid)
let chan g cid = g.chans.(cid)

let iter_nodes f g = Array.iter f g.nodes
let iter_chans f g = Array.iter f g.chans

(** Count of nodes matching a predicate; used by reports and tests. *)
let count_nodes p g =
  Array.fold_left (fun acc n -> if p n then acc + 1 else acc) 0 g.nodes
