(** Graphviz export of a dataflow graph, for debugging and documentation. *)

val to_channel : out_channel -> Graph.t -> unit
val to_string : Graph.t -> string
val to_file : string -> Graph.t -> unit
