(** Structural validation of a finalized graph.

    Two properties are enforced before simulation:
    - every declared input/output slot of every node is wired;
    - every directed cycle of the graph passes through an opaque buffer
      (otherwise the combinational fixed-point of a cycle would not
      converge — the circuit would have a combinational loop). *)

open Types

type error =
  | Unwired of { node : node_id; label : string; dir : string; slot : int }
  | Combinational_cycle of node_id list

let pp_error ppf = function
  | Unwired { node; label; dir; slot } ->
      Format.fprintf ppf "node %d (%s): %s slot %d is unwired" node label dir
        slot
  | Combinational_cycle path ->
      Format.fprintf ppf "combinational cycle through nodes %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
           Format.pp_print_int)
        path

exception Invalid of error

let errors (g : Graph.t) : error list =
  let errs = ref [] in
  Graph.iter_nodes
    (fun n ->
      Array.iteri
        (fun slot c ->
          if c = -1 then
            errs :=
              Unwired { node = n.Graph.nid; label = n.Graph.label; dir = "input"; slot }
              :: !errs)
        n.Graph.inputs;
      Array.iteri
        (fun slot c ->
          if c = -1 then
            errs :=
              Unwired { node = n.Graph.nid; label = n.Graph.label; dir = "output"; slot }
              :: !errs)
        n.Graph.outputs)
    g;
  (* cycle detection over the graph with opaque buffers removed *)
  let n = Graph.n_nodes g in
  let breaks_path node =
    match (Graph.node g node).Graph.kind with
    | Buffer { transparent = false; _ } -> true
    | _ -> false
  in
  let succs nid =
    let node = Graph.node g nid in
    Array.to_list node.Graph.outputs
    |> List.filter_map (fun cid ->
           if cid = -1 then None
           else
             let c = Graph.chan g cid in
             let d = c.Graph.dst.Graph.node in
             if breaks_path d then None else Some d)
  in
  (* colours: 0 = white, 1 = grey, 2 = black *)
  let colour = Array.make n 0 in
  let cycle = ref None in
  let rec dfs path nid =
    if !cycle = None then
      match colour.(nid) with
      | 1 -> cycle := Some (List.rev (nid :: path))
      | 2 -> ()
      | _ ->
          colour.(nid) <- 1;
          List.iter (dfs (nid :: path)) (succs nid);
          colour.(nid) <- 2
  in
  for i = 0 to n - 1 do
    if colour.(i) = 0 && not (breaks_path i) then dfs [] i
  done;
  (match !cycle with
  | Some path -> errs := Combinational_cycle path :: !errs
  | None -> ());
  List.rev !errs

let validate_exn g =
  match errors g with [] -> () | e :: _ -> raise (Invalid e)
