lib/dataflow/types.mli: Format
