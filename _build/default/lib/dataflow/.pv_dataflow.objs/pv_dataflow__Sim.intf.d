lib/dataflow/sim.mli: Format Graph Memif Queue Types
