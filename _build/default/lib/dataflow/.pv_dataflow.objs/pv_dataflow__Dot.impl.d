lib/dataflow/dot.ml: Buffer Fun Graph Printf Types
