lib/dataflow/vcd.mli: Graph Memif Sim
