lib/dataflow/check.ml: Array Format Graph List Types
