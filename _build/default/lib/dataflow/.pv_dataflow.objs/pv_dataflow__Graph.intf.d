lib/dataflow/graph.mli: Types
