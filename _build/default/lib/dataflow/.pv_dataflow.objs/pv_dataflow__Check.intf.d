lib/dataflow/check.mli: Format Graph Types
