lib/dataflow/sim.ml: Array Check Format Graph List Memif Printf Queue Types
