lib/dataflow/types.ml: Format
