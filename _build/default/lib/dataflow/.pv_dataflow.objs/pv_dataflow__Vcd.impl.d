lib/dataflow/vcd.ml: Array Bytes Char Fun Graph Memif Option Printf Sim String Types
