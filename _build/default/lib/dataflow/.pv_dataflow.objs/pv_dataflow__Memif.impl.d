lib/dataflow/memif.ml: Array Format Hashtbl
