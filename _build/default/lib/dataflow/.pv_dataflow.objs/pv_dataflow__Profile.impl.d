lib/dataflow/profile.ml: Array Format Graph List Memif Printf Sim Types
