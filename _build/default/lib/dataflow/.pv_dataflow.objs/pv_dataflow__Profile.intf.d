lib/dataflow/profile.mli: Format Graph Memif Sim Types
