lib/dataflow/memif.mli: Format
