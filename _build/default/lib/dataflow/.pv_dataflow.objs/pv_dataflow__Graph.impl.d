lib/dataflow/graph.ml: Array Hashtbl List Printf Types
