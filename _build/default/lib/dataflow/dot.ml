(** Graphviz export of a dataflow graph, mainly for debugging and docs. *)

let shape_of kind =
  match kind with
  | Types.Gen _ -> "house"
  | Types.Load _ | Types.Store _ -> "box3d"
  | Types.Buffer _ -> "box"
  | Types.Branch | Types.Mux _ | Types.Merge _ -> "trapezium"
  | Types.Fork _ | Types.Join _ -> "triangle"
  | _ -> "ellipse"

let to_channel oc (g : Graph.t) =
  output_string oc "digraph dataflow {\n  rankdir=TB;\n";
  Graph.iter_nodes
    (fun n ->
      Printf.fprintf oc "  n%d [label=\"%s#%d\" shape=%s];\n" n.Graph.nid
        n.Graph.label n.Graph.nid (shape_of n.Graph.kind))
    g;
  Graph.iter_chans
    (fun c ->
      Printf.fprintf oc "  n%d -> n%d [label=\"w%d\"];\n" c.Graph.src.Graph.node
        c.Graph.dst.Graph.node c.Graph.width)
    g;
  output_string oc "}\n"

let to_string g =
  let buf = Buffer.create 1024 in
  let oc = Buffer.add_string buf in
  oc "digraph dataflow {\n  rankdir=TB;\n";
  Graph.iter_nodes
    (fun n ->
      oc
        (Printf.sprintf "  n%d [label=\"%s#%d\" shape=%s];\n" n.Graph.nid
           n.Graph.label n.Graph.nid (shape_of n.Graph.kind)))
    g;
  Graph.iter_chans
    (fun c ->
      oc
        (Printf.sprintf "  n%d -> n%d [label=\"w%d\"];\n" c.Graph.src.Graph.node
           c.Graph.dst.Graph.node c.Graph.width))
    g;
  oc "}\n";
  Buffer.contents buf

let to_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc g)
