(** Throughput balancing: slack-buffer insertion on reconvergent paths.

    An elastic circuit only sustains II = 1 if, at every join, the shorter
    of two reconvergent paths has enough token capacity to absorb the skew
    of the longer one; otherwise the upstream fork stalls.  Dynamatic runs
    a buffer-placement optimisation for exactly this reason; this is the
    standard longest-path variant: compute each node's depth from the
    generator and give every lagging input of a multi-input node a FIFO
    sized to the skew. *)

(** Topological order of a DAG.
    @raise Invalid_argument when the graph has a cycle. *)
val topo_order : Pv_dataflow.Graph.t -> int list

(** Buffer sizes per channel needed for II = 1; [0] = no buffer.  The
    latency model matches {!Pv_dataflow.Sim}'s unless [op_latency]
    overrides it. *)
val plan :
  ?op_latency:(Pv_dataflow.Types.binop -> int) -> Pv_dataflow.Graph.t -> int array

(** Rebuild the graph with a slack FIFO spliced into every channel the plan
    sizes above zero; original node ids are preserved. *)
val insert_buffers : Pv_dataflow.Graph.t -> int array -> Pv_dataflow.Graph.t

(** [plan] + [insert_buffers]; returns the graph unchanged when no slack is
    needed. *)
val apply :
  ?op_latency:(Pv_dataflow.Types.binop -> int) ->
  Pv_dataflow.Graph.t ->
  Pv_dataflow.Graph.t
