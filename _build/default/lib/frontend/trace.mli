(** Loop-nest trace: the schedule the generator component walks.

    A dataflow circuit's chain of control merges and branches computes the
    program-order succession of basic-block instances at run time; since
    the kernels' loop bounds are compile-time expressions over parameters
    and outer induction variables, that succession is a pure function of
    the instance number and can be tabulated.  The table parameterises the
    rewindable {!Pv_dataflow.Types.Gen} node — the single point a PreVV
    squash rewinds. *)

exception Data_dependent_bound of Pv_kernels.Ast.expr

type t = {
  rows : int array array;
      (** [rows.(seq)] = [| leaf_id; iv_0; ... |]: the leaf id followed by
          its induction variables (outermost first), zero-padded to
          [arity - 1] *)
  arity : int;  (** generator output count: 1 (leaf id) + max loop depth *)
}

(** Tabulate the trace.
    @raise Data_dependent_bound when a loop bound reads an array. *)
val of_kernel : Pv_kernels.Ast.kernel -> Depend.info -> t

val length : t -> int

(** The generator specification driving the circuit. *)
val gen_spec : t -> Pv_dataflow.Types.gen_spec
