(** Optional kernel-level optimisations, the kind LLVM would run before
    Dynamatic sees the code.  Both preserve interpreter semantics exactly;
    both are off by default so the paper reproduction measures the
    unoptimised circuits. *)

(** Fold arithmetic over literals and parameters (including the [x*1],
    [x+0], [x*0] identities).  The parameter list is retained but no
    reference to it survives in the body. *)
val constant_fold : Pv_kernels.Ast.kernel -> Pv_kernels.Ast.kernel

(** Duplicated loads within one leaf statement, as (array, index,
    occurrences >= 2).  The rewrite itself happens in {!Build} (the
    mini-language has no scalar bindings): with its [cse] option set,
    duplicated loads share one port whose value is forked. *)
val duplicate_loads :
  Pv_kernels.Ast.stmt -> (string * Pv_kernels.Ast.expr * int) list

(** Total removable loads across the kernel. *)
val cse_opportunity : Pv_kernels.Ast.kernel -> int
