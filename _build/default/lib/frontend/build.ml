(** Elaboration of a kernel into an elastic dataflow circuit.

    The circuit follows the Dynamatic construction adapted to PreVV-style
    replay: a rewindable loop-nest generator (the fused chain of control
    merges/branches) dispatches body-instance tokens to one gated datapath
    per leaf statement; each datapath is a DAG of functional units, forks
    and memory ports, with a small FIFO in front of every ambiguous port
    (the decoupling FIFO of Fig. 3).  Conditional leaves route their
    tokens through branches and notify the disambiguation backend of
    untaken paths through {!Pv_dataflow.Types.Skip} nodes — the fake
    tokens of Sec. V-C (omitted when [fake_tokens] is false, which
    reproduces the Fig. 6 deadlock).

    Multiplications by compile-time constants are strength-reduced to
    {!Pv_dataflow.Types.Mulc}; with [cse] on, repeated loads of the same
    address within a leaf collapse to one port whose value is forked (see
    {!Optimize}). *)

open Pv_kernels
open Pv_dataflow

type options = {
  fifo_slots : int;  (** FIFO depth in front of ambiguous memory ports *)
  fake_tokens : bool;  (** wire Skip nodes for conditional pair members *)
  balance : bool;  (** slack-buffer insertion for II=1 (see {!Balance}) *)
  cse : bool;  (** deduplicate repeated loads per leaf (see {!Optimize}) *)
}

let default_options =
  { fifo_slots = 4; fake_tokens = true; balance = true; cse = false }

(* --- token supplies ------------------------------------------------------ *)

type supply = { s_name : string; mutable avail : (int * int) list }

let take s =
  match s.avail with
  | e :: rest ->
      s.avail <- rest;
      e
  | [] -> failwith (Printf.sprintf "Build: supply %s exhausted" s.s_name)

(* Fan a source endpoint out into [n] usable endpoints (0 = discard). *)
let make_supply b name src n : supply =
  if n = 0 then begin
    let s = Graph.add b Types.Sink in
    Graph.connect b src (s, 0);
    { s_name = name; avail = [] }
  end
  else if n = 1 then { s_name = name; avail = [ src ] }
  else begin
    let f = Graph.add ~label:("fork_" ^ name) b (Types.Fork n) in
    Graph.connect b src (f, 0);
    { s_name = name; avail = List.init n (fun i -> (f, i)) }
  end

(* --- use counting (must mirror [compile_expr] exactly) ------------------- *)

type counts = {
  c_vars : (string, int) Hashtbl.t;
  mutable c_ctrl : int;  (** constants: literals, params, array bases *)
  mutable c_guard_dups : int;
      (** CSE reuses of an unconditional load inside a branch: each costs
          one condition token (its guard) but no ctrl/var token *)
}

let fresh_counts () =
  { c_vars = Hashtbl.create 8; c_ctrl = 0; c_guard_dups = 0 }

let bump_var c v =
  Hashtbl.replace c.c_vars v
    (1 + Option.value ~default:0 (Hashtbl.find_opt c.c_vars v))

let rec count_expr ~params ~cse ~seen ~scope c (e : Ast.expr) =
  match e with
  | Ast.Int _ -> c.c_ctrl <- c.c_ctrl + 1
  | Ast.Var v ->
      if List.mem_assoc v params then c.c_ctrl <- c.c_ctrl + 1 else bump_var c v
  | Ast.Un (_, x) -> count_expr ~params ~cse ~seen ~scope c x
  | Ast.Bin (_, x, y) ->
      count_expr ~params ~cse ~seen ~scope c x;
      count_expr ~params ~cse ~seen ~scope c y
  | Ast.Idx (a, ix) ->
      if not cse then begin
        count_expr ~params ~cse ~seen ~scope c ix;
        c.c_ctrl <- c.c_ctrl + 1 (* base-address constant *)
      end
      else begin
        match Depend.cse_lookup ~seen ~scope a ix with
        | `Fresh _ ->
            count_expr ~params ~cse ~seen ~scope c ix;
            c.c_ctrl <- c.c_ctrl + 1
        | `Dup (kscope, _, _) ->
            if kscope = Depend.Sc_uncond && scope <> Depend.Sc_uncond then
              c.c_guard_dups <- c.c_guard_dups + 1
      end

let count_store ~params ~cse ~seen ~scope c (ix, value) =
  count_expr ~params ~cse ~seen ~scope c ix;
  count_expr ~params ~cse ~seen ~scope c value;
  (* the store's own base-address constant *)
  c.c_ctrl <- c.c_ctrl + 1

let takes_of c = c.c_ctrl + Hashtbl.fold (fun _ n acc -> acc + n) c.c_vars 0

(* CSE fan-out: how many occurrences resolve to each key across the leaf.
   The traversal order matches the compile order exactly, so the resolved
   keys agree. *)
let load_uses ~cse (stmt : Ast.stmt) : (Depend.cse_key, int) Hashtbl.t =
  let uses = Hashtbl.create 8 in
  if cse then begin
    let seen = Hashtbl.create 8 in
    let bump key =
      Hashtbl.replace uses key
        (1 + Option.value ~default:0 (Hashtbl.find_opt uses key))
    in
    let rec expr ~scope (e : Ast.expr) =
      match e with
      | Ast.Int _ | Ast.Var _ -> ()
      | Ast.Un (_, x) -> expr ~scope x
      | Ast.Bin (_, x, y) ->
          expr ~scope x;
          expr ~scope y
      | Ast.Idx (a, ix) -> (
          match Depend.cse_lookup ~seen ~scope a ix with
          | `Fresh key ->
              expr ~scope ix;
              bump key
          | `Dup key -> bump key)
    in
    let stmts ~scope =
      List.iter (fun s ->
          match s with
          | Ast.Store (_, ix, v) ->
              expr ~scope ix;
              expr ~scope v
          | _ -> invalid_arg "Build: conditional bodies may contain only stores")
    in
    match stmt with
    | Ast.Store (_, ix, v) ->
        expr ~scope:Depend.Sc_uncond ix;
        expr ~scope:Depend.Sc_uncond v
    | Ast.If (c, t, e) ->
        expr ~scope:Depend.Sc_uncond c;
        stmts ~scope:Depend.Sc_then t;
        stmts ~scope:Depend.Sc_else e
    | Ast.For _ -> invalid_arg "Build: leaf cannot be a loop"
  end;
  uses

(* Conditional ambiguous ports of a leaf whose port ids start at
   [port_base] — the ops that need a skip structure. *)
let skip_ports ~pm ~port_base (leaf : Depend.leaf_info) =
  List.mapi (fun i (o : Depend.op) -> (port_base + i, o)) leaf.Depend.ops
  |> List.filter (fun (pid, (o : Depend.op)) ->
         o.Depend.op_conditional && Pv_memory.Portmap.is_ambiguous pm pid)
  |> List.map fst

(* --- compilation context -------------------------------------------------- *)

type ctx = {
  b : Graph.builder;
  layout : Pv_memory.Layout.t;
  params : (string * int) list;
  pm : Pv_memory.Portmap.t;
  opts : options;
  vars : (string, supply) Hashtbl.t;
  ctrl : supply;
  port_base : int;  (** first port id of this leaf *)
  mutable next_port : int;
  mutable alloc_log : int list;  (** ports allocated by this leaf, latest first *)
  (* conditional-branch compilation: every token source is wrapped in a
     branch steered by a copy of the condition *)
  guard : (ctx -> int * int -> int * int) option;
  scope : Depend.cse_scope;
  cse_seen : (Depend.cse_key, unit) Hashtbl.t;
  cse_supply : (Depend.cse_key, supply) Hashtbl.t;
  cse_uses : (Depend.cse_key, int) Hashtbl.t;
}

let alloc_port ctx ~kind ~array =
  let id = ctx.next_port in
  ctx.next_port <- id + 1;
  ctx.alloc_log <- id :: ctx.alloc_log;
  let p = Pv_memory.Portmap.port ctx.pm id in
  if p.Pv_memory.Portmap.kind <> kind || p.Pv_memory.Portmap.array <> array then
    failwith
      (Printf.sprintf
         "Build: port %d enumeration mismatch (compiling %s %s, analysis said \
          %s %s)"
         id
         (match kind with Pv_memory.Portmap.OLoad -> "load" | _ -> "store")
         array
         (match p.Pv_memory.Portmap.kind with
         | Pv_memory.Portmap.OLoad -> "load"
         | _ -> "store")
         p.Pv_memory.Portmap.array);
  id

let apply_guard ctx ep =
  match ctx.guard with Some g -> g ctx ep | None -> ep

(* A constant token: consumes one (guarded) control token. *)
let const_node ctx n =
  let ep = apply_guard ctx (take ctx.ctrl) in
  let c = Graph.add ctx.b (Types.Const n) in
  Graph.connect ctx.b ep (c, 0);
  (c, 0)

(* FIFO in front of an ambiguous port (Fig. 3). *)
let fifo ctx src =
  let buf =
    Graph.add ~label:"fifo" ctx.b
      (Types.Buffer { transparent = true; slots = ctx.opts.fifo_slots })
  in
  Graph.connect ctx.b src (buf, 0);
  (buf, 0)

let rec compile_expr ctx (e : Ast.expr) : int * int =
  match e with
  | Ast.Int n -> const_node ctx n
  | Ast.Var v -> (
      match List.assoc_opt v ctx.params with
      | Some n -> const_node ctx n
      | None -> (
          match Hashtbl.find_opt ctx.vars v with
          | Some s -> apply_guard ctx (take s)
          | None -> failwith (Printf.sprintf "Build: unbound variable %s" v)))
  | Ast.Un (u, x) ->
      let ep = compile_expr ctx x in
      let n = Graph.add ctx.b (Types.Unop u) in
      Graph.connect ctx.b ep (n, 0);
      (n, 0)
  | Ast.Bin (op, x, y) ->
      let ex = compile_expr ctx x in
      let ey = compile_expr ctx y in
      let is_const = function
        | Ast.Int _ -> true
        | Ast.Var v -> List.mem_assoc v ctx.params
        | _ -> false
      in
      let op =
        (* strength-reduce multiplication by a compile-time constant *)
        if op = Types.Mul && (is_const x || is_const y) then Types.Mulc else op
      in
      let n = Graph.add ctx.b (Types.Binop op) in
      Graph.connect ctx.b ex (n, 0);
      Graph.connect ctx.b ey (n, 1);
      (n, 0)
  | Ast.Idx (a, ix) ->
      if not ctx.opts.cse then compile_load ctx a ix
      else begin
        match Depend.cse_lookup ~seen:ctx.cse_seen ~scope:ctx.scope a ix with
        | `Fresh key ->
            let ep = compile_load ctx a ix in
            let uses =
              Option.value ~default:1 (Hashtbl.find_opt ctx.cse_uses key)
            in
            if uses <= 1 then ep
            else begin
              let f = Graph.add ~label:("cse_" ^ a) ctx.b (Types.Fork uses) in
              Graph.connect ctx.b ep (f, 0);
              let supply =
                { s_name = "cse_" ^ a; avail = List.init uses (fun i -> (f, i)) }
              in
              Hashtbl.replace ctx.cse_supply key supply;
              take supply
            end
        | `Dup ((kscope, _, _) as key) -> (
            match Hashtbl.find_opt ctx.cse_supply key with
            | Some supply ->
                let ep = take supply in
                (* an unconditional load reused inside a branch passes
                   through the branch's guard; same-scope reuses are
                   already gated by the load's own (guarded) inputs *)
                if kscope = Depend.Sc_uncond && ctx.scope <> Depend.Sc_uncond
                then apply_guard ctx ep
                else ep
            | None -> failwith "Build: CSE supply missing (pass mismatch)")
      end

and compile_load ctx a ix =
  let addr = compile_addr ctx a ix in
  let port = alloc_port ctx ~kind:Pv_memory.Portmap.OLoad ~array:a in
  let load = Graph.add ~label:("load_" ^ a) ctx.b (Types.Load { port }) in
  let addr =
    if Pv_memory.Portmap.is_ambiguous ctx.pm port then fifo ctx addr else addr
  in
  Graph.connect ctx.b addr (load, 0);
  (load, 0)

and compile_addr ctx a ix =
  let ep = compile_expr ctx ix in
  let base = const_node ctx (Pv_memory.Layout.base ctx.layout a) in
  let add = Graph.add ~label:("addr_" ^ a) ctx.b (Types.Binop Types.Add) in
  Graph.connect ctx.b ep (add, 0);
  Graph.connect ctx.b base (add, 1);
  (add, 0)

let compile_store ctx (a, ix, value) =
  let addr = compile_addr ctx a ix in
  let data = compile_expr ctx value in
  let port = alloc_port ctx ~kind:Pv_memory.Portmap.OStore ~array:a in
  let st = Graph.add ~label:("store_" ^ a) ctx.b (Types.Store { port }) in
  let ambiguous = Pv_memory.Portmap.is_ambiguous ctx.pm port in
  let addr = if ambiguous then fifo ctx addr else addr in
  let data = if ambiguous then fifo ctx data else data in
  Graph.connect ctx.b addr (st, 0);
  Graph.connect ctx.b data (st, 1)

(* Guard for conditional branches: Branch output 0 is the taken side.
   [flip] selects the else-branch (pass when the condition is false). *)
let branch_guard ~flip cond_supply ctx ep =
  let cond = take cond_supply in
  let br = Graph.add ~label:"guard" ctx.b Types.Branch in
  Graph.connect ctx.b ep (br, 0);
  Graph.connect ctx.b cond (br, 1);
  let pass, drop = if flip then (1, 0) else (0, 1) in
  let sink = Graph.add ctx.b Types.Sink in
  Graph.connect ctx.b (br, drop) (sink, 0);
  (br, pass)

(* Conditional ambiguous ports must notify the backend on the untaken path
   (fake tokens, Sec. V-C).  [flip] mirrors the branch side. *)
let add_skip ~flip ctx cond_supply port =
  let data = take ctx.ctrl in
  let cond = take cond_supply in
  let br = Graph.add ~label:"skip_route" ctx.b Types.Branch in
  Graph.connect ctx.b data (br, 0);
  Graph.connect ctx.b cond (br, 1);
  let on_taken, on_untaken = if flip then (1, 0) else (0, 1) in
  let sink = Graph.add ctx.b Types.Sink in
  Graph.connect ctx.b (br, on_taken) (sink, 0);
  if ctx.opts.fake_tokens then begin
    let sk = Graph.add ctx.b (Types.Skip { port }) in
    Graph.connect ctx.b (br, on_untaken) (sk, 0)
  end
  else begin
    let sink2 = Graph.add ctx.b Types.Sink in
    Graph.connect ctx.b (br, on_untaken) (sink2, 0)
  end

let compile_leaf ctx (leaf : Depend.leaf_info) =
  match leaf.Depend.stmt with
  | Ast.Store (a, ix, value) -> compile_store ctx (a, ix, value)
  | Ast.If (cexpr, tstmts, estmts) ->
      let cond_ep = compile_expr ctx cexpr in
      (* size the condition fork: every guarded token source in either
         branch plus one per skip structure.  The counting walk shares one
         CSE [seen] table seeded by the condition, mirroring compilation. *)
      let count_seen = Hashtbl.create 8 in
      let cond_counts = fresh_counts () in
      count_expr ~params:ctx.params ~cse:ctx.opts.cse ~seen:count_seen
        ~scope:Depend.Sc_uncond cond_counts cexpr;
      let branch_takes ~scope stmts =
        let c = fresh_counts () in
        List.iter
          (fun s ->
            match s with
            | Ast.Store (_, ix, value) ->
                count_store ~params:ctx.params ~cse:ctx.opts.cse ~seen:count_seen
                  ~scope c (ix, value)
            | _ -> invalid_arg "Build: conditional bodies may contain only stores")
          stmts;
        takes_of c + c.c_guard_dups
      in
      let t_takes = branch_takes ~scope:Depend.Sc_then tstmts in
      let e_takes = branch_takes ~scope:Depend.Sc_else estmts in
      let skips = skip_ports ~pm:ctx.pm ~port_base:ctx.port_base leaf in
      let n_cond = t_takes + e_takes + List.length skips in
      let cond_supply = make_supply ctx.b "cond" cond_ep n_cond in
      let snapshot = ctx.alloc_log in
      let tctx =
        { ctx with
          guard = Some (branch_guard ~flip:false cond_supply);
          scope = Depend.Sc_then }
      in
      List.iter
        (fun s ->
          match s with
          | Ast.Store (a, ix, value) -> compile_store tctx (a, ix, value)
          | _ -> assert false)
        tstmts;
      ctx.next_port <- tctx.next_port;
      ctx.alloc_log <- tctx.alloc_log;
      let after_then = ctx.alloc_log in
      let ectx =
        { ctx with
          guard = Some (branch_guard ~flip:true cond_supply);
          scope = Depend.Sc_else }
      in
      List.iter
        (fun s ->
          match s with
          | Ast.Store (a, ix, value) -> compile_store ectx (a, ix, value)
          | _ -> assert false)
        estmts;
      ctx.next_port <- ectx.next_port;
      ctx.alloc_log <- ectx.alloc_log;
      (* ports allocated by each branch, from the allocation log (the lists
         share their tails, so physical-equality cutting is exact) *)
      let allocated newer older =
        let rec go acc l =
          if l == older then acc
          else match l with [] -> acc | x :: r -> go (x :: acc) r
        in
        go [] newer
      in
      let conditional = List.filter (fun p -> List.mem p skips) in
      let t_ports = conditional (allocated after_then snapshot) in
      let e_ports = conditional (allocated ctx.alloc_log after_then) in
      List.iter (add_skip ~flip:false ctx cond_supply) t_ports;
      List.iter (add_skip ~flip:true ctx cond_supply) e_ports
  | Ast.For _ -> invalid_arg "Build: leaf cannot be a loop"

(* Total control-token uses of a leaf (mirrors compile order): all ctrl
   consumers in the statement plus one per skip structure. *)
let leaf_counts ~params ~cse (leaf : Depend.leaf_info) ~pm ~port_base =
  let c = fresh_counts () in
  let seen = Hashtbl.create 8 in
  (match leaf.Depend.stmt with
  | Ast.Store (_, ix, value) ->
      count_store ~params ~cse ~seen ~scope:Depend.Sc_uncond c (ix, value)
  | Ast.If (cexpr, tstmts, estmts) ->
      count_expr ~params ~cse ~seen ~scope:Depend.Sc_uncond c cexpr;
      let count_branch ~scope stmts =
        List.iter
          (fun s ->
            match s with
            | Ast.Store (_, ix, value) ->
                count_store ~params ~cse ~seen ~scope c (ix, value)
            | _ -> invalid_arg "Build: conditional bodies may contain only stores")
          stmts
      in
      count_branch ~scope:Depend.Sc_then tstmts;
      count_branch ~scope:Depend.Sc_else estmts;
      (* one control token per skip structure *)
      c.c_ctrl <- c.c_ctrl + List.length (skip_ports ~pm ~port_base leaf)
  | Ast.For _ -> invalid_arg "Build: leaf cannot be a loop");
  c

(** Build the full circuit for [k].  Returns the graph; the generator node
    embeds the trace. *)
let circuit ?(options = default_options) (k : Ast.kernel) (info : Depend.info)
    (layout : Pv_memory.Layout.t) (trace : Trace.t) : Graph.t =
  let b = Graph.create () in
  let arity = trace.Trace.arity in
  let gen = Graph.add ~label:"loopnest" b (Types.Gen (Trace.gen_spec trace)) in
  let leaves = info.Depend.leaves in
  let n_leaves = List.length leaves in
  (* fan each generator output out to every leaf gate *)
  let leaf_inputs =
    Array.init arity (fun kslot ->
        if n_leaves = 1 then Array.make 1 (gen, kslot)
        else begin
          let f = Graph.add ~label:"dispatch" b (Types.Fork n_leaves) in
          Graph.connect b (gen, kslot) (f, 0);
          Array.init n_leaves (fun j -> (f, j))
        end)
  in
  (* precompute port bases per leaf (analysis order) *)
  let port_bases =
    let next = ref 0 in
    List.map
      (fun leaf ->
        let base = !next in
        next := base + List.length leaf.Depend.ops;
        base)
      leaves
  in
  List.iteri
    (fun li leaf ->
      let port_base = List.nth port_bases li in
      let counts =
        leaf_counts ~params:k.Ast.params ~cse:options.cse leaf
          ~pm:info.Depend.portmap ~port_base
      in
      (* gate: match the statement id *)
      let fsid = Graph.add ~label:"gate_sid" b (Types.Fork 3) in
      Graph.connect b leaf_inputs.(0).(li) (fsid, 0);
      let cnode = Graph.add b (Types.Const leaf.Depend.leaf_id) in
      Graph.connect b (fsid, 0) (cnode, 0);
      let eq = Graph.add ~label:"gate_eq" b (Types.Binop Types.Eq) in
      Graph.connect b (fsid, 1) (eq, 0);
      Graph.connect b (cnode, 0) (eq, 1);
      let n_gates = arity - 1 + 1 in
      let feq = Graph.add ~label:"gate_cond" b (Types.Fork n_gates) in
      Graph.connect b (eq, 0) (feq, 0);
      let vars = Hashtbl.create 8 in
      (* induction-variable channels *)
      for kslot = 1 to arity - 1 do
        let br = Graph.add ~label:"gate_iv" b Types.Branch in
        Graph.connect b leaf_inputs.(kslot).(li) (br, 0);
        Graph.connect b (feq, kslot - 1) (br, 1);
        let sink = Graph.add b Types.Sink in
        Graph.connect b (br, 1) (sink, 0);
        let var = List.nth_opt leaf.Depend.loop_vars (kslot - 1) in
        match var with
        | Some v ->
            let uses = Option.value ~default:0 (Hashtbl.find_opt counts.c_vars v) in
            Hashtbl.replace vars v (make_supply b ("var_" ^ v) (br, 0) uses)
        | None ->
            let s2 = Graph.add b Types.Sink in
            Graph.connect b (br, 0) (s2, 0)
      done;
      (* control-token channel *)
      let brc = Graph.add ~label:"gate_ctrl" b Types.Branch in
      Graph.connect b (fsid, 2) (brc, 0);
      Graph.connect b (feq, n_gates - 1) (brc, 1);
      let sinkc = Graph.add b Types.Sink in
      Graph.connect b (brc, 1) (sinkc, 0);
      let ctrl = make_supply b "ctrl" (brc, 0) counts.c_ctrl in
      let ctx =
        {
          b;
          layout;
          params = k.Ast.params;
          pm = info.Depend.portmap;
          opts = options;
          vars;
          ctrl;
          port_base;
          next_port = port_base;
          alloc_log = [];
          guard = None;
          scope = Depend.Sc_uncond;
          cse_seen = Hashtbl.create 8;
          cse_supply = Hashtbl.create 8;
          cse_uses = load_uses ~cse:options.cse leaf.Depend.stmt;
        }
      in
      compile_leaf ctx leaf;
      assert (ctx.next_port = port_base + List.length leaf.Depend.ops);
      assert (ctrl.avail = []);
      Hashtbl.iter
        (fun v s ->
          if s.avail <> [] then
            failwith (Printf.sprintf "Build: leftover supply for %s" v))
        vars;
      Hashtbl.iter
        (fun _ s ->
          if s.avail <> [] then failwith "Build: leftover CSE supply")
        ctx.cse_supply)
    leaves;
  let g = Graph.finalize b in
  if options.balance then Balance.apply g else g
