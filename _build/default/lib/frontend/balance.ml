(** Throughput balancing: slack-buffer insertion on reconvergent paths.

    An elastic circuit only sustains II = 1 if, at every join, the shorter
    of two reconvergent paths has enough token capacity to absorb the skew
    of the longer one; otherwise the upstream fork stalls.  Dynamatic runs
    a buffer-placement optimisation for exactly this reason (cf. Xu &
    Josipović, FPGA'24); we implement the standard longest-path variant:
    compute each node's depth from the generator and give every lagging
    input of a multi-input node a FIFO sized to the skew. *)

open Pv_dataflow

(* Nominal per-node latency for depth computation: one cycle for the channel
   register plus internal pipeline stages. *)
let latency_of ?(op_latency = Sim.default_latency) (n : Graph.node) =
  match n.Graph.kind with
  | Types.Binop op -> 1 + op_latency op
  | Types.Load _ -> 1 + 2
  | Types.Buffer _ -> 1
  | _ -> 1

(* Topological order of a DAG (builds produce DAGs: the generator is the
   only source and there are no back edges). *)
let topo_order (g : Graph.t) : int list =
  let n = Graph.n_nodes g in
  let indeg = Array.make n 0 in
  Graph.iter_chans
    (fun c -> indeg.(c.Graph.dst.Graph.node) <- indeg.(c.Graph.dst.Graph.node) + 1)
    g;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    Array.iter
      (fun cid ->
        if cid <> -1 then begin
          let v = (Graph.chan g cid).Graph.dst.Graph.node in
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue
        end)
      (Graph.node g u).Graph.outputs
  done;
  if List.length !order <> n then
    invalid_arg "Balance: graph has a cycle; balancing requires a DAG";
  List.rev !order

(** Buffer sizes per channel needed for II=1: [slots.(cid) = 0] means no
    buffer. *)
let plan ?op_latency (g : Graph.t) : int array =
  let order = topo_order g in
  let depth = Array.make (Graph.n_nodes g) 0 in
  List.iter
    (fun nid ->
      let node = Graph.node g nid in
      let inmax =
        Array.fold_left
          (fun acc cid ->
            if cid = -1 then acc
            else max acc depth.((Graph.chan g cid).Graph.src.Graph.node))
          0 node.Graph.inputs
      in
      depth.(nid) <- inmax + latency_of ?op_latency node)
    order;
  let slots = Array.make (Graph.n_chans g) 0 in
  Graph.iter_nodes
    (fun node ->
      if Array.length node.Graph.inputs >= 2 then begin
        let target =
          Array.fold_left
            (fun acc cid ->
              if cid = -1 then acc
              else max acc depth.((Graph.chan g cid).Graph.src.Graph.node))
            0 node.Graph.inputs
        in
        Array.iter
          (fun cid ->
            if cid <> -1 then begin
              let d = target - depth.((Graph.chan g cid).Graph.src.Graph.node) in
              if d > 0 then slots.(cid) <- d + 1
            end)
          node.Graph.inputs
      end)
    g;
  slots

(** Rebuild [g] with a slack FIFO spliced into every channel that the plan
    sizes above zero.  Node ids of original nodes are preserved. *)
let insert_buffers (g : Graph.t) (slots : int array) : Graph.t =
  let b = Graph.create () in
  Graph.iter_nodes
    (fun n -> ignore (Graph.add ~label:n.Graph.label b n.Graph.kind))
    g;
  Graph.iter_chans
    (fun c ->
      let src = (c.Graph.src.Graph.node, c.Graph.src.Graph.slot) in
      let dst = (c.Graph.dst.Graph.node, c.Graph.dst.Graph.slot) in
      if slots.(c.Graph.cid) > 0 then begin
        let buf =
          Graph.add ~label:"slack" b
            (Types.Buffer { transparent = true; slots = slots.(c.Graph.cid) })
        in
        Graph.connect ~width:c.Graph.width b src (buf, 0);
        Graph.connect ~width:c.Graph.width b (buf, 0) dst
      end
      else Graph.connect ~width:c.Graph.width b src dst)
    g;
  Graph.finalize b

let apply ?op_latency (g : Graph.t) : Graph.t =
  let slots = plan ?op_latency g in
  if Array.for_all (fun s -> s = 0) slots then g else insert_buffers g slots
