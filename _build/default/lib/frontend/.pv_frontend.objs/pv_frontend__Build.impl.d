lib/frontend/build.ml: Array Ast Balance Depend Graph Hashtbl List Option Printf Pv_dataflow Pv_kernels Pv_memory Trace Types
