lib/frontend/build.mli: Depend Pv_dataflow Pv_kernels Pv_memory Trace
