lib/frontend/trace.mli: Depend Pv_dataflow Pv_kernels
