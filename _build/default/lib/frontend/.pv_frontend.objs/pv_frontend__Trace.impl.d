lib/frontend/trace.ml: Array Ast Depend Interp List Pv_dataflow Pv_kernels
