lib/frontend/balance.mli: Pv_dataflow
