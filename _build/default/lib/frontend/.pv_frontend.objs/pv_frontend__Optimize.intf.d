lib/frontend/optimize.mli: Pv_kernels
