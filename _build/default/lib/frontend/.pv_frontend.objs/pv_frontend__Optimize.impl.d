lib/frontend/optimize.ml: Ast List Pv_dataflow Pv_kernels
