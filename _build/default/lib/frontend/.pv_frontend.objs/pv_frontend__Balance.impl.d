lib/frontend/balance.ml: Array Graph List Pv_dataflow Queue Sim Types
