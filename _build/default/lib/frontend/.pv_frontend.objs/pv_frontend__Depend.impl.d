lib/frontend/depend.ml: Array Ast Hashtbl List Option Pv_dataflow Pv_kernels Pv_memory String
