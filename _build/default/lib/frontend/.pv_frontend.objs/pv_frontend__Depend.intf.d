lib/frontend/depend.mli: Hashtbl Pv_kernels Pv_memory
