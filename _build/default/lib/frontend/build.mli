(** Elaboration of a kernel into an elastic dataflow circuit.

    The circuit follows the Dynamatic construction adapted to PreVV-style
    replay: a rewindable loop-nest generator dispatches body-instance
    tokens to one gated datapath per leaf statement; each datapath is a
    DAG of functional units, forks and memory ports, with a small FIFO in
    front of every ambiguous port (the decoupling FIFO of Fig. 3).
    Conditional leaves route their tokens through branches and notify the
    backend of untaken paths through {!Pv_dataflow.Types.Skip} nodes — the
    fake tokens of Sec. V-C.  Multiplications by compile-time constants
    are strength-reduced to {!Pv_dataflow.Types.Mulc}. *)

type options = {
  fifo_slots : int;  (** FIFO depth in front of ambiguous memory ports *)
  fake_tokens : bool;
      (** wire Skip nodes for conditional pair members; [false] reproduces
          the Fig. 6 deadlock *)
  balance : bool;  (** slack-buffer insertion for II = 1 (see {!Balance}) *)
  cse : bool;
      (** deduplicate syntactically repeated loads per leaf, forking the
          loaded value instead (see {!Optimize}); the analysis must run
          with the same setting *)
}

val default_options : options

(** Build the circuit.  Ports are allocated in the analysis' program
    order; the construction asserts agreement with [info]'s port map. *)
val circuit :
  ?options:options ->
  Pv_kernels.Ast.kernel ->
  Depend.info ->
  Pv_memory.Layout.t ->
  Trace.t ->
  Pv_dataflow.Graph.t
