(** Dependence analysis: finding ambiguous pairs (Def. 1) and building the
    port map.

    This plays the role of the polyhedral analysis the paper borrows from
    Polly: every static memory access becomes a numbered port; arrays that
    are stored to anywhere in the kernel cannot be proven conflict-free at
    compile time (their index expressions are either reused across
    iterations or data-dependent), so all their accesses are {e ambiguous}
    and get a disambiguation instance.  Load-only arrays use direct memory
    ports, as Dynamatic does for provably independent accesses.

    The module also classifies index expressions as affine or indirect
    (Fig. 2a vs 2b shapes) — used for reporting and by the sizing model. *)

open Pv_kernels

(** Leaf statements: the unit the loop-nest generator dispatches on (one
    group per leaf, in the group-allocator sense). *)
type node =
  | Leaf of int * Ast.stmt  (** leaf id = group id *)
  | Loop of { var : string; lo : Ast.expr; hi : Ast.expr; body : node list }

type op = {
  op_kind : Pv_memory.Portmap.op_kind;
  op_array : string;
  op_index : Ast.expr;
  op_conditional : bool;
}

type leaf_info = {
  leaf_id : int;
  loop_vars : string list;  (** outermost first *)
  stmt : Ast.stmt;
  ops : op list;  (** program order; ports are assigned in this order *)
}

type pair_class = Affine | Indirect

type info = {
  nodes : node list;  (** annotated kernel body *)
  leaves : leaf_info list;
  portmap : Pv_memory.Portmap.t;
  ambiguous_arrays : (string * pair_class) list;
      (** one disambiguation instance per entry, in instance-id order *)
  max_loop_depth : int;
}

(* --- leaf extraction ----------------------------------------------------- *)

let annotate (body : Ast.stmt list) : node list * (int * string list * Ast.stmt) list
    =
  let next = ref 0 in
  let leaves = ref [] in
  let rec go vars stmt =
    match stmt with
    | Ast.For { var; lo; hi; body } ->
        Loop { var; lo; hi; body = List.map (go (vars @ [ var ])) body }
    | Ast.Store _ | Ast.If _ ->
        let id = !next in
        incr next;
        leaves := (id, vars, stmt) :: !leaves;
        Leaf (id, stmt)
  in
  let nodes = List.map (go []) body in
  (nodes, List.rev !leaves)

(* --- program-order operation enumeration -------------------------------- *)

(* CSE scoping: loads may be shared within one conditional scope of a leaf
   (unconditional / then / else), and a branch may reuse an unconditional
   load — the guard branches always consume, so the shared fork never
   starves.  Sharing between the two branches would starve the untaken
   side and deadlock. *)
type cse_scope = Sc_uncond | Sc_then | Sc_else

type cse_key = cse_scope * string * Ast.expr

(* The resolved CSE key of a load: an earlier unconditional occurrence wins
   over a branch-scoped one.  Registers the key on its first occurrence. *)
let cse_lookup ~(seen : (cse_key, unit) Hashtbl.t) ~scope a ix :
    [ `Fresh of cse_key | `Dup of cse_key ] =
  let in_uncond = Hashtbl.mem seen (Sc_uncond, a, ix) in
  let key =
    if scope <> Sc_uncond && in_uncond then (Sc_uncond, a, ix)
    else (scope, a, ix)
  in
  if Hashtbl.mem seen key then `Dup key
  else begin
    Hashtbl.replace seen key ();
    `Fresh key
  end

(* Loads of an expression in post-order (operands before their operator,
   inner index loads before the enclosing access), matching exactly the
   order in which Build compiles them.  With [cse], duplicated loads are
   dropped (Build reuses the first occurrence's value). *)
let rec expr_ops ~cse ~seen ~scope ~conditional acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ -> acc
  | Ast.Un (_, x) -> expr_ops ~cse ~seen ~scope ~conditional acc x
  | Ast.Bin (_, x, y) ->
      expr_ops ~cse ~seen ~scope ~conditional
        (expr_ops ~cse ~seen ~scope ~conditional acc x)
        y
  | Ast.Idx (a, ix) ->
      let acc = expr_ops ~cse ~seen ~scope ~conditional acc ix in
      let fresh =
        (not cse) || match cse_lookup ~seen ~scope a ix with `Fresh _ -> true | `Dup _ -> false
      in
      if fresh then
        {
          op_kind = Pv_memory.Portmap.OLoad;
          op_array = a;
          op_index = ix;
          op_conditional = conditional;
        }
        :: acc
      else acc

let store_ops ~cse ~seen ~scope ~conditional acc (a, ix, value) =
  let acc = expr_ops ~cse ~seen ~scope ~conditional acc ix in
  let acc = expr_ops ~cse ~seen ~scope ~conditional acc value in
  {
    op_kind = Pv_memory.Portmap.OStore;
    op_array = a;
    op_index = ix;
    op_conditional = conditional;
  }
  :: acc

let leaf_ops ?(cse = false) (stmt : Ast.stmt) : op list =
  let seen = Hashtbl.create 8 in
  let branch_ops ~scope acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Ast.Store (a, ix, value) ->
            store_ops ~cse ~seen ~scope ~conditional:true acc (a, ix, value)
        | Ast.If _ | Ast.For _ ->
            invalid_arg "leaf_ops: conditional bodies may contain only stores")
      acc stmts
  in
  match stmt with
  | Ast.Store (a, ix, value) ->
      List.rev
        (store_ops ~cse ~seen ~scope:Sc_uncond ~conditional:false []
           (a, ix, value))
  | Ast.If (c, t, e) ->
      let acc = expr_ops ~cse ~seen ~scope:Sc_uncond ~conditional:false [] c in
      let acc = branch_ops ~scope:Sc_then acc t in
      let acc = branch_ops ~scope:Sc_else acc e in
      List.rev acc
  | Ast.For _ -> invalid_arg "leaf_ops: not a leaf"

(* --- affine classification ----------------------------------------------- *)

type affine = { coeffs : (string * int) list; const : int }

let affine_add a b =
  let keys =
    List.sort_uniq compare (List.map fst a.coeffs @ List.map fst b.coeffs)
  in
  {
    coeffs =
      List.filter_map
        (fun k ->
          let c =
            (match List.assoc_opt k a.coeffs with Some c -> c | None -> 0)
            + match List.assoc_opt k b.coeffs with Some c -> c | None -> 0
          in
          if c = 0 then None else Some (k, c))
        keys;
    const = a.const + b.const;
  }

let affine_scale s a =
  { coeffs = List.filter_map (fun (k, c) -> if s * c = 0 then None else Some (k, s * c)) a.coeffs;
    const = s * a.const }

(** Affine form of an index expression over the loop variables, with kernel
    parameters substituted; [None] when the expression is non-affine (e.g.
    contains an array access — the Fig. 2(b) shape). *)
let rec affine_of ~params (e : Ast.expr) : affine option =
  match e with
  | Ast.Int n -> Some { coeffs = []; const = n }
  | Ast.Var v -> (
      match List.assoc_opt v params with
      | Some n -> Some { coeffs = []; const = n }
      | None -> Some { coeffs = [ (v, 1) ]; const = 0 })
  | Ast.Un (Pv_dataflow.Types.Neg, x) ->
      Option.map (affine_scale (-1)) (affine_of ~params x)
  | Ast.Un (_, _) -> None
  | Ast.Idx (_, _) -> None
  | Ast.Bin (Pv_dataflow.Types.Add, x, y) -> (
      match (affine_of ~params x, affine_of ~params y) with
      | Some a, Some b -> Some (affine_add a b)
      | _ -> None)
  | Ast.Bin (Pv_dataflow.Types.Sub, x, y) -> (
      match (affine_of ~params x, affine_of ~params y) with
      | Some a, Some b -> Some (affine_add a (affine_scale (-1) b))
      | _ -> None)
  | Ast.Bin (Pv_dataflow.Types.Mul, x, y) -> (
      match (affine_of ~params x, affine_of ~params y) with
      | Some { coeffs = []; const = s }, Some b -> Some (affine_scale s b)
      | Some a, Some { coeffs = []; const = s } -> Some (affine_scale s a)
      | _ -> None)
  | Ast.Bin (_, _, _) -> None

(* --- analysis ------------------------------------------------------------ *)

let analyse ?(cse = false) (k : Ast.kernel) : info =
  let nodes, raw_leaves = annotate k.Ast.body in
  let leaves =
    List.map
      (fun (leaf_id, loop_vars, stmt) ->
        { leaf_id; loop_vars; stmt; ops = leaf_ops ~cse stmt })
      raw_leaves
  in
  let all_ops = List.concat_map (fun l -> l.ops) leaves in
  let stored =
    List.sort_uniq compare
      (List.filter_map
         (fun o ->
           if o.op_kind = Pv_memory.Portmap.OStore then Some o.op_array else None)
         all_ops)
  in
  (* one disambiguation instance per stored array, in declaration order *)
  let ambiguous =
    List.filter_map
      (fun (a, _) -> if List.mem a stored then Some a else None)
      k.Ast.arrays
  in
  let classify a =
    let indirect =
      List.exists
        (fun o ->
          o.op_array = a && affine_of ~params:k.Ast.params o.op_index = None)
        all_ops
    in
    if indirect then Indirect else Affine
  in
  let instance_of a =
    let rec find i = function
      | [] -> None
      | x :: _ when String.equal x a -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 ambiguous
  in
  (* assign ports: leaf order, then op order *)
  let ports = ref [] in
  let next_port = ref 0 in
  let n_groups = List.length leaves in
  let n_instances = List.length ambiguous in
  let rom = Array.init n_instances (fun _ -> Array.make n_groups [||]) in
  List.iter
    (fun leaf ->
      List.iter
        (fun o ->
          let id = !next_port in
          incr next_port;
          let instance = instance_of o.op_array in
          ports :=
            {
              Pv_memory.Portmap.id;
              kind = o.op_kind;
              array = o.op_array;
              instance;
              conditional = o.op_conditional;
            }
            :: !ports;
          match instance with
          | Some inst ->
              rom.(inst).(leaf.leaf_id) <-
                Array.append rom.(inst).(leaf.leaf_id) [| id |]
          | None -> ())
        leaf.ops)
    leaves;
  let portmap =
    {
      Pv_memory.Portmap.ports = Array.of_list (List.rev !ports);
      n_groups;
      n_instances;
      rom;
    }
  in
  let rec depth n =
    match n with
    | Leaf _ -> 0
    | Loop { body; _ } -> 1 + List.fold_left (fun m c -> max m (depth c)) 0 body
  in
  {
    nodes;
    leaves;
    portmap;
    ambiguous_arrays = List.map (fun a -> (a, classify a)) ambiguous;
    max_loop_depth = List.fold_left (fun m n -> max m (depth n)) 0 nodes;
  }

(** Count of ambiguous pairs before dimension reduction: every
    (load, store) combination on the same ambiguous array (Def. 1). *)
let naive_pair_count info =
  List.fold_left
    (fun acc (a, _) ->
      let ops =
        List.concat_map
          (fun l -> List.filter (fun o -> o.op_array = a) l.ops)
          info.leaves
      in
      let loads =
        List.length (List.filter (fun o -> o.op_kind = Pv_memory.Portmap.OLoad) ops)
      in
      let stores =
        List.length
          (List.filter (fun o -> o.op_kind = Pv_memory.Portmap.OStore) ops)
      in
      acc + (loads * stores))
    0 info.ambiguous_arrays
