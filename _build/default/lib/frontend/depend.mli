(** Dependence analysis: finding ambiguous pairs (Def. 1) and building the
    port map.

    This plays the role of the polyhedral analysis the paper borrows from
    Polly: every static memory access becomes a numbered port; arrays that
    are stored to anywhere in the kernel cannot be proven conflict-free at
    compile time, so all their accesses are {e ambiguous} and get a
    disambiguation instance.  Load-only arrays use direct memory ports, as
    Dynamatic does for provably independent accesses.  Index expressions
    are additionally classified affine vs indirect (Fig. 2a vs 2b). *)

(** The kernel body with leaf statements annotated by group id. *)
type node =
  | Leaf of int * Pv_kernels.Ast.stmt  (** leaf id = group id *)
  | Loop of {
      var : string;
      lo : Pv_kernels.Ast.expr;
      hi : Pv_kernels.Ast.expr;
      body : node list;
    }

(** One static memory operation, in program order within its leaf. *)
type op = {
  op_kind : Pv_memory.Portmap.op_kind;
  op_array : string;
  op_index : Pv_kernels.Ast.expr;
  op_conditional : bool;
}

type leaf_info = {
  leaf_id : int;
  loop_vars : string list;  (** outermost first *)
  stmt : Pv_kernels.Ast.stmt;
  ops : op list;  (** program order; ports are assigned in this order *)
}

type pair_class = Affine | Indirect

type info = {
  nodes : node list;
  leaves : leaf_info list;
  portmap : Pv_memory.Portmap.t;
  ambiguous_arrays : (string * pair_class) list;
      (** one disambiguation instance per entry, in instance-id order *)
  max_loop_depth : int;
}

(** CSE scoping inside one leaf: loads may be shared within one
    conditional scope, and a branch may reuse an unconditional load; the
    two branches never share (the untaken side would starve). *)
type cse_scope = Sc_uncond | Sc_then | Sc_else

type cse_key = cse_scope * string * Pv_kernels.Ast.expr

(** Resolve a load occurrence to its CSE key, registering first
    occurrences; the builder and the analysis share this function so their
    port enumerations agree. *)
val cse_lookup :
  seen:(cse_key, unit) Hashtbl.t ->
  scope:cse_scope ->
  string ->
  Pv_kernels.Ast.expr ->
  [ `Fresh of cse_key | `Dup of cse_key ]

(** Annotate the body and collect (id, loop vars, stmt) per leaf. *)
val annotate :
  Pv_kernels.Ast.stmt list ->
  node list * (int * string list * Pv_kernels.Ast.stmt) list

(** Memory operations of a leaf statement in program order: index loads in
    post-order, then value loads, then the store; conditionals contribute
    their condition's loads first, then each branch.  With [cse],
    syntactically duplicated loads within a conditional scope collapse to
    their first occurrence (see {!Optimize}).
    @raise Invalid_argument when a conditional body contains non-stores. *)
val leaf_ops : ?cse:bool -> Pv_kernels.Ast.stmt -> op list

(** Affine form [sum coeff_i * var_i + const] over the loop variables. *)
type affine = { coeffs : (string * int) list; const : int }

(** Affine view of an index expression with kernel parameters substituted;
    [None] when non-affine (array-indirect or non-linear). *)
val affine_of :
  params:(string * int) list -> Pv_kernels.Ast.expr -> affine option

(** Full analysis of a kernel.  [cse] must match the builder's setting so
    that port enumeration agrees. *)
val analyse : ?cse:bool -> Pv_kernels.Ast.kernel -> info

(** Ambiguous pairs before dimension reduction: every (load, store)
    combination on the same ambiguous array (Def. 1). *)
val naive_pair_count : info -> int
