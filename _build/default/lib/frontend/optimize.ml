(** Optional kernel-level optimisations, the kind LLVM would run before
    Dynamatic sees the code.

    - {b Constant folding}: arithmetic over literals and parameters
      collapses at compile time (including the [x*1], [x+0], [x*0]
      identities), shrinking address datapaths.
    - {b Load CSE}: repeated loads of a syntactically identical address
      within one leaf statement collapse to one port.  The [a[x] += e]
      idiom loads [a[x]] once for the index and once for the value; real
      front-ends emit a single load.  Fewer ambiguous ports means fewer
      premature records per iteration — it directly widens PreVV's
      effective queue window.

    Both passes preserve the interpreter semantics exactly (tested); they
    are off by default so the paper reproduction measures the unoptimised
    circuits, and exposed through {!Pipeline.compile}'s options and the
    CLI. *)

open Pv_kernels

(* --- constant folding ----------------------------------------------------- *)

let rec fold_expr ~params (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ -> e
  | Ast.Var v -> (
      match List.assoc_opt v params with Some n -> Ast.Int n | None -> e)
  | Ast.Idx (a, ix) -> Ast.Idx (a, fold_expr ~params ix)
  | Ast.Un (op, x) -> (
      match fold_expr ~params x with
      | Ast.Int n -> Ast.Int (Pv_dataflow.Types.eval_unop op n)
      | x' -> Ast.Un (op, x'))
  | Ast.Bin (op, x, y) -> (
      let x' = fold_expr ~params x and y' = fold_expr ~params y in
      match (x', op, y') with
      | Ast.Int a, _, Ast.Int b -> Ast.Int (Pv_dataflow.Types.eval_binop op a b)
      (* additive and multiplicative identities *)
      | e, Pv_dataflow.Types.Add, Ast.Int 0 | Ast.Int 0, Pv_dataflow.Types.Add, e
        ->
          e
      | e, Pv_dataflow.Types.Sub, Ast.Int 0 -> e
      | e, (Pv_dataflow.Types.Mul | Pv_dataflow.Types.Mulc), Ast.Int 1
      | Ast.Int 1, (Pv_dataflow.Types.Mul | Pv_dataflow.Types.Mulc), e ->
          e
      | _, (Pv_dataflow.Types.Mul | Pv_dataflow.Types.Mulc), Ast.Int 0
      | Ast.Int 0, (Pv_dataflow.Types.Mul | Pv_dataflow.Types.Mulc), _ ->
          Ast.Int 0
      | e, Pv_dataflow.Types.Div, Ast.Int 1 -> e
      | _ -> Ast.Bin (op, x', y'))

let rec fold_stmt ~params (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Store (a, ix, v) ->
      Ast.Store (a, fold_expr ~params ix, fold_expr ~params v)
  | Ast.For { var; lo; hi; body } ->
      Ast.For
        {
          var;
          lo = fold_expr ~params lo;
          hi = fold_expr ~params hi;
          body = List.map (fold_stmt ~params) body;
        }
  | Ast.If (c, t, e) ->
      Ast.If
        ( fold_expr ~params c,
          List.map (fold_stmt ~params) t,
          List.map (fold_stmt ~params) e )

(** Fold constants and parameter references throughout the kernel.  The
    parameter list is retained (it is part of the kernel's signature), but
    no reference to it survives in the body. *)
let constant_fold (k : Ast.kernel) : Ast.kernel =
  { k with Ast.body = List.map (fold_stmt ~params:k.Ast.params) k.Ast.body }

(* --- load CSE -------------------------------------------------------------- *)

(* Count occurrences of each (array, index) load within an expression.  The
   index expressions compare structurally, which is sound because leaf
   expressions are pure. *)
let rec collect_loads acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ -> acc
  | Ast.Un (_, x) -> collect_loads acc x
  | Ast.Bin (_, x, y) -> collect_loads (collect_loads acc x) y
  | Ast.Idx (a, ix) ->
      let acc = collect_loads acc ix in
      let key = (a, ix) in
      let n = try List.assoc key acc with Not_found -> 0 in
      (key, n + 1) :: List.remove_assoc key acc

(* Rewriting duplicated loads needs a place to keep the first-loaded value;
   the mini-language has no scalar lets, so CSE is expressed by the
   {e circuit builder}: ports are deduplicated per leaf and the loaded
   value forked.  At the AST level we therefore only report the
   opportunity; the rewrite itself happens in {!Build} when its [cse]
   option is set. *)

(** Duplicated loads per leaf statement: (array, index, occurrences) with
    occurrences >= 2.  Conditions and both branches of an [If] count as
    one scope (they execute under one instance). *)
let duplicate_loads (s : Ast.stmt) : (string * Ast.expr * int) list =
  let loads =
    match s with
    | Ast.Store (_, ix, v) -> collect_loads (collect_loads [] ix) v
    | Ast.If (c, t, e) ->
        let branch acc =
          List.fold_left
            (fun acc s ->
              match s with
              | Ast.Store (_, ix, v) -> collect_loads (collect_loads acc ix) v
              | _ -> acc)
            acc
        in
        branch (branch (collect_loads [] c) t) e
    | Ast.For _ -> []
  in
  List.filter_map
    (fun ((a, ix), n) -> if n >= 2 then Some (a, ix, n) else None)
    loads

(** Total removable loads across the kernel (the CSE opportunity count). *)
let cse_opportunity (k : Ast.kernel) : int =
  let rec go acc (s : Ast.stmt) =
    match s with
    | Ast.For { body; _ } -> List.fold_left go acc body
    | leaf ->
        List.fold_left (fun acc (_, _, n) -> acc + n - 1) acc
          (duplicate_loads leaf)
  in
  List.fold_left go 0 k.Ast.body
