(** FPGA primitive vocabulary for structural elaboration (7-series flavour,
    matching the paper's xc7k160t target).

    DSP slices are instantiated for multipliers but, like the paper, never
    reported in the tables: "the use of DSP is not evaluated, as neither
    LSQ nor PreVV utilizes DSP". *)

type prim =
  | Lut of int  (** k-input look-up table, 1 <= k <= 6 *)
  | Lutram of int
      (** distributed RAM/SRL bank, 32 entries x [bits] wide; each bit
          occupies one LUT of fabric (RAM32X1S) *)
  | Ff  (** flip-flop *)
  | Carry4  (** carry chain slice (4 bits) *)
  | Muxf  (** dedicated MUXF7/F8 *)
  | Dsp  (** DSP48 slice *)
  | Bram  (** block RAM (the kernels' arrays; not in Table I) *)

type instance = {
  path : string;  (** hierarchical name, e.g. "mem/lsq0/cam" *)
  prim : prim;
  count : int;
}

type t = instance list

(** Aggregates in Table-I categories; LUT-RAM bits count as LUT fabric, as
    Vivado reports them. *)
type totals = {
  luts : int;
  ffs : int;
  muxes : int;  (** dedicated MUXF resources *)
  carries : int;
  dsps : int;
  brams : int;
}

val zero : totals
val totals : t -> totals

(** Totals restricted to instances whose path satisfies [keep]. *)
val totals_filtered : keep:(string -> bool) -> t -> totals

val pp_totals : Format.formatter -> totals -> unit

(** Aggregate per hierarchy prefix (paths cut after [depth] segments),
    sorted by descending LUT count — finer-grained breakdowns than
    Fig. 1's two-way split. *)
val group_totals : ?depth:int -> t -> (string * totals) list

(** Vivado-style primitive name (LUT4, FDRE, CARRY4, ...). *)
val prim_name : prim -> string
