(** FPGA primitive vocabulary for structural elaboration (7-series flavour,
    matching the paper's xc7k160t target).

    DSP slices are instantiated for multipliers but, like the paper, never
    reported: "the use of DSP is not evaluated, as neither LSQ nor PreVV
    utilizes DSP". *)

type prim =
  | Lut of int  (** k-input look-up table, 1 <= k <= 6 *)
  | Lutram of int
      (** distributed RAM/SRL bank, 32 entries x [bits] wide; each bit
          occupies one LUT of fabric (RAM32X1S) *)
  | Ff  (** flip-flop *)
  | Carry4  (** carry chain slice (4 bits) *)
  | Muxf  (** dedicated MUXF7/F8 *)
  | Dsp  (** DSP48 slice *)
  | Bram  (** block RAM (the kernels' arrays; not in Table I) *)

type instance = {
  path : string;  (** hierarchical name, e.g. "lsq0/cam/row7" *)
  prim : prim;
  count : int;
}

type t = instance list

(** Aggregate counts in Table-I categories.  A [Lutram] occupies LUT fabric
    and is reported as LUTs, as Vivado does. *)
type totals = {
  luts : int;
  ffs : int;
  muxes : int;  (** dedicated MUXF resources *)
  carries : int;
  dsps : int;
  brams : int;
}

let zero = { luts = 0; ffs = 0; muxes = 0; carries = 0; dsps = 0; brams = 0 }

let add_instance acc { prim; count; _ } =
  match prim with
  | Lut _ -> { acc with luts = acc.luts + count }
  | Lutram bits -> { acc with luts = acc.luts + (count * bits) }
  | Ff -> { acc with ffs = acc.ffs + count }
  | Muxf -> { acc with muxes = acc.muxes + count }
  | Carry4 -> { acc with carries = acc.carries + count }
  | Dsp -> { acc with dsps = acc.dsps + count }
  | Bram -> { acc with brams = acc.brams + count }

let totals (nl : t) = List.fold_left add_instance zero nl

(** Totals restricted to instances whose path passes [keep]. *)
let totals_filtered ~keep (nl : t) =
  List.fold_left
    (fun acc i -> if keep i.path then add_instance acc i else acc)
    zero nl

let pp_totals ppf t =
  Format.fprintf ppf "LUT=%d FF=%d MUXF=%d CARRY4=%d DSP=%d BRAM=%d" t.luts
    t.ffs t.muxes t.carries t.dsps t.brams

(** Aggregate per hierarchy prefix: paths are cut after [depth] '/'-
    separated segments and totals accumulated per prefix, in descending
    LUT order — the data for area breakdowns finer than Fig. 1's
    two-way split. *)
let group_totals ?(depth = 1) (nl : t) : (string * totals) list =
  let prefix path =
    let rec cut i seen =
      if seen = depth || i >= String.length path then
        String.sub path 0 i
      else cut (i + 1) (if path.[i] = '/' then seen + 1 else seen)
    in
    let p = cut 0 0 in
    if String.length p > 0 && p.[String.length p - 1] = '/' then
      String.sub p 0 (String.length p - 1)
    else p
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key = prefix i.path in
      let cur = Option.value ~default:zero (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (add_instance cur i))
    nl;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b.luts a.luts)

let prim_name = function
  | Lut k -> Printf.sprintf "LUT%d" k
  | Lutram bits -> Printf.sprintf "RAM32X%d" bits
  | Ff -> "FDRE"
  | Carry4 -> "CARRY4"
  | Muxf -> "MUXF7"
  | Dsp -> "DSP48E1"
  | Bram -> "RAMB36E1"
