(** Structural elaboration: dataflow components and memory-subsystem macros
    to FPGA primitives.

    Datapath components follow standard elastic-component implementations
    (combinational function + handshake; storage only in buffers, FU
    pipelines and port registers).  The LSQ macro follows the published
    Dynamatic LSQ structure (per-entry storage, an order matrix, per-port
    CAM search and forwarding muxes, group allocator with ROM); the PreVV
    macro instantiates the paper's components (collapsing premature queue
    in distributed RAM, LMerge/SMerge, parallel validation comparators,
    squash/replay control) plus a replicated copy of each member pair's
    datapath for re-execution — Eq. 6 charges every pair its computation
    twice, and the re-execution path is physical.

    Per-macro fudge factors (documented in {!Calib}) absorb what synthesis
    would add in replication and control duplication; they are fitted once
    against the published Table I and then fixed for every experiment. *)

open Pv_dataflow
module P = Primitive

(** Fabric widths. *)
type widths = { data : int; addr : int; seq : int }

let default_widths = { data = 32; addr = 12; seq = 12 }

(** Calibration constants; see DESIGN.md §resource-model. *)
module Calib = struct
  (* LSQ: order-matrix cell replication factor and per-port search scale,
     fitted so a 32-deep pooled LSQ lands near the published ~16-18k LUTs *)
  let lsq_matrix_luts_per_cell = 12
  let lsq_port_scale = 4
  let lsq_alloc_luts = 1600
  let lsq_entry_ff_overhead = 6

  (* PreVV: arbiter/squash-control base and the share of a member leaf's
     datapath that is replicated for replay *)
  let prevv_base_luts = 7160
  let prevv_entry_luts = 61
  let prevv_base_ffs = 1690
  let prevv_entry_ffs = 10
  let prevv_replay_copies = 1
  let prevv_squash_luts_per_component = 3
end

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let inst path prim count = { P.path; prim; count }

(* --- elastic datapath components ----------------------------------------- *)

let handshake path = [ inst (path ^ "/hs") (P.Lut 3) 2 ]

let adder path w =
  inst (path ^ "/sum") (P.Lut 2) w :: inst (path ^ "/carry") P.Carry4 ((w + 3) / 4)
  :: handshake path

let comparator path w =
  inst (path ^ "/cmp") (P.Lut 3) ((w + 1) / 2)
  :: inst (path ^ "/carry") P.Carry4 ((w + 3) / 4)
  :: handshake path

let logic_op path w = inst (path ^ "/op") (P.Lut 2) w :: handshake path

let barrel_shift path w =
  inst (path ^ "/sh") (P.Lut 6) (w * clog2 w / 2) :: handshake path

let multiplier path w =
  (* DSP-mapped, 3 pipeline stages (II=1) *)
  inst (path ^ "/dsp") P.Dsp 3
  :: inst (path ^ "/pipe") P.Ff (3 * w)
  :: handshake path

let divider path w =
  (* radix-2 restoring array divider, pipelined *)
  inst (path ^ "/array") (P.Lut 4) (w * w / 6)
  :: inst (path ^ "/carry") P.Carry4 (w * w / 24)
  :: inst (path ^ "/pipe") P.Ff (4 * w)
  :: handshake path

let binop path (op : Types.binop) w =
  match op with
  | Types.Add | Types.Sub -> adder path w
  | Types.Mul -> multiplier path w
  | Types.Mulc ->
      (* constant multiply: shift-add network, no DSP *)
      inst (path ^ "/sh_add") (P.Lut 3) (2 * w)
      :: inst (path ^ "/carry") P.Carry4 (2 * ((w + 3) / 4))
      :: handshake path
  | Types.Div | Types.Rem -> divider path w
  | Types.Lt | Types.Le | Types.Gt | Types.Ge | Types.Eq | Types.Ne ->
      comparator path w
  | Types.And | Types.Or | Types.Xor -> logic_op path w
  | Types.Shl | Types.Shr -> barrel_shift path w
  | Types.Min | Types.Max ->
      comparator path w @ [ inst (path ^ "/sel") (P.Lut 3) ((w + 1) / 2) ]

let unop path (op : Types.unop) w =
  match op with
  | Types.Neg -> adder path w
  | Types.Not -> inst (path ^ "/not") (P.Lut 1) 1 :: handshake path
  | Types.Lnot -> inst (path ^ "/inv") (P.Lut 1) w :: handshake path

let buffer path ~slots w =
  if slots <= 2 then
    inst (path ^ "/regs") P.Ff (slots * (w + 1))
    :: inst (path ^ "/ctl") (P.Lut 4) 3
    :: handshake path
  else
    (* SRL-based FIFO: storage in LUT fabric, pointers in FFs *)
    inst (path ^ "/srl") (P.Lutram (w + 1)) 1
    :: inst (path ^ "/ptr") P.Ff (2 * clog2 (max 2 slots))
    :: inst (path ^ "/ctl") (P.Lut 4) 4
    :: handshake path

let fork_ path n = inst (path ^ "/ctl") (P.Lut 4) (2 * n) :: handshake path
let join path n = inst (path ^ "/ctl") (P.Lut 4) n :: handshake path

let merge path n w =
  inst (path ^ "/mux") (P.Lut 6) ((n - 1) * ((w + 1) / 2))
  :: inst (path ^ "/arb") (P.Lut 4) n
  :: handshake path

let mux path n w =
  inst (path ^ "/mux") (P.Lut 6) (n * ((w + 1) / 2))
  :: inst (path ^ "/muxf") P.Muxf (if n > 2 then (n - 2) * (w / 4) else 0)
  :: handshake path

let branch path = inst (path ^ "/route") (P.Lut 4) 4 :: handshake path

let const_node path w = inst (path ^ "/bits") (P.Lut 1) (w / 8) :: handshake path

let gen_node path ~arity ws =
  (* fused loop controller: one counter + bound comparator per level *)
  List.concat
    (List.init arity (fun k ->
         let p = Printf.sprintf "%s/lvl%d" path k in
         adder p ws.data @ comparator p ws.data
         @ [ inst (p ^ "/state") P.Ff (ws.data + ws.seq) ]))
  @ [ inst (path ^ "/fsm") (P.Lut 5) 24 ]

let load_port path ws =
  inst (path ^ "/addr_reg") P.Ff ws.addr
  :: inst (path ^ "/ctl") (P.Lut 4) 5
  :: handshake path

let store_port path ws =
  inst (path ^ "/regs") P.Ff (ws.addr + ws.data)
  :: inst (path ^ "/ctl") (P.Lut 4) 6
  :: handshake path

(* --- memory subsystem macros --------------------------------------------- *)

(** Memory controller for direct (provably independent) ports. *)
let mem_controller path ~nports ws =
  [
    inst (path ^ "/arb") (P.Lut 4) (nports * 6);
    inst (path ^ "/mux") (P.Lut 6) (nports * ((ws.addr + ws.data) / 2));
    inst (path ^ "/regs") P.Ff (nports * 4);
  ]

(** The pooled Dynamatic LSQ: entries, order matrix, per-port CAM search
    and store-to-load forwarding, group allocator.  [fast_alloc] adds the
    fast-token-delivery network of [8] (extra area, better timing). *)
let lsq path ~depth ~nload_ports ~nstore_ports ~ngroups ~fast_alloc ws =
  let d = depth in
  let ports = nload_ports + nstore_ports in
  [
    (* per-entry payload: address, data (SQ), flags *)
    inst (path ^ "/lq_entries") P.Ff
      (d * (ws.addr + ws.seq + Calib.lsq_entry_ff_overhead));
    inst (path ^ "/sq_entries") P.Ff
      (d * (ws.addr + ws.data + ws.seq + Calib.lsq_entry_ff_overhead));
    (* age/order matrix: d^2 cells of set/reset + priority logic *)
    inst (path ^ "/order_matrix") P.Ff (d * d);
    inst (path ^ "/order_logic") (P.Lut 4) (d * d * Calib.lsq_matrix_luts_per_cell);
    (* per-port CAM search (address equality against every entry) and
       forwarding mux (any entry's data to the load result) *)
    inst (path ^ "/cam") (P.Lut 4)
      (Calib.lsq_port_scale * ports * d * ((ws.addr + 3) / 4));
    inst (path ^ "/fwd_mux") (P.Lut 6)
      (Calib.lsq_port_scale * nload_ports * d * ((ws.data + 3) / 4));
    inst (path ^ "/fwd_muxf") P.Muxf (nload_ports * d);
    (* priority encoders for issue and commit selection *)
    inst (path ^ "/prio") (P.Lut 5) (2 * d * clog2 (max 2 d) * 2);
    (* group allocator + program-order ROM *)
    inst (path ^ "/alloc") (P.Lut 4) (Calib.lsq_alloc_luts + (ngroups * 24));
    inst (path ^ "/rom") (P.Lutram 8) (max 1 (ngroups * ports / 8));
  ]
  @
  if fast_alloc then
    [
      (* straight-to-the-queue token network [8] *)
      inst (path ^ "/fast_tokens") (P.Lut 4) (ngroups * 48 + (ports * 16));
      inst (path ^ "/fast_regs") P.Ff (ngroups * 12);
    ]
  else []

(** One PreVV disambiguation instance: collapsing premature queue in
    distributed RAM, LMerge/SMerge, parallel validation comparators, ROM,
    squash/replay controller.  [member_datapath_luts] is the LUT size of
    the ambiguous pair's computation, replicated for re-execution. *)
let prevv path ~depth ~nload_ports ~nstore_ports ~ngroups
    ~member_datapath_luts ws =
  let d = depth in
  let ports = nload_ports + nstore_ports in
  let entry_bits = ws.seq + ws.addr + ws.data + 2 in
  let per_entry_breakdown =
    (* collapse/shift network, parallel validation comparators (Eqs. 2-5),
       erring-iteration priority, and queue bypass muxing *)
    let collapse = (entry_bits + 2) / 3 in
    let validate = 2 * (((ws.seq + 3) / 4) + ((ws.addr + 3) / 4) + ((ws.data + 3) / 4)) in
    let prio = clog2 (max 2 d) in
    let bypass = Calib.prevv_entry_luts - collapse - validate - prio in
    [ ("collapse", collapse); ("validate", validate); ("err_prio", prio);
      ("bypass", max 0 bypass) ]
  in
  [
    (* queue payload in LUT RAM banks of 32 entries *)
    inst (path ^ "/queue") (P.Lutram entry_bits) (max 1 ((d + 31) / 32));
    inst (path ^ "/queue_valid") P.Ff d;
    inst (path ^ "/queue_meta") P.Ff (d * Calib.prevv_entry_ffs);
    inst (path ^ "/ptrs") P.Ff (2 * clog2 (max 2 d) + 4);
    (* LMerge / SMerge packing trees *)
    inst (path ^ "/lmerge") (P.Lut 6) (nload_ports * ((entry_bits + 1) / 2));
    inst (path ^ "/smerge") (P.Lut 6) (nstore_ports * ((entry_bits + 1) / 2));
    (* same-iteration order ROM *)
    inst (path ^ "/rom") (P.Lutram 8) (max 1 (ngroups * ports / 8));
    (* arbiter core, squash mux / iter_err broadcast, replay sequencing *)
    inst (path ^ "/arbiter") (P.Lut 4) (Calib.prevv_base_luts * 2 / 5);
    inst (path ^ "/squash") (P.Lut 4) (Calib.prevv_base_luts * 3 / 10);
    inst (path ^ "/replay_ctl") (P.Lut 4) (Calib.prevv_base_luts * 3 / 10);
    inst (path ^ "/replay_regs") P.Ff (Calib.prevv_base_ffs * 7 / 10);
    inst (path ^ "/epoch_regs") P.Ff (Calib.prevv_base_ffs * 3 / 10);
    (* replicated member datapath for re-execution (Eq. 6's second pass) *)
    inst (path ^ "/replay_dp") (P.Lut 4)
      (Calib.prevv_replay_copies * member_datapath_luts);
  ]
  @ List.map
      (fun (name, luts) -> inst (path ^ "/" ^ name) (P.Lut 4) (d * luts))
      per_entry_breakdown
