(** Structural elaboration: dataflow components and memory-subsystem macros
    to FPGA primitives.

    Datapath components follow standard elastic-component implementations
    (combinational function + handshake; storage only in buffers, FU
    pipelines and port registers).  The LSQ macro follows the published
    Dynamatic LSQ structure (per-entry storage, an order matrix, per-port
    CAM search and forwarding muxes, group allocator with ROM); the PreVV
    macro instantiates the paper's components (collapsing premature queue
    in distributed RAM, LMerge/SMerge, parallel validation comparators,
    squash/replay control) plus a replicated copy of each member pair's
    datapath for re-execution — Eq. 6 charges every pair its computation
    twice, and the re-execution path is physical.

    The constants in {!Calib} absorb what synthesis would add in
    replication and control duplication; they were fitted once against the
    published Table I and then frozen (DESIGN.md §9). *)

(** Fabric widths (bits). *)
type widths = { data : int; addr : int; seq : int }

val default_widths : widths

(** Calibration constants; see DESIGN.md §9 for the fitting disclosure. *)
module Calib : sig
  val lsq_matrix_luts_per_cell : int
  val lsq_port_scale : int
  val lsq_alloc_luts : int
  val lsq_entry_ff_overhead : int
  val prevv_base_luts : int
  val prevv_entry_luts : int
  val prevv_base_ffs : int
  val prevv_entry_ffs : int
  val prevv_replay_copies : int
  val prevv_squash_luts_per_component : int
end

val clog2 : int -> int

(** {1 Elastic datapath components}

    Each returns the primitive list of one component instance rooted at
    [path]. *)

val handshake : string -> Primitive.t
val adder : string -> int -> Primitive.t
val comparator : string -> int -> Primitive.t
val logic_op : string -> int -> Primitive.t
val barrel_shift : string -> int -> Primitive.t
val multiplier : string -> int -> Primitive.t
val divider : string -> int -> Primitive.t
val binop : string -> Pv_dataflow.Types.binop -> int -> Primitive.t
val unop : string -> Pv_dataflow.Types.unop -> int -> Primitive.t
val buffer : string -> slots:int -> int -> Primitive.t
val fork_ : string -> int -> Primitive.t
val join : string -> int -> Primitive.t
val merge : string -> int -> int -> Primitive.t
val mux : string -> int -> int -> Primitive.t
val branch : string -> Primitive.t
val const_node : string -> int -> Primitive.t
val gen_node : string -> arity:int -> widths -> Primitive.t
val load_port : string -> widths -> Primitive.t
val store_port : string -> widths -> Primitive.t

(** {1 Memory-subsystem macros} *)

(** Memory controller for direct (provably independent) ports. *)
val mem_controller : string -> nports:int -> widths -> Primitive.t

(** The pooled Dynamatic LSQ; [fast_alloc] adds the fast-token-delivery
    network of [8]. *)
val lsq :
  string ->
  depth:int ->
  nload_ports:int ->
  nstore_ports:int ->
  ngroups:int ->
  fast_alloc:bool ->
  widths ->
  Primitive.t

(** One PreVV disambiguation instance; [member_datapath_luts] is the LUT
    size of the member pair's computation, replicated for re-execution. *)
val prevv :
  string ->
  depth:int ->
  nload_ports:int ->
  nstore_ports:int ->
  ngroups:int ->
  member_datapath_luts:int ->
  widths ->
  Primitive.t
