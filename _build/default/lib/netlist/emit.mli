(** Textual structural netlist emission (VHDL-flavoured) — the analogue of
    the VHDL netlists the paper's flow hands to Vivado. *)

val to_string : entity:string -> Primitive.t -> string
val to_file : string -> entity:string -> Primitive.t -> unit
