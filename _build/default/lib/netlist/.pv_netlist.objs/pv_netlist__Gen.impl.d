lib/netlist/gen.ml: List Primitive Printf Pv_dataflow Types
