lib/netlist/primitive.ml: Format Hashtbl List Option Printf String
