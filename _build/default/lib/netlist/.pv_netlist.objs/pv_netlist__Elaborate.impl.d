lib/netlist/elaborate.ml: Array Gen Graph List Primitive Printf Pv_dataflow Pv_memory String Types
