lib/netlist/gen.mli: Primitive Pv_dataflow
