lib/netlist/elaborate.mli: Gen Primitive Pv_dataflow Pv_memory
