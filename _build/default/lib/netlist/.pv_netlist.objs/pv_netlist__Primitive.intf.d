lib/netlist/primitive.mli: Format
