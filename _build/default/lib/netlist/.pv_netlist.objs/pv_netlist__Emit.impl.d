lib/netlist/emit.ml: Buffer Format Fun List Primitive Printf String
