lib/netlist/emit.mli: Primitive
