(** FPGA device capacities and utilisation — the paper's motivation: "high-
    performance FPGA accelerators must reserve significant space for LSQs
    ... making them incompatible with edge devices that have limited
    resources" (Sec. I). *)

type t = {
  name : string;
  luts : int;
  ffs : int;
  brams : int;
  dsps : int;
}

(** The paper's evaluation target (Kintex-7 160T). *)
let xc7k160t = { name = "xc7k160t"; luts = 101_400; ffs = 202_800; brams = 325; dsps = 600 }

(** A representative edge-class part (Artix-7 35T), for the incompatibility
    argument of the introduction. *)
let xc7a35t = { name = "xc7a35t"; luts = 20_800; ffs = 41_600; brams = 50; dsps = 90 }

(** A small Zynq SoC fabric. *)
let xc7z020 = { name = "xc7z020"; luts = 53_200; ffs = 106_400; brams = 140; dsps = 220 }

let devices = [ xc7k160t; xc7z020; xc7a35t ]

type utilisation = {
  device : t;
  lut_pct : float;
  ff_pct : float;
  fits : bool;
}

let utilisation (dev : t) (r : Report.t) : utilisation =
  let lut_pct = 100.0 *. float_of_int r.Report.luts /. float_of_int dev.luts in
  let ff_pct = 100.0 *. float_of_int r.Report.ffs /. float_of_int dev.ffs in
  { device = dev; lut_pct; ff_pct; fits = lut_pct <= 100.0 && ff_pct <= 100.0 }

(** How many copies of the circuit fit on [dev] (compute-density argument:
    the area a disambiguation scheme saves becomes extra parallel kernel
    instances). *)
let copies_that_fit (dev : t) (r : Report.t) : int =
  if r.Report.luts = 0 then 0
  else min (dev.luts / max 1 r.Report.luts) (dev.ffs / max 1 r.Report.ffs)

let pp_utilisation ppf u =
  Format.fprintf ppf "%s: LUT %.1f%%, FF %.1f%%%s" u.device.name u.lut_pct
    u.ff_pct
    (if u.fits then "" else "  (DOES NOT FIT)")
