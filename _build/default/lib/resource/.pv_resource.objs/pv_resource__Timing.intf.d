lib/resource/timing.mli: Pv_dataflow
