lib/resource/report.mli: Format Pv_dataflow Pv_memory Pv_netlist
