lib/resource/device.ml: Format Report
