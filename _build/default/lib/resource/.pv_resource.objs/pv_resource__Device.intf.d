lib/resource/device.mli: Format Report
