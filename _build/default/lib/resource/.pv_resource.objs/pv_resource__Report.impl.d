lib/resource/report.ml: Format Pv_dataflow Pv_memory Pv_netlist Timing
