lib/resource/timing.ml: Float Graph Pv_dataflow Types
