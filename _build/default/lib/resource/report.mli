(** Area/timing reports for a compiled circuit under a disambiguation
    scheme — the data behind Fig. 1, Table I, Table II and Fig. 7. *)

type t = {
  luts : int;
  ffs : int;
  muxes : int;
  cp_ns : float;  (** modelled achieved clock period *)
  datapath_luts : int;  (** computation + controller share (Fig. 1) *)
  queue_luts : int;  (** LSQ / PreVV share (Fig. 1) *)
  datapath_ffs : int;
  queue_ffs : int;
}

val of_circuit :
  Pv_dataflow.Graph.t ->
  Pv_memory.Portmap.t ->
  Pv_netlist.Elaborate.disambiguation ->
  t

(** Fraction of LUT+FF resources spent in the disambiguation logic (the
    Fig. 1 metric). *)
val queue_share : t -> float

val pp : Format.formatter -> t -> unit
