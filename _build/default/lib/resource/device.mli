(** FPGA device capacities and utilisation — the paper's motivation: the
    LSQ's area makes dynamically scheduled circuits "incompatible with
    edge devices that have limited resources" (Sec. I). *)

type t = {
  name : string;
  luts : int;
  ffs : int;
  brams : int;
  dsps : int;
}

(** The paper's evaluation target (Kintex-7 160T). *)
val xc7k160t : t

(** A representative edge-class part (Artix-7 35T). *)
val xc7a35t : t

(** A small Zynq SoC fabric (7020). *)
val xc7z020 : t

val devices : t list

type utilisation = {
  device : t;
  lut_pct : float;
  ff_pct : float;
  fits : bool;
}

val utilisation : t -> Report.t -> utilisation

(** How many copies of the circuit fit on the device — the saved area
    becomes extra parallel kernel instances. *)
val copies_that_fit : t -> Report.t -> int

val pp_utilisation : Format.formatter -> utilisation -> unit
