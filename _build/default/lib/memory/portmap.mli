(** Static description of a kernel's memory ports, produced by the
    front-end and consumed by every disambiguation backend.

    Each static load/store site is a numbered port.  Ports on arrays with
    potential inter-iteration dependencies are {e ambiguous} and belong to
    a disambiguation {e instance} (one premature queue + arbiter per
    ambiguous array in PreVV; pooled LSQs in the Dynamatic baselines).  The
    per-group ROM records the original program order of each instance's
    ports inside each group (= leaf statement) — what the group allocator
    of Josipović et al. stores on-chip, and what PreVV's arbiter consults
    when two records carry the same iteration number. *)

type op_kind = OLoad | OStore

type port = {
  id : int;
  kind : op_kind;
  array : string;
  instance : int option;  (** disambiguation instance; [None] = direct *)
  conditional : bool;  (** may be skipped at runtime (needs fake tokens) *)
}

type t = {
  ports : port array;  (** indexed by port id; ids are program order *)
  n_groups : int;  (** leaf statements *)
  n_instances : int;  (** disambiguation instances (ambiguous arrays) *)
  rom : int array array array;
      (** [rom.(inst).(group)] = port ids of instance [inst] occurring in
          group [group], in program order *)
}

val port : t -> int -> port
val is_ambiguous : t -> int -> bool

(** All ambiguous ports of a group across instances, in program order
    (port-id order — ids are assigned in program order). *)
val group_ports : t -> int -> int list

(** ROM position of a port within its instance's group entry — the
    same-iteration tie-break order. *)
val rom_pos : t -> inst:int -> group:int -> port:int -> int option

val pp : Format.formatter -> t -> unit
