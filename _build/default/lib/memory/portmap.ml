(** Static description of a kernel's memory ports, produced by the
    front-end and consumed by every disambiguation backend.

    Each static load/store site is a numbered port.  Ports on arrays with
    potential inter-iteration dependencies are {e ambiguous} and belong to
    a disambiguation {e instance} (one premature queue + arbiter in PreVV;
    all pooled into the single LSQ in the Dynamatic baselines).  The
    per-group ROM records the original program order of the ambiguous
    ports inside each group (= leaf statement), which is what the group
    allocator of Josipović et al. stores on-chip and what PreVV's arbiter
    consults when two records carry the same iteration number. *)

type op_kind = OLoad | OStore

type port = {
  id : int;
  kind : op_kind;
  array : string;
  instance : int option;  (** disambiguation instance; [None] = direct port *)
  conditional : bool;  (** may be skipped at runtime (needs fake tokens) *)
}

type t = {
  ports : port array;
  n_groups : int;  (** leaf statements *)
  n_instances : int;  (** disambiguation instances (per ambiguous array) *)
  rom : int array array array;
      (** [rom.(inst).(group)] = port ids of instance [inst] occurring in
          group [group], in program order *)
}

let port t id = t.ports.(id)
let is_ambiguous t id = (port t id).instance <> None

(** All ambiguous ports of a group across instances, in program order
    (what the single pooled LSQ allocates per group). *)
let group_ports t group =
  (* port ids are assigned in program order by the analysis, so id order is
     the group's true program order (per-instance ROM positions are only
     meaningful within one instance and must not be merged) *)
  Array.to_list t.ports
  |> List.filter_map (fun p ->
         match p.instance with
         | None -> None
         | Some inst ->
             if Array.exists (fun id -> id = p.id) t.rom.(inst).(group) then
               Some p.id
             else None)
  |> List.sort compare

(** ROM position of a port within its group, used as the tie-break order
    for same-iteration validation. *)
let rom_pos t ~inst ~group ~port =
  let ops = t.rom.(inst).(group) in
  let rec find i =
    if i >= Array.length ops then None
    else if ops.(i) = port then Some i
    else find (i + 1)
  in
  find 0

let pp ppf t =
  Format.fprintf ppf "ports:@\n";
  Array.iter
    (fun p ->
      Format.fprintf ppf "  %d: %s %s%s%s@\n" p.id
        (match p.kind with OLoad -> "load" | OStore -> "store")
        p.array
        (match p.instance with
        | Some i -> Printf.sprintf " [instance %d]" i
        | None -> " [direct]")
        (if p.conditional then " (conditional)" else ""))
    t.ports;
  Format.fprintf ppf "groups: %d, instances: %d@\n" t.n_groups t.n_instances
