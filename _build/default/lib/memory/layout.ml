(** Flat memory layout for a kernel.

    The circuits address one word-addressed RAM; each kernel array gets a
    base offset (in declaration order), mirroring how Dynamatic maps
    arrays onto a single dual-port BRAM interface. *)

type t = {
  bases : (string * int) list;  (** array name -> base word address *)
  total : int;  (** total words *)
}

let of_kernel (k : Pv_kernels.Ast.kernel) : t =
  let bases, total =
    List.fold_left
      (fun (acc, off) (name, len) -> ((name, off) :: acc, off + len))
      ([], 0) k.Pv_kernels.Ast.arrays
  in
  { bases = List.rev bases; total }

let base t name =
  match List.assoc_opt name t.bases with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "layout: unknown array %S" name)

(** Build the initial flat memory for [k] under [init] (as accepted by
    {!Pv_kernels.Interp.run}); unlisted arrays are zeroed. *)
let initial_memory t (k : Pv_kernels.Ast.kernel)
    ~(init : (string * int array) list) : int array =
  let mem = Array.make t.total 0 in
  List.iter
    (fun (name, len) ->
      match List.assoc_opt name init with
      | Some src ->
          if Array.length src <> len then
            invalid_arg
              (Printf.sprintf "initial_memory: %s length %d, expected %d" name
                 (Array.length src) len)
          else Array.blit src 0 mem (base t name) len
      | None -> ())
    k.Pv_kernels.Ast.arrays;
  mem

(** Extract a named array from flat memory. *)
let extract t (k : Pv_kernels.Ast.kernel) mem name =
  let len = List.assoc name k.Pv_kernels.Ast.arrays in
  Array.sub mem (base t name) len

(** Compare flat memory against an interpreter result; returns the list of
    mismatching locations as (array, index, expected, got). *)
let diff_against t (k : Pv_kernels.Ast.kernel) mem
    (golden : Pv_kernels.Interp.state) : (string * int * int * int) list =
  List.concat_map
    (fun (name, len) ->
      let g = Hashtbl.find golden name in
      let b = base t name in
      let out = ref [] in
      for ix = len - 1 downto 0 do
        if g.(ix) <> mem.(b + ix) then out := (name, ix, g.(ix), mem.(b + ix)) :: !out
      done;
      !out)
    k.Pv_kernels.Ast.arrays
