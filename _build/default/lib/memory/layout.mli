(** Flat memory layout for a kernel.

    The circuits address one word-addressed RAM; each kernel array gets a
    base offset (in declaration order), mirroring how Dynamatic maps arrays
    onto memory interfaces. *)

type t = {
  bases : (string * int) list;  (** array name -> base word address *)
  total : int;  (** total words *)
}

val of_kernel : Pv_kernels.Ast.kernel -> t

(** Base address of an array.
    @raise Invalid_argument on an unknown array. *)
val base : t -> string -> int

(** Build the initial flat memory for [k] under [init] (as accepted by
    {!Pv_kernels.Interp.run}); unlisted arrays are zeroed.
    @raise Invalid_argument on a length mismatch. *)
val initial_memory :
  t -> Pv_kernels.Ast.kernel -> init:(string * int array) list -> int array

(** Extract a named array from flat memory. *)
val extract : t -> Pv_kernels.Ast.kernel -> int array -> string -> int array

(** Compare flat memory against an interpreter result; mismatches as
    (array, index, expected, got), in declaration-then-index order. *)
val diff_against :
  t ->
  Pv_kernels.Ast.kernel ->
  int array ->
  Pv_kernels.Interp.state ->
  (string * int * int * int) list
