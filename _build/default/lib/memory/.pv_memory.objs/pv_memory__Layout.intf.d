lib/memory/layout.mli: Pv_kernels
