lib/memory/portmap.mli: Format
