lib/memory/portmap.ml: Array Format List Printf
