lib/memory/layout.ml: Array Hashtbl List Printf Pv_kernels
