lib/prevv/backend.mli: Format Pv_dataflow Pv_memory
