lib/prevv/overlap.mli: Pv_memory
