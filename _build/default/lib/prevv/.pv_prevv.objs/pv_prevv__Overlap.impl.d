lib/prevv/overlap.ml: Array List Pv_memory
