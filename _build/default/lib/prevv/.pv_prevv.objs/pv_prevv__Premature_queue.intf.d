lib/prevv/premature_queue.mli: Pv_memory
