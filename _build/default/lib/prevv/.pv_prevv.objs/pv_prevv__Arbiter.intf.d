lib/prevv/arbiter.mli: Premature_queue
