lib/prevv/backend.ml: Arbiter Array Float Format Hashtbl List Option Portmap Premature_queue Printf Pv_dataflow Pv_memory Queue String
