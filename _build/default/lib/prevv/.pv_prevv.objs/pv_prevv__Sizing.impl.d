lib/prevv/sizing.ml: Array List Pv_dataflow
