lib/prevv/sizing.mli: Pv_dataflow
