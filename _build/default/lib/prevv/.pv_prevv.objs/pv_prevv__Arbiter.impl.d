lib/prevv/arbiter.ml: Premature_queue Pv_memory
