lib/prevv/premature_queue.ml: Array List Pv_memory
