(** The kernel mini-language.

    This stands in for the C/C++ inputs the paper feeds to Dynamatic: loop
    nests over integer arrays with optional conditionals.  Arrays are flat;
    multi-dimensional accesses are written with explicit affine flattening
    (row-major), which is what the LLVM front-end would produce anyway. *)

type binop = Pv_dataflow.Types.binop
type unop = Pv_dataflow.Types.unop

type expr =
  | Int of int
  | Var of string  (** induction variable or kernel parameter *)
  | Idx of string * expr  (** [a[e]] *)
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt =
  | Store of string * expr * expr  (** [a[e1] := e2] *)
  | For of { var : string; lo : expr; hi : expr; body : stmt list }
      (** [for var = lo while var < hi] *)
  | If of expr * stmt list * stmt list
      (** conditional whose branches may contain only stores *)

type kernel = {
  name : string;
  arrays : (string * int) list;  (** array name, length in words *)
  params : (string * int) list;  (** compile-time scalar parameters *)
  body : stmt list;
}

(** {1 Convenience constructors}

    These shadow the integer operators with expression builders; open
    {!Ast} locally ([Ast.(...)]) when using them. *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( land ) : expr -> expr -> expr
val i : int -> expr
val v : string -> expr
val idx : string -> expr -> expr
val store : string -> expr -> expr -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt

(** {1 Queries} *)

(** Variables free in an expression, prepended to [acc], deduplicated. *)
val expr_vars : string list -> expr -> string list

(** Static memory accesses of an expression, as (array, index expr) loads
    prepended to [acc]. *)
val expr_loads : (string * expr) list -> expr -> (string * expr) list

(** {1 Pretty printing}

    The printed form uses C spellings and parses back with {!Parse}. *)

val symbol_of_binop : binop -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : int -> Format.formatter -> stmt -> unit
val pp_body : int -> Format.formatter -> stmt list -> unit
val pp_kernel : Format.formatter -> kernel -> unit
