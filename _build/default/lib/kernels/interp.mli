(** Reference interpreter — the golden model.

    Plays the role of the paper's C++ execution against which the ModelSim
    RTL output is checked: every simulated circuit's final memory must
    equal the interpreter's on the same inputs. *)

(** The array store: array name to contents. *)
type state = (string, int array) Hashtbl.t

exception Unbound_variable of string
exception Unbound_array of string
exception Out_of_bounds of { array : string; index : int; length : int }

(** Evaluate an expression under a scalar environment and array store.
    @raise Unbound_variable, Unbound_array, Out_of_bounds accordingly. *)
val eval : state -> (string * int) list -> Ast.expr -> int

(** Execute one statement (mutates the store). *)
val exec : state -> (string * int) list -> Ast.stmt -> unit

(** Execute [k] on fresh arrays initialised from [init] (missing arrays are
    zero-filled); returns the array store.
    @raise Invalid_argument when an init array has the wrong length. *)
val run : Ast.kernel -> init:(string * int array) list -> state

(** Count of dynamic leaf-statement instances — the number of body
    instances the circuit's generator will emit (a lower bound on cycles). *)
val count_instances : Ast.kernel -> init:(string * int array) list -> int
