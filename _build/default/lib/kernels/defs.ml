(** The benchmark kernels of the paper (Sec. VI-A) plus the motivating and
    auxiliary kernels of Figs. 2 and 6.

    Loop orders follow the layouts HLS users write for dataflow pipelining
    (accumulator reuse separated by an inner sweep), which is also what
    gives the memory system its mix of long- and short-distance RAW
    hazards.  All have memory-carried dependencies that force an LSQ or
    PreVV in a dynamically scheduled circuit. *)

open Ast

(* integer (not expression) arithmetic for array sizing *)
let ( *! ) = Stdlib.( * )
let ( +! ) = Stdlib.( + )
let ( -! ) = Stdlib.( - )

(** Polynomial multiplication: c[i+j] += a[i] * b[j].  Compute-bound,
    limited data reuse (the paper uses it to stress the LSQ). *)
let polyn_mult ?(n = 48) () =
  {
    name = "polyn_mult";
    arrays = [ ("a", n); ("b", n); ("c", (2 *! n) -! 1) ];
    params = [ ("N", n) ];
    body =
      [
        for_ "i" (i 0) (v "N")
          [
            for_ "j" (i 0) (v "N")
              [
                store "c"
                  (v "i" + v "j")
                  (idx "c" (v "i" + v "j") + (idx "a" (v "i") * idx "b" (v "j")));
              ];
          ];
      ];
  }

(* A single matrix product acc[i][j] += x[i][k] * y[k][j], written in
   (i, k, j) order so that the accumulator reuse distance is a full row. *)
let matmul_body ~x ~y ~acc n =
  for_ "i" (i 0) (i n)
    [
      for_ "k" (i 0) (i n)
        [
          for_ "j" (i 0) (i n)
            [
              store acc
                ((v "i" * i n) + v "j")
                (idx acc ((v "i" * i n) + v "j")
                + (idx x ((v "i" * i n) + v "k") * idx y ((v "k" * i n) + v "j")));
            ];
        ];
    ]

(** Two chained matrix multiplications: tmp = A*B, then D = tmp*C. *)
let two_mm ?(n = 10) () =
  {
    name = "2mm";
    arrays =
      [ ("A", n *! n); ("B", n *! n); ("C", n *! n); ("tmp", n *! n); ("D", n *! n) ];
    params = [];
    body =
      [ matmul_body ~x:"A" ~y:"B" ~acc:"tmp" n; matmul_body ~x:"tmp" ~y:"C" ~acc:"D" n ];
  }

(** Three chained matrix multiplications: E = A*B, F = C*D, G = E*F. *)
let three_mm ?(n = 9) () =
  {
    name = "3mm";
    arrays =
      [
        ("A", n *! n);
        ("B", n *! n);
        ("C", n *! n);
        ("D", n *! n);
        ("E", n *! n);
        ("F", n *! n);
        ("G", n *! n);
      ];
    params = [];
    body =
      [
        matmul_body ~x:"A" ~y:"B" ~acc:"E" n;
        matmul_body ~x:"C" ~y:"D" ~acc:"F" n;
        matmul_body ~x:"E" ~y:"F" ~acc:"G" n;
      ];
  }

(** In-place Gaussian elimination on the trailing submatrix, factor
    computed inline (the j sweep starts at k+1, so column k — the factor's
    numerator — is never overwritten during a pivot step).  Integer
    division, like the fixed-point HLS kernels the paper targets. *)
let gaussian ?(n = 20) () =
  {
    name = "gaussian";
    arrays = [ ("a", n *! n) ];
    params = [];
    body =
      [
        for_ "k" (i 0) (i n)
          [
            for_ "i" (v "k" + i 1) (i n)
              [
                for_ "j" (v "k" + i 1) (i n)
                  [
                    store "a"
                      ((v "i" * i n) + v "j")
                      (idx "a" ((v "i" * i n) + v "j")
                      - (idx "a" ((v "i" * i n) + v "k")
                         / idx "a" ((v "k" * i n) + v "k")
                        * idx "a" ((v "k" * i n) + v "j")));
                  ];
              ];
          ];
      ];
  }

(** Lower-triangular matrix multiplication c[i][j] += a[i][k] * b[k][j]
    (j <= k <= i), the triangular kernel of the paper, in (k, i, j) order
    so the accumulator reuse spans the outer loop. *)
let triangular ?(n = 24) () =
  {
    name = "triangular";
    arrays = [ ("a", n *! n); ("b", n *! n); ("c", n *! n) ];
    params = [];
    body =
      [
        for_ "k" (i 0) (i n)
          [
            for_ "i" (v "k") (i n)
              [
                for_ "j" (i 0) (v "k" + i 1)
                  [
                    store "c"
                      ((v "i" * i n) + v "j")
                      (idx "c" ((v "i" * i n) + v "j")
                      + (idx "a" ((v "i" * i n) + v "k")
                        * idx "b" ((v "k" * i n) + v "j")));
                  ];
              ];
          ];
      ];
  }

(** The same product in (i, k, j) order: the accumulator is rewritten after
    only k+1 inner instances, a deliberately tight-reuse stress that makes
    PreVV mis-speculate and replay (used by the squash ablation). *)
let triangular_tight ?(n = 24) () =
  {
    name = "triangular_tight";
    arrays = [ ("a", n *! n); ("b", n *! n); ("c", n *! n) ];
    params = [];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            for_ "k" (i 0) (v "i" + i 1)
              [
                for_ "j" (i 0) (v "k" + i 1)
                  [
                    store "c"
                      ((v "i" * i n) + v "j")
                      (idx "c" ((v "i" * i n) + v "j")
                      + (idx "a" ((v "i" * i n) + v "k")
                        * idx "b" ((v "k" * i n) + v "j")));
                  ];
              ];
          ];
      ];
  }

(** Fig. 2(a): sequential-update RAW — a[b[i]] += A; b[i] += B. *)
let histogram ?(n = 64) () =
  {
    name = "histogram";
    arrays = [ ("a", n); ("b", n) ];
    params = [ ("A", 3); ("B", 1) ];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            store "a" (idx "b" (v "i")) (idx "a" (idx "b" (v "i")) + v "A");
            store "b" (v "i") (idx "b" (v "i") + v "B");
          ];
      ];
  }

(** Fig. 2(b): function-dependent RAW — indices shifted by runtime
    functions f(x) = i mod 4 and g(x) = (3*i) mod 5, so the dependence
    distance is unknowable at compile time. *)
let fn_dependent ?(n = 48) () =
  {
    name = "fn_dependent";
    arrays = [ ("a", (2 *! n) +! 8); ("b", n +! 8) ];
    params = [ ("A", 2); ("B", 1) ];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            store "a"
              (idx "b" (v "i") + (v "i" % i 4))
              (idx "a" (idx "b" (v "i") + (v "i" % i 4)) + v "A");
            store "b"
              (v "i" + (v "i" * i 3 % i 5))
              (idx "b" (v "i" + (v "i" * i 3 % i 5)) + v "B");
          ];
      ];
  }

(** Sec. V-C / Fig. 6: an ambiguous pair whose store sits inside a
    conditional, the shape that deadlocks PreVV without fake tokens. *)
let cond_update ?(n = 64) ?(threshold = 50) () =
  {
    name = "cond_update";
    arrays = [ ("x", n); ("y", n); ("s", n) ];
    params = [ ("T", threshold) ];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            If
              ( idx "x" (v "i") > v "T",
                [
                  store "s" (idx "y" (v "i"))
                    (idx "s" (idx "y" (v "i")) + idx "x" (v "i"));
                ],
                [] );
          ];
      ];
  }

(** Sparse-style scatter-accumulate: y[r[i]] += v[i] * x[c[i]]. *)
let spmv_like ?(n = 96) () =
  {
    name = "spmv_like";
    arrays = [ ("r", n); ("c", n); ("vv", n); ("x", n); ("y", n) ];
    params = [];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            store "y" (idx "r" (v "i"))
              (idx "y" (idx "r" (v "i")) + (idx "vv" (v "i") * idx "x" (idx "c" (v "i"))));
          ];
      ];
  }

(** In-place FIR-style smoothing: x[i] = (x[i-1] + x[i] + x[i+1]) / 3 —
    a loop-carried RAW at distance one, fully affine. *)
let fir_smooth ?(n = 96) () =
  {
    name = "fir_smooth";
    arrays = [ ("x", n) ];
    params = [];
    body =
      [
        for_ "i" (i 1) (i (n -! 1))
          [
            store "x" (v "i")
              ((idx "x" (v "i" - i 1) + idx "x" (v "i") + idx "x" (v "i" + i 1))
              / i 3);
          ];
      ];
  }

(** Matrix-vector accumulate: y[i] += A[i][j] * x[j], (i outer, j inner);
    each y element is rewritten across the whole j sweep. *)
let matvec ?(n = 40) () =
  {
    name = "matvec";
    arrays = [ ("A", n *! n); ("x", n); ("y", n) ];
    params = [];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            for_ "j" (i 0) (i n)
              [
                store "y" (v "i")
                  (idx "y" (v "i") + (idx "A" ((v "i" * i n) + v "j") * idx "x" (v "j")));
              ];
          ];
      ];
  }

(** Two-pass 1-D stencil over a ping-pong pair with a final copy-back —
    WAR and RAW through both arrays across passes. *)
let stencil1d ?(n = 64) ?(steps = 4) () =
  {
    name = "stencil1d";
    arrays = [ ("u", n); ("w", n) ];
    params = [];
    body =
      [
        for_ "t" (i 0) (i steps)
          [
            for_ "i2" (i 1) (i (n -! 1))
              [
                store "w" (v "i2")
                  ((idx "u" (v "i2" - i 1) + (i 2 * idx "u" (v "i2"))
                   + idx "u" (v "i2" + i 1))
                  / i 4);
              ];
            for_ "i3" (i 1) (i (n -! 1))
              [ store "u" (v "i3") (idx "w" (v "i3")) ];
          ];
      ];
  }

(** BiCG-style double accumulation: s[j] += A[i][j]*r[i] and q[i] += A[i][j]*p[j]
    in the same body — two independent accumulators with different reuse
    directions (s is rewritten every inner iteration). *)
let bicg ?(n = 24) () =
  {
    name = "bicg";
    arrays = [ ("A", n *! n); ("r", n); ("p", n); ("s", n); ("q", n) ];
    params = [];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            for_ "j" (i 0) (i n)
              [
                store "s" (v "j")
                  (idx "s" (v "j") + (idx "A" ((v "i" * i n) + v "j") * idx "r" (v "i")));
                store "q" (v "i")
                  (idx "q" (v "i") + (idx "A" ((v "i" * i n) + v "j") * idx "p" (v "j")));
              ];
          ];
      ];
  }

(** Running maximum over a two-slot window: m[i mod 2] = max(m[i mod 2],
    x[i]).  The reuse distance (2) is below the pipeline depth, so every
    load is genuinely premature; once the window saturates, stores rewrite
    the value already present — the case where Eq. 5's value validation
    (as opposed to address-only checking) eliminates almost every squash. *)
let running_max ?(n = 160) () =
  {
    name = "running_max";
    arrays = [ ("m", 2); ("x", n) ];
    params = [];
    body =
      [
        for_ "i" (i 0) (i n)
          [
            store "m" (v "i" % i 2)
              (Bin (Pv_dataflow.Types.Max, idx "m" (v "i" % i 2), idx "x" (v "i")));
          ];
      ];
  }

(** The paper's five evaluation kernels, in Table I/II order. *)
let paper_benchmarks () =
  [ polyn_mult (); two_mm (); three_mm (); gaussian (); triangular () ]

let all () =
  paper_benchmarks ()
  @ [
      histogram ();
      fn_dependent ();
      cond_update ();
      spmv_like ();
      triangular_tight ();
      fir_smooth ();
      matvec ();
      stencil1d ();
      bicg ();
      running_max ();
    ]

let by_name name =
  match List.find_opt (fun k -> String.equal k.name name) (all ()) with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "unknown kernel %S" name)
