(** Random kernel generation for differential testing.

    Produces well-formed loop nests whose memory accesses stay in bounds by
    construction (indices are reduced modulo the target array's length), so
    any divergence between the interpreter and a simulated circuit is a
    genuine bug, never an artefact of the workload.  The shapes cover the
    hazard patterns the paper cares about: affine accumulators at random
    reuse distances, indirect (data-dependent) scatter, multi-statement
    bodies and conditional stores. *)

type spec = {
  max_depth : int;  (** loop nesting depth, 1..3 *)
  max_stmts : int;  (** leaf statements per nest level *)
  max_arrays : int;
  array_len : int;
  trip : int;  (** trip count per loop level *)
  allow_if : bool;
  allow_indirect : bool;
  allow_div : bool;
}

let default_spec =
  {
    max_depth = 2;
    max_stmts = 2;
    max_arrays = 3;
    array_len = 24;
    trip = 8;
    allow_if = true;
    allow_indirect = true;
    allow_div = false;
  }

let array_name i = Printf.sprintf "g%d" i
let var_name d = Printf.sprintf "v%d" d

(* expression shorthands that do not shadow the integer operators *)
let e_int n = Ast.Int n
let e_var s = Ast.Var s
let e_add a b = Ast.Bin (Pv_dataflow.Types.Add, a, b)
let e_rem a b = Ast.Bin (Pv_dataflow.Types.Rem, a, b)
let e_gt a b = Ast.Bin (Pv_dataflow.Types.Gt, a, b)

(* non-negative modulus: Rem follows the dividend's sign, so reduce twice —
   ((x rem L) + L) rem L lands in [0, L) for any x *)
let e_mod a l = e_rem (e_add (e_rem a (e_int l)) (e_int l)) (e_int l)

(* index expression over the loop variables in scope, reduced into bounds *)
let gen_index r spec ~depth =
  let base =
    match Workload.int r 4 with
    | 0 -> e_var (var_name (Workload.int r depth))
    | 1 ->
        e_add
          (e_var (var_name (Workload.int r depth)))
          (e_int (Workload.int r spec.array_len))
    | 2 ->
        e_add
          (e_var (var_name (Workload.int r depth)))
          (e_var (var_name (Workload.int r depth)))
    | _ -> e_int (Workload.int r spec.array_len)
  in
  e_mod base spec.array_len

let gen_indirect_index r spec ~depth ~via =
  e_mod (Ast.Idx (via, gen_index r spec ~depth)) spec.array_len

(* value expression: mixes loads of random arrays with arithmetic *)
let rec gen_value r spec ~depth ~arrays ~fuel =
  if fuel = 0 then e_int (1 + Workload.int r 9)
  else
    match Workload.int r 6 with
    | 0 -> e_int (1 + Workload.int r 9)
    | 1 -> e_var (var_name (Workload.int r depth))
    | 2 | 3 ->
        let a = List.nth arrays (Workload.int r (List.length arrays)) in
        Ast.Idx (a, gen_index r spec ~depth)
    | 4 ->
        e_add
          (gen_value r spec ~depth ~arrays ~fuel:(fuel - 1))
          (gen_value r spec ~depth ~arrays ~fuel:(fuel - 1))
    | _ ->
        let op =
          match Workload.int r (if spec.allow_div then 4 else 3) with
          | 0 -> Pv_dataflow.Types.Sub
          | 1 -> Pv_dataflow.Types.Mul
          | 2 -> Pv_dataflow.Types.And
          | _ -> Pv_dataflow.Types.Div
        in
        Ast.Bin
          ( op,
            gen_value r spec ~depth ~arrays ~fuel:(fuel - 1),
            gen_value r spec ~depth ~arrays ~fuel:(fuel - 1) )

let gen_store r spec ~depth ~arrays =
  let target = List.nth arrays (Workload.int r (List.length arrays)) in
  let ix =
    if spec.allow_indirect && Workload.int r 3 = 0 then
      let via = List.nth arrays (Workload.int r (List.length arrays)) in
      gen_indirect_index r spec ~depth ~via
    else gen_index r spec ~depth
  in
  (* accumulate more often than overwrite: accumulators create the RAW
     hazards this library exists to disambiguate *)
  let value =
    if Workload.int r 3 > 0 then
      e_add (Ast.Idx (target, ix)) (gen_value r spec ~depth ~arrays ~fuel:2)
    else gen_value r spec ~depth ~arrays ~fuel:2
  in
  Ast.Store (target, ix, value)

let gen_leaf r spec ~depth ~arrays =
  if spec.allow_if && Workload.int r 4 = 0 then begin
    let cond =
      e_gt (gen_value r spec ~depth ~arrays ~fuel:1) (e_int (Workload.int r 10))
    in
    let t = [ gen_store r spec ~depth ~arrays ] in
    let e =
      if Workload.int r 2 = 0 then [ gen_store r spec ~depth ~arrays ] else []
    in
    Ast.If (cond, t, e)
  end
  else gen_store r spec ~depth ~arrays

(** Generate a kernel from [seed]; equal seeds and specs give equal
    kernels. *)
let kernel ?(spec = default_spec) seed : Ast.kernel =
  let r = Workload.rng seed in
  let n_arrays = 1 + Workload.int r spec.max_arrays in
  let arrays = List.init n_arrays (fun i -> (array_name i, spec.array_len)) in
  let names = List.map fst arrays in
  let depth = 1 + Workload.int r spec.max_depth in
  let rec nest d =
    if d = depth then
      List.init
        (1 + Workload.int r spec.max_stmts)
        (fun _ -> gen_leaf r spec ~depth ~arrays:names)
    else
      [
        Ast.For
          {
            var = var_name d;
            lo = Ast.Int 0;
            hi = Ast.Int spec.trip;
            body = nest (d + 1);
          };
      ]
  in
  {
    Ast.name = Printf.sprintf "gen%d" seed;
    arrays;
    params = [];
    body = nest 0;
  }

(** Deterministic input data for a generated kernel. *)
let init_for ?(spec = default_spec) (k : Ast.kernel) seed :
    (string * int array) list =
  let r = Workload.rng (seed lxor 0x5a5a5a) in
  List.map
    (fun (name, len) -> (name, Workload.array r ~len ~lo:0 ~hi:spec.array_len))
    k.Ast.arrays
