(** Reference interpreter — the golden model.

    Plays the role of the paper's C++ execution against which the ModelSim
    RTL output is checked: every simulated circuit's final memory must
    equal the interpreter's. *)

type state = (string, int array) Hashtbl.t

exception Unbound_variable of string
exception Unbound_array of string
exception Out_of_bounds of { array : string; index : int; length : int }

let array_of st a =
  match Hashtbl.find_opt st a with
  | Some arr -> arr
  | None -> raise (Unbound_array a)

let rec eval st env (e : Ast.expr) : int =
  match e with
  | Int n -> n
  | Var s -> (
      match List.assoc_opt s env with
      | Some v -> v
      | None -> raise (Unbound_variable s))
  | Idx (a, ix) ->
      let arr = array_of st a in
      let i = eval st env ix in
      if i < 0 || i >= Array.length arr then
        raise (Out_of_bounds { array = a; index = i; length = Array.length arr });
      arr.(i)
  | Un (u, x) -> Pv_dataflow.Types.eval_unop u (eval st env x)
  | Bin (b, x, y) ->
      Pv_dataflow.Types.eval_binop b (eval st env x) (eval st env y)

let rec exec st env (s : Ast.stmt) =
  match s with
  | Store (a, ix, value) ->
      let arr = array_of st a in
      let i = eval st env ix in
      if i < 0 || i >= Array.length arr then
        raise (Out_of_bounds { array = a; index = i; length = Array.length arr });
      arr.(i) <- eval st env value
  | For { var; lo; hi; body } ->
      let lo = eval st env lo and hi = eval st env hi in
      for iv = lo to hi - 1 do
        List.iter (exec st ((var, iv) :: env)) body
      done
  | If (c, t, e) ->
      if eval st env c <> 0 then List.iter (exec st env) t
      else List.iter (exec st env) e

(** Execute [k] on fresh arrays initialised from [init] (missing arrays are
    zero-filled); returns the array store. *)
let run (k : Ast.kernel) ~(init : (string * int array) list) : state =
  let st = Hashtbl.create 8 in
  List.iter
    (fun (name, len) ->
      let arr =
        match List.assoc_opt name init with
        | Some src ->
            if Array.length src <> len then
              invalid_arg
                (Printf.sprintf "run: init for %s has length %d, expected %d"
                   name (Array.length src) len);
            Array.copy src
        | None -> Array.make len 0
      in
      Hashtbl.replace st name arr)
    k.arrays;
  let env = k.params in
  List.iter (exec st env) k.body;
  st

(** Count of dynamic leaf-statement instances (useful as a lower bound on
    circuit cycles and in tests). *)
let count_instances (k : Ast.kernel) ~(init : (string * int array) list) : int =
  let st = Hashtbl.create 8 in
  List.iter
    (fun (name, len) ->
      let arr =
        match List.assoc_opt name init with
        | Some src -> Array.copy src
        | None -> Array.make len 0
      in
      Hashtbl.replace st name arr)
    k.arrays;
  let count = ref 0 in
  let rec go env s =
    match s with
    | Ast.Store _ ->
        incr count;
        exec st env s
    | Ast.If _ ->
        incr count;
        exec st env s
    | Ast.For { var; lo; hi; body } ->
        let lo = eval st env lo and hi = eval st env hi in
        for iv = lo to hi - 1 do
          List.iter (go ((var, iv) :: env)) body
        done
  in
  List.iter (go k.params) k.body;
  !count
