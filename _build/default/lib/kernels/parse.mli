(** A parser for the kernel mini-language, accepting the C-like surface
    syntax the paper's listings use (Fig. 2): array and constant
    declarations followed by loop nests, with [+=]/[-=] sugar on stores,
    [if/else] (store-only bodies), and both comment styles.  The grammar is
    exactly what {!Ast.pp_kernel} prints, so pretty-printing round-trips. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Error of error

(** Parse a kernel from source text.  The kernel name comes from an
    optional [// kernel NAME] header line, else [name]. *)
val kernel : ?name:string -> string -> (Ast.kernel, error) result

(** @raise Invalid_argument with a rendered error. *)
val kernel_exn : ?name:string -> string -> Ast.kernel

(** Parse a file; the default kernel name is the file's basename. *)
val from_file : string -> (Ast.kernel, error) result
