(** The kernel mini-language.

    This stands in for the C/C++ inputs the paper feeds to Dynamatic: loop
    nests over integer arrays with optional conditionals.  Arrays are flat;
    multi-dimensional accesses are written with explicit affine flattening
    (row-major), exactly what the LLVM front-end would produce. *)

type binop = Pv_dataflow.Types.binop
type unop = Pv_dataflow.Types.unop

type expr =
  | Int of int
  | Var of string  (** induction variable or kernel parameter *)
  | Idx of string * expr  (** [a[e]] *)
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt =
  | Store of string * expr * expr  (** [a[e1] := e2] *)
  | For of { var : string; lo : expr; hi : expr; body : stmt list }
      (** [for var = lo to hi-1] *)
  | If of expr * stmt list * stmt list

type kernel = {
  name : string;
  arrays : (string * int) list;  (** array name, length in words *)
  params : (string * int) list;  (** compile-time scalar parameters *)
  body : stmt list;
}

(* --- convenience constructors (used heavily by kernel definitions) ------ *)

let ( + ) a b = Bin (Pv_dataflow.Types.Add, a, b)
let ( - ) a b = Bin (Pv_dataflow.Types.Sub, a, b)
let ( * ) a b = Bin (Pv_dataflow.Types.Mul, a, b)
let ( / ) a b = Bin (Pv_dataflow.Types.Div, a, b)
let ( % ) a b = Bin (Pv_dataflow.Types.Rem, a, b)
let ( < ) a b = Bin (Pv_dataflow.Types.Lt, a, b)
let ( > ) a b = Bin (Pv_dataflow.Types.Gt, a, b)
let ( = ) a b = Bin (Pv_dataflow.Types.Eq, a, b)
let ( <> ) a b = Bin (Pv_dataflow.Types.Ne, a, b)
let ( land ) a b = Bin (Pv_dataflow.Types.And, a, b)
let i n = Int n
let v s = Var s
let idx a e = Idx (a, e)
let store a e1 e2 = Store (a, e1, e2)
let for_ var lo hi body = For { var; lo; hi; body }

(* --- free variables / accesses ------------------------------------------ *)

let rec expr_vars acc = function
  | Int _ -> acc
  | Var s -> if List.mem s acc then acc else s :: acc
  | Idx (_, e) | Un (_, e) -> expr_vars acc e
  | Bin (_, a, b) -> expr_vars (expr_vars acc a) b

(** Static memory accesses of an expression: (array, index expr) loads. *)
let rec expr_loads acc = function
  | Int _ | Var _ -> acc
  | Idx (a, e) -> expr_loads ((a, e) :: acc) e
  | Un (_, e) -> expr_loads acc e
  | Bin (_, a, b) -> expr_loads (expr_loads acc a) b

(* --- pretty printing ----------------------------------------------------- *)

(* C-style operator spellings, so the printed form parses back (see
   {!Parse}) *)
let symbol_of_binop (b : binop) =
  match b with
  | Pv_dataflow.Types.Add -> "+"
  | Pv_dataflow.Types.Sub -> "-"
  | Pv_dataflow.Types.Mul | Pv_dataflow.Types.Mulc -> "*"
  | Pv_dataflow.Types.Div -> "/"
  | Pv_dataflow.Types.Rem -> "%"
  | Pv_dataflow.Types.And -> "&"
  | Pv_dataflow.Types.Or -> "|"
  | Pv_dataflow.Types.Xor -> "^"
  | Pv_dataflow.Types.Shl -> "<<"
  | Pv_dataflow.Types.Shr -> ">>"
  | Pv_dataflow.Types.Lt -> "<"
  | Pv_dataflow.Types.Le -> "<="
  | Pv_dataflow.Types.Gt -> ">"
  | Pv_dataflow.Types.Ge -> ">="
  | Pv_dataflow.Types.Eq -> "=="
  | Pv_dataflow.Types.Ne -> "!="
  | Pv_dataflow.Types.Min -> "min"
  | Pv_dataflow.Types.Max -> "max"

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Var s -> Format.pp_print_string ppf s
  | Idx (a, e) -> Format.fprintf ppf "%s[%a]" a pp_expr e
  | Un (Pv_dataflow.Types.Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Un (u, e) ->
      Format.fprintf ppf "%s(%a)" (Pv_dataflow.Types.string_of_unop u) pp_expr e
  | Bin (b, x, y) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr x (symbol_of_binop b) pp_expr y

let rec pp_stmt ind ppf stmt =
  let pad = String.make ind ' ' in
  match stmt with
  | Store (a, e1, e2) ->
      Format.fprintf ppf "%s%s[%a] = %a;" pad a pp_expr e1 pp_expr e2
  | For { var; lo; hi; body } ->
      Format.fprintf ppf "%sfor (%s = %a; %s < %a; ++%s) {@\n%a@\n%s}" pad var
        pp_expr lo var pp_expr hi var (pp_body Stdlib.(ind + 2)) body pad
  | If (c, t, e) ->
      Format.fprintf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c
        (pp_body Stdlib.(ind + 2)) t pad;
      if Stdlib.(e <> []) then
        Format.fprintf ppf " else {@\n%a@\n%s}" (pp_body Stdlib.(ind + 2)) e pad

and pp_body ind ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
    (pp_stmt ind) ppf body

let pp_kernel ppf k =
  Format.fprintf ppf "// kernel %s@\n" k.name;
  List.iter (fun (a, n) -> Format.fprintf ppf "int %s[%d];@\n" a n) k.arrays;
  List.iter (fun (p, n) -> Format.fprintf ppf "const int %s = %d;@\n" p n) k.params;
  pp_body 0 ppf k.body
