(** A parser for the kernel mini-language, accepting the C-like surface
    syntax the paper's listings use (Fig. 2):

    {v
    // kernel polyn_mult
    int a[48]; int b[48]; int c[95];
    const int N = 48;
    for (i = 0; i < N; ++i) {
      for (j = 0; j < N; ++j) {
        c[i+j] = c[i+j] + a[i]*b[j];
      }
    }
    v}

    Also accepted: [+=]/[-=] sugar on stores, [if (cond) { ... } else
    { ... }] with store-only bodies, comments ([// ...] and [/* ... */]),
    and the comparison/arithmetic operators of {!Ast.expr}.  The grammar is
    exactly what {!Ast.pp_kernel} prints, so pretty-printing round-trips. *)

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "parse error at %d:%d: %s" e.line e.col e.message

exception Error of error

(* --- lexer ----------------------------------------------------------------- *)

type token =
  | INT of int
  | IDENT of string
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | KW_INT
  | KW_CONST
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN  (** = *)
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | PLUSPLUS
  | EOF

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the start of the current line *)
}

let fail lx message =
  raise (Error { line = lx.line; col = lx.pos - lx.bol + 1; message })

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
      match lx.src.[lx.pos + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_ws lx
      | '*' ->
          advance lx;
          advance lx;
          let rec go () =
            match peek_char lx with
            | None -> fail lx "unterminated comment"
            | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                go ()
          in
          go ();
          skip_ws lx
      | _ -> ())
  | _ -> ()

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let next_token lx : token =
  skip_ws lx;
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c ->
      let start = lx.pos in
      while (match peek_char lx with Some d -> is_digit d | None -> false) do
        advance lx
      done;
      INT (int_of_string (String.sub lx.src start (lx.pos - start)))
  | Some c when is_ident_start c -> (
      let start = lx.pos in
      while (match peek_char lx with Some d -> is_ident d | None -> false) do
        advance lx
      done;
      match String.sub lx.src start (lx.pos - start) with
      | "for" -> KW_FOR
      | "if" -> KW_IF
      | "else" -> KW_ELSE
      | "int" -> KW_INT
      | "const" -> KW_CONST
      | "unsigned" -> KW_INT  (* the paper writes `unsigned i` *)
      | id -> IDENT id)
  | Some c ->
      let two what tok1 tok2 =
        advance lx;
        if peek_char lx = Some what then begin
          advance lx;
          tok2
        end
        else tok1
      in
      (match c with
      | '(' -> advance lx; LPAREN
      | ')' -> advance lx; RPAREN
      | '{' -> advance lx; LBRACE
      | '}' -> advance lx; RBRACE
      | '[' -> advance lx; LBRACKET
      | ']' -> advance lx; RBRACKET
      | ';' -> advance lx; SEMI
      | ',' -> advance lx; COMMA
      | '*' -> advance lx; STAR
      | '/' -> advance lx; SLASH
      | '%' -> advance lx; PERCENT
      | '&' -> advance lx; AMP
      | '|' -> advance lx; BAR
      | '^' -> advance lx; CARET
      | '+' -> (
          advance lx;
          match peek_char lx with
          | Some '+' -> advance lx; PLUSPLUS
          | Some '=' -> advance lx; PLUS_ASSIGN
          | _ -> PLUS)
      | '-' -> two '=' MINUS MINUS_ASSIGN
      | '=' -> two '=' ASSIGN EQ
      | '!' ->
          advance lx;
          if peek_char lx = Some '=' then begin advance lx; NE end
          else fail lx "expected '=' after '!'"
      | '<' -> (
          advance lx;
          match peek_char lx with
          | Some '=' -> advance lx; LE
          | Some '<' -> advance lx; SHL
          | _ -> LT)
      | '>' -> (
          advance lx;
          match peek_char lx with
          | Some '=' -> advance lx; GE
          | Some '>' -> advance lx; SHR
          | _ -> GT)
      | c -> fail lx (Printf.sprintf "unexpected character %C" c))

(* --- parser ----------------------------------------------------------------- *)

type parser_state = { lx : lexer; mutable tok : token }

let bump p = p.tok <- next_token p.lx
let perr p message = fail p.lx message

let expect p tok what =
  if p.tok = tok then bump p else perr p (Printf.sprintf "expected %s" what)

let ident p =
  match p.tok with
  | IDENT s ->
      bump p;
      s
  | _ -> perr p "expected identifier"

let int_lit p =
  match p.tok with
  | INT n ->
      bump p;
      n
  | _ -> perr p "expected integer literal"

(* expression grammar, loosest binding first:
   cmp     := add, optionally followed by one comparison operator and add
   add     := mul chained with +, -, bitwise-or, xor
   mul     := unary chained with star, /, %%, &, shifts
   unary   := - unary, or primary
   primary := INT, IDENT, IDENT [ cmp ], or ( cmp ) *)
let rec parse_cmp p : Ast.expr =
  let lhs = parse_add p in
  let op =
    match p.tok with
    | EQ -> Some Pv_dataflow.Types.Eq
    | NE -> Some Pv_dataflow.Types.Ne
    | LT -> Some Pv_dataflow.Types.Lt
    | LE -> Some Pv_dataflow.Types.Le
    | GT -> Some Pv_dataflow.Types.Gt
    | GE -> Some Pv_dataflow.Types.Ge
    | _ -> None
  in
  match op with
  | Some op ->
      bump p;
      Ast.Bin (op, lhs, parse_add p)
  | None -> lhs

and parse_add p =
  let rec go lhs =
    match p.tok with
    | PLUS ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Add, lhs, parse_mul p))
    | MINUS ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Sub, lhs, parse_mul p))
    | BAR ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Or, lhs, parse_mul p))
    | CARET ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Xor, lhs, parse_mul p))
    | _ -> lhs
  in
  go (parse_mul p)

and parse_mul p =
  let rec go lhs =
    match p.tok with
    | STAR ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Mul, lhs, parse_unary p))
    | SLASH ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Div, lhs, parse_unary p))
    | PERCENT ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Rem, lhs, parse_unary p))
    | AMP ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.And, lhs, parse_unary p))
    | SHL ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Shl, lhs, parse_unary p))
    | SHR ->
        bump p;
        go (Ast.Bin (Pv_dataflow.Types.Shr, lhs, parse_unary p))
    | _ -> lhs
  in
  go (parse_unary p)

and parse_unary p =
  match p.tok with
  | MINUS ->
      bump p;
      Ast.Un (Pv_dataflow.Types.Neg, parse_unary p)
  | _ -> parse_primary p

and parse_primary p =
  match p.tok with
  | INT n ->
      bump p;
      Ast.Int n
  | IDENT name -> (
      bump p;
      match p.tok with
      | LBRACKET ->
          bump p;
          let ix = parse_cmp p in
          expect p RBRACKET "']'";
          Ast.Idx (name, ix)
      | _ -> Ast.Var name)
  | LPAREN ->
      bump p;
      let e = parse_cmp p in
      expect p RPAREN "')'";
      e
  | _ -> perr p "expected expression"

(* statements *)
let rec parse_stmt p : Ast.stmt =
  match p.tok with
  | KW_FOR -> parse_for p
  | KW_IF -> parse_if p
  | IDENT _ -> parse_store p
  | _ -> perr p "expected statement"

and parse_for p =
  expect p KW_FOR "'for'";
  expect p LPAREN "'('";
  (* optional induction-variable type *)
  (match p.tok with KW_INT -> bump p | _ -> ());
  let var = ident p in
  expect p ASSIGN "'='";
  let lo = parse_cmp p in
  expect p SEMI "';'";
  (* the bound must read `var < hi` *)
  let bvar = ident p in
  if bvar <> var then perr p "loop bound must test the induction variable";
  expect p LT "'<'";
  let hi = parse_cmp p in
  expect p SEMI "';'";
  (* ++var or var++ *)
  (match p.tok with
  | PLUSPLUS ->
      bump p;
      let v2 = ident p in
      if v2 <> var then perr p "increment must name the induction variable"
  | IDENT v2 when v2 = var ->
      bump p;
      expect p PLUSPLUS "'++'"
  | _ -> perr p "expected '++var' or 'var++'");
  expect p RPAREN "')'";
  Ast.For { var; lo; hi; body = parse_block p }

and parse_if p =
  expect p KW_IF "'if'";
  expect p LPAREN "'('";
  let cond = parse_cmp p in
  expect p RPAREN "')'";
  let then_ = parse_block p in
  let else_ =
    match p.tok with
    | KW_ELSE ->
        bump p;
        parse_block p
    | _ -> []
  in
  Ast.If (cond, then_, else_)

and parse_store p =
  let arr = ident p in
  expect p LBRACKET "'['";
  let ix = parse_cmp p in
  expect p RBRACKET "']'";
  let stmt =
    match p.tok with
    | ASSIGN ->
        bump p;
        Ast.Store (arr, ix, parse_cmp p)
    | PLUS_ASSIGN ->
        bump p;
        Ast.Store (arr, ix, Ast.Bin (Pv_dataflow.Types.Add, Ast.Idx (arr, ix), parse_cmp p))
    | MINUS_ASSIGN ->
        bump p;
        Ast.Store (arr, ix, Ast.Bin (Pv_dataflow.Types.Sub, Ast.Idx (arr, ix), parse_cmp p))
    | _ -> perr p "expected '=', '+=' or '-='"
  in
  expect p SEMI "';'";
  stmt

and parse_block p : Ast.stmt list =
  expect p LBRACE "'{'";
  let rec go acc =
    match p.tok with
    | RBRACE ->
        bump p;
        List.rev acc
    | _ -> go (parse_stmt p :: acc)
  in
  go []

(* declarations: `int name[len];` and `const int name = v;` *)
let parse_kernel_body p ~name =
  let arrays = ref [] and params = ref [] in
  let rec decls () =
    match p.tok with
    | KW_INT ->
        bump p;
        let id = ident p in
        expect p LBRACKET "'['";
        let len = int_lit p in
        expect p RBRACKET "']'";
        expect p SEMI "';'";
        arrays := (id, len) :: !arrays;
        decls ()
    | KW_CONST ->
        bump p;
        expect p KW_INT "'int'";
        let id = ident p in
        expect p ASSIGN "'='";
        let v =
          match p.tok with
          | MINUS ->
              bump p;
              -int_lit p
          | _ -> int_lit p
        in
        expect p SEMI "';'";
        params := (id, v) :: !params;
        decls ()
    | _ -> ()
  in
  decls ();
  let rec stmts acc =
    match p.tok with EOF -> List.rev acc | _ -> stmts (parse_stmt p :: acc)
  in
  {
    Ast.name;
    arrays = List.rev !arrays;
    params = List.rev !params;
    body = stmts [];
  }

(* the optional `// kernel NAME` header is honoured before lexing strips
   comments *)
let header_name src =
  let rec find_line i =
    if i >= String.length src then None
    else
      let eol = try String.index_from src i '\n' with Not_found -> String.length src in
      let line = String.trim (String.sub src i (eol - i)) in
      if line = "" then find_line (eol + 1)
      else if String.length line > 10 && String.sub line 0 10 = "// kernel " then
        Some (String.trim (String.sub line 10 (String.length line - 10)))
      else None
  in
  find_line 0

(** Parse a kernel from source text.  The kernel name comes from the
    [// kernel NAME] header when present, else [name]. *)
let kernel ?(name = "kernel") (src : string) : (Ast.kernel, error) result =
  let lx = { src; pos = 0; line = 1; bol = 0 } in
  let p = { lx; tok = EOF } in
  try
    bump p;
    let name = match header_name src with Some n -> n | None -> name in
    Ok (parse_kernel_body p ~name)
  with Error e -> Result.Error e

let kernel_exn ?name src =
  match kernel ?name src with
  | Ok k -> k
  | Result.Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

let from_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  kernel ~name:Filename.(remove_extension (basename path)) src
