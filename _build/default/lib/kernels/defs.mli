(** The benchmark kernels of the paper (Sec. VI-A), the motivating kernels
    of Figs. 2 and 6, and auxiliary stress kernels.

    Sizes default to a few thousand body instances each; every kernel has
    memory-carried dependencies that force an LSQ or PreVV in a dynamically
    scheduled circuit. *)

(** Polynomial multiplication c[i+j] += a[i]*b[j] — compute-bound, limited
    data reuse. *)
val polyn_mult : ?n:int -> unit -> Ast.kernel

(** Two chained matrix multiplications (tmp = A*B; D = tmp*C), (i,k,j)
    order. *)
val two_mm : ?n:int -> unit -> Ast.kernel

(** Three chained matrix multiplications (E = A*B; F = C*D; G = E*F). *)
val three_mm : ?n:int -> unit -> Ast.kernel

(** In-place Gaussian elimination on the trailing submatrix, factor
    computed inline with integer division. *)
val gaussian : ?n:int -> unit -> Ast.kernel

(** Lower-triangular matrix multiplication, (k,i,j) order (outer-loop
    accumulator reuse). *)
val triangular : ?n:int -> unit -> Ast.kernel

(** The same triangular product in (i,k,j) order: deliberately tight
    accumulator reuse that forces PreVV mis-speculation and replay. *)
val triangular_tight : ?n:int -> unit -> Ast.kernel

(** Fig. 2(a): a[b[i]] += A; b[i] += B — sequential-update RAW. *)
val histogram : ?n:int -> unit -> Ast.kernel

(** Fig. 2(b): indices shifted by runtime functions — the dependence
    distance is unknowable at compile time. *)
val fn_dependent : ?n:int -> unit -> Ast.kernel

(** Sec. V-C / Fig. 6: an ambiguous pair whose store sits inside a
    conditional — deadlocks PreVV without fake tokens. *)
val cond_update : ?n:int -> ?threshold:int -> unit -> Ast.kernel

(** Sparse-style scatter-accumulate y[r[i]] += v[i] * x[c[i]]. *)
val spmv_like : ?n:int -> unit -> Ast.kernel

(** In-place FIR smoothing — a loop-carried RAW at distance one (a PreVV
    worst case: every load is premature and wrong). *)
val fir_smooth : ?n:int -> unit -> Ast.kernel

(** Matrix-vector accumulate with distance-one reuse of y[i]. *)
val matvec : ?n:int -> unit -> Ast.kernel

(** Ping-pong two-array 1-D stencil over several time steps. *)
val stencil1d : ?n:int -> ?steps:int -> unit -> Ast.kernel

(** BiCG-style double accumulation (two accumulators, different reuse
    directions). *)
val bicg : ?n:int -> unit -> Ast.kernel

(** Running maximum over a two-slot window: distance-two reuse whose stores
    mostly rewrite unchanged values — where Eq. 5's value validation
    eliminates almost every squash. *)
val running_max : ?n:int -> unit -> Ast.kernel

(** The paper's five evaluation kernels, in Table I/II order. *)
val paper_benchmarks : unit -> Ast.kernel list

(** All bundled kernels (paper benchmarks first). *)
val all : unit -> Ast.kernel list

(** Look a bundled kernel up by name.
    @raise Invalid_argument on an unknown name. *)
val by_name : string -> Ast.kernel
