(** Random kernel generation for differential testing.

    Produces well-formed loop nests whose memory accesses stay in bounds by
    construction (indices reduced modulo the array length), so divergence
    between the interpreter and a simulated circuit is always a genuine
    bug.  Shapes cover affine accumulators at random reuse distances,
    indirect scatter, multi-statement bodies and conditional stores. *)

type spec = {
  max_depth : int;  (** loop nesting depth, 1..3 *)
  max_stmts : int;  (** leaf statements per nest level *)
  max_arrays : int;
  array_len : int;
  trip : int;  (** trip count per loop level *)
  allow_if : bool;
  allow_indirect : bool;
  allow_div : bool;
}

val default_spec : spec

(** Generate a kernel from [seed]; equal seeds and specs give equal
    kernels. *)
val kernel : ?spec:spec -> int -> Ast.kernel

(** Deterministic input data for a generated kernel. *)
val init_for : ?spec:spec -> Ast.kernel -> int -> (string * int array) list
