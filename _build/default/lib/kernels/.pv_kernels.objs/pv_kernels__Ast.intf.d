lib/kernels/ast.mli: Format Pv_dataflow
