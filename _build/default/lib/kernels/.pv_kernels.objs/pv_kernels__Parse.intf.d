lib/kernels/parse.mli: Ast Format
