lib/kernels/ast.ml: Format List Pv_dataflow Stdlib String
