lib/kernels/defs.mli: Ast
