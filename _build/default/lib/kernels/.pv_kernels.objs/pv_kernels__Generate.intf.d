lib/kernels/generate.mli: Ast
