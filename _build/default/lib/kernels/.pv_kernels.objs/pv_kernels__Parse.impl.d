lib/kernels/parse.ml: Ast Filename Format List Printf Pv_dataflow Result String
