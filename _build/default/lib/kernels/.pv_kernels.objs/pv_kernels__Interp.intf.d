lib/kernels/interp.mli: Ast Hashtbl
