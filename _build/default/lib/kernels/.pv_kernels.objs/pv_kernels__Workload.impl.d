lib/kernels/workload.ml: Array Ast Hashtbl List
