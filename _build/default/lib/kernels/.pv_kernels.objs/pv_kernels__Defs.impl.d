lib/kernels/defs.ml: Ast List Printf Pv_dataflow Stdlib String
