lib/kernels/generate.ml: Ast List Printf Pv_dataflow Workload
