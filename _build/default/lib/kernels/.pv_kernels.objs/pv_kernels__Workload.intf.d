lib/kernels/workload.mli: Ast
