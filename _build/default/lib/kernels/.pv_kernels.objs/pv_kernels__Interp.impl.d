lib/kernels/interp.ml: Array Ast Hashtbl List Printf Pv_dataflow
