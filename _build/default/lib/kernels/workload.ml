(** Deterministic workload generation.

    A small LCG gives reproducible pseudo-random inputs without depending
    on [Random]'s global state, so benchmark runs and tests always see the
    same data (the paper's kernels likewise run on fixed test vectors for
    the ModelSim-vs-C++ check). *)

type rng = { mutable s : int }

let rng seed = { s = (seed lxor 0x9e3779b9) land 0x3fffffff }

let next r =
  (* Numerical Recipes LCG constants, folded to 30 bits *)
  r.s <- ((r.s * 1664525) + 1013904223) land 0x3fffffff;
  r.s

let int r bound = if bound <= 0 then 0 else next r mod bound

(** Array of [len] values in [lo, hi). *)
let array r ~len ~lo ~hi = Array.init len (fun _ -> lo + int r (hi - lo))

(** Permutation-ish index array: values in [0, range) with good spread. *)
let index_array r ~len ~range = Array.init len (fun _ -> int r range)

(** Default input data for each kernel, keyed by array name.  Arrays not
    listed are zero-initialised by {!Interp.run}. *)
let default_init (k : Ast.kernel) : (string * int array) list =
  let r = rng (Hashtbl.hash k.Ast.name) in
  let len name = List.assoc name k.Ast.arrays in
  match k.Ast.name with
  | "polyn_mult" ->
      [
        ("a", array r ~len:(len "a") ~lo:1 ~hi:9);
        ("b", array r ~len:(len "b") ~lo:1 ~hi:9);
      ]
  | "2mm" ->
      [
        ("A", array r ~len:(len "A") ~lo:1 ~hi:7);
        ("B", array r ~len:(len "B") ~lo:1 ~hi:7);
        ("C", array r ~len:(len "C") ~lo:1 ~hi:7);
      ]
  | "3mm" ->
      [
        ("A", array r ~len:(len "A") ~lo:1 ~hi:5);
        ("B", array r ~len:(len "B") ~lo:1 ~hi:5);
        ("C", array r ~len:(len "C") ~lo:1 ~hi:5);
        ("D", array r ~len:(len "D") ~lo:1 ~hi:5);
      ]
  | "gaussian" ->
      (* small pivots and large off-diagonals so the integer-division
         factors are non-zero and the elimination really rewrites data *)
      let n = int_of_float (sqrt (float_of_int (len "a"))) in
      let a =
        Array.init (len "a") (fun ix ->
            let row = ix / n and col = ix mod n in
            if row = col then 2 + int r 5 else 10 + int r 90)
      in
      [ ("a", a) ]
  | "triangular" | "triangular_tight" ->
      let n = int_of_float (sqrt (float_of_int (len "a"))) in
      let lower src =
        Array.init (len src) (fun ix ->
            let row = ix / n and col = ix mod n in
            if col <= row then 1 + int r 9 else 0)
      in
      [ ("a", lower "a"); ("b", lower "b") ]
  | "histogram" -> [ ("b", index_array r ~len:(len "b") ~range:(len "a")) ]
  | "fn_dependent" -> [ ("b", index_array r ~len:(len "b") ~range:(len "b" - 8)) ]
  | "cond_update" ->
      [
        ("x", array r ~len:(len "x") ~lo:0 ~hi:100);
        ("y", index_array r ~len:(len "y") ~range:(len "s"));
      ]
  | "spmv_like" ->
      [
        ("r", index_array r ~len:(len "r") ~range:(len "y"));
        ("c", index_array r ~len:(len "c") ~range:(len "x"));
        ("vv", array r ~len:(len "vv") ~lo:1 ~hi:9);
        ("x", array r ~len:(len "x") ~lo:1 ~hi:9);
      ]
  | "fir_smooth" -> [ ("x", array r ~len:(len "x") ~lo:0 ~hi:200) ]
  | "matvec" ->
      [
        ("A", array r ~len:(len "A") ~lo:1 ~hi:9);
        ("x", array r ~len:(len "x") ~lo:1 ~hi:9);
      ]
  | "stencil1d" -> [ ("u", array r ~len:(len "u") ~lo:0 ~hi:100) ]
  | "running_max" ->
      (* front-loaded maxima so later stores rewrite unchanged values *)
      let n = len "x" in
      [
        ( "x",
          Array.init n (fun i ->
              if i < n / 4 then 150 + int r 100 else int r 120) );
      ]
  | "bicg" ->
      [
        ("A", array r ~len:(len "A") ~lo:1 ~hi:7);
        ("r", array r ~len:(len "r") ~lo:1 ~hi:7);
        ("p", array r ~len:(len "p") ~lo:1 ~hi:7);
      ]
  | _ -> []
