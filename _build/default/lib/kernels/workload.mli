(** Deterministic workload generation.

    A small LCG gives reproducible pseudo-random inputs without touching
    [Random]'s global state, so benchmark runs and tests always see the
    same data (the paper's kernels likewise run on fixed test vectors for
    the ModelSim-vs-C++ check). *)

type rng

val rng : int -> rng
val next : rng -> int

(** [int r bound] is uniform-ish in [\[0, bound)]; 0 when [bound <= 0]. *)
val int : rng -> int -> int

(** Array of [len] values in [\[lo, hi)]. *)
val array : rng -> len:int -> lo:int -> hi:int -> int array

(** Index array: values in [\[0, range)]. *)
val index_array : rng -> len:int -> range:int -> int array

(** Default input data for each bundled kernel, keyed by array name;
    arrays not listed are zero-initialised by {!Interp.run}.  Seeded from
    the kernel name, so repeated calls agree. *)
val default_init : Ast.kernel -> (string * int array) list
