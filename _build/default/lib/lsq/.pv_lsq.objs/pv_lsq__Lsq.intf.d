lib/lsq/lsq.mli: Format Pv_dataflow Pv_memory
