lib/lsq/lsq.ml: Array Format Hashtbl List Portmap Pv_dataflow Pv_memory Queue
