examples/depth_sweep.ml: Experiment Format List Pipeline Pv_core Pv_dataflow Pv_kernels Pv_prevv Pv_resource
