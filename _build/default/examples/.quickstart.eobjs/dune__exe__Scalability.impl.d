examples/scalability.ml: Experiment Format List Pipeline Printf Pv_core Pv_frontend Pv_kernels Pv_memory Pv_prevv Pv_resource
