examples/differential.ml: Array Format List Pipeline Pv_core Pv_dataflow Pv_frontend Pv_kernels Pv_memory Sys
