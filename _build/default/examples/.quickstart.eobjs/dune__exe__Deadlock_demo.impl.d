examples/deadlock_demo.ml: Format Pipeline Pv_core Pv_dataflow Pv_frontend Pv_kernels
