examples/scalability.mli:
