examples/quickstart.ml: Filename Format List Pipeline Printf Pv_core Pv_dataflow Pv_frontend Pv_kernels Pv_netlist Pv_resource String
