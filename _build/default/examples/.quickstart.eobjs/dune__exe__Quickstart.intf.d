examples/quickstart.mli:
