examples/differential.mli:
