examples/depth_sweep.mli:
