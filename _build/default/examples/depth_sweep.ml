(* Sec. V-A: the premature-queue depth trade-off (Defs. 2-3, Eqs. 6-7).

   Sweeping Depth_q on the gaussian kernel shows the two regimes the paper
   describes: a too-shallow queue backpressures the pipeline (cycles grow),
   a too-deep queue wastes area (LUTs grow) with no speed left to gain.
   The sizing model picks the matched depth between them.

     dune exec examples/depth_sweep.exe *)

open Pv_core

let () =
  let kernel = Pv_kernels.Defs.gaussian () in
  Format.printf "Queue-depth sweep on %s:@.@." kernel.Pv_kernels.Ast.name;
  Format.printf "  %-8s %10s %10s %12s@." "depth" "cycles" "LUT" "full-stalls";
  let points =
    List.filter_map
      (fun d ->
        match Experiment.run kernel (Pipeline.prevv d) with
        | p ->
            Format.printf "  %-8d %10d %10d %12d@." d p.Experiment.cycles
              p.Experiment.report.Pv_resource.Report.luts
              p.Experiment.mem_stats.Pv_dataflow.Memif.stall_full;
            Some (d, p)
        | exception Invalid_argument msg ->
            Format.printf "  %-8d (infeasible: %s)@." d msg;
            None)
      [ 4; 8; 12; 16; 24; 32; 48; 64; 96 ]
  in
  (* the smallest depth within 2% of the best cycle count *)
  let best_cycles =
    List.fold_left (fun m (_, p) -> min m p.Experiment.cycles) max_int points
  in
  let matched =
    List.find_opt
      (fun (_, p) -> p.Experiment.cycles * 100 <= best_cycles * 102)
      points
  in
  (match matched with
  | Some (d, _) ->
      Format.printf "@.empirically matched depth (within 2%% of best): %d@." d
  | None -> ());
  (* the analytic model of Eqs. 6-7, parameterised from the sweep *)
  let t_org = 10.0 and p_s = 0.01 and t_token = 180.0 in
  Format.printf
    "analytic matched depth (Eqs. 6-7, t_org=%.0f cycles, P_s=%.2f, \
     t_token=%.0f cycles): %d@."
    t_org p_s t_token
    (Pv_prevv.Sizing.matched_depth ~t_org ~p_s ~t_token);
  Format.printf
    "@.Reading: cycles fall steeply until the queue covers the pipeline's@.\
     premature window, then flatten; LUTs keep growing linearly — the@.\
     trade-off of the paper's conclusion (PreVV16 vs PreVV64).@."
