(* Differential testing as a workflow: generate random kernels, run them
   through every disambiguation backend, and check all final memories
   against the reference interpreter — the methodology that caught a real
   out-of-bounds-speculation bug in this library's own backend during
   development.

     dune exec examples/differential.exe [-- SEED_COUNT] *)

open Pv_core

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 25 in
  let schemes =
    [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16; Pipeline.prevv 64 ]
  in
  Format.printf "Differential run over %d generated kernels x %d schemes:@.@."
    n (List.length schemes);
  let failures = ref 0 and squashy = ref 0 in
  for seed = 0 to n - 1 do
    let kernel = Pv_kernels.Generate.kernel seed in
    let init = Pv_kernels.Generate.init_for kernel seed in
    let info = Pv_frontend.Depend.analyse kernel in
    Format.printf "seed %-4d %d leaves, %d ports, %d ambiguous arrays:" seed
      (List.length info.Pv_frontend.Depend.leaves)
      (Array.length info.Pv_frontend.Depend.portmap.Pv_memory.Portmap.ports)
      info.Pv_frontend.Depend.portmap.Pv_memory.Portmap.n_instances;
    List.iter
      (fun dis ->
        match Pipeline.check ~init kernel dis with
        | Ok r ->
            if r.Pipeline.mem_stats.Pv_dataflow.Memif.squashes > 0 then
              incr squashy;
            Format.printf " %s=%d" (Pipeline.name_of dis) r.Pipeline.cycles
        | Error e ->
            incr failures;
            Format.printf " %s=FAIL(%s)" (Pipeline.name_of dis) e)
      schemes;
    Format.printf "@."
  done;
  Format.printf "@.%d failures; %d runs exercised squash/replay.@." !failures
    !squashy;
  if !failures > 0 then exit 1
