(* Quickstart: compile a kernel with data hazards into a dataflow circuit,
   run it under PreVV, verify it against the reference interpreter, and
   print the area/timing report.

     dune exec examples/quickstart.exe *)

open Pv_core

let () =
  (* Fig. 2(a) of the paper: a[b[i]] += A; b[i] += B — a read-after-write
     hazard whose distance is only known at run time. *)
  let kernel = Pv_kernels.Defs.histogram ~n:64 () in
  Format.printf "Kernel under test:@.%a@.@." Pv_kernels.Ast.pp_kernel kernel;

  (* 1. Compile: dependence analysis, loop-nest trace, elastic circuit. *)
  let compiled = Pipeline.compile kernel in
  let info = compiled.Pipeline.info in
  Format.printf "Ambiguous arrays (disambiguation instances): %s@."
    (String.concat ", "
       (List.map
          (fun (a, cls) ->
            Printf.sprintf "%s (%s)" a
              (match cls with
              | Pv_frontend.Depend.Affine -> "affine"
              | Pv_frontend.Depend.Indirect -> "indirect"))
          info.Pv_frontend.Depend.ambiguous_arrays));
  Format.printf "Circuit: %d components, %d channels@.@."
    (Pv_dataflow.Graph.n_nodes compiled.Pipeline.graph)
    (Pv_dataflow.Graph.n_chans compiled.Pipeline.graph);

  (* 2. Simulate under PreVV with a 16-deep premature queue. *)
  let dis = Pipeline.prevv 16 in
  let result = Pipeline.simulate compiled dis in
  Format.printf "Simulation (%s): %a@." (Pipeline.name_of dis)
    Pv_dataflow.Sim.pp_outcome result.Pipeline.outcome;
  Format.printf "Memory-system activity: %a@.@." Pv_dataflow.Memif.pp_stats
    result.Pipeline.mem_stats;

  (* 3. Verify against the reference interpreter (the paper's
        ModelSim-vs-C++ check). *)
  (match Pipeline.verify compiled result with
  | [] -> Format.printf "VERIFIED: final memory matches the interpreter@.@."
  | diffs ->
      Format.printf "MISMATCHES: %d (first: %s)@.@." (List.length diffs)
        (match diffs with
        | (a, i, want, got) :: _ ->
            Printf.sprintf "%s[%d] want %d got %d" a i want got
        | [] -> assert false));

  (* 4. Area and clock period, and the comparison against the LSQ. *)
  let report d = Pv_resource.Report.of_circuit compiled.Pipeline.graph
      info.Pv_frontend.Depend.portmap d
  in
  let prevv = report (Pv_netlist.Elaborate.D_prevv 16) in
  let lsq = report (Pv_netlist.Elaborate.D_fast_lsq 32) in
  Format.printf "PreVV16 : %a@." Pv_resource.Report.pp prevv;
  Format.printf "fast LSQ: %a@." Pv_resource.Report.pp lsq;
  Format.printf "LUT saving vs LSQ: %.1f%%  FF saving: %.1f%%@."
    (100.0
    *. (1.0
       -. float_of_int prevv.Pv_resource.Report.luts
          /. float_of_int lsq.Pv_resource.Report.luts))
    (100.0
    *. (1.0
       -. float_of_int prevv.Pv_resource.Report.ffs
          /. float_of_int lsq.Pv_resource.Report.ffs));

  (* 5. Emit the structural netlist, like the VHDL the paper hands to
        Vivado. *)
  let nl =
    Pv_netlist.Elaborate.circuit compiled.Pipeline.graph
      info.Pv_frontend.Depend.portmap (Pv_netlist.Elaborate.D_prevv 16)
  in
  let path = Filename.temp_file "histogram_prevv16" ".vhd" in
  Pv_netlist.Emit.to_file path ~entity:"histogram_prevv16" nl;
  Format.printf "Structural netlist written to %s@." path
