(* Sec. V-C / Fig. 6: an ambiguous pair whose store sits behind an `if`.

   Without fake tokens the arbiter never hears from the untaken branch, the
   commit frontier starves, the premature queue backs up and the pipeline
   deadlocks.  With fake tokens the untaken branch notifies the arbiter and
   everything drains.

     dune exec examples/deadlock_demo.exe *)

open Pv_core

let run ~fake_tokens =
  let kernel = Pv_kernels.Defs.cond_update ~n:64 ~threshold:50 () in
  let options =
    { Pv_frontend.Build.default_options with Pv_frontend.Build.fake_tokens }
  in
  let compiled = Pipeline.compile ~options kernel in
  let sim_cfg =
    { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.stall_limit = 512 }
  in
  Pipeline.simulate ~sim_cfg compiled (Pipeline.prevv ~fake_tokens 8)

let () =
  let kernel = Pv_kernels.Defs.cond_update () in
  Format.printf "Kernel (store inside a conditional):@.%a@.@."
    Pv_kernels.Ast.pp_kernel kernel;

  Format.printf "--- run 1: PreVV with fake tokens (Sec. V-C) ---@.";
  let ok = run ~fake_tokens:true in
  Format.printf "outcome: %a@." Pv_dataflow.Sim.pp_outcome ok.Pipeline.outcome;
  Format.printf "fake tokens sent by the untaken branch: %d@.@."
    ok.Pipeline.mem_stats.Pv_dataflow.Memif.fake_tokens;

  Format.printf "--- run 2: same circuit, fake tokens removed ---@.";
  let bad = run ~fake_tokens:false in
  Format.printf "outcome: %a@." Pv_dataflow.Sim.pp_outcome bad.Pipeline.outcome;
  Format.printf
    "the arbiter received %d fake tokens; the commit frontier starved on the@.\
     first untaken iteration and the pipeline wedged, exactly the failure@.\
     mode of the paper's Fig. 6.@."
    bad.Pipeline.mem_stats.Pv_dataflow.Memif.fake_tokens
