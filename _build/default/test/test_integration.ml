(* End-to-end integration: every kernel under every disambiguation scheme
   must finish and leave exactly the memory the reference interpreter
   computes (the paper's ModelSim-vs-C++ check), plus failure-injection
   and randomized-equivalence properties. *)

open Pv_core

let configs () =
  [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16; Pipeline.prevv 64 ]

let check_ok kernel dis () =
  match Pipeline.check kernel dis with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let grid_cases =
  List.concat_map
    (fun kernel ->
      List.map
        (fun dis ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" kernel.Pv_kernels.Ast.name
               (Pipeline.name_of dis))
            `Quick
            (check_ok kernel dis))
        (configs ()))
    (Pv_kernels.Defs.all ())

(* squash/replay really happens and still converges to the right answer *)
let test_squashes_yet_correct () =
  match Pipeline.check (Pv_kernels.Defs.triangular_tight ()) (Pipeline.prevv 16) with
  | Ok r ->
      Alcotest.(check bool) "squashes occurred" true
        (r.Pipeline.mem_stats.Pv_dataflow.Memif.squashes > 0);
      Alcotest.(check bool) "ops were replayed" true
        (r.Pipeline.mem_stats.Pv_dataflow.Memif.replayed_ops > 0)
  | Error e -> Alcotest.fail e

(* depth-16 pressure: gaussian stalls at the shallow queue, recovers at 64 *)
let test_depth_pressure () =
  let cycles d =
    match Pipeline.check (Pv_kernels.Defs.gaussian ()) (Pipeline.prevv d) with
    | Ok r -> r.Pipeline.cycles
    | Error e -> Alcotest.fail e
  in
  let c16 = cycles 16 and c64 = cycles 64 in
  Alcotest.(check bool)
    (Printf.sprintf "16-deep (%d) slower than 64-deep (%d)" c16 c64)
    true
    (c16 > c64 * 11 / 10)

(* failure injection: removing fake tokens deadlocks the conditional kernel *)
let test_fake_token_removal_deadlocks () =
  let options =
    { Pv_frontend.Build.default_options with Pv_frontend.Build.fake_tokens = false }
  in
  let compiled = Pipeline.compile ~options (Pv_kernels.Defs.cond_update ()) in
  let sim_cfg =
    { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.stall_limit = 256 }
  in
  let r = Pipeline.simulate ~sim_cfg compiled (Pipeline.prevv ~fake_tokens:false 8) in
  match r.Pipeline.outcome with
  | Pv_dataflow.Sim.Deadlock _ -> ()
  | o ->
      Alcotest.failf "expected deadlock, got %a" Pv_dataflow.Sim.pp_outcome o

(* failure injection: an infeasible queue depth is rejected up front *)
let test_infeasible_depth_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pipeline.check (Pv_kernels.Defs.gaussian ()) (Pipeline.prevv 2));
       false
     with Invalid_argument _ -> true)

(* LSQ baselines never squash (they never speculate) *)
let test_lsq_never_squashes () =
  List.iter
    (fun kernel ->
      match Pipeline.check kernel Pipeline.fast_lsq with
      | Ok r ->
          Alcotest.(check int)
            (kernel.Pv_kernels.Ast.name ^ " squashes")
            0 r.Pipeline.mem_stats.Pv_dataflow.Memif.squashes
      | Error e -> Alcotest.fail e)
    (Pv_kernels.Defs.paper_benchmarks ())

(* cond_update exercises fake tokens under every scheme *)
let test_fake_tokens_flow () =
  List.iter
    (fun dis ->
      match Pipeline.check (Pv_kernels.Defs.cond_update ()) dis with
      | Ok r ->
          Alcotest.(check bool)
            (Pipeline.name_of dis ^ " fake tokens seen")
            true
            (r.Pipeline.mem_stats.Pv_dataflow.Memif.fake_tokens > 0)
      | Error e -> Alcotest.fail e)
    (configs ())

(* randomized scatter-accumulate kernels: circuit == interpreter for every
   backend, random index patterns and sizes *)
let prop_random_scatter_equivalence =
  QCheck.Test.make ~count:12 ~name:"random scatter kernels verify end-to-end"
    QCheck.(triple (int_range 8 40) (int_range 0 1000) (int_range 0 3))
    (fun (n, seed, which) ->
      let kernel =
        Pv_kernels.Ast.(
          {
            name = "rand_scatter";
            arrays = [ ("idx", n); ("acc", n); ("src", n) ];
            params = [];
            body =
              [
                for_ "i" (i 0) (i n)
                  [
                    store "acc" (idx "idx" (v "i"))
                      (idx "acc" (idx "idx" (v "i")) + idx "src" (v "i"));
                  ];
              ];
          })
      in
      let r = Pv_kernels.Workload.rng seed in
      let init =
        [
          ("idx", Pv_kernels.Workload.index_array r ~len:n ~range:n);
          ("src", Pv_kernels.Workload.array r ~len:n ~lo:1 ~hi:50);
        ]
      in
      let dis =
        match which with
        | 0 -> Pipeline.plain_lsq
        | 1 -> Pipeline.fast_lsq
        | 2 -> Pipeline.prevv 16
        | _ -> Pipeline.prevv 64
      in
      match Pipeline.check ~init kernel dis with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

(* randomized short-distance accumulators force mis-speculation and replay;
   results must still match *)
let prop_random_tight_reuse =
  QCheck.Test.make ~count:12 ~name:"tight-reuse kernels squash and still verify"
    QCheck.(pair (int_range 2 6) (int_range 20 60))
    (fun (stride, n) ->
      let kernel =
        Pv_kernels.Ast.(
          {
            name = "tight";
            arrays = [ ("acc", stride); ("src", n) ];
            params = [ ("S", stride) ];
            body =
              [
                for_ "i" (i 0) (i n)
                  [
                    store "acc" (v "i" % v "S")
                      (idx "acc" (v "i" % v "S") + idx "src" (v "i"));
                  ];
              ];
          })
      in
      let r = Pv_kernels.Workload.rng (stride * 1000 + n) in
      let init = [ ("src", Pv_kernels.Workload.array r ~len:n ~lo:1 ~hi:9) ] in
      match Pipeline.check ~init kernel (Pipeline.prevv 16) with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

let () =
  Alcotest.run "integration"
    [
      ("grid (kernel x scheme, verified)", grid_cases);
      ( "behaviour",
        [
          Alcotest.test_case "squashes yet correct" `Quick
            test_squashes_yet_correct;
          Alcotest.test_case "depth pressure" `Quick test_depth_pressure;
          Alcotest.test_case "fake-token removal deadlocks" `Quick
            test_fake_token_removal_deadlocks;
          Alcotest.test_case "infeasible depth rejected" `Quick
            test_infeasible_depth_rejected;
          Alcotest.test_case "LSQ never squashes" `Quick test_lsq_never_squashes;
          Alcotest.test_case "fake tokens flow" `Quick test_fake_tokens_flow;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_scatter_equivalence;
          QCheck_alcotest.to_alcotest prop_random_tight_reuse;
        ] );
    ]
