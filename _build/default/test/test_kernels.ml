(* Tests for the kernel mini-language: interpreter semantics, the paper's
   kernel definitions, and workload determinism. *)

open Pv_kernels

(* --- interpreter semantics ------------------------------------------------ *)

let test_store_and_load () =
  let k =
    Ast.
      {
        name = "t";
        arrays = [ ("a", 4) ];
        params = [];
        body = [ store "a" (i 1) (i 42); store "a" (i 2) (idx "a" (i 1) + i 1) ];
      }
  in
  let st = Interp.run k ~init:[] in
  Alcotest.(check (array int)) "final a" [| 0; 42; 43; 0 |] (Hashtbl.find st "a")

let test_for_loop () =
  let k =
    Ast.
      {
        name = "t";
        arrays = [ ("a", 8) ];
        params = [ ("N", 8) ];
        body = [ for_ "i" (i 0) (v "N") [ store "a" (v "i") (v "i" * v "i") ] ];
      }
  in
  let st = Interp.run k ~init:[] in
  Alcotest.(check (array int)) "squares"
    [| 0; 1; 4; 9; 16; 25; 36; 49 |]
    (Hashtbl.find st "a")

let test_if () =
  let k =
    Ast.
      {
        name = "t";
        arrays = [ ("a", 6) ];
        params = [];
        body =
          [
            for_ "i" (i 0) (i 6)
              [
                If
                  ( v "i" % i 2 = i 0,
                    [ store "a" (v "i") (i 1) ],
                    [ store "a" (v "i") (i (-1)) ] );
              ];
          ];
      }
  in
  let st = Interp.run k ~init:[] in
  Alcotest.(check (array int)) "parity" [| 1; -1; 1; -1; 1; -1 |]
    (Hashtbl.find st "a")

let test_unbound_variable () =
  let k =
    Ast.
      { name = "t"; arrays = [ ("a", 1) ]; params = []; body = [ store "a" (i 0) (v "x") ] }
  in
  Alcotest.check_raises "unbound" (Interp.Unbound_variable "x") (fun () ->
      ignore (Interp.run k ~init:[]))

let test_out_of_bounds () =
  let k =
    Ast.
      { name = "t"; arrays = [ ("a", 2) ]; params = []; body = [ store "a" (i 5) (i 0) ] }
  in
  Alcotest.check_raises "oob"
    (Interp.Out_of_bounds { array = "a"; index = 5; length = 2 })
    (fun () -> ignore (Interp.run k ~init:[]))

let test_division_guard () =
  (* division by zero evaluates to 0 (hardware-style saturation) *)
  let k =
    Ast.
      {
        name = "t";
        arrays = [ ("a", 1) ];
        params = [];
        body = [ store "a" (i 0) (i 7 / i 0) ];
      }
  in
  let st = Interp.run k ~init:[] in
  Alcotest.(check int) "div0 -> 0" 0 (Hashtbl.find st "a").(0)

(* --- kernel definitions --------------------------------------------------- *)

(* polyn_mult against a direct reference implementation *)
let test_polyn_mult_reference () =
  let n = 12 in
  let k = Defs.polyn_mult ~n () in
  let init = Workload.default_init k in
  let st = Interp.run k ~init in
  let a = List.assoc "a" init and b = List.assoc "b" init in
  let expect = Array.make ((2 * n) - 1) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      expect.(i + j) <- expect.(i + j) + (a.(i) * b.(j))
    done
  done;
  Alcotest.(check (array int)) "c = a conv b" expect (Hashtbl.find st "c")

(* 2mm against matrix algebra *)
let test_two_mm_reference () =
  let n = 5 in
  let k = Defs.two_mm ~n () in
  let init = Workload.default_init k in
  let st = Interp.run k ~init in
  let a = List.assoc "A" init and b = List.assoc "B" init and c = List.assoc "C" init in
  let matmul x y =
    Array.init (n * n) (fun ix ->
        let i = ix / n and j = ix mod n in
        let acc = ref 0 in
        for q = 0 to n - 1 do
          acc := !acc + (x.((i * n) + q) * y.((q * n) + j))
        done;
        !acc)
  in
  let tmp = matmul a b in
  Alcotest.(check (array int)) "tmp" tmp (Hashtbl.find st "tmp");
  Alcotest.(check (array int)) "D" (matmul tmp c) (Hashtbl.find st "D")

(* gaussian zeroes nothing in column k during step k (factor stays valid) *)
let test_gaussian_upper_triangularises () =
  let n = 8 in
  let k = Defs.gaussian ~n () in
  let init = Workload.default_init k in
  let st = Interp.run k ~init in
  let a = Hashtbl.find st "a" in
  (* the elimination runs to completion: the result differs from the input
     and the trailing element has been updated n-1 times *)
  let orig = List.assoc "a" init in
  Alcotest.(check bool) "matrix changed" true (a <> orig);
  Alcotest.(check int) "size preserved" (n * n) (Array.length a)

(* triangular result only touches the lower triangle *)
let test_triangular_lower_only () =
  let n = 6 in
  let k = Defs.triangular ~n () in
  let init = Workload.default_init k in
  let st = Interp.run k ~init in
  let c = Hashtbl.find st "c" in
  let upper_zero = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if c.((i * n) + j) <> 0 then upper_zero := false
    done
  done;
  Alcotest.(check bool) "upper triangle untouched" true !upper_zero

(* triangular and triangular_tight compute the same function *)
let test_triangular_variants_agree () =
  let n = 7 in
  let a = Defs.triangular ~n () and b = Defs.triangular_tight ~n () in
  let init = Workload.default_init a in
  let sa = Interp.run a ~init and sb = Interp.run b ~init in
  Alcotest.(check (array int)) "same product" (Hashtbl.find sa "c")
    (Hashtbl.find sb "c")

let test_histogram_counts () =
  let k = Defs.histogram ~n:16 () in
  let init = Workload.default_init k in
  let st = Interp.run k ~init in
  let b0 = List.assoc "b" init in
  let a = Hashtbl.find st "a" in
  (* every a[x] is A * (number of i with b[i] = x) *)
  let expect = Array.make 16 0 in
  Array.iter (fun x -> expect.(x) <- expect.(x) + 3) b0;
  Alcotest.(check (array int)) "histogram" expect a

let test_count_instances () =
  let k = Defs.polyn_mult ~n:10 () in
  Alcotest.(check int) "polyn instances" 100
    (Interp.count_instances k ~init:(Workload.default_init k));
  let g = Defs.gaussian ~n:6 () in
  (* sum over k of (n-k-1)^2 *)
  let expect = ref 0 in
  for q = 0 to 5 do
    expect := !expect + ((5 - q) * (5 - q))
  done;
  Alcotest.(check int) "gaussian instances" !expect
    (Interp.count_instances g ~init:(Workload.default_init g))

let test_by_name () =
  Alcotest.(check string) "lookup" "2mm" (Defs.by_name "2mm").Ast.name;
  Alcotest.check_raises "unknown" (Invalid_argument "unknown kernel \"nope\"")
    (fun () -> ignore (Defs.by_name "nope"))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pretty_printer () =
  let s = Format.asprintf "%a" Ast.pp_kernel (Defs.histogram ~n:4 ()) in
  Alcotest.(check bool) "mentions arrays" true (contains ~needle:"int a[4]" s);
  Alcotest.(check bool) "mentions loop" true (contains ~needle:"for (i" s)

(* --- workload determinism -------------------------------------------------- *)

let test_workload_deterministic () =
  let k = Defs.two_mm () in
  let i1 = Workload.default_init k and i2 = Workload.default_init k in
  List.iter2
    (fun (n1, a1) (n2, a2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.(check (array int)) "data" a1 a2)
    i1 i2

let test_workload_in_bounds () =
  List.iter
    (fun k ->
      let init = Workload.default_init k in
      (* the interpreter's bounds checks double as validation *)
      ignore (Interp.run k ~init))
    (Defs.all ())

(* --- properties ------------------------------------------------------------ *)

(* interpreter is deterministic: same init -> same result *)
let prop_interp_deterministic =
  QCheck.Test.make ~count:20 ~name:"interpreter deterministic"
    QCheck.(int_range 4 24)
    (fun n ->
      let k = Defs.polyn_mult ~n () in
      let init = Workload.default_init k in
      let s1 = Interp.run k ~init and s2 = Interp.run k ~init in
      Hashtbl.find s1 "c" = Hashtbl.find s2 "c")

(* polynomial multiplication is commutative in its inputs *)
let prop_polyn_commutes =
  QCheck.Test.make ~count:20 ~name:"polyn_mult commutes"
    QCheck.(int_range 2 16)
    (fun n ->
      let k = Defs.polyn_mult ~n () in
      let init = Workload.default_init k in
      let a = List.assoc "a" init and b = List.assoc "b" init in
      let r1 = Hashtbl.find (Interp.run k ~init:[ ("a", a); ("b", b) ]) "c" in
      let r2 = Hashtbl.find (Interp.run k ~init:[ ("a", b); ("b", a) ]) "c" in
      r1 = r2)

let () =
  Alcotest.run "pv_kernels"
    [
      ( "interp",
        [
          Alcotest.test_case "store/load" `Quick test_store_and_load;
          Alcotest.test_case "for loop" `Quick test_for_loop;
          Alcotest.test_case "if" `Quick test_if;
          Alcotest.test_case "unbound var" `Quick test_unbound_variable;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "division by zero" `Quick test_division_guard;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "polyn_mult reference" `Quick
            test_polyn_mult_reference;
          Alcotest.test_case "2mm reference" `Quick test_two_mm_reference;
          Alcotest.test_case "gaussian shape" `Quick
            test_gaussian_upper_triangularises;
          Alcotest.test_case "triangular lower-only" `Quick
            test_triangular_lower_only;
          Alcotest.test_case "triangular variants agree" `Quick
            test_triangular_variants_agree;
          Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
          Alcotest.test_case "count_instances" `Quick test_count_instances;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "pretty printer" `Quick test_pretty_printer;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "in bounds" `Quick test_workload_in_bounds;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_interp_deterministic;
          QCheck_alcotest.to_alcotest prop_polyn_commutes;
        ] );
    ]
