test/test_fuzz.ml: Alcotest List Pipeline Pv_core Pv_dataflow Pv_frontend Pv_kernels QCheck QCheck_alcotest
