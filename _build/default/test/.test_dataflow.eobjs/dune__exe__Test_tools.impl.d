test/test_tools.ml: Alcotest Experiment Filename List Pipeline Printf Pv_core Pv_dataflow Pv_kernels Pv_lsq Pv_memory Pv_prevv Pv_resource String Sys
