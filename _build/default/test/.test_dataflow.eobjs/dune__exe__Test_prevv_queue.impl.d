test/test_prevv_queue.ml: Alcotest Gen List Premature_queue Pv_memory Pv_prevv QCheck QCheck_alcotest
