test/test_resource.ml: Alcotest List Printf Pv_core Pv_frontend Pv_kernels Pv_netlist Pv_resource Report Timing
