test/test_prevv_queue.mli:
