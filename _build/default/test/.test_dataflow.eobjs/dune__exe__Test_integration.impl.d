test/test_integration.ml: Alcotest List Pipeline Printf Pv_core Pv_dataflow Pv_frontend Pv_kernels QCheck QCheck_alcotest
