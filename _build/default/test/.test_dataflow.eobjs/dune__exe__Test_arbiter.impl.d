test/test_arbiter.ml: Alcotest Arbiter Format List Premature_queue Pv_memory Pv_prevv QCheck QCheck_alcotest
