test/test_frontend.ml: Alcotest Array Ast Balance Build Defs Depend Interp List Printf Pv_core Pv_dataflow Pv_frontend Pv_kernels Pv_memory QCheck QCheck_alcotest Trace Workload
