test/test_prevv_backend.ml: Alcotest Array Portmap Pv_dataflow Pv_memory Pv_prevv
