test/test_lsq.ml: Alcotest Array Portmap Pv_dataflow Pv_lsq Pv_memory
