test/test_dataflow.ml: Alcotest Array Check Graph List Memif Pv_dataflow QCheck QCheck_alcotest Sim Types
