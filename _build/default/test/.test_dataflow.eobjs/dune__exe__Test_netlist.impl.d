test/test_netlist.ml: Alcotest Elaborate Emit Gen List Primitive Pv_core Pv_dataflow Pv_frontend Pv_kernels Pv_netlist QCheck QCheck_alcotest String
