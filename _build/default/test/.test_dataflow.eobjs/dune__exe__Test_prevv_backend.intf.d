test/test_prevv_backend.mli:
