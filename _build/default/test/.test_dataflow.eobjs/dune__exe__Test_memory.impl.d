test/test_memory.ml: Alcotest Array Defs Hashtbl Interp Layout List Portmap Printf Pv_dataflow Pv_frontend Pv_kernels Pv_memory Workload
