test/test_optimize.ml: Alcotest Array Ast Defs Hashtbl Interp List Pipeline Pv_core Pv_dataflow Pv_frontend Pv_kernels Pv_memory QCheck QCheck_alcotest Workload
