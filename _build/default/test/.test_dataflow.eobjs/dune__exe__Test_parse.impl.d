test/test_parse.ml: Alcotest Array Ast Defs Format Hashtbl Interp List Parse Pv_dataflow Pv_kernels QCheck QCheck_alcotest Workload
