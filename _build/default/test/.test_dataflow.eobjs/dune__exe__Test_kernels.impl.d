test/test_kernels.ml: Alcotest Array Ast Defs Format Hashtbl Interp List Pv_kernels QCheck QCheck_alcotest String Workload
