test/test_arbiter.mli:
