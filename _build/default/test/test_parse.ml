(* Tests for the kernel-language parser: literal programs, the paper's
   Fig. 2 listings, error reporting, and the print-parse round trip. *)

open Pv_kernels

let parse_ok src =
  match Parse.kernel src with
  | Ok k -> k
  | Error e -> Alcotest.failf "unexpected %a" Parse.pp_error e

let parse_err src =
  match Parse.kernel src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_minimal () =
  let k = parse_ok "int a[4];\na[0] = 1;\n" in
  Alcotest.(check string) "default name" "kernel" k.Ast.name;
  Alcotest.(check (list (pair string int))) "arrays" [ ("a", 4) ] k.Ast.arrays;
  match k.Ast.body with
  | [ Ast.Store ("a", Ast.Int 0, Ast.Int 1) ] -> ()
  | _ -> Alcotest.fail "unexpected body"

let test_header_name () =
  let k = parse_ok "// kernel myname\nint a[1];\na[0] = 0;\n" in
  Alcotest.(check string) "header name" "myname" k.Ast.name

let test_fig2a () =
  (* the paper's Fig. 2(a) listing, almost verbatim *)
  let src =
    {|
      int a[64]; int b[64];
      const int A = 3; const int B = 1;
      for (unsigned i = 0; i < 64; ++i) {
        a[b[i]] += A;
        b[i] += B;
      }
    |}
  in
  let k = parse_ok src in
  (* equivalent to the bundled histogram kernel *)
  let init = Workload.default_init (Defs.histogram ~n:64 ()) in
  let mine = Interp.run k ~init in
  let ref_ = Interp.run (Defs.histogram ~n:64 ()) ~init in
  Alcotest.(check (array int)) "same a" (Hashtbl.find ref_ "a") (Hashtbl.find mine "a");
  Alcotest.(check (array int)) "same b" (Hashtbl.find ref_ "b") (Hashtbl.find mine "b")

let test_if_else () =
  let src =
    {|
      int x[8]; int s[8];
      for (i = 0; i < 8; ++i) {
        if (x[i] > 3) { s[i] = 1; } else { s[i] = 0 - 1; }
      }
    |}
  in
  let k = parse_ok src in
  let st = Interp.run k ~init:[ ("x", [| 0; 1; 2; 3; 4; 5; 6; 7 |]) ] in
  Alcotest.(check (array int)) "threshold" [| -1; -1; -1; -1; 1; 1; 1; 1 |]
    (Hashtbl.find st "s")

let test_precedence () =
  let k = parse_ok "int a[4];\na[0] = 1 + 2 * 3;\na[1] = (1 + 2) * 3;\n" in
  let st = Interp.run k ~init:[] in
  let a = Hashtbl.find st "a" in
  Alcotest.(check int) "mul binds tighter" 7 a.(0);
  Alcotest.(check int) "parens override" 9 a.(1)

let test_comments () =
  let k =
    parse_ok
      "/* block\n comment */ int a[2]; // trailing\na[0] = 1; /* mid */ a[1] = 2;"
  in
  Alcotest.(check int) "two stores" 2 (List.length k.Ast.body)

let test_minus_assign_and_unary () =
  let k = parse_ok "int a[2];\na[0] = 10;\na[0] -= 3;\na[1] = -4;\n" in
  let st = Interp.run k ~init:[] in
  let a = Hashtbl.find st "a" in
  Alcotest.(check int) "-=" 7 a.(0);
  Alcotest.(check int) "unary minus" (-4) a.(1)

let test_error_position () =
  let e = parse_err "int a[4];\na[0] = ;\n" in
  Alcotest.(check int) "line" 2 e.Parse.line;
  Alcotest.(check bool) "message mentions expression" true
    (e.Parse.message = "expected expression")

let test_error_bound_var () =
  let e = parse_err "int a[4];\nfor (i = 0; j < 4; ++i) { a[i] = 0; }" in
  Alcotest.(check bool) "bound check" true
    (e.Parse.message = "loop bound must test the induction variable")

(* the printer's output parses back to a semantically identical kernel *)
let roundtrip k =
  let printed = Format.asprintf "%a" Ast.pp_kernel k in
  match Parse.kernel printed with
  | Error e ->
      Alcotest.failf "round trip of %s failed: %a@.%s" k.Ast.name
        Parse.pp_error e printed
  | Ok k' ->
      let init = Workload.default_init k in
      let a = Interp.run k ~init and b = Interp.run k' ~init in
      List.iter
        (fun (name, _) ->
          Alcotest.(check (array int))
            (k.Ast.name ^ "." ^ name)
            (Hashtbl.find a name) (Hashtbl.find b name))
        k.Ast.arrays

let test_roundtrip_bundled () =
  List.iter
    (fun k ->
      (* running_max uses the max operator, which has no C spelling here *)
      if k.Ast.name <> "running_max" then roundtrip k)
    (Defs.all ())

(* random expressions round-trip through print + parse *)
let prop_expr_roundtrip =
  let rec expr_gen depth =
    QCheck.Gen.(
      if depth = 0 then
        oneof [ map (fun n -> Ast.Int n) (int_range 0 99); return (Ast.Var "i") ]
      else
        frequency
          [
            (2, map (fun n -> Ast.Int n) (int_range 0 99));
            (2, return (Ast.Var "i"));
            (1, map (fun e -> Ast.Idx ("a", e)) (expr_gen (depth - 1)));
            ( 3,
              map3
                (fun op l r -> Ast.Bin (op, l, r))
                (oneofl
                   Pv_dataflow.Types.
                     [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ])
                (expr_gen (depth - 1))
                (expr_gen (depth - 1)) );
          ])
  in
  QCheck.Test.make ~count:200 ~name:"expression print/parse round trip"
    (QCheck.make (expr_gen 4))
    (fun e ->
      let k =
        { Ast.name = "rt"; arrays = [ ("a", 100) ]; params = []; body = [ Ast.Store ("a", Ast.Int 0, e) ] }
      in
      let printed = Format.asprintf "%a" Ast.pp_kernel k in
      match Parse.kernel printed with
      | Error _ -> false
      | Ok k' -> (
          match (k.Ast.body, k'.Ast.body) with
          | [ Ast.Store (_, _, e1) ], [ Ast.Store (_, _, e2) ] ->
              (* compare by evaluation on a fixed environment *)
              let st = Hashtbl.create 1 in
              Hashtbl.replace st "a" (Array.init 100 (fun i -> (i * 13) mod 97));
              let env = [ ("i", 7) ] in
              (try Interp.eval st env e1 = Interp.eval st env e2
               with Interp.Out_of_bounds _ -> true)
          | _ -> false))

let () =
  Alcotest.run "pv_parse"
    [
      ( "parse",
        [
          Alcotest.test_case "minimal" `Quick test_minimal;
          Alcotest.test_case "header name" `Quick test_header_name;
          Alcotest.test_case "Fig. 2(a)" `Quick test_fig2a;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "-= and unary minus" `Quick
            test_minus_assign_and_unary;
          Alcotest.test_case "error position" `Quick test_error_position;
          Alcotest.test_case "bound variable check" `Quick test_error_bound_var;
          Alcotest.test_case "bundled kernels round-trip" `Quick
            test_roundtrip_bundled;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_expr_roundtrip ]);
    ]
