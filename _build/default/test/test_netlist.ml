(* Tests for the structural netlist and its aggregation. *)

open Pv_netlist
module P = Primitive

let test_totals_math () =
  let nl =
    [
      { P.path = "a"; prim = P.Lut 4; count = 10 };
      { P.path = "b"; prim = P.Ff; count = 7 };
      { P.path = "c"; prim = P.Lutram 8; count = 2 };  (* 2 banks x 8 bits *)
      { P.path = "d"; prim = P.Muxf; count = 3 };
      { P.path = "e"; prim = P.Dsp; count = 1 };
    ]
  in
  let t = P.totals nl in
  Alcotest.(check int) "luts incl. lutram" 26 t.P.luts;
  Alcotest.(check int) "ffs" 7 t.P.ffs;
  Alcotest.(check int) "muxes" 3 t.P.muxes;
  Alcotest.(check int) "dsps" 1 t.P.dsps

let test_totals_filtered () =
  let nl =
    [
      { P.path = "mem/lsq0/cam"; prim = P.Lut 4; count = 5 };
      { P.path = "dp/add_1/sum"; prim = P.Lut 2; count = 3 };
    ]
  in
  let t = P.totals_filtered ~keep:(fun p -> String.length p > 3 && String.sub p 0 4 = "mem/") nl in
  Alcotest.(check int) "filtered" 5 t.P.luts

let compiled k = Pv_core.Pipeline.compile k

let test_lsq_monotone_in_depth () =
  let c = compiled (Pv_kernels.Defs.polyn_mult ~n:4 ()) in
  let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
  let luts d =
    (P.totals (Elaborate.circuit c.Pv_core.Pipeline.graph pm (Elaborate.D_plain_lsq d))).P.luts
  in
  Alcotest.(check bool) "16 < 32" true (luts 16 < luts 32);
  Alcotest.(check bool) "32 < 64" true (luts 32 < luts 64)

let test_prevv_monotone_in_depth () =
  let c = compiled (Pv_kernels.Defs.polyn_mult ~n:4 ()) in
  let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
  let luts d =
    (P.totals (Elaborate.circuit c.Pv_core.Pipeline.graph pm (Elaborate.D_prevv d))).P.luts
  in
  Alcotest.(check bool) "16 < 64" true (luts 16 < luts 64);
  Alcotest.(check bool) "64 < 128" true (luts 64 < luts 128)

let test_prevv_smaller_than_lsq () =
  (* the headline claim, at the component level *)
  List.iter
    (fun k ->
      let c = compiled k in
      let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
      let total d = P.totals (Elaborate.circuit c.Pv_core.Pipeline.graph pm d) in
      let lsq = total (Elaborate.D_fast_lsq 32) in
      let prevv = total (Elaborate.D_prevv 16) in
      Alcotest.(check bool) (k.Pv_kernels.Ast.name ^ " LUTs shrink") true
        (prevv.P.luts < lsq.P.luts);
      Alcotest.(check bool) (k.Pv_kernels.Ast.name ^ " FFs shrink") true
        (prevv.P.ffs < lsq.P.ffs))
    (Pv_kernels.Defs.paper_benchmarks ())

let test_fast_lsq_adds_area () =
  let c = compiled (Pv_kernels.Defs.polyn_mult ~n:4 ()) in
  let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
  let luts d = (P.totals (Elaborate.circuit c.Pv_core.Pipeline.graph pm d)).P.luts in
  (* the fast-token network of [8] costs a little extra area (Table I) *)
  Alcotest.(check bool) "[8] >= [15]" true
    (luts (Elaborate.D_fast_lsq 32) >= luts (Elaborate.D_plain_lsq 32))

let test_breakdown_separates_queue () =
  let c = compiled (Pv_kernels.Defs.polyn_mult ~n:4 ()) in
  let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
  let nl = Elaborate.circuit c.Pv_core.Pipeline.graph pm (Elaborate.D_plain_lsq 32) in
  let dp, queue = Elaborate.breakdown nl in
  let t = P.totals nl in
  Alcotest.(check int) "partition is exact" t.P.luts (dp.P.luts + queue.P.luts);
  Alcotest.(check bool) "queue dominates (Fig. 1)" true
    (queue.P.luts > 4 * dp.P.luts)

let test_mulc_cheaper_than_mul () =
  let mul = P.totals (Gen.binop "m" Pv_dataflow.Types.Mul 32) in
  let mulc = P.totals (Gen.binop "m" Pv_dataflow.Types.Mulc 32) in
  Alcotest.(check bool) "mulc has no DSP" true (mulc.P.dsps = 0);
  Alcotest.(check bool) "mul uses DSP" true (mul.P.dsps > 0);
  Alcotest.(check bool) "mulc has no pipeline FFs" true (mulc.P.ffs < mul.P.ffs)

let test_divider_is_large () =
  let div = P.totals (Gen.binop "d" Pv_dataflow.Types.Div 32) in
  let add = P.totals (Gen.binop "a" Pv_dataflow.Types.Add 32) in
  Alcotest.(check bool) "divider much larger than adder" true
    (div.P.luts > 4 * add.P.luts)

let test_group_totals () =
  let c = compiled (Pv_kernels.Defs.polyn_mult ~n:4 ()) in
  let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
  let nl = Elaborate.circuit c.Pv_core.Pipeline.graph pm (Elaborate.D_plain_lsq 32) in
  let groups = Pv_netlist.Primitive.group_totals ~depth:1 nl in
  (* the partition is exact *)
  let total = (P.totals nl).P.luts in
  let sum = List.fold_left (fun acc (_, t) -> acc + t.P.luts) 0 groups in
  Alcotest.(check int) "partition exact" total sum;
  (* sorted descending, and "mem" dominates (Fig. 1) *)
  (match groups with
  | (top, _) :: _ -> Alcotest.(check string) "mem biggest" "mem" top
  | [] -> Alcotest.fail "empty grouping");
  (* finer grouping separates the LSQ's internals *)
  let fine = Pv_netlist.Primitive.group_totals ~depth:2 nl in
  Alcotest.(check bool) "order matrix visible" true
    (List.exists (fun (k, _) -> k = "mem/lsq0") fine)

let test_emit_contains_primitives () =
  let c = compiled (Pv_kernels.Defs.histogram ~n:4 ()) in
  let pm = c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
  let nl = Elaborate.circuit c.Pv_core.Pipeline.graph pm (Elaborate.D_prevv 16) in
  let text = Emit.to_string ~entity:"histogram_prevv16" nl in
  let contains needle =
    let nl' = String.length needle and hl = String.length text in
    let rec go i = i + nl' <= hl && (String.sub text i nl' = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "entity" true (contains "entity histogram_prevv16");
  Alcotest.(check bool) "FDRE instances" true (contains "FDRE");
  Alcotest.(check bool) "carry chains" true (contains "CARRY4");
  Alcotest.(check bool) "totals footer" true (contains "-- totals:")

(* property: netlists scale monotonically with kernel size *)
let prop_datapath_monotone =
  QCheck.Test.make ~count:10 ~name:"datapath area grows with kernel size"
    QCheck.(pair (int_range 2 10) (int_range 1 6))
    (fun (n, extra) ->
      let small = compiled (Pv_kernels.Defs.two_mm ~n ()) in
      let big = compiled (Pv_kernels.Defs.two_mm ~n:(n + extra) ()) in
      (* same structure, larger constants: node counts comparable; datapath
         LUTs must not shrink *)
      let luts c = (P.totals (Elaborate.datapath c.Pv_core.Pipeline.graph)).P.luts in
      luts big >= luts small)

let () =
  Alcotest.run "pv_netlist"
    [
      ( "primitives",
        [
          Alcotest.test_case "totals math" `Quick test_totals_math;
          Alcotest.test_case "filtered totals" `Quick test_totals_filtered;
        ] );
      ( "macros",
        [
          Alcotest.test_case "LSQ monotone in depth" `Quick
            test_lsq_monotone_in_depth;
          Alcotest.test_case "PreVV monotone in depth" `Quick
            test_prevv_monotone_in_depth;
          Alcotest.test_case "PreVV smaller than LSQ" `Quick
            test_prevv_smaller_than_lsq;
          Alcotest.test_case "fast LSQ adds area" `Quick test_fast_lsq_adds_area;
          Alcotest.test_case "breakdown" `Quick test_breakdown_separates_queue;
        ] );
      ( "components",
        [
          Alcotest.test_case "mulc cheaper than mul" `Quick
            test_mulc_cheaper_than_mul;
          Alcotest.test_case "divider large" `Quick test_divider_is_large;
        ] );
      ( "reports",
        [ Alcotest.test_case "hierarchical grouping" `Quick test_group_totals ] );
      ("emit", [ Alcotest.test_case "vhdl-ish output" `Quick test_emit_contains_primitives ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_datapath_monotone ]);
    ]
