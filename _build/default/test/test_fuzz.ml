(* Differential fuzzing: randomly generated kernels must behave identically
   on the interpreter and on the simulated circuit under every backend,
   with and without the optimisation passes. *)

open Pv_core

let schemes = [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16; Pipeline.prevv 64 ]

let check_seed ?(options = Pv_frontend.Build.default_options) seed dis =
  let kernel = Pv_kernels.Generate.kernel seed in
  let init = Pv_kernels.Generate.init_for kernel seed in
  let compiled = Pipeline.compile ~options kernel in
  let result = Pipeline.simulate ~init compiled dis in
  match result.Pipeline.outcome with
  | Pv_dataflow.Sim.Finished _ -> (
      match Pipeline.verify ~init compiled result with
      | [] -> true
      | l ->
          QCheck.Test.fail_reportf "seed %d / %s: %d mismatches" seed
            (Pipeline.name_of dis) (List.length l))
  | o ->
      QCheck.Test.fail_reportf "seed %d / %s: %a" seed (Pipeline.name_of dis)
        Pv_dataflow.Sim.pp_outcome o

let prop_fuzz_all_backends =
  QCheck.Test.make ~count:40 ~name:"random kernels verify under every scheme"
    QCheck.(pair (int_range 0 100_000) (int_range 0 3))
    (fun (seed, which) -> check_seed seed (List.nth schemes which))

let prop_fuzz_with_cse =
  QCheck.Test.make ~count:25 ~name:"random kernels verify with CSE"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      check_seed
        ~options:{ Pv_frontend.Build.default_options with Pv_frontend.Build.cse = true }
        seed (Pipeline.prevv 16))

let prop_fuzz_folded =
  QCheck.Test.make ~count:25 ~name:"random kernels verify after folding"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let kernel =
        Pv_frontend.Optimize.constant_fold (Pv_kernels.Generate.kernel seed)
      in
      let init = Pv_kernels.Generate.init_for kernel seed in
      match Pipeline.check ~init kernel (Pipeline.prevv 64) with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

(* generated kernels are deterministic in their seed *)
let prop_generator_deterministic =
  QCheck.Test.make ~count:50 ~name:"generator is seed-deterministic"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      Pv_kernels.Generate.kernel seed = Pv_kernels.Generate.kernel seed)

(* backends agree with each other, not just with the interpreter *)
let prop_backends_agree =
  QCheck.Test.make ~count:20 ~name:"LSQ and PreVV final memories agree"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let kernel = Pv_kernels.Generate.kernel seed in
      let init = Pv_kernels.Generate.init_for kernel seed in
      let compiled = Pipeline.compile kernel in
      let run dis = (Pipeline.simulate ~init compiled dis).Pipeline.mem in
      run Pipeline.fast_lsq = run (Pipeline.prevv 16))

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_all_backends;
          QCheck_alcotest.to_alcotest prop_fuzz_with_cse;
          QCheck_alcotest.to_alcotest prop_fuzz_folded;
          QCheck_alcotest.to_alcotest prop_generator_deterministic;
          QCheck_alcotest.to_alcotest prop_backends_agree;
        ] );
    ]
