(* Tests for the optional optimisation passes: constant folding at the AST
   level, and load CSE through the analysis + builder. *)

open Pv_core
open Pv_kernels

(* --- constant folding -------------------------------------------------------- *)

let test_fold_literals () =
  let open Ast in
  let k =
    {
      name = "t";
      arrays = [ ("a", 4) ];
      params = [ ("N", 10) ];
      body =
        [
          store "a" (i 0) ((i 2 * i 3) + i 1);
          store "a" (i 1) (v "N" - i 4);
          store "a" (i 2) ((v "N" * i 0) + (idx "a" (i 0) * i 1));
        ];
    }
  in
  match (Pv_frontend.Optimize.constant_fold k).Ast.body with
  | [ Ast.Store (_, _, Ast.Int 7); Ast.Store (_, _, Ast.Int 6); Ast.Store (_, _, Ast.Idx _) ]
    ->
      ()
  | _ -> Alcotest.fail "unexpected folded body"

let test_fold_preserves_semantics () =
  List.iter
    (fun k ->
      let folded = Pv_frontend.Optimize.constant_fold k in
      let init = Workload.default_init k in
      let a = Interp.run k ~init and b = Interp.run folded ~init in
      List.iter
        (fun (name, _) ->
          Alcotest.(check (array int))
            (k.Ast.name ^ "." ^ name)
            (Hashtbl.find a name) (Hashtbl.find b name))
        k.Ast.arrays)
    (Defs.all ())

let test_fold_shrinks_circuit () =
  (* polyn_mult's N parameter disappears into constants; the folded kernel
     builds a circuit with no more nodes than the original *)
  let k = Defs.polyn_mult ~n:8 () in
  let nodes kernel =
    Pv_dataflow.Graph.n_nodes (Pipeline.compile kernel).Pipeline.graph
  in
  Alcotest.(check bool) "not larger" true
    (nodes (Pv_frontend.Optimize.constant_fold k) <= nodes k)

(* --- CSE --------------------------------------------------------------------- *)

let test_cse_opportunity () =
  Alcotest.(check int) "histogram: b[i] twice in leaf 0" 1
    (Pv_frontend.Optimize.cse_opportunity (Defs.histogram ()));
  Alcotest.(check int) "cond_update: y[i] and x[i] reused" 2
    (Pv_frontend.Optimize.cse_opportunity (Defs.cond_update ()));
  Alcotest.(check int) "polyn_mult: none" 0
    (Pv_frontend.Optimize.cse_opportunity (Defs.polyn_mult ()))

let ports_of options k =
  let compiled = Pipeline.compile ~options k in
  Array.length
    compiled.Pipeline.info.Pv_frontend.Depend.portmap.Pv_memory.Portmap.ports

let cse_options =
  { Pv_frontend.Build.default_options with Pv_frontend.Build.cse = true }

let test_cse_removes_ports () =
  Alcotest.(check int) "histogram without cse" 6
    (ports_of Pv_frontend.Build.default_options (Defs.histogram ()));
  Alcotest.(check int) "histogram with cse" 5
    (ports_of cse_options (Defs.histogram ()));
  Alcotest.(check int) "cond_update with cse" 4
    (ports_of cse_options (Defs.cond_update ()))

let check_cse_correct k dis =
  let compiled = Pipeline.compile ~options:cse_options k in
  let r = Pipeline.simulate compiled dis in
  (match r.Pipeline.outcome with
  | Pv_dataflow.Sim.Finished _ -> ()
  | o ->
      Alcotest.failf "%s under cse: %a" k.Ast.name Pv_dataflow.Sim.pp_outcome o);
  match Pipeline.verify compiled r with
  | [] -> ()
  | l -> Alcotest.failf "%s under cse: %d mismatches" k.Ast.name (List.length l)

let test_cse_verified_grid () =
  (* kernels with real CSE opportunities, under every scheme *)
  List.iter
    (fun k ->
      List.iter (check_cse_correct k)
        [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16 ])
    [ Defs.histogram (); Defs.fn_dependent (); Defs.cond_update (); Defs.spmv_like () ]

let test_cse_noop_when_no_duplicates () =
  (* on a duplicate-free kernel, cse changes nothing structural *)
  let k = Defs.two_mm ~n:4 () in
  Alcotest.(check int) "same port count"
    (ports_of Pv_frontend.Build.default_options k)
    (ports_of cse_options k)

(* folding + cse together, end to end, on every bundled kernel *)
let test_both_passes_grid () =
  List.iter
    (fun k ->
      let folded = Pv_frontend.Optimize.constant_fold k in
      check_cse_correct folded (Pipeline.prevv 64))
    (Defs.all ())

(* property: folding is idempotent *)
let prop_fold_idempotent =
  QCheck.Test.make ~count:30 ~name:"constant folding is idempotent"
    QCheck.(int_range 2 14)
    (fun n ->
      let k = Pv_frontend.Optimize.constant_fold (Defs.polyn_mult ~n ()) in
      Pv_frontend.Optimize.constant_fold k = k)

let () =
  Alcotest.run "pv_optimize"
    [
      ( "fold",
        [
          Alcotest.test_case "literals" `Quick test_fold_literals;
          Alcotest.test_case "preserves semantics" `Quick
            test_fold_preserves_semantics;
          Alcotest.test_case "shrinks circuit" `Quick test_fold_shrinks_circuit;
        ] );
      ( "cse",
        [
          Alcotest.test_case "opportunity counting" `Quick test_cse_opportunity;
          Alcotest.test_case "removes ports" `Quick test_cse_removes_ports;
          Alcotest.test_case "verified grid" `Quick test_cse_verified_grid;
          Alcotest.test_case "no-op without duplicates" `Quick
            test_cse_noop_when_no_duplicates;
          Alcotest.test_case "fold + cse on all kernels" `Quick
            test_both_passes_grid;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_fold_idempotent ]);
    ]
