(* Tests for the area/timing report and the clock-period model. *)

open Pv_resource

let compiled k = Pv_core.Pipeline.compile k

let report k dis =
  let c = compiled k in
  Report.of_circuit c.Pv_core.Pipeline.graph
    c.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap dis

let test_cp_ordering () =
  (* at the same depth: PreVV <= fast LSQ <= plain LSQ search paths *)
  let d = 32 in
  Alcotest.(check bool) "prevv fastest" true
    (Timing.mem_cp Timing.M_prevv ~depth:d < Timing.mem_cp Timing.M_fast_lsq ~depth:d);
  Alcotest.(check bool) "plain slowest" true
    (Timing.mem_cp Timing.M_fast_lsq ~depth:d < Timing.mem_cp Timing.M_plain_lsq ~depth:d)

let test_cp_depth_sensitivity () =
  (* PreVV's validation is nearly depth-independent; the LSQ search is not *)
  let delta kind = Timing.mem_cp kind ~depth:64 -. Timing.mem_cp kind ~depth:16 in
  Alcotest.(check bool) "prevv flat" true (delta Timing.M_prevv < 0.5);
  Alcotest.(check bool) "plain grows" true (delta Timing.M_plain_lsq > 1.0)

let test_datapath_cp_div_kernel_slower () =
  let cp k = Timing.datapath_cp (compiled k).Pv_core.Pipeline.graph in
  Alcotest.(check bool) "gaussian (div) slower than polyn" true
    (cp (Pv_kernels.Defs.gaussian ()) > cp (Pv_kernels.Defs.polyn_mult ()))

let test_cp_in_published_band () =
  (* every published circuit lands between 6.9 and 9.3 ns *)
  List.iter
    (fun k ->
      List.iter
        (fun dis ->
          let r = report k dis in
          Alcotest.(check bool)
            (Printf.sprintf "%s CP %.2f in band" k.Pv_kernels.Ast.name
               r.Report.cp_ns)
            true
            (r.Report.cp_ns > 6.5 && r.Report.cp_ns < 9.5))
        [
          Pv_netlist.Elaborate.D_plain_lsq 32;
          Pv_netlist.Elaborate.D_fast_lsq 32;
          Pv_netlist.Elaborate.D_prevv 16;
          Pv_netlist.Elaborate.D_prevv 64;
        ])
    (Pv_kernels.Defs.paper_benchmarks ())

let test_exec_time () =
  Alcotest.(check (float 1e-9)) "us conversion" 14.4
    (Timing.exec_time_us ~cycles:1800 ~cp_ns:8.0)

let test_queue_share_band () =
  (* Fig. 1: >80% of plain-Dynamatic resources sit in the LSQ *)
  List.iter
    (fun k ->
      let r = report k (Pv_netlist.Elaborate.D_plain_lsq 32) in
      let share = Report.queue_share r in
      Alcotest.(check bool)
        (Printf.sprintf "%s share %.2f > 0.8" k.Pv_kernels.Ast.name share)
        true (share > 0.8))
    (Pv_kernels.Defs.paper_benchmarks ())

let test_report_consistency () =
  let r = report (Pv_kernels.Defs.two_mm ()) (Pv_netlist.Elaborate.D_prevv 16) in
  Alcotest.(check int) "lut split exact" r.Report.luts
    (r.Report.datapath_luts + r.Report.queue_luts);
  Alcotest.(check int) "ff split exact" r.Report.ffs
    (r.Report.datapath_ffs + r.Report.queue_ffs)

(* the Table-I reduction bands, as a regression test of the whole model *)
let test_reduction_bands () =
  let geo = ref [] in
  List.iter
    (fun k ->
      let p8 = report k (Pv_netlist.Elaborate.D_fast_lsq 32) in
      let v16 = report k (Pv_netlist.Elaborate.D_prevv 16) in
      geo := (float_of_int v16.Report.luts /. float_of_int p8.Report.luts) :: !geo)
    (Pv_kernels.Defs.paper_benchmarks ());
  let gm =
    exp (List.fold_left (fun a r -> a +. log r) 0.0 !geo /. float_of_int (List.length !geo))
  in
  (* paper: -43.75%; accept the +-4 point band *)
  Alcotest.(check bool)
    (Printf.sprintf "LUT geomean reduction %.1f%% in band" (100.0 *. (gm -. 1.0)))
    true
    (gm > 0.52 && gm < 0.61)

let () =
  Alcotest.run "pv_resource"
    [
      ( "timing",
        [
          Alcotest.test_case "CP ordering" `Quick test_cp_ordering;
          Alcotest.test_case "CP depth sensitivity" `Quick
            test_cp_depth_sensitivity;
          Alcotest.test_case "div kernel slower" `Quick
            test_datapath_cp_div_kernel_slower;
          Alcotest.test_case "CP in published band" `Quick test_cp_in_published_band;
          Alcotest.test_case "exec time" `Quick test_exec_time;
        ] );
      ( "report",
        [
          Alcotest.test_case "queue share (Fig. 1)" `Quick test_queue_share_band;
          Alcotest.test_case "split consistency" `Quick test_report_consistency;
          Alcotest.test_case "reduction bands (Table I)" `Quick
            test_reduction_bands;
        ] );
    ]
