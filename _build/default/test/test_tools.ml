(* Tests for the tooling around the core flow: VCD recording, profiling,
   device utilisation, and the ablation switches. *)

open Pv_core

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- VCD --------------------------------------------------------------------- *)

let test_vcd_records () =
  let kernel = Pv_kernels.Defs.histogram ~n:16 () in
  let compiled = Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem = Pv_memory.Layout.initial_memory compiled.Pipeline.layout kernel ~init in
  let backend = Pipeline.backend_of compiled mem (Pipeline.prevv 16) in
  let path = Filename.temp_file "pv_test" ".vcd" in
  let outcome = Pv_dataflow.Vcd.record ~path compiled.Pipeline.graph backend in
  (match outcome with
  | Pv_dataflow.Sim.Finished _ -> ()
  | o -> Alcotest.failf "vcd run: %a" Pv_dataflow.Sim.pp_outcome o);
  let vcd = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "header" true (contains ~needle:"$enddefinitions" vcd);
  Alcotest.(check bool) "declares channels" true (contains ~needle:"loopnest" vcd);
  Alcotest.(check bool) "has timestamps" true (contains ~needle:"#10" vcd);
  Alcotest.(check bool) "has vector changes" true (contains ~needle:"b0000" vcd)

(* --- Profile ------------------------------------------------------------------ *)

let test_profile () =
  let kernel = Pv_kernels.Defs.polyn_mult ~n:8 () in
  let compiled = Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem = Pv_memory.Layout.initial_memory compiled.Pipeline.layout kernel ~init in
  let backend = Pipeline.backend_of compiled mem (Pipeline.prevv 16) in
  let p = Pv_dataflow.Profile.run compiled.Pipeline.graph backend in
  (match p.Pv_dataflow.Profile.outcome with
  | Pv_dataflow.Sim.Finished _ -> ()
  | o -> Alcotest.failf "profile run: %a" Pv_dataflow.Sim.pp_outcome o);
  (* every non-sink node processed all 64 instances (buffers and ports may
     fire twice per token: accept and emit in different evaluations) *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fired %d" n.Pv_dataflow.Profile.np_label
           n.Pv_dataflow.Profile.np_fires)
        true
        (n.Pv_dataflow.Profile.np_fires >= 64
        && n.Pv_dataflow.Profile.np_fires <= 130))
    p.Pv_dataflow.Profile.nodes;
  let ii = Pv_dataflow.Profile.initiation_interval p ~instances:64 in
  Alcotest.(check bool) (Printf.sprintf "II %.2f near 1" ii) true (ii < 1.8);
  (* pressures are valid fractions, sorted descending *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Pv_dataflow.Profile.cp_pressure >= b.Pv_dataflow.Profile.cp_pressure
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by pressure" true (sorted p.Pv_dataflow.Profile.chans)

(* --- Device ------------------------------------------------------------------- *)

let test_device_utilisation () =
  let kernel = Pv_kernels.Defs.polyn_mult () in
  let p16 = Experiment.run kernel (Pipeline.prevv 16) in
  let lsq = Experiment.run kernel Pipeline.fast_lsq in
  let edge = Pv_resource.Device.xc7a35t in
  let u16 = Pv_resource.Device.utilisation edge p16.Experiment.report in
  let ul = Pv_resource.Device.utilisation edge lsq.Experiment.report in
  Alcotest.(check bool) "prevv uses less of the device" true
    (u16.Pv_resource.Device.lut_pct < ul.Pv_resource.Device.lut_pct);
  Alcotest.(check bool) "more copies fit with prevv" true
    (Pv_resource.Device.copies_that_fit edge p16.Experiment.report
    >= Pv_resource.Device.copies_that_fit edge lsq.Experiment.report);
  (* the big Kintex always fits one instance of every published circuit *)
  List.iter
    (fun point ->
      let u =
        Pv_resource.Device.utilisation Pv_resource.Device.xc7k160t
          point.Experiment.report
      in
      Alcotest.(check bool) (point.Experiment.config ^ " fits xc7k160t") true
        u.Pv_resource.Device.fits)
    [ p16; lsq ]

(* --- ablation switches ----------------------------------------------------------- *)

let test_value_validation_ablation () =
  let kernel = Pv_kernels.Defs.running_max () in
  let run value_validation =
    let compiled = Pipeline.compile kernel in
    let r =
      Pipeline.simulate compiled
        (Pipeline.Prevv
           { (Pv_prevv.Backend.named ~depth:16) with
             Pv_prevv.Backend.value_validation })
    in
    (match r.Pipeline.outcome with
    | Pv_dataflow.Sim.Finished _ -> ()
    | o -> Alcotest.failf "ablation run: %a" Pv_dataflow.Sim.pp_outcome o);
    (Pipeline.verify compiled r, r.Pipeline.mem_stats.Pv_dataflow.Memif.squashes)
  in
  let diffs_on, squashes_on = run true in
  let diffs_off, squashes_off = run false in
  Alcotest.(check int) "correct with Eq. 5" 0 (List.length diffs_on);
  Alcotest.(check int) "correct without Eq. 5" 0 (List.length diffs_off);
  Alcotest.(check bool)
    (Printf.sprintf "Eq. 5 saves squashes (%d vs %d)" squashes_on squashes_off)
    true
    (squashes_on * 4 < squashes_off)

let test_collapse_ablation () =
  let kernel = Pv_kernels.Defs.gaussian () in
  let run collapse_queue =
    let compiled = Pipeline.compile kernel in
    let sim_cfg =
      { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.stall_limit = 1024 }
    in
    (Pipeline.simulate ~sim_cfg compiled
       (Pipeline.Prevv
          { (Pv_prevv.Backend.named ~depth:16) with
            Pv_prevv.Backend.collapse_queue }))
      .Pipeline.outcome
  in
  (match run true with
  | Pv_dataflow.Sim.Finished _ -> ()
  | o -> Alcotest.failf "collapse on: %a" Pv_dataflow.Sim.pp_outcome o);
  match run false with
  | Pv_dataflow.Sim.Deadlock _ -> ()
  | o ->
      Alcotest.failf "expected fragmentation deadlock, got %a"
        Pv_dataflow.Sim.pp_outcome o

let test_forwarding_ablation () =
  let kernel = Pv_kernels.Defs.matvec ~n:16 () in
  let run forwarding =
    match
      Pipeline.check kernel
        (Pipeline.Fast_lsq { Pv_lsq.Lsq.fast with Pv_lsq.Lsq.forwarding })
    with
    | Ok r -> r.Pipeline.cycles
    | Error e -> Alcotest.fail e
  in
  let on = run true and off = run false in
  Alcotest.(check bool)
    (Printf.sprintf "forwarding helps (%d vs %d)" on off)
    true (on < off)

let () =
  Alcotest.run "pv_tools"
    [
      ("vcd", [ Alcotest.test_case "records waveforms" `Quick test_vcd_records ]);
      ("profile", [ Alcotest.test_case "utilisation and pressure" `Quick test_profile ]);
      ("device", [ Alcotest.test_case "utilisation" `Quick test_device_utilisation ]);
      ( "ablations",
        [
          Alcotest.test_case "value validation (Eq. 5)" `Quick
            test_value_validation_ablation;
          Alcotest.test_case "queue collapse" `Quick test_collapse_ablation;
          Alcotest.test_case "store-to-load forwarding" `Quick
            test_forwarding_ablation;
        ] );
    ]
