(* Sec. V-B: scalability for large designs (Eqs. 11-12).

   When one memory operation belongs to n overlapping ambiguous pairs,
   naive per-pair replication doubles hardware per overlap (2^n) and
   collapses frequency; the dimension reduction validates one operation
   per run of consecutive same-type accesses, so a single shared instance
   per array suffices.  This example measures both the analytic model and
   the actual generated hardware as the number of accumulators sharing an
   array grows.

     dune exec examples/scalability.exe *)

open Pv_core

(* a kernel with [n] interleaved accumulations into one array: every load
   overlaps every store, the worst case for per-pair replication *)
let overlapped_kernel n =
  Pv_kernels.Ast.(
    {
      name = Printf.sprintf "overlap%d" n;
      arrays = [ ("acc", 64); ("src", 64) ];
      params = [];
      body =
        [
          for_ "i" (i 0) (i 48)
            (List.init n (fun k ->
                 store "acc"
                   ((v "i" + i k) % i 64)
                   (idx "acc" ((v "i" + i k) % i 64) + idx "src" (v "i"))));
        ];
    })

(* the base frequency the collapse of Eq. 12 is measured against: the
   paper's single-pair PreVV circuits close timing around 150 MHz *)
let frq1_mhz = 150.0

let () =
  Format.printf "Analytic model (Eqs. 11-12), Com_1 = 1, Frq_1 = %.0f MHz:@.@."
    frq1_mhz;
  Format.printf "  %-10s %14s %16s %14s %12s %12s@." "overlap n" "naive 2^n"
    "reduced (linear)" "naive MHz" "naive pairs" "red. pairs";
  List.iter
    (fun n ->
      let ops =
        List.init (2 * n) (fun k ->
            ((if k mod 2 = 0 then Pv_memory.Portmap.OLoad else Pv_memory.Portmap.OStore), k))
      in
      Format.printf "  %-10d %14.0f %16.0f %14.1f %12d %12d@." n
        (Pv_prevv.Overlap.naive_complexity ~n ~com1:1.0)
        (Pv_prevv.Overlap.reduced_complexity ~n ~com1:1.0)
        (Pv_prevv.Overlap.naive_frequency ~n ~frq1:frq1_mhz)
        (Pv_prevv.Overlap.naive_pairs ops)
        (Pv_prevv.Overlap.reduced_pairs ops))
    [ 1; 2; 3; 4; 6; 8 ];

  Format.printf
    "@.Generated hardware with the shared per-array instance (what this@.\
     library builds), as the number of overlapping accumulations grows:@.@.";
  Format.printf "  %-10s %12s %10s %10s %10s@." "overlap n" "naive pairs"
    "LUT" "FF" "cycles";
  List.iter
    (fun n ->
      let kernel = overlapped_kernel n in
      let p = Experiment.run kernel (Pipeline.prevv 16) in
      let info = (Pipeline.compile kernel).Pipeline.info in
      Format.printf "  %-10d %12d %10d %10d %10d%s@." n
        (Pv_frontend.Depend.naive_pair_count info)
        p.Experiment.report.Pv_resource.Report.luts
        p.Experiment.report.Pv_resource.Report.ffs p.Experiment.cycles
        (if p.Experiment.verified then "" else "  (NOT VERIFIED)"))
    [ 1; 2; 3; 4 ];
  Format.printf
    "@.The queue cost stays a single instance while the naive pair count@.\
     grows quadratically — the reduction that makes PreVV usable on large@.\
     dataflow designs.@."
