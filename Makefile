.PHONY: all build test verify bench bench-tables soak clean

all: build

build:
	dune build @all

test:
	dune runtest

# the tier-1 gate: everything builds, every suite passes, and the smoke
# driver runs each kernel under each scheme end-to-end
verify:
	dune build @all
	dune runtest
	dune exec bin/smoke.exe

# machine-readable baselines: per-kernel cycles, wall time and node
# evaluations for both simulator engines, written to BENCH_sim.json
bench:
	dune exec bench/main.exe -- --json BENCH_sim.json

# the paper's tables and figures, printed to stdout
bench-tables:
	dune exec bench/main.exe

# deeper differential-fuzz sweep (FUZZ_ITERS multiplies the qcheck counts)
soak:
	FUZZ_ITERS=10 dune exec test/test_fuzz.exe

clean:
	dune clean
