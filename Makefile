.PHONY: all build test verify bench bench-tables bounds soak fuzz-soak clean

# worker domains for the grid-shaped benchmarks (make bench JOBS=N);
# clamped to the machine's core count at runtime
JOBS ?= 2

all: build

build:
	dune build @all

test:
	dune runtest

# the tier-1 gate: everything builds, every suite passes, and the smoke
# driver runs each kernel under each scheme end-to-end
verify:
	dune build @all
	dune runtest
	dune exec bin/smoke.exe

# machine-readable baselines: per-kernel cycles, wall time and node
# evaluations for both simulator engines, plus serial-vs-parallel grid
# wall clock and result-cache stats, written to BENCH_sim.json
bench:
	dune exec bench/main.exe -- --json BENCH_sim.json --jobs $(JOBS)

# the paper's tables and figures, printed to stdout
bench-tables:
	dune exec bench/main.exe -- --jobs $(JOBS)

# differential harness on every paper kernel: all registered backends
# agree and oracle <= prevv <= dynamatic <= serial (non-zero on violation)
bounds:
	dune exec bin/prevv_cli.exe -- bounds

# service chaos soak: 10k requests through `prevv serve`'s engine with an
# injected worker kill and a seeded fault-plan mix; exits non-zero unless
# every phase ends with lost: 0 and the parallel output is byte-identical
# to the serial replay
soak:
	dune exec bench/main.exe -- --jobs $(JOBS) soak

# deeper differential-fuzz sweep (FUZZ_ITERS multiplies the qcheck counts)
fuzz-soak:
	FUZZ_ITERS=10 dune exec test/test_fuzz.exe

clean:
	dune clean
