(** Elaboration of a full circuit (datapath + memory subsystem) into a
    primitive netlist. *)

(** Which disambiguation hardware to instantiate; depths are in the
    paper's units (the area model is calibrated in those units). *)
type disambiguation =
  | D_plain_lsq of int  (** pooled LSQ, classic allocation [15] *)
  | D_fast_lsq of int  (** pooled LSQ with fast token delivery [8] *)
  | D_prevv of int  (** PreVV instance per ambiguous array *)
  | D_oracle  (** analytic lower bound: no disambiguation hardware *)
  | D_serial  (** program-order serializer: a small gate per instance *)

(** Datapath-only netlist (one entry per component, under ["dp/"]). *)
val datapath : ?ws:Gen.widths -> Pv_dataflow.Graph.t -> Primitive.t

(** Full netlist; memory-subsystem instances live under ["mem/"] so
    reports can separate them from the datapath (Fig. 1's breakdown). *)
val circuit :
  ?ws:Gen.widths ->
  Pv_dataflow.Graph.t ->
  Pv_memory.Portmap.t ->
  disambiguation ->
  Primitive.t

(** Split totals into (datapath + controller, disambiguation logic). *)
val breakdown : Primitive.t -> Primitive.totals * Primitive.totals
