(** Elaboration of a full circuit (datapath + memory subsystem) into a
    primitive netlist. *)

open Pv_dataflow
module P = Primitive

type disambiguation =
  | D_plain_lsq of int  (** pooled LSQ, classic allocation; depth *)
  | D_fast_lsq of int  (** pooled LSQ with fast token delivery; depth *)
  | D_prevv of int  (** PreVV instance per ambiguous array; queue depth *)
  | D_oracle  (** analytic lower bound: no disambiguation hardware *)
  | D_serial  (** program-order serializer: a small gate per instance *)

let node_path (n : Graph.node) =
  Printf.sprintf "dp/%s_%d" n.Graph.label n.Graph.nid

let node_netlist ws (n : Graph.node) : P.t =
  let path = node_path n in
  match n.Graph.kind with
  | Types.Gen g -> Gen.gen_node path ~arity:g.Types.gen_arity ws
  | Types.Const _ -> Gen.const_node path ws.Gen.data
  | Types.Unop op -> Gen.unop path op ws.Gen.data
  | Types.Binop op -> Gen.binop path op ws.Gen.data
  | Types.Fork k -> Gen.fork_ path k
  | Types.Join k -> Gen.join path k
  | Types.Merge k -> Gen.merge path k ws.Gen.data
  | Types.Mux k -> Gen.mux path k ws.Gen.data
  | Types.Branch -> Gen.branch path
  | Types.Buffer { slots; _ } -> Gen.buffer path ~slots ws.Gen.data
  | Types.Sink -> []
  | Types.Load _ -> Gen.load_port path ws
  | Types.Store _ -> Gen.store_port path ws
  | Types.Skip _ -> [ { P.path; prim = P.Lut 3; count = 2 } ]
  | Types.Galloc _ -> [ { P.path; prim = P.Lut 3; count = 3 } ]

(** Datapath-only netlist. *)
let datapath ?(ws = Gen.default_widths) (g : Graph.t) : P.t =
  let acc = ref [] in
  Graph.iter_nodes (fun n -> acc := node_netlist ws n :: !acc) g;
  List.concat (List.rev !acc)

let count_ports (pm : Pv_memory.Portmap.t) ~inst =
  Array.fold_left
    (fun (l, s) p ->
      if p.Pv_memory.Portmap.instance = inst then
        match p.Pv_memory.Portmap.kind with
        | Pv_memory.Portmap.OLoad -> (l + 1, s)
        | Pv_memory.Portmap.OStore -> (l, s + 1)
      else (l, s))
    (0, 0) pm.Pv_memory.Portmap.ports

(** Full circuit netlist under a disambiguation scheme.  Memory-subsystem
    instances live under the ["mem/"] hierarchy so reports can separate
    them from the datapath (Fig. 1's breakdown). *)
let circuit ?(ws = Gen.default_widths) (g : Graph.t)
    (pm : Pv_memory.Portmap.t) (dis : disambiguation) : P.t =
  let dp = datapath ~ws g in
  let dp_luts = (P.totals dp).P.luts in
  let n_direct =
    Array.fold_left
      (fun acc p -> if p.Pv_memory.Portmap.instance = None then acc + 1 else acc)
      0 pm.Pv_memory.Portmap.ports
  in
  let mc =
    if n_direct > 0 then Gen.mem_controller "mem/mc" ~nports:n_direct ws else []
  in
  let total_ports = Array.length pm.Pv_memory.Portmap.ports in
  let ngroups = pm.Pv_memory.Portmap.n_groups in
  let subsystem =
    match dis with
    | D_plain_lsq depth | D_fast_lsq depth ->
        let fast_alloc = match dis with D_fast_lsq _ -> true | _ -> false in
        (* one pooled LSQ per ambiguous array interface, as synthesised by
           Dynamatic for multi-array kernels *)
        List.concat
          (List.init pm.Pv_memory.Portmap.n_instances (fun i ->
               let nload_ports, nstore_ports = count_ports pm ~inst:(Some i) in
               Gen.lsq
                 (Printf.sprintf "mem/lsq%d" i)
                 ~depth ~nload_ports ~nstore_ports ~ngroups ~fast_alloc ws))
    | D_prevv depth ->
        let squash_overhead =
          [
            {
              P.path = "mem/squash_net";
              prim = P.Lut 3;
              count = Gen.Calib.prevv_squash_luts_per_component * Graph.n_nodes g;
            };
          ]
        in
        squash_overhead
        @ List.concat
            (List.init pm.Pv_memory.Portmap.n_instances (fun i ->
                 let nload_ports, nstore_ports = count_ports pm ~inst:(Some i) in
                 let member_frac =
                   float_of_int (nload_ports + nstore_ports)
                   /. float_of_int (max 1 total_ports)
                 in
                 let member_datapath_luts =
                   int_of_float (member_frac *. float_of_int dp_luts)
                 in
                 Gen.prevv
                   (Printf.sprintf "mem/prevv%d" i)
                   ~depth ~nload_ports ~nstore_ports ~ngroups
                   ~member_datapath_luts ws))
    | D_oracle ->
        (* analytic bound: perfect disambiguation costs no hardware *)
        []
    | D_serial ->
        (* one program-order gate per ambiguous array: a head counter,
           a port comparator and a busy flag — no queues, no search *)
        List.concat
          (List.init pm.Pv_memory.Portmap.n_instances (fun i ->
               let nload_ports, nstore_ports = count_ports pm ~inst:(Some i) in
               let nports = nload_ports + nstore_ports in
               let path = Printf.sprintf "mem/ser%d" i in
               [
                 { P.path; prim = P.Lut 4; count = (4 * nports) + ngroups };
                 { P.path; prim = P.Ff; count = 2 * ws.Gen.addr };
               ]))
  in
  dp @ mc @ subsystem

(** Split totals into (datapath+controller, disambiguation subsystem) — the
    Fig. 1 breakdown. *)
let breakdown (nl : P.t) =
  let is_queue path =
    String.length path >= 7
    && (String.sub path 0 7 = "mem/lsq"
       || String.sub path 0 7 = "mem/pre"
       || String.sub path 0 7 = "mem/ser")
    || String.length path >= 10
       && String.sub path 0 10 = "mem/squash"
  in
  let queue = P.totals_filtered ~keep:is_queue nl in
  let rest = P.totals_filtered ~keep:(fun p -> not (is_queue p)) nl in
  (rest, queue)
