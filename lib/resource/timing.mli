(** Post-synthesis clock-period model (ns), calibrated to the paper's
    Vivado runs on xc7k160t with a 4 ns constraint (all published circuits
    miss that constraint and settle at 7.2–9.2 ns; so do ours).

    The achieved period is the worse of the datapath's critical path and
    the memory-disambiguation logic's:
    - datapath: base logic + routing, growing slowly with circuit size and
      with the slowest functional unit present;
    - plain LSQ [15]: allocation sits in the critical path and the
      associative search grows with depth;
    - fast LSQ [8]: allocation decoupled, a shallower search remains;
    - PreVV: the arbiter's parallel compare is almost depth-independent —
      the paper's "does not need complex LSQ searching logic". *)

(** Critical path of the computation part, from circuit structure. *)
val datapath_cp : Pv_dataflow.Graph.t -> float

type mem_kind = M_plain_lsq | M_fast_lsq | M_prevv | M_oracle | M_serial

(** Critical path of the disambiguation subsystem at a queue depth. *)
val mem_cp : mem_kind -> depth:int -> float

(** Achieved clock period of the full circuit. *)
val clock_period : Pv_dataflow.Graph.t -> mem_kind -> depth:int -> float

(** Execution time in microseconds, [cycles * cp / 1000]. *)
val exec_time_us : cycles:int -> cp_ns:float -> float
