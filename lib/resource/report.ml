(** Area/timing reports for a compiled circuit under a disambiguation
    scheme — the data behind Fig. 1, Table I, Table II and Fig. 7. *)

type t = {
  luts : int;
  ffs : int;
  muxes : int;
  cp_ns : float;
  datapath_luts : int;  (** computation + controller share (Fig. 1) *)
  queue_luts : int;  (** LSQ / PreVV share (Fig. 1) *)
  datapath_ffs : int;
  queue_ffs : int;
}

let dis_of_elab = function
  | Pv_netlist.Elaborate.D_plain_lsq _ -> Timing.M_plain_lsq
  | Pv_netlist.Elaborate.D_fast_lsq _ -> Timing.M_fast_lsq
  | Pv_netlist.Elaborate.D_prevv _ -> Timing.M_prevv
  | Pv_netlist.Elaborate.D_oracle -> Timing.M_oracle
  | Pv_netlist.Elaborate.D_serial -> Timing.M_serial

let depth_of_elab = function
  | Pv_netlist.Elaborate.D_plain_lsq d
  | Pv_netlist.Elaborate.D_fast_lsq d
  | Pv_netlist.Elaborate.D_prevv d ->
      d
  | Pv_netlist.Elaborate.D_oracle | Pv_netlist.Elaborate.D_serial -> 0

let of_circuit (g : Pv_dataflow.Graph.t) (pm : Pv_memory.Portmap.t)
    (dis : Pv_netlist.Elaborate.disambiguation) : t =
  let nl = Pv_netlist.Elaborate.circuit g pm dis in
  let totals = Pv_netlist.Primitive.totals nl in
  let dp, queue = Pv_netlist.Elaborate.breakdown nl in
  {
    luts = totals.Pv_netlist.Primitive.luts;
    ffs = totals.Pv_netlist.Primitive.ffs;
    muxes = totals.Pv_netlist.Primitive.muxes;
    cp_ns = Timing.clock_period g (dis_of_elab dis) ~depth:(depth_of_elab dis);
    datapath_luts = dp.Pv_netlist.Primitive.luts;
    queue_luts = queue.Pv_netlist.Primitive.luts;
    datapath_ffs = dp.Pv_netlist.Primitive.ffs;
    queue_ffs = queue.Pv_netlist.Primitive.ffs;
  }

(** Fraction of LUT+FF+mux resources spent in the disambiguation logic
    (the Fig. 1 metric). *)
let queue_share r =
  let q = r.queue_luts + r.queue_ffs in
  let d = r.datapath_luts + r.datapath_ffs in
  float_of_int q /. float_of_int (max 1 (q + d))

let pp ppf r =
  Format.fprintf ppf
    "LUT=%d (dp %d / queue %d)  FF=%d (dp %d / queue %d)  MUX=%d  CP=%.2fns"
    r.luts r.datapath_luts r.queue_luts r.ffs r.datapath_ffs r.queue_ffs
    r.muxes r.cp_ns
