(** Post-synthesis clock-period model (ns), calibrated to the paper's
    Vivado runs on xc7k160t with a 4 ns constraint (all published circuits
    miss that constraint and settle at 7.2–9.2 ns; so do ours).

    The achieved period is the worst of the datapath's critical path and
    the memory-disambiguation logic:
    - datapath: base logic + routing, growing slowly with circuit size
      (congestion) and with the slowest functional unit on the path;
    - plain LSQ [15]: allocation sits in the critical path, and the
      associative search grows with depth;
    - fast LSQ [8]: allocation is decoupled; a shallower search remains;
    - PreVV: the arbiter's parallel compare is almost depth-independent
      (one comparator bank and a priority reduce), the paper's "does not
      need complex LSQ searching logic". *)

open Pv_dataflow

let log2f x = log x /. log 2.0

(** Critical path of the computation part, from circuit structure. *)
let datapath_cp (g : Graph.t) : float =
  let nodes = float_of_int (max 2 (Graph.n_nodes g)) in
  let has_op p =
    Graph.count_nodes
      (fun n -> match n.Graph.kind with Types.Binop op -> p op | _ -> false)
      g
    > 0
  in
  let op_term =
    (if has_op (fun o -> o = Types.Div || o = Types.Rem) then 0.75 else 0.0)
    +. (if has_op (fun o -> o = Types.Mul) then 0.35 else 0.0)
  in
  5.6 +. (0.18 *. log2f nodes) +. op_term

type mem_kind = M_plain_lsq | M_fast_lsq | M_prevv | M_oracle | M_serial

(** Critical path of the disambiguation subsystem at a given queue depth. *)
let mem_cp kind ~depth =
  let d = float_of_int depth in
  match kind with
  | M_plain_lsq -> 6.70 +. (0.031 *. d)  (* allocation + search in the path *)
  | M_fast_lsq -> 6.85 +. (0.016 *. d)  (* search only *)
  | M_prevv -> 6.85 +. (0.007 *. d)  (* parallel validate + priority *)
  | M_oracle -> 0.0  (* analytic: never limits the clock *)
  | M_serial -> 6.0  (* head counter + comparator, depth-independent *)

(** Achieved clock period of the full circuit. *)
let clock_period (g : Graph.t) kind ~depth =
  Float.max (datapath_cp g) (mem_cp kind ~depth)

(** Execution time in microseconds. *)
let exec_time_us ~cycles ~cp_ns = float_of_int cycles *. cp_ns /. 1000.0
