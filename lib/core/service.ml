(** LDJSON experiment service — see the .mli and DESIGN.md §18. *)

module Json = Pv_obs.Json
module Sim = Pv_dataflow.Sim

type request = {
  id : string;
  kernel : string;
  backend : string;
  engine : Sim.engine;
  max_cycles : int option;
  fault_seed : int option;
}

let request ~id ~kernel ~backend ?(engine = Sim.Event) ?max_cycles ?fault_seed
    () =
  { id; kernel; backend; engine; max_cycles; fault_seed }

let ( let* ) = Result.bind

let parse_request line =
  match Json.parse line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j ->
      let str_field name =
        match Json.member name j with
        | Some (Json.Str s) -> Ok s
        | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
        | None -> Error (Printf.sprintf "missing field %S" name)
      in
      let int_field name =
        match Json.member name j with
        | Some (Json.Int i) -> Ok (Some i)
        | None | Some Json.Null -> Ok None
        | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
      in
      let* id = str_field "id" in
      let* kernel = str_field "kernel" in
      let* backend = str_field "backend" in
      let* engine =
        match Json.member "engine" j with
        | None | Some Json.Null -> Ok Sim.Event
        | Some (Json.Str s) -> (
            match Sim.engine_of_string s with
            | Some e -> Ok e
            | None -> Error (Printf.sprintf "unknown engine %S" s))
        | Some _ -> Error "field \"engine\" must be a string"
      in
      let* max_cycles = int_field "max_cycles" in
      let* fault_seed = int_field "fault_seed" in
      Ok { id; kernel; backend; engine; max_cycles; fault_seed }

let request_to_json r =
  Json.to_string
    (Json.Obj
       ([
          ("id", Json.Str r.id);
          ("kernel", Json.Str r.kernel);
          ("backend", Json.Str r.backend);
          ("engine", Json.Str (Sim.string_of_engine r.engine));
        ]
       @ (match r.max_cycles with
         | Some n -> [ ("max_cycles", Json.Int n) ]
         | None -> [])
       @
       match r.fault_seed with
       | Some n -> [ ("fault_seed", Json.Int n) ]
       | None -> []))

(* the id is deliberately excluded: two requests differing only in id are
   the same computation and share one in-flight slot / cache entry *)
let request_key r =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( "prevv-serve/v1",
            r.kernel,
            r.backend,
            Sim.string_of_engine r.engine,
            r.max_cycles,
            r.fault_seed )
          []))

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  jobs : int;
  queue_capacity : int;
  policy : Supervisor.policy;
  cache : Parallel.Cache.t option;
  kill_at : int list;
  stats_interval : float option;
      (** emit a {"type":"stats",...} frame at least this many seconds
          apart (checked between requests); [None] = never *)
  log : Pv_obs.Log.t;  (** structured operational log (sheds, kills, drain) *)
}

let default_config =
  {
    jobs = 1;
    queue_capacity = 256;
    policy = Supervisor.default_policy;
    cache = None;
    kill_at = [];
    stats_interval = None;
    log = Pv_obs.Log.null;
  }

(* ------------------------------------------------------------------ *)
(* Responses (deterministic: no timing, no attempt counts)             *)
(* ------------------------------------------------------------------ *)

let json_str s = Json.to_string (Json.Str s)

let ok_line id body =
  Printf.sprintf "{ \"id\": %s, \"status\": \"ok\", \"result\": %s }"
    (json_str id) body

let error_line id msg =
  Printf.sprintf "{ \"id\": %s, \"status\": \"error\", \"error\": %s }"
    (json_str id) (json_str msg)

let overloaded_line id ~retry_after_ms =
  Printf.sprintf
    "{ \"id\": %s, \"status\": \"overloaded\", \"retry_after_ms\": %d }"
    (json_str id) retry_after_ms

let bad_line msg =
  Printf.sprintf "{ \"id\": null, \"status\": \"bad_request\", \"error\": %s }"
    (json_str msg)

(* ------------------------------------------------------------------ *)
(* Compute                                                             *)
(* ------------------------------------------------------------------ *)

let describe_exn = function
  | Sim.Cancelled { at_cycle } ->
      Printf.sprintf "deadline exceeded (cancelled at cycle %d)" at_cycle
  | Invalid_argument m -> m
  | e -> Printexc.to_string e

(* one compute attempt; raises on failure *)
let compute cfg ~token req =
  let kernel = Pv_kernels.Defs.by_name req.kernel in
  let dis =
    match Scheme.of_string req.backend with
    | Ok d -> d
    | Error e -> invalid_arg e
  in
  let base = Sim.default_config in
  let faults =
    match req.fault_seed with
    | None -> []
    | Some seed ->
        (* the seeded plan is sized to the kernel's instance count, which
           needs the compiled circuit; requests without a fault_seed skip
           this extra compile *)
        let compiled = Pipeline.compile kernel in
        let instances = Pv_frontend.Trace.length compiled.Pipeline.trace in
        Pv_dataflow.Fault.random_recoverable ~seed
          ~n_chans:(Pv_dataflow.Graph.n_chans compiled.Pipeline.graph)
          ~max_seq:instances
          ~horizon:(100 + (4 * instances))
          ()
  in
  let sim_cfg =
    {
      base with
      Sim.engine = req.engine;
      Sim.max_cycles =
        Option.value req.max_cycles ~default:base.Sim.max_cycles;
      Sim.faults;
      Sim.cancel = (fun () -> Supervisor.Token.cancelled token);
    }
  in
  let point =
    match cfg.cache with
    | Some c -> fst (Experiment.run_cached ~sim_cfg ~cache:c kernel dis)
    | None -> Experiment.run ~sim_cfg kernel dis
  in
  Experiment.point_to_json point

type outcome = R_ok of string | R_err of string

(* full retry loop for one request; returns (outcome, extra attempts) *)
let compute_with_retries cfg req =
  let p = cfg.policy in
  let label = req.kernel ^ "/" ^ req.backend in
  let rec go attempt =
    let token = Supervisor.Token.create ?deadline_s:p.Supervisor.deadline_s () in
    match compute cfg ~token req with
    | body -> (R_ok body, attempt - 1)
    | exception e ->
        if attempt < p.Supervisor.max_attempts && p.Supervisor.retryable e then begin
          Clock.sleep_s (Supervisor.backoff_delay p ~label ~attempt);
          go (attempt + 1)
        end
        else (R_err (describe_exn e), attempt - 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Supervised request loop                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  received : int;
  responded : int;
  ok : int;
  errors : int;
  bad_requests : int;
  shed : int;
  dedup_hits : int;
  retries : int;
  worker_kills : int;
  respawns : int;
  cache_hits : int;
  cache_misses : int;
  lost : int;
  wall_s : float;
  requests_per_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let summary_to_json s =
  Json.Obj
    [
      ("received", Json.Int s.received);
      ("responded", Json.Int s.responded);
      ("ok", Json.Int s.ok);
      ("errors", Json.Int s.errors);
      ("bad_requests", Json.Int s.bad_requests);
      ("shed", Json.Int s.shed);
      ("dedup_hits", Json.Int s.dedup_hits);
      ("retries", Json.Int s.retries);
      ("worker_kills", Json.Int s.worker_kills);
      ("respawns", Json.Int s.respawns);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("lost", Json.Int s.lost);
      ("wall_s", Json.Float s.wall_s);
      ("requests_per_s", Json.Float s.requests_per_s);
      ("p50_ms", Json.Float s.p50_ms);
      ("p95_ms", Json.Float s.p95_ms);
      ("p99_ms", Json.Float s.p99_ms);
    ]

let drain_flag = Atomic.make false
let drain_now () = Atomic.set drain_flag true

type item = { t_seq : int; t_key : string; t_req : request }

type state = {
  cfg : config;
  jobs_target : int;
  lock : Mutex.t;
  work : Condition.t;  (** workers: the queue may have work *)
  progress : Condition.t;  (** main: a response landed or a worker died *)
  queue : item Queue.t;
  mutable draining : bool;
  responses : (int, string) Hashtbl.t;  (** seq -> response line *)
  mutable next_emit : int;
  mutable next_seq : int;
  mutable pending : int;  (** accepted, not yet responded *)
  inflight : (string, (int * string) list ref) Hashtbl.t;
      (** key -> waiting (seq, id) *)
  t0s : (int, int64) Hashtbl.t;  (** seq -> submit instant *)
  lats : float Queue.t;  (** latencies (ms) of computed responses *)
  kill_pending : (int, unit) Hashtbl.t;
  mutable live : int;
  mutable domains : unit Domain.t list;
  mutable n_received : int;
  mutable n_ok : int;
  mutable n_errors : int;
  mutable n_bad : int;
  mutable n_shed : int;
  mutable n_dedup : int;
  mutable n_retries : int;
  mutable n_kills : int;
  mutable n_respawns : int;
  mutable ewma_ms : float;
      (** exponentially weighted recent service latency; 0.0 until the
          first computed response lands *)
  mutable max_pending : int;  (** queue-depth high water *)
}

(* store the computed outcome for every waiter of the item's key;
   lock held by caller *)
let store_locked st item outcome retries =
  let waiters =
    match Hashtbl.find_opt st.inflight item.t_key with
    | Some ws -> !ws
    | None -> [ (item.t_seq, item.t_req.id) ]
  in
  Hashtbl.remove st.inflight item.t_key;
  st.n_retries <- st.n_retries + retries;
  List.iter
    (fun (seq, id) ->
      let line =
        match outcome with
        | R_ok body -> ok_line id body
        | R_err msg -> error_line id msg
      in
      Hashtbl.replace st.responses seq line;
      (match outcome with
      | R_ok _ -> st.n_ok <- st.n_ok + 1
      | R_err _ -> st.n_errors <- st.n_errors + 1);
      (match Hashtbl.find_opt st.t0s seq with
      | Some t0 ->
          let ms = Clock.elapsed_s t0 *. 1000.0 in
          Queue.push ms st.lats;
          st.ewma_ms <-
            (if st.ewma_ms > 0.0 then (0.8 *. st.ewma_ms) +. (0.2 *. ms)
             else ms);
          Hashtbl.remove st.t0s seq
      | None -> ());
      st.pending <- st.pending - 1)
    waiters;
  Condition.signal st.progress

(* [`Done] = outcome stored; [`Killed] = the worker must die and the item
   be requeued (caller handles both under the lock) *)
let process st item =
  Mutex.lock st.lock;
  let kill = Hashtbl.mem st.kill_pending item.t_seq in
  if kill then Hashtbl.remove st.kill_pending item.t_seq;
  Mutex.unlock st.lock;
  if kill then `Killed
  else begin
    let outcome, retries = compute_with_retries st.cfg item.t_req in
    Mutex.lock st.lock;
    store_locked st item outcome retries;
    Mutex.unlock st.lock;
    `Done
  end

let rec worker st =
  Mutex.lock st.lock;
  while Queue.is_empty st.queue && not st.draining do
    Condition.wait st.work st.lock
  done;
  if Queue.is_empty st.queue then begin
    (* draining and nothing left to pull: this worker retires *)
    st.live <- st.live - 1;
    Condition.signal st.progress;
    Mutex.unlock st.lock
  end
  else begin
    let item = Queue.pop st.queue in
    Mutex.unlock st.lock;
    match process st item with
    | `Done -> worker st
    | `Killed ->
        (* die mid-task: requeue the in-flight request (zero lost) and
           let the main loop respawn a replacement *)
        Mutex.lock st.lock;
        st.n_kills <- st.n_kills + 1;
        st.live <- st.live - 1;
        Queue.push item st.queue;
        Condition.signal st.work;
        Condition.signal st.progress;
        Mutex.unlock st.lock;
        Pv_obs.Log.warn st.cfg.log "worker_killed"
          ~fields:
            [
              ("seq", Pv_obs.Json.Int item.t_seq);
              ("id", Pv_obs.Json.Str item.t_req.id);
            ]
  end

(* lock held by caller *)
let spawn_locked st =
  st.live <- st.live + 1;
  st.domains <- Domain.spawn (fun () -> worker st) :: st.domains

let respawn_if_needed_locked st =
  while st.live < st.jobs_target && not (Queue.is_empty st.queue) do
    spawn_locked st;
    st.n_respawns <- st.n_respawns + 1
  done

(* inline execution for jobs <= 1: the serial reference *)
let drain_inline st =
  let rec loop () =
    Mutex.lock st.lock;
    let item = if Queue.is_empty st.queue then None else Some (Queue.pop st.queue) in
    Mutex.unlock st.lock;
    match item with
    | None -> ()
    | Some item ->
        (match process st item with
        | `Done -> ()
        | `Killed ->
            (* no domain to kill serially: count it and recompute *)
            Mutex.lock st.lock;
            st.n_kills <- st.n_kills + 1;
            Queue.push item st.queue;
            Mutex.unlock st.lock;
            Pv_obs.Log.warn st.cfg.log "worker_killed"
              ~fields:
                [
                  ("seq", Pv_obs.Json.Int item.t_seq);
                  ("id", Pv_obs.Json.Str item.t_req.id);
                ]);
        loop ()
  in
  loop ()

(* pop the contiguous ready prefix; lock held by caller *)
let ready_locked st =
  let out = ref [] in
  let rec go () =
    match Hashtbl.find_opt st.responses st.next_emit with
    | Some line ->
        Hashtbl.remove st.responses st.next_emit;
        st.next_emit <- st.next_emit + 1;
        out := line :: !out;
        go ()
    | None -> ()
  in
  go ();
  List.rev !out

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) idx))

(* backoff hint for a shed client: the backlog ahead of it, in units of
   the recent per-request service latency, spread over the worker pool.
   Before any response has completed the EWMA is 0 and the hint degrades
   to the 1 ms minimum.  Lock held by caller. *)
let retry_after_ms_locked st =
  let per_req = Float.max st.ewma_ms 0.0 in
  let jobs = float_of_int (max 1 st.jobs_target) in
  let hint = per_req *. float_of_int (st.pending + 1) /. jobs in
  max 1 (int_of_float (Float.ceil hint))

(* one {"type":"stats",...} frame from the live counters; lock held by
   caller.  The gauge identity [received = responded + shed + errors +
   in_flight] holds exactly at every emission: each received request is,
   at any instant, in exactly one of those four states (bad requests
   count as responded — they got a response line). *)
let stats_json_locked st =
  let lats = Array.of_seq (Queue.to_seq st.lats) in
  Array.sort compare lats;
  Json.Obj
    [
      ("type", Json.Str "stats");
      ("received", Json.Int st.n_received);
      ("responded", Json.Int (st.n_ok + st.n_bad));
      ("shed", Json.Int st.n_shed);
      ("errors", Json.Int st.n_errors);
      ("in_flight", Json.Int st.pending);
      ("queue_depth", Json.Int (Queue.length st.queue));
      ("queue_depth_max", Json.Int st.max_pending);
      ("dedup_hits", Json.Int st.n_dedup);
      ("retries", Json.Int st.n_retries);
      ("worker_kills", Json.Int st.n_kills);
      ("respawns", Json.Int st.n_respawns);
      ("ewma_ms", Json.Float st.ewma_ms);
      ("p50_ms", Json.Float (percentile lats 0.50));
      ("p95_ms", Json.Float (percentile lats 0.95));
      ("p99_ms", Json.Float (percentile lats 0.99));
    ]

(* an {"op":"stats"} control line: answered out-of-band, never counted as
   a request *)
let is_stats_request line =
  match Json.parse line with
  | Error _ -> false
  | Ok j -> (
      match Json.member "op" j with
      | Some (Json.Str "stats") -> true
      | _ -> false)

let run ?metrics cfg ~next ~emit =
  Atomic.set drain_flag false;
  let jobs_target = Parallel.effective_jobs cfg.jobs in
  let inline = jobs_target <= 1 in
  let cache_hits0, cache_misses0 =
    match cfg.cache with
    | Some c -> (Parallel.Cache.hits c, Parallel.Cache.misses c)
    | None -> (0, 0)
  in
  let st =
    {
      cfg;
      jobs_target;
      lock = Mutex.create ();
      work = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create ();
      draining = false;
      responses = Hashtbl.create 64;
      next_emit = 0;
      next_seq = 0;
      pending = 0;
      inflight = Hashtbl.create 64;
      t0s = Hashtbl.create 64;
      lats = Queue.create ();
      kill_pending = Hashtbl.create 4;
      live = 0;
      domains = [];
      n_received = 0;
      n_ok = 0;
      n_errors = 0;
      n_bad = 0;
      n_shed = 0;
      n_dedup = 0;
      n_retries = 0;
      n_kills = 0;
      n_respawns = 0;
      ewma_ms = 0.0;
      max_pending = 0;
    }
  in
  List.iter (fun seq -> Hashtbl.replace st.kill_pending seq ()) cfg.kill_at;
  let capacity = max 1 cfg.queue_capacity in
  let t_start = Clock.now_ns () in
  Mutex.lock st.lock;
  if not inline then
    for _ = 1 to jobs_target do
      spawn_locked st
    done;
  Mutex.unlock st.lock;
  (* ---- intake ---- *)
  let last_stats = ref t_start in
  let emit_stats_frame () =
    Mutex.lock st.lock;
    let frame = Json.to_string (stats_json_locked st) in
    Mutex.unlock st.lock;
    emit frame
  in
  let rec intake () =
    if Atomic.get drain_flag then ()
    else
      match next () with
      | None -> ()
      | Some line when is_stats_request line ->
          (* control line: answer out-of-band, unsequenced and uncounted *)
          emit_stats_frame ();
          intake ()
      | Some line ->
          Mutex.lock st.lock;
          st.n_received <- st.n_received + 1;
          let seq = st.next_seq in
          st.next_seq <- seq + 1;
          (match parse_request line with
          | Error msg ->
              Hashtbl.replace st.responses seq (bad_line msg);
              st.n_bad <- st.n_bad + 1
          | Ok req ->
              if st.pending >= capacity then begin
                (* bounded queue: explicit shed, never a silent drop; the
                   hint tells the client when capacity should free up *)
                let retry_after_ms = retry_after_ms_locked st in
                Hashtbl.replace st.responses seq
                  (overloaded_line req.id ~retry_after_ms);
                st.n_shed <- st.n_shed + 1;
                Pv_obs.Log.warn st.cfg.log "shed"
                  ~fields:
                    [
                      ("id", Pv_obs.Json.Str req.id);
                      ("pending", Pv_obs.Json.Int st.pending);
                      ("retry_after_ms", Pv_obs.Json.Int retry_after_ms);
                    ]
              end
              else begin
                st.pending <- st.pending + 1;
                if st.pending > st.max_pending then
                  st.max_pending <- st.pending;
                Hashtbl.replace st.t0s seq (Clock.now_ns ());
                let key = request_key req in
                match Hashtbl.find_opt st.inflight key with
                | Some ws ->
                    (* identical request already in flight: wait on it *)
                    ws := (seq, req.id) :: !ws;
                    st.n_dedup <- st.n_dedup + 1
                | None ->
                    Hashtbl.add st.inflight key (ref [ (seq, req.id) ]);
                    Queue.push { t_seq = seq; t_key = key; t_req = req }
                      st.queue;
                    Condition.signal st.work
              end);
          if not inline then respawn_if_needed_locked st;
          let lines = ready_locked st in
          Mutex.unlock st.lock;
          if inline then drain_inline st;
          List.iter emit lines;
          if inline then begin
            Mutex.lock st.lock;
            let lines = ready_locked st in
            Mutex.unlock st.lock;
            List.iter emit lines
          end;
          (match cfg.stats_interval with
          | Some iv when Clock.elapsed_s !last_stats >= iv ->
              last_stats := Clock.now_ns ();
              emit_stats_frame ()
          | _ -> ());
          intake ()
  in
  intake ();
  (* ---- drain ---- *)
  Pv_obs.Log.info cfg.log "drain"
    ~fields:[ ("pending", Pv_obs.Json.Int st.pending) ];
  if inline then drain_inline st;
  Mutex.lock st.lock;
  st.draining <- true;
  Condition.broadcast st.work;
  while st.pending > 0 do
    respawn_if_needed_locked st;
    (match ready_locked st with
    | [] -> Condition.wait st.progress st.lock
    | lines ->
        Mutex.unlock st.lock;
        List.iter emit lines;
        Mutex.lock st.lock)
  done;
  Condition.broadcast st.work;
  while st.live > 0 do
    Condition.wait st.progress st.lock
  done;
  let last = ready_locked st in
  Mutex.unlock st.lock;
  List.iter emit last;
  List.iter Domain.join st.domains;
  (* ---- summary ---- *)
  let wall_s = Clock.elapsed_s t_start in
  let lats = Array.of_seq (Queue.to_seq st.lats) in
  Array.sort compare lats;
  let responded = st.next_emit in
  let cache_hits, cache_misses =
    match cfg.cache with
    | Some c ->
        (Parallel.Cache.hits c - cache_hits0,
         Parallel.Cache.misses c - cache_misses0)
    | None -> (0, 0)
  in
  let summary =
    {
      received = st.n_received;
      responded;
      ok = st.n_ok;
      errors = st.n_errors;
      bad_requests = st.n_bad;
      shed = st.n_shed;
      dedup_hits = st.n_dedup;
      retries = st.n_retries;
      worker_kills = st.n_kills;
      respawns = st.n_respawns;
      cache_hits;
      cache_misses;
      lost = st.n_received - responded;
      wall_s;
      requests_per_s =
        (if wall_s > 0.0 then float_of_int st.n_received /. wall_s else 0.0);
      p50_ms = percentile lats 0.50;
      p95_ms = percentile lats 0.95;
      p99_ms = percentile lats 0.99;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let module M = Pv_obs.Metrics in
      M.add m "serve.received" summary.received;
      M.add m "serve.ok" summary.ok;
      M.add m "serve.errors" summary.errors;
      M.add m "serve.bad_requests" summary.bad_requests;
      M.add m "serve.shed" summary.shed;
      M.add m "serve.dedup_hits" summary.dedup_hits;
      M.add m "serve.retries" summary.retries;
      M.add m "serve.worker_kills" summary.worker_kills;
      M.add m "serve.respawns" summary.respawns;
      M.add m "serve.lost" summary.lost;
      M.add m "serve.p50_ms" (int_of_float (Float.round summary.p50_ms));
      M.add m "serve.p95_ms" (int_of_float (Float.round summary.p95_ms));
      M.add m "serve.p99_ms" (int_of_float (Float.round summary.p99_ms));
      M.set_gauge_max m "serve.queue_depth_max" st.max_pending;
      Option.iter (fun c -> Parallel.Cache.record_metrics c m) cfg.cache);
  Pv_obs.Log.info cfg.log "serve_done"
    ~fields:
      [
        ("received", Pv_obs.Json.Int summary.received);
        ("ok", Pv_obs.Json.Int summary.ok);
        ("errors", Pv_obs.Json.Int summary.errors);
        ("shed", Pv_obs.Json.Int summary.shed);
        ("worker_kills", Pv_obs.Json.Int summary.worker_kills);
      ];
  summary
