(** The experiment service behind [prevv serve]: line-delimited JSON
    requests in, one JSON response line per request out, in request order.

    The service runs each request through the {!Experiment} pipeline on a
    supervised worker pool: per-attempt retry with the
    {!Supervisor.backoff_delay} schedule, worker kills ({!Supervisor.Kill_worker},
    injectable via {!config.kill_at}) respawned with the in-flight request
    requeued, identical in-flight requests deduplicated against one
    computation, a bounded pending queue with explicit load-shedding
    (an ["overloaded"] response — never a silent drop), and graceful
    drain.  Every accepted line gets exactly one response line; the
    {!summary} proves it with [lost = 0].

    Responses are deterministic: bodies carry no timing or attempt
    counts, so a run at any worker count is byte-identical to the serial
    ([jobs <= 1]) replay of the same request stream (sheds excepted —
    shedding depends on queue dynamics {e and} stamps a timing-derived
    [retry_after_ms] hint, so byte-comparisons must use a capacity the
    stream cannot overflow).  DESIGN.md §18 specifies the protocol.

    Telemetry: an [{"op": "stats"}] control line (and, with
    {!config.stats_interval}, a between-requests timer) emits a
    [{"type": "stats", ...}] frame with live gauges satisfying
    [received = responded + shed + errors + in_flight], queue depths and
    latency percentiles; {!config.log} receives structured LDJSON lines
    for sheds, worker kills, drain and the final summary. *)

(** {1 Requests} *)

type request = {
  id : string;  (** echoed verbatim in the response *)
  kernel : string;  (** bundled kernel name ({!Pv_kernels.Defs.by_name}) *)
  backend : string;  (** scheme name ({!Scheme.of_string}) *)
  engine : Pv_dataflow.Sim.engine;  (** default [Event] *)
  max_cycles : int option;  (** simulation budget override *)
  fault_seed : int option;  (** seeded recoverable fault plan *)
}

(** Parse one request line:
    [{"id": "r1", "kernel": "gaussian", "backend": "prevv16"}] with
    optional ["engine"] (["scan"]/["event"]), ["max_cycles"],
    ["fault_seed"].  Unknown fields are ignored; a missing/ill-typed
    required field is an [Error]. *)
val parse_request : string -> (request, string) result

(** One LDJSON line for [req] — the inverse of {!parse_request}, used by
    the soak drivers. *)
val request_to_json : request -> string

(** [request ~id ~kernel ~backend ()] with the defaults above. *)
val request :
  id:string ->
  kernel:string ->
  backend:string ->
  ?engine:Pv_dataflow.Sim.engine ->
  ?max_cycles:int ->
  ?fault_seed:int ->
  unit ->
  request

(** Content address of a request's computation (salt ["prevv-serve/v1"]):
    equal keys share one in-flight computation and one cache entry. *)
val request_key : request -> string

(** {1 Configuration} *)

type config = {
  jobs : int;  (** worker domains; [<= 1] computes inline (serial reference) *)
  queue_capacity : int;
      (** pending-request bound; beyond it new requests are shed with an
          explicit ["overloaded"] response *)
  policy : Supervisor.policy;  (** retry/backoff/deadline per request *)
  cache : Parallel.Cache.t option;  (** content-addressed result reuse *)
  kill_at : int list;
      (** chaos injection: arrival sequence numbers whose first compute
          attempt kills its worker domain (respawned, request requeued) *)
  stats_interval : float option;
      (** emit a [{"type": "stats", ...}] frame at least this many seconds
          apart, checked between requests (the intake loop never wakes just
          to report); [None] (default) = on demand only *)
  log : Pv_obs.Log.t;
      (** structured operational log (default {!Pv_obs.Log.null}): [shed]
          and [worker_killed] at Warn, [drain] and [serve_done] at Info.
          Point it at stderr — response lines own stdout. *)
}

(** 1 job, capacity 256, {!Supervisor.default_policy}, no cache, no
    kills, no periodic stats, null log. *)
val default_config : config

(** {1 Running} *)

type summary = {
  received : int;  (** request lines read *)
  responded : int;  (** response lines emitted *)
  ok : int;
  errors : int;  (** requests that exhausted their retry budget *)
  bad_requests : int;  (** lines that failed {!parse_request} *)
  shed : int;  (** explicit ["overloaded"] responses *)
  dedup_hits : int;  (** requests served by another's in-flight computation *)
  retries : int;  (** extra compute attempts beyond each request's first *)
  worker_kills : int;  (** worker domains lost mid-request *)
  respawns : int;  (** replacement workers spawned *)
  cache_hits : int;
  cache_misses : int;
  lost : int;  (** [received - responded]; the invariant is 0 *)
  wall_s : float;
  requests_per_s : float;
  p50_ms : float;  (** submit-to-response latency percentiles *)
  p95_ms : float;
  p99_ms : float;
}

val summary_to_json : summary -> Pv_obs.Json.t

(** [run config ~next ~emit] pulls request lines from [next] until it
    returns [None] (or {!drain_now} was requested), computes them on the
    supervised pool, calls [emit] with exactly one response line per
    received line {e in arrival order}, drains, and returns the
    {!summary}.  [next] and [emit] are only ever called from the calling
    domain.  [metrics] (optional) receives [serve.*] counters (including
    latency percentiles and the [serve.queue_depth_max] gauge) and the
    cache's [cache.*] counters.

    A shed ([{"status": "overloaded"}]) response carries
    [retry_after_ms]: the backlog ahead of the client in units of
    the EWMA service latency, spread over the worker pool — a backoff
    hint, not a promise.  An [{"op": "stats"}] line is answered with a
    stats frame out-of-band: it takes no sequence number, gets no
    per-request response and does not count toward [received]. *)
val run :
  ?metrics:Pv_obs.Metrics.t ->
  config ->
  next:(unit -> string option) ->
  emit:(string -> unit) ->
  summary

(** Ask the running {!run} loop (typically from a SIGINT handler) to stop
    pulling new requests and drain: every already-accepted request still
    gets its response.  Idempotent; reset when {!run} starts. *)
val drain_now : unit -> unit
