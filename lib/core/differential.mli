(** Registry-driven differential harness: run one kernel under every
    registered scheme, check that they agree on the final memory and the
    outcome, and that the cycle counts respect the bound chain

    {v oracle <= prevv* <= dynamatic <= serial v}

    The fast LSQ participates in the agreement check but is deliberately
    {e unranked}: the paper's own Table II shows PreVV16 costing more
    cycles than the fast LSQ on some kernels (+10.79% on average), so it
    belongs to no total order with PreVV.  The plain Dynamatic LSQ is the
    "lsq" of the chain. *)

type row = {
  scheme : string;
  rank : int option;  (** position in the bound chain; [None] = unranked *)
  cycles : int;
  finished : bool;
  verified : bool;  (** final memory matches the reference interpreter *)
  degraded : bool;  (** the backend engaged a degraded fallback *)
}

type report = {
  kernel : string;
  rows : row list;  (** one per scheme, registry order *)
  agree : bool;
      (** every scheme finished, verified, and produced the same final
          flat memory *)
  ordering_ok : bool;  (** the bound chain holds *)
  violations : string list;  (** human-readable chain violations *)
}

(** Chain position of a scheme name: oracle 0, prevv* 1, dynamatic 2,
    serial 3; anything else (fast-lsq, future schemes) unranked. *)
val rank_of : string -> int option

(** Run every scheme in [schemes] (default [Scheme.all ()]) on [kernel]. *)
val run :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  ?schemes:Scheme.t list ->
  Pv_kernels.Ast.kernel ->
  report

(** [agree && ordering_ok]. *)
val ok : report -> bool

val pp : Format.formatter -> report -> unit
