(* The ONE module allowed to match on [disambiguation]: every adapter,
   name, fingerprint and elaboration hint lives behind the first-class
   module boundary built here (grep-enforced by test_scheme.ml). *)

module Lsq = Pv_lsq.Lsq
module Backend = Pv_prevv.Backend
module Oracle = Pv_bounds.Oracle
module Serial = Pv_bounds.Serial
module Prescience = Pv_bounds.Prescience
module Metrics = Pv_obs.Metrics

type disambiguation =
  | Plain_lsq of Lsq.config
  | Fast_lsq of Lsq.config
  | Prevv of Backend.config
  | Oracle of Oracle.config
  | Serial of Serial.config

let plain_lsq = Plain_lsq Lsq.plain
let fast_lsq = Fast_lsq Lsq.fast

let prevv ?(fake_tokens = true) depth =
  Prevv { (Backend.named ~depth) with fake_tokens }

let oracle = Oracle Oracle.default
let serial = Serial Serial.default

type env = {
  portmap : Pv_memory.Portmap.t;
  mem : int array;
  trace : Pv_obs.Trace.t;
  prof : Pv_obs.Prof.t;
  prescience : Prescience.t Lazy.t;
}

let make_env ?(trace = Pv_obs.Trace.null) ?(prof = Pv_obs.Prof.null) ~portmap
    ~graph mem =
  (* copy eagerly: by the time the oracle forces the recording, [mem] has
     been mutated by the run in progress *)
  let pristine = Array.copy mem in
  let prescience =
    lazy
      (let _, inner = Lsq.create_full Lsq.fast portmap pristine in
       let recorder, memif = Prescience.wrap portmap inner in
       let outcome, _ = Pv_dataflow.Sim.run graph memif in
       let complete =
         match outcome with
         | Pv_dataflow.Sim.Finished _ -> true
         | Pv_dataflow.Sim.Deadlock _ | Pv_dataflow.Sim.Timeout _ -> false
       in
       Prescience.finish ~complete recorder)
  in
  { portmap; mem; trace; prof; prescience }

type instance = {
  memif : Pv_dataflow.Memif.t;
  record_metrics : Pv_obs.Metrics.t -> unit;
}

module type S = sig
  val name : string
  val description : string
  val config : disambiguation
  val fingerprint : string
  val elaboration : Pv_netlist.Elaborate.disambiguation
  val make : env -> instance
end

type t = (module S)

(* ---- names, fingerprints, elaboration hints ---- *)

let name_of = function
  | Plain_lsq _ -> "dynamatic"
  | Fast_lsq _ -> "fast-lsq"
  | Prevv c -> Printf.sprintf "prevv%d" (c.Backend.depth_q / Backend.depth_scale)
  | Oracle _ -> "oracle"
  | Serial _ -> "serial"

let to_string = name_of

let description_of = function
  | Plain_lsq _ -> "Dynamatic load-store queue baseline [15]"
  | Fast_lsq _ -> "LSQ with speculative allocation, Szafarczyk et al. [8]"
  | Prevv c ->
      Printf.sprintf
        "PreVV premature value validation, queue depth %d (this paper)"
        (c.Backend.depth_q / Backend.depth_scale)
  | Oracle _ ->
      "perfect-disambiguation lower bound (prescient, serializes only true \
       conflicts)"
  | Serial _ ->
      "fully serializing upper bound (one memory op in flight, program order)"

let fingerprint_of dis =
  let repr =
    match dis with
    | Plain_lsq c -> ("plain_lsq", Marshal.to_string c [])
    | Fast_lsq c -> ("fast_lsq", Marshal.to_string c [])
    | Prevv c -> ("prevv", Marshal.to_string c [])
    | Oracle c -> ("oracle", Marshal.to_string c [])
    | Serial c -> ("serial", Marshal.to_string c [])
  in
  Digest.to_hex (Digest.string (Marshal.to_string repr []))

let elaboration_of = function
  | Plain_lsq c -> Pv_netlist.Elaborate.D_plain_lsq c.Lsq.lq_depth
  | Fast_lsq c -> Pv_netlist.Elaborate.D_fast_lsq c.Lsq.lq_depth
  | Prevv c ->
      Pv_netlist.Elaborate.D_prevv (c.Backend.depth_q / Backend.depth_scale)
  | Oracle _ -> Pv_netlist.Elaborate.D_oracle
  | Serial _ -> Pv_netlist.Elaborate.D_serial

(* ---- adapters ---- *)

let make_backend dis env =
  match dis with
  | Plain_lsq cfg | Fast_lsq cfg ->
      let _, memif =
        Lsq.create_full ~trace:env.trace ~prof:env.prof cfg env.portmap env.mem
      in
      { memif; record_metrics = (fun _ -> ()) }
  | Prevv cfg ->
      let t, memif =
        Backend.create_full ~trace:env.trace ~prof:env.prof cfg env.portmap
          env.mem
      in
      {
        memif;
        record_metrics =
          (fun m ->
            let a = Backend.arbiter_stats t in
            Metrics.add m "scheme.prevv.arbiter.checks" a.Pv_prevv.Arbiter.checks;
            Metrics.add m "scheme.prevv.arbiter.violations"
              a.Pv_prevv.Arbiter.violations;
            Metrics.add m "scheme.prevv.arbiter.gate_clear"
              a.Pv_prevv.Arbiter.gate_clear;
            Metrics.add m "scheme.prevv.arbiter.gate_forward"
              a.Pv_prevv.Arbiter.gate_forward;
            Metrics.add m "scheme.prevv.arbiter.gate_wait"
              a.Pv_prevv.Arbiter.gate_wait);
      }
  | Oracle cfg ->
      let t, memif =
        Oracle.create_full ~trace:env.trace cfg env.portmap env.mem
          ~prescience:env.prescience
      in
      {
        memif;
        record_metrics =
          (fun m ->
            Metrics.add m "scheme.oracle.waits" (Oracle.waits t);
            Metrics.add m "scheme.oracle.coincidences" (Oracle.coincidences t);
            Metrics.add m "scheme.oracle.forwards" (Oracle.forwards t);
            if Oracle.degraded t then Metrics.incr m "scheme.oracle.degraded");
      }
  | Serial cfg ->
      let t, memif = Serial.create_full ~trace:env.trace cfg env.portmap env.mem in
      {
        memif;
        record_metrics =
          (fun m ->
            Metrics.add m "scheme.serial.serialized" (Serial.serialized t));
      }

let of_disambiguation dis : t =
  (module struct
    let name = name_of dis
    let description = description_of dis
    let config = dis
    let fingerprint = fingerprint_of dis
    let elaboration = elaboration_of dis
    let make env = make_backend dis env
  end)

(* ---- registry ---- *)

type family = {
  f_name : string;
  f_doc : string;
  f_parse : string -> disambiguation option;
  f_defaults : disambiguation list;
}

let registry : family list ref = ref []

let register f =
  if List.exists (fun g -> g.f_name = f.f_name) !registry then
    invalid_arg (Printf.sprintf "Scheme.register: duplicate family %S" f.f_name)
  else registry := !registry @ [ f ]

let lookup name = List.find_opt (fun f -> f.f_name = name) !registry
let families () = !registry

let all () =
  List.concat_map
    (fun f -> List.map of_disambiguation f.f_defaults)
    !registry

let exact name value s = if s = name then Some value else None

let parse_prevv s =
  let pfx = "prevv" in
  let n = String.length pfx in
  if String.length s < n || String.sub s 0 n <> pfx then None
  else
    let rest = String.sub s n (String.length s - n) in
    if rest = "" then Some (prevv 16)
    else
      match int_of_string_opt rest with
      | Some d when d >= 1 -> Some (prevv d)
      | _ -> None

let () =
  register
    {
      f_name = "dynamatic";
      f_doc = "Dynamatic LSQ baseline";
      f_parse =
        (fun s ->
          if s = "dynamatic" || s = "plain-lsq" then Some plain_lsq else None);
      f_defaults = [ plain_lsq ];
    };
  register
    {
      f_name = "fast-lsq";
      f_doc = "speculative-allocation LSQ";
      f_parse = exact "fast-lsq" fast_lsq;
      f_defaults = [ fast_lsq ];
    };
  register
    {
      f_name = "prevv";
      f_doc = "PreVV at a named depth (prevv16, prevv64, ...)";
      f_parse = parse_prevv;
      f_defaults = [ prevv 16; prevv 64 ];
    };
  register
    {
      f_name = "oracle";
      f_doc = "prescient lower bound";
      f_parse = exact "oracle" oracle;
      f_defaults = [ oracle ];
    };
  register
    {
      f_name = "serial";
      f_doc = "serializing upper bound";
      f_parse = exact "serial" serial;
      f_defaults = [ serial ];
    }

let of_string s =
  let rec try_families = function
    | [] ->
        let known =
          all ()
          |> List.map (fun (module M : S) -> M.name)
          |> String.concat ", "
        in
        Error (Printf.sprintf "unknown backend %S (known: %s)" s known)
    | f :: rest -> (
        match f.f_parse s with
        | Some dis -> Ok dis
        | None -> try_families rest)
  in
  try_families !registry
