(** Registry of memory-disambiguation schemes as first-class modules.

    Every backend (the Dynamatic LSQ baselines, PreVV, and the oracle /
    serializing reference bounds) is exposed behind one signature {!S}:
    a display name, a config fingerprint for experiment cache keys, a
    netlist-elaboration hint, and [make] over a flat memory returning the
    simulator-facing {!Pv_dataflow.Memif.t} plus a metrics hook.  All
    selection logic in the repo (pipeline, experiment cache, CLI and bench
    parsing, differential harness) goes through this module — it is the
    only place allowed to match on {!disambiguation}. *)

type disambiguation =
  | Plain_lsq of Pv_lsq.Lsq.config  (** Dynamatic baseline [15] *)
  | Fast_lsq of Pv_lsq.Lsq.config  (** fast LSQ allocation [8] *)
  | Prevv of Pv_prevv.Backend.config  (** this paper *)
  | Oracle of Pv_bounds.Oracle.config  (** prescient lower bound *)
  | Serial of Pv_bounds.Serial.config  (** serializing upper bound *)

(** {1 Canonical configurations} *)

val plain_lsq : disambiguation
val fast_lsq : disambiguation

(** PreVV at a paper-named depth ([prevv 16] = "PreVV16"); the simulated
    queue holds {!Pv_prevv.Backend.depth_scale} entries per named unit. *)
val prevv : ?fake_tokens:bool -> int -> disambiguation

val oracle : disambiguation
val serial : disambiguation

(** {1 Instantiation environment} *)

(** What a scheme needs to come alive: the kernel's port map, the flat
    memory it mutates in place, a trace sink, the elaborated circuit and a
    lazily computed {!Pv_bounds.Prescience.t} (forced only by the oracle;
    recorded over a pristine copy of [mem] taken at {!make_env} time). *)
type env = {
  portmap : Pv_memory.Portmap.t;
  mem : int array;
  trace : Pv_obs.Trace.t;
  prof : Pv_obs.Prof.t;
      (** cycle-attribution profiler; the PreVV and LSQ backends feed
          their inner-loop phases ([arbiter_scan], [pq_validate],
          [lsq_cam], [mem_service]) into it when enabled *)
  prescience : Pv_bounds.Prescience.t Lazy.t;
}

(** Build an environment; [graph] is the circuit the prescience reference
    run executes (with a fast LSQ, fault-free, default sim config). *)
val make_env :
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  portmap:Pv_memory.Portmap.t ->
  graph:Pv_dataflow.Graph.t ->
  int array ->
  env

(** A live backend: the simulator-facing interface plus a hook dumping the
    scheme's {e own} counters (namespaced [scheme.<name>.*]) into a metric
    registry after a run. *)
type instance = {
  memif : Pv_dataflow.Memif.t;
  record_metrics : Pv_obs.Metrics.t -> unit;
}

(** {1 The scheme signature} *)

module type S = sig
  val name : string
  (** display / CLI name, e.g. ["prevv16"] *)

  val description : string
  (** one-line summary (used for the README backend table) *)

  val config : disambiguation
  (** the concrete configuration this module wraps *)

  val fingerprint : string
  (** hex digest of the full configuration — the scheme component of
      {!Experiment.cache_key}; distinct configs have distinct prints *)

  val elaboration : Pv_netlist.Elaborate.disambiguation
  (** netlist-elaboration hint for resource/timing reports *)

  val make : env -> instance
end

type t = (module S)

(** Wrap a configuration as a first-class scheme module. *)
val of_disambiguation : disambiguation -> t

(** {1 Registry} *)

(** A scheme family: how to parse its backend names and which canonical
    instances it contributes to {!all}. *)
type family = {
  f_name : string;  (** family key, e.g. ["prevv"] *)
  f_doc : string;
  f_parse : string -> disambiguation option;
      (** parse a full backend name (e.g. ["prevv16"]) *)
  f_defaults : disambiguation list;  (** instances listed by {!all} *)
}

(** Register a family; [Invalid_argument] on a duplicate [f_name]. *)
val register : family -> unit

val lookup : string -> family option
val families : unit -> family list

(** Canonical instances of every registered family, in registration
    order: dynamatic, fast-lsq, prevv16, prevv64, oracle, serial (plus
    anything registered afterwards). *)
val all : unit -> t list

(** {1 Names and fingerprints} *)

(** Parse a backend name via the registry ([Error] lists known names). *)
val of_string : string -> (disambiguation, string) Stdlib.result

(** Canonical name, such that
    [of_string (to_string d) = Ok d] for canonical configs. *)
val to_string : disambiguation -> string

(** [= to_string]; kept as the historical pipeline spelling. *)
val name_of : disambiguation -> string

val fingerprint_of : disambiguation -> string
val elaboration_of : disambiguation -> Pv_netlist.Elaborate.disambiguation
