(** Supervision layer over the {!Parallel} worker pool: crash isolation,
    per-task deadlines, deterministic retry with exponential backoff, and
    worker respawn.

    The bare pool ({!Parallel.map_pool}) is exception-transparent: one
    raising task re-raises after the batch, poisoning the whole grid, and
    a task that escapes the wrapper kills its worker domain silently.
    This module wraps every task so that

    - an uncaught exception marks only that task failed;
    - a per-attempt deadline (cooperative: the task polls its
      {!Token}, the simulator raises {!Pv_dataflow.Sim.Cancelled}) turns a
      runaway task into a retried one instead of a hung grid;
    - a killed worker (a task raising {!Kill_worker}, the chaos-testing
      stand-in for a dying domain) takes down only itself: the in-flight
      task is marked failed-retryable and the supervisor respawns a
      replacement worker so the pool never shrinks;
    - failed tasks are retried with seed-deterministic exponential
      backoff up to [max_attempts], then reported as a structured
      {!task_error} — the caller always receives one result per task.

    DESIGN.md §18 specifies the task lifecycle and policy semantics. *)

(** {1 Cancellation tokens} *)

module Token : sig
  (** A cooperative cancellation token: a flag the owner may set, plus an
      optional monotonic-clock deadline.  Tasks (and {!Pv_dataflow.Sim}
      via its [config.cancel] hook) poll {!cancelled}. *)

  type t

  (** [create ?deadline_s ()] — [deadline_s] is seconds from now on the
      monotonic clock ({!Clock}). *)
  val create : ?deadline_s:float -> unit -> t

  (** Set the flag (idempotent, thread-safe). *)
  val cancel : t -> unit

  (** True once {!cancel} was called or the deadline passed. *)
  val cancelled : t -> bool
end

(** {1 Policy} *)

type policy = {
  max_attempts : int;  (** total tries per task (>= 1) *)
  base_delay_s : float;  (** backoff after the first failure *)
  max_delay_s : float;  (** backoff ceiling *)
  deadline_s : float option;  (** per-attempt cooperative deadline *)
  seed : int;  (** jitter seed: same seed => same schedule *)
  retryable : exn -> bool;
      (** which failures are worth retrying; {!default_policy} retries
          everything except [Invalid_argument] (an infeasible
          configuration never becomes feasible) *)
}

(** 3 attempts, 10 ms base, 500 ms ceiling, no deadline, seed 0. *)
val default_policy : policy

(** [backoff_delay policy ~label ~attempt] — the delay in seconds before
    retry number [attempt] (the first retry is [attempt = 1]) of the task
    named [label]: exponential ([base * 2^(attempt-1)], capped at
    [max_delay_s]) with a deterministic jitter factor in [0.5, 1.5)
    derived from [(seed, label, attempt)].  Pure: same policy, label and
    attempt always give the same delay. *)
val backoff_delay : policy -> label:string -> attempt:int -> float

(** The full per-task schedule [backoff_delay ~attempt:1 .. max_attempts-1]
    — what a task would sleep between its successive attempts. *)
val backoff_schedule : policy -> label:string -> float list

(** {1 Task outcomes} *)

(** Raised by a task to simulate its worker domain dying mid-task — the
    chaos-testing kill switch.  The supervisor marks the task
    failed-retryable, lets the worker die, and respawns a replacement. *)
exception Kill_worker

type task_error = {
  label : string;  (** e.g. ["gaussian/prevv16"] *)
  attempts : int;  (** attempts actually made *)
  last_error : string;  (** printed last exception / post-mortem *)
  deadline_hit : bool;  (** the last failure was a deadline overrun *)
  worker_kills : int;  (** attempts that died with {!Kill_worker} *)
}

val pp_task_error : Format.formatter -> task_error -> unit

(** Deterministic JSON object for an errors section. *)
val task_error_to_json : task_error -> Pv_obs.Json.t

type stats = {
  completed : int;  (** tasks that returned a value *)
  failed : int;  (** tasks reported as {!task_error} *)
  retries : int;  (** extra attempts beyond each task's first *)
  respawns : int;  (** replacement workers spawned after kills *)
  deadline_hits : int;  (** attempts cancelled by their deadline *)
}

(** {1 Running} *)

(** [run_tasks ~jobs ~label f tasks] runs every task under supervision and
    returns one result per task, in task order, plus the run's {!stats}.
    [f] receives a fresh {!Token} per attempt (wire it into
    [Sim.config.cancel] for cooperative deadlines).  [jobs <= 1] runs
    serially on the calling domain — the deterministic reference.
    [metrics] (optional) gets [<prefix>retries] / [<prefix>respawns] /
    [<prefix>task_errors] / [<prefix>deadline_hits] counters
    ([metrics_prefix] defaults to ["supervisor."]).  [log] (default
    {!Pv_obs.Log.null}) receives one structured line per anomalous task
    ([task_retried] at Warn, [task_failed] at Error) and a [pool_summary]
    line when any retry/kill/failure occurred — emitted post-run from the
    calling domain, so a single-writer sink suffices.

    Tasks must not print; ordering and content of the returned list are
    deterministic given a deterministic task function (wall-clock
    deadlines excepted — see DESIGN.md §18). *)
val run_tasks :
  ?policy:policy ->
  ?metrics:Pv_obs.Metrics.t ->
  ?metrics_prefix:string ->
  ?log:Pv_obs.Log.t ->
  jobs:int ->
  label:('a -> string) ->
  (token:Token.t -> 'a -> 'b) ->
  'a list ->
  ('b, task_error) result list * stats
