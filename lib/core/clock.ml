(** Monotonic wall-clock for the runner layer — see the .mli. *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

let sleep_s s = if s > 0.0 then Unix.sleepf s
