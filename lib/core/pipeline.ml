(** Top-level flow: kernel → analysis → circuit → simulation → check.

    This is the API the examples, CLI and benchmarks use.  It mirrors the
    paper's toolchain: Dynamatic elaboration (here {!Pv_frontend.Build}),
    backend selection through the {!Scheme} registry (LSQ baselines,
    PreVV, oracle/serial reference bounds), ModelSim-vs-C++ checking
    (here simulation vs the reference interpreter). *)

(* Re-exported so every existing [Pipeline.Prevv {...}] construction keeps
   compiling; the definition (and all matching) lives in [Scheme]. *)
type disambiguation = Scheme.disambiguation =
  | Plain_lsq of Pv_lsq.Lsq.config  (** Dynamatic baseline [15] *)
  | Fast_lsq of Pv_lsq.Lsq.config  (** fast LSQ allocation [8] *)
  | Prevv of Pv_prevv.Backend.config  (** this paper *)
  | Oracle of Pv_bounds.Oracle.config  (** prescient lower bound *)
  | Serial of Pv_bounds.Serial.config  (** serializing upper bound *)

let plain_lsq = Scheme.plain_lsq
let fast_lsq = Scheme.fast_lsq
let prevv = Scheme.prevv
let oracle = Scheme.oracle
let serial = Scheme.serial
let name_of = Scheme.name_of

type compiled = {
  kernel : Pv_kernels.Ast.kernel;
  info : Pv_frontend.Depend.info;
  layout : Pv_memory.Layout.t;
  trace : Pv_frontend.Trace.t;
  graph : Pv_dataflow.Graph.t;
}

let compile ?(options = Pv_frontend.Build.default_options)
    (kernel : Pv_kernels.Ast.kernel) : compiled =
  let info =
    Pv_frontend.Depend.analyse ~cse:options.Pv_frontend.Build.cse kernel
  in
  let layout = Pv_memory.Layout.of_kernel kernel in
  let trace = Pv_frontend.Trace.of_kernel kernel info in
  let graph = Pv_frontend.Build.circuit ~options kernel info layout trace in
  { kernel; info; layout; trace; graph }

type result = {
  outcome : Pv_dataflow.Sim.outcome;
  cycles : int;
  mem : int array;  (** final flat memory *)
  mem_stats : Pv_dataflow.Memif.stats;
  run_stats : Pv_dataflow.Sim.run_stats;
}

let backend_full ?trace ?prof (compiled : compiled) mem dis : Scheme.instance =
  let env =
    Scheme.make_env ?trace ?prof
      ~portmap:compiled.info.Pv_frontend.Depend.portmap ~graph:compiled.graph
      mem
  in
  let (module M : Scheme.S) = Scheme.of_disambiguation dis in
  M.make env

let backend_of compiled mem dis =
  (backend_full compiled mem dis).Scheme.memif

(* Fill [m] from the engine-invariant result of a run.  Everything here is
   identical across Scan/Event (enforced by test_sim_equiv for the stats,
   by construction for the outcome) and across worker counts (each run owns
   its state), which is what makes metric snapshots deterministic.  The
   engine-dependent [run_stats.evals] is deliberately NOT a metric.
   Scheme-specific counters are appended by the instance's own
   [record_metrics] hook under its [scheme.<name>.*] namespace. *)
let record_metrics m (r : result) =
  let module M = Pv_obs.Metrics in
  let module MS = Pv_dataflow.Memif in
  M.add m "sim.cycles" r.cycles;
  M.add m "sim.node_fires" (Array.fold_left ( + ) 0 r.run_stats.node_fires);
  M.add m "sim.gen_instances" r.run_stats.gen_instances;
  (match r.outcome with
  | Pv_dataflow.Sim.Finished _ -> M.incr m "sim.finished"
  | Pv_dataflow.Sim.Deadlock _ -> M.incr m "sim.deadlock"
  | Pv_dataflow.Sim.Timeout _ -> M.incr m "sim.timeout");
  let s = r.mem_stats in
  M.add m "backend.loads" s.MS.loads;
  M.add m "backend.stores" s.MS.stores;
  M.add m "backend.squashes" s.MS.squashes;
  M.add m "backend.replayed_ops" s.MS.replayed_ops;
  M.add m "backend.forwarded" s.MS.forwarded;
  M.add m "backend.fake_tokens" s.MS.fake_tokens;
  M.add m "backend.faults" s.MS.faults;
  M.add m "backend.degraded" s.MS.degraded;
  M.add m "backend.stall_full" s.MS.stall_full;
  M.add m "backend.stall_alloc" s.MS.stall_alloc;
  M.add m "backend.stall_order" s.MS.stall_order;
  M.add m "backend.stall_bw" s.MS.stall_bw;
  M.set_gauge_max m "backend.pq_high_water" s.MS.max_occupancy

let simulate ?(sim_cfg = Pv_dataflow.Sim.default_config)
    ?(init : (string * int array) list option)
    ?(obs_trace = Pv_obs.Trace.null) ?(prof = Pv_obs.Prof.null) ?metrics
    (compiled : compiled) (dis : disambiguation) : result =
  let init =
    match init with
    | Some i -> i
    | None -> Pv_kernels.Workload.default_init compiled.kernel
  in
  let mem = Pv_memory.Layout.initial_memory compiled.layout compiled.kernel ~init in
  let inst = backend_full ~trace:obs_trace ~prof compiled mem dis in
  let backend = inst.Scheme.memif in
  let outcome, run_stats =
    Pv_dataflow.Sim.run ~cfg:sim_cfg ~trace:obs_trace ~prof compiled.graph
      backend
  in
  let cycles =
    match outcome with
    | Pv_dataflow.Sim.Finished { cycles } -> cycles
    | Pv_dataflow.Sim.Deadlock { at_cycle; _ }
    | Pv_dataflow.Sim.Timeout { at_cycle; _ } ->
        at_cycle
  in
  let result =
    {
      outcome;
      cycles;
      mem;
      mem_stats = backend.Pv_dataflow.Memif.stats ();
      run_stats;
    }
  in
  (match metrics with
  | Some m ->
      record_metrics m result;
      (* trace truncation is an observability defect worth surfacing even
         when nobody reads the Chrome export *)
      if Pv_obs.Trace.enabled obs_trace then
        Pv_obs.Metrics.add m "trace.dropped_events"
          (Pv_obs.Trace.dropped obs_trace);
      inst.Scheme.record_metrics m
  | None -> ());
  result

(** The diagnosis attached to a [Deadlock]/[Timeout] outcome, if any. *)
let post_mortem (r : result) : Pv_dataflow.Sim.post_mortem option =
  match r.outcome with
  | Pv_dataflow.Sim.Deadlock { post_mortem; _ }
  | Pv_dataflow.Sim.Timeout { post_mortem; _ } ->
      Some post_mortem
  | Pv_dataflow.Sim.Finished _ -> None

(** Check a simulation result against the reference interpreter on the
    same inputs; returns mismatches as (array, index, expected, got). *)
let verify ?(init : (string * int array) list option) (compiled : compiled)
    (result : result) : (string * int * int * int) list =
  let init =
    match init with
    | Some i -> i
    | None -> Pv_kernels.Workload.default_init compiled.kernel
  in
  let golden = Pv_kernels.Interp.run compiled.kernel ~init in
  Pv_memory.Layout.diff_against compiled.layout compiled.kernel result.mem golden

(** One-call convenience used everywhere in tests: simulate and verify;
    returns an error message on any failure. *)
let check ?sim_cfg ?init kernel dis : (result, string) Stdlib.result =
  let compiled = compile kernel in
  let result = simulate ?sim_cfg ?init compiled dis in
  match result.outcome with
  | Pv_dataflow.Sim.Finished _ -> (
      match verify ?init compiled result with
      | [] -> Ok result
      | (a, ix, want, got) :: _ as l ->
          Error
            (Printf.sprintf "%s/%s: %d mismatches, first %s[%d]: want %d got %d"
               kernel.Pv_kernels.Ast.name (name_of dis) (List.length l) a ix want
               got))
  | o ->
      Error
        (Format.asprintf "%s/%s: %a@\n%a" kernel.Pv_kernels.Ast.name
           (name_of dis) Pv_dataflow.Sim.pp_outcome o
           (Format.pp_print_option Pv_dataflow.Sim.pp_post_mortem)
           (post_mortem result))
