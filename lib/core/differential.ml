type row = {
  scheme : string;
  rank : int option;
  cycles : int;
  finished : bool;
  verified : bool;
  degraded : bool;
}

type report = {
  kernel : string;
  rows : row list;
  agree : bool;
  ordering_ok : bool;
  violations : string list;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let rank_of name =
  if name = "oracle" then Some 0
  else if starts_with ~prefix:"prevv" name then Some 1
  else if name = "dynamatic" then Some 2
  else if name = "serial" then Some 3
  else None

let run ?sim_cfg ?init ?schemes (kernel : Pv_kernels.Ast.kernel) : report =
  let schemes = match schemes with Some s -> s | None -> Scheme.all () in
  let compiled = Pipeline.compile kernel in
  let runs =
    List.map
      (fun (module M : Scheme.S) ->
        let r = Pipeline.simulate ?sim_cfg ?init compiled M.config in
        let finished =
          match r.Pipeline.outcome with
          | Pv_dataflow.Sim.Finished _ -> true
          | _ -> false
        in
        let verified = finished && Pipeline.verify ?init compiled r = [] in
        let row =
          {
            scheme = M.name;
            rank = rank_of M.name;
            cycles = r.Pipeline.cycles;
            finished;
            verified;
            degraded = r.Pipeline.mem_stats.Pv_dataflow.Memif.degraded > 0;
          }
        in
        (row, r.Pipeline.mem))
      schemes
  in
  let rows = List.map fst runs in
  let agree =
    List.for_all (fun r -> r.finished && r.verified) rows
    &&
    match runs with
    | [] -> true
    | (_, m0) :: rest -> List.for_all (fun (_, m) -> m = m0) rest
  in
  (* bound chain: for each pair of occupied adjacent ranks, the slowest of
     the lower rank must not exceed the fastest of the higher one *)
  let ranked =
    List.filter_map
      (fun r ->
        match r.rank with Some k when r.finished -> Some (k, r) | _ -> None)
      rows
  in
  let groups =
    List.sort_uniq compare (List.map fst ranked)
    |> List.map (fun k -> List.filter (fun (k', _) -> k' = k) ranked
                          |> List.map snd)
  in
  let extreme cmp l =
    List.fold_left (fun acc r -> if cmp r.cycles acc.cycles then r else acc)
      (List.hd l) (List.tl l)
  in
  let rec chain violations = function
    | lower :: (upper :: _ as rest) ->
        let slow = extreme ( > ) lower and fast = extreme ( < ) upper in
        let violations =
          if slow.cycles > fast.cycles then
            Printf.sprintf "%s (%d cycles) > %s (%d cycles)" slow.scheme
              slow.cycles fast.scheme fast.cycles
            :: violations
          else violations
        in
        chain violations rest
    | _ -> List.rev violations
  in
  let violations = chain [] groups in
  {
    kernel = kernel.Pv_kernels.Ast.name;
    rows;
    agree;
    ordering_ok = violations = [];
    violations;
  }

let ok r = r.agree && r.ordering_ok

let pp ppf r =
  Format.fprintf ppf "@[<v>%s:@," r.kernel;
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-10s %8d cycles  %s%s%s@," row.scheme row.cycles
        (if not row.finished then "DID-NOT-FINISH"
         else if row.verified then "verified"
         else "MEMORY-MISMATCH")
        (if row.degraded then " degraded" else "")
        (match row.rank with
        | Some k -> Printf.sprintf "  (chain rank %d)" k
        | None -> "  (unranked)"))
    r.rows;
  Format.fprintf ppf "  agree=%b ordering_ok=%b@," r.agree r.ordering_ok;
  List.iter (fun v -> Format.fprintf ppf "  VIOLATION: %s@," v) r.violations;
  Format.fprintf ppf "@]"
