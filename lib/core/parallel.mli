(** Domain-parallel job execution for the experiment grid, plus a
    content-addressed result cache.

    The whole kernel × scheme × depth evaluation grid is embarrassingly
    parallel: every point compiles its own circuit, simulates against its
    own backend instance and elaborates its own netlist, with no shared
    mutable state (see DESIGN.md §14 for the audit).  This module supplies
    the two pieces the drivers need:

    - a fixed-size worker {!pool} (stdlib [Domain] + [Mutex]/[Condition],
      no external dependencies) with a shared job queue and an
      order-preserving {!map} on top;
    - a {!Cache} keyed by a digest of everything that determines a result
      (kernel source, scheme configuration, simulator configuration,
      inputs), so repeated table/sweep invocations reuse prior points.

    Workers must never print: all [Format]/[Printf]/[Buffer] rendering
    happens on the calling domain after the jobs return, which is what
    makes parallel output byte-identical to serial output. *)

(** A sensible worker count for this machine:
    [Domain.recommended_domain_count () - 1], clamped to [1, 8]. *)
val default_jobs : unit -> int

(** {1 Worker pool} *)

type pool
(** A fixed set of worker domains draining one shared job queue. *)

(** Spawn [jobs] worker domains (at least one). *)
val create : jobs:int -> pool

(** Number of worker domains. *)
val size : pool -> int

(** Completed jobs per worker — the pool-utilisation telemetry behind the
    observability layer's [runner.worker_jobs] metric.  Each worker counts
    only its own slot (race-free by construction); the counts are exact
    after {!shutdown}, and a live read may lag by the jobs in flight. *)
val worker_jobs : pool -> int list

(** Enqueue a job.  The job runs on some worker domain; it must do its own
    synchronisation for any shared result slot and must not print.
    @raise Invalid_argument after {!shutdown}. *)
val submit : pool -> (unit -> unit) -> unit

(** Stop accepting jobs, drain the queue, and join every worker.
    Idempotent. *)
val shutdown : pool -> unit

(** [map_pool pool f xs] runs [f] on every element using the pool's
    workers and returns the results in input order.  If any job raised,
    the exception of the smallest-index failing element is re-raised after
    all jobs have completed (unlike serial [List.map], later elements are
    still evaluated). *)
val map_pool : pool -> ('a -> 'b) -> 'a list -> 'b list

(** [effective_jobs jobs]: the worker count {!map} will actually use —
    [jobs] clamped to [Domain.recommended_domain_count ()].  Domains
    beyond the hardware's parallelism only add stop-the-world GC
    synchronisation, so {!map} never oversubscribes; on a single-core
    host every requested count degrades to the serial path. *)
val effective_jobs : int -> int

(** [map ~jobs f xs]: {!map_pool} on a transient pool of
    [effective_jobs jobs] workers.  With an effective count of 1 (or
    fewer than two elements) this is exactly [List.map f xs] on the
    calling domain — the serial reference the determinism harness
    compares against.  [jobs] defaults to {!default_jobs}.  To force an
    exact worker count (e.g. an oversubscribed race-hunting stress), use
    {!create} + {!map_pool}. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Result cache} *)

module Cache : sig
  (** Content-addressed memoisation of experiment results.

      Values are stored marshalled, in memory and (optionally) on disk as
      [dir/<key>.bin], written atomically so concurrent processes can
      share a directory.  A disk entry that fails to load for any reason
      (truncated write, stale binary layout) is treated as a miss and
      overwritten.

      {b The key must determine the value's type as well as its contents}:
      [memo] unmarshals whatever the key maps to.  Callers achieve this by
      salting keys with a schema tag (see {!Experiment.cache_key}).  Only
      marshal-safe values (no closures) may be cached. *)

  type t

  (** Memory-only cache (per-process). *)
  val in_memory : unit -> t

  (** Disk-backed cache rooted at [dir] (created if missing). *)
  val on_disk : dir:string -> t

  (** [$PREVV_CACHE_DIR] if set, else ["_prevv_cache"]. *)
  val default_dir : unit -> string

  (** [memo t ~key compute] returns the cached value for [key], or runs
      [compute], stores its result and returns it.  Thread-safe; may be
      called from pool workers.  Exceptions from [compute] propagate and
      nothing is stored. *)
  val memo : t -> key:string -> (unit -> 'a) -> 'a * [ `Hit | `Miss ]

  (** Hit/miss counters since creation (or {!reset_stats}). *)
  val hits : t -> int

  val misses : t -> int
  val reset_stats : t -> unit
end
