(** Domain-parallel job execution for the experiment grid, plus a
    content-addressed result cache.

    The whole kernel × scheme × depth evaluation grid is embarrassingly
    parallel: every point compiles its own circuit, simulates against its
    own backend instance and elaborates its own netlist, with no shared
    mutable state (see DESIGN.md §14 for the audit).  This module supplies
    the two pieces the drivers need:

    - a fixed-size worker {!pool} (stdlib [Domain] + [Mutex]/[Condition],
      no external dependencies) with a shared job queue and an
      order-preserving {!map} on top;
    - a {!Cache} keyed by a digest of everything that determines a result
      (kernel source, scheme configuration, simulator configuration,
      inputs), so repeated table/sweep invocations reuse prior points.

    Workers must never print: all [Format]/[Printf]/[Buffer] rendering
    happens on the calling domain after the jobs return, which is what
    makes parallel output byte-identical to serial output. *)

(** A sensible worker count for this machine:
    [Domain.recommended_domain_count () - 1], clamped to [1, 8]. *)
val default_jobs : unit -> int

(** {1 Worker pool} *)

type pool
(** A fixed set of worker domains draining one shared job queue. *)

(** Spawn [jobs] worker domains (at least one). *)
val create : jobs:int -> pool

(** Number of worker domains. *)
val size : pool -> int

(** Completed jobs per worker — the pool-utilisation telemetry behind the
    observability layer's [runner.worker_jobs] metric.  Each worker counts
    only its own slot (race-free by construction); the counts are exact
    after {!shutdown}, and a live read may lag by the jobs in flight. *)
val worker_jobs : pool -> int list

(** Enqueue a job.  The job runs on some worker domain; it must do its own
    synchronisation for any shared result slot and must not print.
    @raise Invalid_argument after {!shutdown}. *)
val submit : pool -> (unit -> unit) -> unit

(** Stop accepting jobs, drain the queue, and join every worker.
    Idempotent. *)
val shutdown : pool -> unit

(** [map_pool pool f xs] runs [f] on every element using the pool's
    workers and returns the results in input order.  If any job raised,
    the exception of the smallest-index failing element is re-raised after
    all jobs have completed (unlike serial [List.map], later elements are
    still evaluated).  [batch] (default 1) submits that many consecutive
    elements per queued job, amortising queue/lock traffic over cheap
    task lists. *)
val map_pool : ?batch:int -> pool -> ('a -> 'b) -> 'a list -> 'b list

(** Upper bound on any worker-count request (64). *)
val max_jobs : int

(** [effective_jobs jobs]: the worker count {!map} (and the experiment
    drivers) will actually use — the request itself, clamped to
    [\[1, max_jobs\]].  An explicit request is honoured exactly: [--jobs 2]
    runs 2 workers even where [Domain.recommended_domain_count ()] is 1
    (the previous hardware clamp silently collapsed such requests to a
    single worker).  Only {!default_jobs} adapts to the machine. *)
val effective_jobs : int -> int

(** [map ~jobs f xs]: {!map_pool} on a transient pool of
    [effective_jobs jobs] workers.  With an effective count of 1 (or
    fewer than two elements) this is exactly [List.map f xs] on the
    calling domain — the serial reference the determinism harness
    compares against.  [jobs] defaults to {!default_jobs}; [batch] as in
    {!map_pool}. *)
val map : ?jobs:int -> ?batch:int -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Result cache} *)

module Cache : sig
  (** Content-addressed memoisation of experiment results, safe under
      concurrent writers from multiple processes.

      Values are stored marshalled, in memory and (optionally) on disk,
      sharded by key prefix as [dir/<key\[0..1\]>/<key>.bin].  Each disk
      entry is framed (magic + payload digest) and published by an
      advisory-lock + atomic-rename protocol: writers stage a
      per-(pid, domain)-unique temp file and rename it under a per-shard
      advisory lock; readers take no lock because the frame digest rejects
      every torn state.  A disk entry that fails any check — truncated
      write, short read, garbage, stale binary layout — is treated as a
      miss {e and repaired} (unlinked, recomputed, rewritten); leftover
      temp files from crashed writers are swept on {!on_disk}.

      {b The key must determine the value's type as well as its contents}:
      [memo] unmarshals whatever the key maps to.  Callers achieve this by
      salting keys with a schema tag (see {!Experiment.cache_key}).  Only
      marshal-safe values (no closures) may be cached. *)

  type t

  (** Memory-only cache (per-process).  [max_mem] caps the in-memory
      entry count (default 65536); beyond it entries are evicted
      oldest-insertion-first.  [log] (default {!Pv_obs.Log.null}) gets one
      [cache_repair] Warn line per corrupt entry repaired. *)
  val in_memory : ?max_mem:int -> ?log:Pv_obs.Log.t -> unit -> t

  (** Disk-backed cache rooted at [dir] (created if missing; stale temp
      files from crashed writers are swept).  [max_mem] and [log] as in
      {!in_memory} — eviction only drops the in-memory mirror, never the
      disk entry. *)
  val on_disk : ?max_mem:int -> ?log:Pv_obs.Log.t -> dir:string -> unit -> t

  (** [$PREVV_CACHE_DIR] if set, else ["_prevv_cache"]. *)
  val default_dir : unit -> string

  (** [memo t ~key compute] returns the cached value for [key], or runs
      [compute], stores its result and returns it.  Thread-safe; may be
      called from pool workers.  Exceptions from [compute] propagate and
      nothing is stored. *)
  val memo : t -> key:string -> (unit -> 'a) -> 'a * [ `Hit | `Miss ]

  (** Hit/miss/repair/eviction counters since creation (or
      {!reset_stats}). *)
  val hits : t -> int

  val misses : t -> int

  (** Corrupt disk entries detected and unlinked by the read path. *)
  val repairs : t -> int

  (** In-memory entries dropped by the [max_mem] cap. *)
  val evictions : t -> int

  (** Add the four counters into a {!Pv_obs.Metrics} registry as
      [cache.hits] / [cache.misses] / [cache.repairs] / [cache.evictions]
      (totals since creation or {!reset_stats}). *)
  val record_metrics : t -> Pv_obs.Metrics.t -> unit

  val reset_stats : t -> unit
end
