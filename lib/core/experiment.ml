(** One evaluation point: a kernel under a disambiguation scheme, with
    cycle count (simulated), area and clock period (modelled), and
    execution time — one cell group of Tables I and II. *)

type point = {
  kernel : string;
  config : string;
  cycles : int;
  report : Pv_resource.Report.t;
  exec_us : float;
  mem_stats : Pv_dataflow.Memif.stats;
  verified : bool;  (** final memory matched the reference interpreter *)
  metrics : Pv_obs.Metrics.snapshot;
      (** per-run metric snapshot (cycles, fires, backend traffic, arbiter
          tallies — see [Pipeline.simulate]).  Deterministic: identical
          across engines and worker counts, and marshal-safe so it rides
          the result cache. *)
}

let elaboration_of (dis : Pipeline.disambiguation) :
    Pv_netlist.Elaborate.disambiguation =
  Scheme.elaboration_of dis

(** Run one (kernel, scheme) point: compile, simulate, verify, elaborate. *)
let run ?sim_cfg ?init (kernel : Pv_kernels.Ast.kernel)
    (dis : Pipeline.disambiguation) : point =
  let compiled = Pipeline.compile kernel in
  let m = Pv_obs.Metrics.create () in
  let result = Pipeline.simulate ?sim_cfg ?init ~metrics:m compiled dis in
  let verified =
    match result.Pipeline.outcome with
    | Pv_dataflow.Sim.Finished _ -> Pipeline.verify ?init compiled result = []
    | _ -> false
  in
  let report =
    Pv_resource.Report.of_circuit compiled.Pipeline.graph
      compiled.Pipeline.info.Pv_frontend.Depend.portmap (elaboration_of dis)
  in
  {
    kernel = kernel.Pv_kernels.Ast.name;
    config = Pipeline.name_of dis;
    cycles = result.Pipeline.cycles;
    report;
    exec_us =
      Pv_resource.Timing.exec_time_us ~cycles:result.Pipeline.cycles
        ~cp_ns:report.Pv_resource.Report.cp_ns;
    mem_stats = result.Pipeline.mem_stats;
    verified;
    metrics = Pv_obs.Metrics.snapshot m;
  }

(* ------------------------------------------------------------------ *)
(* Result caching                                                      *)
(* ------------------------------------------------------------------ *)

(* every functional-unit kind, so a sim config's latency function can be
   fingerprinted by sampling (the closure itself is not marshalable) *)
let all_binops : Pv_dataflow.Types.binop list =
  Pv_dataflow.Types.
    [
      Add; Sub; Mul; Mulc; Div; Rem; And; Or; Xor; Shl; Shr; Lt; Le; Gt; Ge;
      Eq; Ne; Min; Max;
    ]

(** Content address of one evaluation point: a digest over everything that
    determines the result — kernel AST, input data, the full scheme
    configuration, and the simulator configuration (engine, budgets, fault
    plan, per-unit latencies).  Wall-clock timing is never part of a
    [point], so cached results are exact.  The salt names the schema: bump
    it whenever [point] or any constituent record changes shape. *)
let cache_key ?(sim_cfg = Pv_dataflow.Sim.default_config) ?init
    (kernel : Pv_kernels.Ast.kernel) (dis : Pipeline.disambiguation) : string =
  let module Sim = Pv_dataflow.Sim in
  let init =
    match init with
    | Some i -> i
    | None -> Pv_kernels.Workload.default_init kernel
  in
  (* the scheme's own fingerprint covers its full configuration; the name
     keys distinct families whose configs could collide byte-wise *)
  let dis_repr = (Scheme.name_of dis, Scheme.fingerprint_of dis) in
  let sim_repr =
    ( Sim.string_of_engine sim_cfg.Sim.engine,
      sim_cfg.Sim.max_cycles,
      sim_cfg.Sim.stall_limit,
      Marshal.to_string sim_cfg.Sim.faults [],
      List.map sim_cfg.Sim.op_latency all_binops )
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string ("prevv-expt/v3", kernel, init, dis_repr, sim_repr) []))

(** {!run} through a {!Parallel.Cache}: a hit returns the stored point
    without compiling or simulating anything. *)
let run_cached ?sim_cfg ?init ~cache kernel dis : point * [ `Hit | `Miss ] =
  let key = cache_key ?sim_cfg ?init kernel dis in
  Parallel.Cache.memo cache ~key (fun () -> run ?sim_cfg ?init kernel dis)

(* ------------------------------------------------------------------ *)
(* Sweep driver                                                        *)
(* ------------------------------------------------------------------ *)

let run_point ?sim_cfg ?cache (kernel, dis) =
  match cache with
  | None -> run ?sim_cfg kernel dis
  | Some cache -> fst (run_cached ?sim_cfg ~cache kernel dis)

(** Fan a list of (kernel, scheme) cells across [jobs] worker domains
    (serially for [jobs <= 1]), in cell order.  Infeasible configurations
    (a queue depth below one iteration's operation count) come back as
    [Error msg] instead of aborting the whole sweep.  Workers only
    compute; any printing belongs to the caller, after the sweep.

    [metrics] (optional) aggregates the sweep: every point's own snapshot
    is absorbed (deterministic), plus [runner.*] telemetry — point/error
    counts and a cycles histogram (deterministic), and cache-hit deltas,
    effective job count and a per-worker load histogram (runtime-dependent
    by nature; strip the [runner.] prefix when comparing runs). *)
let sweep ?sim_cfg ?cache ?metrics ?(jobs = 1) cells :
    (point, string) result list =
  let hits0, misses0 =
    match cache with
    | Some c -> (Parallel.Cache.hits c, Parallel.Cache.misses c)
    | None -> (0, 0)
  in
  let f cell =
    match run_point ?sim_cfg ?cache cell with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg
    | exception e -> Error (Printexc.to_string e)
  in
  (* same execution shape as Parallel.map, but over an explicit pool so
     the per-worker tallies survive for the telemetry below *)
  let ej = Parallel.effective_jobs jobs in
  let serial = ej <= 1 || List.compare_length_with cells 2 < 0 in
  let results, used_jobs, workers =
    if serial then (List.map f cells, 1, [ List.length cells ])
    else begin
      let n = min ej (List.length cells) in
      let pool = Parallel.create ~jobs:n in
      let rs =
        Fun.protect
          ~finally:(fun () -> Parallel.shutdown pool)
          (fun () -> Parallel.map_pool pool f cells)
      in
      (rs, n, Parallel.worker_jobs pool)
    end
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let module M = Pv_obs.Metrics in
      List.iter
        (function
          | Ok p ->
              M.incr m "runner.points";
              M.observe m "runner.point_cycles" p.cycles;
              M.absorb m p.metrics
          | Error _ -> M.incr m "runner.errors")
        results;
      M.set_gauge_max m "runner.jobs_effective" used_jobs;
      List.iter (fun n -> M.observe m "runner.worker_jobs" n) workers;
      (match cache with
      | Some c ->
          M.add m "runner.cache_hits" (Parallel.Cache.hits c - hits0);
          M.add m "runner.cache_misses" (Parallel.Cache.misses c - misses0)
      | None -> ()));
  results

(* ------------------------------------------------------------------ *)
(* Supervised sweep                                                    *)
(* ------------------------------------------------------------------ *)

(** [run_checked] is {!run} with every failure mode folded into a
    deterministic [Error] string instead of an exception. *)
let run_checked ?sim_cfg ?init kernel dis : (point, string) result =
  match run ?sim_cfg ?init kernel dis with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg
  | exception Pv_dataflow.Sim.Cancelled { at_cycle } ->
      Error (Printf.sprintf "cancelled at cycle %d" at_cycle)
  | exception e -> Error (Printexc.to_string e)

let cell_label (kernel, dis) =
  kernel.Pv_kernels.Ast.name ^ "/" ^ Pipeline.name_of dis

(** {!sweep} under {!Supervisor.run_tasks}: each cell runs with a fresh
    cancellation token wired into the simulator's [cancel] hook, crashes
    and deadline overruns are retried per [policy], and the exhausted
    cells come back as structured {!Supervisor.task_error}s.  The token
    never enters {!cache_key}, so supervised and bare sweeps share cache
    entries. *)
let sweep_supervised ?policy ?sim_cfg ?cache ?metrics ?(jobs = 1) cells :
    (point, Supervisor.task_error) result list * Supervisor.stats =
  let hits0, misses0 =
    match cache with
    | Some c -> (Parallel.Cache.hits c, Parallel.Cache.misses c)
    | None -> (0, 0)
  in
  let base =
    Option.value sim_cfg ~default:Pv_dataflow.Sim.default_config
  in
  let f ~token cell =
    let sim_cfg =
      {
        base with
        Pv_dataflow.Sim.cancel =
          (fun () -> Supervisor.Token.cancelled token);
      }
    in
    run_point ~sim_cfg ?cache cell
  in
  let results, stats =
    Supervisor.run_tasks ?policy ?metrics ~metrics_prefix:"runner." ~jobs
      ~label:cell_label f cells
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let module M = Pv_obs.Metrics in
      List.iter
        (function
          | Ok p ->
              M.incr m "runner.points";
              M.observe m "runner.point_cycles" p.cycles;
              M.absorb m p.metrics
          | Error _ -> M.incr m "runner.errors")
        results;
      M.set_gauge_max m "runner.jobs_effective" (Parallel.effective_jobs jobs);
      (match cache with
      | Some c ->
          M.add m "runner.cache_hits" (Parallel.Cache.hits c - hits0);
          M.add m "runner.cache_misses" (Parallel.Cache.misses c - misses0)
      | None -> ()));
  (results, stats)

(** The paper's four evaluated configurations, in table-column order. *)
let paper_configs () =
  [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16; Pipeline.prevv 64 ]

(** Run the full grid for the paper's five kernels (Tables I & II),
    optionally across [jobs] domains and through a result cache.  The
    returned rows are identical whatever the worker count: every point is
    deterministic and is computed from private state. *)
(* regroup a flat cell list into rows of [width] per kernel *)
let regroup width points =
  let rec rows = function
    | [] -> []
    | points ->
        let rec split n acc rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> invalid_arg "paper_grid: ragged grid"
            | p :: rest -> split (n - 1) (p :: acc) rest
        in
        let row, rest = split width [] points in
        row :: rows rest
  in
  rows points

(** The full grid under supervision: one row per kernel, one
    [(point, task_error) result] per configuration.  A cell that keeps
    failing past the retry budget occupies its grid position as a
    structured error; every other cell still completes. *)
let paper_grid_supervised ?policy ?sim_cfg ?cache ?metrics ?(jobs = 1) () :
    (point, Supervisor.task_error) result list list * Supervisor.stats =
  let configs = paper_configs () in
  let kernels = Pv_kernels.Defs.paper_benchmarks () in
  let cells =
    List.concat_map (fun k -> List.map (fun d -> (k, d)) configs) kernels
  in
  let results, stats =
    sweep_supervised ?policy ?sim_cfg ?cache ?metrics ~jobs cells
  in
  (regroup (List.length configs) results, stats)

let paper_grid ?sim_cfg ?cache ?(jobs = 1) () : point list list =
  let rows, _stats = paper_grid_supervised ?sim_cfg ?cache ~jobs () in
  List.map
    (List.map (function
      | Ok p -> p
      | Error e ->
          failwith (Format.asprintf "paper_grid: %a" Supervisor.pp_task_error e)))
    rows

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** Deterministic JSON rendering of a point (no timing fields beyond the
    modelled [exec_us], which is a pure function of cycles and CP): the
    byte-identity surface for the parallel-vs-serial determinism harness
    and the bench/CLI JSON outputs. *)
let point_to_json (p : point) : string =
  let r = p.report in
  Printf.sprintf
    "{ \"kernel\": %S, \"config\": %S, \"cycles\": %d, \"luts\": %d, \
     \"ffs\": %d, \"cp_ns\": %.4f, \"exec_us\": %.4f, \"queue_luts\": %d, \
     \"queue_ffs\": %d, \"squashes\": %d, \"stall_full\": %d, \
     \"verified\": %b }"
    p.kernel p.config p.cycles r.Pv_resource.Report.luts
    r.Pv_resource.Report.ffs r.Pv_resource.Report.cp_ns p.exec_us
    r.Pv_resource.Report.queue_luts r.Pv_resource.Report.queue_ffs
    p.mem_stats.Pv_dataflow.Memif.squashes
    p.mem_stats.Pv_dataflow.Memif.stall_full p.verified

let pct a b = 100.0 *. (float_of_int a /. float_of_int b -. 1.0)
let pctf a b = 100.0 *. ((a /. b) -. 1.0)

let geomean ratios =
  exp (List.fold_left (fun acc r -> acc +. log r) 0.0 ratios
       /. float_of_int (List.length ratios))
