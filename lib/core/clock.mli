(** The one wall-clock for the runner layer.

    Every latency, backoff, deadline and soak-percentile measurement in
    [pv_core] goes through this module, which reads CLOCK_MONOTONIC (via
    bechamel's stub).  [Sys.time] is per-process CPU time — under multiple
    domains it sums the busy time of every worker and is inflated by their
    GC — and [Unix.gettimeofday] can step backwards under NTP; neither is
    acceptable for percentiles or timeout decisions, so neither appears on
    the runner path (DESIGN.md §18 records the audit). *)

(** Monotonic time in nanoseconds since an arbitrary origin. *)
val now_ns : unit -> int64

(** Monotonic time in seconds since an arbitrary origin. *)
val now_s : unit -> float

(** [elapsed_s t0] is the time in seconds since [t0 = now_ns ()]. *)
val elapsed_s : int64 -> float

(** Sleep the calling domain for [s] seconds (no-op for [s <= 0]). *)
val sleep_s : float -> unit
