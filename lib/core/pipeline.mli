(** Top-level flow: kernel → analysis → circuit → simulation → check.

    This is the API the examples, CLI and benchmarks use.  It mirrors the
    paper's toolchain: Dynamatic elaboration ({!Pv_frontend.Build}),
    backend selection through the {!Scheme} registry (LSQ baselines [15]
    [8], PreVV, oracle/serial reference bounds), and the ModelSim-vs-C++
    check (simulation vs the reference interpreter). *)

(** Re-export of {!Scheme.disambiguation}: the configuration of a
    registered scheme.  All matching on it lives in {!Scheme}. *)
type disambiguation = Scheme.disambiguation =
  | Plain_lsq of Pv_lsq.Lsq.config  (** Dynamatic baseline [15] *)
  | Fast_lsq of Pv_lsq.Lsq.config  (** fast LSQ allocation [8] *)
  | Prevv of Pv_prevv.Backend.config  (** this paper *)
  | Oracle of Pv_bounds.Oracle.config  (** prescient lower bound *)
  | Serial of Pv_bounds.Serial.config  (** serializing upper bound *)

val plain_lsq : disambiguation
val fast_lsq : disambiguation

(** PreVV at a paper-named depth ([prevv 16] = "PreVV16"); the simulated
    queue holds {!Pv_prevv.Backend.depth_scale} entries per named unit. *)
val prevv : ?fake_tokens:bool -> int -> disambiguation

(** Perfect-disambiguation cycle lower bound (see {!Pv_bounds.Oracle}). *)
val oracle : disambiguation

(** Fully serializing cycle upper bound (see {!Pv_bounds.Serial}). *)
val serial : disambiguation

(** Display name: "dynamatic", "fast-lsq", "prevv<depth>", "oracle",
    "serial" (= {!Scheme.to_string}). *)
val name_of : disambiguation -> string

(** A compiled kernel: analysis results and the elaborated circuit. *)
type compiled = {
  kernel : Pv_kernels.Ast.kernel;
  info : Pv_frontend.Depend.info;
  layout : Pv_memory.Layout.t;
  trace : Pv_frontend.Trace.t;
  graph : Pv_dataflow.Graph.t;
}

val compile : ?options:Pv_frontend.Build.options -> Pv_kernels.Ast.kernel -> compiled

type result = {
  outcome : Pv_dataflow.Sim.outcome;
  cycles : int;
  mem : int array;  (** final flat memory *)
  mem_stats : Pv_dataflow.Memif.stats;
  run_stats : Pv_dataflow.Sim.run_stats;
}

(** Instantiate the chosen scheme over a flat memory via the registry,
    returning the live {!Scheme.instance} (simulator interface + metric
    hook).  [trace] and [prof] are threaded to the backend's
    instrumentation (defaults: the null sinks). *)
val backend_full :
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  compiled ->
  int array ->
  disambiguation ->
  Scheme.instance

(** Instantiate the chosen backend over a flat memory. *)
val backend_of : compiled -> int array -> disambiguation -> Pv_dataflow.Memif.t

(** The diagnosis attached to a [Deadlock]/[Timeout] outcome, if any. *)
val post_mortem : result -> Pv_dataflow.Sim.post_mortem option

(** Simulate under the chosen scheme; [init] defaults to the kernel's
    {!Pv_kernels.Workload.default_init}.

    [obs_trace] (default {!Pv_obs.Trace.null}) is threaded through the
    simulator and the backend: epoch spans, squash/validation/fake-token
    instants, occupancy and in-flight counter tracks.  [prof] (default
    {!Pv_obs.Prof.null}) is likewise threaded to both and, when enabled,
    attributes every unit of simulated work to a phase
    ([circuit_sweep]/[arbiter_scan]/[pq_validate]/[lsq_cam]/[mem_service])
    and per-node counters — the engine behind [prevv hotspots].
    [metrics] is filled post-run from the engine-invariant result (cycles,
    fires, backend traffic — never the engine-dependent eval count) plus
    the scheme's own [scheme.<name>.*] counters, so snapshots are
    deterministic across engines and worker counts, and recording can
    never perturb the simulation.  When an enabled [obs_trace] is given
    alongside [metrics], the snapshot also records
    [trace.dropped_events] — non-zero means the Chrome export is
    truncated and its ring limit should be raised. *)
val simulate :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  ?obs_trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  ?metrics:Pv_obs.Metrics.t ->
  compiled ->
  disambiguation ->
  result

(** Check a result against the reference interpreter on the same inputs;
    mismatches as (array, index, expected, got). *)
val verify :
  ?init:(string * int array) list ->
  compiled ->
  result ->
  (string * int * int * int) list

(** Compile + simulate + verify; [Error] carries a rendered message for
    non-completion or any memory mismatch. *)
val check :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  Pv_kernels.Ast.kernel ->
  disambiguation ->
  (result, string) Stdlib.result
