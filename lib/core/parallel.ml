(** Domain-parallel job execution and result caching — see the .mli. *)

let default_jobs () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

type pool = {
  n : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;  (** signalled on submit and on shutdown *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  jobs_done : int array;
      (** per-worker completed-job tallies; each worker writes only its
          own slot, so the counts are race-free without atomics.  Exact
          after {!shutdown}; a live read may lag by the jobs in flight. *)
}

let size pool = pool.n

(* Workers block on [nonempty] until a job or shutdown arrives; the job
   itself runs outside the lock so the queue stays available. *)
let worker pool i () =
  let rec next () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.closing then None
    else (
      Condition.wait pool.nonempty pool.lock;
      next ())
  in
  let rec loop () =
    Mutex.lock pool.lock;
    let job = next () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some f ->
        f ();
        pool.jobs_done.(i) <- pool.jobs_done.(i) + 1;
        loop ()
  in
  loop ()

let create ~jobs =
  let pool =
    {
      n = max 1 jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closing = false;
      workers = [];
      jobs_done = Array.make (max 1 jobs) 0;
    }
  in
  pool.workers <- List.init pool.n (fun i -> Domain.spawn (worker pool i));
  pool

(** Completed jobs per worker (pool-utilisation telemetry). *)
let worker_jobs pool = Array.to_list pool.jobs_done

let submit pool f =
  Mutex.lock pool.lock;
  if pool.closing then (
    Mutex.unlock pool.lock;
    invalid_arg "Parallel.submit: pool is shut down");
  Queue.push f pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closing <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let map_pool pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      (* each slot is written by exactly one job; the lock only guards the
         completion counter and the condition *)
      let results = Array.make n None in
      let lock = Mutex.create () in
      let all_done = Condition.create () in
      let pending = ref n in
      Array.iteri
        (fun i x ->
          submit pool (fun () ->
              let r = match f x with v -> Ok v | exception e -> Error e in
              Mutex.lock lock;
              results.(i) <- Some r;
              decr pending;
              if !pending = 0 then Condition.signal all_done;
              Mutex.unlock lock))
        arr;
      Mutex.lock lock;
      while !pending > 0 do
        Condition.wait all_done lock
      done;
      Mutex.unlock lock;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)

(* Worker domains beyond the hardware's parallelism only add
   stop-the-world GC synchronisation (on a single-core host, several
   times the serial wall clock), so [map] never oversubscribes: the
   requested job count is an upper bound, the hardware the limit.  A
   deliberate oversubscription — e.g. a race-hunting stress test on a
   small machine — goes through [create] + [map_pool], which honour the
   exact count. *)
let effective_jobs jobs = min jobs (Domain.recommended_domain_count ())

let map ?jobs f xs =
  let jobs =
    effective_jobs (match jobs with Some j -> j | None -> default_jobs ())
  in
  match xs with
  | [] -> []
  | _ when jobs <= 1 || List.compare_length_with xs 2 < 0 -> List.map f xs
  | xs ->
      let pool = create ~jobs:(min jobs (List.length xs)) in
      Fun.protect
        ~finally:(fun () -> shutdown pool)
        (fun () -> map_pool pool f xs)

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type t = {
    dir : string option;
    mem : (string, string) Hashtbl.t;  (** key -> marshalled value *)
    lock : Mutex.t;
    mutable n_hits : int;
    mutable n_misses : int;
  }

  let default_dir () =
    match Sys.getenv_opt "PREVV_CACHE_DIR" with
    | Some d when d <> "" -> d
    | _ -> "_prevv_cache"

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then (
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      try Sys.mkdir dir 0o755 with Sys_error _ -> ())

  let make dir =
    {
      dir;
      mem = Hashtbl.create 64;
      lock = Mutex.create ();
      n_hits = 0;
      n_misses = 0;
    }

  let in_memory () = make None

  let on_disk ~dir =
    mkdir_p dir;
    make (Some dir)

  let path t key =
    match t.dir with
    | None -> None
    | Some dir -> Some (Filename.concat dir (key ^ ".bin"))

  let read_file p =
    match open_in_bin p with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match really_input_string ic (in_channel_length ic) with
            | s -> Some s
            | exception _ -> None)

  (* atomic publish: write to a temp name, then rename.  Two processes
     racing on the same key can at worst publish a garbled temp file,
     which later decodes as a miss and is rewritten. *)
  let write_file p s =
    let tmp = Printf.sprintf "%s.tmp.%d" p (Domain.self () :> int) in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc s);
      Sys.rename tmp p
    with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())

  let find t key =
    Mutex.lock t.lock;
    let cached = Hashtbl.find_opt t.mem key in
    Mutex.unlock t.lock;
    match cached with
    | Some s -> Some s
    | None -> (
        match path t key with
        | None -> None
        | Some p -> (
            match read_file p with
            | None -> None
            | Some s ->
                Mutex.lock t.lock;
                Hashtbl.replace t.mem key s;
                Mutex.unlock t.lock;
                Some s))

  let store t key s =
    Mutex.lock t.lock;
    Hashtbl.replace t.mem key s;
    Mutex.unlock t.lock;
    match path t key with None -> () | Some p -> write_file p s

  let bump t hit =
    Mutex.lock t.lock;
    if hit then t.n_hits <- t.n_hits + 1 else t.n_misses <- t.n_misses + 1;
    Mutex.unlock t.lock

  let memo t ~key compute =
    match
      Option.bind (find t key) (fun s ->
          (* a stale or truncated entry decodes as a miss *)
          match Marshal.from_string s 0 with v -> Some v | exception _ -> None)
    with
    | Some v ->
        bump t true;
        (v, `Hit)
    | None ->
        let v = compute () in
        store t key (Marshal.to_string v []);
        bump t false;
        (v, `Miss)

  let hits t = t.n_hits
  let misses t = t.n_misses

  let reset_stats t =
    Mutex.lock t.lock;
    t.n_hits <- 0;
    t.n_misses <- 0;
    Mutex.unlock t.lock
end
