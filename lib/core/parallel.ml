(** Domain-parallel job execution and result caching — see the .mli. *)

let default_jobs () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

type pool = {
  n : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;  (** signalled on submit and on shutdown *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  jobs_done : int array;
      (** per-worker completed-job tallies; each worker writes only its
          own slot, so the counts are race-free without atomics.  Exact
          after {!shutdown}; a live read may lag by the jobs in flight. *)
}

let size pool = pool.n

(* Workers block on [nonempty] until a job or shutdown arrives; the job
   itself runs outside the lock so the queue stays available. *)
let worker pool i () =
  let rec next () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.closing then None
    else (
      Condition.wait pool.nonempty pool.lock;
      next ())
  in
  let rec loop () =
    Mutex.lock pool.lock;
    let job = next () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some f ->
        f ();
        pool.jobs_done.(i) <- pool.jobs_done.(i) + 1;
        loop ()
  in
  loop ()

let create ~jobs =
  let pool =
    {
      n = max 1 jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closing = false;
      workers = [];
      jobs_done = Array.make (max 1 jobs) 0;
    }
  in
  pool.workers <- List.init pool.n (fun i -> Domain.spawn (worker pool i));
  pool

(** Completed jobs per worker (pool-utilisation telemetry). *)
let worker_jobs pool = Array.to_list pool.jobs_done

let submit pool f =
  Mutex.lock pool.lock;
  if pool.closing then (
    Mutex.unlock pool.lock;
    invalid_arg "Parallel.submit: pool is shut down");
  Queue.push f pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closing <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let map_pool ?(batch = 1) pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
      let batch = max 1 batch in
      let arr = Array.of_list xs in
      let n = Array.length arr in
      (* each slot is written by exactly one job; the lock only guards the
         completion counter and the condition *)
      let results = Array.make n None in
      let lock = Mutex.create () in
      let all_done = Condition.create () in
      let n_batches = (n + batch - 1) / batch in
      let pending = ref n_batches in
      (* batched submission: one queued job covers [batch] consecutive
         elements, amortising queue/lock traffic (and, through [map], the
         per-job share of the pool-spawn cost) over cheap task lists *)
      for b = 0 to n_batches - 1 do
        let lo = b * batch in
        let hi = min (lo + batch) n - 1 in
        submit pool (fun () ->
            for i = lo to hi do
              let r =
                match f arr.(i) with v -> Ok v | exception e -> Error e
              in
              results.(i) <- Some r
            done;
            Mutex.lock lock;
            decr pending;
            if !pending = 0 then Condition.signal all_done;
            Mutex.unlock lock)
      done;
      Mutex.lock lock;
      while !pending > 0 do
        Condition.wait all_done lock
      done;
      Mutex.unlock lock;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)

(* An explicit job request is honoured exactly: [--jobs 2] runs 2 workers
   whatever [Domain.recommended_domain_count] claims (the previous clamp to
   the hardware count collapsed any request to 1 worker on machines whose
   recommended count is 1, which is how BENCH_sim.json v4 recorded
   [jobs_effective: 1] for a [--jobs 2] grid).  Only the *default* job
   count adapts to the machine; a cap of 64 bounds accidental
   [--jobs 100000] requests. *)
let max_jobs = 64

let effective_jobs jobs = max 1 (min jobs max_jobs)

let map ?jobs ?batch f xs =
  let jobs =
    effective_jobs (match jobs with Some j -> j | None -> default_jobs ())
  in
  match xs with
  | [] -> []
  | _ when jobs <= 1 || List.compare_length_with xs 2 < 0 -> List.map f xs
  | xs ->
      let pool = create ~jobs:(min jobs (List.length xs)) in
      Fun.protect
        ~finally:(fun () -> shutdown pool)
        (fun () -> map_pool ?batch pool f xs)

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type t = {
    dir : string option;
    mem : (string, string) Hashtbl.t;  (** key -> framed entry *)
    order : string Queue.t;  (** in-memory insertion order, for eviction *)
    max_mem : int;  (** in-memory entry cap; evict FIFO beyond it *)
    lock : Mutex.t;
    mutable n_hits : int;
    mutable n_misses : int;
    mutable n_repairs : int;
    mutable n_evictions : int;
    log : Pv_obs.Log.t;  (** repair events become one Warn line each *)
  }

  let default_dir () =
    match Sys.getenv_opt "PREVV_CACHE_DIR" with
    | Some d when d <> "" -> d
    | _ -> "_prevv_cache"

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then (
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      try Sys.mkdir dir 0o755 with Sys_error _ -> ())

  (* --- on-disk entry format -------------------------------------------
     magic 'PVC1' | MD5(payload) (16 bytes) | payload
     The digest turns every torn case — truncated write, short read,
     garbage, a stale pre-framing entry — into a detected corruption,
     which the read path repairs (unlink + miss) instead of decoding. *)

  let magic = "PVC1"
  let header_len = String.length magic + 16

  let frame payload = magic ^ Digest.string payload ^ payload

  let unframe s =
    if
      String.length s >= header_len
      && String.sub s 0 (String.length magic) = magic
    then begin
      let payload =
        String.sub s header_len (String.length s - header_len)
      in
      if String.sub s (String.length magic) 16 = Digest.string payload then
        Some payload
      else None
    end
    else None

  (* key prefix sharding: concurrent writers from many processes spread
     their directory traffic (and their advisory locks) over 256-ish
     subdirectories instead of contending on one *)
  let shard_of key = if String.length key >= 2 then String.sub key 0 2 else "_s"

  let tmp_suffix = ".tmp."

  let is_tmp name =
    let rec find i =
      i + String.length tmp_suffix <= String.length name
      && (String.sub name i (String.length tmp_suffix) = tmp_suffix
          || find (i + 1))
    in
    find 0

  (* a tmp file older than this is a crashed writer's leftover *)
  let stale_tmp_age_s = 600.0

  let sweep_stale_tmps dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        (* file mtimes are wall time, so the wall clock (not Clock's
           monotonic one) is the right comparison base here *)
        let now = Unix.gettimeofday () in
        Array.iter
          (fun sub ->
            let subdir = Filename.concat dir sub in
            if Sys.is_directory subdir then
              match Sys.readdir subdir with
              | exception Sys_error _ -> ()
              | files ->
                  Array.iter
                    (fun f ->
                      if is_tmp f then
                        let p = Filename.concat subdir f in
                        match Unix.stat p with
                        | exception Unix.Unix_error _ -> ()
                        | st ->
                            if now -. st.Unix.st_mtime > stale_tmp_age_s then
                              try Sys.remove p with Sys_error _ -> ())
                    files)
          entries

  let make ?(max_mem = 65_536) ?(log = Pv_obs.Log.null) dir =
    {
      dir;
      mem = Hashtbl.create 64;
      order = Queue.create ();
      max_mem = max 1 max_mem;
      lock = Mutex.create ();
      n_hits = 0;
      n_misses = 0;
      n_repairs = 0;
      n_evictions = 0;
      log;
    }

  let in_memory ?max_mem ?log () = make ?max_mem ?log None

  let on_disk ?max_mem ?log ~dir () =
    mkdir_p dir;
    sweep_stale_tmps dir;
    make ?max_mem ?log (Some dir)

  let path t key =
    match t.dir with
    | None -> None
    | Some dir ->
        Some (Filename.concat (Filename.concat dir (shard_of key)) (key ^ ".bin"))

  let read_file p =
    match open_in_bin p with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match really_input_string ic (in_channel_length ic) with
            | s -> Some s
            | exception _ -> None)

  (* Advisory-lock + atomic-rename publish protocol.  The tmp name is
     unique per (pid, domain), so concurrent writers never collide on it;
     the rename is atomic, so a reader only ever sees a complete file; the
     per-shard advisory lock serialises the publish step itself so two
     processes racing on one key settle on one winner's bytes rather than
     interleaving directory operations.  Readers take no lock: the frame
     digest already rejects any torn state. *)
  let with_shard_lock shard_dir f =
    let lock_path = Filename.concat shard_dir ".lock" in
    match Unix.openfile lock_path [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 with
    | exception Unix.Unix_error _ -> f ()  (* degraded: lockless publish *)
    | fd ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
            f ())

  let write_file p s =
    let shard_dir = Filename.dirname p in
    mkdir_p shard_dir;
    let tmp =
      Printf.sprintf "%s%s%d.%d" p tmp_suffix (Unix.getpid ())
        (Domain.self () :> int)
    in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc s);
      with_shard_lock shard_dir (fun () -> Sys.rename tmp p)
    with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())

  let mem_insert_locked t key s =
    if not (Hashtbl.mem t.mem key) then begin
      Queue.push key t.order;
      if Queue.length t.order > t.max_mem then begin
        let victim = Queue.pop t.order in
        if Hashtbl.mem t.mem victim then begin
          Hashtbl.remove t.mem victim;
          t.n_evictions <- t.n_evictions + 1
        end
      end
    end;
    Hashtbl.replace t.mem key s

  let repair t p =
    Mutex.lock t.lock;
    t.n_repairs <- t.n_repairs + 1;
    Mutex.unlock t.lock;
    Pv_obs.Log.warn t.log "cache_repair"
      ~fields:[ ("path", Pv_obs.Json.Str p) ];
    try Sys.remove p with Sys_error _ -> ()

  (* returns the *payload* (unframed); any framing violation on disk is a
     miss-and-repair *)
  let find t key =
    Mutex.lock t.lock;
    let cached = Hashtbl.find_opt t.mem key in
    Mutex.unlock t.lock;
    match cached with
    | Some s -> unframe s
    | None -> (
        match path t key with
        | None -> None
        | Some p -> (
            match read_file p with
            | None -> None
            | Some s -> (
                match unframe s with
                | Some payload ->
                    Mutex.lock t.lock;
                    mem_insert_locked t key s;
                    Mutex.unlock t.lock;
                    Some payload
                | None ->
                    (* truncated / garbage / pre-framing entry *)
                    repair t p;
                    None)))

  let store t key payload =
    let s = frame payload in
    Mutex.lock t.lock;
    mem_insert_locked t key s;
    Mutex.unlock t.lock;
    match path t key with None -> () | Some p -> write_file p s

  let bump t hit =
    Mutex.lock t.lock;
    if hit then t.n_hits <- t.n_hits + 1 else t.n_misses <- t.n_misses + 1;
    Mutex.unlock t.lock

  let memo t ~key compute =
    match
      Option.bind (find t key) (fun s ->
          (* a stale binary layout still decodes as a miss *)
          match Marshal.from_string s 0 with v -> Some v | exception _ -> None)
    with
    | Some v ->
        bump t true;
        (v, `Hit)
    | None ->
        let v = compute () in
        store t key (Marshal.to_string v []);
        bump t false;
        (v, `Miss)

  let hits t = t.n_hits
  let misses t = t.n_misses
  let repairs t = t.n_repairs
  let evictions t = t.n_evictions

  (* cache.{hits,misses,repairs,evictions} counters for the observability
     layer; call once per reporting interval with a fresh-ish registry, or
     after [reset_stats], since the totals are added as-is *)
  let record_metrics t m =
    let module M = Pv_obs.Metrics in
    M.add m "cache.hits" t.n_hits;
    M.add m "cache.misses" t.n_misses;
    M.add m "cache.repairs" t.n_repairs;
    M.add m "cache.evictions" t.n_evictions

  let reset_stats t =
    Mutex.lock t.lock;
    t.n_hits <- 0;
    t.n_misses <- 0;
    t.n_repairs <- 0;
    t.n_evictions <- 0;
    Mutex.unlock t.lock
end
