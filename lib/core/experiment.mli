(** One evaluation point: a kernel under a disambiguation scheme, with
    cycle count (simulated), area and clock period (modelled), and
    execution time — one cell group of Tables I and II. *)

type point = {
  kernel : string;
  config : string;
  cycles : int;
  report : Pv_resource.Report.t;
  exec_us : float;
  mem_stats : Pv_dataflow.Memif.stats;
  verified : bool;  (** final memory matched the reference interpreter *)
  metrics : Pv_obs.Metrics.snapshot;
      (** per-run metric snapshot (cycles, fires, backend traffic, arbiter
          tallies — see [Pipeline.simulate]).  Deterministic: identical
          across engines and worker counts, and marshal-safe so it rides
          the result cache. *)
}

(** Map a simulation scheme to the area model's configuration (paper-unit
    depths). *)
val elaboration_of :
  Pipeline.disambiguation -> Pv_netlist.Elaborate.disambiguation

(** Run one (kernel, scheme) point: compile, simulate, verify, elaborate.
    @raise Invalid_argument for infeasible configurations (e.g. a queue
    depth below one iteration's operation count). *)
val run :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  Pv_kernels.Ast.kernel ->
  Pipeline.disambiguation ->
  point

(** Content address of one evaluation point: a digest of the kernel AST,
    input data, scheme configuration and simulator configuration (engine,
    budgets, fault plan, sampled per-unit latencies).  Two cells with equal
    keys produce equal points; wall-clock timing is never part of a point,
    so cached results are exact. *)
val cache_key :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  Pv_kernels.Ast.kernel ->
  Pipeline.disambiguation ->
  string

(** {!run} through a {!Parallel.Cache}: a hit returns the stored point
    without compiling or simulating anything.
    @raise Invalid_argument as {!run} (errors are never cached). *)
val run_cached :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  cache:Parallel.Cache.t ->
  Pv_kernels.Ast.kernel ->
  Pipeline.disambiguation ->
  point * [ `Hit | `Miss ]

(** Fan (kernel, scheme) cells across [jobs] worker domains (default 1 =
    serial on the calling domain), returning results in cell order.
    Infeasible configurations come back as [Error msg] rather than
    aborting the sweep.  Workers never print.

    [metrics] aggregates the sweep: each point's own snapshot is absorbed
    (deterministic), plus [runner.*] telemetry — point/error counts and a
    cycles histogram (deterministic), and cache-hit deltas, effective job
    count and a per-worker load histogram (runtime-dependent by nature;
    drop [runner.]-prefixed entries when comparing runs). *)
val sweep :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?cache:Parallel.Cache.t ->
  ?metrics:Pv_obs.Metrics.t ->
  ?jobs:int ->
  (Pv_kernels.Ast.kernel * Pipeline.disambiguation) list ->
  (point, string) result list

(** {!run} with every failure mode folded into a deterministic
    [Error msg] — infeasible configuration, mid-run cancellation,
    anything else the pipeline raises. *)
val run_checked :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?init:(string * int array) list ->
  Pv_kernels.Ast.kernel ->
  Pipeline.disambiguation ->
  (point, string) result

(** The supervision label of a cell: ["<kernel>/<config>"]. *)
val cell_label : Pv_kernels.Ast.kernel * Pipeline.disambiguation -> string

(** {!sweep} under {!Supervisor.run_tasks}: each cell runs with a fresh
    cancellation token wired into [Sim.config.cancel], crashed or
    deadline-overrun cells are retried with seed-deterministic backoff,
    and cells that exhaust the budget come back as structured
    {!Supervisor.task_error}s while the rest of the grid completes.
    [metrics] gets the same aggregation as {!sweep} plus the
    supervisor's [runner.retries] / [runner.respawns] /
    [runner.task_errors] / [runner.deadline_hits] counters. *)
val sweep_supervised :
  ?policy:Supervisor.policy ->
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?cache:Parallel.Cache.t ->
  ?metrics:Pv_obs.Metrics.t ->
  ?jobs:int ->
  (Pv_kernels.Ast.kernel * Pipeline.disambiguation) list ->
  (point, Supervisor.task_error) result list * Supervisor.stats

(** The paper's four evaluated configurations, in table-column order:
    [15], [8], PreVV16, PreVV64. *)
val paper_configs : unit -> Pipeline.disambiguation list

(** The full grid under supervision: one row per kernel, one result per
    configuration.  A cell that keeps failing past the retry budget
    occupies its grid position as a structured error instead of
    poisoning the rest of the grid. *)
val paper_grid_supervised :
  ?policy:Supervisor.policy ->
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?cache:Parallel.Cache.t ->
  ?metrics:Pv_obs.Metrics.t ->
  ?jobs:int ->
  unit ->
  (point, Supervisor.task_error) result list list * Supervisor.stats

(** The full grid for the paper's five kernels (Tables I & II): one row
    per kernel, one point per configuration.  [jobs] fans the cells across
    that many worker domains (default 1 = serial); [cache] reuses stored
    points.  The result is identical whatever the worker count. *)
val paper_grid :
  ?sim_cfg:Pv_dataflow.Sim.config ->
  ?cache:Parallel.Cache.t ->
  ?jobs:int ->
  unit ->
  point list list

(** Deterministic JSON rendering of a point — the byte-identity surface
    of the parallel-vs-serial determinism harness. *)
val point_to_json : point -> string

(** Percentage delta [100 * (a/b - 1)], integer and float versions. *)
val pct : int -> int -> float

val pctf : float -> float -> float

(** Geometric mean of a non-empty list of ratios. *)
val geomean : float list -> float
