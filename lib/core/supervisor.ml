(** Supervision over the worker pool — see the .mli and DESIGN.md §18. *)

module Token = struct
  type t = { flag : bool Atomic.t; deadline_ns : int64 option }

  let create ?deadline_s () =
    {
      flag = Atomic.make false;
      deadline_ns =
        Option.map
          (fun s -> Int64.add (Clock.now_ns ()) (Int64.of_float (s *. 1e9)))
          deadline_s;
    }

  let cancel t = Atomic.set t.flag true

  let cancelled t =
    Atomic.get t.flag
    ||
    match t.deadline_ns with
    | None -> false
    | Some d -> Int64.compare (Clock.now_ns ()) d > 0
end

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  deadline_s : float option;
  seed : int;
  retryable : exn -> bool;
}

let default_policy =
  {
    max_attempts = 3;
    base_delay_s = 0.01;
    max_delay_s = 0.5;
    deadline_s = None;
    seed = 0;
    retryable = (function Invalid_argument _ -> false | _ -> true);
  }

(* Deterministic jitter in [0.5, 1.5): Hashtbl.hash over (seed, label,
   attempt) is stable across runs and processes for these immediate
   values, which is what makes the schedule reproducible. *)
let backoff_delay p ~label ~attempt =
  let exponential = p.base_delay_s *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min exponential p.max_delay_s in
  let h = Hashtbl.hash (p.seed, label, attempt) in
  capped *. (0.5 +. (float_of_int (h land 1023) /. 1024.0))

let backoff_schedule p ~label =
  List.init (max 0 (p.max_attempts - 1)) (fun i ->
      backoff_delay p ~label ~attempt:(i + 1))

exception Kill_worker

type task_error = {
  label : string;
  attempts : int;
  last_error : string;
  deadline_hit : bool;
  worker_kills : int;
}

let pp_task_error ppf e =
  Format.fprintf ppf "%s: failed after %d attempt(s)%s%s: %s" e.label
    e.attempts
    (if e.deadline_hit then " (deadline)" else "")
    (if e.worker_kills > 0 then
       Printf.sprintf " (%d worker kill(s))" e.worker_kills
     else "")
    e.last_error

let task_error_to_json e =
  Pv_obs.Json.Obj
    [
      ("label", Pv_obs.Json.Str e.label);
      ("attempts", Pv_obs.Json.Int e.attempts);
      ("last_error", Pv_obs.Json.Str e.last_error);
      ("deadline_hit", Pv_obs.Json.Bool e.deadline_hit);
      ("worker_kills", Pv_obs.Json.Int e.worker_kills);
    ]

type stats = {
  completed : int;
  failed : int;
  retries : int;
  respawns : int;
  deadline_hits : int;
}

(* ------------------------------------------------------------------ *)
(* Attempt bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let describe_exn = function
  | Pv_dataflow.Sim.Cancelled { at_cycle } ->
      Printf.sprintf "deadline exceeded (simulation cancelled at cycle %d)"
        at_cycle
  | Invalid_argument m -> Printf.sprintf "invalid configuration: %s" m
  | e -> Printexc.to_string e

(* per-task mutable state; one slot per task, each written under the
   round lock or by the single worker holding the task *)
type 'b slot = {
  s_label : string;
  mutable s_attempts : int;
  mutable s_kills : int;
  mutable s_deadline_hit : bool;  (** last failure was a deadline overrun *)
  mutable s_deadline_count : int;
  mutable s_last_error : string;
  mutable s_value : 'b option;
  mutable s_give_up : bool;  (** non-retryable failure or budget exhausted *)
}

(* one attempt of one task; never raises *)
let attempt policy f task (s : _ slot) =
  s.s_attempts <- s.s_attempts + 1;
  let token = Token.create ?deadline_s:policy.deadline_s () in
  match f ~token task with
  | v -> s.s_value <- Some v
  | exception Kill_worker ->
      s.s_kills <- s.s_kills + 1;
      s.s_deadline_hit <- false;
      s.s_last_error <- "worker killed mid-task";
      if s.s_attempts >= policy.max_attempts then s.s_give_up <- true;
      raise Kill_worker
  | exception e ->
      let dl = policy.deadline_s <> None && Token.cancelled token in
      s.s_deadline_hit <- dl;
      if dl then s.s_deadline_count <- s.s_deadline_count + 1;
      s.s_last_error <- describe_exn e;
      if s.s_attempts >= policy.max_attempts || not (policy.retryable e) then
        s.s_give_up <- true

let finished (s : _ slot) = s.s_value <> None || s.s_give_up

let result_of (s : _ slot) =
  match s.s_value with
  | Some v -> Ok v
  | None ->
      Error
        {
          label = s.s_label;
          attempts = s.s_attempts;
          last_error = s.s_last_error;
          deadline_hit = s.s_deadline_hit;
          worker_kills = s.s_kills;
        }

(* ------------------------------------------------------------------ *)
(* Serial reference                                                    *)
(* ------------------------------------------------------------------ *)

let run_serial policy f (slots : _ slot array) tasks =
  Array.iteri
    (fun i task ->
      let s = slots.(i) in
      let rec go () =
        if not (finished s) then begin
          (if s.s_attempts > 0 then
             Clock.sleep_s
               (backoff_delay policy ~label:s.s_label ~attempt:s.s_attempts));
          (try attempt policy f task s with Kill_worker -> ());
          go ()
        end
      in
      go ())
    tasks

(* ------------------------------------------------------------------ *)
(* Supervised pool                                                     *)
(* ------------------------------------------------------------------ *)

(* One round runs a set of task indices across [jobs] worker domains.  A
   worker that dies mid-task (Kill_worker) marks its in-flight task
   failed, decrements the live count and exits; the main domain respawns
   a replacement while queued work remains, so the pool never shrinks
   below [jobs] while there is anything left to pull. *)
let run_round ~jobs f policy (slots : _ slot array) tasks indices respawns =
  let queue = Queue.create () in
  List.iter (fun i -> Queue.push i queue) indices;
  let total = List.length indices in
  let lock = Mutex.create () in
  let changed = Condition.create () in
  let completed = ref 0 in
  let live = ref 0 in
  let domains = ref [] in
  let worker () =
    let rec loop () =
      Mutex.lock lock;
      let next = if Queue.is_empty queue then None else Some (Queue.pop queue) in
      Mutex.unlock lock;
      match next with
      | None -> ()
      | Some i -> (
          let s = slots.(i) in
          match attempt policy f tasks.(i) s with
          | () ->
              Mutex.lock lock;
              incr completed;
              Condition.signal changed;
              Mutex.unlock lock;
              loop ()
          | exception Kill_worker ->
              (* this worker is dead: account for the in-flight task,
                 then fall off the domain *)
              Mutex.lock lock;
              incr completed;
              decr live;
              Condition.signal changed;
              Mutex.unlock lock)
    in
    loop ()
  in
  let spawn () =
    incr live;
    domains := Domain.spawn worker :: !domains
  in
  Mutex.lock lock;
  for _ = 1 to min jobs total do
    spawn ()
  done;
  while !completed < total do
    (* respawn after kills while queued work remains *)
    while !live < jobs && not (Queue.is_empty queue) do
      spawn ();
      incr respawns
    done;
    if !completed < total then Condition.wait changed lock
  done;
  Mutex.unlock lock;
  List.iter Domain.join !domains

let run_pool ~jobs policy f (slots : _ slot array) tasks =
  let respawns = ref 0 in
  let rec rounds indices =
    if indices <> [] then begin
      run_round ~jobs f policy slots tasks indices respawns;
      let retry =
        List.filter (fun i -> not (finished slots.(i))) indices
      in
      if retry <> [] then begin
        (* round-granular backoff: sleep the longest of the retried
           tasks' individual deterministic delays *)
        let delay =
          List.fold_left
            (fun acc i ->
              let s = slots.(i) in
              Float.max acc
                (backoff_delay policy ~label:s.s_label ~attempt:s.s_attempts))
            0.0 retry
        in
        Clock.sleep_s delay;
        rounds retry
      end
    end
  in
  rounds (List.init (Array.length tasks) Fun.id);
  !respawns

(* ------------------------------------------------------------------ *)

let run_tasks ?(policy = default_policy) ?metrics
    ?(metrics_prefix = "supervisor.") ?(log = Pv_obs.Log.null) ~jobs ~label f
    tasks =
  if policy.max_attempts < 1 then
    invalid_arg "Supervisor.run_tasks: max_attempts < 1";
  let tasks = Array.of_list tasks in
  let slots =
    Array.map
      (fun task ->
        {
          s_label = label task;
          s_attempts = 0;
          s_kills = 0;
          s_deadline_hit = false;
          s_deadline_count = 0;
          s_last_error = "";
          s_value = None;
          s_give_up = false;
        })
      tasks
  in
  let jobs = Parallel.effective_jobs jobs in
  let respawns =
    if jobs <= 1 || Array.length tasks < 2 then begin
      run_serial policy f slots tasks;
      0
    end
    else run_pool ~jobs policy f slots tasks
  in
  let results = Array.to_list (Array.map result_of slots) in
  let stats =
    Array.fold_left
      (fun acc s ->
        {
          acc with
          completed = (acc.completed + if s.s_value <> None then 1 else 0);
          failed = (acc.failed + if s.s_value = None then 1 else 0);
          retries = acc.retries + max 0 (s.s_attempts - 1);
          deadline_hits = acc.deadline_hits + s.s_deadline_count;
        })
      { completed = 0; failed = 0; retries = 0; respawns; deadline_hits = 0 }
      slots
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let module M = Pv_obs.Metrics in
      M.add m (metrics_prefix ^ "retries") stats.retries;
      M.add m (metrics_prefix ^ "respawns") stats.respawns;
      M.add m (metrics_prefix ^ "task_errors") stats.failed;
      M.add m (metrics_prefix ^ "deadline_hits") stats.deadline_hits);
  (* structured post-run logging: per-task anomalies (retries, kills,
     deadline overruns, final failures) plus one pool summary.  Emitted
     from the calling domain only, after the workers have joined, so the
     sink never sees concurrent writes. *)
  (let module L = Pv_obs.Log in
   let module J = Pv_obs.Json in
   if L.enabled log Warn then begin
     Array.iter
       (fun s ->
         if s.s_value = None then
           L.error log "task_failed"
             ~fields:
               [
                 ("task", J.Str s.s_label);
                 ("attempts", J.Int s.s_attempts);
                 ("worker_kills", J.Int s.s_kills);
                 ("deadline_hit", J.Bool s.s_deadline_hit);
                 ("error", J.Str s.s_last_error);
               ]
         else if s.s_attempts > 1 || s.s_kills > 0 || s.s_deadline_count > 0
         then
           L.warn log "task_retried"
             ~fields:
               [
                 ("task", J.Str s.s_label);
                 ("attempts", J.Int s.s_attempts);
                 ("worker_kills", J.Int s.s_kills);
                 ("deadline_hits", J.Int s.s_deadline_count);
               ])
       slots;
     if
       stats.retries > 0 || stats.respawns > 0 || stats.failed > 0
       || stats.deadline_hits > 0
     then
       L.warn log "pool_summary"
         ~fields:
           [
             ("jobs", J.Int jobs);
             ("completed", J.Int stats.completed);
             ("failed", J.Int stats.failed);
             ("retries", J.Int stats.retries);
             ("respawns", J.Int stats.respawns);
             ("deadline_hits", J.Int stats.deadline_hits);
           ]
   end);
  (results, stats)
