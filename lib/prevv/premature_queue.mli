(** The premature queue of Sec. IV-B / Fig. 4.

    A circular buffer of premature-operation records.  The tail advances
    when a new operation is recorded; the head advances past retired
    entries.  Because commits follow program order while the queue is in
    arrival order, retired entries can sit behind younger live ones; by
    default the queue {e collapses} such interior gaps (a shift/valid-bit
    structure, as real load/store queues use) — without collapsing,
    fragmentation eventually wedges the oldest iteration out of the queue
    and deadlocks the pipeline (kept available as an ablation). *)

(** One premature record — the four properties of Eq. 1 plus the ROM
    position used for same-iteration ordering. *)
type entry = {
  e_seq : int;  (** iteration (body-instance) number: [iter] of Eq. 1 *)
  e_pos : int;  (** ROM position within the group (same-iteration order) *)
  e_port : int;
  e_kind : Pv_memory.Portmap.op_kind;  (** [Op] of Eq. 1 *)
  e_index : int;  (** target address: [index] of Eq. 1 *)
  e_value : int;  (** loaded or to-be-stored value: [value] of Eq. 1 *)
  mutable e_valid : bool;
}

type t = private {
  buf : entry option array;
  depth : int;
  collapse : bool;
  mutable head : int;
  mutable tail : int;
  mutable count : int;  (** occupied slots, including invalidated ones *)
  mutable dead : int;
      (** invalidated entries still occupying slots; compaction is skipped
          entirely while it is zero *)
}

(** @raise Invalid_argument when [depth <= 0]. *)
val create : ?collapse:bool -> int -> t

val is_full : t -> bool
val is_empty : t -> bool
val occupancy : t -> int

(** Fig. 4 state: [`Normal] when the live region does not wrap, [`Wrapped]
    when it does, [`Full] when head = tail with data. *)
val state : t -> [ `Empty | `Normal | `Wrapped | `Full ]

exception Full

(** Record a premature operation at the tail.  Production callers should
    use {!push_opt}; the raising variant exists for tests and demos that
    want the overflow to be loud.
    @raise Full when the queue has no free slot (backpressure). *)
val push_exn :
  t ->
  seq:int ->
  pos:int ->
  port:int ->
  kind:Pv_memory.Portmap.op_kind ->
  index:int ->
  value:int ->
  entry

(** Non-raising {!push_exn}: [None] when the queue is full, so callers can turn
    a full queue into ordinary backpressure instead of an exception. *)
val push_opt :
  t ->
  seq:int ->
  pos:int ->
  port:int ->
  kind:Pv_memory.Portmap.op_kind ->
  index:int ->
  value:int ->
  entry option

(** Iterate over valid entries from head to tail (arrival order) — exactly
    the arbiter's search direction. *)
val iter : (entry -> unit) -> t -> unit

val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a
val exists : (entry -> bool) -> t -> bool
val to_list : t -> entry list

(** Invalidate every valid entry satisfying the predicate and reclaim
    their slots; returns the retired entries (so callers can release
    per-port credits). *)
val retire_if : t -> (entry -> bool) -> entry list

(** Invalidate all valid entries with [e_seq >= seq] (pipeline squash). *)
val invalidate_from : t -> seq:int -> unit

(** Invalidate all valid entries of exactly [seq] (commit of an
    iteration). *)
val retire_seq : t -> seq:int -> unit

(** {1 Fault-injection hooks} — see {!Pv_dataflow.Fault}. *)

(** The [n]-th valid entry in arrival order, if any. *)
val nth_valid : t -> int -> entry option

(** Model an SEU in the value field of the [slot]-th live entry (its value
    gets [mask] xor-ed in).  Returns the {e original} entry, [None] when no
    such live entry exists. *)
val corrupt : t -> slot:int -> mask:int -> entry option

(** Model an SEU in the valid bit of the [slot]-th live entry: the record
    vanishes as if never made.  Returns the lost entry so the caller can
    repair its own bookkeeping (or deliberately not, for a silent fault). *)
val drop : t -> slot:int -> entry option
