(** The premature queue of Sec. IV-B / Fig. 4.

    A circular buffer of premature-operation records.  The tail advances
    when a new operation is recorded; the head advances past retired
    entries.  Because commits follow program order while the queue is in
    arrival order, retired entries can sit behind younger live ones; by
    default the queue {e collapses} such interior gaps (a shift/valid-bit
    structure, as real load/store queues use) — without collapsing,
    fragmentation eventually wedges the oldest iteration out of the queue
    and deadlocks the pipeline (kept available as an ablation).

    Records live in four parallel int arrays rather than boxed cells, and
    the queue maintains dense {e kind views} ([v_load]/[v_store]: the slot
    numbers of all valid records of each kind) mirroring the CAM banks a
    hardware arbiter searches — an arriving store only accuses loads
    (Eq. 3) and the load gate only looks for stores, so each arbiter check
    touches exactly the opposite-kind records instead of the whole
    queue. *)

(** One premature record — the four properties of Eq. 1 plus the ROM
    position used for same-iteration ordering.  A materialised (boxed)
    view of a queue slot, built on demand for tests, dumps and fault
    hooks; the flat arrays below are the state proper. *)
type entry = {
  e_seq : int;  (** iteration (body-instance) number: [iter] of Eq. 1 *)
  e_pos : int;  (** ROM position within the group (same-iteration order) *)
  e_port : int;
  e_kind : Pv_memory.Portmap.op_kind;  (** [Op] of Eq. 1 *)
  e_index : int;  (** target address: [index] of Eq. 1 *)
  e_value : int;  (** loaded or to-be-stored value: [value] of Eq. 1 *)
  mutable e_valid : bool;
}

(** {1 Packed program-order keys}

    [(seq, ROM position)] in one word, so Eq. 2's strictly-older test — a
    lexicographic comparison — is a single integer compare.  Six position
    bits cover the 62-port arrival-bitmask limit the backend enforces. *)

val pos_bits : int
val max_pos : int

val okey : seq:int -> pos:int -> int
val okey_seq : int -> int
val okey_pos : int -> int

(** Metadata-word accessors (bit 0 = valid, bit 1 = store?, rest = port). *)

val m_valid : int -> bool

val m_store : int -> bool
val m_port : int -> int

type t = private {
  depth : int;
  collapse : bool;
  key : int array;  (** slot -> packed (seq, pos); see {!okey} *)
  meta : int array;  (** slot -> packed (port, kind, valid); 0 when free *)
  index : int array;
  value : int array;
  vpos : int array;  (** slot -> position inside its kind view *)
  v_load : int array;  (** slots of valid load records, unordered *)
  v_store : int array;  (** slots of valid store records, unordered *)
  mutable n_load : int;
  mutable n_store : int;
  mutable head : int;
  mutable tail : int;
  mutable count : int;  (** occupied slots, including invalidated ones *)
  mutable dead : int;
      (** invalidated entries still occupying slots; compaction is skipped
          entirely while it is zero *)
}

(** @raise Invalid_argument when [depth <= 0]. *)
val create : ?collapse:bool -> int -> t

val is_full : t -> bool
val is_empty : t -> bool
val occupancy : t -> int

(** Fig. 4 state: [`Normal] when the live region does not wrap, [`Wrapped]
    when it does, [`Full] when head = tail with data. *)
val state : t -> [ `Empty | `Normal | `Wrapped | `Full ]

exception Full

(** Allocation-free admission: [false] when the queue is full, so callers
    turn a full queue into ordinary backpressure.  The production
    (backend) entry point; the boxed variants below serve tests and demos.
    @raise Invalid_argument when [pos] exceeds {!max_pos}. *)
val record :
  t ->
  seq:int ->
  pos:int ->
  port:int ->
  kind:Pv_memory.Portmap.op_kind ->
  index:int ->
  value:int ->
  bool

(** Record a premature operation at the tail and return its materialised
    view.
    @raise Full when the queue has no free slot (backpressure). *)
val push_exn :
  t ->
  seq:int ->
  pos:int ->
  port:int ->
  kind:Pv_memory.Portmap.op_kind ->
  index:int ->
  value:int ->
  entry

(** Non-raising {!push_exn}: [None] when the queue is full, so callers can turn
    a full queue into ordinary backpressure instead of an exception. *)
val push_opt :
  t ->
  seq:int ->
  pos:int ->
  port:int ->
  kind:Pv_memory.Portmap.op_kind ->
  index:int ->
  value:int ->
  entry option

(** Iterate over valid entries from head to tail (arrival order).  Each
    visit materialises a boxed {!entry}: commit/dump/test paths only — the
    arbiter reads the kind views and flat arrays directly. *)
val iter : (entry -> unit) -> t -> unit

val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a
val exists : (entry -> bool) -> t -> bool
val to_list : t -> entry list

(** Invalidate every valid entry satisfying the predicate and reclaim
    their slots; returns the retired entries (so callers can release
    per-port credits). *)
val retire_if : t -> (entry -> bool) -> entry list

(** {1 Allocation-free retirement sweeps}

    The backend's per-cycle paths: one pass over the occupied region,
    [on_port] fired once per retiree (for per-port credit release), one
    compaction, no materialised list.  Each returns the retiree count. *)

(** Retire every valid {e load} with [e_seq < seq] — the store-arrival
    frontier sweep. *)
val retire_loads_below : t -> seq:int -> on_port:(int -> unit) -> int

(** Retire all valid entries of exactly [seq] (commit of an instance). *)
val retire_eq : t -> seq:int -> on_port:(int -> unit) -> int

(** Retire all valid entries with [e_seq >= seq] (pipeline squash). *)
val retire_ge : t -> seq:int -> on_port:(int -> unit) -> int

(** Invalidate all valid entries with [e_seq >= seq] (pipeline squash). *)
val invalidate_from : t -> seq:int -> unit

(** Invalidate all valid entries of exactly [seq] (commit of an
    iteration). *)
val retire_seq : t -> seq:int -> unit

(** {1 Fault-injection hooks} — see {!Pv_dataflow.Fault}. *)

(** The [n]-th valid entry in arrival order, if any. *)
val nth_valid : t -> int -> entry option

(** Model an SEU in the value field of the [slot]-th live entry (its value
    gets [mask] xor-ed in).  Returns the {e original} entry, [None] when no
    such live entry exists. *)
val corrupt : t -> slot:int -> mask:int -> entry option

(** Model an SEU in the valid bit of the [slot]-th live entry: the record
    vanishes as if never made.  Returns the lost entry so the caller can
    repair its own bookkeeping (or deliberately not, for a silent fault). *)
val drop : t -> slot:int -> entry option
