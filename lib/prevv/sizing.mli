(** Premature-queue depth sizing (Sec. V-A, Defs. 2–3, Eqs. 6–10).

    The model matches the average execution time of an ambiguous pair with
    PreVV against the token supply rate of its predecessor: a pair is
    {e matched} when [t_p = t_w], which pins the queue depth that keeps the
    pipeline from stalling without over-provisioning storage. *)

(** Eq. 6: average pair execution time [t_org * (2 + p_s)] — the premature
    pass plus the validation pass, inflated by the squash probability. *)
val pair_time : t_org:float -> p_s:float -> float

(** Eq. 7: average predecessor wait for a queue slot, [t_token / depth].
    @raise Invalid_argument when [depth_q <= 0] (a zero-depth queue cannot
    accept tokens; letting the division yield [infinity]/[nan] would flow
    silently through {!independent}). *)
val wait_time : t_token:float -> depth_q:int -> float

(** Def. 2: the smallest depth with [t_w <= t_p].
    @raise Invalid_argument when [t_org <= 0]. *)
val matched_depth : t_org:float -> p_s:float -> t_token:float -> int

(** Eq. 8 (Def. 3): whether two pairs at component distance [d_mn] with
    spans [s_m], [s_n] are independent at the given clock and token rate. *)
val independent :
  d_mn:int ->
  s_m:int ->
  s_n:int ->
  clock_period:float ->
  t_token:float ->
  depth_q:int ->
  bool

(** Eqs. 9–10 over an actual graph: the longest component count on any
    path from a node of [froms] to a node of [tos]; [None] when no path
    exists.  Opaque buffers break the traversal like they break
    combinational paths. *)
val longest_path :
  Pv_dataflow.Graph.t -> froms:int list -> tos:int list -> int option
