(** The PreVV memory backend: one premature queue + arbiter per ambiguous
    array (one disambiguation instance), no load or store queue.

    Premature execution: loads read committed memory the moment their
    address arrives; stores buffer in the premature queue and reach memory
    only when their body instance has been validated, in global program
    order (the commit frontier).  The arbiter checks each arriving record
    against the queue (Eqs. 2–5); a violation squashes the pipeline from
    the erring iteration and the circuit replays it — the simulator purges
    in-flight tokens and rewinds the loop generator.  Conditional pair
    members send fake tokens (Sec. V-C); disabling them reproduces the
    deadlock of Fig. 6.

    Load records retire once the {e store-arrival frontier} passes their
    iteration (every store that could accuse them has arrived and been
    checked), long before the commit frontier; per-port quotas and a
    dynamic frontier reserve make queue admission fair and deadlock-free.
    See DESIGN.md §8 for each argument. *)

type config = {
  depth_q : int;  (** premature queue depth in simulated entries *)
  mem_latency : int;
  commits_per_cycle : int;  (** validated instances retired per cycle *)
  fake_tokens : bool;  (** Sec. V-C deadlock elimination on/off *)
  value_validation : bool;
      (** Eq. 5 on/off (ablation: off = address-only disambiguation) *)
  collapse_queue : bool;
      (** interior slot reclamation on/off (ablation: off = naive circular
          pointers, prone to fragmentation wedging) *)
  squash_budget : int;
      (** livelock guard: consecutive squashes of the {e same} iteration
          tolerated before the backend degrades to non-speculative load
          admission for the rest of the run.  Unreachable in fault-free
          runs; protects against a stuck external squash source (fault
          injection, a flaky error detector). *)
}

(** Simulated queue entries per named (paper) depth unit: this simulator
    pipelines the datapath into roughly twice as many (thinner) stages as
    the published circuits, so occupancies — and hence the capacity a named
    depth must provide — scale by the same factor.  The LSQ baselines use
    the identical mapping. *)
val depth_scale : int

(** Defaults with an explicit simulated depth. *)
val default : depth_q:int -> config

(** Configuration for a paper-named depth (PreVV16, PreVV64, ...):
    [depth_q = depth_scale * depth]. *)
val named : depth:int -> config

(** Internal state, exposed for debugging dumps. *)
type t

(** Build a backend over [mem]; returns the state alongside (for dumps and
    the stat accessors below).  [trace] (default {!Pv_obs.Trace.null})
    receives validation/violation instants on the arbiter track,
    fake-token/squash/degraded instants on the backend track, and
    [pq_occupancy]/[commit_frontier] counter tracks; the null sink makes
    every emit site one branch and leaves behaviour unchanged.  [prof]
    (default {!Pv_obs.Prof.null}) receives the backend's attribution
    phases: one [arbiter_scan] unit per queue record the load gate walks,
    one [pq_validate] unit per record walked by store-violation checking
    and the per-cycle load-retirement pass, and one [mem_service] unit per
    load/store serviced (so [mem_service] equals the {!stats} loads +
    stores exactly).
    @raise Invalid_argument when [depth_q] cannot hold one body instance
    of some disambiguation instance. *)
val create_full :
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  config ->
  Pv_memory.Portmap.t ->
  int array ->
  t * Pv_dataflow.Memif.t

val create :
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  config ->
  Pv_memory.Portmap.t ->
  int array ->
  Pv_dataflow.Memif.t

(** {1 Runtime statistics}

    Live accessors (readable mid-run or after), the metric sources of the
    observability layer — no post-mortem dump needed. *)

(** Backend traffic tallies: loads, stores, squashes, fake tokens,
    forwarded loads, stall breakdown, PQ high-water mark. *)
val stats : t -> Pv_dataflow.Memif.stats

(** Arbiter decision tallies: validation checks, violations found, load
    gate verdicts. *)
val arbiter_stats : t -> Arbiter.stats

(** Peak summed premature-queue occupancy over the run so far
    (= [(stats t).max_occupancy]). *)
val pq_high_water : t -> int

(** Oldest not-yet-committed body instance. *)
val frontier : t -> int

(** Dump frontier, per-instance queue contents and near-frontier arrival
    status. *)
val dump : Format.formatter -> t -> unit

(** [Some cycle] once the livelock guard has engaged (see
    [config.squash_budget]); the backend then admits loads
    non-speculatively for the rest of the run. *)
val degraded_at : t -> int option
