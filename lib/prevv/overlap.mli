(** Overlapping ambiguous pairs and dimension reduction (Sec. V-B,
    Eqs. 11–12).

    When an operation belongs to [n] pairs, naively replicating PreVV per
    pair blows complexity up exponentially (Eq. 11) and collapses the
    achievable frequency (Eq. 12).  The reduction observes that inside a
    chain of operations with mutual hazards, consecutive operations of the
    same type never form a pair, so a single shared instance per ambiguous
    array with one representative per same-type run suffices. *)

(** Eq. 11: complexity of naive replication, [2^n * com1]. *)
val naive_complexity : n:int -> com1:float -> float

(** Eq. 12: the frequency collapse of naive replication,
    [frq1 / log2(2^n) = frq1 / n]: the replicated validation tree of
    Eq. 11 adds one comparator level per overlap degree.  Equals [frq1] at
    [n = 1], monotonically decreasing in [n].
    @raise Invalid_argument when [n < 1]. *)
val naive_frequency : n:int -> frq1:float -> float

(** Cost of the shared instance: linear in the member count. *)
val reduced_complexity : n:int -> com1:float -> float

(** Collapse consecutive same-kind operations to one representative
    ("validating only one operation is sufficient within each consecutive
    type"); input and output are in program order. *)
val reduce_runs :
  (Pv_memory.Portmap.op_kind * 'a) list -> (Pv_memory.Portmap.op_kind * 'a) list

(** Pairs formed before reduction: every (load, store) combination across
    the sequence (Def. 1's quadratic pairing). *)
val naive_pairs : (Pv_memory.Portmap.op_kind * 'a) list -> int

(** Pairs after reduction: adjacencies between representative runs. *)
val reduced_pairs : (Pv_memory.Portmap.op_kind * 'a) list -> int
