(** Premature-queue depth sizing (Sec. V-A, Defs. 2–3, Eqs. 6–10).

    The model matches the average execution time of an ambiguous pair with
    PreVV against the token supply rate of its predecessor: a pair is
    {e matched} when [t_p = t_w], which pins the queue depth that keeps the
    pipeline from stalling without over-provisioning registers. *)

(** Eq. 6: average execution time of an ambiguous pair under PreVV, in
    units of the original datapath time [t_org], inflated by the squash
    probability [p_s] (a squash replays the computation). *)
let pair_time ~t_org ~p_s = t_org *. (2.0 +. p_s)

(** Eq. 7: average wait of the predecessor for a premature-queue slot. *)
let wait_time ~t_token ~depth_q =
  if depth_q <= 0 then invalid_arg "wait_time: depth_q must be positive";
  t_token /. float_of_int depth_q

(** The matched depth of Def. 2: smallest integer depth with
    [t_w <= t_p], i.e. [depth_q >= t_token / t_p]. *)
let matched_depth ~t_org ~p_s ~t_token =
  let tp = pair_time ~t_org ~p_s in
  if tp <= 0.0 then invalid_arg "matched_depth: t_org must be positive";
  max 1 (int_of_float (ceil (t_token /. tp)))

(** Eq. 8 (Def. 3): two pairs are independent when the component distance
    between them covers both spans at the token supply rate. *)
let independent ~d_mn ~s_m ~s_n ~clock_period ~t_token ~depth_q =
  let lhs = float_of_int d_mn /. clock_period in
  let spans = float_of_int (s_m + s_n) /. clock_period in
  lhs >= spans && spans >= wait_time ~t_token ~depth_q

(* --- Eqs. 9–10 over an actual dataflow graph ---------------------------- *)

(** Longest component count over any path from a node of [froms] to a node
    of [tos] in [g] (Eq. 9's [d_mn] / Eq. 10's span when [froms]/[tos] are
    the pair's own endpoints).  Opaque buffers break the traversal the same
    way they break combinational paths; returns [None] when no path
    exists. *)
let longest_path (g : Pv_dataflow.Graph.t) ~froms ~tos : int option =
  let n = Pv_dataflow.Graph.n_nodes g in
  let is_target = Array.make n false in
  List.iter (fun nid -> is_target.(nid) <- true) tos;
  (* memoised longest suffix (in components) from each node to any target;
     -1 = unreachable *)
  let memo = Array.make n min_int in
  let on_stack = Array.make n false in
  let succs nid =
    let node = Pv_dataflow.Graph.node g nid in
    Array.to_list node.Pv_dataflow.Graph.outputs
    |> List.filter_map (fun cid ->
           if cid = -1 then None
           else
             Some
               (Pv_dataflow.Graph.chan g cid).Pv_dataflow.Graph.dst
                 .Pv_dataflow.Graph.node)
  in
  let rec longest nid =
    if memo.(nid) > min_int then memo.(nid)
    else if on_stack.(nid) then -1 (* cycle: broken conservatively *)
    else begin
      on_stack.(nid) <- true;
      let best =
        List.fold_left
          (fun acc s ->
            let l = longest s in
            if l >= 0 then max acc (l + 1) else acc)
          (if is_target.(nid) then 0 else -1)
          (succs nid)
      in
      on_stack.(nid) <- false;
      memo.(nid) <- best;
      best
    end
  in
  let best =
    List.fold_left
      (fun acc f ->
        let l = longest f in
        match acc with
        | Some b -> Some (max b l)
        | None -> if l >= 0 then Some l else None)
      None froms
  in
  match best with Some b when b >= 0 -> Some b | _ -> None
