(** The arbiter's validation logic (Sec. III, Eqs. 2–5, and Sec. IV-C) as
    pure functions over the premature queue.

    Eq. 3 (opposite type) is resolved structurally: {!store_violation}
    scans only the queue's load view and {!load_gate} only its store view
    (the CAM banks); Eq. 2 is one integer compare on packed [(seq, pos)]
    keys.  The [_ref] variants fold over the whole queue exactly as the
    paper's prose describes — the executable specification the property
    tests hold the fast paths to. *)

(** Program-order comparison on (iteration, ROM position). *)
val older : int * int -> int * int -> bool

(** Decision tallies, updated by {!store_violation}/{!load_gate} when the
    caller passes a record — the metric source for the arbiter tracks of
    the observability layer.  All fields are monotone counters. *)
type stats = {
  mutable checks : int;  (** store_violation evaluations *)
  mutable violations : int;  (** checks that found an erring load *)
  mutable gate_clear : int;
  mutable gate_forward : int;
  mutable gate_wait : int;
}

val fresh_stats : unit -> stats

(** Eqs. 2–5: a store [P_m] arriving at the arbiter detects an erroneous
    premature load [C_n] if some valid queue entry is younger (Eq. 2, with
    the ROM tie-break for equal iterations), of opposite type (Eq. 3), on
    the same index (Eq. 4) and with a different value (Eq. 5).  Returns the
    earliest erring iteration — the [iter_Err] the arbiter copies back to
    the squash mux — or [None].

    [value_validation:false] disables Eq. 5 (ablation): any ordering
    conflict squashes even when the store rewrites the value the load
    already observed — address-only disambiguation, the behaviour PreVV's
    value check improves on. *)
val store_violation :
  ?value_validation:bool ->
  ?stats:stats ->
  Premature_queue.t ->
  seq:int ->
  pos:int ->
  index:int ->
  value:int ->
  int option

(** Admission verdict for an arriving premature load. *)
type load_gate =
  | Clear  (** no older store to this address is pending: read memory *)
  | Forward of int  (** same-iteration earlier store: take its value *)
  | Wait  (** an older uncommitted store targets this address: stall *)

(** Gate an arriving load against the queue.  [Wait] is the
    no-speculation path (the older store is already queued, so speculating
    would deterministically squash again on replay); [Forward] resolves an
    intra-iteration store-to-load dependence dictated by the ROM order. *)
val load_gate :
  ?stats:stats -> Premature_queue.t -> seq:int -> pos:int -> index:int -> load_gate

(** {1 Reference implementations}

    Whole-queue folds over materialised entries — the executable
    specification; the property tests check the view-scanning fast paths
    against these on random queue contents. *)

val store_violation_ref :
  ?value_validation:bool ->
  ?stats:stats ->
  Premature_queue.t ->
  seq:int ->
  pos:int ->
  index:int ->
  value:int ->
  int option

val load_gate_ref :
  ?stats:stats -> Premature_queue.t -> seq:int -> pos:int -> index:int -> load_gate

(** {1 Incremental validation watermark}

    Bookkeeping that lets the backend's per-cycle load-retirement sweep
    run only when it can retire something: when the store-arrival frontier
    moved past the last swept value, when a late load arrived behind it,
    or after a squash rewound it (the rewind drags the watermark down, so
    the frontier's re-advance is seen as fresh progress). *)

type watermark = {
  mutable wm_saf : int;  (** frontier value of the last completed sweep *)
  mutable wm_dirty : bool;  (** a load arrived behind the swept frontier *)
}

val fresh_watermark : unit -> watermark

(** Note an admitted load: arriving behind the already-swept frontier
    makes it immediately retirable, which a pure frontier compare would
    miss. *)
val wm_note_load : watermark -> seq:int -> saf:int -> unit

(** A squash (or record-drop fault) rewound the frontier to [saf]. *)
val wm_rewind : watermark -> saf:int -> unit

(** Is a retirement sweep due at frontier [saf]? *)
val wm_pending : watermark -> saf:int -> bool

(** A sweep at frontier [saf] completed. *)
val wm_mark : watermark -> saf:int -> unit
