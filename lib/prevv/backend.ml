(** The PreVV memory backend: one premature queue + arbiter per ambiguous
    array (one disambiguation instance), no load or store queue.

    Premature execution: loads read committed memory the moment their
    address arrives; stores buffer in the premature queue and reach memory
    only when their whole body instance has been validated, in original
    program order (the commit frontier).  The arbiter checks each arriving
    record against the queue (Eqs. 2–5); a violation squashes the pipeline
    from the erring iteration, and the circuit replays it — the simulator
    purges in-flight tokens and rewinds the loop generator.  Conditional
    pair members send fake tokens (Sec. V-C); disabling them (config flag)
    reproduces the deadlock of Fig. 6. *)

open Pv_memory
module Token = Pv_dataflow.Types.Token

type config = {
  depth_q : int;  (** premature queue depth ([Depth_q] of Sec. IV-B) *)
  mem_latency : int;
  commits_per_cycle : int;  (** validated instances retired per cycle *)
  fake_tokens : bool;  (** Sec. V-C deadlock elimination on/off *)
  value_validation : bool;
      (** Eq. 5 on/off (ablation: off = address-only disambiguation) *)
  collapse_queue : bool;
      (** interior slot reclamation on/off (ablation: off = naive circular
          pointers, prone to fragmentation wedging) *)
  squash_budget : int;
      (** livelock guard: consecutive squashes of the {e same} iteration
          tolerated before the backend degrades to non-speculative load
          admission (a load only issues once no older store can still
          accuse it).  Unreachable in fault-free runs — the strict re-issue
          after a squash already guarantees forward progress — but a stuck
          external squash source (fault injection, a flaky error detector)
          would otherwise replay one iteration forever. *)
}

(* Simulated queue entries per named (paper) depth unit: this simulator
   pipelines the datapath into roughly twice as many (thinner) stages as
   the published circuits, so occupancies — and hence the capacity a named
   depth must provide — scale by the same factor.  The LSQ baselines use
   the identical mapping (16-entry paper default -> 32 simulated). *)
let depth_scale = 2

let default ~depth_q =
  {
    depth_q;
    mem_latency = 2;
    commits_per_cycle = 1;
    fake_tokens = true;
    value_validation = true;
    collapse_queue = true;
    squash_budget = 8;
  }

(** Configuration for a paper-named depth (PreVV16, PreVV64, ...). *)
let named ~depth =
  { (default ~depth_q:(depth_scale * depth)) with fake_tokens = true }

type inst = {
  id : int;
  q : Premature_queue.t;
  quota : int;
      (** per-port fair share of queue slots.  A port may not hold more
          outstanding records than its quota, so no port can race ahead
          and starve the others out of the queue. *)
  reserve_unused : int;  (** kept for reporting: max ops per iteration *)
  out_cnt : int array;  (** port -> live (outstanding) records *)
  pos_tbl : int array array;
      (** group -> port -> ROM position, [-1] for non-members: the per-op
          [pos_of] lookup with no hashing and no [rom_pos] scan *)
  member_mask : int array;  (** group -> bitmask of member port ids *)
  store_mask : int array;  (** group -> bitmask of member {e store} ports *)
  stores_before : int array array;
      (** group -> ROM position -> bitmask of member stores the ROM places
          strictly before that position.  With arrivals likewise kept as a
          port bitmask per iteration, every completeness question the
          backend asks each cycle (all members in?  all stores in?  an
          earlier store missing?) is one mask compare. *)
  mutable saf : int;
      (** store-arrival frontier: all member {e stores} of iterations
          below [saf] have reached the arbiter (or sent fake tokens).
          A load record retires once [saf] passes its iteration — every
          store that could have accused it has been validated against it
          (Eqs. 2-5), so it leaves the queue long before the commit
          frontier reaches it.  Stores retire at commit. *)
  arrivals : (int, int ref) Hashtbl.t;  (** seq -> arrived-port bitmask *)
  wm : Arbiter.watermark;
      (** incremental-validation watermark: the retirement sweep of
          [validate_loads] runs only when [saf] moved past it, a late load
          arrived behind it, or a squash rewound it *)
  release_port : int -> unit;
      (** pre-allocated per-port credit release, handed to the queue's
          retirement sweeps so the per-cycle paths build no entry lists *)
}

type t = {
  cfg : config;
  pm : Portmap.t;
  mem : int array;
  stats : Pv_dataflow.Memif.stats;
  insts : inst array;
  group_of : (int, int) Hashtbl.t;  (** seq -> group, set by the allocator *)
  resp : Pv_dataflow.Ring.t array;
      (** port -> ring of (ready_at, packed token key, value) records,
          request order *)
  mutable now : int;
  mutable pending_squash : int option;
  mutable frontier : int;
      (** oldest not-yet-committed body instance.  The frontier is global
          (program order across all disambiguation instances): committing a
          store only after {e every} instance has seen all older operations
          prevents a store whose address was derived from another array's
          mis-speculated load from corrupting memory before the squash. *)
  mutable strict_seq : int;
      (** after a squash at [s], loads of instance [s] re-issue
          non-speculatively until the frontier passes [s] *)
  mutable max_arrived : int;
  mutable replay_until : int;  (** ops at or below this seq are replays *)
  (* livelock guard *)
  mutable last_err : int;  (** iteration of the most recent squash *)
  mutable err_streak : int;  (** consecutive squashes of [last_err] *)
  mutable degraded_at : int option;
      (** cycle the guard engaged; [Some _] = speculative load admission is
          off for the rest of the run *)
  (* per-array (per-BRAM) budgets: one read and one write per cycle *)
  reads : (string, int ref) Hashtbl.t;
  writes : (string, int ref) Hashtbl.t;
  (* the same budget refs as flat arrays, so the per-cycle reset in [clock]
     is two array sweeps instead of two hashtable iterations *)
  mutable read_refs : int ref array;
  mutable write_refs : int ref array;
  (* port -> its array's budget ref, plus dense array ids and commit-path
     scratch: the per-op budget checks and the per-commit store collection
     run with no string hashing and no boxed entries *)
  mutable port_read : int ref array;
  mutable port_write : int ref array;
  mutable port_aid : int array;  (* port -> dense array id *)
  mutable aid_write : int ref array;  (* array id -> write budget ref *)
  mutable aid_need : int array;  (* scratch: per-array write demand *)
  mutable c_inst : int array;  (* scratch: instance of collected store *)
  mutable c_slot : int array;  (* scratch: queue slot of collected store *)
  (* observability: arbiter decision tallies, event sink (Trace.null unless
     a sink was passed to [create_full]), last emitted counter samples *)
  arb_stats : Arbiter.stats;
  trace : Pv_obs.Trace.t;
  prof : Pv_obs.Prof.t;  (* cycle-attribution phases; Prof.null unless passed *)
  mutable last_occ : int;
  mutable last_frontier : int;
}

let take_ref r =
  if !r > 0 then begin
    decr r;
    true
  end
  else false

let mark_arrival inst ~seq ~port =
  match Hashtbl.find_opt inst.arrivals seq with
  | Some m -> m := !m lor (1 lsl port)
  | None -> Hashtbl.replace inst.arrivals seq (ref (1 lsl port))

let[@inline] arrival_mask inst ~seq =
  match Hashtbl.find_opt inst.arrivals seq with Some m -> !m | None -> 0

let rec popcount x acc = if x = 0 then acc else popcount (x land (x - 1)) (acc + 1)

(* A speculative read with an address derived from a mis-speculated load
   can point anywhere; real hardware would return whatever the RAM drives
   (undefined data) and the squash repairs the pipeline.  Reads outside
   the RAM return 0 rather than trapping. *)
let read_mem t addr =
  if addr >= 0 && addr < Array.length t.mem then t.mem.(addr) else 0

let respond t ~port ~ready_at ~key ~value =
  Pv_dataflow.Ring.push3 t.resp.(port) ready_at key value

let note_occupancy t =
  let o =
    Array.fold_left (fun acc i -> acc + Premature_queue.occupancy i.q) 0 t.insts
  in
  if o > t.stats.Pv_dataflow.Memif.max_occupancy then
    t.stats.Pv_dataflow.Memif.max_occupancy <- o;
  if Pv_obs.Trace.enabled t.trace && o <> t.last_occ then begin
    Pv_obs.Trace.counter t.trace ~tid:Pv_obs.Trace.tid_queue ~ts:t.now
      "pq_occupancy" o;
    t.last_occ <- o
  end

let raise_squash t seq_err =
  t.pending_squash <-
    (match t.pending_squash with
    | Some s -> Some (min s seq_err)
    | None -> Some seq_err)

(* Slots that must stay available for the oldest iteration to complete:
   exactly its not-yet-arrived member operations.  Their ports always have
   zero outstanding records (anything older retired at the store-arrival
   or commit frontier), so reserving this many slots for frontier-age
   records makes admission deadlock-free. *)
let frontier_reserve t inst =
  match Hashtbl.find_opt t.group_of t.frontier with
  | None -> 0
  | Some g ->
      popcount
        (inst.member_mask.(g) land lnot (arrival_mask inst ~seq:t.frontier))
        0

(* Queue admission: frontier-instance operations may use the reserved
   slots; younger records must respect both the per-port quota and the
   unreserved capacity. *)
let has_room t inst ~port ~seq =
  if seq <= t.frontier then not (Premature_queue.is_full inst.q)
  else
    inst.out_cnt.(port) < inst.quota
    && Premature_queue.occupancy inst.q
       < t.cfg.depth_q - frontier_reserve t inst

(* Is some store of the same body instance, placed before [pos] by the
   ROM, still missing from the arbiter? *)
let same_seq_store_pending t inst ~seq ~pos =
  match Hashtbl.find_opt t.group_of seq with
  | None -> false
  | Some g ->
      let before = inst.stores_before.(g).(pos) in
      before <> 0 && before land lnot (arrival_mask inst ~seq) <> 0

(* Strict re-issue after a squash: a load of the squashed instance may only
   read once every same-instance store that the ROM places before it has
   arrived (it will then forward), and otherwise behaves normally. *)
let strict_blocked t inst ~seq ~pos =
  seq = t.strict_seq && same_seq_store_pending t inst ~seq ~pos

(* Degraded (livelock-guard) admission: a load issues only once no store
   that could accuse it can still arrive — every older iteration's stores
   are in ([seq <= saf]) and so are the same-iteration stores the ROM
   places before it.  Such a load can never be squashed, so admission under
   this gate makes forward progress no matter how the squash source
   behaves. *)
let degraded_blocked t inst ~seq ~pos =
  t.degraded_at <> None
  && (seq > inst.saf || same_seq_store_pending t inst ~seq ~pos)

let release t inst (retired : Premature_queue.entry list) =
  ignore t;
  List.iter
    (fun (e : Premature_queue.entry) ->
      let p = e.Premature_queue.e_port in
      if inst.out_cnt.(p) > 0 then inst.out_cnt.(p) <- inst.out_cnt.(p) - 1)
    retired

(* Advance the store-arrival frontier and retire validated load records:
   once every store of all older iterations (and the same iteration's
   earlier-ROM stores) has arrived and been compared, no future arrival can
   accuse the load, so its record leaves the queue.  Stores stay until the
   commit frontier writes them back. *)
let validate_loads t inst =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.group_of inst.saf with
    | None -> continue := false
    | Some g ->
        let sm = inst.store_mask.(g) in
        if arrival_mask inst ~seq:inst.saf land sm = sm then
          inst.saf <- inst.saf + 1
        else continue := false
  done;
  (* Retire every load record the frontier has passed.  Once [saf] is
     beyond an iteration, all of its member stores have arrived, so no
     same-iteration earlier store can still be missing — the sweep
     predicate is one key compare.  The watermark skips the sweep on the
     (common) cycles where the frontier sat still and no late load
     arrived; cost is attributed per record actually scanned, so the
     pq_validate phase now measures real validation work rather than
     queue-polling overhead. *)
  if Arbiter.wm_pending inst.wm ~saf:inst.saf then begin
    if Pv_obs.Prof.enabled t.prof then
      Pv_obs.Prof.add t.prof ~phase:Pv_obs.Prof.phase_pq_validate
        inst.q.Premature_queue.n_load;
    ignore
      (Premature_queue.retire_loads_below inst.q ~seq:inst.saf
         ~on_port:inst.release_port
        : int);
    Arbiter.wm_mark inst.wm ~saf:inst.saf
  end

(* commit-path scratch accessors: ROM position / port of the [a]-th
   collected store record *)
let c_pos t a =
  Premature_queue.okey_pos
    t.insts.(t.c_inst.(a)).q.Premature_queue.key.(t.c_slot.(a))

let c_port t a =
  Premature_queue.m_port
    t.insts.(t.c_inst.(a)).q.Premature_queue.meta.(t.c_slot.(a))

(* Advance the global commit frontier: a body instance retires when every
   disambiguation instance has seen all of its member operations (arrivals
   or fake tokens); its stores then reach memory in ROM order.  Instances
   without member ops anywhere are skipped for free; at most
   [commits_per_cycle] store-carrying instances retire per cycle. *)
let advance_frontier t =
  let budget = ref t.cfg.commits_per_cycle in
  let continue = ref true in
  while !continue do
    let s = t.frontier in
    (* never retire an instance that a same-cycle violation will squash *)
    (match t.pending_squash with
    | Some err when s >= err -> continue := false
    | _ -> ());
    if !continue then
      match Hashtbl.find_opt t.group_of s with
      | None -> continue := false
      | Some g ->
          let complete =
            Array.for_all
              (fun inst ->
                let mm = inst.member_mask.(g) in
                arrival_mask inst ~seq:s land mm = mm)
              t.insts
          in
          if not complete then continue := false
          else begin
            (* collect the body instance's store records straight from the
               packed store views into preallocated scratch (slot numbers,
               no boxed entries), then insertion-sort by ROM position *)
            let k = ref 0 in
            for ii = 0 to Array.length t.insts - 1 do
              let q = t.insts.(ii).q in
              for vi = 0 to q.Premature_queue.n_store - 1 do
                let slot = q.Premature_queue.v_store.(vi) in
                if Premature_queue.okey_seq q.Premature_queue.key.(slot) = s
                then begin
                  t.c_inst.(!k) <- ii;
                  t.c_slot.(!k) <- slot;
                  incr k
                end
              done
            done;
            let k = !k in
            for a = 1 to k - 1 do
              let ci = t.c_inst.(a) and cs = t.c_slot.(a) in
              let p =
                Premature_queue.okey_pos t.insts.(ci).q.Premature_queue.key.(cs)
              in
              let b = ref (a - 1) in
              while !b >= 0 && c_pos t !b > p do
                t.c_inst.(!b + 1) <- t.c_inst.(!b);
                t.c_slot.(!b + 1) <- t.c_slot.(!b);
                decr b
              done;
              t.c_inst.(!b + 1) <- ci;
              t.c_slot.(!b + 1) <- cs
            done;
            (* every store of the instance needs a write port this cycle:
               tally the per-array demand and compare against the budgets *)
            let bw_ok = ref true in
            if k > 0 then begin
              Array.fill t.aid_need 0 (Array.length t.aid_need) 0;
              for a = 0 to k - 1 do
                let aid = t.port_aid.(c_port t a) in
                t.aid_need.(aid) <- t.aid_need.(aid) + 1
              done;
              for aid = 0 to Array.length t.aid_need - 1 do
                if t.aid_need.(aid) > !(t.aid_write.(aid)) then bw_ok := false
              done
            end;
            if k > 0 && (!budget = 0 || not !bw_ok) then continue := false
            else begin
              for a = 0 to k - 1 do
                let q = t.insts.(t.c_inst.(a)).q in
                let slot = t.c_slot.(a) in
                decr t.port_write.(c_port t a);
                t.mem.(q.Premature_queue.index.(slot)) <-
                  q.Premature_queue.value.(slot)
              done;
              if k > 0 then decr budget;
              for ii = 0 to Array.length t.insts - 1 do
                let inst = t.insts.(ii) in
                ignore
                  (Premature_queue.retire_eq inst.q ~seq:s
                     ~on_port:inst.release_port
                    : int);
                Hashtbl.remove inst.arrivals s
              done;
              t.frontier <- s + 1;
              if t.strict_seq < t.frontier then t.strict_seq <- -1
            end
          end
  done

let create_full ?(trace = Pv_obs.Trace.null) ?(prof = Pv_obs.Prof.null)
    (cfg : config) (pm : Portmap.t) (mem : int array) :
    t * Pv_dataflow.Memif.t =
  if Array.length pm.Portmap.ports > 62 then
    invalid_arg
      (Printf.sprintf
         "PreVV: %d ports exceed the 62-port arrival-bitmask limit"
         (Array.length pm.Portmap.ports));
  let t =
    {
      cfg;
      pm;
      mem;
      stats = Pv_dataflow.Memif.fresh_stats ();
      insts =
        Array.init pm.Portmap.n_instances (fun id ->
            let max_ops =
              Array.fold_left
                (fun m ops -> max m (Array.length ops))
                0 pm.Portmap.rom.(id)
            in
            begin
              let member_ports =
                Array.fold_left
                  (fun acc p ->
                    if p.Portmap.instance = Some id then acc + 1 else acc)
                  0 pm.Portmap.ports
              in
              ignore max_ops;
              if cfg.depth_q < member_ports then
                invalid_arg
                  (Printf.sprintf
                     "PreVV: depth_q %d is smaller than instance %d's %d \
                      member ports; one body instance could never fit and \
                      the commit frontier would never advance"
                     cfg.depth_q id member_ports);
              let n_stores =
                Array.fold_left
                  (fun acc p ->
                    if
                      p.Portmap.instance = Some id
                      && p.Portmap.kind = Portmap.OStore
                    then acc + 1
                    else acc)
                  0 pm.Portmap.ports
              in
              let n_loads = max 1 (member_ports - n_stores) in
              let rom = pm.Portmap.rom.(id) in
              let n_groups = Array.length rom in
              let member_mask = Array.make n_groups 0 in
              let store_mask = Array.make n_groups 0 in
              let stores_before =
                Array.init n_groups (fun g ->
                    let ports = rom.(g) in
                    let sb = Array.make (Array.length ports) 0 in
                    let acc = ref 0 in
                    Array.iteri
                      (fun p pid ->
                        member_mask.(g) <- member_mask.(g) lor (1 lsl pid);
                        sb.(p) <- !acc;
                        if (Portmap.port pm pid).Portmap.kind = Portmap.OStore
                        then begin
                          store_mask.(g) <- store_mask.(g) lor (1 lsl pid);
                          acc := !acc lor (1 lsl pid)
                        end)
                      ports;
                    sb)
              in
              let out_cnt = Array.make (Array.length pm.Portmap.ports) 0 in
              let pos_tbl =
                Array.init n_groups (fun g ->
                    let tbl = Array.make (Array.length pm.Portmap.ports) (-1) in
                    Array.iteri (fun p pid -> tbl.(pid) <- p) rom.(g);
                    tbl)
              in
              {
                id;
                q = Premature_queue.create ~collapse:cfg.collapse_queue cfg.depth_q;
                quota =
                  max 1
                    (int_of_float
                       (Float.round
                          (float_of_int (cfg.depth_q - n_stores)
                          /. float_of_int n_loads)));
                reserve_unused = max_ops;
                out_cnt;
                pos_tbl;
                member_mask;
                store_mask;
                stores_before;
                saf = 0;
                arrivals = Hashtbl.create 64;
                wm = Arbiter.fresh_watermark ();
                release_port =
                  (fun port ->
                    if out_cnt.(port) > 0 then
                      out_cnt.(port) <- out_cnt.(port) - 1);
              }
            end);
      group_of = Hashtbl.create 1024;
      resp =
        Array.init (Array.length pm.Portmap.ports) (fun _ ->
            Pv_dataflow.Ring.create ~stride:3 8);
      now = 0;
      pending_squash = None;
      frontier = 0;
      strict_seq = -1;
      max_arrived = -1;
      replay_until = -1;
      last_err = -1;
      err_streak = 0;
      degraded_at = None;
      reads = Hashtbl.create 8;
      writes = Hashtbl.create 8;
      read_refs = [||];
      write_refs = [||];
      port_read = [||];
      port_write = [||];
      port_aid = [||];
      aid_write = [||];
      aid_need = [||];
      c_inst = [||];
      c_slot = [||];
      arb_stats = Arbiter.fresh_stats ();
      trace;
      prof;
      last_occ = -1;
      last_frontier = -1;
    }
  in
  Array.iter
    (fun p ->
      if not (Hashtbl.mem t.reads p.Portmap.array) then begin
        Hashtbl.replace t.reads p.Portmap.array (ref 2);
        Hashtbl.replace t.writes p.Portmap.array (ref 1)
      end)
    pm.Portmap.ports;
  t.read_refs <-
    Array.of_list (Hashtbl.fold (fun _ r acc -> r :: acc) t.reads []);
  t.write_refs <-
    Array.of_list (Hashtbl.fold (fun _ r acc -> r :: acc) t.writes []);
  (* port -> budget ref and dense array-id tables, plus commit scratch:
     assign each distinct array a dense id in first-port order *)
  let n_ports = Array.length pm.Portmap.ports in
  let aid_of = Hashtbl.create 8 in
  let aids = ref [] in
  Array.iter
    (fun (p : Portmap.port) ->
      if not (Hashtbl.mem aid_of p.Portmap.array) then begin
        Hashtbl.replace aid_of p.Portmap.array (Hashtbl.length aid_of);
        aids := p.Portmap.array :: !aids
      end)
    pm.Portmap.ports;
  let n_arrays = Hashtbl.length aid_of in
  t.port_read <-
    Array.init n_ports (fun p ->
        Hashtbl.find t.reads (Portmap.port pm p).Portmap.array);
  t.port_write <-
    Array.init n_ports (fun p ->
        Hashtbl.find t.writes (Portmap.port pm p).Portmap.array);
  t.port_aid <-
    Array.init n_ports (fun p ->
        Hashtbl.find aid_of (Portmap.port pm p).Portmap.array);
  t.aid_write <-
    (let by_aid = Array.make (max n_arrays 1) (ref 0) in
     List.iter
       (fun name ->
         by_aid.(Hashtbl.find aid_of name) <- Hashtbl.find t.writes name)
       !aids;
     by_aid);
  t.aid_need <- Array.make (max n_arrays 1) 0;
  t.c_inst <- Array.make (max n_ports 1) 0;
  t.c_slot <- Array.make (max n_ports 1) 0;
  let inst_of_port port =
    match (Portmap.port pm port).Portmap.instance with
    | Some i -> Some t.insts.(i)
    | None -> None
  in
  let pos_of ~inst ~seq ~port =
    let group = Hashtbl.find t.group_of seq in
    let p = t.insts.(inst).pos_tbl.(group).(port) in
    if p >= 0 then p
    else
      invalid_arg
        (Printf.sprintf "PreVV: port %d not in ROM of instance %d group %d"
           port inst group)
  in
  let note_arrival seq =
    if seq <= t.replay_until then
      t.stats.Pv_dataflow.Memif.replayed_ops <-
        t.stats.Pv_dataflow.Memif.replayed_ops + 1;
    if seq > t.max_arrived then t.max_arrived <- seq
  in
  let begin_instance ~seq ~group =
    Hashtbl.replace t.group_of seq group;
    true
  in
  let load_req ~port ~key ~addr =
    let seq = Token.seq key in
    match inst_of_port port with
    | None ->
        if take_ref t.port_read.(port) then begin
          t.stats.Pv_dataflow.Memif.loads <- t.stats.Pv_dataflow.Memif.loads + 1;
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
          respond t ~port ~ready_at:(t.now + cfg.mem_latency) ~key
            ~value:(read_mem t addr);
          true
        end
        else begin
          t.stats.Pv_dataflow.Memif.stall_bw <-
            t.stats.Pv_dataflow.Memif.stall_bw + 1;
          false
        end
    | Some inst -> (
        let pos = pos_of ~inst:inst.id ~seq ~port in
        (* the gate scans the store view only (Eq. 3 resolved
           structurally): one scan unit per record actually compared *)
        if Pv_obs.Prof.enabled prof then
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_arbiter_scan
            inst.q.Premature_queue.n_store;
        match Arbiter.load_gate ~stats:t.arb_stats inst.q ~seq ~pos ~index:addr with
        | Arbiter.Wait ->
            t.stats.Pv_dataflow.Memif.stall_order <-
              t.stats.Pv_dataflow.Memif.stall_order + 1;
            false
        | Arbiter.Forward v ->
            (* forwarding still speculates that no {e older} store is
               missing, so the degraded gate applies here too *)
            if degraded_blocked t inst ~seq ~pos then begin
              t.stats.Pv_dataflow.Memif.stall_order <-
                t.stats.Pv_dataflow.Memif.stall_order + 1;
              false
            end
            else if not (has_room t inst ~port ~seq) then begin
              t.stats.Pv_dataflow.Memif.stall_full <-
                t.stats.Pv_dataflow.Memif.stall_full + 1;
              false
            end
            else if
              not
                (Premature_queue.record inst.q ~seq ~pos ~port
                   ~kind:Portmap.OLoad ~index:addr ~value:v)
            then begin
              t.stats.Pv_dataflow.Memif.stall_full <-
                t.stats.Pv_dataflow.Memif.stall_full + 1;
              false
            end
            else begin
              Arbiter.wm_note_load inst.wm ~seq ~saf:inst.saf;
              inst.out_cnt.(port) <- inst.out_cnt.(port) + 1;
              mark_arrival inst ~seq ~port;
              note_arrival seq;
              respond t ~port ~ready_at:(t.now + 1) ~key ~value:v;
              t.stats.Pv_dataflow.Memif.forwarded <-
                t.stats.Pv_dataflow.Memif.forwarded + 1;
              t.stats.Pv_dataflow.Memif.loads <-
                t.stats.Pv_dataflow.Memif.loads + 1;
              Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
              note_occupancy t;
              true
            end
        | Arbiter.Clear ->
            if
              strict_blocked t inst ~seq ~pos
              || degraded_blocked t inst ~seq ~pos
            then begin
              t.stats.Pv_dataflow.Memif.stall_order <-
                t.stats.Pv_dataflow.Memif.stall_order + 1;
              false
            end
            else if not (has_room t inst ~port ~seq) then begin
              t.stats.Pv_dataflow.Memif.stall_full <-
                t.stats.Pv_dataflow.Memif.stall_full + 1;
              false
            end
            else if not (take_ref t.port_read.(port))
            then begin
              t.stats.Pv_dataflow.Memif.stall_bw <-
                t.stats.Pv_dataflow.Memif.stall_bw + 1;
              false
            end
            else begin
              let v = read_mem t addr in
              if
                not
                  (Premature_queue.record inst.q ~seq ~pos ~port
                     ~kind:Portmap.OLoad ~index:addr ~value:v)
              then begin
                t.stats.Pv_dataflow.Memif.stall_full <-
                  t.stats.Pv_dataflow.Memif.stall_full + 1;
                false
              end
              else begin
                Arbiter.wm_note_load inst.wm ~seq ~saf:inst.saf;
                inst.out_cnt.(port) <- inst.out_cnt.(port) + 1;
                mark_arrival inst ~seq ~port;
                note_arrival seq;
                respond t ~port ~ready_at:(t.now + cfg.mem_latency) ~key
                  ~value:v;
                t.stats.Pv_dataflow.Memif.loads <-
                  t.stats.Pv_dataflow.Memif.loads + 1;
                Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
                note_occupancy t;
                true
              end
            end)
  in
  let store_req ~port ~key ~addr ~value =
    let seq = Token.seq key in
    match inst_of_port port with
    | None ->
        if take_ref t.port_write.(port) then begin
          t.stats.Pv_dataflow.Memif.stores <-
            t.stats.Pv_dataflow.Memif.stores + 1;
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
          if addr >= 0 && addr < Array.length t.mem then t.mem.(addr) <- value;
          true
        end
        else begin
          t.stats.Pv_dataflow.Memif.stall_bw <-
            t.stats.Pv_dataflow.Memif.stall_bw + 1;
          false
        end
    | Some inst ->
        if not (has_room t inst ~port ~seq) then begin
          t.stats.Pv_dataflow.Memif.stall_full <-
            t.stats.Pv_dataflow.Memif.stall_full + 1;
          false
        end
        else begin
          let pos = pos_of ~inst:inst.id ~seq ~port in
          (* violation checking scans the load view only (Eq. 3 resolved
             structurally): one unit per record actually compared *)
          if Pv_obs.Prof.enabled prof then
            Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_pq_validate
              inst.q.Premature_queue.n_load;
          let violation =
            Arbiter.store_violation ~value_validation:t.cfg.value_validation
              ~stats:t.arb_stats inst.q ~seq ~pos ~index:addr ~value
          in
          if Pv_obs.Trace.enabled t.trace then begin
            Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_arbiter ~ts:t.now
              ~args:[ ("seq", seq); ("index", addr) ]
              "validation";
            match violation with
            | Some seq_err ->
                Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_arbiter
                  ~ts:t.now
                  ~args:[ ("seq", seq); ("seq_err", seq_err) ]
                  "violation"
            | None -> ()
          end;
          if
            not
              (Premature_queue.record inst.q ~seq ~pos ~port
                 ~kind:Portmap.OStore ~index:addr ~value)
          then begin
            t.stats.Pv_dataflow.Memif.stall_full <-
              t.stats.Pv_dataflow.Memif.stall_full + 1;
            false
          end
          else begin
            (match violation with
            | Some seq_err -> raise_squash t seq_err
            | None -> ());
            inst.out_cnt.(port) <- inst.out_cnt.(port) + 1;
            mark_arrival inst ~seq ~port;
            note_arrival seq;
            t.stats.Pv_dataflow.Memif.stores <-
              t.stats.Pv_dataflow.Memif.stores + 1;
            Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
            note_occupancy t;
            true
          end
        end
  in
  let op_skip ~port ~key =
    let seq = Token.seq key in
    match inst_of_port port with
    | None -> true
    | Some inst ->
        if cfg.fake_tokens then begin
          mark_arrival inst ~seq ~port;
          t.stats.Pv_dataflow.Memif.fake_tokens <-
            t.stats.Pv_dataflow.Memif.fake_tokens + 1;
          Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
            ~args:[ ("seq", seq); ("port", port) ]
            "fake_token"
        end;
        (* without fake tokens the notification is silently dropped: the
           arbiter starves, reproducing the deadlock of Fig. 6 *)
        true
  in
  let poll_squash () =
    match t.pending_squash with
    | None -> None
    | Some err ->
        t.pending_squash <- None;
        t.stats.Pv_dataflow.Memif.squashes <-
          t.stats.Pv_dataflow.Memif.squashes + 1;
        assert (t.frontier <= err);
        (* livelock guard: replaying the same iteration over and over means
           speculation is not making progress — stop speculating *)
        if err = t.last_err then t.err_streak <- t.err_streak + 1
        else begin
          t.last_err <- err;
          t.err_streak <- 1
        end;
        if t.err_streak > t.cfg.squash_budget && t.degraded_at = None then begin
          t.degraded_at <- Some t.now;
          t.stats.Pv_dataflow.Memif.degraded <-
            t.stats.Pv_dataflow.Memif.degraded + 1;
          Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
            ~args:[ ("err", err) ]
            "degraded"
        end;
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
          ~args:[ ("seq_err", err); ("streak", t.err_streak) ]
          "backend_squash";
        t.strict_seq <- err;
        Array.iter
          (fun inst ->
            ignore
              (Premature_queue.retire_ge inst.q ~seq:err
                 ~on_port:inst.release_port
                : int);
            if inst.saf > err then inst.saf <- err;
            (* squash rewind: drag the validation watermark down with the
               frontier, else loads admitted during the replay would never
               be swept (the frontier's re-advance would look stale) *)
            Arbiter.wm_rewind inst.wm ~saf:inst.saf;
            let stale =
              Hashtbl.fold
                (fun s _ acc -> if s >= err then s :: acc else acc)
                inst.arrivals []
            in
            List.iter (Hashtbl.remove inst.arrivals) stale)
          t.insts;
        (* response rings carry packed keys in field 1: purge everything at
           or beyond the erring iteration by key order *)
        Array.iter
          (fun q ->
            ignore
              (Pv_dataflow.Ring.reject_ge q ~field:1
                 ~cutoff:(Token.first ~seq:err)
                : int))
          t.resp;
        t.replay_until <- t.max_arrived;
        Some err
  in
  let clock () =
    Array.iter (validate_loads t) t.insts;
    advance_frontier t;
    if Pv_obs.Trace.enabled t.trace then begin
      (* validated-load retirement changes occupancy without a request *)
      note_occupancy t;
      if t.frontier <> t.last_frontier then begin
        Pv_obs.Trace.counter t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
          "commit_frontier" t.frontier;
        t.last_frontier <- t.frontier
      end
    end;
    Array.iter (fun r -> r := 2) t.read_refs;
    Array.iter (fun r -> r := 1) t.write_refs;
    t.now <- t.now + 1
  in
  let load_poll ~port out =
    let q = t.resp.(port) in
    (not (Pv_dataflow.Ring.is_empty q))
    && Pv_dataflow.Ring.get q 0 0 <= t.now
    && begin
         out.Pv_dataflow.Memif.ls_key <- Pv_dataflow.Ring.get q 0 1;
         out.Pv_dataflow.Memif.ls_value <- Pv_dataflow.Ring.get q 0 2;
         Pv_dataflow.Ring.pop q;
         true
       end
  in
  let quiesced () =
    Array.for_all (fun inst -> Premature_queue.is_empty inst.q) t.insts
    && Array.for_all Pv_dataflow.Ring.is_empty t.resp
    && t.pending_squash = None
  in
  let inject (b : Pv_dataflow.Fault.backend_action) =
    let accepted =
      match b with
      | Pv_dataflow.Fault.B_squash { seq } ->
          (* a squash below the commit frontier is meaningless (those
             iterations are architectural state already) and would break the
             frontier<=err invariant: refuse it *)
          if seq < t.frontier then false
          else begin
            raise_squash t seq;
            true
          end
      | Pv_dataflow.Fault.B_pq_flip { inst; slot; mask; detect } ->
          if inst < 0 || inst >= Array.length t.insts then false
          else begin
            match Premature_queue.corrupt t.insts.(inst).q ~slot ~mask with
            | None -> false
            | Some e ->
                (* an ECC-checked queue notices the upset and treats it as a
                   mis-speculation of the entry's iteration; an unprotected
                   one leaves detection to value validation (Eq. 5) *)
                if detect then raise_squash t e.Premature_queue.e_seq;
                true
          end
      | Pv_dataflow.Fault.B_pq_drop { inst; slot } ->
          if inst < 0 || inst >= Array.length t.insts then false
          else begin
            let i = t.insts.(inst) in
            match Premature_queue.drop i.q ~slot with
            | None -> false
            | Some e ->
                (* the record vanishes as if never made: release the slot
                   credit and forget the arrival, so the commit frontier
                   will wait forever for an operation that already happened
                   — the hang this causes must be diagnosed, not silent *)
                release t i [ e ];
                (match Hashtbl.find_opt i.arrivals e.Premature_queue.e_seq with
                | Some m -> m := !m land lnot (1 lsl e.Premature_queue.e_port)
                | None -> ());
                if i.saf > e.Premature_queue.e_seq then
                  i.saf <- e.Premature_queue.e_seq;
                (* same watermark rewind as a squash: the frontier moved
                   backwards, so its re-advance must trigger a sweep *)
                Arbiter.wm_rewind i.wm ~saf:i.saf;
                true
          end
    in
    if accepted then
      t.stats.Pv_dataflow.Memif.faults <- t.stats.Pv_dataflow.Memif.faults + 1;
    accepted
  in
  let describe () =
    Format.asprintf "frontier=%d strict=%d pending=%s streak=%d(i%d)%s occ=[%s] saf=[%s]"
      t.frontier t.strict_seq
      (match t.pending_squash with Some e -> string_of_int e | None -> "-")
      t.err_streak t.last_err
      (match t.degraded_at with
      | Some c -> Printf.sprintf " DEGRADED@%d" c
      | None -> "")
      (String.concat ";"
         (Array.to_list t.insts
         |> List.map (fun i ->
                string_of_int (Premature_queue.occupancy i.q))))
      (String.concat ";"
         (Array.to_list t.insts |> List.map (fun i -> string_of_int i.saf)))
  in
  ( t,
    {
      Pv_dataflow.Memif.begin_instance;
      alloc_group = (fun ~key:_ ~group:_ -> true);
      load_req;
      load_poll;
      store_req;
      store_addr = (fun ~port:_ ~key:_ ~addr:_ -> ());
      op_skip;
      poll_squash;
      clock;
      quiesced;
      stats = (fun () -> t.stats);
      inject;
      describe;
    } )

let create ?trace ?prof cfg pm mem = snd (create_full ?trace ?prof cfg pm mem)
let degraded_at t = t.degraded_at

(* Runtime stat accessors — the metric sources of the observability layer,
   reachable without a post-mortem dump. *)
let stats t = t.stats
let arbiter_stats t = t.arb_stats
let pq_high_water t = t.stats.Pv_dataflow.Memif.max_occupancy
let frontier t = t.frontier

(** Debug dump of the backend state. *)
let dump ppf t =
  Format.fprintf ppf "frontier=%d strict=%d pending=%s streak=%d(i%d)%s@\n"
    t.frontier t.strict_seq
    (match t.pending_squash with Some e -> string_of_int e | None -> "-")
    t.err_streak t.last_err
    (match t.degraded_at with
    | Some c -> Printf.sprintf " DEGRADED@%d" c
    | None -> "");
  Array.iter
    (fun inst ->
      Format.fprintf ppf "instance %d: occ=%d quota=%d saf=%d@\n" inst.id
        (Premature_queue.occupancy inst.q)
        inst.quota inst.saf;
      Premature_queue.iter
        (fun (e : Premature_queue.entry) ->
          Format.fprintf ppf "  seq=%d pos=%d port=%d %s idx=%d val=%d@\n" e.e_seq
            e.e_pos e.e_port
            (match e.e_kind with Portmap.OLoad -> "load" | _ -> "store")
            e.e_index e.e_value)
        inst.q;
      (* incomplete arrivals near the frontier *)
      for s = t.frontier to t.frontier + 3 do
        match Hashtbl.find_opt t.group_of s with
        | None -> ()
        | Some g ->
            let exp = t.pm.Portmap.rom.(inst.id).(g) in
            let got =
              let m = arrival_mask inst ~seq:s in
              List.filter
                (fun p -> m land (1 lsl p) <> 0)
                (Array.to_list exp)
            in
            if Array.length exp > 0 then
              Format.fprintf ppf "  seq %d group %d: expect [%s] got [%s]@\n" s g
                (String.concat ";" (Array.to_list (Array.map string_of_int exp)))
                (String.concat ";" (List.map string_of_int got))
      done)
    t.insts
