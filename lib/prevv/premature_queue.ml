(** The premature queue of Sec. IV-B / Fig. 4.

    A circular buffer with head and tail pointers.  The tail advances when
    a new premature operation is recorded; the head advances when the
    oldest operations are validated and committed.  Pipeline squashes mark
    entries invalid in place (a valid bit, as real hardware would), and the
    head simply skips them — invalidated slots still occupy capacity until
    the head passes, which is what makes a too-shallow queue stall the
    pipeline. *)

type entry = {
  e_seq : int;  (** iteration (body-instance) number: [iter] of Eq. 1 *)
  e_pos : int;  (** ROM position within the group (same-iteration order) *)
  e_port : int;
  e_kind : Pv_memory.Portmap.op_kind;  (** [Op] of Eq. 1 *)
  e_index : int;  (** target address: [index] of Eq. 1 *)
  e_value : int;  (** loaded or to-be-stored value: [value] of Eq. 1 *)
  mutable e_valid : bool;
}

type t = {
  buf : entry option array;
  depth : int;
  collapse : bool;
      (** reclaim interior retirees (valid-bit shift structure); without it
          only head-adjacent slots free — the naive Fig. 4 pointer queue,
          kept as an ablation that demonstrates fragmentation wedging *)
  mutable head : int;
  mutable tail : int;
  mutable count : int;  (** occupied slots, including invalidated ones *)
  mutable dead : int;
      (** invalidated entries still occupying slots; lets {!compact} — which
          the backend calls every cycle — exit in O(1) on the common
          nothing-retired cycle *)
}

let create ?(collapse = true) depth =
  if depth <= 0 then invalid_arg "Premature_queue.create: depth must be > 0";
  { buf = Array.make depth None; depth; collapse; head = 0; tail = 0;
    count = 0; dead = 0 }

let is_full t = t.count = t.depth
let is_empty t = t.count = 0
let occupancy t = t.count

(** Fig. 4 state: [`Normal] when the live region does not wrap, [`Wrapped]
    when it does, [`Full] when head = tail with data. *)
let state t =
  if is_full t then `Full
  else if is_empty t then `Empty
  else if t.head < t.tail then `Normal
  else `Wrapped

exception Full

let push_exn t ~seq ~pos ~port ~kind ~index ~value =
  if is_full t then raise Full;
  let e =
    { e_seq = seq; e_pos = pos; e_port = port; e_kind = kind; e_index = index;
      e_value = value; e_valid = true }
  in
  t.buf.(t.tail) <- Some e;
  t.tail <- (if t.tail + 1 = t.depth then 0 else t.tail + 1);
  t.count <- t.count + 1;
  e

(** Non-raising [push_exn]: [None] when the queue is full, so callers can turn
    a full queue into ordinary backpressure instead of an exception. *)
let push_opt t ~seq ~pos ~port ~kind ~index ~value =
  if is_full t then None else Some (push_exn t ~seq ~pos ~port ~kind ~index ~value)

(** Reclaim invalidated slots.  Retirement follows program order while the
    queue is in arrival order, so freed slots can sit behind younger live
    entries; the queue collapses them (a shift/valid-bit structure, as load
    and store queues do) — without collapsing, fragmentation eventually
    wedges the oldest instance out of the queue and deadlocks the
    pipeline. *)
let compact t =
  if t.dead > 0 then begin
    (* the head pointer advances circularly past retired entries, as in
       Fig. 4 ... *)
    let continue = ref true in
    while !continue && t.count > 0 do
      match t.buf.(t.head) with
      | Some e when e.e_valid -> continue := false
      | _ ->
          t.buf.(t.head) <- None;
          t.head <- (if t.head + 1 = t.depth then 0 else t.head + 1);
          t.count <- t.count - 1;
          t.dead <- t.dead - 1
    done;
    (* ... and interior gaps collapse towards the head.  Option cells move
       whole (no re-boxing), and survivors ahead of the first gap stay
       put — the common path writes nothing. *)
    if t.collapse && t.dead > 0 then begin
      let wrap i = if i >= t.depth then i - t.depth else i in
      let r = ref t.head and w = ref t.head and live = ref 0 in
      for _ = 1 to t.count do
        (match t.buf.(!r) with
        | Some e when e.e_valid ->
            if !w <> !r then t.buf.(!w) <- t.buf.(!r);
            incr live;
            w := wrap (!w + 1)
        | _ -> ());
        r := wrap (!r + 1)
      done;
      let n_clear = t.count - !live in
      let c = ref !w in
      for _ = 1 to n_clear do
        t.buf.(!c) <- None;
        c := wrap (!c + 1)
      done;
      t.count <- !live;
      t.tail <- !w;
      t.dead <- 0
    end
  end

(** Iterate over valid entries from head to tail (arrival order), exactly
    the arbiter's search direction. *)
let iter f t =
  (* wrapping cursor instead of [mod]: the queue is scanned by the arbiter
     on every premature operation, and a non-constant [mod] is a hardware
     divide per visited slot *)
  let i = ref t.head in
  for _ = 1 to t.count do
    (match t.buf.(!i) with
    | Some e when e.e_valid -> f e
    | _ -> ());
    incr i;
    if !i = t.depth then i := 0
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun e -> acc := f !acc e) t;
  !acc

let exists p t = fold (fun found e -> found || p e) false t
let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

(** Invalidate every valid entry satisfying [p]; returns the retired
    entries (so callers can release per-port credits). *)
let retire_if t p =
  let retired = ref [] in
  iter
    (fun e ->
      if p e then begin
        e.e_valid <- false;
        t.dead <- t.dead + 1;
        retired := e :: !retired
      end)
    t;
  compact t;
  List.rev !retired

(** Invalidate all valid entries with [e_seq >= seq] (pipeline squash). *)
let invalidate_from t ~seq = ignore (retire_if t (fun e -> e.e_seq >= seq))

(** Invalidate all valid entries of exactly [seq] (commit of an instance). *)
let retire_seq t ~seq = ignore (retire_if t (fun e -> e.e_seq = seq))

(* --- fault-injection hooks ---------------------------------------------- *)

(* buffer index of the [n]-th valid entry in arrival order *)
let nth_valid_idx t n =
  let found = ref None in
  let seen = ref 0 in
  (try
     for k = 0 to t.count - 1 do
       let i = (t.head + k) mod t.depth in
       match t.buf.(i) with
       | Some e when e.e_valid ->
           if !seen = n then begin
             found := Some i;
             raise Exit
           end;
           incr seen
       | _ -> ()
     done
   with Exit -> ());
  !found

(** The [n]-th valid entry in arrival order, if any. *)
let nth_valid t n =
  match nth_valid_idx t n with
  | Some i -> t.buf.(i)
  | None -> None

(** Model an SEU in the value field of the [slot]-th live entry: replace it
    with a copy whose value has [mask] xor-ed in.  Returns the {e original}
    entry, [None] when no such live entry exists. *)
let corrupt t ~slot ~mask =
  match nth_valid_idx t slot with
  | None -> None
  | Some i -> (
      match t.buf.(i) with
      | Some e ->
          t.buf.(i) <- Some { e with e_value = e.e_value lxor mask };
          Some e
      | None -> None)

(** Model an SEU in the valid bit of the [slot]-th live entry: the record
    vanishes as if never made.  Returns the lost entry so the caller can
    repair its own bookkeeping (or deliberately not, for a silent fault). *)
let drop t ~slot =
  match nth_valid_idx t slot with
  | None -> None
  | Some i -> (
      match t.buf.(i) with
      | Some e ->
          e.e_valid <- false;
          t.dead <- t.dead + 1;
          compact t;
          Some e
      | None -> None)
