(** The premature queue of Sec. IV-B / Fig. 4.

    A circular buffer with head and tail pointers.  The tail advances when
    a new premature operation is recorded; the head advances when the
    oldest operations are validated and committed.  Pipeline squashes mark
    entries invalid in place (a valid bit, as real hardware would), and the
    head simply skips them — invalidated slots still occupy capacity until
    the head passes, which is what makes a too-shallow queue stall the
    pipeline.

    Storage is four parallel int arrays (packed program-order key, packed
    port/kind/valid metadata, index, value) rather than an array of boxed
    records: the arbiter compares fields, never whole records, and a
    record per premature operation is minor-heap traffic on the busiest
    path of the whole simulator.  On top of the arrival-ordered buffer the
    queue maintains two {e kind views} — dense arrays of the slots holding
    valid loads and valid stores — mirroring the CAM banks a hardware
    arbiter would search: an arriving store only ever accuses loads
    (Eq. 3) and the load gate only ever looks for stores, so each check
    touches exactly the records of the opposite kind instead of the whole
    queue.  The boxed {!entry} record survives as a materialised view for
    tests, dumps and fault hooks. *)

type entry = {
  e_seq : int;  (** iteration (body-instance) number: [iter] of Eq. 1 *)
  e_pos : int;  (** ROM position within the group (same-iteration order) *)
  e_port : int;
  e_kind : Pv_memory.Portmap.op_kind;  (** [Op] of Eq. 1 *)
  e_index : int;  (** target address: [index] of Eq. 1 *)
  e_value : int;  (** loaded or to-be-stored value: [value] of Eq. 1 *)
  mutable e_valid : bool;
}

(* --- packed program-order key -------------------------------------------
   (seq, ROM position) in one word, so the arbiter's Eq. 2 comparison —
   strictly-older in (iteration, ROM position) lexicographic order — is a
   single integer compare.  Six position bits cover the 62-port arrival-
   bitmask limit the backend already enforces. *)

let pos_bits = 6
let max_pos = (1 lsl pos_bits) - 1
let[@inline] okey ~seq ~pos = (seq lsl pos_bits) lor pos
let[@inline] okey_seq k = k asr pos_bits
let[@inline] okey_pos k = k land max_pos

(* metadata word: bit 0 = valid, bit 1 = store?, remaining bits = port *)
let[@inline] m_valid m = m land 1 = 1
let[@inline] m_store m = m land 2 = 2
let[@inline] m_port m = m asr 2

let meta_of ~port ~kind =
  (port lsl 2)
  lor (match (kind : Pv_memory.Portmap.op_kind) with
      | Pv_memory.Portmap.OStore -> 2
      | Pv_memory.Portmap.OLoad -> 0)
  lor 1

type t = {
  depth : int;
  collapse : bool;
      (** reclaim interior retirees (valid-bit shift structure); without it
          only head-adjacent slots free — the naive Fig. 4 pointer queue,
          kept as an ablation that demonstrates fragmentation wedging *)
  key : int array;  (** slot -> packed (seq, pos); see {!okey} *)
  meta : int array;  (** slot -> packed (port, kind, valid); 0 when free *)
  index : int array;
  value : int array;
  vpos : int array;  (** slot -> position inside its kind view *)
  v_load : int array;  (** slots of valid load records, unordered *)
  v_store : int array;  (** slots of valid store records, unordered *)
  mutable n_load : int;
  mutable n_store : int;
  mutable head : int;
  mutable tail : int;
  mutable count : int;  (** occupied slots, including invalidated ones *)
  mutable dead : int;
      (** invalidated entries still occupying slots; lets {!compact} — which
          the backend calls every cycle — exit in O(1) on the common
          nothing-retired cycle *)
}

let create ?(collapse = true) depth =
  if depth <= 0 then invalid_arg "Premature_queue.create: depth must be > 0";
  {
    depth;
    collapse;
    key = Array.make depth 0;
    meta = Array.make depth 0;
    index = Array.make depth 0;
    value = Array.make depth 0;
    vpos = Array.make depth 0;
    v_load = Array.make depth 0;
    v_store = Array.make depth 0;
    n_load = 0;
    n_store = 0;
    head = 0;
    tail = 0;
    count = 0;
    dead = 0;
  }

let is_full t = t.count = t.depth
let is_empty t = t.count = 0
let occupancy t = t.count

(** Fig. 4 state: [`Normal] when the live region does not wrap, [`Wrapped]
    when it does, [`Full] when head = tail with data. *)
let state t =
  if is_full t then `Full
  else if is_empty t then `Empty
  else if t.head < t.tail then `Normal
  else `Wrapped

exception Full

(* kind-view bookkeeping: each valid slot lives in exactly one view, at
   [vpos]; removal swaps the last view member into the vacated position,
   so both directions are O(1) *)

let view_add t slot m =
  if m_store m then begin
    t.v_store.(t.n_store) <- slot;
    t.vpos.(slot) <- t.n_store;
    t.n_store <- t.n_store + 1
  end
  else begin
    t.v_load.(t.n_load) <- slot;
    t.vpos.(slot) <- t.n_load;
    t.n_load <- t.n_load + 1
  end

(* clear the valid bit of a currently valid slot and leave its view *)
let invalidate t slot =
  let m = t.meta.(slot) in
  t.meta.(slot) <- m land lnot 1;
  (if m_store m then begin
     let last = t.n_store - 1 in
     let p = t.vpos.(slot) in
     let moved = t.v_store.(last) in
     t.v_store.(p) <- moved;
     t.vpos.(moved) <- p;
     t.n_store <- last
   end
   else begin
     let last = t.n_load - 1 in
     let p = t.vpos.(slot) in
     let moved = t.v_load.(last) in
     t.v_load.(p) <- moved;
     t.vpos.(moved) <- p;
     t.n_load <- last
   end);
  t.dead <- t.dead + 1

(* admit at the tail; caller has checked capacity.  Returns the slot. *)
let admit t ~seq ~pos ~port ~kind ~index ~value =
  if pos land lnot max_pos <> 0 then
    invalid_arg "Premature_queue: ROM position exceeds the 6-bit pack field";
  let i = t.tail in
  t.key.(i) <- okey ~seq ~pos;
  let m = meta_of ~port ~kind in
  t.meta.(i) <- m;
  t.index.(i) <- index;
  t.value.(i) <- value;
  view_add t i m;
  t.tail <- (if t.tail + 1 = t.depth then 0 else t.tail + 1);
  t.count <- t.count + 1;
  i

(** Allocation-free admission: [false] when the queue is full, so callers
    turn a full queue into ordinary backpressure.  The production (backend)
    entry point — the boxed variants below exist for tests and demos. *)
let record t ~seq ~pos ~port ~kind ~index ~value =
  if is_full t then false
  else begin
    ignore (admit t ~seq ~pos ~port ~kind ~index ~value : int);
    true
  end

(* materialise the boxed view of a slot *)
let entry_of t i =
  let k = t.key.(i) and m = t.meta.(i) in
  {
    e_seq = okey_seq k;
    e_pos = okey_pos k;
    e_port = m_port m;
    e_kind =
      (if m_store m then Pv_memory.Portmap.OStore else Pv_memory.Portmap.OLoad);
    e_index = t.index.(i);
    e_value = t.value.(i);
    e_valid = m_valid m;
  }

let push_exn t ~seq ~pos ~port ~kind ~index ~value =
  if is_full t then raise Full;
  entry_of t (admit t ~seq ~pos ~port ~kind ~index ~value)

(** Non-raising [push_exn]: [None] when the queue is full. *)
let push_opt t ~seq ~pos ~port ~kind ~index ~value =
  if is_full t then None
  else Some (push_exn t ~seq ~pos ~port ~kind ~index ~value)

(** Reclaim invalidated slots.  Retirement follows program order while the
    queue is in arrival order, so freed slots can sit behind younger live
    entries; the queue collapses them (a shift/valid-bit structure, as load
    and store queues do) — without collapsing, fragmentation eventually
    wedges the oldest instance out of the queue and deadlocks the
    pipeline. *)
let compact t =
  if t.dead > 0 then begin
    (* the head pointer advances circularly past retired entries, as in
       Fig. 4 ... *)
    let continue = ref true in
    while !continue && t.count > 0 do
      if m_valid t.meta.(t.head) then continue := false
      else begin
        t.meta.(t.head) <- 0;
        t.head <- (if t.head + 1 = t.depth then 0 else t.head + 1);
        t.count <- t.count - 1;
        t.dead <- t.dead - 1
      end
    done;
    (* ... and interior gaps collapse towards the head.  Moving a slot
       drags its kind-view membership along (the view records the slot by
       number); survivors ahead of the first gap stay put, so the common
       path writes nothing. *)
    if t.collapse && t.dead > 0 then begin
      let wrap i = if i >= t.depth then i - t.depth else i in
      let r = ref t.head and w = ref t.head and live = ref 0 in
      for _ = 1 to t.count do
        let m = t.meta.(!r) in
        if m_valid m then begin
          if !w <> !r then begin
            t.key.(!w) <- t.key.(!r);
            t.meta.(!w) <- m;
            t.index.(!w) <- t.index.(!r);
            t.value.(!w) <- t.value.(!r);
            let p = t.vpos.(!r) in
            t.vpos.(!w) <- p;
            (if m_store m then t.v_store else t.v_load).(p) <- !w
          end;
          incr live;
          w := wrap (!w + 1)
        end;
        r := wrap (!r + 1)
      done;
      let n_clear = t.count - !live in
      let c = ref !w in
      for _ = 1 to n_clear do
        t.meta.(!c) <- 0;
        c := wrap (!c + 1)
      done;
      t.count <- !live;
      t.tail <- !w;
      t.dead <- 0
    end
  end

(** Iterate over valid entries from head to tail (arrival order).  Each
    visit materialises a boxed {!entry}, so this is for commit, dump and
    test paths; the arbiter reads the kind views and flat arrays
    directly. *)
let iter f t =
  let i = ref t.head in
  for _ = 1 to t.count do
    if m_valid t.meta.(!i) then f (entry_of t !i);
    incr i;
    if !i = t.depth then i := 0
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun e -> acc := f !acc e) t;
  !acc

let exists p t = fold (fun found e -> found || p e) false t
let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

(** Invalidate every valid entry satisfying [p]; returns the retired
    entries (so callers can release per-port credits). *)
let retire_if t p =
  let retired = ref [] in
  let i = ref t.head in
  for _ = 1 to t.count do
    if m_valid t.meta.(!i) then begin
      let e = entry_of t !i in
      if p e then begin
        e.e_valid <- false;
        invalidate t !i;
        retired := e :: !retired
      end
    end;
    incr i;
    if !i = t.depth then i := 0
  done;
  compact t;
  List.rev !retired

(* shared skeleton of the allocation-free retirement sweeps: walk ONE kind
   view backwards, invalidating matches.  Removal swap-fills the vacated
   position from the current view end — an index this backward walk has
   already visited and retained — so no member is skipped or revisited.
   The predicate is a mode selector rather than a closure: a
   [fun k m -> ...] capturing [seq] would put one minor-heap closure on
   every backend cycle (the compiler only unboxes non-escaping locals,
   not function arguments).  Retirees are reported in view order, not
   arrival order; [on_port] only releases per-port credits, which is
   order-insensitive.  Returns the retiree count without compacting —
   the public wrappers compact once. *)
let[@inline] sweep_view t v n0 ~seq ~mode ~on_port =
  let n = ref 0 in
  let i = ref (n0 - 1) in
  while !i >= 0 do
    let s = Array.unsafe_get v !i in
    let sq = okey_seq t.key.(s) in
    let hit =
      match mode with 0 -> sq < seq | 1 -> sq = seq | _ -> sq >= seq
    in
    if hit then begin
      on_port (m_port t.meta.(s));
      invalidate t s;
      incr n
    end;
    decr i
  done;
  !n

(** Retire every valid {e load} with [e_seq < seq] — the store-arrival
    frontier sweep, called only on cycles where the frontier moved or a
    late load arrived behind it.  Walks the load view only (the records
    actually scanned, which is what the profiler charges), not the whole
    occupied region.  [on_port] fires once per retiree so the caller can
    release per-port credits without a materialised list. *)
let retire_loads_below t ~seq ~on_port =
  let n = sweep_view t t.v_load t.n_load ~seq ~mode:0 ~on_port in
  if n > 0 then compact t;
  n

(** Retire all valid entries of exactly [seq] (commit of an instance),
    reporting ports to [on_port]. *)
let retire_eq t ~seq ~on_port =
  let n = sweep_view t t.v_load t.n_load ~seq ~mode:1 ~on_port in
  let n = n + sweep_view t t.v_store t.n_store ~seq ~mode:1 ~on_port in
  if n > 0 then compact t;
  n

(** Retire all valid entries with [e_seq >= seq] (pipeline squash),
    reporting ports to [on_port]. *)
let retire_ge t ~seq ~on_port =
  let n = sweep_view t t.v_load t.n_load ~seq ~mode:2 ~on_port in
  let n = n + sweep_view t t.v_store t.n_store ~seq ~mode:2 ~on_port in
  if n > 0 then compact t;
  n

(** Invalidate all valid entries with [e_seq >= seq] (pipeline squash). *)
let invalidate_from t ~seq = ignore (retire_ge t ~seq ~on_port:ignore : int)

(** Invalidate all valid entries of exactly [seq] (commit of an instance). *)
let retire_seq t ~seq = ignore (retire_eq t ~seq ~on_port:ignore : int)

(* --- fault-injection hooks ---------------------------------------------- *)

(* buffer index of the [n]-th valid entry in arrival order *)
let nth_valid_idx t n =
  let found = ref (-1) in
  let seen = ref 0 in
  (try
     for k = 0 to t.count - 1 do
       let i = (t.head + k) mod t.depth in
       if m_valid t.meta.(i) then begin
         if !seen = n then begin
           found := i;
           raise Exit
         end;
         incr seen
       end
     done
   with Exit -> ());
  !found

(** The [n]-th valid entry in arrival order, if any. *)
let nth_valid t n =
  match nth_valid_idx t n with -1 -> None | i -> Some (entry_of t i)

(** Model an SEU in the value field of the [slot]-th live entry: its value
    gets [mask] xor-ed in, in place.  Returns the {e original} entry,
    [None] when no such live entry exists. *)
let corrupt t ~slot ~mask =
  match nth_valid_idx t slot with
  | -1 -> None
  | i ->
      let e = entry_of t i in
      t.value.(i) <- t.value.(i) lxor mask;
      Some e

(** Model an SEU in the valid bit of the [slot]-th live entry: the record
    vanishes as if never made.  Returns the lost entry so the caller can
    repair its own bookkeeping (or deliberately not, for a silent fault). *)
let drop t ~slot =
  match nth_valid_idx t slot with
  | -1 -> None
  | i ->
      let e = entry_of t i in
      e.e_valid <- false;
      invalidate t i;
      compact t;
      Some e
