(** Overlapping ambiguous pairs and dimension reduction (Sec. V-B,
    Eqs. 11–12).

    When an operation belongs to [n] pairs, naively replicating PreVV per
    pair blows complexity up exponentially (Eq. 11) and collapses the
    achievable frequency (Eq. 12).  The reduction observes that inside a
    chain of operations with mutual hazards, consecutive operations of the
    same type never form a pair, so a single shared instance per ambiguous
    array with one representative per same-type run suffices. *)

(** Eq. 11: complexity of naive replication for an [n]-fold overlap. *)
let naive_complexity ~n ~com1 = (2.0 ** float_of_int n) *. com1

(** Eq. 12: frequency collapse of naive replication.  The [2^n]-replicated
    validation network of Eq. 11 deepens the combinational checking path by
    one comparator level per overlap degree, so the achievable frequency
    divides by the depth of that tree: [frq_n = frq1 / log2(2^n) = frq1/n].
    Equals [frq1] at [n = 1] and decreases monotonically with [n]. *)
let naive_frequency ~n ~frq1 =
  if n < 1 then invalid_arg "Overlap.naive_frequency: n must be >= 1";
  frq1 /. (log (2.0 ** float_of_int n) /. log 2.0)

(** Complexity after dimension reduction: a single instance whose queue is
    shared, i.e. linear in the number of member operations. *)
let reduced_complexity ~n ~com1 = float_of_int (max 1 n) *. com1

(** Collapse consecutive same-kind operations to one representative —
    "validating only one operation is sufficient … within each consecutive
    type".  Input and output are in program order. *)
let reduce_runs (ops : (Pv_memory.Portmap.op_kind * 'a) list) :
    (Pv_memory.Portmap.op_kind * 'a) list =
  let rec go acc = function
    | [] -> List.rev acc
    | (k, x) :: rest -> (
        match acc with
        | (k', _) :: _ when k' = k -> go acc rest
        | _ -> go ((k, x) :: acc) rest)
  in
  go [] ops

(** Number of ambiguous pairs formed by an op sequence before reduction:
    every (load, store) or (store, load) adjacency across the sequence —
    the quadratic pairing of Def. 1. *)
let naive_pairs ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let count = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if fst arr.(a) <> fst arr.(b) then incr count
    done
  done;
  !count

(** Pairs after reduction: adjacencies between representative runs. *)
let reduced_pairs ops = max 0 (List.length (reduce_runs ops) - 1)
