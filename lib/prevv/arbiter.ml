(** The arbiter's validation logic (Sec. III, Eqs. 2–5, and Sec. IV-C).

    A newly arrived premature operation is compared against every valid
    entry of the premature queue.  The paper states the conditions for the
    case where the new arrival is the {e older} operation (Eq. 2:
    [iter_m < iter_n]) — a store arriving to find that a younger load
    already consumed a different value.  We implement exactly that check,
    plus the same-iteration tie-break through the ROM order (end of
    Sec. III), and complement it with a {e gating} rule for arriving loads
    (an older same-address store still sitting in the queue makes the load
    wait, or forwards within the same iteration), which closes the
    symmetric race without any additional search hardware — the gate reuses
    the arbiter's comparators.

    Eq. 3 (opposite type) is resolved structurally: the queue keeps dense
    views of its valid loads and valid stores (the CAM banks), so
    {!store_violation} scans only load records and {!load_gate} only store
    records.  Eq. 2 collapses to one integer compare on the queue's packed
    [(seq, pos)] keys.  The [_ref] variants below fold over the whole
    queue exactly as the paper's prose describes — the executable
    specification the property tests hold the fast paths to. *)

open Pv_memory.Portmap
module PQ = Premature_queue

(** Program-order comparison: (seq, ROM position). *)
let older (s1, p1) (s2, p2) = s1 < s2 || (s1 = s2 && p1 < p2)

(** Decision tallies, updated by [store_violation]/[load_gate] when the
    caller passes a record — the metric source for the arbiter's tracks in
    the observability layer.  All fields are monotone counters. *)
type stats = {
  mutable checks : int;  (** store_violation evaluations *)
  mutable violations : int;  (** checks that found an erring load *)
  mutable gate_clear : int;
  mutable gate_forward : int;
  mutable gate_wait : int;
}

let fresh_stats () =
  { checks = 0; violations = 0; gate_clear = 0; gate_forward = 0; gate_wait = 0 }

let note_check stats verdict =
  match stats with
  | Some s ->
      s.checks <- s.checks + 1;
      if verdict <> None then s.violations <- s.violations + 1
  | None -> ()

(** Eqs. 2–5: a store [P_m] arriving at the arbiter detects an erroneous
    premature load [C_n] if some valid queue entry is younger (Eq. 2, with
    the ROM tie-break for equal iterations), of opposite type (Eq. 3), on
    the same index (Eq. 4) and with a different value (Eq. 5).  Returns the
    earliest erring iteration, i.e. the [iter_Err] the arbiter copies back
    to the squash mux.

    [value_validation:false] disables Eq. 5 (ablation): any ordering
    conflict squashes even when the store rewrites the value the load
    already observed — address-only disambiguation, the behaviour PreVV's
    value check improves on. *)
let store_violation ?(value_validation = true) ?stats (q : PQ.t) ~seq ~pos
    ~index ~value : int option =
  let skey = PQ.okey ~seq ~pos in
  (* min erring iteration over the load view; [max_int] = none found.  A
     plain downto loop over an unboxed local — a [let rec scan] here would
     allocate its closure on every store arrival *)
  let worst = ref max_int in
  for i = q.PQ.n_load - 1 downto 0 do
    let s = Array.unsafe_get q.PQ.v_load i in
    if
      Array.unsafe_get q.PQ.key s > skey
      && Array.unsafe_get q.PQ.index s = index
      && ((not value_validation) || Array.unsafe_get q.PQ.value s <> value)
    then worst := min !worst (PQ.okey_seq (Array.unsafe_get q.PQ.key s))
  done;
  let w = !worst in
  let verdict = if w = max_int then None else Some w in
  note_check stats verdict;
  verdict

type load_gate =
  | Clear  (** no older store to this address is pending: read memory *)
  | Forward of int  (** same-iteration earlier store: take its value *)
  | Wait  (** an older uncommitted store targets this address: stall *)

let note_gate stats verdict =
  match stats with
  | Some s -> (
      match verdict with
      | Clear -> s.gate_clear <- s.gate_clear + 1
      | Forward _ -> s.gate_forward <- s.gate_forward + 1
      | Wait -> s.gate_wait <- s.gate_wait + 1)
  | None -> ()

(** Gating of an arriving premature load against the queue.  [Wait] is the
    no-speculation path taken after replays (the older store is already
    queued, so speculating again would deterministically squash again);
    [Forward] resolves an intra-iteration store→load dependence dictated
    by the ROM order. *)
let load_gate ?stats (q : PQ.t) ~seq ~pos ~index : load_gate =
  let lkey = PQ.okey ~seq ~pos in
  (* among the qualifying stores, forwarding must take the YOUNGEST one
     still older than the load — the last write the load may observe in
     program order (the max packed key below [lkey]); view order carries
     no meaning, so the whole store view is scanned with early index
     rejection (an unboxed-local loop: this runs on every premature
     load, so it may not allocate) *)
  let best = ref (-1) in
  for i = q.PQ.n_store - 1 downto 0 do
    let s = Array.unsafe_get q.PQ.v_store i in
    let k = Array.unsafe_get q.PQ.key s in
    if
      k < lkey
      && Array.unsafe_get q.PQ.index s = index
      && (!best < 0 || k > Array.unsafe_get q.PQ.key !best)
    then best := s
  done;
  let b = !best in
  let verdict =
    if b < 0 then Clear
    else if PQ.okey_seq q.PQ.key.(b) = seq then Forward q.PQ.value.(b)
    else Wait
  in
  note_gate stats verdict;
  verdict

(** {1 Reference implementations}

    Whole-queue folds over materialised entries, shaped exactly like the
    paper's prose (and this module's pre-CAM revision).  The property
    tests check the view-scanning fast paths above against these on random
    queue contents; they also serve fault-analysis scripts that want the
    obviously-correct form. *)

let store_violation_ref ?(value_validation = true) ?stats q ~seq ~pos ~index
    ~value : int option =
  let verdict =
    PQ.fold
      (fun worst (e : PQ.entry) ->
        if
          e.e_kind = OLoad
          && older (seq, pos) (e.e_seq, e.e_pos)
          && e.e_index = index
          && ((not value_validation) || e.e_value <> value)
        then
          match worst with
          | Some w -> Some (min w e.e_seq)
          | None -> Some e.e_seq
        else worst)
      None q
  in
  note_check stats verdict;
  verdict

let load_gate_ref ?stats q ~seq ~pos ~index : load_gate =
  let best =
    PQ.fold
      (fun acc (e : PQ.entry) ->
        if
          e.e_kind = OStore && e.e_index = index
          && older (e.e_seq, e.e_pos) (seq, pos)
        then
          match acc with
          | Some (bs, bp, _) when older (bs, bp) (e.e_seq, e.e_pos) ->
              (* the candidate is the later write: it supersedes *)
              Some (e.e_seq, e.e_pos, e.e_value)
          | None -> Some (e.e_seq, e.e_pos, e.e_value)
          | some -> some
        else acc)
      None q
  in
  let verdict =
    match best with
    | None -> Clear
    | Some (bs, _, v) -> if bs = seq then Forward v else Wait
  in
  note_gate stats verdict;
  verdict

(** {1 Incremental validation watermark}

    The store-arrival frontier sweep (backend [validate_loads]) retires
    every load record of an iteration the frontier has passed.  Scanning
    the queue for them every cycle is wasted work on the many cycles where
    nothing changed; the watermark records the frontier value the last
    sweep ran at, so a sweep is due only when the frontier moved past it
    — or when a {e late} load arrived behind the current frontier
    ([dirty]), or after a squash rewound the frontier ({!wm_rewind} drags
    the watermark down with it; without the rewind, loads admitted between
    the squash and the frontier's re-advance would never be swept). *)

type watermark = {
  mutable wm_saf : int;  (** frontier value of the last completed sweep *)
  mutable wm_dirty : bool;  (** a load arrived behind the swept frontier *)
}

let fresh_watermark () = { wm_saf = 0; wm_dirty = false }

(** Note an admitted load: arriving behind the already-swept frontier
    makes it immediately retirable, which a pure frontier-compare would
    miss. *)
let wm_note_load wm ~seq ~saf = if seq < saf then wm.wm_dirty <- true

(** Squash (or record-drop fault) rewound the frontier to [saf]. *)
let wm_rewind wm ~saf = if saf < wm.wm_saf then wm.wm_saf <- saf

(** Is a retirement sweep due at frontier [saf]? *)
let wm_pending wm ~saf = wm.wm_dirty || saf > wm.wm_saf

(** A sweep at frontier [saf] completed. *)
let wm_mark wm ~saf =
  wm.wm_saf <- saf;
  wm.wm_dirty <- false
