(** The arbiter's validation logic (Sec. III, Eqs. 2–5, and Sec. IV-C).

    A newly arrived premature operation is compared against every valid
    entry of the premature queue.  The paper states the conditions for the
    case where the new arrival is the {e older} operation (Eq. 2:
    [iter_m < iter_n]) — a store arriving to find that a younger load
    already consumed a different value.  We implement exactly that check,
    plus the same-iteration tie-break through the ROM order (end of
    Sec. III), and complement it with a {e gating} rule for arriving loads
    (an older same-address store still sitting in the queue makes the load
    wait, or forwards within the same iteration), which closes the
    symmetric race without any additional search hardware — the gate reuses
    the arbiter's comparators. *)

open Pv_memory.Portmap

(** Program-order comparison: (seq, ROM position). *)
let older (s1, p1) (s2, p2) = s1 < s2 || (s1 = s2 && p1 < p2)

(** Decision tallies, updated by [store_violation]/[load_gate] when the
    caller passes a record — the metric source for the arbiter's tracks in
    the observability layer.  All fields are monotone counters. *)
type stats = {
  mutable checks : int;  (** store_violation evaluations *)
  mutable violations : int;  (** checks that found an erring load *)
  mutable gate_clear : int;
  mutable gate_forward : int;
  mutable gate_wait : int;
}

let fresh_stats () =
  { checks = 0; violations = 0; gate_clear = 0; gate_forward = 0; gate_wait = 0 }

(** Eqs. 2–5: a store [P_m] arriving at the arbiter detects an erroneous
    premature load [C_n] if some valid queue entry is younger (Eq. 2, with
    the ROM tie-break for equal iterations), of opposite type (Eq. 3), on
    the same index (Eq. 4) and with a different value (Eq. 5).  Returns the
    earliest erring iteration, i.e. the [iter_Err] the arbiter copies back
    to the squash mux.

    [value_validation:false] disables Eq. 5 (ablation): any ordering
    conflict squashes even when the store rewrites the value the load
    already observed — address-only disambiguation, the behaviour PreVV's
    value check improves on. *)
let store_violation ?(value_validation = true) ?stats q ~seq ~pos ~index ~value :
    int option =
  let verdict =
    Premature_queue.fold
      (fun worst (e : Premature_queue.entry) ->
        if
          e.e_kind = OLoad
          && older (seq, pos) (e.e_seq, e.e_pos)
          && e.e_index = index
          && ((not value_validation) || e.e_value <> value)
        then
          match worst with
          | Some w -> Some (min w e.e_seq)
          | None -> Some e.e_seq
        else worst)
      None q
  in
  (match stats with
  | Some s ->
      s.checks <- s.checks + 1;
      if verdict <> None then s.violations <- s.violations + 1
  | None -> ());
  verdict

type load_gate =
  | Clear  (** no older store to this address is pending: read memory *)
  | Forward of int  (** same-iteration earlier store: take its value *)
  | Wait  (** an older uncommitted store targets this address: stall *)

(** Gating of an arriving premature load against the queue.  [Wait] is the
    no-speculation path taken after replays (the older store is already
    queued, so speculating again would deterministically squash again);
    [Forward] resolves an intra-iteration store→load dependence dictated
    by the ROM order. *)
let load_gate ?stats q ~seq ~pos ~index : load_gate =
  (* among the qualifying stores, forwarding must take the YOUNGEST one
     still older than the load — the last write the load may observe in
     program order; queue arrival order carries no meaning here *)
  let best =
    Premature_queue.fold
      (fun acc (e : Premature_queue.entry) ->
        if
          e.e_kind = OStore && e.e_index = index
          && older (e.e_seq, e.e_pos) (seq, pos)
        then
          match acc with
          | Some (bs, bp, _) when older (bs, bp) (e.e_seq, e.e_pos) ->
              (* the candidate is the later write: it supersedes *)
              Some (e.e_seq, e.e_pos, e.e_value)
          | None -> Some (e.e_seq, e.e_pos, e.e_value)
          | some -> some
        else acc)
      None q
  in
  let verdict =
    match best with
    | None -> Clear
    | Some (bs, _, v) -> if bs = seq then Forward v else Wait
  in
  (match stats with
  | Some s -> (
      match verdict with
      | Clear -> s.gate_clear <- s.gate_clear + 1
      | Forward _ -> s.gate_forward <- s.gate_forward + 1
      | Wait -> s.gate_wait <- s.gate_wait + 1)
  | None -> ());
  verdict
