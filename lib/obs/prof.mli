(** Cycle-attribution profiler for the data-oriented simulator core.

    When enabled, every node evaluation and every unit of backend work is
    bucketed into a small set of {e phases} — the circuit sweep itself plus
    the backend inner loops that ROADMAP item 1 says now dominate streaming
    kernels (the PreVV arbiter's premature-queue scan, its value-validation
    pass, the LSQ CAM search, and memory service proper).  Per node, the
    profiler additionally tallies evaluations and {e stall reasons} (the
    same classification the deadlock post-mortem uses), so a hot node's
    time can be split into fired-vs-blocked and the blocked part explained.

    Cost model: the disabled profiler ({!null}) reduces every
    instrumentation site to one branch on {!enabled} and is exercised by
    the zero-allocation contract in test/test_sim_perf.ml; the enabled
    profiler only increments preallocated flat [int array]s — it never
    allocates on the per-cycle path and never perturbs simulated behaviour
    (cycles, evals, fires are bit-identical with it on or off).

    Output: a per-phase cycle budget ({!phase_totals} — the counts sum to
    {!total} by construction), top-N hot-node tables ({!hot_nodes}, {!pp}),
    a JSON document ({!to_json}) and folded-stack lines ({!folded},
    [kernel;phase;node opcode count]) directly renderable as a flamegraph
    by the usual [flamegraph.pl] / speedscope tooling. *)

type t

(** The disabled profiler: every operation is a no-op, {!enabled} is
    false. *)
val null : t

(** A live profiler.  Call {!set_nodes} before the first {!node_eval}. *)
val create : unit -> t

val enabled : t -> bool

(** {1 Phases}

    Phases are small dense ints so the hot increment is one array write. *)

val phase_circuit_sweep : int
(** one unit per node evaluation (either engine's dispatch loop) *)

val phase_arbiter_scan : int
(** one unit per premature-queue record scanned by the PreVV arbiter's
    load gate (the per-operation queue walk) *)

val phase_pq_validate : int
(** one unit per queue record scanned by store-arrival violation checking
    (premature value validation, Eqs. 2–5) *)

val phase_lsq_cam : int
(** one unit per LSQ entry searched by the CAM loops (older-store scan on
    load issue, WAR guard on store commit) *)

val phase_mem_service : int
(** one unit per load/store actually serviced against memory *)

val n_phases : int

(** Stable lower-case name, e.g. ["arbiter_scan"].
    @raise Invalid_argument outside [0, n_phases). *)
val phase_name : int -> string

(** {1 Stall reasons} (mirror of the post-mortem classification) *)

val reason_starved : int  (** a wired input is empty *)

val reason_backpressured : int  (** an output register is occupied *)

val reason_refused : int  (** inputs ready but the memory backend refused *)

val reason_frozen : int  (** held by an injected fault stall *)

val reason_internal : int  (** work stuck inside a FU pipe / buffer ring *)

val reason_other : int
val n_reasons : int
val reason_name : int -> string

(** {1 Recording} (hot path — no allocation) *)

(** Size the per-node tables: one [(opcode, label)] pair per dense node
    id.  The simulator calls this once at build time. *)
val set_nodes : t -> (string * string) array -> unit

(** Record one evaluation of node [nid]: bumps the node's eval counter and
    the [circuit_sweep] phase. *)
val node_eval : t -> int -> unit

(** Record [n] units of backend work in [phase]. *)
val add : t -> phase:int -> int -> unit

(** Record that node [nid] was evaluated but did not fire, for [reason]. *)
val stall : t -> int -> reason:int -> unit

(** {1 Reports} *)

(** Sum over all phases — the run's total attributed work. *)
val total : t -> int

(** Per-phase budget, indexed by phase id (a copy).  Sums to {!total}. *)
val phase_totals : t -> int array

type hot = {
  nid : int;
  opcode : string;
  label : string;
  evals : int;
  stalls : int array;  (** indexed by stall reason *)
}

(** The [top] nodes by eval count, descending (ties broken by node id, so
    the table is deterministic). *)
val hot_nodes : t -> top:int -> hot list

(** Folded-stack lines, one per non-zero bucket:
    [kernel;circuit_sweep;n<ID> <OPCODE> <COUNT>] for node evals and
    [kernel;<PHASE> <COUNT>] for backend phases.  The summed counts equal
    {!total}. *)
val folded : t -> kernel:string -> string

(** Parse folded lines back into [(stack frames, count)] rows — the
    round-trip check for the folded emitter.  Ill-formed lines are an
    [Error]. *)
val parse_folded : string -> ((string list * int) list, string) result

(** Full report document: kernel, total, per-phase counts and shares,
    top-N hot nodes with stall breakdowns. *)
val to_json : ?top:int -> t -> kernel:string -> Json.t

(** Human-readable per-phase budget + top-N hot-node table. *)
val pp : ?top:int -> Format.formatter -> t -> unit
