(* Cycle-attribution profiler: flat preallocated counters so the enabled
   hot path is an array increment and the disabled one a single branch on
   [enabled] at each instrumentation site (the simulator additionally
   caches the flag, so the per-eval cost when off is one load + branch). *)

let phase_circuit_sweep = 0
let phase_arbiter_scan = 1
let phase_pq_validate = 2
let phase_lsq_cam = 3
let phase_mem_service = 4
let n_phases = 5

let phase_name = function
  | 0 -> "circuit_sweep"
  | 1 -> "arbiter_scan"
  | 2 -> "pq_validate"
  | 3 -> "lsq_cam"
  | 4 -> "mem_service"
  | p -> invalid_arg (Printf.sprintf "Prof.phase_name: %d" p)

let reason_starved = 0
let reason_backpressured = 1
let reason_refused = 2
let reason_frozen = 3
let reason_internal = 4
let reason_other = 5
let n_reasons = 6

let reason_name = function
  | 0 -> "starved"
  | 1 -> "backpressured"
  | 2 -> "refused"
  | 3 -> "frozen"
  | 4 -> "internal"
  | 5 -> "other"
  | r -> invalid_arg (Printf.sprintf "Prof.reason_name: %d" r)

type t = {
  enabled : bool;
  phases : int array;  (* n_phases *)
  mutable node_evals : int array;  (* per dense node id *)
  mutable node_stalls : int array;  (* node id * n_reasons, flattened *)
  mutable node_meta : (string * string) array;  (* (opcode, label) *)
}

let null =
  {
    enabled = false;
    phases = [||];
    node_evals = [||];
    node_stalls = [||];
    node_meta = [||];
  }

let create () =
  {
    enabled = true;
    phases = Array.make n_phases 0;
    node_evals = [||];
    node_stalls = [||];
    node_meta = [||];
  }

let enabled t = t.enabled

let set_nodes t meta =
  if t.enabled then begin
    let n = Array.length meta in
    t.node_meta <- Array.copy meta;
    t.node_evals <- Array.make n 0;
    t.node_stalls <- Array.make (n * n_reasons) 0
  end

let node_eval t nid =
  if t.enabled then begin
    t.node_evals.(nid) <- t.node_evals.(nid) + 1;
    t.phases.(phase_circuit_sweep) <- t.phases.(phase_circuit_sweep) + 1
  end

let add t ~phase n = if t.enabled then t.phases.(phase) <- t.phases.(phase) + n

let stall t nid ~reason =
  if t.enabled then begin
    let i = (nid * n_reasons) + reason in
    t.node_stalls.(i) <- t.node_stalls.(i) + 1
  end

(* --- reports ------------------------------------------------------- *)

let total t = Array.fold_left ( + ) 0 t.phases
let phase_totals t = Array.copy t.phases

type hot = {
  nid : int;
  opcode : string;
  label : string;
  evals : int;
  stalls : int array;
}

let hot_of t nid =
  let opcode, label =
    if nid < Array.length t.node_meta then t.node_meta.(nid) else ("?", "?")
  in
  {
    nid;
    opcode;
    label;
    evals = t.node_evals.(nid);
    stalls = Array.sub t.node_stalls (nid * n_reasons) n_reasons;
  }

let hot_nodes t ~top =
  let n = Array.length t.node_evals in
  let ids = List.init n (fun i -> i) in
  let ids =
    List.sort
      (fun a b ->
        match compare t.node_evals.(b) t.node_evals.(a) with
        | 0 -> compare a b
        | c -> c)
      ids
  in
  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> hot_of t x :: take (k - 1) rest
  in
  take top ids

let folded t ~kernel =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun nid evals ->
      if evals > 0 then begin
        let opcode, _ = t.node_meta.(nid) in
        Buffer.add_string buf
          (Printf.sprintf "%s;%s;n%d %s %d\n" kernel
             (phase_name phase_circuit_sweep)
             nid opcode evals)
      end)
    t.node_evals;
  for p = 0 to n_phases - 1 do
    if p <> phase_circuit_sweep && t.phases.(p) > 0 then
      Buffer.add_string buf
        (Printf.sprintf "%s;%s %d\n" kernel (phase_name p) t.phases.(p))
  done;
  Buffer.contents buf

let parse_folded s =
  let parse_line ln =
    match String.rindex_opt ln ' ' with
    | None -> Error (Printf.sprintf "no count in folded line %S" ln)
    | Some i -> (
        let stack = String.sub ln 0 i in
        let count = String.sub ln (i + 1) (String.length ln - i - 1) in
        match int_of_string_opt count with
        | None -> Error (Printf.sprintf "bad count in folded line %S" ln)
        | Some c when c < 0 ->
            Error (Printf.sprintf "negative count in folded line %S" ln)
        | Some c ->
            let frames = String.split_on_char ';' stack in
            if List.exists (fun f -> String.trim f = "") frames then
              Error (Printf.sprintf "empty frame in folded line %S" ln)
            else Ok (frames, c))
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ln :: rest -> (
        match parse_line ln with
        | Ok row -> go (row :: acc) rest
        | Error _ as e -> e)
  in
  go [] lines

let stalls_to_json stalls =
  Json.Obj
    (List.concat
       (List.init n_reasons (fun r ->
            if stalls.(r) > 0 then [ (reason_name r, Json.Int stalls.(r)) ]
            else [])))

let to_json ?(top = 10) t ~kernel =
  let tot = total t in
  let share p =
    if tot = 0 then 0.0 else float_of_int t.phases.(p) /. float_of_int tot
  in
  Json.Obj
    [
      ("kernel", Json.Str kernel);
      ("total", Json.Int tot);
      ( "phases",
        Json.Obj
          (List.init n_phases (fun p ->
               (phase_name p, Json.Int t.phases.(p)))) );
      ( "phase_share",
        Json.Obj
          (List.init n_phases (fun p -> (phase_name p, Json.Float (share p))))
      );
      ( "hot_nodes",
        Json.List
          (List.map
             (fun h ->
               Json.Obj
                 [
                   ("node", Json.Int h.nid);
                   ("opcode", Json.Str h.opcode);
                   ("label", Json.Str h.label);
                   ("evals", Json.Int h.evals);
                   ("stalls", stalls_to_json h.stalls);
                 ])
             (hot_nodes t ~top)) );
    ]

let pp ?(top = 10) ppf t =
  let tot = total t in
  Format.fprintf ppf "per-phase budget (total %d units):@." tot;
  for p = 0 to n_phases - 1 do
    let c = t.phases.(p) in
    let pct = if tot = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int tot in
    Format.fprintf ppf "  %-14s %10d  %5.1f%%@." (phase_name p) c pct
  done;
  let hot = hot_nodes t ~top in
  if hot <> [] then begin
    Format.fprintf ppf "hot nodes (top %d by evals):@." top;
    Format.fprintf ppf "  %4s %-8s %-20s %10s  stalls@." "node" "opcode"
      "label" "evals";
    List.iter
      (fun h ->
        let stalls =
          String.concat " "
            (List.concat
               (List.init n_reasons (fun r ->
                    if h.stalls.(r) > 0 then
                      [ Printf.sprintf "%s:%d" (reason_name r) h.stalls.(r) ]
                    else [])))
        in
        Format.fprintf ppf "  %4d %-8s %-20s %10d  %s@." h.nid h.opcode
          h.label h.evals stalls)
      hot
  end
