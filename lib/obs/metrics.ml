type hist = {
  h_bounds : int array;
  h_buckets : int array; (* |h_bounds| + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type instrument =
  | Counter of int ref
  | Gauge of int ref
  | Hist of hist

type t = (string, instrument) Hashtbl.t

let create () : t = Hashtbl.create 32

let default_bounds =
  [| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 1024; 4096; 16384; 65536 |]

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let wrong_kind name found want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name found) want)

let counter_ref t name =
  match Hashtbl.find_opt t name with
  | Some (Counter r) -> r
  | Some other -> wrong_kind name other "counter"
  | None ->
    let r = ref 0 in
    Hashtbl.add t name (Counter r);
    r

let gauge_ref t name =
  match Hashtbl.find_opt t name with
  | Some (Gauge r) -> r
  | Some other -> wrong_kind name other "gauge"
  | None ->
    let r = ref 0 in
    Hashtbl.add t name (Gauge r);
    r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  let r = counter_ref t name in
  r := !r + n

let set_gauge t name v = gauge_ref t name := v

let set_gauge_max t name v =
  let r = gauge_ref t name in
  if v > !r then r := v

let fresh_hist bounds =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics: histogram bounds must be strictly increasing")
    bounds;
  {
    h_bounds = Array.copy bounds;
    h_buckets = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0;
    h_min = 0;
    h_max = 0;
  }

let bucket_of bounds v =
  (* index of first bound >= v, or |bounds| (overflow) *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if bounds.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe t ?(bounds = default_bounds) name v =
  let h =
    match Hashtbl.find_opt t name with
    | Some (Hist h) -> h
    | Some other -> wrong_kind name other "histogram"
    | None ->
      let h = fresh_hist bounds in
      Hashtbl.add t name (Hist h);
      h
  in
  let b = bucket_of h.h_bounds v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  if h.h_count = 0 then (
    h.h_min <- v;
    h.h_max <- v)
  else (
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v);
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

let counter_value t name =
  match Hashtbl.find_opt t name with
  | Some (Counter r) -> !r
  | Some other -> wrong_kind name other "counter"
  | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t name with
  | Some (Gauge r) -> !r
  | Some other -> wrong_kind name other "gauge"
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snap = {
  bounds : int array;
  buckets : int array;
  count : int;
  sum : int;
  min_v : int;
  max_v : int;
}

type snap_entry = S_counter of int | S_gauge of int | S_hist of hist_snap

type snapshot = (string * snap_entry) list

let snap_instrument = function
  | Counter r -> S_counter !r
  | Gauge r -> S_gauge !r
  | Hist h ->
    S_hist
      {
        bounds = Array.copy h.h_bounds;
        buckets = Array.copy h.h_buckets;
        count = h.h_count;
        sum = h.h_sum;
        min_v = h.h_min;
        max_v = h.h_max;
      }

let snapshot t =
  Hashtbl.fold (fun name ins acc -> (name, snap_instrument ins) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let absorb t snap =
  List.iter
    (fun (name, entry) ->
      match entry with
      | S_counter n -> add t name n
      | S_gauge v -> set_gauge_max t name v
      | S_hist hs -> (
        match Hashtbl.find_opt t name with
        | None ->
          let h = fresh_hist hs.bounds in
          Array.blit hs.buckets 0 h.h_buckets 0 (Array.length hs.buckets);
          h.h_count <- hs.count;
          h.h_sum <- hs.sum;
          h.h_min <- hs.min_v;
          h.h_max <- hs.max_v;
          Hashtbl.add t name (Hist h)
        | Some (Hist h) ->
          if h.h_bounds <> hs.bounds then
            invalid_arg
              (Printf.sprintf "Metrics.absorb: histogram %S bounds differ" name);
          Array.iteri
            (fun i c -> h.h_buckets.(i) <- h.h_buckets.(i) + c)
            hs.buckets;
          if hs.count > 0 then (
            if h.h_count = 0 then (
              h.h_min <- hs.min_v;
              h.h_max <- hs.max_v)
            else (
              if hs.min_v < h.h_min then h.h_min <- hs.min_v;
              if hs.max_v > h.h_max then h.h_max <- hs.max_v));
          h.h_count <- h.h_count + hs.count;
          h.h_sum <- h.h_sum + hs.sum
        | Some other -> wrong_kind name other "histogram"))
    snap

let merge_snapshots a b =
  let t = create () in
  absorb t a;
  absorb t b;
  snapshot t

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let int_array_json a = Json.List (Array.to_list a |> List.map (fun i -> Json.Int i))

let entry_to_json = function
  | S_counter n -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int n) ]
  | S_gauge v -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Int v) ]
  | S_hist h ->
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("bounds", int_array_json h.bounds);
        ("buckets", int_array_json h.buckets);
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("min", Json.Int h.min_v);
        ("max", Json.Int h.max_v);
      ]

let snapshot_to_json snap =
  Json.Obj (List.map (fun (name, e) -> (name, entry_to_json e)) snap)

let to_json t = snapshot_to_json (snapshot t)
