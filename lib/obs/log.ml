(* Structured LDJSON logger.  Lines are rendered via Json so escaping is
   exactly the library's, and each event is one sink call (no partial
   lines even when several domains share a sink that appends atomically,
   e.g. stderr). *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type t = {
  on : bool;
  min_rank : int;
  now_ms : unit -> float;
  sink : string -> unit;
  rid : string option;
}

let null =
  {
    on = false;
    min_rank = max_int;
    now_ms = (fun () -> 0.0);
    sink = ignore;
    rid = None;
  }

let create ?(level = Info) ?now_ms sink =
  let now_ms =
    match now_ms with
    | Some f -> f
    | None ->
        (* deterministic fallback: a per-logger event counter, so lines
           are ordered without pulling a clock dependency into pv_obs *)
        let n = ref 0 in
        fun () ->
          incr n;
          float_of_int !n
  in
  { on = true; min_rank = level_rank level; now_ms; sink; rid = None }

let enabled t level = t.on && level_rank level >= t.min_rank
let with_rid t rid = if t.on then { t with rid = Some rid } else t

let msg t level event ~fields =
  if enabled t level then begin
    let base =
      [
        ("ts_ms", Json.Float (t.now_ms ()));
        ("level", Json.Str (level_name level));
        ("msg", Json.Str event);
      ]
    in
    let base =
      match t.rid with
      | None -> base
      | Some rid -> base @ [ ("rid", Json.Str rid) ]
    in
    t.sink (Json.to_string (Json.Obj (base @ fields)) ^ "\n")
  end

let debug t event ~fields = msg t Debug event ~fields
let info t event ~fields = msg t Info event ~fields
let warn t event ~fields = msg t Warn event ~fields
let error t event ~fields = msg t Error event ~fields
