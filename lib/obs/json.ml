type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — recursive descent over a string with a mutable cursor     *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.s in
  while
    cur.pos < n
    && (match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then (
    cur.pos <- cur.pos + n;
    value)
  else fail cur (Printf.sprintf "expected '%s'" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'; advance cur
      | Some '\\' -> Buffer.add_char buf '\\'; advance cur
      | Some '/' -> Buffer.add_char buf '/'; advance cur
      | Some 'n' -> Buffer.add_char buf '\n'; advance cur
      | Some 'r' -> Buffer.add_char buf '\r'; advance cur
      | Some 't' -> Buffer.add_char buf '\t'; advance cur
      | Some 'b' -> Buffer.add_char buf '\b'; advance cur
      | Some 'f' -> Buffer.add_char buf '\012'; advance cur
      | Some 'u' ->
        advance cur;
        if cur.pos + 4 > String.length cur.s then fail cur "bad \\u escape";
        let hex = String.sub cur.s cur.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail cur "bad \\u escape"
        in
        cur.pos <- cur.pos + 4;
        (* Encode as UTF-8; surrogate pairs are not recombined — the
           emitter only ever writes \u00xx control escapes. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then (
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
        else (
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
      | _ -> fail cur "bad escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.s in
  let is_float = ref false in
  if peek cur = Some '-' then advance cur;
  while
    cur.pos < n
    &&
    match cur.s.[cur.pos] with
    | '0' .. '9' -> true
    | '.' | 'e' | 'E' | '+' | '-' ->
      is_float := true;
      true
    | _ -> false
  do
    advance cur
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  if text = "" || text = "-" then fail cur "expected number";
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then (
      advance cur;
      List [])
    else
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then (
      advance cur;
      Obj [])
    else
      let rec fields acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance cur;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail cur "expected ',' or '}'"
      in
      fields []
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
