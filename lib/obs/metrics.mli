(** Metrics registry: named counters, gauges, and fixed-bucket histograms.

    A registry is a plain mutable value with no locking: the intended
    discipline for parallel code is one registry per domain (workers
    accumulate into their own), then [absorb] the per-domain registries
    into an aggregate on the main domain once the workers have joined.
    Merge semantics: counters add, gauges keep the max, histograms add
    per-bucket counts (bounds must agree).

    Snapshots are plain immutable data ([Marshal]-safe, no closures or
    hashtables) so they can ride inside cached experiment points. *)

type t

(** Fresh empty registry. *)
val create : unit -> t

(** {1 Instruments} *)

(** [incr t name] adds 1 to counter [name], creating it at 0 on first use. *)
val incr : t -> string -> unit

(** [add t name n] adds [n] (must be >= 0) to counter [name]. *)
val add : t -> string -> int -> unit

(** [set_gauge t name v] sets gauge [name] to [v]. *)
val set_gauge : t -> string -> int -> unit

(** [set_gauge_max t name v] sets gauge [name] to [max current v]
    (high-water-mark update). *)
val set_gauge_max : t -> string -> int -> unit

(** [observe t name ?bounds v] records [v] into histogram [name].
    [bounds] are the inclusive upper bounds of the finite buckets; an
    implicit overflow bucket catches everything above the last bound.
    [bounds] is only consulted when the histogram is first created;
    defaults to [default_bounds]. *)
val observe : t -> ?bounds:int array -> string -> int -> unit

(** Power-of-4-ish default bucket bounds:
    [|0;1;2;4;8;16;32;64;128;256;1024;4096;16384;65536|]. *)
val default_bounds : int array

(** {1 Reading} *)

val counter_value : t -> string -> int
(** 0 when absent. *)

val gauge_value : t -> string -> int
(** 0 when absent. *)

(** {1 Snapshots and merging} *)

type hist_snap = {
  bounds : int array;  (** finite bucket upper bounds *)
  buckets : int array;  (** length = |bounds| + 1 (last = overflow) *)
  count : int;
  sum : int;
  min_v : int;  (** 0 when count = 0 *)
  max_v : int;  (** 0 when count = 0 *)
}

type snap_entry =
  | S_counter of int
  | S_gauge of int
  | S_hist of hist_snap

type snapshot = (string * snap_entry) list
(** Sorted by name; immutable; [Marshal]-safe. *)

val snapshot : t -> snapshot

(** [absorb t snap] merges [snap] into [t]: counters add, gauges max,
    histograms add bucket counts.  @raise Invalid_argument when a name is
    registered with a different instrument kind or differing histogram
    bounds. *)
val absorb : t -> snapshot -> unit

(** Merge two snapshots with the same semantics as [absorb]. *)
val merge_snapshots : snapshot -> snapshot -> snapshot

(** {1 JSON} *)

(** Deterministic JSON object keyed by metric name; counters and gauges
    become [{"type":"counter","value":n}] / [{"type":"gauge",...}],
    histograms include bounds, buckets, count, sum, min and max. *)
val snapshot_to_json : snapshot -> Json.t

val to_json : t -> Json.t
(** [to_json t = snapshot_to_json (snapshot t)]. *)
