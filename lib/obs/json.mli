(** A minimal JSON value type with a printer and a parser — just enough to
    emit the observability documents (metric snapshots, Chrome traces) and
    to validate them in tests without an external dependency.

    The printer is deterministic: object members are emitted in the order
    given, numbers with a fixed format, strings with standard escapes.  The
    parser accepts the full JSON grammar (objects, arrays, strings with
    escapes, numbers, booleans, null) and is used by the trace-schema
    tests to round-trip the files this library writes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render [t] into [buf] (compact, no whitespace). *)
val to_buffer : Buffer.t -> t -> unit

(** Compact rendering. *)
val to_string : t -> string

(** Parse a complete JSON document; trailing non-whitespace is an error.
    Numbers without [.]/[e] land in [Int], others in [Float]. *)
val parse : string -> (t, string) result

(** {1 Accessors} (for tests and schema checks) *)

(** [member name j] is the value of field [name] when [j] is an object. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
