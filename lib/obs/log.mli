(** Dependency-free structured logger: one LDJSON line per event, with a
    level, a monotonic timestamp and optional request-scoped ids.

    The service layer (Service / Supervisor / Cache) adopts this in place
    of silent behaviour: sheds, retries, worker kills, cache repairs and
    drain transitions each become one machine-readable line on the
    caller-supplied sink (typically stderr, never stdout — response
    streams stay clean).

    Like {!Trace}, the module has a {!null} instance whose emit sites
    reduce to one branch, so logging can be threaded unconditionally
    through hot paths.  [pv_obs] has no Unix dependency, so the timestamp
    source is injected: callers pass a monotonic [now_ms] (e.g. from
    [Pv_core.Clock]); the default is a per-logger event counter, which
    keeps lines ordered and tests deterministic. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** [level_of_string "warn"] — case-insensitive; [None] on junk. *)
val level_of_string : string -> level option

type t

(** The disabled logger: every emit is a no-op. *)
val null : t

(** [create ?level ?now_ms sink] — a logger writing one complete LDJSON
    line per event to [sink].  Events below [level] (default [Info]) are
    suppressed.  [now_ms] supplies the [ts_ms] field (monotonic
    milliseconds); default is an event counter. *)
val create : ?level:level -> ?now_ms:(unit -> float) -> (string -> unit) -> t

(** True when a message at [level] would be emitted — guard expensive
    field construction with this. *)
val enabled : t -> level -> bool

(** A copy of [t] that stamps every line with [rid] (request-scoped id);
    cheap, shares the sink and level. *)
val with_rid : t -> string -> t

(** [msg t level "event" ~fields] — emit one line:
    [{"ts_ms":..,"level":"..","msg":"event","rid":..,<fields>}]. *)
val msg : t -> level -> string -> fields:(string * Json.t) list -> unit

val debug : t -> string -> fields:(string * Json.t) list -> unit
val info : t -> string -> fields:(string * Json.t) list -> unit
val warn : t -> string -> fields:(string * Json.t) list -> unit
val error : t -> string -> fields:(string * Json.t) list -> unit
