type event = {
  name : string;
  ph : char;
  ts : int;
  dur : int;
  tid : int;
  args : (string * int) list;
}

type t = {
  enabled : bool;
  limit : int;
  mutable buf : event list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
}

let null = { enabled = false; limit = 0; buf = []; count = 0; dropped = 0 }

let create ?(limit = 1_000_000) () =
  { enabled = true; limit; buf = []; count = 0; dropped = 0 }

let enabled t = t.enabled

let tid_sim = 1
let tid_backend = 2
let tid_arbiter = 3
let tid_queue = 4
let tid_fault = 5
let tid_experiment = 6

let tid_name = function
  | 1 -> "sim"
  | 2 -> "backend"
  | 3 -> "arbiter"
  | 4 -> "queue"
  | 5 -> "fault"
  | 6 -> "experiment"
  | n -> Printf.sprintf "tid-%d" n

let push t ev =
  if t.count >= t.limit then t.dropped <- t.dropped + 1
  else (
    t.buf <- ev :: t.buf;
    t.count <- t.count + 1)

let instant t ~tid ~ts ?(args = []) name =
  if t.enabled then push t { name; ph = 'i'; ts; dur = 0; tid; args }

let complete t ~tid ~ts ~dur ?(args = []) name =
  if t.enabled then push t { name; ph = 'X'; ts; dur; tid; args }

let counter t ~tid ~ts name v =
  if t.enabled then
    push t { name; ph = 'C'; ts; dur = 0; tid; args = [ ("value", v) ] }

let events t = List.rev t.buf
let event_count t = t.count
let dropped t = t.dropped

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let pid = 1

let meta_event ~name ~tid fields =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str "M");
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ [ ("args", Json.Obj fields) ])

let event_json ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("ph", Json.Str (String.make 1 ev.ph));
      ("ts", Json.Int ev.ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int ev.tid);
    ]
  in
  let base = if ev.ph = 'X' then base @ [ ("dur", Json.Int ev.dur) ] else base in
  let base = if ev.ph = 'i' then base @ [ ("s", Json.Str "t") ] else base in
  let base =
    if ev.args = [] then base
    else
      base
      @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) ev.args)) ]
  in
  Json.Obj base

let to_json ?(process = "prevv") t =
  let evs = events t in
  let tids =
    List.fold_left (fun acc ev -> if List.mem ev.tid acc then acc else ev.tid :: acc) [] evs
    |> List.sort compare
  in
  let meta =
    meta_event ~name:"process_name" ~tid:0 [ ("name", Json.Str process) ]
    :: List.map
         (fun tid ->
           meta_event ~name:"thread_name" ~tid
             [ ("name", Json.Str (tid_name tid)) ])
         tids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map event_json evs));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          ([
             ("tool", Json.Str "prevv_cli");
             ("ts_unit", Json.Str "cycle");
             ("dropped_events", Json.Int t.dropped);
           ]
          @
          (* truncation is loud: a capped buffer used to drop silently *)
          if t.dropped = 0 then []
          else
            [
              ("truncated", Json.Bool true);
              ( "warning",
                Json.Str
                  (Printf.sprintf
                     "trace buffer full: %d event(s) past the %d-event cap \
                      were dropped; raise the Trace.create ~limit"
                     t.dropped t.limit) );
            ]) );
    ]

let write ?process t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (to_json ?process t);
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)
