(** Span/instant event tracer with a Chrome trace-event JSON sink.

    A [t] either records events into an in-memory buffer ([create]) or is
    the shared nil sink ([null]), whose [enabled] flag is false; every
    emitter checks [enabled] first, so instrumentation sites reduce to a
    single branch when tracing is off.

    Timestamps are simulation cycles, mapped 1 cycle = 1 microsecond in
    the exported file so Perfetto/chrome://tracing timelines read
    directly in cycles.  The process is the kernel under simulation;
    thread ids name subsystems (see the [tid_*] constants). *)

type t

type event = {
  name : string;
  ph : char;  (** 'X' complete, 'i' instant, 'C' counter *)
  ts : int;  (** cycle *)
  dur : int;  (** cycles; 0 unless ph = 'X' *)
  tid : int;
  args : (string * int) list;
}

(** {1 Construction} *)

(** The shared disabled sink: every emitter is a no-op on it. *)
val null : t

(** [create ?limit ()] is an enabled in-memory sink.  After [limit]
    events (default 1_000_000) further events are counted as dropped
    instead of stored, so runaway sims cannot exhaust memory. *)
val create : ?limit:int -> unit -> t

val enabled : t -> bool

(** {1 Thread-id conventions} *)

(** 1 — simulator core: epochs, stalls *)
val tid_sim : int

(** 2 — PreVV backend / LSQ *)
val tid_backend : int

(** 3 — validation / gating decisions *)
val tid_arbiter : int

(** 4 — premature-queue / LSQ occupancy *)
val tid_queue : int

(** 5 — injected faults *)
val tid_fault : int

(** 6 — runner / pool events *)
val tid_experiment : int

(** {1 Emitters} (all no-ops on [null]) *)

(** [instant t ~tid ~ts name ~args] records a thread-scoped instant. *)
val instant : t -> tid:int -> ts:int -> ?args:(string * int) list -> string -> unit

(** [complete t ~tid ~ts ~dur name] records a complete span ('X'). *)
val complete : t -> tid:int -> ts:int -> dur:int -> ?args:(string * int) list -> string -> unit

(** [counter t ~tid ~ts name v] records a sample on counter track [name]. *)
val counter : t -> tid:int -> ts:int -> string -> int -> unit

(** {1 Reading and export} *)

(** Recorded events, oldest first. *)
val events : t -> event list

val event_count : t -> int

(** Events lost to the [limit] cap. *)
val dropped : t -> int

(** [to_json ?process t] is the Chrome trace-event document
    [{"traceEvents":[...]}]: metadata events naming the process
    ([process] — typically the kernel name) and each subsystem thread,
    then the recorded events.  Instants carry ["s":"t"]; counters carry
    their value in [args].  Loadable in Perfetto / chrome://tracing. *)
val to_json : ?process:string -> t -> Json.t

(** [write ?process t path] writes [to_json] to [path]. *)
val write : ?process:string -> t -> string -> unit
