(** Behavioural load-store queue — the Dynamatic baselines.

    One pooled LSQ serves every ambiguous port (the configuration the
    paper's Fig. 1 measures).  The group allocator reserves load/store
    entries in original program order when a basic-block instance begins
    (ROM + group allocator of Josipović et al. [4]); loads issue out of
    order once every older store's address is known, with store-to-load
    forwarding; stores commit in program order.

    The two published variants differ only in allocation behaviour:
    - {!plain} ([15], classic Dynamatic): the group token travels through
      the circuit's control network before entries become usable
      ([alloc_delay] cycles) and only one group can be allocated per cycle.
    - {!fast} ([8], fast token delivery): allocation is immediate and off
      the critical path. *)

open Pv_memory

type config = {
  lq_depth : int;
  sq_depth : int;
  alloc_delay : int;  (** cycles before allocated entries become usable *)
  alloc_per_cycle : int;
  mem_latency : int;
  issues_per_cycle : int;
      (** global load-issue cap; per-array BRAM read ports are the physical
          limit, so this is normally generous and exists for ablations *)
  commits_per_cycle : int;  (** store commits per cycle (global cap) *)
  forwarding : bool;
      (** store-to-load forwarding on/off (ablation: off = a load waits for
          the matching older store to commit) *)
}

(* Queue depths are scaled to this simulator's pipeline granularity (one
   stage per component): a Dynamatic circuit reaches the LSQ in ~3 fat
   combinational stages where ours takes ~10 thin ones, so the 16-entry
   paper default corresponds to 32 entries here.  [alloc_delay] models the
   control-network trip of the group token before entries become usable —
   long for classic Dynamatic, zero for fast token delivery. *)
let plain =
  {
    lq_depth = 32;
    sq_depth = 32;
    alloc_delay = 26;
    alloc_per_cycle = 1;
    mem_latency = 2;
    issues_per_cycle = 8;
    commits_per_cycle = 4;
    forwarding = true;
  }

let fast = { plain with alloc_delay = 0; alloc_per_cycle = 2 }

type lentry = {
  l_seq : int;
  l_port : int;
  l_pos : int;  (** ROM position inside the group: program-order tie-break *)
  l_usable_at : int;
  mutable l_addr : int option;
}

type sentry = {
  s_seq : int;
  s_port : int;
  s_pos : int;
  s_usable_at : int;
  mutable s_addr : int option;
  mutable s_value : int option;
  mutable s_skipped : bool;
}

type t = {
  cfg : config;
  pm : Portmap.t;
  mem : int array;
  stats : Pv_dataflow.Memif.stats;
  mutable now : int;
  mutable lq : lentry list;  (** program order *)
  mutable sq : sentry list;  (** program order *)
  mutable allocs_this_cycle : int;
  resp : (int, (int * (int * int) option ref) Queue.t) Hashtbl.t;
      (** port -> FIFO of (seq, completion); responses are delivered in
          request order per port — an elastic access port is a tagless
          stream, so a younger load must never overtake an older one of
          the same port even though the LSQ issues them out of order *)
  (* per-array (per-BRAM) port budgets: one read and one write per cycle,
     dual-port block RAM; store-to-load forwarding bypasses the RAM *)
  reads : (string, int ref) Hashtbl.t;
  writes : (string, int ref) Hashtbl.t;
  (* observability: event sink (Trace.null unless passed to [create_full])
     and the last emitted occupancy sample *)
  trace : Pv_obs.Trace.t;
  prof : Pv_obs.Prof.t;
  mutable last_occ : int;
}

let budget tbl array =
  match Hashtbl.find_opt tbl array with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl array r;
      r

let take_budget tbl array =
  let r = budget tbl array in
  if !r > 0 then begin
    decr r;
    true
  end
  else false

let array_of t port = (Portmap.port t.pm port).Portmap.array

let order_lt (s1, p1) (s2, p2) = s1 < s2 || (s1 = s2 && p1 < p2)

let port_queue t port =
  match Hashtbl.find_opt t.resp port with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.resp port q;
      q

(* Register a request slot in port order; completion fills it later. *)
let open_slot t ~port ~seq =
  let slot = ref None in
  Queue.add (seq, slot) (port_queue t port);
  slot

let fill_slot t ~port ~seq ~ready_at ~value =
  let q = port_queue t port in
  let found = ref false in
  Queue.iter
    (fun (s, slot) ->
      if (not !found) && s = seq && !slot = None then begin
        slot := Some (ready_at, value);
        found := true
      end)
    q;
  assert !found

let occupancy t = List.length t.lq + List.length t.sq

let note_occupancy t =
  let o = occupancy t in
  if o > t.stats.Pv_dataflow.Memif.max_occupancy then
    t.stats.Pv_dataflow.Memif.max_occupancy <- o;
  if Pv_obs.Trace.enabled t.trace && o <> t.last_occ then begin
    Pv_obs.Trace.counter t.trace ~tid:Pv_obs.Trace.tid_queue ~ts:t.now
      "lsq_occupancy" o;
    t.last_occ <- o
  end

(* A load may issue when all older stores have known addresses; it forwards
   from the youngest older store with a matching address, if any. *)
let try_issue_load t (le : lentry) : bool =
  match le.l_addr with
  | None -> false
  | Some addr ->
      if le.l_usable_at > t.now then false
      else begin
        (* the issue check CAM-scans the whole store queue *)
        if Pv_obs.Prof.enabled t.prof then
          Pv_obs.Prof.add t.prof ~phase:Pv_obs.Prof.phase_lsq_cam
            (List.length t.sq);
        let older =
          List.filter
            (fun se ->
              (not se.s_skipped) && order_lt (se.s_seq, se.s_pos) (le.l_seq, le.l_pos))
            t.sq
        in
        if List.exists (fun se -> se.s_addr = None) older then begin
          t.stats.Pv_dataflow.Memif.stall_order <-
            t.stats.Pv_dataflow.Memif.stall_order + 1;
          false
        end
        else
          (* youngest older store to the same address *)
          let matching =
            List.filter (fun se -> se.s_addr = Some addr) older
            |> List.sort (fun a b ->
                   compare (b.s_seq, b.s_pos) (a.s_seq, a.s_pos))
          in
          match matching with
          | se :: _ -> (
              match se.s_value with
              | Some v when t.cfg.forwarding ->
                  fill_slot t ~port:le.l_port ~seq:le.l_seq ~ready_at:(t.now + 1)
                    ~value:v;
                  t.stats.Pv_dataflow.Memif.forwarded <-
                    t.stats.Pv_dataflow.Memif.forwarded + 1;
                  true
              | Some _ ->
                  (* forwarding disabled: wait for the commit *)
                  t.stats.Pv_dataflow.Memif.stall_order <-
                    t.stats.Pv_dataflow.Memif.stall_order + 1;
                  false
              | None ->
                  t.stats.Pv_dataflow.Memif.stall_order <-
                    t.stats.Pv_dataflow.Memif.stall_order + 1;
                  false)
          | [] ->
              if take_budget t.reads (array_of t le.l_port) then begin
                fill_slot t ~port:le.l_port ~seq:le.l_seq
                  ~ready_at:(t.now + t.cfg.mem_latency) ~value:t.mem.(addr);
                true
              end
              else begin
                t.stats.Pv_dataflow.Memif.stall_bw <-
                  t.stats.Pv_dataflow.Memif.stall_bw + 1;
                false
              end
      end

(* The store at the head of program order commits when its address and data
   are known and every older load that could alias has issued (WAR guard:
   a commit must not overtake an older load of the same address). *)
let can_commit t (se : sentry) =
  se.s_usable_at <= t.now
  && se.s_addr <> None
  && se.s_value <> None
  && begin
       (* the WAR guard CAM-scans the whole load queue; attributed only
          when the earlier conjuncts did not short-circuit *)
       if Pv_obs.Prof.enabled t.prof then
         Pv_obs.Prof.add t.prof ~phase:Pv_obs.Prof.phase_lsq_cam
           (List.length t.lq);
       not
         (List.exists
            (fun le ->
              order_lt (le.l_seq, le.l_pos) (se.s_seq, se.s_pos)
              && (le.l_addr = None || le.l_addr = se.s_addr))
            t.lq)
     end

let clock t =
  (* issue loads, oldest first *)
  let issued = ref 0 in
  let remaining = ref [] in
  List.iter
    (fun le ->
      if !issued < t.cfg.issues_per_cycle && try_issue_load t le then
        incr issued
      else remaining := le :: !remaining)
    t.lq;
  t.lq <- List.rev !remaining;
  (* drop skipped stores at the head, then commit in order *)
  let committed = ref 0 in
  let rec commit_head () =
    match t.sq with
    | se :: rest when se.s_skipped ->
        t.sq <- rest;
        commit_head ()
    | se :: rest
      when !committed < t.cfg.commits_per_cycle
           && can_commit t se
           && take_budget t.writes (array_of t se.s_port) ->
        (match (se.s_addr, se.s_value) with
        | Some a, Some v ->
            t.mem.(a) <- v;
            Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
              ~args:[ ("seq", se.s_seq); ("addr", a) ]
              "lsq_commit"
        | _ -> assert false);
        t.sq <- rest;
        incr committed;
        commit_head ()
    | _ -> ()
  in
  commit_head ();
  if Pv_obs.Trace.enabled t.trace then note_occupancy t;
  t.allocs_this_cycle <- 0;
  Hashtbl.iter (fun _ r -> r := 2) t.reads;
  Hashtbl.iter (fun _ r -> r := 1) t.writes;
  t.now <- t.now + 1

let create_full ?(trace = Pv_obs.Trace.null) ?(prof = Pv_obs.Prof.null)
    (cfg : config) (pm : Portmap.t) (mem : int array) : t * Pv_dataflow.Memif.t
    =
  let t =
    {
      cfg;
      pm;
      mem;
      stats = Pv_dataflow.Memif.fresh_stats ();
      now = 0;
      lq = [];
      sq = [];
      allocs_this_cycle = 0;
      resp = Hashtbl.create 16;
      reads = Hashtbl.create 8;
      writes = Hashtbl.create 8;
      trace;
      prof;
      last_occ = -1;
    }
  in
  Array.iter
    (fun p ->
      Hashtbl.replace t.reads p.Portmap.array (ref 2);
      Hashtbl.replace t.writes p.Portmap.array (ref 1))
    pm.Portmap.ports;
  let gports =
    Array.init pm.Portmap.n_groups (fun g -> Portmap.group_ports pm g)
  in
  let begin_instance ~seq ~group =
    let ports = gports.(group) in
    if ports = [] then true
    else begin
      let n_loads, n_stores =
        List.fold_left
          (fun (l, s) pid ->
            match (Portmap.port pm pid).Portmap.kind with
            | Portmap.OLoad -> (l + 1, s)
            | Portmap.OStore -> (l, s + 1))
          (0, 0) ports
      in
      if
        t.allocs_this_cycle >= cfg.alloc_per_cycle
        || List.length t.lq + n_loads > cfg.lq_depth
        || List.length t.sq + n_stores > cfg.sq_depth
      then begin
        t.stats.Pv_dataflow.Memif.stall_full <-
          t.stats.Pv_dataflow.Memif.stall_full + 1;
        false
      end
      else begin
        t.allocs_this_cycle <- t.allocs_this_cycle + 1;
        let usable = t.now + cfg.alloc_delay in
        List.iteri
          (fun pos pid ->
            match (Portmap.port pm pid).Portmap.kind with
            | Portmap.OLoad ->
                t.lq <-
                  t.lq
                  @ [
                      {
                        l_seq = seq;
                        l_port = pid;
                        l_pos = pos;
                        l_usable_at = usable;
                        l_addr = None;
                      };
                    ]
            | Portmap.OStore ->
                t.sq <-
                  t.sq
                  @ [
                      {
                        s_seq = seq;
                        s_port = pid;
                        s_pos = pos;
                        s_usable_at = usable;
                        s_addr = None;
                        s_value = None;
                        s_skipped = false;
                      };
                    ])
          ports;
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
          ~args:[ ("seq", seq); ("loads", n_loads); ("stores", n_stores) ]
          "lsq_alloc";
        note_occupancy t;
        true
      end
    end
  in
  let load_req ~port ~seq ~addr =
    if Portmap.is_ambiguous pm port then begin
      match
        List.find_opt
          (fun le -> le.l_seq = seq && le.l_port = port && le.l_addr = None)
          t.lq
      with
      | Some le ->
          le.l_addr <- Some addr;
          ignore (open_slot t ~port ~seq);
          t.stats.Pv_dataflow.Memif.loads <- t.stats.Pv_dataflow.Memif.loads + 1;
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
          true
      | None -> false
    end
    else if take_budget t.reads (array_of t port) then begin
      t.stats.Pv_dataflow.Memif.loads <- t.stats.Pv_dataflow.Memif.loads + 1;
      Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
      let slot = open_slot t ~port ~seq in
      slot := Some (t.now + cfg.mem_latency, t.mem.(addr));
      true
    end
    else begin
      t.stats.Pv_dataflow.Memif.stall_bw <- t.stats.Pv_dataflow.Memif.stall_bw + 1;
      false
    end
  in
  let store_req ~port ~seq ~addr ~value =
    if Portmap.is_ambiguous pm port then begin
      match
        List.find_opt
          (fun se -> se.s_seq = seq && se.s_port = port && se.s_value = None)
          t.sq
      with
      | Some se ->
          se.s_addr <- Some addr;
          se.s_value <- Some value;
          t.stats.Pv_dataflow.Memif.stores <- t.stats.Pv_dataflow.Memif.stores + 1;
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
          true
      | None -> false
    end
    else if take_budget t.writes (array_of t port) then begin
      t.stats.Pv_dataflow.Memif.stores <- t.stats.Pv_dataflow.Memif.stores + 1;
      Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
      t.mem.(addr) <- value;
      true
    end
    else begin
      t.stats.Pv_dataflow.Memif.stall_bw <- t.stats.Pv_dataflow.Memif.stall_bw + 1;
      false
    end
  in
  let op_skip ~port ~seq =
    if not (Portmap.is_ambiguous pm port) then true
    else begin
      t.stats.Pv_dataflow.Memif.fake_tokens <-
        t.stats.Pv_dataflow.Memif.fake_tokens + 1;
      (match (Portmap.port pm port).Portmap.kind with
      | Portmap.OStore -> (
          match
            List.find_opt
              (fun se -> se.s_seq = seq && se.s_port = port && se.s_addr = None)
              t.sq
          with
          | Some se -> se.s_skipped <- true
          | None -> ())
      | Portmap.OLoad ->
          t.lq <-
            List.filter
              (fun le -> not (le.l_seq = seq && le.l_port = port && le.l_addr = None))
              t.lq);
      true
    end
  in
  let store_addr ~port ~seq ~addr =
    if Portmap.is_ambiguous pm port then
      match
        List.find_opt
          (fun se -> se.s_seq = seq && se.s_port = port && se.s_addr = None)
          t.sq
      with
      | Some se -> se.s_addr <- Some addr
      | None -> ()
  in
  let load_poll ~port out =
    match Hashtbl.find_opt t.resp port with
    | Some q when not (Queue.is_empty q) -> (
        let seq, slot = Queue.peek q in
        match !slot with
        | Some (ready_at, value) when ready_at <= t.now ->
            ignore (Queue.pop q);
            out.Pv_dataflow.Memif.ls_seq <- seq;
            out.Pv_dataflow.Memif.ls_value <- value;
            true
        | _ -> false)
    | _ -> false
  in
  let quiesced () =
    t.lq = [] && t.sq = []
    && Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) t.resp true
  in
  ( t,
    {
      Pv_dataflow.Memif.begin_instance;
      alloc_group = (fun ~seq:_ ~group:_ -> true);
      load_req;
      load_poll;
      store_req;
      store_addr;
      op_skip;
      poll_squash = (fun () -> None);
      clock = (fun () -> clock t);
      quiesced;
      stats = (fun () -> t.stats);
      (* the LSQ never speculates, so there is no squash/replay machinery
         to drive: backend-level faults are not applicable *)
      inject = (fun _ -> false);
      describe =
        (fun () ->
          Printf.sprintf "lsq: LQ=%d SQ=%d" (List.length t.lq)
            (List.length t.sq));
    } )

let create ?trace ?prof cfg pm mem = snd (create_full ?trace ?prof cfg pm mem)

(* Runtime stat accessor, symmetric with Backend.stats. *)
let stats t = t.stats

(** Debug dump of queue contents. *)
let dump ppf t =
  Format.fprintf ppf "LQ (%d):@\n" (List.length t.lq);
  List.iter
    (fun le ->
      Format.fprintf ppf "  seq=%d pos=%d port=%d addr=%s usable=%d@\n" le.l_seq
        le.l_pos le.l_port
        (match le.l_addr with Some a -> string_of_int a | None -> "?")
        le.l_usable_at)
    t.lq;
  Format.fprintf ppf "SQ (%d):@\n" (List.length t.sq);
  List.iter
    (fun se ->
      Format.fprintf ppf "  seq=%d pos=%d port=%d addr=%s val=%s%s usable=%d@\n"
        se.s_seq se.s_pos se.s_port
        (match se.s_addr with Some a -> string_of_int a | None -> "?")
        (match se.s_value with Some v -> string_of_int v | None -> "?")
        (if se.s_skipped then " SKIP" else "")
        se.s_usable_at)
    t.sq
