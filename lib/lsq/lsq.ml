(** Behavioural load-store queue — the Dynamatic baselines.

    One pooled LSQ serves every ambiguous port (the configuration the
    paper's Fig. 1 measures).  The group allocator reserves load/store
    entries in original program order when a basic-block instance begins
    (ROM + group allocator of Josipović et al. [4]); loads issue out of
    order once every older store's address is known, with store-to-load
    forwarding; stores commit in program order.

    The two published variants differ only in allocation behaviour:
    - {!plain} ([15], classic Dynamatic): the group token travels through
      the circuit's control network before entries become usable
      ([alloc_delay] cycles) and only one group can be allocated per cycle.
    - {!fast} ([8], fast token delivery): allocation is immediate and off
      the critical path.

    Queues are dense flat arrays in program order (a shift/collapse
    structure, as the hardware is), with packed [(seq, ROM pos)] order
    keys, so the CAM loops compare one int per entry and can early-exit:
    the load-issue ordering check is an O(1) compare against the minimum
    order key among stores with unknown addresses, forwarding is a
    backward scan that stops at the first (= youngest older) address
    match, and the commit-side WAR guard stops at the first entry at or
    beyond the committing store's key. *)

open Pv_memory
module Token = Pv_dataflow.Types.Token
module Ring = Pv_dataflow.Ring

type config = {
  lq_depth : int;
  sq_depth : int;
  alloc_delay : int;  (** cycles before allocated entries become usable *)
  alloc_per_cycle : int;
  mem_latency : int;
  issues_per_cycle : int;
      (** global load-issue cap; per-array BRAM read ports are the physical
          limit, so this is normally generous and exists for ablations *)
  commits_per_cycle : int;  (** store commits per cycle (global cap) *)
  forwarding : bool;
      (** store-to-load forwarding on/off (ablation: off = a load waits for
          the matching older store to commit) *)
}

(* Queue depths are scaled to this simulator's pipeline granularity (one
   stage per component): a Dynamatic circuit reaches the LSQ in ~3 fat
   combinational stages where ours takes ~10 thin ones, so the 16-entry
   paper default corresponds to 32 entries here.  [alloc_delay] models the
   control-network trip of the group token before entries become usable —
   long for classic Dynamatic, zero for fast token delivery. *)
let plain =
  {
    lq_depth = 32;
    sq_depth = 32;
    alloc_delay = 26;
    alloc_per_cycle = 1;
    mem_latency = 2;
    issues_per_cycle = 8;
    commits_per_cycle = 4;
    forwarding = true;
  }

let fast = { plain with alloc_delay = 0; alloc_per_cycle = 2 }

(* packed program-order key, the same (seq lsl 6) lor pos layout as the
   premature queue's: Eq.-style strictly-older tests are one compare *)
let pos_bits = 6
let max_pos = (1 lsl pos_bits) - 1
let[@inline] okey ~seq ~pos = (seq lsl pos_bits) lor pos
let[@inline] okey_seq k = k asr pos_bits
let[@inline] okey_pos k = k land max_pos

(* Dense program-ordered load queue: parallel arrays, shift-collapse on
   removal (entries leave out of order as loads issue).  [l_addr] is the
   packed address array the CAM loops scan; -1 = not yet announced.
   [l_tok] is the packed token key of the pending request, delivered back
   with the response. *)
type lq = {
  lk : int array;
  l_port : int array;
  l_usable : int array;
  l_addr : int array;
  l_tok : int array;
  mutable ln : int;
}

(* Dense program-ordered store queue.  [s_flags] bit 0 = value known,
   bit 1 = skipped (fake token).  [min_unk] caches the minimum order key
   among non-skipped stores whose address is unknown (max_int when none):
   the load-issue ordering check of the CAM loop collapses to one compare
   against it. *)
type sq = {
  sk : int array;
  s_port : int array;
  s_usable : int array;
  s_addr : int array;
  s_val : int array;
  s_flags : int array;
  mutable sn : int;
  mutable min_unk : int;
}

type t = {
  cfg : config;
  pm : Portmap.t;
  mem : int array;
  stats : Pv_dataflow.Memif.stats;
  mutable now : int;
  lq : lq;
  sq : sq;
  mutable allocs_this_cycle : int;
  resp : (int, Ring.t) Hashtbl.t;
      (** port -> ring of (token key, ready_at, value) slots in request
          order; ready_at = -1 marks a slot whose load has not issued yet.
          Responses are delivered in request order per port — an elastic
          access port is a tagless stream, so a younger load must never
          overtake an older one of the same port even though the LSQ
          issues them out of order *)
  (* per-array (per-BRAM) port budgets: one read and one write per cycle,
     dual-port block RAM; store-to-load forwarding bypasses the RAM *)
  reads : (string, int ref) Hashtbl.t;
  writes : (string, int ref) Hashtbl.t;
  (* observability: event sink (Trace.null unless passed to [create_full])
     and the last emitted occupancy sample *)
  trace : Pv_obs.Trace.t;
  prof : Pv_obs.Prof.t;
  mutable last_occ : int;
}

let budget tbl array =
  match Hashtbl.find_opt tbl array with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl array r;
      r

let take_budget tbl array =
  let r = budget tbl array in
  if !r > 0 then begin
    decr r;
    true
  end
  else false

let array_of t port = (Portmap.port t.pm port).Portmap.array

let port_ring t port =
  match Hashtbl.find_opt t.resp port with
  | Some q -> q
  | None ->
      let q = Ring.create ~stride:3 8 in
      Hashtbl.replace t.resp port q;
      q

(* Register a request slot in port order; completion fills it later. *)
let open_slot t ~port ~tok = Ring.push3 (port_ring t port) tok (-1) 0

let fill_slot t ~port ~tok ~ready_at ~value =
  let q = port_ring t port in
  let n = Ring.length q in
  let rec go i =
    if i >= n then assert false
    else if Ring.get q i 0 = tok && Ring.get q i 1 < 0 then begin
      Ring.set q i 1 ready_at;
      Ring.set q i 2 value
    end
    else go (i + 1)
  in
  go 0

let occupancy t = t.lq.ln + t.sq.sn

let note_occupancy t =
  let o = occupancy t in
  if o > t.stats.Pv_dataflow.Memif.max_occupancy then
    t.stats.Pv_dataflow.Memif.max_occupancy <- o;
  if Pv_obs.Trace.enabled t.trace && o <> t.last_occ then begin
    Pv_obs.Trace.counter t.trace ~tid:Pv_obs.Trace.tid_queue ~ts:t.now
      "lsq_occupancy" o;
    t.last_occ <- o
  end

(* shift-collapse removal; program order is preserved by construction *)
let lq_remove (q : lq) i =
  let m = q.ln - 1 - i in
  Array.blit q.lk (i + 1) q.lk i m;
  Array.blit q.l_port (i + 1) q.l_port i m;
  Array.blit q.l_usable (i + 1) q.l_usable i m;
  Array.blit q.l_addr (i + 1) q.l_addr i m;
  Array.blit q.l_tok (i + 1) q.l_tok i m;
  q.ln <- q.ln - 1

let sq_recompute_min (q : sq) =
  let m = ref max_int in
  for i = 0 to q.sn - 1 do
    if q.s_flags.(i) land 2 = 0 && q.s_addr.(i) < 0 && q.sk.(i) < !m then
      m := q.sk.(i)
  done;
  q.min_unk <- !m

let sq_remove_head (q : sq) =
  let k = q.sk.(0) in
  let m = q.sn - 1 in
  Array.blit q.sk 1 q.sk 0 m;
  Array.blit q.s_port 1 q.s_port 0 m;
  Array.blit q.s_usable 1 q.s_usable 0 m;
  Array.blit q.s_addr 1 q.s_addr 0 m;
  Array.blit q.s_val 1 q.s_val 0 m;
  Array.blit q.s_flags 1 q.s_flags 0 m;
  q.sn <- m;
  if k = q.min_unk then sq_recompute_min q

(* A load may issue when all older stores have known addresses; it forwards
   from the youngest older store with a matching address, if any.  The
   ordering precondition is the O(1) [min_unk] compare; the forwarding
   match is a backward scan (youngest first) that exits at the first
   address hit.  CAM work is attributed per record actually scanned. *)
let try_issue_load t i : bool =
  let lq = t.lq in
  let addr = lq.l_addr.(i) in
  if addr < 0 then false
  else if lq.l_usable.(i) > t.now then false
  else begin
    let k = lq.lk.(i) in
    let sq = t.sq in
    if sq.min_unk < k then begin
      (* some older store's address is still unknown: one compare, no scan *)
      t.stats.Pv_dataflow.Memif.stall_order <-
        t.stats.Pv_dataflow.Memif.stall_order + 1;
      false
    end
    else begin
      let scanned = ref 0 in
      let j = ref (sq.sn - 1) in
      while !j >= 0 && sq.sk.(!j) >= k do
        incr scanned;
        decr j
      done;
      let found = ref (-1) in
      while !j >= 0 && !found < 0 do
        incr scanned;
        if sq.s_flags.(!j) land 2 = 0 && sq.s_addr.(!j) = addr then found := !j;
        decr j
      done;
      if Pv_obs.Prof.enabled t.prof then
        Pv_obs.Prof.add t.prof ~phase:Pv_obs.Prof.phase_lsq_cam !scanned;
      if !found >= 0 then begin
        let f = !found in
        if sq.s_flags.(f) land 1 = 1 && t.cfg.forwarding then begin
          fill_slot t ~port:lq.l_port.(i) ~tok:lq.l_tok.(i)
            ~ready_at:(t.now + 1) ~value:sq.s_val.(f);
          t.stats.Pv_dataflow.Memif.forwarded <-
            t.stats.Pv_dataflow.Memif.forwarded + 1;
          true
        end
        else begin
          (* value unknown, or forwarding disabled: wait for the commit *)
          t.stats.Pv_dataflow.Memif.stall_order <-
            t.stats.Pv_dataflow.Memif.stall_order + 1;
          false
        end
      end
      else if take_budget t.reads (array_of t lq.l_port.(i)) then begin
        fill_slot t ~port:lq.l_port.(i) ~tok:lq.l_tok.(i)
          ~ready_at:(t.now + t.cfg.mem_latency) ~value:t.mem.(addr);
        true
      end
      else begin
        t.stats.Pv_dataflow.Memif.stall_bw <-
          t.stats.Pv_dataflow.Memif.stall_bw + 1;
        false
      end
    end
  end

(* The store at the head of program order commits when its address and data
   are known and every older load that could alias has issued (WAR guard:
   a commit must not overtake an older load of the same address).  The
   load queue is program-ordered, so the guard stops at the first entry at
   or beyond the store's key. *)
let can_commit t =
  let sq = t.sq in
  sq.s_usable.(0) <= t.now
  && sq.s_addr.(0) >= 0
  && sq.s_flags.(0) land 1 = 1
  && begin
       let k = sq.sk.(0) and a = sq.s_addr.(0) in
       let lq = t.lq in
       let scanned = ref 0 in
       let blocked = ref false in
       let i = ref 0 in
       while (not !blocked) && !i < lq.ln && lq.lk.(!i) < k do
         incr scanned;
         if lq.l_addr.(!i) < 0 || lq.l_addr.(!i) = a then blocked := true;
         incr i
       done;
       if Pv_obs.Prof.enabled t.prof then
         Pv_obs.Prof.add t.prof ~phase:Pv_obs.Prof.phase_lsq_cam !scanned;
       not !blocked
     end

let clock t =
  (* issue loads, oldest first; issued entries shift-collapse out *)
  let issued = ref 0 in
  let i = ref 0 in
  while !i < t.lq.ln do
    if !issued < t.cfg.issues_per_cycle && try_issue_load t !i then begin
      incr issued;
      lq_remove t.lq !i
    end
    else incr i
  done;
  (* drop skipped stores at the head, then commit in order *)
  let committed = ref 0 in
  let continue = ref true in
  while !continue do
    let sq = t.sq in
    if sq.sn = 0 then continue := false
    else if sq.s_flags.(0) land 2 = 2 then sq_remove_head sq
    else if
      !committed < t.cfg.commits_per_cycle
      && can_commit t
      && take_budget t.writes (array_of t sq.s_port.(0))
    then begin
      t.mem.(sq.s_addr.(0)) <- sq.s_val.(0);
      Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
        ~args:[ ("seq", okey_seq sq.sk.(0)); ("addr", sq.s_addr.(0)) ]
        "lsq_commit";
      sq_remove_head sq;
      incr committed
    end
    else continue := false
  done;
  if Pv_obs.Trace.enabled t.trace then note_occupancy t;
  t.allocs_this_cycle <- 0;
  Hashtbl.iter (fun _ r -> r := 2) t.reads;
  Hashtbl.iter (fun _ r -> r := 1) t.writes;
  t.now <- t.now + 1

let create_full ?(trace = Pv_obs.Trace.null) ?(prof = Pv_obs.Prof.null)
    (cfg : config) (pm : Portmap.t) (mem : int array) : t * Pv_dataflow.Memif.t
    =
  let t =
    {
      cfg;
      pm;
      mem;
      stats = Pv_dataflow.Memif.fresh_stats ();
      now = 0;
      lq =
        {
          lk = Array.make cfg.lq_depth 0;
          l_port = Array.make cfg.lq_depth 0;
          l_usable = Array.make cfg.lq_depth 0;
          l_addr = Array.make cfg.lq_depth (-1);
          l_tok = Array.make cfg.lq_depth (-1);
          ln = 0;
        };
      sq =
        {
          sk = Array.make cfg.sq_depth 0;
          s_port = Array.make cfg.sq_depth 0;
          s_usable = Array.make cfg.sq_depth 0;
          s_addr = Array.make cfg.sq_depth (-1);
          s_val = Array.make cfg.sq_depth 0;
          s_flags = Array.make cfg.sq_depth 0;
          sn = 0;
          min_unk = max_int;
        };
      allocs_this_cycle = 0;
      resp = Hashtbl.create 16;
      reads = Hashtbl.create 8;
      writes = Hashtbl.create 8;
      trace;
      prof;
      last_occ = -1;
    }
  in
  Array.iter
    (fun p ->
      Hashtbl.replace t.reads p.Portmap.array (ref 2);
      Hashtbl.replace t.writes p.Portmap.array (ref 1))
    pm.Portmap.ports;
  let gports =
    Array.init pm.Portmap.n_groups (fun g -> Portmap.group_ports pm g)
  in
  let begin_instance ~seq ~group =
    let ports = gports.(group) in
    if ports = [] then true
    else begin
      let n_loads, n_stores =
        List.fold_left
          (fun (l, s) pid ->
            match (Portmap.port pm pid).Portmap.kind with
            | Portmap.OLoad -> (l + 1, s)
            | Portmap.OStore -> (l, s + 1))
          (0, 0) ports
      in
      if
        t.allocs_this_cycle >= cfg.alloc_per_cycle
        || t.lq.ln + n_loads > cfg.lq_depth
        || t.sq.sn + n_stores > cfg.sq_depth
      then begin
        t.stats.Pv_dataflow.Memif.stall_full <-
          t.stats.Pv_dataflow.Memif.stall_full + 1;
        false
      end
      else begin
        t.allocs_this_cycle <- t.allocs_this_cycle + 1;
        let usable = t.now + cfg.alloc_delay in
        List.iteri
          (fun pos pid ->
            if pos > max_pos then
              invalid_arg "Lsq: ROM position exceeds the 6-bit pack field";
            let k = okey ~seq ~pos in
            match (Portmap.port pm pid).Portmap.kind with
            | Portmap.OLoad ->
                let q = t.lq in
                let i = q.ln in
                q.lk.(i) <- k;
                q.l_port.(i) <- pid;
                q.l_usable.(i) <- usable;
                q.l_addr.(i) <- -1;
                q.l_tok.(i) <- -1;
                q.ln <- i + 1
            | Portmap.OStore ->
                let q = t.sq in
                let i = q.sn in
                q.sk.(i) <- k;
                q.s_port.(i) <- pid;
                q.s_usable.(i) <- usable;
                q.s_addr.(i) <- -1;
                q.s_val.(i) <- 0;
                q.s_flags.(i) <- 0;
                if k < q.min_unk then q.min_unk <- k;
                q.sn <- i + 1)
          ports;
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_backend ~ts:t.now
          ~args:[ ("seq", seq); ("loads", n_loads); ("stores", n_stores) ]
          "lsq_alloc";
        note_occupancy t;
        true
      end
    end
  in
  (* first live entry of [port]/[seq] matching [pred] over the queue *)
  let find_load ~seq ~port =
    let q = t.lq in
    let rec go i =
      if i >= q.ln then -1
      else if okey_seq q.lk.(i) = seq && q.l_port.(i) = port && q.l_addr.(i) < 0
      then i
      else go (i + 1)
    in
    go 0
  in
  let find_store ~seq ~port ~f =
    let q = t.sq in
    let rec go i =
      if i >= q.sn then -1
      else if okey_seq q.sk.(i) = seq && q.s_port.(i) = port && f q.s_flags.(i) q.s_addr.(i)
      then i
      else go (i + 1)
    in
    go 0
  in
  let load_req ~port ~key ~addr =
    let seq = Token.seq key in
    if Portmap.is_ambiguous pm port then begin
      match find_load ~seq ~port with
      | -1 -> false
      | i ->
          t.lq.l_addr.(i) <- addr;
          t.lq.l_tok.(i) <- key;
          open_slot t ~port ~tok:key;
          t.stats.Pv_dataflow.Memif.loads <- t.stats.Pv_dataflow.Memif.loads + 1;
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
          true
    end
    else if take_budget t.reads (array_of t port) then begin
      t.stats.Pv_dataflow.Memif.loads <- t.stats.Pv_dataflow.Memif.loads + 1;
      Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
      Ring.push3 (port_ring t port) key (t.now + cfg.mem_latency) t.mem.(addr);
      true
    end
    else begin
      t.stats.Pv_dataflow.Memif.stall_bw <- t.stats.Pv_dataflow.Memif.stall_bw + 1;
      false
    end
  in
  let store_req ~port ~key ~addr ~value =
    let seq = Token.seq key in
    if Portmap.is_ambiguous pm port then begin
      match find_store ~seq ~port ~f:(fun flags _ -> flags land 1 = 0) with
      | -1 -> false
      | i ->
          let q = t.sq in
          let had_addr = q.s_addr.(i) >= 0 in
          let k = q.sk.(i) in
          q.s_addr.(i) <- addr;
          q.s_val.(i) <- value;
          q.s_flags.(i) <- q.s_flags.(i) lor 1;
          if (not had_addr) && k = q.min_unk then sq_recompute_min q;
          t.stats.Pv_dataflow.Memif.stores <- t.stats.Pv_dataflow.Memif.stores + 1;
          Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
          true
    end
    else if take_budget t.writes (array_of t port) then begin
      t.stats.Pv_dataflow.Memif.stores <- t.stats.Pv_dataflow.Memif.stores + 1;
      Pv_obs.Prof.add prof ~phase:Pv_obs.Prof.phase_mem_service 1;
      t.mem.(addr) <- value;
      true
    end
    else begin
      t.stats.Pv_dataflow.Memif.stall_bw <- t.stats.Pv_dataflow.Memif.stall_bw + 1;
      false
    end
  in
  let op_skip ~port ~key =
    let seq = Token.seq key in
    if not (Portmap.is_ambiguous pm port) then true
    else begin
      t.stats.Pv_dataflow.Memif.fake_tokens <-
        t.stats.Pv_dataflow.Memif.fake_tokens + 1;
      (match (Portmap.port pm port).Portmap.kind with
      | Portmap.OStore -> (
          match find_store ~seq ~port ~f:(fun _ addr -> addr < 0) with
          | -1 -> ()
          | i ->
              let q = t.sq in
              q.s_flags.(i) <- q.s_flags.(i) lor 2;
              if q.sk.(i) = q.min_unk then sq_recompute_min q)
      | Portmap.OLoad -> (
          match find_load ~seq ~port with
          | -1 -> ()
          | i -> lq_remove t.lq i));
      true
    end
  in
  let store_addr ~port ~key ~addr =
    let seq = Token.seq key in
    if Portmap.is_ambiguous pm port then
      match find_store ~seq ~port ~f:(fun _ a -> a < 0) with
      | -1 -> ()
      | i ->
          let q = t.sq in
          let k = q.sk.(i) in
          q.s_addr.(i) <- addr;
          if k = q.min_unk then sq_recompute_min q
  in
  let load_poll ~port out =
    match Hashtbl.find_opt t.resp port with
    | Some q when not (Ring.is_empty q) ->
        let ready = Ring.get q 0 1 in
        ready >= 0
        && ready <= t.now
        && begin
             out.Pv_dataflow.Memif.ls_key <- Ring.get q 0 0;
             out.Pv_dataflow.Memif.ls_value <- Ring.get q 0 2;
             Ring.pop q;
             true
           end
    | _ -> false
  in
  let quiesced () =
    t.lq.ln = 0 && t.sq.sn = 0
    && Hashtbl.fold (fun _ q acc -> acc && Ring.is_empty q) t.resp true
  in
  ( t,
    {
      Pv_dataflow.Memif.begin_instance;
      alloc_group = (fun ~key:_ ~group:_ -> true);
      load_req;
      load_poll;
      store_req;
      store_addr;
      op_skip;
      poll_squash = (fun () -> None);
      clock = (fun () -> clock t);
      quiesced;
      stats = (fun () -> t.stats);
      (* the LSQ never speculates, so there is no squash/replay machinery
         to drive: backend-level faults are not applicable *)
      inject = (fun _ -> false);
      describe = (fun () -> Printf.sprintf "lsq: LQ=%d SQ=%d" t.lq.ln t.sq.sn);
    } )

let create ?trace ?prof cfg pm mem = snd (create_full ?trace ?prof cfg pm mem)

(* Runtime stat accessor, symmetric with Backend.stats. *)
let stats t = t.stats

(** Debug dump of queue contents. *)
let dump ppf t =
  Format.fprintf ppf "LQ (%d):@\n" t.lq.ln;
  for i = 0 to t.lq.ln - 1 do
    let q = t.lq in
    Format.fprintf ppf "  seq=%d pos=%d port=%d addr=%s usable=%d@\n"
      (okey_seq q.lk.(i)) (okey_pos q.lk.(i)) q.l_port.(i)
      (if q.l_addr.(i) >= 0 then string_of_int q.l_addr.(i) else "?")
      q.l_usable.(i)
  done;
  Format.fprintf ppf "SQ (%d):@\n" t.sq.sn;
  for i = 0 to t.sq.sn - 1 do
    let q = t.sq in
    Format.fprintf ppf "  seq=%d pos=%d port=%d addr=%s val=%s%s usable=%d@\n"
      (okey_seq q.sk.(i)) (okey_pos q.sk.(i)) q.s_port.(i)
      (if q.s_addr.(i) >= 0 then string_of_int q.s_addr.(i) else "?")
      (if q.s_flags.(i) land 1 = 1 then string_of_int q.s_val.(i) else "?")
      (if q.s_flags.(i) land 2 = 2 then " SKIP" else "")
      q.s_usable.(i)
  done
