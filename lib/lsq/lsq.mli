(** Behavioural load-store queue — the Dynamatic baselines.

    One pooled LSQ serves every ambiguous port (the configuration the
    paper's Fig. 1 measures).  The group allocator reserves load/store
    entries in original program order when a basic-block instance begins
    (ROM + group allocator of Josipović et al.); loads issue out of order
    once every older store's address is known, with store-to-load
    forwarding; stores commit in program order behind a WAR guard.

    The two published variants differ in allocation behaviour:
    - {!plain} ([15], classic Dynamatic): the group token travels through
      the circuit's control network before entries become usable
      ([alloc_delay] cycles), one group allocation per cycle;
    - {!fast} ([8], fast token delivery): allocation is immediate and off
      the critical path. *)

type config = {
  lq_depth : int;
  sq_depth : int;
  alloc_delay : int;  (** cycles before allocated entries become usable *)
  alloc_per_cycle : int;
  mem_latency : int;
  issues_per_cycle : int;
      (** global load-issue cap; per-array BRAM read ports are the physical
          limit, so this is normally generous and exists for ablations *)
  commits_per_cycle : int;  (** store commits per cycle (global cap) *)
  forwarding : bool;
      (** store-to-load forwarding on/off (ablation: off = a load waits for
          the matching older store to commit) *)
}

(** The [15] baseline.  Depths are in simulated entries (the paper's
    16-entry default maps to 32 at this simulator's pipeline granularity;
    see DESIGN.md §9). *)
val plain : config

(** The [8] baseline: {!plain} with zero allocation delay and the
    fast-token network. *)
val fast : config

(** Internal state, exposed for debugging dumps. *)
type t

(** Build a backend over [mem]; returns the state alongside (for dumps and
    {!stats}).  [trace] (default {!Pv_obs.Trace.null}) receives
    allocation/commit instants on the backend track and an
    [lsq_occupancy] counter track; the null sink makes every emit site one
    branch and leaves behaviour unchanged.  [prof] (default
    {!Pv_obs.Prof.null}) receives the LSQ's attribution phases: one
    [lsq_cam] unit per queue entry walked by the load-issue check (store
    queue) and the store-commit WAR guard (load queue), and one
    [mem_service] unit per load/store accepted (so [mem_service] equals
    the {!stats} loads + stores exactly). *)
val create_full :
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  config ->
  Pv_memory.Portmap.t ->
  int array ->
  t * Pv_dataflow.Memif.t

val create :
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  config ->
  Pv_memory.Portmap.t ->
  int array ->
  Pv_dataflow.Memif.t

(** Live traffic tallies (loads, stores, forwarded, stall breakdown,
    queue high-water mark) — the LSQ-side metric source, symmetric with
    [Backend.stats]. *)
val stats : t -> Pv_dataflow.Memif.stats

(** Dump queue contents (entries with addresses/values/flags). *)
val dump : Format.formatter -> t -> unit
