(** Cycle-bucketed timer wheel: the simulator's timed-wake store
    (injected-stall expiries), replacing a linearly scanned assoc list.

    Arming appends to the target cycle's bucket; draining inspects one
    bucket.  Entries beyond the wheel's span stay parked across laps
    (each carries its absolute expiry) — correct because the simulator
    drains every cycle while anything is pending.  Within a bucket,
    equal-expiry entries fire strictly in insertion order (FIFO). *)

type t

(** [create ?buckets ()] — wheel with [buckets] cycle buckets (rounded up
    to a power of two; default 16). *)
val create : ?buckets:int -> unit -> t

(** Armed entries not yet fired. *)
val pending : t -> int

(** [add t ~at payload] arms [payload] to fire at cycle [at]. *)
val add : t -> at:int -> int -> unit

(** [drain t ~now f] fires [f payload] for every entry due at or before
    [now] in [now]'s bucket, in insertion order, and retires them.  Must
    be called every cycle while [pending t > 0] (entries due in other
    buckets are found at their own cycle). *)
val drain : t -> now:int -> (int -> unit) -> unit

val clear : t -> unit
