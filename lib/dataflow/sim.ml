(** Cycle-accurate simulation of an elastic dataflow graph against a
    memory-disambiguation backend.

    Timing model: every channel behaves as a one-deep elastic register (the
    canonical latency-insensitive wire), so every component contributes one
    pipeline stage; functional units may add [op_latency] further internal
    stages (fully pipelined, initiation interval 1).  Nodes are evaluated
    once per cycle in consumers-before-producers order, so a register chain
    sustains one token per cycle — exactly the throughput behaviour of the
    circuits the paper measures, with stalls arising only from structural
    hazards and memory backpressure.

    Two engines share that cycle semantics.  [Scan] evaluates every node
    every cycle.  [Event] keeps a wake set and evaluates only nodes that can
    possibly fire: a node is awake iff one of its channels changed at the
    last clock edge, a timed event (injected stall expiry) is due, or it
    still holds retryable work (a refused backend call, a non-empty FU pipe
    or buffer, an unexhausted generator, an outstanding load response).
    Within a cycle, consuming a token pulls the channel's producer into the
    same wave when its turn is still to come, preserving the
    one-token-per-cycle streaming of the full scan.

    Representation: the state is data-oriented.  Nodes are renumbered by
    their evaluation-order position ("slot"); every per-node and per-channel
    quantity lives in a flat int array indexed by slot or channel id, node
    dispatch is a jump table over a dense opcode array built once at
    {!create}, queue-shaped state (FU pipes, buffers, announced stores, load
    responses) lives in int {!Ring}s, and the wake set / evaluation wave are
    int bitsets.  A steady-state cycle touches no minor-heap word (asserted
    by test/test_sim_perf.ml); see DESIGN.md §19.

    Squash/replay: when the backend reports a mis-speculation at [seq_err],
    the simulator bumps the global epoch, purges every in-flight token with
    [seq >= seq_err] (channels, buffers, functional-unit pipelines) and
    rewinds the loop-nest generator, which then re-emits the squashed body
    instances. *)

open Types

type engine = Scan | Event

let string_of_engine = function Scan -> "scan" | Event -> "event"

let engine_of_string = function
  | "scan" -> Some Scan
  | "event" -> Some Event
  | _ -> None

type config = {
  op_latency : binop -> int;
      (** extra internal stages of a functional unit beyond its channel
          register; 0 = purely combinational unit *)
  max_cycles : int;
  stall_limit : int;
      (** cycles without any token movement before declaring deadlock *)
  faults : Fault.plan;
      (** transient disturbances to inject during the run (resilience
          testing); empty for a fault-free simulation *)
  engine : engine;
      (** evaluation strategy; both engines are cycle-equivalent *)
  cancel : unit -> bool;
      (** cooperative cancellation token, polled by {!run} between cycles;
          when it turns true the run raises {!Cancelled}.  Never affects a
          completed result, so it is deliberately absent from result cache
          fingerprints. *)
}

exception Cancelled of { at_cycle : int }

(* Few, fat stages: the paper's circuits close at 7.2-9.2 ns, implying
   multi-level logic per stage; a 2-stage DSP multiplier and 3-stage
   divider are the corresponding pipelinings. *)
let default_latency = function
  | Mul -> 2
  | Mulc -> 0  (* shift-add network *)
  | Div | Rem -> 3
  | _ -> 0

let no_cancel () = false

let default_config =
  {
    op_latency = default_latency;
    max_cycles = 2_000_000;
    stall_limit = 4096;
    faults = [];
    engine = Event;
    cancel = no_cancel;
  }

(** Diagnosis attached to a non-[Finished] outcome: enough state to tell a
    starved pipeline from a backpressured one from a wedged backend without
    re-running under a debugger. *)
type post_mortem = {
  pm_at_cycle : int;
  pm_last_progress : int;  (** cycle of the last token movement *)
  pm_epoch : int;  (** squash epoch at the end (number of squashes seen) *)
  pm_occupied : int;  (** channel registers still holding a token *)
  pm_tokens : (chan_id * token) list;  (** in-flight tokens (capped) *)
  pm_oldest_seq : int option;  (** oldest in-flight iteration anywhere *)
  pm_stalled : (node_id * string * string) list;
      (** (node, label, stall reason) for nodes blocked with work (capped) *)
  pm_gens : (node_id * int * bool) list;  (** generator (node, next seq, done) *)
  pm_fault_stalls : chan_id list;  (** channels under an injected stall *)
  pm_backend : string;  (** backend state snapshot ({!Memif.t.describe}) *)
  pm_faults : Fault.application list;  (** what each planned fault did *)
}

type outcome =
  | Finished of { cycles : int }
  | Deadlock of { at_cycle : int; post_mortem : post_mortem }
  | Timeout of { at_cycle : int; post_mortem : post_mortem }

let pp_outcome ppf = function
  | Finished { cycles } -> Format.fprintf ppf "finished in %d cycles" cycles
  | Deadlock { at_cycle; _ } -> Format.fprintf ppf "DEADLOCK at cycle %d" at_cycle
  | Timeout { at_cycle; _ } -> Format.fprintf ppf "timeout at cycle %d" at_cycle

let pp_post_mortem ppf pm =
  Format.fprintf ppf "@[<v>post-mortem at cycle %d:@," pm.pm_at_cycle;
  Format.fprintf ppf "  last progress at cycle %d (%d idle cycles); epoch %d@,"
    pm.pm_last_progress
    (pm.pm_at_cycle - pm.pm_last_progress)
    pm.pm_epoch;
  Format.fprintf ppf "  %d occupied channel(s)%s@," pm.pm_occupied
    (match pm.pm_oldest_seq with
    | Some s -> Printf.sprintf "; oldest in-flight iteration %d" s
    | None -> "");
  List.iter
    (fun (cid, tok) ->
      Format.fprintf ppf "    chan %d: %a@," cid pp_token tok)
    pm.pm_tokens;
  List.iter
    (fun (nid, gseq, gdone) ->
      Format.fprintf ppf "  generator #%d: next seq %d, %s@," nid gseq
        (if gdone then "exhausted" else "not exhausted"))
    pm.pm_gens;
  if pm.pm_fault_stalls <> [] then
    Format.fprintf ppf "  channels under injected stall: %s@,"
      (String.concat ", " (List.map string_of_int pm.pm_fault_stalls));
  if pm.pm_stalled = [] then Format.fprintf ppf "  no node holds work@,"
  else begin
    Format.fprintf ppf "  stalled nodes:@,";
    List.iter
      (fun (nid, label, why) ->
        Format.fprintf ppf "    %s#%d: %s@," label nid why)
      pm.pm_stalled
  end;
  Format.fprintf ppf "  backend: %s@," pm.pm_backend;
  if pm.pm_faults <> [] then begin
    Format.fprintf ppf "  injected faults:@,";
    List.iter
      (fun ap -> Format.fprintf ppf "    %a@," Fault.pp_application ap)
      pm.pm_faults
  end;
  Format.fprintf ppf "@]"

type run_stats = {
  cycles : int;
  node_fires : int array;  (** per node id *)
  gen_instances : int;  (** body instances emitted, including replays *)
  evals : int;
      (** total node evaluations; under [Scan] this is nodes x cycles,
          under [Event] only the awake subset *)
}

(** One armed fault event: fires at the first applicable cycle at or after
    its [at_cycle], at most once. *)
type fault_state = {
  fs_event : Fault.event;
  mutable fs_fired : int option;
  mutable fs_dead : bool;  (** permanently inapplicable; stop retrying *)
  mutable fs_note : string;
}

(* --- dense opcodes ------------------------------------------------------ *)

(* One dispatch code per dynamic behaviour; [p1]/[p2] carry the static
   per-node parameters (constant, operator code, arity, port, capacity).
   A pipelined Binop (op_latency > 0) gets its own opcode so the hot match
   never re-asks the latency question. *)
let op_gen = 0
let op_const = 1
let op_unop = 2
let op_binop = 3 (* combinational: p1 = binop code *)
let op_pipe = 4 (* pipelined: p1 = binop code, p2 = latency, cap = p2 + 1 *)
let op_fork = 5 (* p1 = n *)
let op_join = 6 (* p1 = n *)
let op_merge = 7 (* p1 = n *)
let op_mux = 8 (* p1 = n *)
let op_branch = 9
let op_tbuf = 10 (* transparent buffer: p1 = slots *)
let op_obuf = 11 (* opaque buffer: p1 = slots *)
let op_sink = 12
let op_load = 13 (* p1 = port *)
let op_store = 14 (* p1 = port *)
let op_skip = 15 (* p1 = port *)
let op_galloc = 16 (* p1 = group *)

(* Pending-store ring capacity per store port, as before the rewrite. *)
let store_pending_cap = 16

type t = {
  g : Graph.t;
  cfg : config;
  mem : Memif.t;
  n : int;  (* nodes *)
  nc : int;  (* channels *)
  (* channel registers, flat; a register holds a packed token key
     ({!Types.Token.t}: seq in the high bits, epoch in the low 20) plus the
     raw value word.  key < 0 means empty (all real keys >= 0), and because
     key order extends seq order, squash cutoffs compare keys directly
     against [Token.first ~seq:seq_err]. *)
  cur_key : int array;
  cur_val : int array;
  stg_key : int array;  (* staged write, -1 = none *)
  stg_val : int array;
  consumed : bool array;
  stall_until : int array;  (* per channel: consumption blocked below this *)
  chan_src : int array;  (* channel id -> producer slot *)
  chan_dst : int array;  (* channel id -> consumer slot *)
  (* dense dispatch tables, slot-indexed (slot = eval-order position,
     consumers before producers) — built once at [create] *)
  nid_of : int array;  (* slot -> external node id *)
  slot_of : int array;  (* node id -> slot *)
  op : int array;
  p1 : int array;
  p2 : int array;
  in_base : int array;  (* slot -> base into [ins] *)
  in_n : int array;
  out_base : int array;  (* slot -> base into [outs] *)
  out_n : int array;
  ins : int array;  (* flattened input channel ids *)
  outs : int array;  (* flattened output channel ids *)
  ring : Ring.t array;
      (* per slot: FU pipe (stride 3: ready,key,value), buffer (stride 3:
         key,value,arrival), announced stores (stride 2: key,addr) or load
         responses (stride 1: key); a shared empty ring for slots with
         none — one lane narrower per record than the boxed-token era,
         since the packed key carries seq and epoch together *)
  gen_next_f : (int -> int array) array;
  gen_group_f : (int -> int) array;
  g_seq : int array;
  g_done : bool array;
  g_emitted : int array;
  fires : int array;  (* per-node fire counts, node-id indexed *)
  faults : fault_state array;
  (* event engine: wake set for the next cycle and the wave being swept,
     both bitsets over slots (32 bits per word); timed wakes (stall
     expiries) in a cycle-bucketed wheel *)
  event : bool;
  awake : int array;
  wave : int array;
  wheel : Wheel.t;
  mutable wake_cb : int -> unit;  (* preallocated wheel-drain callback *)
  mutable cur_slot : int;  (* slot being evaluated *)
  (* adaptive density switch: when nearly every node fires anyway, the
     wake-set bookkeeping (pulls, commit wakes, stay-awake tails) costs
     more than the few skipped evaluations are worth, so the event engine
     runs scan-shaped "dense" cycles with [bookkeep] off and returns to
     the swept sparse mode when the fire rate drops (see [step]) *)
  mutable dense : bool;
  mutable bookkeep : bool;  (* event && not dense: maintain the wake set *)
  mutable nfired : int;  (* node firings this cycle (mode hysteresis) *)
  (* channels staged/consumed this cycle; stack preallocated *)
  touched : bool array;
  touch_stack : int array;
  mutable touch_len : int;
  (* occupancy counters: [finished] in O(1) instead of scanning *)
  mutable occupied : int;  (* channels holding a token *)
  mutable held : int;  (* records in pipe/buffer/store rings *)
  mutable gens_active : int;  (* generators not yet exhausted *)
  lslot : Memif.load_slot;  (* reusable load_poll out-parameter *)
  mutable evals : int;
  mutable epoch : int;
  mutable cycle : int;
  mutable progress : bool;  (* any movement this cycle *)
  mutable last_progress : int;
  (* observability: [trace] is Trace.null unless a sink was passed to
     [create]; every emit site checks [Trace.enabled] first, so a disabled
     trace costs one branch.  [epoch_start]/[last_inflight] carry the open
     epoch span and the last emitted in-flight sample between cycles. *)
  trace : Pv_obs.Trace.t;
  mutable epoch_start : int;
  mutable last_inflight : int;
  (* cycle-attribution profiler: [prof_on] caches [Prof.enabled prof] so
     each eval site pays one load + branch when profiling is off (the
     zero-allocation contract of test_sim_perf.ml covers this path) *)
  prof : Pv_obs.Prof.t;
  prof_on : bool;
}

(* --- bitsets over slots ------------------------------------------------- *)

(* 32 bits per word: word = slot lsr 5, bit = slot land 31.  Lowest-set-bit
   extraction uses the 32-bit de Bruijn multiply (the product is masked to
   32 bits because OCaml ints are wider). *)

let debruijn32 =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let[@inline] ctz32 lsb =
  Array.unsafe_get debruijn32 ((lsb * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* The hot paths below index flat arrays with internal invariants only
   (slots < n, channel ids < nc, words < nwords — all established at
   [create]), so they skip the bounds checks; every externally supplied
   index (accessors, fault channels) stays on the checked operations. *)
let[@inline] ag (a : int array) i = Array.unsafe_get a i
let[@inline] aset (a : int array) i v = Array.unsafe_set a i v
let[@inline] agb (a : bool array) i = Array.unsafe_get a i
let[@inline] asetb (a : bool array) i v = Array.unsafe_set a i v

let[@inline] bs_set (bs : int array) i =
  let w = i lsr 5 in
  aset bs w (ag bs w lor (1 lsl (i land 31)))

(* --- wake set ----------------------------------------------------------- *)

let[@inline] wake t slot = bs_set t.awake slot

let wake_all t =
  let nw = Array.length t.awake in
  for w = 0 to nw - 1 do
    t.awake.(w) <- 0xFFFFFFFF
  done;
  let r = t.n land 31 in
  if r <> 0 then t.awake.(nw - 1) <- (1 lsl r) - 1

(* Evaluation order: consumers strictly before producers, so a full register
   chain streams one token per cycle (a consumer frees its input register in
   the same cycle the producer refills it).  For a DAG this is the reversed
   topological order; if the graph has (buffered) cycles we fall back to a
   DFS order that breaks at opaque buffers, costing a cycle of latency at
   each break but never correctness. *)
let eval_order (g : Graph.t) : int array =
  let n = Graph.n_nodes g in
  let succs nid =
    let node = Graph.node g nid in
    Array.to_list node.Graph.outputs
    |> List.filter_map (fun cid ->
           if cid = -1 then None
           else Some (Graph.chan g cid).Graph.dst.Graph.node)
  in
  (* Kahn's algorithm *)
  let indeg = Array.make n 0 in
  Graph.iter_chans
    (fun c -> indeg.(c.Graph.dst.Graph.node) <- indeg.(c.Graph.dst.Graph.node) + 1)
    g;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    topo := u :: !topo;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (succs u)
  done;
  if List.length !topo = n then Array.of_list !topo (* reversed topo *)
  else begin
    (* cyclic graph: DFS with order breaks at opaque buffers *)
    let visited = Array.make n false in
    let order = ref [] in
    let is_break nid =
      match (Graph.node g nid).Graph.kind with
      | Buffer { transparent = false; _ } -> true
      | _ -> false
    in
    let rec dfs nid =
      if not visited.(nid) then begin
        visited.(nid) <- true;
        if not (is_break nid) then List.iter dfs (succs nid);
        order := nid :: !order
      end
    in
    for i = 0 to n - 1 do
      dfs i
    done;
    Array.of_list (List.rev !order)
  end

let dummy_gen_next (_ : int) : int array = [||]
let dummy_gen_group (_ : int) = 0

let kind_name : Types.kind -> string = function
  | Gen _ -> "gen"
  | Const _ -> "const"
  | Unop _ -> "unop"
  | Binop _ -> "binop"
  | Fork _ -> "fork"
  | Join _ -> "join"
  | Merge _ -> "merge"
  | Mux _ -> "mux"
  | Branch -> "branch"
  | Buffer _ -> "buf"
  | Sink -> "sink"
  | Load _ -> "load"
  | Store _ -> "store"
  | Skip _ -> "skip"
  | Galloc _ -> "galloc"

let create ?(cfg = default_config) ?(trace = Pv_obs.Trace.null)
    ?(prof = Pv_obs.Prof.null) (g : Graph.t) (mem : Memif.t) : t =
  Check.validate_exn g;
  let nc = Graph.n_chans g in
  let n = Graph.n_nodes g in
  List.iter
    (fun (e : Fault.event) ->
      let check_chan c =
        if c < 0 || c >= nc then
          invalid_arg
            (Printf.sprintf "Sim.create: fault %s targets channel %d of %d"
               (Fault.string_of_event e) c nc)
      in
      match e.Fault.action with
      | Fault.Drop { chan }
      | Fault.Drop_replay { chan }
      | Fault.Stall { chan; _ }
      | Fault.Flip { chan; _ }
      | Fault.Flip_replay { chan; _ } ->
          check_chan chan
      | Fault.Backend _ -> ())
    cfg.faults;
  let order = eval_order g in
  let slot_of = Array.make n 0 in
  Array.iteri (fun slot nid -> slot_of.(nid) <- slot) order;
  (* flatten the wiring *)
  let total_in = ref 0 and total_out = ref 0 in
  Graph.iter_nodes
    (fun node ->
      total_in := !total_in + Array.length node.Graph.inputs;
      total_out := !total_out + Array.length node.Graph.outputs)
    g;
  let op = Array.make n 0
  and p1 = Array.make n 0
  and p2 = Array.make n 0
  and in_base = Array.make n 0
  and in_n = Array.make n 0
  and out_base = Array.make n 0
  and out_n = Array.make n 0
  and ins = Array.make (max !total_in 1) (-1)
  and outs = Array.make (max !total_out 1) (-1) in
  let empty_ring = Ring.create ~stride:1 2 in
  let ring = Array.make n empty_ring in
  let gen_next_f = Array.make n dummy_gen_next in
  let gen_group_f = Array.make n dummy_gen_group in
  let g_done = Array.make n false in
  let ib = ref 0 and ob = ref 0 in
  let gens = ref 0 in
  for slot = 0 to n - 1 do
    let node = Graph.node g order.(slot) in
    in_base.(slot) <- !ib;
    in_n.(slot) <- Array.length node.Graph.inputs;
    Array.iteri (fun k cid -> ins.(!ib + k) <- cid) node.Graph.inputs;
    ib := !ib + in_n.(slot);
    out_base.(slot) <- !ob;
    out_n.(slot) <- Array.length node.Graph.outputs;
    Array.iteri (fun k cid -> outs.(!ob + k) <- cid) node.Graph.outputs;
    ob := !ob + out_n.(slot);
    match node.Graph.kind with
    | Gen spec ->
        op.(slot) <- op_gen;
        gen_next_f.(slot) <- spec.gen_next;
        gen_group_f.(slot) <- spec.gen_group;
        incr gens
    | Const c ->
        op.(slot) <- op_const;
        p1.(slot) <- c
    | Unop u ->
        op.(slot) <- op_unop;
        p1.(slot) <- unop_code u
    | Binop b ->
        let lat = cfg.op_latency b in
        if lat > 0 then begin
          (* an entry occupies the pipe for latency+1 cycles (entering at
             the eval of its acceptance, draining the eval its ready cycle
             is reached), so II=1 needs latency+1 records *)
          op.(slot) <- op_pipe;
          p1.(slot) <- binop_code b;
          p2.(slot) <- lat;
          ring.(slot) <- Ring.create ~stride:3 (lat + 1)
        end
        else begin
          op.(slot) <- op_binop;
          p1.(slot) <- binop_code b
        end
    | Fork k ->
        op.(slot) <- op_fork;
        p1.(slot) <- k
    | Join k ->
        op.(slot) <- op_join;
        p1.(slot) <- k
    | Merge k ->
        op.(slot) <- op_merge;
        p1.(slot) <- k
    | Mux k ->
        op.(slot) <- op_mux;
        p1.(slot) <- k
    | Branch -> op.(slot) <- op_branch
    | Buffer { transparent; slots } ->
        op.(slot) <- (if transparent then op_tbuf else op_obuf);
        p1.(slot) <- slots;
        ring.(slot) <- Ring.create ~stride:3 slots
    | Sink -> op.(slot) <- op_sink
    | Load { port } ->
        op.(slot) <- op_load;
        p1.(slot) <- port;
        ring.(slot) <- Ring.create ~stride:1 8
    | Store { port } ->
        op.(slot) <- op_store;
        p1.(slot) <- port;
        ring.(slot) <- Ring.create ~stride:2 store_pending_cap
    | Skip { port } ->
        op.(slot) <- op_skip;
        p1.(slot) <- port
    | Galloc { group } ->
        op.(slot) <- op_galloc;
        p1.(slot) <- group
  done;
  let chan_src = Array.make (max nc 1) 0 and chan_dst = Array.make (max nc 1) 0 in
  for cid = 0 to nc - 1 do
    let c = Graph.chan g cid in
    chan_src.(cid) <- slot_of.(c.Graph.src.Graph.node);
    chan_dst.(cid) <- slot_of.(c.Graph.dst.Graph.node)
  done;
  let nwords = (n + 31) lsr 5 in
  let t =
    {
      g;
      cfg;
      mem;
      n;
      nc;
      cur_key = Array.make (max nc 1) Token.none;
      cur_val = Array.make (max nc 1) 0;
      stg_key = Array.make (max nc 1) Token.none;
      stg_val = Array.make (max nc 1) 0;
      consumed = Array.make (max nc 1) false;
      stall_until = Array.make (max nc 1) 0;
      chan_src;
      chan_dst;
      nid_of = order;
      slot_of;
      op;
      p1;
      p2;
      in_base;
      in_n;
      out_base;
      out_n;
      ins;
      outs;
      ring;
      gen_next_f;
      gen_group_f;
      g_seq = Array.make n 0;
      g_done;
      g_emitted = Array.make n 0;
      fires = Array.make n 0;
      faults =
        List.sort (fun (a : Fault.event) b -> compare a.Fault.at_cycle b.Fault.at_cycle)
          cfg.faults
        |> List.map (fun e ->
               { fs_event = e; fs_fired = None; fs_dead = false; fs_note = "" })
        |> Array.of_list;
      event = cfg.engine = Event;
      awake = Array.make (max nwords 1) 0;
      wave = Array.make (max nwords 1) 0;
      wheel = Wheel.create ();
      wake_cb = ignore;
      cur_slot = -1;
      dense = false;
      bookkeep = cfg.engine = Event;
      nfired = 0;
      touched = Array.make (max nc 1) false;
      touch_stack = Array.make (max nc 1) 0;
      touch_len = 0;
      occupied = 0;
      held = 0;
      gens_active = !gens;
      lslot = Memif.fresh_slot ();
      evals = 0;
      epoch = 0;
      cycle = 0;
      progress = false;
      last_progress = 0;
      trace;
      epoch_start = 0;
      last_inflight = -1;
      prof;
      prof_on = Pv_obs.Prof.enabled prof;
    }
  in
  if t.prof_on then
    Pv_obs.Prof.set_nodes prof
      (Array.init n (fun nid ->
           let node = Graph.node g nid in
           (kind_name node.Graph.kind, node.Graph.label)));
  t.wake_cb <- (fun slot -> wake t slot);
  wake_all t;
  t

(* --- channel helpers ---------------------------------------------------- *)

let[@inline] touch t cid =
  if not (agb t.touched cid) then begin
    asetb t.touched cid true;
    aset t.touch_stack t.touch_len cid;
    t.touch_len <- t.touch_len + 1
  end

(* A token is present and consumable this cycle. *)
let[@inline] in_ready t cid =
  ag t.cur_key cid >= 0
  && (not (agb t.consumed cid))
  && ag t.stall_until cid <= t.cycle

(* Consume the input token (caller checked [in_ready]; the token's fields
   stay readable in [cur_*] until the clock edge). *)
let take t cid =
  asetb t.consumed cid true;
  touch t cid;
  t.progress <- true;
  if t.bookkeep then begin
    (* the freed register is visible to its producer this very cycle
       (consumers run first): pull the producer into the current wave if
       its turn is still to come *)
    let p = ag t.chan_src cid in
    if p > t.cur_slot then bs_set t.wave p
  end

(* An output register can accept a new token this cycle if it is empty (or
   its current token is being consumed this cycle) and nothing was staged
   on it yet. *)
let[@inline] out_free t cid =
  ag t.stg_key cid < 0 && (ag t.cur_key cid < 0 || agb t.consumed cid)

let put t cid ~key ~value =
  assert (t.stg_key.(cid) < 0);
  aset t.stg_key cid key;
  aset t.stg_val cid value;
  touch t cid;
  t.progress <- true

(* Loop helpers as tail recursions: a [for] body cannot early-exit and a
   [ref] accumulator would allocate, which the hot loop must not. *)
let rec outs_free t b i n =
  i >= n || (out_free t (ag t.outs (b + i)) && outs_free t b (i + 1) n)

let rec ins_ready t b i n =
  i >= n || (in_ready t (ag t.ins (b + i)) && ins_ready t b (i + 1) n)

let rec first_ready t b i n =
  if i >= n then -1
  else if in_ready t (ag t.ins (b + i)) then i
  else first_ready t b (i + 1) n

let rec max_in_field t (arr : int array) b i n acc =
  if i >= n then acc
  else
    let v = ag arr (ag t.ins (b + i)) in
    max_in_field t arr b (i + 1) n (if v > acc then v else acc)

let rec take_all t b i n =
  if i < n then begin
    take t (ag t.ins (b + i));
    take_all t b (i + 1) n
  end

let[@inline] imax (a : int) (b : int) = if a >= b then a else b

let[@inline] fire t slot =
  let nid = ag t.nid_of slot in
  aset t.fires nid (ag t.fires nid + 1);
  t.nfired <- t.nfired + 1;
  t.progress <- true

(* --- node evaluation ---------------------------------------------------- *)

(* Buffer emission: at most one per cycle; a transparent buffer may pass a
   token accepted this very cycle (so it costs one stage like any other
   node and only adds capacity), an opaque one holds it for a cycle (a
   timing-breaking register). *)
let buf_try_emit t r co ~transparent =
  Ring.length r > 0
  && (transparent || Ring.get r 0 2 < t.cycle)
  && out_free t co
  && begin
       put t co ~key:(Ring.get r 0 0) ~value:(Ring.get r 0 1);
       Ring.pop r;
       t.held <- t.held - 1;
       true
     end

(* Wake-set invariant (the [t.event && …] tails below): after its
   evaluation, a node may sleep unless it still holds work that could fire
   with NO further channel event — refused backend calls must be retried
   (the refusal clears on a backend-internal transition the simulator
   cannot observe), FU pipes and buffers become drainable by the mere
   passage of time, an unexhausted generator races the backend for
   allocation, and an outstanding load response must be polled.  Everything
   else is re-woken by the channel commits, the same-cycle pull in [take],
   squash wake-alls, or fault wakes.  The stay-awake decision is folded
   into each dispatch arm so the sweep needs no second dispatch. *)
let[@inline] pending_in t slot k =
  let cid = ag t.ins (ag t.in_base slot + k) in
  cid >= 0 && ag t.cur_key cid >= 0 && not (agb t.consumed cid)

let eval_slot t slot =
  match ag t.op slot with
  | 0 (* Gen *) ->
      if not (agb t.g_done slot) then begin
        let ob = ag t.out_base slot and on = ag t.out_n slot in
        if outs_free t ob 0 on then begin
          let seq = ag t.g_seq slot in
          let row = t.gen_next_f.(slot) seq in
          if Array.length row = 0 then begin
            asetb t.g_done slot true;
            t.gens_active <- t.gens_active - 1
          end
          else if
            t.mem.Memif.begin_instance ~seq ~group:(t.gen_group_f.(slot) seq)
          then begin
            let key = Token.unsafe ~seq ~epoch:t.epoch in
            for i = 0 to on - 1 do
              put t (ag t.outs (ob + i)) ~key ~value:row.(i)
            done;
            aset t.g_seq slot (seq + 1);
            aset t.g_emitted slot (ag t.g_emitted slot + 1);
            fire t slot
          end
          else begin
            let s = t.mem.Memif.stats () in
            s.Memif.stall_alloc <- s.Memif.stall_alloc + 1
          end
        end;
        if t.bookkeep && not (agb t.g_done slot) then bs_set t.awake slot
      end
  | 1 (* Const *) ->
      let ci = ag t.ins (ag t.in_base slot) in
      if in_ready t ci then begin
        let co = ag t.outs (ag t.out_base slot) in
        if out_free t co then begin
          take t ci;
          put t co ~key:(ag t.cur_key ci) ~value:(ag t.p1 slot);
          fire t slot
        end
      end
  | 2 (* Unop *) ->
      let ci = ag t.ins (ag t.in_base slot) in
      if in_ready t ci then begin
        let co = ag t.outs (ag t.out_base slot) in
        if out_free t co then begin
          take t ci;
          put t co ~key:(ag t.cur_key ci)
            ~value:(eval_unop_code (ag t.p1 slot) (ag t.cur_val ci));
          fire t slot
        end
      end
  | 3 (* Binop, combinational *) ->
      let b = ag t.in_base slot in
      let ca = ag t.ins b and cb = ag t.ins (b + 1) in
      if in_ready t ca && in_ready t cb then begin
        let co = ag t.outs (ag t.out_base slot) in
        if out_free t co then begin
          take t ca;
          take t cb;
          (* packed keys order lexicographically by (seq, epoch), so one
             int max replaces the two per-field maxes of the boxed era *)
          put t co
            ~key:(imax (ag t.cur_key ca) (ag t.cur_key cb))
            ~value:
              (eval_binop_code (ag t.p1 slot) (ag t.cur_val ca)
                 (ag t.cur_val cb));
          fire t slot
        end
      end
  | 4 (* Binop, pipelined *) ->
      let b = ag t.in_base slot in
      let ca = ag t.ins b and cb = ag t.ins (b + 1) in
      let r = t.ring.(slot) in
      let accepted =
        in_ready t ca
        && in_ready t cb
        && Ring.length r < ag t.p2 slot + 1
        && begin
             take t ca;
             take t cb;
             Ring.push3 r
               (t.cycle + ag t.p2 slot)
               (imax (ag t.cur_key ca) (ag t.cur_key cb))
               (eval_binop_code (ag t.p1 slot) (ag t.cur_val ca)
                  (ag t.cur_val cb));
             t.held <- t.held + 1;
             true
           end
      in
      (* drain a completed pipelined result *)
      let drained =
        Ring.length r > 0
        && Ring.get r 0 0 <= t.cycle
        && begin
             let co = ag t.outs (ag t.out_base slot) in
             out_free t co
             && begin
                  put t co ~key:(Ring.get r 0 1) ~value:(Ring.get r 0 2);
                  Ring.pop r;
                  t.held <- t.held - 1;
                  true
                end
           end
      in
      if accepted || drained then fire t slot;
      if t.bookkeep && Ring.length r > 0 then bs_set t.awake slot
  | 5 (* Fork *) ->
      let ci = ag t.ins (ag t.in_base slot) in
      if in_ready t ci then begin
        let ob = ag t.out_base slot and on = ag t.out_n slot in
        if outs_free t ob 0 on then begin
          take t ci;
          let k = ag t.cur_key ci and v = ag t.cur_val ci in
          for i = 0 to on - 1 do
            put t (ag t.outs (ob + i)) ~key:k ~value:v
          done;
          fire t slot
        end
      end
  | 6 (* Join *) ->
      let b = ag t.in_base slot and n = ag t.in_n slot in
      if ins_ready t b 0 n then begin
        let co = ag t.outs (ag t.out_base slot) in
        if out_free t co then begin
          (* forwards input 0's value under the max packed key *)
          let v = ag t.cur_val (ag t.ins b) in
          let k = max_in_field t t.cur_key b 0 n 0 in
          take_all t b 0 n;
          put t co ~key:k ~value:v;
          fire t slot
        end
      end
  | 7 (* Merge *) ->
      let co = ag t.outs (ag t.out_base slot) in
      if out_free t co then begin
        let b = ag t.in_base slot in
        let chosen = first_ready t b 0 (ag t.in_n slot) in
        if chosen >= 0 then begin
          let ci = ag t.ins (b + chosen) in
          take t ci;
          put t co ~key:(ag t.cur_key ci) ~value:(ag t.cur_val ci);
          fire t slot
        end
      end
  | 8 (* Mux *) ->
      let b = ag t.in_base slot in
      let sel = ag t.ins b in
      if in_ready t sel then begin
        let k = ag t.cur_val sel in
        if k >= 0 && k < ag t.p1 slot then begin
          let d = ag t.ins (b + 1 + k) in
          if in_ready t d then begin
            let co = ag t.outs (ag t.out_base slot) in
            if out_free t co then begin
              take t sel;
              take t d;
              put t co ~key:(ag t.cur_key d) ~value:(ag t.cur_val d);
              fire t slot
            end
          end
        end
      end
  | 9 (* Branch *) ->
      let b = ag t.in_base slot in
      let d = ag t.ins b and c = ag t.ins (b + 1) in
      if in_ready t d && in_ready t c then begin
        let out = if ag t.cur_val c <> 0 then 0 else 1 in
        let co = ag t.outs (ag t.out_base slot + out) in
        if out_free t co then begin
          take t d;
          take t c;
          put t co ~key:(ag t.cur_key d) ~value:(ag t.cur_val d);
          fire t slot
        end
      end
  | 10 | 11 (* Buffer (transparent | opaque) *) ->
      let transparent = ag t.op slot = 10 in
      let r = t.ring.(slot) in
      let co = ag t.outs (ag t.out_base slot) in
      let emitted = buf_try_emit t r co ~transparent in
      let ci = ag t.ins (ag t.in_base slot) in
      let accepted =
        in_ready t ci
        && Ring.length r < ag t.p1 slot
        && begin
             take t ci;
             Ring.push3 r (ag t.cur_key ci) (ag t.cur_val ci) t.cycle;
             t.held <- t.held + 1;
             if (not emitted) && transparent then
               ignore (buf_try_emit t r co ~transparent : bool);
             true
           end
      in
      if emitted || accepted then fire t slot;
      if t.bookkeep && Ring.length r > 0 then bs_set t.awake slot
  | 12 (* Sink *) ->
      let ci = ag t.ins (ag t.in_base slot) in
      if in_ready t ci then begin
        take t ci;
        fire t slot
      end
  | 13 (* Load *) ->
      (* deliver a completed response *)
      let co = ag t.outs (ag t.out_base slot) in
      let delivered =
        out_free t co
        && t.mem.Memif.load_poll ~port:(ag t.p1 slot) t.lslot
        && begin
             let r = t.ring.(slot) in
             if Ring.length r > 0 then Ring.pop r;
             (* re-stamp the delivery epoch: the response carries the
                request's key, but the token enters the circuit under the
                CURRENT epoch, as the boxed representation did *)
             put t co
               ~key:(Token.with_epoch t.lslot.Memif.ls_key ~epoch:t.epoch)
               ~value:t.lslot.Memif.ls_value;
             true
           end
      in
      (* present a new request *)
      let ci = ag t.ins (ag t.in_base slot) in
      let requested =
        in_ready t ci
        && t.mem.Memif.load_req ~port:(ag t.p1 slot) ~key:(ag t.cur_key ci)
             ~addr:(ag t.cur_val ci)
        && begin
             take t ci;
             Ring.push1 t.ring.(slot) (ag t.cur_key ci);
             true
           end
      in
      if delivered || requested then fire t slot;
      if t.bookkeep && (pending_in t slot 0 || Ring.length t.ring.(slot) > 0)
      then bs_set t.awake slot
  | 14 (* Store *) ->
      (* the address side is decoupled from the data side, as in a real
         store port: addresses are consumed and announced to the backend as
         soon as they are computed, letting the LSQ resolve ordering
         without waiting for the data *)
      let r = t.ring.(slot) in
      let b = ag t.in_base slot in
      let ca = ag t.ins b and cd = ag t.ins (b + 1) in
      let addr_done =
        in_ready t ca
        && Ring.length r < store_pending_cap
        && begin
             take t ca;
             t.mem.Memif.store_addr ~port:(ag t.p1 slot) ~key:(ag t.cur_key ca)
               ~addr:(ag t.cur_val ca);
             Ring.push2 r (ag t.cur_key ca) (ag t.cur_val ca);
             t.held <- t.held + 1;
             true
           end
      in
      let data_done =
        in_ready t cd
        && Ring.length r > 0
        && begin
             let key = Ring.get r 0 0 and addr = Ring.get r 0 1 in
             (* compare seqs, not whole keys: the addr and data tokens of
                one instance may legitimately carry different epochs *)
             if Token.seq key <> Token.seq (ag t.cur_key cd) then
               failwith
                 (Printf.sprintf
                    "store port %d: pending addr seq=%d but data seq=%d (cycle %d)"
                    (ag t.p1 slot) (Token.seq key)
                    (Token.seq (ag t.cur_key cd))
                    t.cycle);
             t.mem.Memif.store_req ~port:(ag t.p1 slot) ~key ~addr
               ~value:(ag t.cur_val cd)
             && begin
                  Ring.pop r;
                  t.held <- t.held - 1;
                  take t cd;
                  true
                end
           end
      in
      if addr_done || data_done then fire t slot;
      if t.bookkeep && (pending_in t slot 0 || pending_in t slot 1) then
        bs_set t.awake slot
  | 15 (* Skip *) ->
      let ci = ag t.ins (ag t.in_base slot) in
      if
        in_ready t ci
        && t.mem.Memif.op_skip ~port:(ag t.p1 slot) ~key:(ag t.cur_key ci)
      then begin
        take t ci;
        fire t slot
      end;
      if t.bookkeep && pending_in t slot 0 then bs_set t.awake slot
  | _ (* Galloc *) ->
      let ci = ag t.ins (ag t.in_base slot) in
      if
        in_ready t ci
        && t.mem.Memif.alloc_group ~key:(ag t.cur_key ci) ~group:(ag t.p1 slot)
      then begin
        take t ci;
        fire t slot
      end;
      if t.bookkeep && pending_in t slot 0 then bs_set t.awake slot

(* --- squash ------------------------------------------------------------- *)

(* Purge every in-flight token with [seq >= seq_err]: channel registers by
   direct clear, ring-held records by in-place order-preserving compaction
   ({!Ring.reject_ge}) — no scratch queue is ever allocated.  The cutoff is
   a packed key: [key >= Token.first ~seq:seq_err] iff [seq key >= seq_err]
   for every real key, and the empty-register sentinel (-1) never clears. *)
let purge t ~seq_err =
  t.epoch <- t.epoch + 1;
  let cut = Token.first ~seq:seq_err in
  for cid = 0 to t.nc - 1 do
    if t.cur_key.(cid) >= cut then begin
      t.cur_key.(cid) <- Token.none;
      t.occupied <- t.occupied - 1
    end;
    if t.stg_key.(cid) >= cut then t.stg_key.(cid) <- Token.none
  done;
  for slot = 0 to t.n - 1 do
    match t.op.(slot) with
    | 0 (* Gen *) ->
        if t.g_seq.(slot) > seq_err then t.g_seq.(slot) <- seq_err;
        if t.g_done.(slot) then begin
          t.g_done.(slot) <- false;
          t.gens_active <- t.gens_active + 1
        end
    | 4 (* pipe: key is field 1 *) ->
        t.held <- t.held - Ring.reject_ge t.ring.(slot) ~field:1 ~cutoff:cut
    | 10 | 11 | 14 (* buffers / pending stores: key is field 0 *) ->
        t.held <- t.held - Ring.reject_ge t.ring.(slot) ~field:0 ~cutoff:cut
    | 13 (* load responses: mirrors the backend's own purge cutoff
            (see Memif.poll_squash) so sleeping Loads never poll a dead
            response; not counted in [held] *) ->
        ignore (Ring.reject_ge t.ring.(slot) ~field:0 ~cutoff:cut : int)
    | _ -> ()
  done

(* --- fault injection ---------------------------------------------------- *)

(* Apply every armed fault event that is due and applicable this cycle.
   Runs at the very top of [step], BEFORE the squash poll: a detected
   fault ([*_replay]) both disturbs the token and raises the squash, so
   the purge that follows in the same step erases the corrupted token
   before any node can observe it — exactly the one-cycle detection a
   parity-checked elastic channel would give. *)
let apply_faults t =
  let any_fired = ref false in
  let tok_of chan : token = (t.cur_key.(chan), t.cur_val.(chan)) in
  Array.iter
    (fun fs ->
      if fs.fs_fired = None && (not fs.fs_dead)
         && t.cycle >= fs.fs_event.Fault.at_cycle
      then
        let fired ?(note = "") () =
          fs.fs_fired <- Some t.cycle;
          fs.fs_note <- note;
          any_fired := true;
          Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_fault ~ts:t.cycle
            ("fault: " ^ Fault.string_of_event fs.fs_event)
        in
        match fs.fs_event.Fault.action with
        | Fault.Drop { chan } ->
            if t.cur_key.(chan) >= 0 then begin
              let note = Format.asprintf "lost %a" pp_token (tok_of chan) in
              t.cur_key.(chan) <- Token.none;
              t.occupied <- t.occupied - 1;
              fired ~note ()
            end
        | Fault.Drop_replay { chan } ->
            if t.cur_key.(chan) >= 0
               && t.mem.Memif.inject
                    (Fault.B_squash { seq = Token.seq t.cur_key.(chan) })
            then begin
              (* else: a pre-commit-frontier remnant; retry on a younger
                 token *)
              let note =
                Format.asprintf "lost %a, squash raised" pp_token (tok_of chan)
              in
              t.cur_key.(chan) <- Token.none;
              t.occupied <- t.occupied - 1;
              fired ~note ()
            end
        | Fault.Stall { chan; cycles } ->
            t.stall_until.(chan) <- imax t.stall_until.(chan) (t.cycle + cycles);
            if t.event then
              (* the frozen token can only move again when the stall
                 expires — a timed event no channel commit announces *)
              Wheel.add t.wheel ~at:t.stall_until.(chan) t.chan_dst.(chan);
            fired ()
        | Fault.Flip { chan; mask } ->
            if t.cur_key.(chan) >= 0 then begin
              let note = Format.asprintf "corrupted %a" pp_token (tok_of chan) in
              t.cur_val.(chan) <- t.cur_val.(chan) lxor mask;
              fired ~note ()
            end
        | Fault.Flip_replay { chan; mask } ->
            if t.cur_key.(chan) >= 0
               && t.mem.Memif.inject
                    (Fault.B_squash { seq = Token.seq t.cur_key.(chan) })
            then begin
              let note =
                Format.asprintf "corrupted %a, squash raised" pp_token
                  (tok_of chan)
              in
              t.cur_val.(chan) <- t.cur_val.(chan) lxor mask;
              fired ~note ()
            end
        | Fault.Backend b ->
            if t.mem.Memif.inject b then fired ()
            else (
              match b with
              | Fault.B_squash _ ->
                  (* the frontier only advances: a stale squash point stays
                     stale, so stop retrying *)
                  fs.fs_dead <- true;
                  fs.fs_note <- "squash point already committed"
              | Fault.B_pq_flip _ | Fault.B_pq_drop _ -> ()))
    t.faults;
  (* a disturbance invalidates the wake set wholesale; faults are rare, so
     one conservative wake-all per firing is cheaper than per-case proofs *)
  if !any_fired && t.event then wake_all t

(** What each planned fault did (or why it never fired). *)
let fault_log t : Fault.application list =
  Array.to_list t.faults
  |> List.map (fun fs ->
         {
           Fault.ap_event = fs.fs_event;
           ap_fired_at = fs.fs_fired;
           ap_note = fs.fs_note;
         })

(* --- post-mortem -------------------------------------------------------- *)

let cap_list n l =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go n l

(** Snapshot the diagnosis state; attached to [Deadlock]/[Timeout] so a hung
    run explains itself without a debugger. *)
let post_mortem t : post_mortem =
  let occupied = ref 0 in
  let tokens = ref [] in
  for cid = t.nc - 1 downto 0 do
    if t.cur_key.(cid) >= 0 then begin
      incr occupied;
      tokens := ((cid, (t.cur_key.(cid), t.cur_val.(cid))) : chan_id * token) :: !tokens
    end
  done;
  let oldest = ref None in
  let note_seq s =
    match !oldest with
    | None -> oldest := Some s
    | Some o -> if s < o then oldest := Some s
  in
  for cid = 0 to t.nc - 1 do
    if t.cur_key.(cid) >= 0 then note_seq (Token.seq t.cur_key.(cid));
    if t.stg_key.(cid) >= 0 then note_seq (Token.seq t.stg_key.(cid))
  done;
  for slot = 0 to t.n - 1 do
    let r = t.ring.(slot) in
    match t.op.(slot) with
    | 4 -> Ring.iter (fun i -> note_seq (Token.seq (Ring.get r i 1))) r
    | 10 | 11 | 14 -> Ring.iter (fun i -> note_seq (Token.seq (Ring.get r i 0))) r
    | _ -> ()
  done;
  let stalled = ref [] in
  let gens = ref [] in
  for nid = t.n - 1 downto 0 do
    let node = Graph.node t.g nid in
    let slot = t.slot_of.(nid) in
    let wired = Array.to_list node.Graph.inputs |> List.filter (fun c -> c >= 0) in
    let any_in = List.exists (fun c -> t.cur_key.(c) >= 0) wired in
    let frozen =
      List.filter
        (fun c -> t.cur_key.(c) >= 0 && t.stall_until.(c) > t.cycle)
        wired
    in
    let missing =
      (* a Merge fires on any single input, so it is never input-starved *)
      match node.Graph.kind with
      | Merge _ -> []
      | _ ->
          Array.to_list node.Graph.inputs
          |> List.mapi (fun islot c -> (islot, c))
          |> List.filter (fun (_, c) -> c >= 0 && t.cur_key.(c) < 0)
    in
    let out_full =
      Array.to_list node.Graph.outputs
      |> List.filter (fun c -> c >= 0 && t.cur_key.(c) >= 0)
    in
    let add why = stalled := (nid, node.Graph.label, why) :: !stalled in
    if t.op.(slot) = op_gen then begin
      gens := (nid, t.g_seq.(slot), t.g_done.(slot)) :: !gens;
      if not t.g_done.(slot) then
        if out_full <> [] then
          add
            (Printf.sprintf "generator blocked: output chan %d occupied"
               (List.hd out_full))
        else add "generator blocked: allocation refused by backend"
    end
    else begin
      let opc = t.op.(slot) in
      let r = t.ring.(slot) in
      let internal =
        if opc = op_pipe && Ring.length r > 0 then
          Some
            (Printf.sprintf "%d result(s) stuck in FU pipeline" (Ring.length r))
        else if (opc = op_tbuf || opc = op_obuf) && Ring.length r > 0 then
          Some (Printf.sprintf "%d token(s) stuck in buffer" (Ring.length r))
        else if opc = op_store && Ring.length r > 0 then
          Some
            (Printf.sprintf
               "%d announced store(s) awaiting data (head: seq=%d addr=%d)"
               (Ring.length r)
               (Token.seq (Ring.get r 0 0))
               (Ring.get r 0 1))
        else None
      in
      if any_in || internal <> None then begin
        let why =
          if frozen <> [] then
            Printf.sprintf "input chan %d frozen by injected stall"
              (List.hd frozen)
          else
            match internal with
            | Some w -> w
            | None -> (
                if missing <> [] && any_in then
                  let islot, c = List.hd missing in
                  Printf.sprintf "starved: input slot %d (chan %d) empty" islot c
                else if out_full <> [] then
                  Printf.sprintf "backpressured: output chan %d occupied"
                    (List.hd out_full)
                else
                  match node.Graph.kind with
                  | Load _ | Store _ | Skip _ | Galloc _ ->
                      "inputs ready but refused by memory backend"
                  | _ -> "inputs ready, output free")
        in
        add why
      end
    end
  done;
  let fault_stalls = ref [] in
  for cid = t.nc - 1 downto 0 do
    if t.stall_until.(cid) > t.cycle then fault_stalls := cid :: !fault_stalls
  done;
  {
    pm_at_cycle = t.cycle;
    pm_last_progress = t.last_progress;
    pm_epoch = t.epoch;
    pm_occupied = !occupied;
    pm_tokens = cap_list 16 !tokens;
    pm_oldest_seq = !oldest;
    pm_stalled = cap_list 16 !stalled;
    pm_gens = !gens;
    pm_fault_stalls = !fault_stalls;
    pm_backend = t.mem.Memif.describe ();
    pm_faults = fault_log t;
  }

(* --- main loop ---------------------------------------------------------- *)

(* The occupancy counters make this O(1) where the old engine re-scanned
   every channel and queue: a run is done when no generator can emit, no
   channel register holds a token, no pipe/buffer/pending-store record is
   in flight, and the backend has committed everything it accepted.
   Outstanding load responses are intentionally NOT part of the circuit-side
   condition — the backend's [quiesced] covers them, exactly as before. *)
let finished t =
  t.gens_active = 0 && t.occupied = 0 && t.held = 0 && t.mem.Memif.quiesced ()

(* --- profiled evaluation ------------------------------------------------ *)

(* Allocation-free mirror of the post-mortem stall classification, reduced
   to a reason code: called (only when profiling) after an evaluation that
   did not fire, so hot nodes can be split into fired vs. blocked-and-why.
   Returns -1 when the node simply has no work (an idle wake, not a
   stall). *)

let rec any_pending_in t slot k n =
  k < n && (pending_in t slot k || any_pending_in t slot (k + 1) n)

let rec any_frozen_in t slot k n =
  if k >= n then false
  else
    let cid = ag t.ins (ag t.in_base slot + k) in
    (cid >= 0 && ag t.cur_key cid >= 0 && ag t.stall_until cid > t.cycle)
    || any_frozen_in t slot (k + 1) n

let rec any_empty_in t slot k n =
  if k >= n then false
  else
    let cid = ag t.ins (ag t.in_base slot + k) in
    (cid >= 0 && ag t.cur_key cid < 0) || any_empty_in t slot (k + 1) n

let stall_reason t slot =
  let opc = ag t.op slot in
  if opc = op_gen then
    if agb t.g_done slot then -1
    else if not (outs_free t (ag t.out_base slot) 0 (ag t.out_n slot)) then
      Pv_obs.Prof.reason_backpressured
    else Pv_obs.Prof.reason_refused
  else begin
    let n_in = ag t.in_n slot in
    let internal =
      (opc = op_pipe || opc = op_tbuf || opc = op_obuf || opc = op_store)
      && Ring.length t.ring.(slot) > 0
    in
    let any_in = any_pending_in t slot 0 n_in in
    if not (any_in || internal) then -1
    else if any_frozen_in t slot 0 n_in then Pv_obs.Prof.reason_frozen
    else if internal then Pv_obs.Prof.reason_internal
    else if opc <> op_merge && any_empty_in t slot 0 n_in then
      Pv_obs.Prof.reason_starved
    else if not (outs_free t (ag t.out_base slot) 0 (ag t.out_n slot)) then
      Pv_obs.Prof.reason_backpressured
    else if
      opc = op_load || opc = op_store || opc = op_skip || opc = op_galloc
    then Pv_obs.Prof.reason_refused
    else Pv_obs.Prof.reason_other
  end

(* Profiled evaluation: read-only around [eval_slot], so cycles, evals and
   fires are bit-identical with profiling on or off.  The fired-or-not
   verdict comes from the per-cycle [nfired] counter, which both engines
   advance on every fire. *)
let eval_profiled t slot =
  let before = t.nfired in
  eval_slot t slot;
  let nid = ag t.nid_of slot in
  Pv_obs.Prof.node_eval t.prof nid;
  if t.nfired = before then begin
    let r = stall_reason t slot in
    if r >= 0 then Pv_obs.Prof.stall t.prof nid ~reason:r
  end

(* Event-engine sweep: extract slots from the wave bitset in ascending order
   and evaluate each.  Written as a tail recursion over the word index so
   the hot loop allocates nothing (a [ref] cursor would be a heap cell).
   The current word is re-read after every eval because [take] may pull a
   producer with a slot later in the SAME word into the wave; keeping the
   pending bits in the in-memory word also dedupes a pull that targets a
   not-yet-evaluated slot. *)
let rec sweep t nw w =
  if w < nw then begin
    let bits = ag t.wave w in
    if bits = 0 then sweep t nw (w + 1)
    else begin
      let lsb = bits land -bits in
      aset t.wave w (bits lxor lsb);
      let slot = (w lsl 5) lor ctz32 lsb in
      t.cur_slot <- slot;
      t.evals <- t.evals + 1;
      if t.prof_on then eval_profiled t slot else eval_slot t slot;
      sweep t nw w
    end
  end

let step t =
  t.progress <- false;
  if Array.length t.faults > 0 then apply_faults t;
  (match t.mem.Memif.poll_squash () with
  | Some seq_err ->
      if Pv_obs.Trace.enabled t.trace then begin
        (* close the epoch span and mark the squash on the sim track *)
        Pv_obs.Trace.complete t.trace ~tid:Pv_obs.Trace.tid_sim
          ~ts:t.epoch_start
          ~dur:(max 1 (t.cycle - t.epoch_start))
          ~args:[ ("epoch", t.epoch) ]
          (Printf.sprintf "epoch %d" t.epoch);
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:t.cycle
          ~args:[ ("seq_err", seq_err); ("epoch", t.epoch + 1) ]
          "squash";
        t.epoch_start <- t.cycle
      end;
      purge t ~seq_err;
      (* the purge moves tokens everywhere at once; restart from a full set *)
      if t.event then wake_all t;
      t.progress <- true
  | None -> ());
  if t.event then begin
    if Wheel.pending t.wheel > 0 then Wheel.drain t.wheel ~now:t.cycle t.wake_cb;
    if t.dense then begin
      (* high-activity regime: a scan-shaped pass with [bookkeep] off; any
         awake bits raised meanwhile (wheel, faults) linger harmlessly and
         are subsumed by the wake_all on exit *)
      t.evals <- t.evals + t.n;
      if t.prof_on then
        for slot = 0 to t.n - 1 do
          eval_profiled t slot
        done
      else
        for slot = 0 to t.n - 1 do
          eval_slot t slot
        done
    end
    else begin
      (* seed the wave with the wake set (word-wise), then sweep; [take] may
         grow the wave downstream of the sweep cursor, and wakes raised
         during the sweep land in the next cycle's set *)
      let nw = Array.length t.awake in
      for w = 0 to nw - 1 do
        aset t.wave w (ag t.wave w lor ag t.awake w);
        aset t.awake w 0
      done;
      t.cur_slot <- -1;
      sweep t nw 0
    end
  end
  else begin
    t.evals <- t.evals + t.n;
    if t.prof_on then
      for slot = 0 to t.n - 1 do
        eval_profiled t slot
      done
    else
      for slot = 0 to t.n - 1 do
        eval_slot t slot
      done
  end;
  (* clock edge: commit only the channels touched this cycle (untouched
     channels cannot have staged writes or consumption marks); the loop is
     duplicated to hoist the wake-bookkeeping test out of the per-channel
     body *)
  if t.bookkeep then
    for k = 0 to t.touch_len - 1 do
      let cid = ag t.touch_stack k in
      if ag t.stg_key cid >= 0 then begin
        if ag t.cur_key cid < 0 then t.occupied <- t.occupied + 1;
        aset t.cur_key cid (ag t.stg_key cid);
        aset t.cur_val cid (ag t.stg_val cid);
        aset t.stg_key cid (-1);
        bs_set t.awake (ag t.chan_dst cid)
      end
      else if agb t.consumed cid then begin
        if ag t.cur_key cid >= 0 then t.occupied <- t.occupied - 1;
        aset t.cur_key cid (-1);
        bs_set t.awake (ag t.chan_src cid)
      end;
      asetb t.consumed cid false;
      asetb t.touched cid false
    done
  else
    for k = 0 to t.touch_len - 1 do
      let cid = ag t.touch_stack k in
      if ag t.stg_key cid >= 0 then begin
        if ag t.cur_key cid < 0 then t.occupied <- t.occupied + 1;
        aset t.cur_key cid (ag t.stg_key cid);
        aset t.cur_val cid (ag t.stg_val cid);
        aset t.stg_key cid (-1)
      end
      else if agb t.consumed cid then begin
        if ag t.cur_key cid >= 0 then t.occupied <- t.occupied - 1;
        aset t.cur_key cid (-1)
      end;
      asetb t.consumed cid false;
      asetb t.touched cid false
    done;
  t.touch_len <- 0;
  (* density hysteresis: enter the dense regime when >= 1/2 of the nodes
     fired this cycle, leave it when activity drops below 7/20.  An idle
     evaluation costs a handful of ns while the sparse mode's per-active-
     node bookkeeping (commit wakes, take pulls, sweep extraction) costs
     several times that, so the measured crossover sits near 50% activity
     — the sparse sweep must only run when most nodes are asleep.  The
     exit rebuilds the wake set wholesale because none was maintained
     while dense. *)
  if t.event then begin
    (if t.dense then begin
       if t.nfired * 20 < 7 * t.n then begin
         t.dense <- false;
         t.bookkeep <- true;
         wake_all t
       end
     end
     else if t.nfired * 2 >= t.n then begin
       t.dense <- true;
       t.bookkeep <- false
     end);
    t.nfired <- 0
  end;
  t.mem.Memif.clock ();
  if Pv_obs.Trace.enabled t.trace then begin
    (* in-flight token counter track, sampled on change only *)
    let inflight = ref t.occupied in
    for slot = 0 to t.n - 1 do
      let opc = t.op.(slot) in
      if opc = op_pipe || opc = op_tbuf || opc = op_obuf then
        inflight := !inflight + Ring.length t.ring.(slot)
    done;
    if !inflight <> t.last_inflight then begin
      Pv_obs.Trace.counter t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:t.cycle
        "in_flight_tokens" !inflight;
      t.last_inflight <- !inflight
    end
  end;
  if t.progress then t.last_progress <- t.cycle;
  t.cycle <- t.cycle + 1

(* Close the observability story of a run: final epoch span, outcome
   instant, and (for a wedged run) one stall-reason instant per blocked
   node so the trace explains the hang the way the post-mortem does. *)
let trace_outcome t outcome =
  if Pv_obs.Trace.enabled t.trace then begin
    Pv_obs.Trace.complete t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:t.epoch_start
      ~dur:(max 1 (t.cycle - t.epoch_start))
      ~args:[ ("epoch", t.epoch) ]
      (Printf.sprintf "epoch %d" t.epoch);
    match outcome with
    | Finished { cycles } ->
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:cycles
          "finished"
    | Deadlock { at_cycle; post_mortem = pm }
    | Timeout { at_cycle; post_mortem = pm } ->
        let what =
          match outcome with Deadlock _ -> "deadlock" | _ -> "timeout"
        in
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:at_cycle
          ~args:[ ("last_progress", pm.pm_last_progress) ]
          what;
        List.iter
          (fun (nid, label, why) ->
            Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:at_cycle
              ~args:[ ("node", nid) ]
              (Printf.sprintf "stall %s#%d: %s" label nid why))
          pm.pm_stalled
  end

let run ?(cfg = default_config) ?(trace = Pv_obs.Trace.null)
    ?(prof = Pv_obs.Prof.null) (g : Graph.t) (mem : Memif.t) :
    outcome * run_stats =
  let t = create ~cfg ~trace ~prof g mem in
  let rec loop () =
    if finished t then Finished { cycles = t.cycle }
    else if t.cycle >= cfg.max_cycles then
      Timeout { at_cycle = t.cycle; post_mortem = post_mortem t }
    else if t.cycle - t.last_progress > cfg.stall_limit then
      Deadlock { at_cycle = t.cycle; post_mortem = post_mortem t }
    else begin
      (* cooperative cancellation: polled every 64 cycles so a
         deadline-checking token (a clock read) costs nothing measurable *)
      if t.cycle land 63 = 0 && cfg.cancel () then
        raise (Cancelled { at_cycle = t.cycle });
      step t;
      loop ()
    end
  in
  let outcome = loop () in
  trace_outcome t outcome;
  let gen_instances = ref 0 in
  for slot = 0 to t.n - 1 do
    gen_instances := !gen_instances + t.g_emitted.(slot)
  done;
  ( outcome,
    {
      cycles = t.cycle;
      node_fires = Array.copy t.fires;
      gen_instances = !gen_instances;
      evals = t.evals;
    } )

(* --- read-only accessors (tools: profile, vcd, debug) ------------------- *)

let graph t = t.g
let cycle t = t.cycle
let last_progress t = t.last_progress
let epoch t = t.epoch
let evals t = t.evals
let fires t = t.fires

let chan_occupied t cid = t.cur_key.(cid) >= 0

let chan_token t cid : token option =
  if t.cur_key.(cid) < 0 then None
  else Some (t.cur_key.(cid), t.cur_val.(cid))

let buf_occupancy t nid =
  let slot = t.slot_of.(nid) in
  let opc = t.op.(slot) in
  if opc = op_tbuf || opc = op_obuf then
    Some (Ring.length t.ring.(slot), t.p1.(slot))
  else None
