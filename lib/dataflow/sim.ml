(** Cycle-accurate simulation of an elastic dataflow graph against a
    memory-disambiguation backend.

    Timing model: every channel behaves as a one-deep elastic register (the
    canonical latency-insensitive wire), so every component contributes one
    pipeline stage; functional units may add [op_latency] further internal
    stages (fully pipelined, initiation interval 1).  Nodes are evaluated
    once per cycle in consumers-before-producers order, so a register chain
    sustains one token per cycle — exactly the throughput behaviour of the
    circuits the paper measures, with stalls arising only from structural
    hazards and memory backpressure.

    Two engines share that cycle semantics.  [Scan] evaluates every node
    every cycle.  [Event] keeps a wake set and evaluates only nodes that can
    possibly fire: a node is awake iff one of its channels changed at the
    last clock edge, a timed event (injected stall expiry) is due, or it
    still holds retryable work (a refused backend call, a non-empty FU pipe
    or buffer, an unexhausted generator, an outstanding load response).
    Within a cycle, consuming a token pulls the channel's producer into the
    same wave when its turn is still to come, preserving the
    one-token-per-cycle streaming of the full scan.

    Squash/replay: when the backend reports a mis-speculation at [seq_err],
    the simulator bumps the global epoch, purges every in-flight token with
    [seq >= seq_err] (channels, buffers, functional-unit pipelines) and
    rewinds the loop-nest generator, which then re-emits the squashed body
    instances. *)

open Types

type engine = Scan | Event

let string_of_engine = function Scan -> "scan" | Event -> "event"

let engine_of_string = function
  | "scan" -> Some Scan
  | "event" -> Some Event
  | _ -> None

type config = {
  op_latency : binop -> int;
      (** extra internal stages of a functional unit beyond its channel
          register; 0 = purely combinational unit *)
  max_cycles : int;
  stall_limit : int;
      (** cycles without any token movement before declaring deadlock *)
  faults : Fault.plan;
      (** transient disturbances to inject during the run (resilience
          testing); empty for a fault-free simulation *)
  engine : engine;
      (** evaluation strategy; both engines are cycle-equivalent *)
  cancel : unit -> bool;
      (** cooperative cancellation token, polled by {!run} between cycles;
          when it turns true the run raises {!Cancelled}.  Never affects a
          completed result, so it is deliberately absent from result cache
          fingerprints. *)
}

exception Cancelled of { at_cycle : int }

(* Few, fat stages: the paper's circuits close at 7.2-9.2 ns, implying
   multi-level logic per stage; a 2-stage DSP multiplier and 3-stage
   divider are the corresponding pipelinings. *)
let default_latency = function
  | Mul -> 2
  | Mulc -> 0  (* shift-add network *)
  | Div | Rem -> 3
  | _ -> 0

let no_cancel () = false

let default_config =
  {
    op_latency = default_latency;
    max_cycles = 2_000_000;
    stall_limit = 4096;
    faults = [];
    engine = Event;
    cancel = no_cancel;
  }

(** Diagnosis attached to a non-[Finished] outcome: enough state to tell a
    starved pipeline from a backpressured one from a wedged backend without
    re-running under a debugger. *)
type post_mortem = {
  pm_at_cycle : int;
  pm_last_progress : int;  (** cycle of the last token movement *)
  pm_epoch : int;  (** squash epoch at the end (number of squashes seen) *)
  pm_occupied : int;  (** channel registers still holding a token *)
  pm_tokens : (chan_id * token) list;  (** in-flight tokens (capped) *)
  pm_oldest_seq : int option;  (** oldest in-flight iteration anywhere *)
  pm_stalled : (node_id * string * string) list;
      (** (node, label, stall reason) for nodes blocked with work (capped) *)
  pm_gens : (node_id * int * bool) list;  (** generator (node, next seq, done) *)
  pm_fault_stalls : chan_id list;  (** channels under an injected stall *)
  pm_backend : string;  (** backend state snapshot ({!Memif.t.describe}) *)
  pm_faults : Fault.application list;  (** what each planned fault did *)
}

type outcome =
  | Finished of { cycles : int }
  | Deadlock of { at_cycle : int; post_mortem : post_mortem }
  | Timeout of { at_cycle : int; post_mortem : post_mortem }

let pp_outcome ppf = function
  | Finished { cycles } -> Format.fprintf ppf "finished in %d cycles" cycles
  | Deadlock { at_cycle; _ } -> Format.fprintf ppf "DEADLOCK at cycle %d" at_cycle
  | Timeout { at_cycle; _ } -> Format.fprintf ppf "timeout at cycle %d" at_cycle

let pp_post_mortem ppf pm =
  Format.fprintf ppf "@[<v>post-mortem at cycle %d:@," pm.pm_at_cycle;
  Format.fprintf ppf "  last progress at cycle %d (%d idle cycles); epoch %d@,"
    pm.pm_last_progress
    (pm.pm_at_cycle - pm.pm_last_progress)
    pm.pm_epoch;
  Format.fprintf ppf "  %d occupied channel(s)%s@," pm.pm_occupied
    (match pm.pm_oldest_seq with
    | Some s -> Printf.sprintf "; oldest in-flight iteration %d" s
    | None -> "");
  List.iter
    (fun (cid, tok) ->
      Format.fprintf ppf "    chan %d: %a@," cid pp_token tok)
    pm.pm_tokens;
  List.iter
    (fun (nid, gseq, gdone) ->
      Format.fprintf ppf "  generator #%d: next seq %d, %s@," nid gseq
        (if gdone then "exhausted" else "not exhausted"))
    pm.pm_gens;
  if pm.pm_fault_stalls <> [] then
    Format.fprintf ppf "  channels under injected stall: %s@,"
      (String.concat ", " (List.map string_of_int pm.pm_fault_stalls));
  if pm.pm_stalled = [] then Format.fprintf ppf "  no node holds work@,"
  else begin
    Format.fprintf ppf "  stalled nodes:@,";
    List.iter
      (fun (nid, label, why) ->
        Format.fprintf ppf "    %s#%d: %s@," label nid why)
      pm.pm_stalled
  end;
  Format.fprintf ppf "  backend: %s@," pm.pm_backend;
  if pm.pm_faults <> [] then begin
    Format.fprintf ppf "  injected faults:@,";
    List.iter
      (fun ap -> Format.fprintf ppf "    %a@," Fault.pp_application ap)
      pm.pm_faults
  end;
  Format.fprintf ppf "@]"

type run_stats = {
  cycles : int;
  node_fires : int array;  (** per node id *)
  gen_instances : int;  (** body instances emitted, including replays *)
  evals : int;
      (** total [eval_node] calls; under [Scan] this is nodes x cycles,
          under [Event] only the awake subset *)
}

(* --- internal node state ------------------------------------------------ *)

type pipe_entry = { ready : int; tok : token }
(* [ready] is the absolute cycle at which the entry may drain: pushed at
   cycle [c] with latency [l], it drains at the first eval with
   [cycle >= c + l] — identical to the old per-cycle countdown, without
   touching every entry every cycle. *)

type nstate =
  | S_plain
  | S_pipe of pipe_entry Queue.t * int (* queue, capacity *)
  | S_buf of (token * int) Queue.t * int (* (token, arrival cycle), capacity *)
  | S_gen of gen_state
  | S_store of store_state

and store_state = {
  mutable announced : int;  (* last seq sent to store_addr *)
  pending : (int * int) Queue.t;  (* announced (seq, addr) awaiting data *)
}

and gen_state = {
  mutable g_seq : int;
  mutable g_done : bool;
  mutable g_emitted : int;
}

(** One armed fault event: fires at the first applicable cycle at or after
    its [at_cycle], at most once. *)
type fault_state = {
  fs_event : Fault.event;
  mutable fs_fired : int option;
  mutable fs_dead : bool;  (** permanently inapplicable; stop retrying *)
  mutable fs_note : string;
}

type t = {
  g : Graph.t;
  cfg : config;
  mem : Memif.t;
  (* channel slots: the elastic register of each channel *)
  cur : token option array;
  staged : token option array;
  consumed : bool array;
  states : nstate array;
  order : int array;  (* node evaluation order: consumers before producers *)
  pos : int array;  (* node id -> index in [order] *)
  chan_src : int array;  (* channel id -> producer node *)
  chan_dst : int array;  (* channel id -> consumer node *)
  fires : int array;
  faults : fault_state array;
  stall_until : int array;  (* per channel: consumption blocked below this cycle *)
  (* event engine: wake set for the next cycle, a position-indexed bitmap
     for the wave being evaluated, timed wakes for stall expiries, per-Load
     counts of outstanding responses, channels touched this cycle.  Stacks
     are preallocated (dedup by flag bounds them) so the hot loop does not
     allocate. *)
  event : bool;
  awake : bool array;
  wake_stack : int array;
  mutable wake_len : int;
  mutable timed_wakes : (int * node_id) list;
  wave : bool array;  (* indexed by [pos]: nodes to evaluate this cycle *)
  mutable cur_pos : int;
  load_resp : int Queue.t array;  (* per Load node: seqs of accepted requests *)
  touched : bool array;
  touch_stack : int array;
  mutable touch_len : int;
  mutable evals : int;
  mutable epoch : int;
  mutable cycle : int;
  mutable progress : bool;  (* any movement this cycle *)
  mutable last_progress : int;
  (* observability: [trace] is Trace.null unless a sink was passed to
     [create]; every emit site checks [Trace.enabled] first, so a disabled
     trace costs one branch.  [epoch_start]/[last_inflight] carry the open
     epoch span and the last emitted in-flight sample between cycles. *)
  trace : Pv_obs.Trace.t;
  mutable epoch_start : int;
  mutable last_inflight : int;
}

(* Evaluation order: consumers strictly before producers, so a full register
   chain streams one token per cycle (a consumer frees its input register in
   the same cycle the producer refills it).  For a DAG this is the reversed
   topological order; if the graph has (buffered) cycles we fall back to a
   DFS order that breaks at opaque buffers, costing a cycle of latency at
   each break but never correctness. *)
let eval_order (g : Graph.t) : int array =
  let n = Graph.n_nodes g in
  let succs nid =
    let node = Graph.node g nid in
    Array.to_list node.Graph.outputs
    |> List.filter_map (fun cid ->
           if cid = -1 then None
           else Some (Graph.chan g cid).Graph.dst.Graph.node)
  in
  (* Kahn's algorithm *)
  let indeg = Array.make n 0 in
  Graph.iter_chans
    (fun c -> indeg.(c.Graph.dst.Graph.node) <- indeg.(c.Graph.dst.Graph.node) + 1)
    g;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    topo := u :: !topo;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (succs u)
  done;
  if List.length !topo = n then Array.of_list !topo (* reversed topo *)
  else begin
    (* cyclic graph: DFS with order breaks at opaque buffers *)
    let visited = Array.make n false in
    let order = ref [] in
    let is_break nid =
      match (Graph.node g nid).Graph.kind with
      | Buffer { transparent = false; _ } -> true
      | _ -> false
    in
    let rec dfs nid =
      if not visited.(nid) then begin
        visited.(nid) <- true;
        if not (is_break nid) then List.iter dfs (succs nid);
        order := nid :: !order
      end
    in
    for i = 0 to n - 1 do
      dfs i
    done;
    Array.of_list (List.rev !order)
  end

let init_state cfg (node : Graph.node) : nstate =
  match node.Graph.kind with
  | Binop op when cfg.op_latency op > 0 ->
      (* an entry occupies the pipe for latency+1 cycles (entering at the
         eval of its acceptance, draining the eval its ready-cycle is
         reached), so II=1 needs latency+1 slots *)
      let l = cfg.op_latency op in
      S_pipe (Queue.create (), l + 1)
  | Buffer { slots; _ } -> S_buf (Queue.create (), slots)
  | Gen _ -> S_gen { g_seq = 0; g_done = false; g_emitted = 0 }
  | Store _ -> S_store { announced = -1; pending = Queue.create () }
  | _ -> S_plain

(* --- wake set ----------------------------------------------------------- *)

let wake t nid =
  if not t.awake.(nid) then begin
    t.awake.(nid) <- true;
    t.wake_stack.(t.wake_len) <- nid;
    t.wake_len <- t.wake_len + 1
  end

let wake_all t =
  for nid = 0 to Graph.n_nodes t.g - 1 do
    wake t nid
  done

let create ?(cfg = default_config) ?(trace = Pv_obs.Trace.null) (g : Graph.t)
    (mem : Memif.t) : t =
  Check.validate_exn g;
  let nc = Graph.n_chans g in
  let n = Graph.n_nodes g in
  List.iter
    (fun (e : Fault.event) ->
      let check_chan c =
        if c < 0 || c >= nc then
          invalid_arg
            (Printf.sprintf "Sim.create: fault %s targets channel %d of %d"
               (Fault.string_of_event e) c nc)
      in
      match e.Fault.action with
      | Fault.Drop { chan }
      | Fault.Drop_replay { chan }
      | Fault.Stall { chan; _ }
      | Fault.Flip { chan; _ }
      | Fault.Flip_replay { chan; _ } ->
          check_chan chan
      | Fault.Backend _ -> ())
    cfg.faults;
  let order = eval_order g in
  let pos = Array.make n 0 in
  Array.iteri (fun i nid -> pos.(nid) <- i) order;
  let chan_src = Array.make nc 0 and chan_dst = Array.make nc 0 in
  for cid = 0 to nc - 1 do
    let c = Graph.chan g cid in
    chan_src.(cid) <- c.Graph.src.Graph.node;
    chan_dst.(cid) <- c.Graph.dst.Graph.node
  done;
  let t =
    {
      g;
      cfg;
      mem;
      cur = Array.make nc None;
      staged = Array.make nc None;
      consumed = Array.make nc false;
      states = Array.init n (fun i -> init_state cfg (Graph.node g i));
      order;
      pos;
      chan_src;
      chan_dst;
      fires = Array.make n 0;
      faults =
        List.sort (fun (a : Fault.event) b -> compare a.Fault.at_cycle b.Fault.at_cycle)
          cfg.faults
        |> List.map (fun e ->
               { fs_event = e; fs_fired = None; fs_dead = false; fs_note = "" })
        |> Array.of_list;
      stall_until = Array.make nc 0;
      event = cfg.engine = Event;
      awake = Array.make n false;
      wake_stack = Array.make (max n 1) 0;
      wake_len = 0;
      timed_wakes = [];
      wave = Array.make (max n 1) false;
      cur_pos = -1;
      load_resp = Array.init n (fun _ -> Queue.create ());
      touched = Array.make nc false;
      touch_stack = Array.make (max nc 1) 0;
      touch_len = 0;
      evals = 0;
      epoch = 0;
      cycle = 0;
      progress = false;
      last_progress = 0;
      trace;
      epoch_start = 0;
      last_inflight = -1;
    }
  in
  wake_all t;
  t

(* --- channel helpers ---------------------------------------------------- *)

let touch t cid =
  if not t.touched.(cid) then begin
    t.touched.(cid) <- true;
    t.touch_stack.(t.touch_len) <- cid;
    t.touch_len <- t.touch_len + 1
  end

let in_tok t (node : Graph.node) slot =
  let cid = node.Graph.inputs.(slot) in
  if t.consumed.(cid) || t.stall_until.(cid) > t.cycle then None else t.cur.(cid)

let take t (node : Graph.node) slot =
  let cid = node.Graph.inputs.(slot) in
  match t.cur.(cid) with
  | Some tok when not t.consumed.(cid) ->
      t.consumed.(cid) <- true;
      touch t cid;
      t.progress <- true;
      if t.event then begin
        (* the freed register is visible to its producer this very cycle
           (consumers run first): pull the producer into the current wave
           if its turn is still to come *)
        let p = t.pos.(t.chan_src.(cid)) in
        if p > t.cur_pos then t.wave.(p) <- true
      end;
      tok
  | _ -> invalid_arg "take: empty channel"

(* An output register can accept a new token this cycle if it is empty (or
   its current token is being consumed this cycle) and nothing was staged
   on it yet. *)
let out_free t (node : Graph.node) slot =
  let cid = node.Graph.outputs.(slot) in
  t.staged.(cid) = None && (t.cur.(cid) = None || t.consumed.(cid))

let put t (node : Graph.node) slot tok =
  let cid = node.Graph.outputs.(slot) in
  assert (t.staged.(cid) = None);
  t.staged.(cid) <- Some tok;
  touch t cid;
  t.progress <- true

(* --- node evaluation ---------------------------------------------------- *)

let eval_node t nid =
  let node = Graph.node t.g nid in
  let fired = ref false in
  (match node.Graph.kind with
  | Gen spec -> (
      match t.states.(nid) with
      | S_gen gs when not gs.g_done ->
          let n_out = Array.length node.Graph.outputs in
          let free = ref true in
          for i = 0 to n_out - 1 do
            if not (out_free t node i) then free := false
          done;
          if !free then begin
            match spec.gen_next gs.g_seq with
            | None -> gs.g_done <- true
            | Some vals ->
                if
                  t.mem.Memif.begin_instance ~seq:gs.g_seq
                    ~group:(spec.gen_group gs.g_seq)
                then begin
                  for i = 0 to n_out - 1 do
                    put t node i (token ~epoch:t.epoch ~seq:gs.g_seq vals.(i))
                  done;
                  gs.g_seq <- gs.g_seq + 1;
                  gs.g_emitted <- gs.g_emitted + 1;
                  fired := true
                end
                else begin
                  let s = t.mem.Memif.stats () in
                  s.Memif.stall_alloc <- s.Memif.stall_alloc + 1
                end
          end
      | _ -> ())
  | Const c -> (
      match in_tok t node 0 with
      | Some tok when out_free t node 0 ->
          ignore (take t node 0);
          put t node 0 { tok with value = c };
          fired := true
      | _ -> ())
  | Unop op -> (
      match in_tok t node 0 with
      | Some tok when out_free t node 0 ->
          ignore (take t node 0);
          put t node 0 { tok with value = eval_unop op tok.value };
          fired := true
      | _ -> ())
  | Binop op -> (
      match (in_tok t node 0, in_tok t node 1) with
      | Some a, Some b -> (
          let result =
            {
              seq = max a.seq b.seq;
              epoch = max a.epoch b.epoch;
              value = eval_binop op a.value b.value;
            }
          in
          match t.states.(nid) with
          | S_pipe (q, cap) ->
              if Queue.length q < cap then begin
                ignore (take t node 0);
                ignore (take t node 1);
                Queue.add { ready = t.cycle + t.cfg.op_latency op; tok = result } q;
                fired := true
              end
          | _ ->
              if out_free t node 0 then begin
                ignore (take t node 0);
                ignore (take t node 1);
                put t node 0 result;
                fired := true
              end)
      | _ -> ());
      (* drain a completed pipelined result *)
      (match t.states.(nid) with
      | S_pipe (q, _) when not (Queue.is_empty q) ->
          let head = Queue.peek q in
          if head.ready <= t.cycle && out_free t node 0 then begin
            ignore (Queue.pop q);
            put t node 0 head.tok;
            fired := true
          end
      | _ -> ())
  | Fork n -> (
      match in_tok t node 0 with
      | Some tok ->
          let free = ref true in
          for i = 0 to n - 1 do
            if not (out_free t node i) then free := false
          done;
          if !free then begin
            ignore (take t node 0);
            for i = 0 to n - 1 do
              put t node i tok
            done;
            fired := true
          end
      | None -> ())
  | Join n ->
      let all = ref true in
      for i = 0 to n - 1 do
        if in_tok t node i = None then all := false
      done;
      if !all && out_free t node 0 then begin
        let toks = Array.init n (fun i -> take t node i) in
        let seq = Array.fold_left (fun acc (tk : token) -> max acc tk.seq) 0 toks in
        let epoch =
          Array.fold_left (fun acc (tk : token) -> max acc tk.epoch) 0 toks
        in
        put t node 0 { toks.(0) with seq; epoch };
        fired := true
      end
  | Merge n ->
      if out_free t node 0 then begin
        let chosen = ref (-1) in
        for i = n - 1 downto 0 do
          if in_tok t node i <> None then chosen := i
        done;
        if !chosen >= 0 then begin
          let tok = take t node !chosen in
          put t node 0 tok;
          fired := true
        end
      end
  | Mux n -> (
      match in_tok t node 0 with
      | Some sel ->
          let k = sel.value in
          if k >= 0 && k < n then begin
            match in_tok t node (1 + k) with
            | Some data when out_free t node 0 ->
                ignore (take t node 0);
                ignore (take t node (1 + k));
                put t node 0 data;
                fired := true
            | _ -> ()
          end
      | None -> ())
  | Branch -> (
      match (in_tok t node 0, in_tok t node 1) with
      | Some _, Some cond ->
          let out = if cond.value <> 0 then 0 else 1 in
          if out_free t node out then begin
            let data = take t node 0 in
            ignore (take t node 1);
            put t node out data;
            fired := true
          end
      | _ -> ())
  | Buffer { transparent; _ } -> (
      match t.states.(nid) with
      | S_buf (q, cap) ->
          (* at most one emission per cycle; a transparent buffer may pass a
             token accepted this very cycle (so it costs one stage like any
             other node and only adds capacity), an opaque one holds it for
             a cycle (a timing-breaking register) *)
          let try_emit () =
            if Queue.is_empty q then false
            else begin
              let tok, arrived = Queue.peek q in
              if (transparent || arrived < t.cycle) && out_free t node 0 then begin
                ignore (Queue.pop q);
                put t node 0 tok;
                true
              end
              else false
            end
          in
          let emitted = try_emit () in
          (match in_tok t node 0 with
          | Some _ when Queue.length q < cap ->
              let tok = take t node 0 in
              Queue.add (tok, t.cycle) q;
              if (not emitted) && transparent then ignore (try_emit ());
              fired := true
          | _ -> ());
          if emitted then fired := true
      | _ -> assert false)
  | Sink -> (
      match in_tok t node 0 with
      | Some _ ->
          ignore (take t node 0);
          fired := true
      | None -> ())
  | Load { port } ->
      (* deliver a completed response *)
      (if out_free t node 0 then
         match t.mem.Memif.load_poll ~port with
         | Some (seq, v) ->
             if not (Queue.is_empty t.load_resp.(nid)) then
               ignore (Queue.pop t.load_resp.(nid));
             put t node 0 (token ~epoch:t.epoch ~seq v);
             fired := true
         | None -> ());
      (* present a new request *)
      (match in_tok t node 0 with
      | Some addr ->
          if t.mem.Memif.load_req ~port ~seq:addr.seq ~addr:addr.value then begin
            ignore (take t node 0);
            Queue.add addr.seq t.load_resp.(nid);
            fired := true
          end
      | None -> ())
  | Store { port } -> (
      match t.states.(nid) with
      | S_store st ->
          (* the address side is decoupled from the data side, as in a real
             store port: addresses are consumed and announced to the backend
             as soon as they are computed, letting the LSQ resolve ordering
             without waiting for the data *)
          (match in_tok t node 0 with
          | Some addr when Queue.length st.pending < 16 ->
              ignore (take t node 0);
              t.mem.Memif.store_addr ~port ~seq:addr.seq ~addr:addr.value;
              Queue.add (addr.seq, addr.value) st.pending;
              fired := true
          | _ -> ());
          (match (in_tok t node 1, Queue.is_empty st.pending) with
          | Some data, false ->
              let seq, addr = Queue.peek st.pending in
              if seq <> data.seq then
                failwith
                  (Printf.sprintf
                     "store port %d: pending addr seq=%d but data seq=%d (cycle %d)"
                     port seq data.seq t.cycle);
              if t.mem.Memif.store_req ~port ~seq ~addr ~value:data.value then begin
                ignore (Queue.pop st.pending);
                ignore (take t node 1);
                fired := true
              end
          | _ -> ())
      | _ -> assert false)
  | Skip { port } -> (
      match in_tok t node 0 with
      | Some tok ->
          if t.mem.Memif.op_skip ~port ~seq:tok.seq then begin
            ignore (take t node 0);
            fired := true
          end
      | None -> ())
  | Galloc { group } -> (
      match in_tok t node 0 with
      | Some tok ->
          if t.mem.Memif.alloc_group ~seq:tok.seq ~group then begin
            ignore (take t node 0);
            fired := true
          end
      | None -> ()));
  if !fired then begin
    t.fires.(nid) <- t.fires.(nid) + 1;
    t.progress <- true
  end

(* Wake-set invariant: after its evaluation, a node may sleep unless it
   still holds work that could fire with NO further channel event — refused
   backend calls must be retried (the refusal clears on a backend-internal
   transition the simulator cannot observe), FU pipes and buffers become
   drainable by the mere passage of time, an unexhausted generator races the
   backend for allocation, and an outstanding load response must be polled.
   Everything else is re-woken by the channel commits, the same-cycle pull
   in [take], squash wake-alls, or fault wakes. *)
let stays_awake t nid =
  let node = Graph.node t.g nid in
  let pending_in slot =
    let cid = node.Graph.inputs.(slot) in
    cid >= 0 && t.cur.(cid) <> None && not t.consumed.(cid)
  in
  match node.Graph.kind with
  | Gen _ -> (
      match t.states.(nid) with S_gen gs -> not gs.g_done | _ -> false)
  | Load _ -> pending_in 0 || not (Queue.is_empty t.load_resp.(nid))
  | Store _ -> pending_in 0 || pending_in 1
  | Skip _ | Galloc _ -> pending_in 0
  | Binop _ -> (
      match t.states.(nid) with
      | S_pipe (q, _) -> not (Queue.is_empty q)
      | _ -> false)
  | Buffer _ -> (
      match t.states.(nid) with
      | S_buf (q, _) -> not (Queue.is_empty q)
      | _ -> false)
  | _ -> false

(* --- squash ------------------------------------------------------------- *)

let purge t ~seq_err =
  t.epoch <- t.epoch + 1;
  Array.iteri
    (fun i tok ->
      match tok with Some tk when tk.seq >= seq_err -> t.cur.(i) <- None | _ -> ())
    t.cur;
  Array.iteri
    (fun i tok ->
      match tok with
      | Some tk when tk.seq >= seq_err -> t.staged.(i) <- None
      | _ -> ())
    t.staged;
  Array.iteri
    (fun _ st ->
      match st with
      | S_pipe (q, _) ->
          let keep = Queue.create () in
          Queue.iter (fun e -> if e.tok.seq < seq_err then Queue.add e keep) q;
          Queue.clear q;
          Queue.transfer keep q
      | S_buf (q, _) ->
          let keep = Queue.create () in
          Queue.iter
            (fun ((tok, _) as e) -> if tok.seq < seq_err then Queue.add e keep)
            q;
          Queue.clear q;
          Queue.transfer keep q
      | S_gen gs ->
          if gs.g_seq > seq_err then gs.g_seq <- seq_err;
          gs.g_done <- false
      | S_store st ->
          if st.announced >= seq_err then st.announced <- -1;
          let keep = Queue.create () in
          Queue.iter
            (fun ((s, _) as e) -> if s < seq_err then Queue.add e keep)
            st.pending;
          Queue.clear st.pending;
          Queue.transfer keep st.pending
      | S_plain -> ())
    t.states;
  (* the backend purges its response queues with the same cutoff
     (see Memif.poll_squash): mirror it on the outstanding-response
     counts so sleeping Loads never poll a dead response *)
  Array.iter
    (fun q ->
      if not (Queue.is_empty q) then begin
        let keep = Queue.create () in
        Queue.iter (fun s -> if s < seq_err then Queue.add s keep) q;
        Queue.clear q;
        Queue.transfer keep q
      end)
    t.load_resp

(* --- fault injection ---------------------------------------------------- *)

(* Apply every armed fault event that is due and applicable this cycle.
   Runs at the very top of [step], BEFORE the squash poll: a detected
   fault ([*_replay]) both disturbs the token and raises the squash, so
   the purge that follows in the same step erases the corrupted token
   before any node can observe it — exactly the one-cycle detection a
   parity-checked elastic channel would give. *)
let apply_faults t =
  let any_fired = ref false in
  Array.iter
    (fun fs ->
      if fs.fs_fired = None && (not fs.fs_dead)
         && t.cycle >= fs.fs_event.Fault.at_cycle
      then
        let fired ?(note = "") () =
          fs.fs_fired <- Some t.cycle;
          fs.fs_note <- note;
          any_fired := true;
          Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_fault ~ts:t.cycle
            ("fault: " ^ Fault.string_of_event fs.fs_event)
        in
        match fs.fs_event.Fault.action with
        | Fault.Drop { chan } -> (
            match t.cur.(chan) with
            | Some tok ->
                t.cur.(chan) <- None;
                fired ~note:(Format.asprintf "lost %a" pp_token tok) ()
            | None -> ())
        | Fault.Drop_replay { chan } -> (
            match t.cur.(chan) with
            | Some tok ->
                if t.mem.Memif.inject (Fault.B_squash { seq = tok.seq }) then begin
                  t.cur.(chan) <- None;
                  fired ~note:(Format.asprintf "lost %a, squash raised" pp_token tok) ()
                end
                (* a pre-commit-frontier remnant: retry on a younger token *)
            | None -> ())
        | Fault.Stall { chan; cycles } ->
            t.stall_until.(chan) <- max t.stall_until.(chan) (t.cycle + cycles);
            if t.event then begin
              (* the frozen token can only move again when the stall
                 expires — a timed event no channel commit announces *)
              t.timed_wakes <-
                (t.stall_until.(chan), t.chan_dst.(chan)) :: t.timed_wakes
            end;
            fired ()
        | Fault.Flip { chan; mask } -> (
            match t.cur.(chan) with
            | Some tok ->
                t.cur.(chan) <- Some { tok with value = tok.value lxor mask };
                fired ~note:(Format.asprintf "corrupted %a" pp_token tok) ()
            | None -> ())
        | Fault.Flip_replay { chan; mask } -> (
            match t.cur.(chan) with
            | Some tok ->
                if t.mem.Memif.inject (Fault.B_squash { seq = tok.seq }) then begin
                  t.cur.(chan) <- Some { tok with value = tok.value lxor mask };
                  fired
                    ~note:(Format.asprintf "corrupted %a, squash raised" pp_token tok)
                    ()
                end
            | None -> ())
        | Fault.Backend b ->
            if t.mem.Memif.inject b then fired ()
            else (
              match b with
              | Fault.B_squash _ ->
                  (* the frontier only advances: a stale squash point stays
                     stale, so stop retrying *)
                  fs.fs_dead <- true;
                  fs.fs_note <- "squash point already committed"
              | Fault.B_pq_flip _ | Fault.B_pq_drop _ -> ()))
    t.faults;
  (* a disturbance invalidates the wake set wholesale; faults are rare, so
     one conservative wake-all per firing is cheaper than per-case proofs *)
  if !any_fired && t.event then wake_all t

(** What each planned fault did (or why it never fired). *)
let fault_log t : Fault.application list =
  Array.to_list t.faults
  |> List.map (fun fs ->
         {
           Fault.ap_event = fs.fs_event;
           ap_fired_at = fs.fs_fired;
           ap_note = fs.fs_note;
         })

(* --- post-mortem -------------------------------------------------------- *)

let cap_list n l =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go n l

(** Snapshot the diagnosis state; attached to [Deadlock]/[Timeout] so a hung
    run explains itself without a debugger. *)
let post_mortem t : post_mortem =
  let nc = Array.length t.cur in
  let occupied = ref 0 in
  let tokens = ref [] in
  for cid = nc - 1 downto 0 do
    match t.cur.(cid) with
    | Some tok ->
        incr occupied;
        tokens := (cid, tok) :: !tokens
    | None -> ()
  done;
  let oldest = ref None in
  let note_seq s =
    match !oldest with
    | None -> oldest := Some s
    | Some o -> if s < o then oldest := Some s
  in
  Array.iter (function Some (tk : token) -> note_seq tk.seq | None -> ()) t.cur;
  Array.iter (function Some (tk : token) -> note_seq tk.seq | None -> ()) t.staged;
  Array.iter
    (function
      | S_pipe (q, _) -> Queue.iter (fun e -> note_seq e.tok.seq) q
      | S_buf (q, _) -> Queue.iter (fun ((tok : token), _) -> note_seq tok.seq) q
      | S_store st -> Queue.iter (fun (s, _) -> note_seq s) st.pending
      | _ -> ())
    t.states;
  let stalled = ref [] in
  let gens = ref [] in
  for nid = Graph.n_nodes t.g - 1 downto 0 do
    let node = Graph.node t.g nid in
    let wired = Array.to_list node.Graph.inputs |> List.filter (fun c -> c >= 0) in
    let any_in = List.exists (fun c -> t.cur.(c) <> None) wired in
    let frozen =
      List.filter (fun c -> t.cur.(c) <> None && t.stall_until.(c) > t.cycle) wired
    in
    let missing =
      (* a Merge fires on any single input, so it is never input-starved *)
      match node.Graph.kind with
      | Merge _ -> []
      | _ ->
          Array.to_list node.Graph.inputs
          |> List.mapi (fun slot c -> (slot, c))
          |> List.filter (fun (_, c) -> c >= 0 && t.cur.(c) = None)
    in
    let out_full =
      Array.to_list node.Graph.outputs
      |> List.filter (fun c -> c >= 0 && t.cur.(c) <> None)
    in
    let add why = stalled := (nid, node.Graph.label, why) :: !stalled in
    match t.states.(nid) with
    | S_gen gs ->
        gens := (nid, gs.g_seq, gs.g_done) :: !gens;
        if not gs.g_done then
          if out_full <> [] then
            add
              (Printf.sprintf "generator blocked: output chan %d occupied"
                 (List.hd out_full))
          else add "generator blocked: allocation refused by backend"
    | st -> (
        let internal =
          match st with
          | S_pipe (q, _) when not (Queue.is_empty q) ->
              Some (Printf.sprintf "%d result(s) stuck in FU pipeline" (Queue.length q))
          | S_buf (q, _) when not (Queue.is_empty q) ->
              Some (Printf.sprintf "%d token(s) stuck in buffer" (Queue.length q))
          | S_store ss when not (Queue.is_empty ss.pending) ->
              let seq, addr = Queue.peek ss.pending in
              Some
                (Printf.sprintf
                   "%d announced store(s) awaiting data (head: seq=%d addr=%d)"
                   (Queue.length ss.pending) seq addr)
          | _ -> None
        in
        if any_in || internal <> None then
          let why =
            if frozen <> [] then
              Printf.sprintf "input chan %d frozen by injected stall"
                (List.hd frozen)
            else
              match internal with
              | Some w -> w
              | None -> (
                  if missing <> [] && any_in then
                    let slot, c = List.hd missing in
                    Printf.sprintf "starved: input slot %d (chan %d) empty" slot c
                  else if out_full <> [] then
                    Printf.sprintf "backpressured: output chan %d occupied"
                      (List.hd out_full)
                  else
                    match node.Graph.kind with
                    | Load _ | Store _ | Skip _ | Galloc _ ->
                        "inputs ready but refused by memory backend"
                    | _ -> "inputs ready, output free")
          in
          add why)
  done;
  let fault_stalls = ref [] in
  for cid = nc - 1 downto 0 do
    if t.stall_until.(cid) > t.cycle then fault_stalls := cid :: !fault_stalls
  done;
  {
    pm_at_cycle = t.cycle;
    pm_last_progress = t.last_progress;
    pm_epoch = t.epoch;
    pm_occupied = !occupied;
    pm_tokens = cap_list 16 !tokens;
    pm_oldest_seq = !oldest;
    pm_stalled = cap_list 16 !stalled;
    pm_gens = !gens;
    pm_fault_stalls = !fault_stalls;
    pm_backend = t.mem.Memif.describe ();
    pm_faults = fault_log t;
  }

(* --- main loop ---------------------------------------------------------- *)

let all_empty t =
  Array.for_all (fun c -> c = None) t.cur
  && Array.for_all
       (fun st ->
         match st with
         | S_pipe (q, _) -> Queue.is_empty q
         | S_buf (q, _) -> Queue.is_empty q
         | S_store st -> Queue.is_empty st.pending
         | _ -> true)
       t.states

let gens_done t =
  Array.for_all
    (fun st -> match st with S_gen gs -> gs.g_done | _ -> true)
    t.states

let step t =
  t.progress <- false;
  if Array.length t.faults > 0 then apply_faults t;
  (match t.mem.Memif.poll_squash () with
  | Some seq_err ->
      if Pv_obs.Trace.enabled t.trace then begin
        (* close the epoch span and mark the squash on the sim track *)
        Pv_obs.Trace.complete t.trace ~tid:Pv_obs.Trace.tid_sim
          ~ts:t.epoch_start
          ~dur:(max 1 (t.cycle - t.epoch_start))
          ~args:[ ("epoch", t.epoch) ]
          (Printf.sprintf "epoch %d" t.epoch);
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:t.cycle
          ~args:[ ("seq_err", seq_err); ("epoch", t.epoch + 1) ]
          "squash";
        t.epoch_start <- t.cycle
      end;
      purge t ~seq_err;
      (* the purge moves tokens everywhere at once; restart from a full set *)
      if t.event then wake_all t;
      t.progress <- true
  | None -> ());
  (match t.cfg.engine with
  | Scan ->
      t.evals <- t.evals + Array.length t.order;
      Array.iter (fun nid -> eval_node t nid) t.order
  | Event ->
      if t.timed_wakes <> [] then begin
        let due, rest =
          List.partition (fun (c, _) -> c <= t.cycle) t.timed_wakes
        in
        t.timed_wakes <- rest;
        List.iter (fun (_, nid) -> wake t nid) due
      end;
      (* seed the wave with the wake set, then sweep it in [pos] order;
         [take] may grow the wave downstream of the sweep cursor, and
         wakes raised during the sweep land in the next cycle's set *)
      for k = 0 to t.wake_len - 1 do
        let nid = t.wake_stack.(k) in
        t.awake.(nid) <- false;
        t.wave.(t.pos.(nid)) <- true
      done;
      t.wake_len <- 0;
      let n = Array.length t.order in
      t.cur_pos <- -1;
      for i = 0 to n - 1 do
        if t.wave.(i) then begin
          t.wave.(i) <- false;
          let nid = t.order.(i) in
          t.cur_pos <- i;
          t.evals <- t.evals + 1;
          eval_node t nid;
          if stays_awake t nid then wake t nid
        end
      done);
  (* clock edge: commit only the channels touched this cycle (untouched
     channels cannot have staged writes or consumption marks) *)
  for k = 0 to t.touch_len - 1 do
    let cid = t.touch_stack.(k) in
    (match t.staged.(cid) with
    | Some tok ->
        t.cur.(cid) <- Some tok;
        t.staged.(cid) <- None;
        if t.event then wake t t.chan_dst.(cid)
    | None ->
        if t.consumed.(cid) then begin
          t.cur.(cid) <- None;
          if t.event then wake t t.chan_src.(cid)
        end);
    t.consumed.(cid) <- false;
    t.touched.(cid) <- false
  done;
  t.touch_len <- 0;
  t.mem.Memif.clock ();
  if Pv_obs.Trace.enabled t.trace then begin
    (* in-flight token counter track, sampled on change only *)
    let inflight = ref 0 in
    Array.iter (function Some _ -> incr inflight | None -> ()) t.cur;
    Array.iter
      (function
        | S_pipe (q, _) -> inflight := !inflight + Queue.length q
        | S_buf (q, _) -> inflight := !inflight + Queue.length q
        | _ -> ())
      t.states;
    if !inflight <> t.last_inflight then begin
      Pv_obs.Trace.counter t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:t.cycle
        "in_flight_tokens" !inflight;
      t.last_inflight <- !inflight
    end
  end;
  if t.progress then t.last_progress <- t.cycle;
  t.cycle <- t.cycle + 1

let finished t = gens_done t && all_empty t && t.mem.Memif.quiesced ()

(* Close the observability story of a run: final epoch span, outcome
   instant, and (for a wedged run) one stall-reason instant per blocked
   node so the trace explains the hang the way the post-mortem does. *)
let trace_outcome t outcome =
  if Pv_obs.Trace.enabled t.trace then begin
    Pv_obs.Trace.complete t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:t.epoch_start
      ~dur:(max 1 (t.cycle - t.epoch_start))
      ~args:[ ("epoch", t.epoch) ]
      (Printf.sprintf "epoch %d" t.epoch);
    match outcome with
    | Finished { cycles } ->
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:cycles
          "finished"
    | Deadlock { at_cycle; post_mortem = pm }
    | Timeout { at_cycle; post_mortem = pm } ->
        let what =
          match outcome with Deadlock _ -> "deadlock" | _ -> "timeout"
        in
        Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:at_cycle
          ~args:[ ("last_progress", pm.pm_last_progress) ]
          what;
        List.iter
          (fun (nid, label, why) ->
            Pv_obs.Trace.instant t.trace ~tid:Pv_obs.Trace.tid_sim ~ts:at_cycle
              ~args:[ ("node", nid) ]
              (Printf.sprintf "stall %s#%d: %s" label nid why))
          pm.pm_stalled
  end

let run ?(cfg = default_config) ?(trace = Pv_obs.Trace.null) (g : Graph.t)
    (mem : Memif.t) : outcome * run_stats =
  let t = create ~cfg ~trace g mem in
  let rec loop () =
    if finished t then Finished { cycles = t.cycle }
    else if t.cycle >= cfg.max_cycles then
      Timeout { at_cycle = t.cycle; post_mortem = post_mortem t }
    else if t.cycle - t.last_progress > cfg.stall_limit then
      Deadlock { at_cycle = t.cycle; post_mortem = post_mortem t }
    else begin
      (* cooperative cancellation: polled every 64 cycles so a
         deadline-checking token (a clock read) costs nothing measurable *)
      if t.cycle land 63 = 0 && cfg.cancel () then
        raise (Cancelled { at_cycle = t.cycle });
      step t;
      loop ()
    end
  in
  let outcome = loop () in
  trace_outcome t outcome;
  let gen_instances =
    Array.fold_left
      (fun acc st -> match st with S_gen gs -> acc + gs.g_emitted | _ -> acc)
      0 t.states
  in
  ( outcome,
    {
      cycles = t.cycle;
      node_fires = Array.copy t.fires;
      gen_instances;
      evals = t.evals;
    } )
