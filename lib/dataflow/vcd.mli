(** Value-change-dump (VCD) recording of a simulation, viewable in GTKWave
    or any waveform viewer — the ModelSim-style debugging aid for circuits
    built with this library.

    Every channel contributes two signals (its 32-bit data value and a
    [*_v] valid bit) and every node a fire strobe; an [epoch] vector and a
    one-cycle [squash] strobe mark mis-speculation squashes so GTKWave
    timelines line up with the Chrome traces from {!Pv_obs.Trace}. *)

(** Streaming recorder over an existing simulation. *)
type t

(** Write the VCD header for [sim]'s graph and return a recorder. *)
val create : out_channel -> Sim.t -> t

(** Dump the signal changes for the current cycle; call once per cycle
    {e before} {!Sim.step}. *)
val sample : t -> unit

(** Run a simulation to completion while writing a VCD to [path]; returns
    the outcome.  [max_cycles] bounds the dump size. *)
val record :
  ?cfg:Sim.config ->
  ?max_cycles:int ->
  path:string ->
  Graph.t ->
  Memif.t ->
  Sim.outcome
