(** Cycle-bucketed timer wheel for the simulator's timed wakes.

    Replaces the [(cycle, node) list] that was linearly partitioned every
    cycle: arming an expiry appends to the bucket of the target cycle
    (modulo the wheel size), and draining inspects exactly one bucket.
    Entries whose horizon exceeds the wheel size simply stay in their
    bucket across laps — each carries its absolute expiry cycle and only
    fires once [now] reaches it, which is correct because the simulator
    drains every cycle while anything is pending.

    Within a bucket, entries fire in insertion order (FIFO): equal-expiry
    wakes are delivered in the order they were armed, fixing the
    insertion-reversed ordering of the old list (pinned by
    test/test_sim_perf.ml). *)

type t = {
  mask : int;  (* n_buckets - 1; n_buckets is a power of two *)
  buckets : Ring.t array;  (* per bucket: (expiry, payload) records *)
  mutable pending : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(buckets = 16) () =
  let n = pow2 (max buckets 2) 2 in
  {
    mask = n - 1;
    buckets = Array.init n (fun _ -> Ring.create ~stride:2 4);
    pending = 0;
  }

let pending t = t.pending

let add t ~at payload =
  Ring.push2 t.buckets.(at land t.mask) at payload;
  t.pending <- t.pending + 1

(* Fire every entry of [now]'s bucket that is due, in insertion order.
   Entries parked for a later lap keep their relative order: survivors are
   compacted in place, exactly like a squash purge. *)
let drain t ~now f =
  if t.pending > 0 then begin
    let b = t.buckets.(now land t.mask) in
    let n = Ring.length b in
    if n > 0 then begin
      (* deliver due entries first (reading ahead of any compaction) ... *)
      let fired = ref 0 in
      for i = 0 to n - 1 do
        if Ring.get b i 0 <= now then begin
          f (Ring.get b i 1);
          incr fired
        end
      done;
      if !fired > 0 then begin
        (* ... then drop them; expiries <= now are exactly the fired set *)
        ignore (Ring.reject_lt b ~field:0 ~cutoff:(now + 1) : int);
        t.pending <- t.pending - !fired
      end
    end
  end

let clear t =
  Array.iter Ring.clear t.buckets;
  t.pending <- 0
