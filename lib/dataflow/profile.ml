(** Post-run performance profiling: per-node utilisation and per-channel
    occupancy, the data needed to find a circuit's throughput bottleneck
    (which component fires least often, which channels sit full waiting). *)

type node_profile = {
  np_id : Types.node_id;
  np_label : string;
  np_fires : int;
  np_utilisation : float;  (** fires / cycles *)
}

type chan_profile = {
  cp_id : Types.chan_id;
  cp_src : string;
  cp_dst : string;
  cp_held : int;  (** cycles the channel register held an unconsumed token *)
  cp_pressure : float;  (** held / cycles: 1.0 = permanently backpressured *)
}

type t = {
  cycles : int;
  outcome : Sim.outcome;
  nodes : node_profile list;  (** sorted by utilisation, lowest first *)
  chans : chan_profile list;  (** sorted by pressure, highest first *)
}

(** Run [g] against [mem] collecting the profile. *)
let run ?(cfg = Sim.default_config) (g : Graph.t) (mem : Memif.t) : t =
  let sim = Sim.create ~cfg g mem in
  let held = Array.make (Graph.n_chans g) 0 in
  let outcome =
    let rec loop () =
      if Sim.finished sim then Sim.Finished { cycles = Sim.cycle sim }
      else if Sim.cycle sim >= cfg.Sim.max_cycles then
        Sim.Timeout
          { at_cycle = Sim.cycle sim; post_mortem = Sim.post_mortem sim }
      else if Sim.cycle sim - Sim.last_progress sim > cfg.Sim.stall_limit then
        Sim.Deadlock
          { at_cycle = Sim.cycle sim; post_mortem = Sim.post_mortem sim }
      else begin
        Sim.step sim;
        for cid = 0 to Array.length held - 1 do
          if Sim.chan_occupied sim cid then held.(cid) <- held.(cid) + 1
        done;
        loop ()
      end
    in
    loop ()
  in
  let cycles = max 1 (Sim.cycle sim) in
  let nodes =
    let acc = ref [] in
    Graph.iter_nodes
      (fun n ->
        match n.Graph.kind with
        | Types.Sink -> ()
        | _ ->
            acc :=
              {
                np_id = n.Graph.nid;
                np_label = Printf.sprintf "%s#%d" n.Graph.label n.Graph.nid;
                np_fires = (Sim.fires sim).(n.Graph.nid);
                np_utilisation =
                  float_of_int (Sim.fires sim).(n.Graph.nid)
                  /. float_of_int cycles;
              }
              :: !acc)
      g;
    List.sort (fun a b -> compare a.np_utilisation b.np_utilisation) !acc
  in
  let chans =
    let acc = ref [] in
    Graph.iter_chans
      (fun c ->
        let name nid = (Graph.node g nid).Graph.label in
        acc :=
          {
            cp_id = c.Graph.cid;
            cp_src = name c.Graph.src.Graph.node;
            cp_dst = name c.Graph.dst.Graph.node;
            cp_held = held.(c.Graph.cid);
            cp_pressure = float_of_int held.(c.Graph.cid) /. float_of_int cycles;
          }
          :: !acc)
      g;
    List.sort (fun a b -> compare b.cp_pressure a.cp_pressure) !acc
  in
  { cycles; outcome; nodes; chans }

(** Deterministic JSON rendering (stable field and list order), for tooling
    and for the cross-engine profile-equality regression test. *)
let to_json t : Pv_obs.Json.t =
  let open Pv_obs.Json in
  let outcome_str =
    match t.outcome with
    | Sim.Finished _ -> "finished"
    | Sim.Deadlock _ -> "deadlock"
    | Sim.Timeout _ -> "timeout"
  in
  Obj
    [
      ("cycles", Int t.cycles);
      ("outcome", Str outcome_str);
      ( "nodes",
        List
          (List.map
             (fun n ->
               Obj
                 [
                   ("id", Int n.np_id);
                   ("label", Str n.np_label);
                   ("fires", Int n.np_fires);
                   ("utilisation", Float n.np_utilisation);
                 ])
             t.nodes) );
      ( "chans",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("id", Int c.cp_id);
                   ("src", Str c.cp_src);
                   ("dst", Str c.cp_dst);
                   ("held", Int c.cp_held);
                   ("pressure", Float c.cp_pressure);
                 ])
             t.chans) );
    ]

(** The initiation interval implied by the busiest repeating component. *)
let initiation_interval t ~instances =
  if instances = 0 then infinity
  else float_of_int t.cycles /. float_of_int instances

let pp ?(top = 8) ppf t =
  Format.fprintf ppf "%a over %d cycles@\n" Sim.pp_outcome t.outcome t.cycles;
  Format.fprintf ppf "most backpressured channels:@\n";
  List.iteri
    (fun k c ->
      if k < top then
        Format.fprintf ppf "  %-18s -> %-18s held %5.1f%% of cycles@\n" c.cp_src
          c.cp_dst (100.0 *. c.cp_pressure))
    t.chans;
  Format.fprintf ppf "least utilised components:@\n";
  List.iteri
    (fun k n ->
      if k < top then
        Format.fprintf ppf "  %-24s fired %5.1f%% of cycles@\n" n.np_label
          (100.0 *. n.np_utilisation))
    t.nodes
