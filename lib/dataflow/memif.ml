(** Contract between the circuit simulator and a memory-disambiguation
    backend (plain memory, LSQ variants, or PreVV).

    Every static load/store site of a kernel is a numbered {e port}.  The
    simulator calls the backend once per firing attempt; a [false]/[None]
    answer means "not accepted this cycle" and exerts backpressure on the
    datapath, which is how allocation stalls and full-queue stalls surface
    as extra cycles.  [clock] advances backend-internal pipelines once per
    simulated cycle. *)

type stats = {
  mutable loads : int;  (** load requests accepted *)
  mutable stores : int;  (** store requests accepted *)
  mutable squashes : int;  (** pipeline squashes triggered *)
  mutable replayed_ops : int;  (** memory ops re-executed after squashes *)
  mutable stall_full : int;  (** port-cycles refused for a full queue *)
  mutable stall_alloc : int;  (** generator-cycles refused at allocation *)
  mutable stall_order : int;  (** port-cycles a load waited for ordering *)
  mutable stall_bw : int;  (** port-cycles refused for memory bandwidth *)
  mutable forwarded : int;  (** loads served by store-to-load forwarding *)
  mutable fake_tokens : int;  (** Skip notifications accepted *)
  mutable max_occupancy : int;  (** high-water mark of the central queue *)
  mutable faults : int;  (** injected backend faults accepted *)
  mutable degraded : int;  (** livelock-guard engagements (squash storms) *)
}

let fresh_stats () =
  {
    loads = 0;
    stores = 0;
    squashes = 0;
    replayed_ops = 0;
    stall_full = 0;
    stall_alloc = 0;
    stall_order = 0;
    stall_bw = 0;
    forwarded = 0;
    fake_tokens = 0;
    max_occupancy = 0;
    faults = 0;
    degraded = 0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "loads=%d stores=%d squashes=%d replayed=%d stall_full=%d stall_alloc=%d \
     stall_order=%d stall_bw=%d forwarded=%d fake=%d max_occ=%d"
    s.loads s.stores s.squashes s.replayed_ops s.stall_full s.stall_alloc
    s.stall_order s.stall_bw s.forwarded s.fake_tokens s.max_occupancy;
  if s.faults > 0 then Format.fprintf ppf " faults=%d" s.faults;
  if s.degraded > 0 then Format.fprintf ppf " DEGRADED(x%d)" s.degraded

(** Out-parameter for {!t.load_poll}: the backend fills the slot instead
    of allocating a [(key, value)] pair per response, so polling a load
    port every cycle costs no minor-heap traffic.  The simulator owns one
    slot and reuses it across all ports.  [ls_key] is the packed
    {!Types.Token.t} of the request (the simulator re-stamps the epoch
    field on delivery). *)
type load_slot = { mutable ls_key : Types.Token.t; mutable ls_value : int }

let fresh_slot () = { ls_key = Types.Token.none; ls_value = 0 }

type t = {
  begin_instance : seq:int -> group:int -> bool;
      (** called by the generator before emitting body instance [seq] (no
          token exists yet, so this one takes the raw counter); refusing
          stalls the whole front of the pipeline (allocation backpressure) *)
  alloc_group : key:Types.Token.t -> group:int -> bool;
      (** late allocation for a conditional group, from a {!Types.Galloc}
          node once the branch outcome is known *)
  load_req : port:int -> key:Types.Token.t -> addr:int -> bool;
      (** a load port presents its address; accepted requests complete
          later and are retrieved with [load_poll] *)
  load_poll : port:int -> load_slot -> bool;
      (** completed load for this port: [true] fills the slot with
          [(key, value)] and consumes the response *)
  store_req : port:int -> key:Types.Token.t -> addr:int -> value:int -> bool;
  store_addr : port:int -> key:Types.Token.t -> addr:int -> unit;
      (** early address announcement: the store port has computed its
          address but not yet its data (lets an LSQ resolve ordering) *)
  op_skip : port:int -> key:Types.Token.t -> bool;
      (** the op of [port] does not occur for this instance (fake token) *)
  poll_squash : unit -> int option;
      (** pending pipeline squash: [Some seq_err] purges all in-flight
          tokens with [seq >= seq_err] and rewinds the generator *)
  clock : unit -> unit;
  quiesced : unit -> bool;  (** all accepted operations fully committed *)
  stats : unit -> stats;
  inject : Fault.backend_action -> bool;
      (** apply a backend-level fault; [false] = not applicable (no such
          queue entry, squash point already committed, or the backend has
          no speculative state at all) *)
  describe : unit -> string;
      (** human-readable snapshot of internal state for post-mortems *)
}

(** Allocating convenience over the slot-filling [load_poll], for tests
    and debug probes that want an option-returning shape. *)
let poll (t : t) ~port : (Types.Token.t * int) option =
  let slot = fresh_slot () in
  if t.load_poll ~port slot then Some (slot.ls_key, slot.ls_value) else None

(** A trivially correct backend over a plain memory: loads and stores are
    served in arrival order with a fixed latency and no disambiguation.
    Only legal for kernels without ambiguous pairs; used in tests and as
    the building block for real backends' committed storage.

    State is three flat per-port arrays (ready cycle / seq / value, with
    ready = -1 meaning idle), so a steady-state cycle allocates nothing —
    which also makes this the reference backend the zero-allocation perf
    assertions isolate the simulator core against. *)
let direct ~latency (mem : int array) : t =
  let stats = fresh_stats () in
  (* per-port in-flight load: cycle the response becomes ready, packed
     token key, and the value read at request time (correct here because
     stores commit immediately); arrays grow on first sight of a port *)
  let ready = ref (Array.make 8 (-1)) in
  let keys = ref (Array.make 8 0) in
  let vals = ref (Array.make 8 0) in
  let now = ref 0 in
  let inflight = ref 0 in
  let ensure port =
    let n = Array.length !ready in
    if port >= n then begin
      let n' = max (port + 1) (n * 2) in
      let grow a fill =
        let b = Array.make n' fill in
        Array.blit !a 0 b 0 n;
        a := b
      in
      grow ready (-1);
      grow keys 0;
      grow vals 0
    end
  in
  {
    begin_instance = (fun ~seq:_ ~group:_ -> true);
    alloc_group = (fun ~key:_ ~group:_ -> true);
    load_req =
      (fun ~port ~key ~addr ->
        ensure port;
        if !ready.(port) >= 0 then false
        else begin
          stats.loads <- stats.loads + 1;
          !ready.(port) <- !now + latency;
          !keys.(port) <- key;
          !vals.(port) <- mem.(addr);
          inflight := !inflight + 1;
          true
        end);
    load_poll =
      (fun ~port slot ->
        port < Array.length !ready
        && !ready.(port) >= 0
        && !ready.(port) <= !now
        && begin
             slot.ls_key <- !keys.(port);
             slot.ls_value <- !vals.(port);
             !ready.(port) <- -1;
             inflight := !inflight - 1;
             true
           end);
    store_req =
      (fun ~port:_ ~key:_ ~addr ~value ->
        stats.stores <- stats.stores + 1;
        mem.(addr) <- value;
        true);
    store_addr = (fun ~port:_ ~key:_ ~addr:_ -> ());
    op_skip = (fun ~port:_ ~key:_ -> true);
    poll_squash = (fun () -> None);
    clock = (fun () -> incr now);
    quiesced = (fun () -> !inflight = 0);
    stats = (fun () -> stats);
    inject = (fun _ -> false);  (* nothing speculative to disturb *)
    describe = (fun () -> Printf.sprintf "direct: %d in-flight load(s)" !inflight);
  }
