(** Growable circular buffer of fixed-stride integer records: the
    allocation-free replacement for the simulator's [Queue.t]s (FU
    pipelines, elastic buffers, announced stores, load responses).

    Records are [stride] consecutive ints.  Capacity is a power of two and
    doubles on demand, so after warm-up no operation allocates.  Records
    are addressed by live index: 0 is the oldest (head), [length t - 1]
    the newest. *)

type t

(** [create ~stride cap] — an empty ring of [stride]-int records with room
    for at least [cap] of them (rounded up to a power of two, min 2). *)
val create : stride:int -> int -> t

val length : t -> int
val is_empty : t -> bool
val capacity : t -> int
val stride : t -> int

(** [get t i field] — field [field] of live record [i] (0 = oldest). *)
val get : t -> int -> int -> int

val set : t -> int -> int -> int -> unit

(** Append one record; [pushN] writes the first N fields (use matching
    [stride]). Grows (doubling) when full. *)
val push1 : t -> int -> unit

val push2 : t -> int -> int -> unit
val push3 : t -> int -> int -> int -> unit
val push4 : t -> int -> int -> int -> int -> unit

(** Drop the oldest record.  @raise Invalid_argument when empty. *)
val pop : t -> unit

val clear : t -> unit

(** [reject_ge t ~field ~cutoff] drops every record whose [field] is
    [>= cutoff], preserving survivor order, allocating nothing; returns
    the number dropped.  The squash-path primitive. *)
val reject_ge : t -> field:int -> cutoff:int -> int

(** Dual of {!reject_ge}: drops every record whose [field] is [< cutoff].
    Used by the timer wheel to retire fired expiries. *)
val reject_lt : t -> field:int -> cutoff:int -> int

(** [iter f t] calls [f i] for each live record index, oldest first (for
    use with {!get}).  Intended for cold paths (post-mortems). *)
val iter : (int -> unit) -> t -> unit
