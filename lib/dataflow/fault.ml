(** Deterministic fault-injection plans for resilience testing.

    A plan is a list of timed disturbances applied to a running simulation:
    channel-level faults (drop a token, stall a channel, flip value bits)
    are executed by {!Sim} itself; backend-level faults (a spurious squash,
    corruption of a premature-queue entry) are forwarded to the memory
    backend through {!Memif.t.inject}.

    Faults come in two flavours.  {e Detected} faults pair the disturbance
    with a squash at the victim token's iteration — the model of a
    parity/ECC-protected datapath whose error signal drives the existing
    squash/replay machinery — and must therefore be fully recoverable: the
    final memory still matches the reference interpreter.  {e Silent}
    faults ([Drop], [Flip], [B_pq_drop] without a paired squash) have no
    detection event; they either starve the pipeline into a diagnosed
    deadlock or are caught by PreVV's own value validation.

    Events are {e armed} at [at_cycle] and fire at the first subsequent
    cycle at which they are applicable (a token present on the channel, a
    live entry in the queue), so plans stay meaningful without cycle-exact
    knowledge of the schedule.  An event that never becomes applicable is
    reported as skipped. *)

type backend_action =
  | B_squash of { seq : int }
      (** spurious squash at iteration [seq]; refused (and the event
          skipped) once the commit frontier has passed [seq] *)
  | B_pq_flip of { inst : int; slot : int; mask : int; detect : bool }
      (** xor [mask] into the value of the [slot]-th live entry of
          disambiguation instance [inst]; [detect] models an ECC check
          that raises a squash at the entry's iteration *)
  | B_pq_drop of { inst : int; slot : int }
      (** lose the [slot]-th live entry outright (a silent SEU on the
          valid bit): its arrival is forgotten, so an undetected drop
          wedges the commit frontier *)

type action =
  | Drop of { chan : int }  (** silently lose the next token on [chan] *)
  | Drop_replay of { chan : int }
      (** detected loss: drop the token and squash at its iteration *)
  | Stall of { chan : int; cycles : int }
      (** block consumption from [chan] for [cycles] cycles *)
  | Flip of { chan : int; mask : int }
      (** silent SEU: xor [mask] into the next token's value *)
  | Flip_replay of { chan : int; mask : int }
      (** detected SEU: flip the value and squash at its iteration *)
  | Backend of backend_action

type event = { at_cycle : int; action : action }
type plan = event list

(** What became of an armed event. *)
type application = {
  ap_event : event;
  ap_fired_at : int option;  (** cycle it fired, [None] = never applicable *)
  ap_note : string;
}

(* --- pretty-printing ---------------------------------------------------- *)

let string_of_backend_action = function
  | B_squash { seq } -> Printf.sprintf "squash:i%d" seq
  | B_pq_flip { inst; slot; mask; detect } ->
      Printf.sprintf "pqflip:%d:%d:0x%x:%s" inst slot mask
        (if detect then "detect" else "silent")
  | B_pq_drop { inst; slot } -> Printf.sprintf "pqdrop:%d:%d" inst slot

let string_of_action = function
  | Drop { chan } -> Printf.sprintf "drop:c%d" chan
  | Drop_replay { chan } -> Printf.sprintf "drop-replay:c%d" chan
  | Stall { chan; cycles } -> Printf.sprintf "stall:c%d:%d" chan cycles
  | Flip { chan; mask } -> Printf.sprintf "flip:c%d:0x%x" chan mask
  | Flip_replay { chan; mask } ->
      Printf.sprintf "flip-replay:c%d:0x%x" chan mask
  | Backend b -> string_of_backend_action b

let string_of_event e = Printf.sprintf "%d:%s" e.at_cycle (string_of_action e.action)
let to_string plan = String.concat "," (List.map string_of_event plan)

let pp_action ppf a = Format.pp_print_string ppf (string_of_action a)
let pp_event ppf e = Format.pp_print_string ppf (string_of_event e)

let pp_plan ppf plan =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    pp_event ppf plan

let pp_application ppf ap =
  Format.fprintf ppf "%a -> %s" pp_event ap.ap_event
    (match ap.ap_fired_at with
    | Some c when ap.ap_note = "" -> Printf.sprintf "fired at cycle %d" c
    | Some c -> Printf.sprintf "fired at cycle %d (%s)" c ap.ap_note
    | None when ap.ap_note = "" -> "never applicable"
    | None -> Printf.sprintf "skipped (%s)" ap.ap_note)

(* --- parsing ------------------------------------------------------------ *)

(** Parse a plan from the textual form produced by {!to_string}:
    comma-separated [CYCLE:KIND:ARGS] events, e.g.
    ["40:drop-replay:c3,100:stall:c7:64,200:squash:i5"]. *)
let parse (s : string) : (plan, string) result =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_of s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> fail "not a number: %S" s
  in
  let chan_of s =
    if String.length s > 1 && s.[0] = 'c' then
      int_of (String.sub s 1 (String.length s - 1))
    else fail "expected a channel (cN), got %S" s
  in
  let seq_of s =
    if String.length s > 1 && s.[0] = 'i' then
      int_of (String.sub s 1 (String.length s - 1))
    else fail "expected an iteration (iN), got %S" s
  in
  let ( let* ) = Result.bind in
  let event_of spec =
    match String.split_on_char ':' (String.trim spec) with
    | cycle :: kind :: args -> (
        let* at_cycle = int_of cycle in
        let* action =
          match (kind, args) with
          | "drop", [ c ] ->
              let* chan = chan_of c in
              Ok (Drop { chan })
          | "drop-replay", [ c ] ->
              let* chan = chan_of c in
              Ok (Drop_replay { chan })
          | "stall", [ c; k ] ->
              let* chan = chan_of c in
              let* cycles = int_of k in
              Ok (Stall { chan; cycles })
          | "flip", [ c; m ] ->
              let* chan = chan_of c in
              let* mask = int_of m in
              Ok (Flip { chan; mask })
          | "flip-replay", [ c; m ] ->
              let* chan = chan_of c in
              let* mask = int_of m in
              Ok (Flip_replay { chan; mask })
          | "squash", [ i ] ->
              let* seq = seq_of i in
              Ok (Backend (B_squash { seq }))
          | "pqflip", [ inst; slot; mask; det ] ->
              let* inst = int_of inst in
              let* slot = int_of slot in
              let* mask = int_of mask in
              let* detect =
                match det with
                | "detect" -> Ok true
                | "silent" -> Ok false
                | d -> fail "expected detect|silent, got %S" d
              in
              Ok (Backend (B_pq_flip { inst; slot; mask; detect }))
          | "pqdrop", [ inst; slot ] ->
              let* inst = int_of inst in
              let* slot = int_of slot in
              Ok (Backend (B_pq_drop { inst; slot }))
          | k, _ -> fail "unknown fault %S (or wrong arity) in %S" k spec
        in
        Ok { at_cycle; action })
    | _ -> fail "malformed event %S, expected CYCLE:KIND:ARGS" spec
  in
  if String.trim s = "" then Ok []
  else
    List.fold_left
      (fun acc spec ->
        let* plan = acc in
        let* e = event_of spec in
        Ok (e :: plan))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

(* --- random plans ------------------------------------------------------- *)

(* self-contained LCG so pv_dataflow keeps zero dependencies; same
   constants as Pv_kernels.Workload *)
type rng = { mutable s : int }

let rng seed = { s = (seed lxor 0x9e3779b9) land 0x3fffffff }

let next r =
  r.s <- ((r.s * 1664525) + 1013904223) land 0x3fffffff;
  r.s

let rand r bound = if bound <= 0 then 0 else next r mod bound

(** A plan of [n] detected (hence recoverable) disturbances: channel
    stalls, detected drops and detected bit-flips, spurious squashes.
    Deterministic in [seed]. *)
let random_recoverable ?(n = 4) ~seed ~n_chans ~max_seq ~horizon () : plan =
  let r = rng seed in
  List.init n (fun _ ->
      let at_cycle = 1 + rand r (max 1 horizon) in
      let action =
        match rand r 4 with
        | 0 -> Stall { chan = rand r n_chans; cycles = 1 + rand r 64 }
        | 1 -> Drop_replay { chan = rand r n_chans }
        | 2 -> Flip_replay { chan = rand r n_chans; mask = 1 + rand r 0xffff }
        | _ -> Backend (B_squash { seq = rand r (max 1 max_seq) })
      in
      { at_cycle; action })
  |> List.sort (fun a b -> compare a.at_cycle b.at_cycle)

(** A plan that also draws from the silent/destructive faults; runs under
    such a plan must end in a diagnosed outcome or verify clean, but are
    not guaranteed to complete. *)
let random_disruptive ?(n = 4) ~seed ~n_chans ~max_seq ~horizon () : plan =
  let r = rng seed in
  List.init n (fun _ ->
      let at_cycle = 1 + rand r (max 1 horizon) in
      let action =
        match rand r 6 with
        | 0 -> Drop { chan = rand r n_chans }
        | 1 -> Flip { chan = rand r n_chans; mask = 1 + rand r 0xffff }
        | 2 -> Backend (B_pq_drop { inst = 0; slot = rand r 4 })
        | 3 ->
            Backend
              (B_pq_flip
                 { inst = 0; slot = rand r 4; mask = 1 + rand r 0xffff;
                   detect = rand r 2 = 0 })
        | 4 -> Drop_replay { chan = rand r n_chans }
        | _ -> Backend (B_squash { seq = rand r (max 1 max_seq) })
      in
      { at_cycle; action })
  |> List.sort (fun a b -> compare a.at_cycle b.at_cycle)
