(** Core identifiers, operator vocabulary and token representation for
    elastic (latency-insensitive) dataflow circuits.

    The component vocabulary follows Dynamatic's: functional units, forks,
    joins, merges, muxes, branches and elastic buffers, plus memory ports
    that talk to a pluggable disambiguation backend ({!Memif}). *)

type node_id = int
type chan_id = int

(** Binary functional units.  Comparison operators produce 0/1. *)
type binop =
  | Add
  | Sub
  | Mul
  | Mulc  (** multiply by a compile-time constant: strength-reduced *)
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Min
  | Max

(** Unary functional units. *)
type unop = Neg | Not | Lnot

val string_of_binop : binop -> string
val string_of_unop : unop -> string

(** Semantics of the functional units.  Division and remainder by zero
    saturate to 0, matching a hardware divider's defined output rather
    than trapping. *)
val eval_binop : binop -> int -> int -> int

val eval_unop : unop -> int -> int

(** {2 Dense operator codes}

    The simulator's dispatch tables store operators as immediate ints so
    the hot loop dispatches with one jump table and no boxed state.
    [eval_*_code (…_code op) = eval_* op] by construction (checked by
    test/test_dataflow.ml). *)

val binop_code : binop -> int
val eval_binop_code : int -> int -> int -> int
val unop_code : unop -> int
val eval_unop_code : int -> int -> int

(** A token flowing on an elastic channel, packed into unboxed words.

    [seq] is the body-instance sequence number assigned by the loop-nest
    generator; all tokens derived from the same body instance share it.
    [epoch] is bumped on every pipeline squash; the simulator purges stale
    tokens whose [seq] is at or beyond the squash point.

    The datapath value keeps full native-int width, so a token travels as
    TWO immediate ints: a packed [(seq, epoch)] key and the raw value.
    Key order is lexicographic [(seq, epoch)] order, so joins take a plain
    [max] and squash cutoffs are one comparison against {!Token.first}. *)
module Token : sig
  type t = int

  val epoch_bits : int  (** 20: epochs live in the low 20 bits *)

  val max_epoch : int  (** 2^20 - 1 *)

  val max_seq : int  (** 2^42 - 1: seqs live in bits 62..20 *)

  val none : t  (** the absent token (negative; [k >= 0] = presence) *)

  (** Overflow-checked packer: raises [Invalid_argument] when [seq] or
      [epoch] falls outside its field. *)
  val make : seq:int -> epoch:int -> t

  (** Hot-path packer: no bounds check, epoch wraps modulo 2^20 (the epoch
      is observational only; control purges by [seq] alone). *)
  val unsafe : seq:int -> epoch:int -> t

  val seq : t -> int
  val epoch : t -> int

  (** Least key of body instance [seq]; for valid keys,
      [k >= first ~seq:s] iff [seq k >= s]. *)
  val first : seq:int -> t

  val with_epoch : t -> epoch:int -> t

  (** Accessors over the two-word [(key, value)] pair form. *)
  val value : t * int -> int

  val with_value : t * int -> int -> t * int
  val pp : Format.formatter -> t * int -> unit
end

(** A materialised token: packed key plus raw value word. *)
type token = Token.t * int

val token : ?epoch:int -> seq:int -> int -> token
val pp_token : Format.formatter -> token -> unit

(** Specification of a loop-nest generator node.  The generator walks the
    kernel's control flow in program order, emitting one token per output
    (one per induction variable) for each body instance.  It is the single
    rewindable point of the circuit: on a squash at [seq_err] the simulator
    resets it to re-emit instances from [seq_err]. *)
type gen_spec = {
  gen_arity : int;  (** number of induction-variable outputs *)
  gen_next : int -> int array;
      (** [gen_next seq] = values of the induction variables for body
          instance [seq], or [||] once the nest is exhausted.  Returning a
          pre-tabulated row (rather than an option around it) keeps the
          generator's steady-state emission allocation-free; [gen_arity]
          is at least 1, so the empty array is unambiguous. *)
  gen_group : int -> int;  (** memory-port group of body instance [seq] *)
}

(** Node kinds.  Arities are fixed per kind and validated by {!Check}. *)
type kind =
  | Gen of gen_spec  (** 0 in, [gen_arity] out *)
  | Const of int  (** 1 ctrl in, 1 out: emits the constant per ctrl token *)
  | Unop of unop  (** 1 in, 1 out *)
  | Binop of binop  (** 2 in, 1 out *)
  | Fork of int  (** 1 in, n out: replicates (fires when all outs free) *)
  | Join of int  (** n in, 1 out: synchronises, forwards input 0 *)
  | Merge of int  (** n in, 1 out: first-come (lowest index priority) *)
  | Mux of int  (** 1 sel + n data in, 1 out *)
  | Branch  (** data + cond in; out0 = taken (cond<>0), out1 = not taken *)
  | Buffer of { transparent : bool; slots : int }
      (** 1 in, 1 out.  A transparent buffer may pass a token the cycle it
          arrives (pure slack); an opaque one holds it for a cycle (a
          timing-breaking register). *)
  | Sink  (** 1 in, 0 out: absorbs *)
  | Load of { port : int }  (** addr in, data out; served by the backend *)
  | Store of { port : int }  (** addr + data in, 0 out *)
  | Skip of { port : int }
      (** 1 ctrl in, 0 out: tells the backend the memory op of [port] does
          not occur for this body instance (PreVV "fake token", Sec. V-C) *)
  | Galloc of { group : int }
      (** 1 ctrl in, 0 out: allocates LSQ entries for a conditional group
          at the moment the branch outcome is known *)

(** [(inputs, outputs)] arity of a kind. *)
val kind_arity : kind -> int * int

val kind_name : kind -> string
