(** Cycle-accurate simulation of an elastic dataflow graph against a
    memory-disambiguation backend.

    Timing model: every channel behaves as a one-deep elastic register (the
    canonical latency-insensitive wire), so every component contributes one
    pipeline stage; functional units may add [op_latency] further internal
    stages (fully pipelined, initiation interval 1).  Nodes are evaluated
    once per cycle in consumers-before-producers order, so a full register
    chain streams one token per cycle; stalls arise only from structural
    hazards and memory backpressure.

    Two engines implement that semantics: [Scan] evaluates every node every
    cycle, [Event] evaluates only nodes that can possibly fire (see the
    wake-set invariant in DESIGN.md).  They are cycle-equivalent — same
    outcomes, cycle counts, per-node fire counts and backend traffic — and
    the equivalence is enforced by test/test_sim_equiv.ml and a fuzz
    property.

    Representation: the simulation state is data-oriented — flat int arrays
    indexed by dense node/channel ids, a dense opcode dispatch table built
    once at {!create}, int-bitset wake sets and ring-buffer queue state —
    so a steady-state cycle performs zero minor-heap allocation
    (test/test_sim_perf.ml asserts this; DESIGN.md §19 describes the
    layout).  The state is consequently abstract; tools read it through the
    {{!section:accessors} accessors} below.

    Squash/replay: when the backend reports a mis-speculation at [seq_err],
    the simulator bumps the global epoch, purges every in-flight token with
    [seq >= seq_err] (channels, buffers, functional-unit pipelines) and
    rewinds the loop-nest generator, which then re-emits the squashed body
    instances. *)

(** Evaluation strategy: [Scan] visits all nodes every cycle; [Event] visits
    only the wake set.  Cycle-equivalent by construction. *)
type engine = Scan | Event

val string_of_engine : engine -> string
val engine_of_string : string -> engine option

type config = {
  op_latency : Types.binop -> int;
      (** extra internal stages of a functional unit beyond its channel
          register; 0 = purely combinational unit *)
  max_cycles : int;
  stall_limit : int;
      (** cycles without any token movement before declaring deadlock *)
  faults : Fault.plan;
      (** transient disturbances to inject during the run (resilience
          testing); empty for a fault-free simulation *)
  engine : engine;
      (** evaluation strategy; both engines are cycle-equivalent *)
  cancel : unit -> bool;
      (** cooperative cancellation token, polled by {!run} between cycles
          (every 64th); when it turns true the run raises {!Cancelled}.
          Cancellation never affects a completed result, so the token is
          deliberately absent from result-cache fingerprints.  Default
          {!no_cancel}. *)
}

(** Raised by {!run} when [cancel] turns true mid-run — the supervision
    layer's per-task deadline mechanism (DESIGN.md §18). *)
exception Cancelled of { at_cycle : int }

(** The always-false cancellation token ([default_config.cancel]). *)
val no_cancel : unit -> bool

(** mul 2, div/rem 3, constant-multiply 0, everything else combinational —
    the few-fat-stage pipelining implied by the paper's 7–9 ns clock
    periods. *)
val default_latency : Types.binop -> int

(** Event engine, no faults, 2M-cycle budget. *)
val default_config : config

(** Diagnosis attached to a non-[Finished] outcome: enough state to tell a
    starved pipeline from a backpressured one from a wedged backend without
    re-running under a debugger. *)
type post_mortem = {
  pm_at_cycle : int;
  pm_last_progress : int;  (** cycle of the last token movement *)
  pm_epoch : int;  (** squash epoch at the end (number of squashes seen) *)
  pm_occupied : int;  (** channel registers still holding a token *)
  pm_tokens : (Types.chan_id * Types.token) list;  (** in-flight tokens (capped) *)
  pm_oldest_seq : int option;  (** oldest in-flight iteration anywhere *)
  pm_stalled : (Types.node_id * string * string) list;
      (** (node, label, stall reason) for nodes blocked with work (capped) *)
  pm_gens : (Types.node_id * int * bool) list;
      (** generator (node, next seq, exhausted) *)
  pm_fault_stalls : Types.chan_id list;  (** channels under an injected stall *)
  pm_backend : string;  (** backend state snapshot ({!Memif.t.describe}) *)
  pm_faults : Fault.application list;  (** what each planned fault did *)
}

type outcome =
  | Finished of { cycles : int }
  | Deadlock of { at_cycle : int; post_mortem : post_mortem }
  | Timeout of { at_cycle : int; post_mortem : post_mortem }

val pp_outcome : Format.formatter -> outcome -> unit
val pp_post_mortem : Format.formatter -> post_mortem -> unit

type run_stats = {
  cycles : int;
  node_fires : int array;  (** per node id *)
  gen_instances : int;  (** body instances emitted, including replays *)
  evals : int;
      (** total node evaluations; under [Scan] this is nodes x cycles,
          under [Event] only the awake subset *)
}

(** {1 Stepping interface}

    Tools (profilers, waveform dumpers, debuggers) drive the simulation
    cycle by cycle with {!step} and read state through the accessors. *)

type t

(** Validate the graph and build the initial state (evaluation order,
    dispatch tables, flat channel arrays).  [trace] (default
    {!Pv_obs.Trace.null}) receives epoch spans, squash/fault instants and
    an in-flight-token counter track; the null sink reduces every emit
    site to one branch and provably leaves behaviour unchanged
    (test/test_obs.ml).  [prof] (default {!Pv_obs.Prof.null}) receives
    per-node evaluation counts (the [circuit_sweep] phase) and stall-reason
    tallies mirroring the post-mortem classification; profiling is
    read-only — cycles, evals and fires are identical with it on or off —
    and the disabled profiler costs one cached branch per evaluation, so
    the zero-allocation contract holds unchanged (test/test_sim_perf.ml).
    @raise Check.Invalid on a structurally invalid graph. *)
val create :
  ?cfg:config ->
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  Graph.t ->
  Memif.t ->
  t

(** Advance one cycle: poll squashes, evaluate nodes (all of them under
    [Scan], the wake set under [Event]), commit the touched channel writes,
    clock the backend. *)
val step : t -> unit

(** True once the generator is exhausted, every channel/buffer/pipe is
    empty, and the backend has quiesced.  O(1): maintained occupancy
    counters, no state scan. *)
val finished : t -> bool

(** Purge every in-flight token with [seq >= seq_err] (channel registers,
    buffers, FU pipelines, announced stores) and rewind the generators —
    the squash recovery action.  Allocation-free: ring-held records are
    compacted in place.  {!step} invokes it on a backend squash report and
    then re-arms the event engine's wake set; direct callers stepping an
    [Event]-engine simulation by hand should let [step] drive it. *)
val purge : t -> seq_err:int -> unit

(** Snapshot the diagnosis state of a (possibly wedged) simulation. *)
val post_mortem : t -> post_mortem

(** What each planned fault did (or why it never fired). *)
val fault_log : t -> Fault.application list

(** Close the trace of a finished/wedged stepped run: final epoch span,
    outcome instant, and one stall-reason instant per blocked node on
    deadlock/timeout.  No-op on a disabled trace; [run] calls it itself. *)
val trace_outcome : t -> outcome -> unit

(** Run to completion (or deadlock/timeout per [cfg]).  [prof] as in
    {!create}. *)
val run :
  ?cfg:config ->
  ?trace:Pv_obs.Trace.t ->
  ?prof:Pv_obs.Prof.t ->
  Graph.t ->
  Memif.t ->
  outcome * run_stats

(** {1:accessors Read-only accessors} *)

val graph : t -> Graph.t
val cycle : t -> int

(** Cycle of the last token movement. *)
val last_progress : t -> int

(** Squash epoch (number of squashes seen so far). *)
val epoch : t -> int

(** Total node evaluations so far. *)
val evals : t -> int

(** Per-node fire counts, indexed by node id.  The live array — do not
    mutate; {!run_stats.node_fires} is the copying variant. *)
val fires : t -> int array

(** The channel register currently holds a token. *)
val chan_occupied : t -> Types.chan_id -> bool

(** The channel register's current token, if any.  Allocates; use
    {!chan_occupied} in per-cycle loops that only need presence. *)
val chan_token : t -> Types.chan_id -> Types.token option

(** [(length, capacity)] of a Buffer node's queue; [None] if [nid] is not
    a buffer. *)
val buf_occupancy : t -> Types.node_id -> (int * int) option
