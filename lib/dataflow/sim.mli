(** Cycle-accurate simulation of an elastic dataflow graph against a
    memory-disambiguation backend.

    Timing model: every channel behaves as a one-deep elastic register (the
    canonical latency-insensitive wire), so every component contributes one
    pipeline stage; functional units may add [op_latency] further internal
    stages (fully pipelined, initiation interval 1).  Nodes are evaluated
    once per cycle in consumers-before-producers order, so a full register
    chain streams one token per cycle; stalls arise only from structural
    hazards and memory backpressure.

    Two engines implement that semantics: [Scan] evaluates every node every
    cycle, [Event] evaluates only nodes that can possibly fire (see the
    wake-set invariant in DESIGN.md).  They are cycle-equivalent — same
    outcomes, cycle counts, per-node fire counts and backend traffic — and
    the equivalence is enforced by test/test_sim_equiv.ml and a fuzz
    property.

    Squash/replay: when the backend reports a mis-speculation at [seq_err],
    the simulator bumps the global epoch, purges every in-flight token with
    [seq >= seq_err] (channels, buffers, functional-unit pipelines) and
    rewinds the loop-nest generator, which then re-emits the squashed body
    instances. *)

(** Evaluation strategy: [Scan] visits all nodes every cycle; [Event] visits
    only the wake set.  Cycle-equivalent by construction. *)
type engine = Scan | Event

val string_of_engine : engine -> string
val engine_of_string : string -> engine option

type config = {
  op_latency : Types.binop -> int;
      (** extra internal stages of a functional unit beyond its channel
          register; 0 = purely combinational unit *)
  max_cycles : int;
  stall_limit : int;
      (** cycles without any token movement before declaring deadlock *)
  faults : Fault.plan;
      (** transient disturbances to inject during the run (resilience
          testing); empty for a fault-free simulation *)
  engine : engine;
      (** evaluation strategy; both engines are cycle-equivalent *)
  cancel : unit -> bool;
      (** cooperative cancellation token, polled by {!run} between cycles
          (every 64th); when it turns true the run raises {!Cancelled}.
          Cancellation never affects a completed result, so the token is
          deliberately absent from result-cache fingerprints.  Default
          {!no_cancel}. *)
}

(** Raised by {!run} when [cancel] turns true mid-run — the supervision
    layer's per-task deadline mechanism (DESIGN.md §18). *)
exception Cancelled of { at_cycle : int }

(** The always-false cancellation token ([default_config.cancel]). *)
val no_cancel : unit -> bool

(** mul 2, div/rem 3, constant-multiply 0, everything else combinational —
    the few-fat-stage pipelining implied by the paper's 7–9 ns clock
    periods. *)
val default_latency : Types.binop -> int

(** Event engine, no faults, 2M-cycle budget. *)
val default_config : config

(** Diagnosis attached to a non-[Finished] outcome: enough state to tell a
    starved pipeline from a backpressured one from a wedged backend without
    re-running under a debugger. *)
type post_mortem = {
  pm_at_cycle : int;
  pm_last_progress : int;  (** cycle of the last token movement *)
  pm_epoch : int;  (** squash epoch at the end (number of squashes seen) *)
  pm_occupied : int;  (** channel registers still holding a token *)
  pm_tokens : (Types.chan_id * Types.token) list;  (** in-flight tokens (capped) *)
  pm_oldest_seq : int option;  (** oldest in-flight iteration anywhere *)
  pm_stalled : (Types.node_id * string * string) list;
      (** (node, label, stall reason) for nodes blocked with work (capped) *)
  pm_gens : (Types.node_id * int * bool) list;
      (** generator (node, next seq, exhausted) *)
  pm_fault_stalls : Types.chan_id list;  (** channels under an injected stall *)
  pm_backend : string;  (** backend state snapshot ({!Memif.t.describe}) *)
  pm_faults : Fault.application list;  (** what each planned fault did *)
}

type outcome =
  | Finished of { cycles : int }
  | Deadlock of { at_cycle : int; post_mortem : post_mortem }
  | Timeout of { at_cycle : int; post_mortem : post_mortem }

val pp_outcome : Format.formatter -> outcome -> unit
val pp_post_mortem : Format.formatter -> post_mortem -> unit

type run_stats = {
  cycles : int;
  node_fires : int array;  (** per node id *)
  gen_instances : int;  (** body instances emitted, including replays *)
  evals : int;
      (** total [eval_node] calls; under [Scan] this is nodes x cycles,
          under [Event] only the awake subset *)
}

(** {1 Stepping interface}

    The internal state is exposed for tools (profilers, waveform dumpers,
    debuggers) that drive the simulation cycle by cycle. *)

type pipe_entry = { ready : int; tok : Types.token }
(** [ready] is the absolute cycle at which the FU-pipeline entry may
    drain (push cycle + op latency). *)

type nstate =
  | S_plain
  | S_pipe of pipe_entry Queue.t * int  (** FU pipeline: queue, capacity *)
  | S_buf of (Types.token * int) Queue.t * int
      (** buffer: (token, arrival cycle), capacity *)
  | S_gen of gen_state
  | S_store of store_state

and store_state = {
  mutable announced : int;  (** last seq sent to [store_addr] *)
  pending : (int * int) Queue.t;  (** announced (seq, addr) awaiting data *)
}

and gen_state = {
  mutable g_seq : int;
  mutable g_done : bool;
  mutable g_emitted : int;
}

(** One armed fault event: fires at the first applicable cycle at or after
    its [at_cycle], at most once. *)
type fault_state = {
  fs_event : Fault.event;
  mutable fs_fired : int option;
  mutable fs_dead : bool;  (** permanently inapplicable; stop retrying *)
  mutable fs_note : string;
}

type t = {
  g : Graph.t;
  cfg : config;
  mem : Memif.t;
  cur : Types.token option array;  (** channel registers, by channel id *)
  staged : Types.token option array;
  consumed : bool array;
  states : nstate array;
  order : int array;  (** node evaluation order: consumers before producers *)
  pos : int array;  (** node id -> index in [order] *)
  chan_src : int array;  (** channel id -> producer node *)
  chan_dst : int array;  (** channel id -> consumer node *)
  fires : int array;  (** per-node fire counts *)
  faults : fault_state array;
  stall_until : int array;
      (** per channel: consumption blocked below this cycle *)
  event : bool;  (** running the event engine *)
  awake : bool array;  (** wake set for the next cycle, by node id *)
  wake_stack : int array;  (** the awake node ids, dense *)
  mutable wake_len : int;
  mutable timed_wakes : (int * Types.node_id) list;
      (** (cycle, node): wake [node] at [cycle] (injected stall expiry) *)
  wave : bool array;
      (** indexed by [pos]: nodes to evaluate this cycle, swept in order *)
  mutable cur_pos : int;  (** [pos] of the node being evaluated *)
  load_resp : int Queue.t array;
      (** per Load node: seqs of accepted, not-yet-delivered requests *)
  touched : bool array;  (** channels staged/consumed this cycle *)
  touch_stack : int array;  (** the touched channel ids, dense *)
  mutable touch_len : int;
  mutable evals : int;  (** total [eval_node] calls so far *)
  mutable epoch : int;
  mutable cycle : int;
  mutable progress : bool;
  mutable last_progress : int;
  trace : Pv_obs.Trace.t;
      (** event sink; {!Pv_obs.Trace.null} unless passed to [create] *)
  mutable epoch_start : int;  (** cycle the open epoch span began *)
  mutable last_inflight : int;  (** last emitted in-flight sample (-1 = none) *)
}

(** Validate the graph and build the initial state.  [trace] (default
    {!Pv_obs.Trace.null}) receives epoch spans, squash/fault instants and
    an in-flight-token counter track; the null sink reduces every emit
    site to one branch and provably leaves behaviour unchanged
    (test/test_obs.ml).
    @raise Check.Invalid on a structurally invalid graph. *)
val create : ?cfg:config -> ?trace:Pv_obs.Trace.t -> Graph.t -> Memif.t -> t

(** Advance one cycle: poll squashes, evaluate nodes (all of them under
    [Scan], the wake set under [Event]), commit the touched channel writes,
    clock the backend. *)
val step : t -> unit

(** True once the generator is exhausted, every channel/buffer/pipe is
    empty, and the backend has quiesced. *)
val finished : t -> bool

(** Snapshot the diagnosis state of a (possibly wedged) simulation. *)
val post_mortem : t -> post_mortem

(** What each planned fault did (or why it never fired). *)
val fault_log : t -> Fault.application list

(** Close the trace of a finished/wedged stepped run: final epoch span,
    outcome instant, and one stall-reason instant per blocked node on
    deadlock/timeout.  No-op on a disabled trace; [run] calls it itself. *)
val trace_outcome : t -> outcome -> unit

(** Run to completion (or deadlock/timeout per [cfg]). *)
val run :
  ?cfg:config -> ?trace:Pv_obs.Trace.t -> Graph.t -> Memif.t -> outcome * run_stats
