(** Core identifiers, operator vocabulary and token representation for
    elastic (latency-insensitive) dataflow circuits.

    The vocabulary follows the Dynamatic component set: functional units,
    forks/joins, merges/muxes, branches and elastic buffers, plus memory
    ports that talk to a pluggable disambiguation backend ({!Memif}). *)

type node_id = int
type chan_id = int

(** Binary functional units. Comparison operators produce 0/1. *)
type binop =
  | Add
  | Sub
  | Mul
  | Mulc  (** multiply by a compile-time constant: strength-reduced *)
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Min
  | Max

type unop = Neg | Not | Lnot

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Mulc -> "mulc"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"
  | Min -> "min"
  | Max -> "max"

let string_of_unop = function Neg -> "neg" | Not -> "not" | Lnot -> "lnot"

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul | Mulc -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a asr (b land 62)
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Min -> min a b
  | Max -> max a b

let eval_unop op a =
  match op with Neg -> -a | Not -> (if a = 0 then 1 else 0) | Lnot -> lnot a

(* Dense integer codes for the functional units.  The simulator's dispatch
   tables store these instead of the variant constructors, so the hot loop
   evaluates an operator with one jump-table dispatch on an immediate int
   and never touches a boxed closure or constructor. *)

let binop_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Mulc -> 3
  | Div -> 4
  | Rem -> 5
  | And -> 6
  | Or -> 7
  | Xor -> 8
  | Shl -> 9
  | Shr -> 10
  | Lt -> 11
  | Le -> 12
  | Gt -> 13
  | Ge -> 14
  | Eq -> 15
  | Ne -> 16
  | Min -> 17
  | Max -> 18

(* Must mirror [eval_binop] case for case (test_dataflow checks the whole
   table against it). *)
let eval_binop_code code a b =
  match code with
  | 0 -> a + b
  | 1 -> a - b
  | 2 | 3 -> a * b
  | 4 -> if b = 0 then 0 else a / b
  | 5 -> if b = 0 then 0 else a mod b
  | 6 -> a land b
  | 7 -> a lor b
  | 8 -> a lxor b
  | 9 -> a lsl (b land 62)
  | 10 -> a asr (b land 62)
  | 11 -> if a < b then 1 else 0
  | 12 -> if a <= b then 1 else 0
  | 13 -> if a > b then 1 else 0
  | 14 -> if a >= b then 1 else 0
  | 15 -> if a = b then 1 else 0
  | 16 -> if a <> b then 1 else 0
  | 17 -> if a <= b then a else b
  | 18 -> if a >= b then a else b
  | _ -> invalid_arg "eval_binop_code"

let unop_code = function Neg -> 0 | Not -> 1 | Lnot -> 2

let eval_unop_code code a =
  match code with
  | 0 -> -a
  | 1 -> if a = 0 then 1 else 0
  | 2 -> lnot a
  | _ -> invalid_arg "eval_unop_code"

(** A token flowing on an elastic channel, packed into unboxed words.

    [seq] is the basic-block-instance sequence number assigned by the
    loop-nest generator; all tokens derived from the same body instance share
    it. [epoch] is bumped on every pipeline squash; stale tokens whose
    [seq] is at or beyond the squash point are purged by the simulator.

    The datapath value must keep full native-int width (shifts and the fuzz
    kernels produce arbitrary 63-bit patterns), so a token travels as TWO
    immediate ints: a packed [key] carrying [(seq, epoch)] and the raw
    [value].  The key layout puts [seq] in the high bits so that the orders
    agree: [k1 < k2] iff [(seq k1, epoch k1) < (seq k2, epoch k2)]
    lexicographically, and [k >= first ~seq:s] iff [seq k >= s] — purge
    cutoffs and join maxima are single int comparisons. *)
module Token = struct
  type t = int

  let epoch_bits = 20
  let max_epoch = (1 lsl epoch_bits) - 1
  let max_seq = (1 lsl (62 - epoch_bits)) - 1

  (** The absent token: negative, so [k >= 0] is the presence test. *)
  let none = -1

  let make ~seq ~epoch =
    if seq < 0 || seq > max_seq then
      invalid_arg (Printf.sprintf "Token.make: seq %d out of [0, %d]" seq max_seq);
    if epoch < 0 || epoch > max_epoch then
      invalid_arg
        (Printf.sprintf "Token.make: epoch %d out of [0, %d]" epoch max_epoch);
    (seq lsl epoch_bits) lor epoch

  (** Hot-path packer: no bounds check; the epoch wraps modulo 2^20 (it is
      observational only — VCD, traces, post-mortems — never consulted by
      control decisions, which purge by [seq] alone). *)
  let unsafe ~seq ~epoch = (seq lsl epoch_bits) lor (epoch land max_epoch)

  let seq k = k asr epoch_bits
  let epoch k = k land max_epoch

  (** Least key of body instance [seq]: the squash cutoff.  For any valid
      key [k], [k >= first ~seq:s] iff [seq k >= s]. *)
  let first ~seq = seq lsl epoch_bits

  let with_epoch k ~epoch = (k land lnot max_epoch) lor (epoch land max_epoch)

  (** The two-word token [(key, value)].  [value]/[with_value] complete the
      accessor set over the pair form; the value word is untouched by
      packing. *)
  let value (_, v) = v
  let with_value (k, _) v = (k, v)

  let pp ppf (k, v) =
    Format.fprintf ppf "{seq=%d;ep=%d;v=%d}" (seq k) (epoch k) v
end

(** A materialised token is its packed [(seq, epoch)] key plus the raw
    value word. *)
type token = Token.t * int

let token ?(epoch = 0) ~seq value = (Token.make ~seq ~epoch, value)
let pp_token = Token.pp

(** Specification of a loop-nest generator node.  The generator walks the
    kernel's control-flow in program order, emitting one token per output
    (one per induction variable) for each body instance.  It is the single
    rewindable point of the circuit: on a squash at [seq_err] the simulator
    resets it to re-emit instances from [seq_err]. *)
type gen_spec = {
  gen_arity : int;  (** number of induction-variable outputs *)
  gen_next : int -> int array;
      (** [gen_next seq] = values of the induction variables for body
          instance [seq], or [||] once the nest is exhausted.  Returning a
          pre-tabulated row (rather than an option around it) keeps the
          generator's steady-state emission allocation-free; [gen_arity]
          is at least 1, so the empty array is unambiguous. *)
  gen_group : int -> int;  (** memory-port group of body instance [seq] *)
}

(** Node kinds. Arities are fixed per kind and validated by {!Check}. *)
type kind =
  | Gen of gen_spec  (** 0 in, [gen_arity] out *)
  | Const of int  (** 1 ctrl in, 1 out: emits constant per ctrl token *)
  | Unop of unop  (** 1 in, 1 out *)
  | Binop of binop  (** 2 in, 1 out *)
  | Fork of int  (** 1 in, n out: replicates (fires when all outs free) *)
  | Join of int  (** n in, 1 out: synchronises, forwards input 0 *)
  | Merge of int  (** n in, 1 out: first-come (lowest index priority) *)
  | Mux of int  (** 1 sel + n data in, 1 out *)
  | Branch  (** data + cond in; out0 = taken (cond<>0), out1 = not taken *)
  | Buffer of { transparent : bool; slots : int }  (** 1 in, 1 out *)
  | Sink  (** 1 in, 0 out: absorbs *)
  | Load of { port : int }  (** addr in, data out; goes through the backend *)
  | Store of { port : int }  (** addr + data in, 0 out *)
  | Skip of { port : int }
      (** 1 ctrl in, 0 out: tells the backend the memory op of [port] does
          not occur for this body instance (PreVV "fake token", Sec. V-C) *)
  | Galloc of { group : int }
      (** 1 ctrl in, 0 out: allocates LSQ entries for a conditional group
          at the moment the branch outcome is known *)

let kind_arity = function
  | Gen g -> (0, g.gen_arity)
  | Const _ -> (1, 1)
  | Unop _ -> (1, 1)
  | Binop _ -> (2, 1)
  | Fork n -> (1, n)
  | Join n -> (n, 1)
  | Merge n -> (n, 1)
  | Mux n -> (1 + n, 1)
  | Branch -> (2, 2)
  | Buffer _ -> (1, 1)
  | Sink -> (1, 0)
  | Load _ -> (1, 1)
  | Store _ -> (2, 0)
  | Skip _ -> (1, 0)
  | Galloc _ -> (1, 0)

let kind_name = function
  | Gen _ -> "gen"
  | Const _ -> "const"
  | Unop u -> string_of_unop u
  | Binop b -> string_of_binop b
  | Fork _ -> "fork"
  | Join _ -> "join"
  | Merge _ -> "merge"
  | Mux _ -> "mux"
  | Branch -> "branch"
  | Buffer { transparent; _ } -> if transparent then "tbuf" else "obuf"
  | Sink -> "sink"
  | Load _ -> "load"
  | Store _ -> "store"
  | Skip _ -> "skip"
  | Galloc _ -> "galloc"
