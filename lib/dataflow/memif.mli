(** Contract between the circuit simulator and a memory-disambiguation
    backend (plain memory, LSQ variants, or PreVV).

    Every static load/store site of a kernel is a numbered {e port}.  The
    simulator calls the backend once per firing attempt; a [false]/[None]
    answer means "not accepted this cycle" and exerts backpressure on the
    datapath — that is how allocation stalls and full-queue stalls surface
    as extra cycles.  [clock] advances backend-internal pipelines once per
    simulated cycle. *)

(** Counters a backend accumulates during a run; all monotone. *)
type stats = {
  mutable loads : int;  (** load requests accepted *)
  mutable stores : int;  (** store requests accepted *)
  mutable squashes : int;  (** pipeline squashes triggered *)
  mutable replayed_ops : int;  (** memory ops re-executed after squashes *)
  mutable stall_full : int;  (** port-cycles refused for a full queue *)
  mutable stall_alloc : int;  (** generator-cycles refused at allocation *)
  mutable stall_order : int;  (** port-cycles a load waited for ordering *)
  mutable stall_bw : int;  (** port-cycles refused for memory bandwidth *)
  mutable forwarded : int;  (** loads served by store-to-load forwarding *)
  mutable fake_tokens : int;  (** Skip notifications accepted *)
  mutable max_occupancy : int;  (** high-water mark of the central queue *)
  mutable faults : int;  (** injected backend faults accepted *)
  mutable degraded : int;  (** livelock-guard engagements (squash storms) *)
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Out-parameter for {!t.load_poll}: the backend fills the slot instead
    of allocating a [(key, value)] pair per response, so polling a load
    port every cycle costs no minor-heap traffic.  The simulator owns one
    slot and reuses it across all ports.  [ls_key] is the packed
    {!Types.Token.t} of the request (the simulator re-stamps the epoch
    field on delivery). *)
type load_slot = { mutable ls_key : Types.Token.t; mutable ls_value : int }

(** A fresh slot ([ls_key = Token.none]). *)
val fresh_slot : unit -> load_slot

(** The backend interface, as a record of closures over its private
    state.  Memory operations carry the packed {!Types.Token.t} of the
    requesting token; backends that only care about program order unpack
    it with {!Types.Token.seq}. *)
type t = {
  begin_instance : seq:int -> group:int -> bool;
      (** called by the generator before emitting body instance [seq] (no
          token exists yet, so this one takes the raw counter); refusing
          stalls the whole front of the pipeline (allocation backpressure) *)
  alloc_group : key:Types.Token.t -> group:int -> bool;
      (** late allocation for a conditional group, from a {!Types.Galloc}
          node once the branch outcome is known *)
  load_req : port:int -> key:Types.Token.t -> addr:int -> bool;
      (** a load port presents its address; accepted requests complete
          later and are retrieved with [load_poll] *)
  load_poll : port:int -> load_slot -> bool;
      (** completed load for this port: [true] fills the slot with the
          response's [(key, value)] and consumes it.  Responses come back
          in request order per port — an elastic access port is a tagless
          stream. *)
  store_req : port:int -> key:Types.Token.t -> addr:int -> value:int -> bool;
  store_addr : port:int -> key:Types.Token.t -> addr:int -> unit;
      (** early address announcement: the store port has computed its
          address but not yet its data (lets an LSQ resolve ordering) *)
  op_skip : port:int -> key:Types.Token.t -> bool;
      (** the op of [port] does not occur for this instance (fake token) *)
  poll_squash : unit -> int option;
      (** pending pipeline squash: [Some seq_err] purges all in-flight
          tokens with [seq >= seq_err] and rewinds the generator *)
  clock : unit -> unit;
  quiesced : unit -> bool;  (** all accepted operations fully committed *)
  stats : unit -> stats;
  inject : Fault.backend_action -> bool;
      (** apply a backend-level fault; [false] = not applicable (no such
          queue entry, squash point already committed, or the backend has
          no speculative state at all) *)
  describe : unit -> string;
      (** human-readable snapshot of internal state for post-mortems *)
}

(** Allocating convenience over the slot-filling [load_poll], for tests
    and debug probes that want an option-returning shape. *)
val poll : t -> port:int -> (Types.Token.t * int) option

(** A trivially correct backend over a plain memory: loads and stores are
    served in arrival order with a fixed latency and no disambiguation.
    Only legal for kernels without ambiguous pairs; used in tests and as
    the building block for real backends' committed storage.  Implemented
    over flat per-port arrays, so a steady-state cycle allocates nothing —
    the reference backend for the zero-allocation perf assertions. *)
val direct : latency:int -> int array -> t
