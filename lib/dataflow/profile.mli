(** Post-run performance profiling: per-node utilisation and per-channel
    occupancy — the data needed to find a circuit's throughput bottleneck
    (which component fires least often, which channels sit full waiting). *)

type node_profile = {
  np_id : Types.node_id;
  np_label : string;
  np_fires : int;
  np_utilisation : float;  (** fires / cycles *)
}

type chan_profile = {
  cp_id : Types.chan_id;
  cp_src : string;
  cp_dst : string;
  cp_held : int;  (** cycles the channel register held an unconsumed token *)
  cp_pressure : float;  (** held / cycles: 1.0 = permanently backpressured *)
}

type t = {
  cycles : int;
  outcome : Sim.outcome;
  nodes : node_profile list;  (** sorted by utilisation, lowest first *)
  chans : chan_profile list;  (** sorted by pressure, highest first *)
}

(** Run [g] against [mem] collecting the profile.  Honours every field of
    [cfg], including the engine: Scan and Event produce identical profiles
    (fires and cycle counts are engine-invariant; regression-tested in
    test/test_obs.ml). *)
val run : ?cfg:Sim.config -> Graph.t -> Memif.t -> t

(** Deterministic JSON rendering (stable field and list order). *)
val to_json : t -> Pv_obs.Json.t

(** The initiation interval implied by the total cycle count:
    [cycles / instances]. *)
val initiation_interval : t -> instances:int -> float

(** Print the [top] most backpressured channels and least utilised
    components. *)
val pp : ?top:int -> Format.formatter -> t -> unit
