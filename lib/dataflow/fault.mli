(** Deterministic fault-injection plans for resilience testing.

    A plan is a list of timed disturbances applied to a running simulation:
    channel-level faults (drop a token, stall a channel, flip value bits)
    are executed by {!Sim} itself; backend-level faults (a spurious squash,
    corruption of a premature-queue entry) are forwarded to the memory
    backend through {!Memif.t.inject}.

    {e Detected} faults ([Drop_replay], [Flip_replay], [B_pq_flip] with
    [detect], [B_squash]) pair the disturbance with a squash at the victim
    token's iteration — the model of a parity/ECC-protected datapath whose
    error signal drives the existing squash/replay machinery — and must be
    fully recoverable.  {e Silent} faults either starve the pipeline into a
    diagnosed deadlock or are caught by PreVV's own value validation.

    Events are {e armed} at [at_cycle] and fire at the first subsequent
    cycle at which they are applicable (a token present on the channel, a
    live entry in the queue); an event that never fires is reported as
    skipped in the post-mortem. *)

type backend_action =
  | B_squash of { seq : int }
      (** spurious squash at iteration [seq]; refused (and the event
          skipped) once the commit frontier has passed [seq] *)
  | B_pq_flip of { inst : int; slot : int; mask : int; detect : bool }
      (** xor [mask] into the value of the [slot]-th live premature-queue
          entry of disambiguation instance [inst]; [detect] models an ECC
          check that raises a squash at the entry's iteration *)
  | B_pq_drop of { inst : int; slot : int }
      (** lose the [slot]-th live entry outright (a silent SEU on the
          valid bit): its arrival is forgotten, so an undetected drop
          wedges the commit frontier *)

type action =
  | Drop of { chan : int }  (** silently lose the next token on [chan] *)
  | Drop_replay of { chan : int }
      (** detected loss: drop the token and squash at its iteration *)
  | Stall of { chan : int; cycles : int }
      (** block consumption from [chan] for [cycles] cycles *)
  | Flip of { chan : int; mask : int }
      (** silent SEU: xor [mask] into the next token's value *)
  | Flip_replay of { chan : int; mask : int }
      (** detected SEU: flip the value and squash at its iteration *)
  | Backend of backend_action

type event = { at_cycle : int; action : action }
type plan = event list

(** What became of an armed event. *)
type application = {
  ap_event : event;
  ap_fired_at : int option;  (** cycle it fired, [None] = never applicable *)
  ap_note : string;
}

val string_of_action : action -> string
val string_of_event : event -> string

(** Round-trips with {!parse}. *)
val to_string : plan -> string

val pp_action : Format.formatter -> action -> unit
val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit
val pp_application : Format.formatter -> application -> unit

(** Parse the textual form produced by {!to_string}: comma-separated
    [CYCLE:KIND:ARGS] events, e.g.
    ["40:drop-replay:c3,100:stall:c7:64,200:squash:i5"]. *)
val parse : string -> (plan, string) result

(** A plan of [n] detected (hence recoverable) disturbances, deterministic
    in [seed]: channel stalls, detected drops, detected bit-flips and
    spurious squashes, armed uniformly over the first [horizon] cycles. *)
val random_recoverable :
  ?n:int -> seed:int -> n_chans:int -> max_seq:int -> horizon:int -> unit -> plan

(** Like {!random_recoverable} but also drawing from the silent and
    destructive faults; such runs must end in a diagnosed outcome or
    verify clean, but are not guaranteed to complete. *)
val random_disruptive :
  ?n:int -> seed:int -> n_chans:int -> max_seq:int -> horizon:int -> unit -> plan
