(** Growable circular buffer of fixed-stride integer records.

    The simulator's hot loop stores every queue-shaped piece of state —
    FU pipelines, elastic buffers, announced stores, outstanding load
    responses — as records of [stride] ints in one flat array, so pushing
    and popping never touches the minor heap.  Capacity is a power of two
    (index arithmetic is a mask) and doubles on demand; after warm-up a
    steady-state cycle performs no allocation.

    Squash recovery uses {!reject_ge}: an in-place, order-preserving
    compaction that drops every record whose key field is at or beyond the
    squash point — the replacement for the allocate-a-scratch-queue-per-
    squash pattern this module retired. *)

type t = {
  stride : int;
  mutable buf : int array;  (* length = capacity * stride *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable head : int;  (* record index of the oldest record *)
  mutable len : int;  (* live records *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~stride cap =
  if stride <= 0 then invalid_arg "Ring.create: stride must be > 0";
  let cap = pow2 (max cap 2) 2 in
  { stride; buf = Array.make (cap * stride) 0; mask = cap - 1; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = t.mask + 1
let stride t = t.stride

(* Base offset into [buf] of live record [i] (0 = oldest). *)
let[@inline] base t i = ((t.head + i) land t.mask) * t.stride

(* Record/field coordinates come from the simulator's own invariants
   (i < len, field < stride), and the masked base is in range by
   construction, so accesses skip the bounds check — this module is on
   the per-cycle hot path of every pipe, buffer and memory port. *)
let[@inline] get t i field = Array.unsafe_get t.buf (base t i + field)
let[@inline] set t i field v = Array.unsafe_set t.buf (base t i + field) v

let grow t =
  let cap = capacity t in
  let buf = Array.make (cap * 2 * t.stride) 0 in
  (* unroll the circular order into the new buffer *)
  for i = 0 to t.len - 1 do
    Array.blit t.buf (base t i) buf (i * t.stride) t.stride
  done;
  t.buf <- buf;
  t.mask <- (cap * 2) - 1;
  t.head <- 0

(* Append one record and return its base offset for field writes. *)
let[@inline] push_base t =
  if t.len > t.mask then grow t;
  let b = base t t.len in
  t.len <- t.len + 1;
  b

let push1 t a =
  let b = push_base t in
  Array.unsafe_set t.buf b a

let push2 t a b2 =
  let b = push_base t in
  Array.unsafe_set t.buf b a;
  Array.unsafe_set t.buf (b + 1) b2

let push3 t a b2 c =
  let b = push_base t in
  Array.unsafe_set t.buf b a;
  Array.unsafe_set t.buf (b + 1) b2;
  Array.unsafe_set t.buf (b + 2) c

let push4 t a b2 c d =
  let b = push_base t in
  Array.unsafe_set t.buf b a;
  Array.unsafe_set t.buf (b + 1) b2;
  Array.unsafe_set t.buf (b + 2) c;
  Array.unsafe_set t.buf (b + 3) d

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  t.head <- (t.head + 1) land t.mask;
  t.len <- t.len - 1

let clear t =
  t.head <- 0;
  t.len <- 0

(* Drop every record whose [field] is >= [cutoff], preserving the order of
   the survivors; returns the number of records dropped.  Compaction moves
   surviving records toward the head in place — write index w never passes
   read index r, so field-by-field copies are safe even across the wrap. *)
let[@inline] keep_record t r w =
  if w < r then begin
    let src = base t r and dst = base t w in
    for k = 0 to t.stride - 1 do
      t.buf.(dst + k) <- t.buf.(src + k)
    done
  end

let reject_ge t ~field ~cutoff =
  let w = ref 0 in
  for r = 0 to t.len - 1 do
    if t.buf.(base t r + field) < cutoff then begin
      keep_record t r !w;
      incr w
    end
  done;
  let removed = t.len - !w in
  t.len <- !w;
  removed

let reject_lt t ~field ~cutoff =
  let w = ref 0 in
  for r = 0 to t.len - 1 do
    if t.buf.(base t r + field) >= cutoff then begin
      keep_record t r !w;
      incr w
    end
  done;
  let removed = t.len - !w in
  t.len <- !w;
  removed

let iter f t =
  for i = 0 to t.len - 1 do
    f i
  done
