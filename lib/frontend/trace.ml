(** Loop-nest trace: the schedule the generator component walks.

    A dataflow circuit's chain of control merges and branches computes the
    program-order succession of basic-block instances at run time; since
    our kernels' loop bounds are compile-time expressions over parameters
    and outer induction variables (no data-dependent trip counts), that
    succession is a pure function of the instance number and can be
    tabulated.  This table parameterises the rewindable {!Pv_dataflow.Types.Gen}
    node — the single point the PreVV squash rewinds. *)

open Pv_kernels

exception Data_dependent_bound of Ast.expr

(* Evaluate a bound expression over scalars only. *)
let rec eval_bound env (e : Ast.expr) : int =
  match e with
  | Ast.Int n -> n
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some n -> n
      | None -> raise (Interp.Unbound_variable v))
  | Ast.Un (u, x) -> Pv_dataflow.Types.eval_unop u (eval_bound env x)
  | Ast.Bin (b, x, y) ->
      Pv_dataflow.Types.eval_binop b (eval_bound env x) (eval_bound env y)
  | Ast.Idx _ -> raise (Data_dependent_bound e)

type t = {
  rows : int array array;
      (** [rows.(seq)] = [| leaf_id; iv_0; ...; iv_{arity-2} |] where the
          induction variables are those of the leaf's loop nest, outermost
          first, padded with zeros *)
  arity : int;  (** generator output count: 1 (leaf id) + max loop depth *)
}

let of_kernel (k : Ast.kernel) (info : Depend.info) : t =
  let arity = 1 + info.Depend.max_loop_depth in
  let rows = ref [] in
  let n = ref 0 in
  let rec walk env node =
    match node with
    | Depend.Leaf (id, _) ->
        let leaf = List.nth info.Depend.leaves id in
        let row = Array.make arity 0 in
        row.(0) <- id;
        List.iteri
          (fun i var -> row.(i + 1) <- List.assoc var env)
          leaf.Depend.loop_vars;
        rows := row :: !rows;
        incr n
    | Depend.Loop { var; lo; hi; body } ->
        let lo = eval_bound env lo and hi = eval_bound env hi in
        for iv = lo to hi - 1 do
          List.iter (walk ((var, iv) :: env)) body
        done
  in
  List.iter (walk k.Ast.params) info.Depend.nodes;
  { rows = Array.of_list (List.rev !rows); arity }

let length t = Array.length t.rows

(** The generator specification driving the circuit. *)
let gen_spec (t : t) : Pv_dataflow.Types.gen_spec =
  {
    Pv_dataflow.Types.gen_arity = t.arity;
    gen_next =
      (fun seq -> if seq < Array.length t.rows then t.rows.(seq) else [||]);
    gen_group =
      (fun seq ->
        if seq < Array.length t.rows then t.rows.(seq).(0)
        else invalid_arg "gen_group: seq out of range");
  }
