open Pv_dataflow
open Pv_memory

type store_rec = { st_seq : int; st_port : int; st_value : int }

type t = {
  n_ops : int;
  complete : bool;
  loads : (int * int, int * int) Hashtbl.t;  (* (port,seq) -> (addr,value) *)
  stores : (int * int, int * int) Hashtbl.t;  (* (port,seq) -> (addr,value) *)
  skips : (int * int, unit) Hashtbl.t;
  by_addr : (int, store_rec array) Hashtbl.t;  (* ascending (seq,port) *)
}

let n_ops t = t.n_ops
let complete t = t.complete

type recorder = {
  pm : Portmap.t;
  load_addr : (int * int, int) Hashtbl.t;
  loadv : (int * int, int * int) Hashtbl.t;
  storev : (int * int, int * int) Hashtbl.t;
  skipt : (int * int, unit) Hashtbl.t;
  mutable ops : int;
}

let wrap pm (inner : Memif.t) =
  let r =
    {
      pm;
      load_addr = Hashtbl.create 256;
      loadv = Hashtbl.create 256;
      storev = Hashtbl.create 256;
      skipt = Hashtbl.create 16;
      ops = 0;
    }
  in
  let mif =
    {
      inner with
      Memif.load_req =
        (fun ~port ~key ~addr ->
          let ok = inner.Memif.load_req ~port ~key ~addr in
          if ok then begin
            Hashtbl.replace r.load_addr (port, Types.Token.seq key) addr;
            r.ops <- r.ops + 1
          end;
          ok);
      load_poll =
        (fun ~port out ->
          inner.Memif.load_poll ~port out
          && begin
               let seq = Types.Token.seq out.Memif.ls_key
               and v = out.Memif.ls_value in
               (match Hashtbl.find_opt r.load_addr (port, seq) with
               | Some a -> Hashtbl.replace r.loadv (port, seq) (a, v)
               | None -> ());
               true
             end);
      store_req =
        (fun ~port ~key ~addr ~value ->
          let ok = inner.Memif.store_req ~port ~key ~addr ~value in
          if ok then begin
            Hashtbl.replace r.storev (port, Types.Token.seq key) (addr, value);
            r.ops <- r.ops + 1
          end;
          ok);
      op_skip =
        (fun ~port ~key ->
          let ok = inner.Memif.op_skip ~port ~key in
          if ok then Hashtbl.replace r.skipt (port, Types.Token.seq key) ();
          ok);
    }
  in
  (r, mif)

let finish ~complete r =
  let tmp : (int, store_rec list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (port, seq) (addr, value) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tmp addr) in
      Hashtbl.replace tmp addr
        ({ st_seq = seq; st_port = port; st_value = value } :: prev))
    r.storev;
  let by_addr = Hashtbl.create (max 16 (Hashtbl.length tmp)) in
  Hashtbl.iter
    (fun addr l ->
      let a = Array.of_list l in
      Array.sort
        (fun x y -> compare (x.st_seq, x.st_port) (y.st_seq, y.st_port))
        a;
      Hashtbl.replace by_addr addr a)
    tmp;
  {
    n_ops = r.ops;
    complete;
    loads = r.loadv;
    stores = r.storev;
    skips = r.skipt;
    by_addr;
  }

let load_value t ~port ~seq ~addr =
  match Hashtbl.find_opt t.loads (port, seq) with
  | Some (a, v) when a = addr -> Some v
  | _ -> None

let store_payload t ~port ~seq = Hashtbl.find_opt t.stores (port, seq)
let skipped t ~port ~seq = Hashtbl.mem t.skips (port, seq)

let youngest_older_store t ~addr ~seq ~port =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> None
  | Some a ->
      (* rightmost store with (st_seq, st_port) < (seq, port) *)
      let key = (seq, port) in
      let lo = ref 0 and hi = ref (Array.length a) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if compare (a.(mid).st_seq, a.(mid).st_port) key < 0 then lo := mid + 1
        else hi := mid
      done;
      if !lo = 0 then None else Some a.(!lo - 1)

let is_final_store t ~addr ~seq ~port =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> false
  | Some a ->
      Array.length a > 0
      &&
      let last = a.(Array.length a - 1) in
      last.st_seq = seq && last.st_port = port
