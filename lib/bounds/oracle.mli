(** Perfect-disambiguation reference backend — the cycle {e lower bound}.

    The oracle consults a {!Prescience.t} recording of a fault-free
    reference run, so it knows every dependency before it happens and
    serializes only {e true} conflicting load/store pairs:

    - a load with no older in-flight conflicting store is served at plain
      memory latency, with no capacity, allocation or bandwidth limits;
    - a load whose conflicting store has already arrived is served at
      forwarding latency (one cycle), matching PreVV's forward gate;
    - a load whose conflicting store is still in flight but whose visible
      memory value coincides with the correct one is served at memory
      latency — exactly the speculations PreVV survives via Eq. 5 value
      validation — and only a {e true} mismatch makes the load wait for
      the store's arrival.

    It never squashes and never replays.  If the observed run diverges
    from the recording (an injected fault corrupted an address or value,
    or the recording is incomplete), the oracle {e degrades}
    deterministically: all waiting and future loads are served from
    visible memory immediately.  Degraded runs still terminate and still
    count as a lower bound candidate, but the differential harness treats
    them as disagreements when their final memory differs. *)

type config = {
  mem_latency : int;  (** cycles for a memory access (default 2) *)
  forward_latency : int;  (** cycles for store-to-load forwarding (1) *)
}

val default : config

type t

(** [create_full ?trace cfg pm mem ~prescience] builds the oracle over the
    flat memory [mem] (mutated in place to the final state).  The
    prescience recording is forced on first use, so building the backend
    is cheap when the run never touches ambiguous ports. *)
val create_full :
  ?trace:Pv_obs.Trace.t ->
  config ->
  Pv_memory.Portmap.t ->
  int array ->
  prescience:Prescience.t Lazy.t ->
  t * Pv_dataflow.Memif.t

(** {1 Scheme-specific counters} *)

(** Loads that had to wait for a true conflicting store. *)
val waits : t -> int

(** Loads served early because the visible value coincided with the
    correct one (the PreVV Eq. 5 survival condition). *)
val coincidences : t -> int

(** Loads whose conflicting store had already arrived (forwarded). *)
val forwards : t -> int

(** The oracle fell back to visible-memory service after a divergence. *)
val degraded : t -> bool
