(** Fully serializing reference backend — the cycle {e upper bound}.

    Models a single non-pipelined memory channel with strict program-order
    issue: at most one memory operation is in flight at any time, each
    occupying the channel for [mem_latency + turnaround] cycles, and
    ambiguous operations are additionally admitted only in exact program
    order [(seq, port)] — the most conservative legal disambiguation
    (every pair of ambiguous ops is treated as a true dependency).  Direct
    (unambiguous) ports share the same single channel but are served in
    arrival order.

    It never speculates, never squashes and holds no speculative state
    ([inject] refuses every backend fault). *)

type config = {
  mem_latency : int;  (** cycles for a memory access (default 2) *)
  turnaround : int;
      (** dead cycles before the channel accepts the next op (default 1) *)
}

val default : config

type t

val create_full :
  ?trace:Pv_obs.Trace.t ->
  config ->
  Pv_memory.Portmap.t ->
  int array ->
  t * Pv_dataflow.Memif.t

(** {1 Scheme-specific counters} *)

(** Ambiguous operations admitted through the program-order gate. *)
val serialized : t -> int

(** Current head of the program-order gate, as [(seq, index)] into the
    group's port list — useful in post-mortems. *)
val head : t -> int * int
