open Pv_dataflow
open Pv_memory
module Trace = Pv_obs.Trace

type config = { mem_latency : int; turnaround : int }

let default = { mem_latency = 2; turnaround = 1 }

type t = {
  cfg : config;
  mem : int array;
  stats : Memif.stats;
  trace : Trace.t;
  gports : int array array;  (* group -> ambiguous ports, program order *)
  group_of : (int, int) Hashtbl.t;  (* seq -> group *)
  done_ : (int * int, unit) Hashtbl.t;  (* (seq, port) completed/skipped *)
  resp : (int, (int * Types.Token.t * int) Queue.t) Hashtbl.t;
      (* port -> (ready_at, token key, value) *)
  mutable head_seq : int;
  mutable head_idx : int;
  mutable busy_until : int;  (* the single memory channel *)
  mutable now : int;
  mutable pending : int;
  mutable n_serialized : int;
}

let serialized t = t.n_serialized
let head t = (t.head_seq, t.head_idx)
let in_bounds t addr = addr >= 0 && addr < Array.length t.mem
let read_mem t addr = if in_bounds t addr then t.mem.(addr) else 0
let write_mem t addr value = if in_bounds t addr then t.mem.(addr) <- value

(* Skip completed/skipped ops and exhausted instances; stops when the head
   instance's group is not yet announced. *)
let rec advance t =
  match Hashtbl.find_opt t.group_of t.head_seq with
  | None -> ()
  | Some g ->
      let ports = t.gports.(g) in
      if t.head_idx >= Array.length ports then begin
        t.head_seq <- t.head_seq + 1;
        t.head_idx <- 0;
        advance t
      end
      else if Hashtbl.mem t.done_ (t.head_seq, ports.(t.head_idx)) then begin
        t.head_idx <- t.head_idx + 1;
        advance t
      end

let expected t =
  match Hashtbl.find_opt t.group_of t.head_seq with
  | None -> None
  | Some g ->
      let ports = t.gports.(g) in
      if t.head_idx < Array.length ports then Some ports.(t.head_idx) else None

let queue_of t port =
  match Hashtbl.find_opt t.resp port with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.resp port q;
      q

let occupy t =
  t.busy_until <- t.now + t.cfg.mem_latency + t.cfg.turnaround;
  if t.stats.max_occupancy < 1 then t.stats.max_occupancy <- 1

(* The single channel is free and — for ambiguous ports — this op is the
   program-order head. *)
let admit t ~ambiguous ~port ~seq =
  if ambiguous then begin
    advance t;
    if not (expected t = Some port && seq = t.head_seq) then begin
      t.stats.stall_order <- t.stats.stall_order + 1;
      false
    end
    else if t.now < t.busy_until then begin
      t.stats.stall_bw <- t.stats.stall_bw + 1;
      false
    end
    else begin
      Hashtbl.replace t.done_ (seq, port) ();
      t.head_idx <- t.head_idx + 1;
      advance t;
      t.n_serialized <- t.n_serialized + 1;
      true
    end
  end
  else if t.now < t.busy_until then begin
    t.stats.stall_bw <- t.stats.stall_bw + 1;
    false
  end
  else true

let create_full ?(trace = Trace.null) cfg pm mem =
  let t =
    {
      cfg;
      mem;
      stats = Memif.fresh_stats ();
      trace;
      gports =
        Array.init pm.Portmap.n_groups (fun g ->
            Array.of_list (Portmap.group_ports pm g));
      group_of = Hashtbl.create 256;
      done_ = Hashtbl.create 256;
      resp = Hashtbl.create 16;
      head_seq = 0;
      head_idx = 0;
      busy_until = 0;
      now = 0;
      pending = 0;
      n_serialized = 0;
    }
  in
  let ambiguous port = Portmap.is_ambiguous pm port in
  let mif =
    {
      Memif.begin_instance =
        (fun ~seq ~group ->
          Hashtbl.replace t.group_of seq group;
          true);
      alloc_group =
        (fun ~key ~group ->
          Hashtbl.replace t.group_of (Types.Token.seq key) group;
          true);
      load_req =
        (fun ~port ~key ~addr ->
          let seq = Types.Token.seq key in
          if admit t ~ambiguous:(ambiguous port) ~port ~seq then begin
            t.stats.loads <- t.stats.loads + 1;
            Queue.add
              (t.now + cfg.mem_latency, key, read_mem t addr)
              (queue_of t port);
            t.pending <- t.pending + 1;
            occupy t;
            true
          end
          else false);
      load_poll =
        (fun ~port out ->
          match Hashtbl.find_opt t.resp port with
          | None -> false
          | Some q ->
              if Queue.is_empty q then false
              else
                let ready_at, key, value = Queue.peek q in
                if ready_at <= t.now then begin
                  ignore (Queue.pop q);
                  t.pending <- t.pending - 1;
                  out.Memif.ls_key <- key;
                  out.Memif.ls_value <- value;
                  true
                end
                else false);
      store_req =
        (fun ~port ~key ~addr ~value ->
          if admit t ~ambiguous:(ambiguous port) ~port ~seq:(Types.Token.seq key)
          then begin
            t.stats.stores <- t.stats.stores + 1;
            write_mem t addr value;
            occupy t;
            true
          end
          else false);
      store_addr = (fun ~port:_ ~key:_ ~addr:_ -> ());
      op_skip =
        (fun ~port ~key ->
          t.stats.fake_tokens <- t.stats.fake_tokens + 1;
          if ambiguous port then begin
            Hashtbl.replace t.done_ (Types.Token.seq key, port) ();
            advance t
          end;
          true);
      poll_squash = (fun () -> None);
      clock = (fun () -> t.now <- t.now + 1);
      quiesced = (fun () -> t.pending = 0);
      stats = (fun () -> t.stats);
      inject = (fun _ -> false);
      describe =
        (fun () ->
          Printf.sprintf
            "serial: now=%d head=(seq=%d,idx=%d) expected_port=%s busy_until=%d \
             pending=%d serialized=%d"
            t.now t.head_seq t.head_idx
            (match expected t with
            | Some p -> string_of_int p
            | None -> "?")
            t.busy_until t.pending t.n_serialized);
    }
  in
  (t, mif)
