open Pv_dataflow
open Pv_memory
module Trace = Pv_obs.Trace

type config = { mem_latency : int; forward_latency : int }

let default = { mem_latency = 2; forward_latency = 1 }

(* A load waiting for a true conflicting store, identified by the store's
   (port, seq).  Its response slot is already enqueued on the load port so
   per-port delivery order is preserved. *)
type waiter = {
  w_store : int * int;
  w_value : int;
  w_addr : int;
  w_slot : (int * int) option ref;  (* (ready_at, value) *)
}

type t = {
  cfg : config;
  pm : Portmap.t;
  mem : int array;
  stats : Memif.stats;
  prescience : Prescience.t Lazy.t;
  trace : Trace.t;
  (* visible memory = youngest arrived store per address; the owner is the
     (seq, port) program-order key of the store currently backing mem *)
  vis_owner : (int, int * int) Hashtbl.t;
  arrived : (int * int, unit) Hashtbl.t;  (* (port, seq) of arrived stores *)
  resp : (int, (Types.Token.t * (int * int) option ref) Queue.t) Hashtbl.t;
  mutable waiting : waiter list;
  mutable broken : bool;
  mutable now : int;
  mutable outstanding : int;
  mutable n_waits : int;
  mutable n_coincidences : int;
  mutable n_forwards : int;
}

let waits t = t.n_waits
let coincidences t = t.n_coincidences
let forwards t = t.n_forwards
let degraded t = t.broken
let in_bounds t addr = addr >= 0 && addr < Array.length t.mem
let read_vis t addr = if in_bounds t addr then t.mem.(addr) else 0

let write_vis t ~port ~seq ~addr ~value =
  if in_bounds t addr then begin
    let owner =
      Option.value ~default:(-1, -1) (Hashtbl.find_opt t.vis_owner addr)
    in
    if compare (seq, port) owner > 0 then begin
      t.mem.(addr) <- value;
      Hashtbl.replace t.vis_owner addr (seq, port)
    end
  end

let queue_of t port =
  match Hashtbl.find_opt t.resp port with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.resp port q;
      q

let open_slot t ~port ~key =
  let slot = ref None in
  Queue.add (key, slot) (queue_of t port);
  t.outstanding <- t.outstanding + 1;
  if t.outstanding > t.stats.max_occupancy then
    t.stats.max_occupancy <- t.outstanding;
  slot

let respond t ~port ~key ~ready_at ~value =
  let slot = open_slot t ~port ~key in
  slot := Some (ready_at, value)

let degrade t =
  if not t.broken then begin
    t.broken <- true;
    t.stats.degraded <- t.stats.degraded + 1;
    Trace.instant t.trace ~tid:Trace.tid_backend ~ts:t.now "oracle_degraded";
    List.iter
      (fun w ->
        w.w_slot := Some (t.now + t.cfg.mem_latency, read_vis t w.w_addr))
      t.waiting;
    t.waiting <- []
  end

let release_waiters t key =
  let rel, keep = List.partition (fun w -> w.w_store = key) t.waiting in
  List.iter
    (fun w -> w.w_slot := Some (t.now + t.cfg.forward_latency, w.w_value))
    rel;
  t.waiting <- keep

let serve_ambiguous_load t ~port ~key ~addr =
  let seq = Types.Token.seq key in
  let fallback () =
    respond t ~port ~key ~ready_at:(t.now + t.cfg.mem_latency)
      ~value:(read_vis t addr)
  in
  if t.broken then fallback ()
  else
    let presc = Lazy.force t.prescience in
    if not (Prescience.complete presc) then begin
      degrade t;
      fallback ()
    end
    else
      match Prescience.load_value presc ~port ~seq ~addr with
      | None ->
          (* address diverged from the recording (fault-corrupted) *)
          degrade t;
          fallback ()
      | Some v_correct -> (
          match Prescience.youngest_older_store presc ~addr ~seq ~port with
          | None ->
              respond t ~port ~key ~ready_at:(t.now + t.cfg.mem_latency)
                ~value:v_correct
          | Some st ->
              if Hashtbl.mem t.arrived (st.Prescience.st_port, st.st_seq) then begin
                t.n_forwards <- t.n_forwards + 1;
                t.stats.forwarded <- t.stats.forwarded + 1;
                respond t ~port ~key ~ready_at:(t.now + t.cfg.forward_latency)
                  ~value:v_correct
              end
              else if read_vis t addr = v_correct then begin
                (* value coincidence: PreVV would speculate and survive
                   validation (Eq. 5), so the lower bound must not wait *)
                t.n_coincidences <- t.n_coincidences + 1;
                respond t ~port ~key ~ready_at:(t.now + t.cfg.mem_latency)
                  ~value:v_correct
              end
              else begin
                t.n_waits <- t.n_waits + 1;
                t.stats.stall_order <- t.stats.stall_order + 1;
                Trace.instant t.trace ~tid:Trace.tid_backend ~ts:t.now
                  "oracle_wait"
                  ~args:
                    [ ("port", port); ("seq", seq); ("store_seq", st.st_seq) ];
                let slot = open_slot t ~port ~key in
                t.waiting <-
                  {
                    w_store = (st.st_port, st.st_seq);
                    w_value = v_correct;
                    w_addr = addr;
                    w_slot = slot;
                  }
                  :: t.waiting
              end)

let create_full ?(trace = Trace.null) cfg pm mem ~prescience =
  let t =
    {
      cfg;
      pm;
      mem;
      stats = Memif.fresh_stats ();
      prescience;
      trace;
      vis_owner = Hashtbl.create 64;
      arrived = Hashtbl.create 256;
      resp = Hashtbl.create 16;
      waiting = [];
      broken = false;
      now = 0;
      outstanding = 0;
      n_waits = 0;
      n_coincidences = 0;
      n_forwards = 0;
    }
  in
  let ambiguous port = Portmap.is_ambiguous pm port in
  let mif =
    {
      Memif.begin_instance = (fun ~seq:_ ~group:_ -> true);
      alloc_group = (fun ~key:_ ~group:_ -> true);
      load_req =
        (fun ~port ~key ~addr ->
          t.stats.loads <- t.stats.loads + 1;
          if ambiguous port then serve_ambiguous_load t ~port ~key ~addr
          else
            respond t ~port ~key ~ready_at:(t.now + cfg.mem_latency)
              ~value:(read_vis t addr);
          true);
      load_poll =
        (fun ~port out ->
          match Hashtbl.find_opt t.resp port with
          | None -> false
          | Some q -> (
              if Queue.is_empty q then false
              else
                let key, slot = Queue.peek q in
                match !slot with
                | Some (ready_at, value) when ready_at <= t.now ->
                    ignore (Queue.pop q);
                    t.outstanding <- t.outstanding - 1;
                    out.Memif.ls_key <- key;
                    out.Memif.ls_value <- value;
                    true
                | _ -> false));
      store_req =
        (fun ~port ~key ~addr ~value ->
          let seq = Types.Token.seq key in
          t.stats.stores <- t.stats.stores + 1;
          if ambiguous port && not t.broken then begin
            let presc = Lazy.force t.prescience in
            match Prescience.store_payload presc ~port ~seq with
            | Some (a, v) when a = addr && v = value -> ()
            | _ -> degrade t
          end;
          Hashtbl.replace t.arrived (port, seq) ();
          write_vis t ~port ~seq ~addr ~value;
          release_waiters t (port, seq);
          true);
      store_addr = (fun ~port:_ ~key:_ ~addr:_ -> ());
      op_skip =
        (fun ~port ~key ->
          let seq = Types.Token.seq key in
          t.stats.fake_tokens <- t.stats.fake_tokens + 1;
          if ambiguous port && not t.broken then begin
            let presc = Lazy.force t.prescience in
            (* a store the recording expected will never arrive: anyone
               waiting on it would hang, so fall back *)
            if Prescience.store_payload presc ~port ~seq <> None then degrade t
          end;
          true);
      poll_squash = (fun () -> None);
      clock = (fun () -> t.now <- t.now + 1);
      quiesced = (fun () -> t.outstanding = 0 && t.waiting = []);
      stats = (fun () -> t.stats);
      inject = (fun _ -> false);
      describe =
        (fun () ->
          let waiting =
            List.map
              (fun w ->
                let sp, ss = w.w_store in
                Printf.sprintf "store(port=%d,seq=%d)" sp ss)
              t.waiting
          in
          Printf.sprintf
            "oracle: now=%d outstanding=%d waiting=[%s] degraded=%b waits=%d \
             coincidences=%d forwards=%d"
            t.now t.outstanding
            (String.concat "; " waiting)
            t.broken t.n_waits t.n_coincidences t.n_forwards);
    }
  in
  (t, mif)
