(** Recorded knowledge of a kernel's dynamic memory behaviour, captured
    from a fault-free reference run — the "perfect disambiguator" that the
    {!Oracle} backend consults.

    A {!recorder} wraps any correct {!Pv_dataflow.Memif.t} (the fast LSQ
    in practice) and logs every accepted operation: load addresses and the
    values they returned, store payloads, and skip notifications.
    {!finish} indexes the log into the queries an oracle needs: the
    correct value of each load, the youngest program-order-older store to
    an address, and whether a store is the final writer of its address.

    Program order of dynamic ops is the pair [(seq, port)]: instances
    execute in seq order and port ids are assigned in program order, so
    the port id is the in-instance tie-break. *)

type store_rec = {
  st_seq : int;  (** body-instance number *)
  st_port : int;  (** static port id — the program-order tie-break *)
  st_value : int;
}

type t

(** Number of accepted load/store operations recorded. *)
val n_ops : t -> int

(** The reference run completed; a partial recording (reference deadlock)
    makes the oracle degrade rather than trust it. *)
val complete : t -> bool

type recorder

(** Wrap [inner] so every accepted operation is recorded.  The returned
    interface is behaviourally identical to [inner]. *)
val wrap :
  Pv_memory.Portmap.t -> Pv_dataflow.Memif.t -> recorder * Pv_dataflow.Memif.t

(** Index the recording.  [complete] states whether the reference run
    finished (pass the outcome's verdict). *)
val finish : complete:bool -> recorder -> t

(** The value the load of [(port, seq)] must return, provided its address
    matches the recorded one ([None] on any mismatch — the current run has
    diverged from the recording). *)
val load_value : t -> port:int -> seq:int -> addr:int -> int option

(** Recorded [(addr, value)] payload of the store of [(port, seq)]. *)
val store_payload : t -> port:int -> seq:int -> (int * int) option

(** The op of [(port, seq)] was skipped (fake token) in the reference run. *)
val skipped : t -> port:int -> seq:int -> bool

(** Youngest store to [addr] strictly older in program order than the
    operation at [(seq, port)] — the only store that can carry the value a
    load at that point must observe. *)
val youngest_older_store :
  t -> addr:int -> seq:int -> port:int -> store_rec option

(** The store at [(seq, port)] is the last writer of [addr]. *)
val is_final_store : t -> addr:int -> seq:int -> port:int -> bool
