let () =
  let open Pv_core in
  let kernels = Pv_kernels.Defs.all () in
  (* every registered scheme, bound backends included *)
  let configs =
    List.map (fun (module M : Scheme.S) -> M.config) (Scheme.all ())
  in
  List.iter
    (fun k ->
      List.iter
        (fun dis ->
          let t0 = Clock.now_ns () in
          (match Pipeline.check k dis with
          | Ok r ->
              Printf.printf "%-12s %-10s OK  cycles=%6d  %s  (%.2fs)\n%!"
                k.Pv_kernels.Ast.name (Pipeline.name_of dis) r.Pipeline.cycles
                (Format.asprintf "%a" Pv_dataflow.Memif.pp_stats r.Pipeline.mem_stats)
                (Clock.elapsed_s t0)
          | Error e -> Printf.printf "FAIL %s (%.2fs)\n%!" e (Clock.elapsed_s t0)))
        configs)
    kernels
