(* Diagnostic driver: per-node fire rates (II analysis) and stuck-token
   dumps for deadlocks. Not part of the public API. *)

let pp_kind = Pv_dataflow.Types.kind_name

let analyse_ii kernel dis =
  let compiled = Pv_core.Pipeline.compile kernel in
  let r = Pv_core.Pipeline.simulate compiled dis in
  Printf.printf "== %s / %s: %s, cycles=%d instances=%d\n"
    kernel.Pv_kernels.Ast.name
    (Pv_core.Pipeline.name_of dis)
    (Format.asprintf "%a" Pv_dataflow.Sim.pp_outcome r.Pv_core.Pipeline.outcome)
    r.Pv_core.Pipeline.cycles r.Pv_core.Pipeline.run_stats.Pv_dataflow.Sim.gen_instances;
  let g = compiled.Pv_core.Pipeline.graph in
  let fires = r.Pv_core.Pipeline.run_stats.Pv_dataflow.Sim.node_fires in
  (* print the 15 least-firing non-sink nodes (bottlenecks show as low) *)
  let nodes = ref [] in
  Pv_dataflow.Graph.iter_nodes
    (fun n ->
      match n.Pv_dataflow.Graph.kind with
      | Pv_dataflow.Types.Sink -> ()
      | k -> nodes := (fires.(n.Pv_dataflow.Graph.nid), n.Pv_dataflow.Graph.nid, pp_kind k, n.Pv_dataflow.Graph.label) :: !nodes)
    g;
  let sorted = List.sort compare !nodes in
  List.iteri
    (fun i (f, nid, k, l) ->
      if i < 12 then Printf.printf "  fires=%6d node %3d %-8s %s\n" f nid k l)
    sorted;
  Printf.printf "  (max fires=%d)\n"
    (List.fold_left (fun m (f, _, _, _) -> max m f) 0 sorted)

let snapshot_lsq kernel cfg ncycles =
  let compiled = Pv_core.Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout kernel ~init
  in
  let lsq, backend =
    Pv_lsq.Lsq.create_full cfg compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap mem
  in
  let t = Pv_dataflow.Sim.create compiled.Pv_core.Pipeline.graph backend in
  for _ = 1 to ncycles do
    if not (Pv_dataflow.Sim.finished t) then Pv_dataflow.Sim.step t
  done;
  Printf.printf "== LSQ snapshot at cycle %d:\n" (Pv_dataflow.Sim.cycle t);
  Format.printf "%a@." Pv_lsq.Lsq.dump lsq

let deadlock_dump_lsq kernel cfg =
  let compiled = Pv_core.Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout kernel ~init
  in
  let lsq, backend =
    Pv_lsq.Lsq.create_full cfg compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap mem
  in
  let t = Pv_dataflow.Sim.create compiled.Pv_core.Pipeline.graph backend in
  let steps = ref 0 in
  while
    (not (Pv_dataflow.Sim.finished t))
    && Pv_dataflow.Sim.cycle t - Pv_dataflow.Sim.last_progress t < 3000
    && !steps < 200000
  do
    Pv_dataflow.Sim.step t;
    incr steps
  done;
  if Pv_dataflow.Sim.finished t then Printf.printf "finished, no deadlock\n"
  else begin
    Printf.printf "== LSQ state at deadlock (cycle %d):\n" (Pv_dataflow.Sim.cycle t);
    Format.printf "%a@." Pv_lsq.Lsq.dump lsq;
    Format.printf "portmap:@\n%a@." Pv_memory.Portmap.pp
      compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap
  end

let deadlock_dump kernel dis =
  let compiled = Pv_core.Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout kernel ~init
  in
  let backend = Pv_core.Pipeline.backend_of compiled mem dis in
  let t = Pv_dataflow.Sim.create compiled.Pv_core.Pipeline.graph backend in
  let steps = ref 0 in
  while
    (not (Pv_dataflow.Sim.finished t))
    && Pv_dataflow.Sim.cycle t - Pv_dataflow.Sim.last_progress t < 3000
    && !steps < 200000
  do
    Pv_dataflow.Sim.step t;
    incr steps
  done;
  if Pv_dataflow.Sim.finished t then Printf.printf "finished, no deadlock\n"
  else begin
    Printf.printf "== DEADLOCK %s/%s at cycle %d\n" kernel.Pv_kernels.Ast.name
      (Pv_core.Pipeline.name_of dis) (Pv_dataflow.Sim.cycle t);
    (* stuck tokens *)
    let g = compiled.Pv_core.Pipeline.graph in
    for cid = 0 to Pv_dataflow.Graph.n_chans g - 1 do
      match Pv_dataflow.Sim.chan_token t cid with
      | Some tk ->
          let c = Pv_dataflow.Graph.chan g cid in
          let src = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.src.Pv_dataflow.Graph.node in
          let dst = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.node in
          Printf.printf "  chan %d: %s#%d -> %s#%d  token %s\n" cid
            src.Pv_dataflow.Graph.label src.Pv_dataflow.Graph.nid
            dst.Pv_dataflow.Graph.label dst.Pv_dataflow.Graph.nid
            (Format.asprintf "%a" Pv_dataflow.Types.pp_token tk)
      | None -> ()
    done
  end

let snapshot_prevv kernel cfg ncycles =
  let compiled = Pv_core.Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout kernel ~init
  in
  let pv, backend =
    Pv_prevv.Backend.create_full cfg
      compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap mem
  in
  let t = Pv_dataflow.Sim.create compiled.Pv_core.Pipeline.graph backend in
  for _ = 1 to ncycles do
    if not (Pv_dataflow.Sim.finished t) then Pv_dataflow.Sim.step t
  done;
  Printf.printf "== PreVV snapshot at cycle %d:\n" (Pv_dataflow.Sim.cycle t);
  Format.printf "%a@." Pv_prevv.Backend.dump pv

let deadlock_dump_prevv kernel cfg =
  let compiled = Pv_core.Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout kernel ~init
  in
  let pv, backend =
    Pv_prevv.Backend.create_full cfg
      compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap mem
  in
  let t = Pv_dataflow.Sim.create compiled.Pv_core.Pipeline.graph backend in
  let steps = ref 0 in
  while
    (not (Pv_dataflow.Sim.finished t))
    && Pv_dataflow.Sim.cycle t - Pv_dataflow.Sim.last_progress t < 3000
    && !steps < 400000
  do
    Pv_dataflow.Sim.step t;
    incr steps
  done;
  if Pv_dataflow.Sim.finished t then Printf.printf "finished, no deadlock\n"
  else begin
    Printf.printf "== PreVV state at deadlock (cycle %d):\n" (Pv_dataflow.Sim.cycle t);
    Format.printf "%a@." Pv_prevv.Backend.dump pv;
    (* stuck tokens near ports *)
    let g = compiled.Pv_core.Pipeline.graph in
    for cid = 0 to Pv_dataflow.Graph.n_chans g - 1 do
      match Pv_dataflow.Sim.chan_token t cid with
      | Some tk ->
          let c = Pv_dataflow.Graph.chan g cid in
          let dst = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.node in
          (match dst.Pv_dataflow.Graph.kind with
          | Pv_dataflow.Types.Load _ | Pv_dataflow.Types.Store _ ->
              Printf.printf "  waiting at %s#%d: token %s\n"
                dst.Pv_dataflow.Graph.label dst.Pv_dataflow.Graph.nid
                (Format.asprintf "%a" Pv_dataflow.Types.pp_token tk)
          | _ -> ())
      | None -> ()
    done;
    Format.printf "portmap:@\n%a@." Pv_memory.Portmap.pp
      compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap
  end

let probe () =
  (* Gen -> fork -> {long path: 3 adds} {short path} -> binop -> sink *)
  let open Pv_dataflow in
  let b = Graph.create () in
  let n = 500 in
  let gen =
    Graph.add b
      (Types.Gen
         {
           Types.gen_arity = 1;
           gen_next = (fun s -> if s < n then [| s |] else [||]);
           gen_group = (fun _ -> 0);
         })
  in
  let fork = Graph.add b (Types.Fork 2) in
  Graph.connect b (gen, 0) (fork, 0);
  let rec chain src k =
    if k = 0 then src
    else begin
      let u = Graph.add b (Types.Unop Types.Neg) in
      Graph.connect b src (u, 0);
      chain (u, 0) (k - 1)
    end
  in
  let long = chain (fork, 0) 3 in
  let short = (fork, 1) in
  let bin = Graph.add b (Types.Binop Types.Add) in
  Graph.connect b long (bin, 0);
  Graph.connect b short (bin, 1);
  let sink = Graph.add b Types.Sink in
  Graph.connect b (bin, 0) (sink, 0);
  let g0 = Graph.finalize b in
  let mem = Array.make 4 0 in
  List.iter
    (fun (name, g) ->
      let outcome, _ = Sim.run g (Memif.direct ~latency:1 mem) in
      Printf.printf "%s: %s (n=%d)\n" name
        (Format.asprintf "%a" Sim.pp_outcome outcome)
        n)
    [ ("unbalanced", g0); ("balanced", Pv_frontend.Balance.apply g0) ]

let probe2 () =
  let open Pv_kernels.Ast in
  let k =
    {
      name = "copy";
      arrays = [ ("a", 200); ("b", 200) ];
      params = [];
      body =
        [ for_ "i" (i 0) (i 200) [ store "b" (v "i") (idx "a" (v "i") + i 1) ] ];
    }
  in
  (match Pv_core.Pipeline.check k (Pv_core.Pipeline.prevv 16) with
  | Ok r ->
      Printf.printf "copy prevv16: %d cycles / 200 instances\n" r.Pv_core.Pipeline.cycles
  | Error e -> print_endline e);
  let k2 =
    {
      name = "acc";
      arrays = [ ("a", 200); ("b", 200) ];
      params = [];
      body =
        [
          for_ "i" (i 0) (i 200)
            [ store "b" (v "i" % i 8) (idx "b" (v "i" % i 8) + idx "a" (v "i")) ];
        ];
    }
  in
  match Pv_core.Pipeline.check k2 (Pv_core.Pipeline.prevv 16) with
  | Ok r ->
      Printf.printf "acc prevv16: %d cycles / 200 instances  %s\n" r.Pv_core.Pipeline.cycles
        (Format.asprintf "%a" Pv_dataflow.Memif.pp_stats r.Pv_core.Pipeline.mem_stats)
  | Error e -> print_endline e

let probe3 () =
  let k = Pv_kernels.Defs.by_name (try Sys.argv.(2) with _ -> "polyn_mult") in
  let dis =
    match (try Sys.argv.(3) with _ -> "v16") with
    | "lsq" -> Pv_core.Pipeline.fast_lsq
    | "v64" -> Pv_core.Pipeline.prevv 64
    | _ -> Pv_core.Pipeline.prevv 16
  in
  let compiled = Pv_core.Pipeline.compile k in
  let g = compiled.Pv_core.Pipeline.graph in
  let init = Pv_kernels.Workload.default_init k in
  let mem = Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout k ~init in
  let backend = Pv_core.Pipeline.backend_of compiled mem dis in
  let t = Pv_dataflow.Sim.create g backend in
  let blocked = Array.make (Pv_dataflow.Graph.n_chans g) 0 in
  while not (Pv_dataflow.Sim.finished t) && (Pv_dataflow.Sim.cycle t) < 5000 do
    Pv_dataflow.Sim.step t;
    for cid = 0 to Array.length blocked - 1 do
      if Pv_dataflow.Sim.chan_occupied t cid then
        blocked.(cid) <- blocked.(cid) + 1
    done
  done;
  Printf.printf "cycles=%d\n" (Pv_dataflow.Sim.cycle t);
  let items = ref [] in
  Array.iteri (fun cid n -> items := (n, cid) :: !items) blocked;
  List.iter
    (fun (n, cid) ->
      if n * 10 > 8 * (Pv_dataflow.Sim.cycle t) then begin
        let c = Pv_dataflow.Graph.chan g cid in
        let src = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.src.Pv_dataflow.Graph.node in
        let dst = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.node in
        Printf.printf "chan %d held %d cycles: %s#%d -> %s#%d (slot %d)\n" cid n
          src.Pv_dataflow.Graph.label src.Pv_dataflow.Graph.nid
          dst.Pv_dataflow.Graph.label dst.Pv_dataflow.Graph.nid
          c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.slot
      end)
    (List.sort (fun a b -> compare b a) !items)

let probe4 () =
  let k =
    Pv_kernels.Ast.(
      {
        name = "copy";
        arrays = [ ("a", 200); ("b", 200) ];
        params = [];
        body =
          [ for_ "i" (i 0) (i 200) [ store "b" (v "i") (idx "a" (v "i") + i 1) ] ];
      })
  in
  let compiled = Pv_core.Pipeline.compile k in
  let g = compiled.Pv_core.Pipeline.graph in
  let init = Pv_kernels.Workload.default_init k in
  let mem = Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout k ~init in
  let backend = Pv_core.Pipeline.backend_of compiled mem (Pv_core.Pipeline.prevv 16) in
  let t = Pv_dataflow.Sim.create g backend in
  for _ = 1 to 100 do Pv_dataflow.Sim.step t done;
  (* trace interesting channels for 12 cycles *)
  let interesting = ref [] in
  Pv_dataflow.Graph.iter_chans
    (fun c ->
      let dst = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.node in
      let src = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.src.Pv_dataflow.Graph.node in
      let is_mem n =
        match n.Pv_dataflow.Graph.kind with
        | Pv_dataflow.Types.Load _ | Pv_dataflow.Types.Store _ -> true
        | _ -> false
      in
      if is_mem dst || is_mem src then interesting := c.Pv_dataflow.Graph.cid :: !interesting)
    g;
  let show () =
    Printf.printf "c%-4d " (Pv_dataflow.Sim.cycle t);
    List.iter
      (fun cid ->
        let c = Pv_dataflow.Graph.chan g cid in
        let src = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.src.Pv_dataflow.Graph.node in
        let dst = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.node in
        match Pv_dataflow.Sim.chan_token t cid with
        | Some tk ->
            Printf.printf "[%s>%s s%d] " src.Pv_dataflow.Graph.label
              dst.Pv_dataflow.Graph.label (Pv_dataflow.Types.Token.seq (fst tk))
        | None ->
            Printf.printf "[%s>%s --] " src.Pv_dataflow.Graph.label
              dst.Pv_dataflow.Graph.label)
      (List.rev !interesting);
    print_newline ()
  in
  for _ = 1 to 12 do
    show ();
    Pv_dataflow.Sim.step t
  done

let probe5 () =
  let k =
    Pv_kernels.Ast.(
      {
        name = "copy";
        arrays = [ ("a", 200); ("b", 200) ];
        params = [];
        body =
          [ for_ "i" (i 0) (i 200) [ store "b" (v "i") (idx "a" (v "i") + i 1) ] ];
      })
  in
  let compiled = Pv_core.Pipeline.compile k in
  let g = compiled.Pv_core.Pipeline.graph in
  let init = Pv_kernels.Workload.default_init k in
  let mem = Pv_memory.Layout.initial_memory compiled.Pv_core.Pipeline.layout k ~init in
  let backend = Pv_core.Pipeline.backend_of compiled mem (Pv_core.Pipeline.prevv 16) in
  let t = Pv_dataflow.Sim.create g backend in
  for _ = 1 to 99 do Pv_dataflow.Sim.step t done;
  for _ = 1 to 4 do
    Printf.printf "=== cycle %d\n" (Pv_dataflow.Sim.cycle t);
    Pv_dataflow.Graph.iter_chans
      (fun c ->
        let cid = c.Pv_dataflow.Graph.cid in
        let src = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.src.Pv_dataflow.Graph.node in
        let dst = Pv_dataflow.Graph.node g c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.node in
        Printf.printf "  c%-3d %12s#%-2d -> %12s#%-2d.%d : %s\n" cid
          src.Pv_dataflow.Graph.label src.Pv_dataflow.Graph.nid
          dst.Pv_dataflow.Graph.label dst.Pv_dataflow.Graph.nid
          c.Pv_dataflow.Graph.dst.Pv_dataflow.Graph.slot
          (match Pv_dataflow.Sim.chan_token t cid with
          | Some tk ->
              Printf.sprintf "s%d v=%d"
                (Pv_dataflow.Types.Token.seq (fst tk))
                (Pv_dataflow.Types.Token.value tk)
          | None -> "--");
        ())
      g;
    (* buffer states *)
    for nid = 0 to Pv_dataflow.Graph.n_nodes g - 1 do
      match Pv_dataflow.Sim.buf_occupancy t nid with
      | Some (len, cap) ->
          Printf.printf "  buf #%-2d (%s) %d/%d\n" nid
            (Pv_dataflow.Graph.node g nid).Pv_dataflow.Graph.label len cap
      | None -> ()
    done;
    Pv_dataflow.Sim.step t
  done

let probe6 () =
  let k = Pv_kernels.Defs.polyn_mult () in
  let variants =
    [
      ("default", Pv_frontend.Build.default_options, Pv_dataflow.Sim.default_config);
      ( "mul0",
        Pv_frontend.Build.default_options,
        {
          Pv_dataflow.Sim.default_config with
          Pv_dataflow.Sim.op_latency = (fun _ -> 0);
        } );
      ( "fifo8",
        { Pv_frontend.Build.default_options with Pv_frontend.Build.fifo_slots = 8 },
        Pv_dataflow.Sim.default_config );
      ( "nobalance",
        { Pv_frontend.Build.default_options with Pv_frontend.Build.balance = false },
        Pv_dataflow.Sim.default_config );
    ]
  in
  List.iter
    (fun (name, opts, cfg) ->
      let compiled = Pv_core.Pipeline.compile ~options:opts k in
      let r =
        Pv_core.Pipeline.simulate ~sim_cfg:cfg compiled (Pv_core.Pipeline.prevv 64)
      in
      Printf.printf "%-10s %s cycles=%d\n" name
        (Format.asprintf "%a" Pv_dataflow.Sim.pp_outcome r.Pv_core.Pipeline.outcome)
        r.Pv_core.Pipeline.cycles)
    variants

let calib () =
  let kernels = Pv_kernels.Defs.paper_benchmarks () in
  let lat mul div : Pv_dataflow.Types.binop -> int = function
    | Pv_dataflow.Types.Mul -> mul
    | Pv_dataflow.Types.Div | Pv_dataflow.Types.Rem -> div
    | _ -> 0
  in
  List.iter
    (fun (mul, div) ->
      List.iter
        (fun delay ->
          Printf.printf "== mul=%d div=%d plain_alloc_delay=%d\n" mul div delay;
          List.iter
            (fun k ->
              let cfgs =
                [
                  ("p15", Pv_core.Pipeline.Plain_lsq { Pv_lsq.Lsq.plain with Pv_lsq.Lsq.alloc_delay = delay });
                  ("p8", Pv_core.Pipeline.fast_lsq);
                  ("v16", Pv_core.Pipeline.prevv 16);
                  ("v64", Pv_core.Pipeline.prevv 64);
                ]
              in
              Printf.printf "  %-12s" k.Pv_kernels.Ast.name;
              List.iter
                (fun (n, dis) ->
                  let sim_cfg =
                    { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.op_latency = lat mul div }
                  in
                  match Pv_core.Pipeline.check ~sim_cfg k dis with
                  | Ok r -> Printf.printf " %s=%-6d" n r.Pv_core.Pipeline.cycles
                  | Error _ -> Printf.printf " %s=FAIL  " n)
                cfgs;
              print_newline ())
            kernels)
        [ 8; 12 ])
    [ (3, 8); (2, 4) ]

let alloc_probe () =
  List.iter
    (fun d ->
      let cfg =
        { Pv_lsq.Lsq.plain with Pv_lsq.Lsq.alloc_delay = d; lq_depth = 64; sq_depth = 64 }
      in
      match
        Pv_core.Pipeline.check (Pv_kernels.Defs.two_mm ())
          (Pv_core.Pipeline.Plain_lsq cfg)
      with
      | Ok r ->
          Printf.printf "alloc_delay=%-3d cycles=%d %s\n" d r.Pv_core.Pipeline.cycles
            (Format.asprintf "%a" Pv_dataflow.Memif.pp_stats r.Pv_core.Pipeline.mem_stats)
      | Error e -> Printf.printf "alloc_delay=%d FAIL %s\n" d e)
    [ 0 ]

let lsq_sweep () =
  List.iter
    (fun k ->
      Printf.printf "%s:\n" k.Pv_kernels.Ast.name;
      List.iter
        (fun (name, depth, delay) ->
          let cfg =
            {
              Pv_lsq.Lsq.plain with
              Pv_lsq.Lsq.lq_depth = depth;
              sq_depth = depth;
              alloc_delay = delay;
            }
          in
          match Pv_core.Pipeline.check k (Pv_core.Pipeline.Plain_lsq cfg) with
          | Ok r -> Printf.printf "  %-14s cycles=%d\n" name r.Pv_core.Pipeline.cycles
          | Error e -> Printf.printf "  %-14s FAIL %s\n" name e)
        [
          ("delay0", 32, 0);
          ("delay20", 32, 20);
          ("delay24", 32, 24);
          ("delay28", 32, 28);
          ("delay32", 32, 32);
          ("delay40", 32, 40);
        ])
    [
      Pv_kernels.Defs.polyn_mult ();
      Pv_kernels.Defs.two_mm ();
      Pv_kernels.Defs.three_mm ();
      Pv_kernels.Defs.gaussian ();
      Pv_kernels.Defs.triangular ();
    ]

let area () =
  List.iter
    (fun k ->
      let compiled = Pv_core.Pipeline.compile k in
      let g = compiled.Pv_core.Pipeline.graph in
      let pm = compiled.Pv_core.Pipeline.info.Pv_frontend.Depend.portmap in
      Printf.printf "%-12s" k.Pv_kernels.Ast.name;
      List.iter
        (fun (name, dis) ->
          let nl = Pv_netlist.Elaborate.circuit g pm dis in
          let t = Pv_netlist.Primitive.totals nl in
          Printf.printf "  %s: L=%-6d F=%-5d" name t.Pv_netlist.Primitive.luts
            t.Pv_netlist.Primitive.ffs)
        [
          ("p15", Pv_netlist.Elaborate.D_plain_lsq 32);
          ("p8", Pv_netlist.Elaborate.D_fast_lsq 32);
          ("v16", Pv_netlist.Elaborate.D_prevv 16);
          ("v64", Pv_netlist.Elaborate.D_prevv 64);
        ];
      let dp, q =
        Pv_netlist.Elaborate.breakdown
          (Pv_netlist.Elaborate.circuit g pm (Pv_netlist.Elaborate.D_plain_lsq 32))
      in
      Printf.printf "  lsq_share=%.1f%%\n"
        (100.0
        *. float_of_int q.Pv_netlist.Primitive.luts
        /. float_of_int (q.Pv_netlist.Primitive.luts + dp.Pv_netlist.Primitive.luts)))
    (Pv_kernels.Defs.paper_benchmarks ())

let () =
  match Sys.argv.(1) with
  | "area" -> area ()
  | "lsqsweep" -> lsq_sweep ()
  | "lsqsnap" ->
      snapshot_lsq (Pv_kernels.Defs.two_mm ()) Pv_lsq.Lsq.fast
        (int_of_string Sys.argv.(2))
  | "alloc" -> alloc_probe ()
  | "calib" -> calib ()
  | "snap" ->
      snapshot_prevv (Pv_kernels.Defs.gaussian ())
        (Pv_prevv.Backend.default ~depth_q:16)
        (int_of_string Sys.argv.(2))
  | "probe6" -> probe6 ()
  | "probe5" -> probe5 ()
  | "probe4" -> probe4 ()
  | "probe3" -> probe3 ()
  | "probe2" -> probe2 ()
  | "probe" -> probe ()
  | "ii" ->
      analyse_ii (Pv_kernels.Defs.polyn_mult ()) (Pv_core.Pipeline.prevv 16);
      analyse_ii (Pv_kernels.Defs.two_mm ()) (Pv_core.Pipeline.prevv 16)
  | "dl" -> deadlock_dump (Pv_kernels.Defs.gaussian ()) Pv_core.Pipeline.plain_lsq
  | "dlq" -> deadlock_dump_lsq (Pv_kernels.Defs.gaussian ()) Pv_lsq.Lsq.plain
  | "dlp" ->
      deadlock_dump_prevv (Pv_kernels.Defs.histogram ())
        (Pv_prevv.Backend.default ~depth_q:16)
  | "dlg" ->
      deadlock_dump_prevv (Pv_kernels.Defs.gaussian ())
        (Pv_prevv.Backend.default ~depth_q:64)
  | _ -> prerr_endline "usage: debug {ii|dl}"
