(* prevv — command-line front end to the PreVV reproduction.

   Subcommands:
     list                      kernels available
     backends                  registered disambiguation backends
     show KERNEL               print a kernel and its dependence analysis
     run KERNEL [-b BACKEND]   simulate and verify
     bounds [KERNEL...]        differential harness: agreement + bound chain
     trace KERNEL [-o FILE]    simulate recording a Chrome trace (Perfetto)
     report KERNEL             area/timing across all schemes
     sweep [KERNEL...] [-j N]  domain-parallel kernel x scheme grid
     emit KERNEL [-b BACKEND]  write the structural netlist
     dot KERNEL                write the dataflow graph (Graphviz) *)

open Cmdliner
open Pv_core

let kernel_conv =
  (* a bundled kernel name, or a path to a kernel source file *)
  let parse s =
    match Pv_kernels.Defs.by_name s with
    | k -> Ok k
    | exception Invalid_argument _ ->
        if Sys.file_exists s then
          match Pv_kernels.Parse.from_file s with
          | Ok k -> Ok k
          | Error e -> Error (`Msg (Format.asprintf "%a" Pv_kernels.Parse.pp_error e))
        else
          Error
            (`Msg
               (Printf.sprintf
                  "%S is neither a bundled kernel (see `prevv list') nor a file"
                  s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf k.Pv_kernels.Ast.name)

let kernel_arg =
  let doc = "Kernel name (see `prevv list')." in
  Arg.(required & pos 0 (some kernel_conv) None & info [] ~docv:"KERNEL" ~doc)

(* one parser for backend names, shared with bench/main.ml: the registry *)
let backend_conv =
  Arg.conv
    ( (fun s ->
        match Scheme.of_string s with
        | Ok d -> Ok d
        | Error e -> Error (`Msg e)),
      fun ppf d -> Format.pp_print_string ppf (Scheme.to_string d) )

let backend_arg =
  let doc =
    "Disambiguation backend, by registry name (see `prevv backends'): \
     $(b,dynamatic), $(b,fast-lsq), $(b,prevv<DEPTH>), $(b,oracle), \
     $(b,serial)."
  in
  Arg.(
    value
    & opt backend_conv (Pipeline.prevv 16)
    & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc)

let cse_arg =
  Arg.(value & flag & info [ "cse" ] ~doc:"Deduplicate repeated loads per leaf.")

let fold_arg =
  Arg.(value & flag & info [ "fold" ] ~doc:"Constant-fold the kernel first.")

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun k ->
        let info = Pv_frontend.Depend.analyse k in
        Printf.printf "%-18s %d leaf stmt(s), %d port(s), %d ambiguous array(s)\n"
          k.Pv_kernels.Ast.name
          (List.length info.Pv_frontend.Depend.leaves)
          (Array.length info.Pv_frontend.Depend.portmap.Pv_memory.Portmap.ports)
          info.Pv_frontend.Depend.portmap.Pv_memory.Portmap.n_instances)
      (Pv_kernels.Defs.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled kernels.")
    Term.(const run $ const ())

(* --- backends -------------------------------------------------------------- *)

let backends_cmd =
  let md_arg =
    Arg.(
      value & flag
      & info [ "md" ]
          ~doc:"Emit a Markdown table (the README's backend table).")
  in
  let run md =
    let schemes = Scheme.all () in
    if md then begin
      print_endline "| backend | description |";
      print_endline "|---|---|";
      List.iter
        (fun (module M : Scheme.S) ->
          Printf.printf "| `%s` | %s |\n" M.name M.description)
        schemes
    end
    else begin
      List.iter
        (fun (module M : Scheme.S) ->
          Printf.printf "%-10s %s\n" M.name M.description)
        schemes;
      Printf.printf
        "\nfamilies: %s\n"
        (String.concat ", "
           (List.map (fun f -> f.Scheme.f_name) (Scheme.families ())))
    end
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:
         "List the registered disambiguation backends (the names accepted \
          by $(b,--backend)).")
    Term.(const run $ md_arg)

(* --- bounds ----------------------------------------------------------------- *)

let bounds_cmd =
  let kernels_arg =
    let doc =
      "Kernels to check (default: the paper's five benchmarks)."
    in
    Arg.(value & pos_all kernel_conv [] & info [] ~docv:"KERNEL" ~doc)
  in
  let run kernels =
    let kernels =
      match kernels with
      | [] -> Pv_kernels.Defs.paper_benchmarks ()
      | ks -> ks
    in
    let reports = List.map (fun k -> Differential.run k) kernels in
    List.iter (fun r -> Format.printf "%a@." Differential.pp r) reports;
    let bad = List.filter (fun r -> not (Differential.ok r)) reports in
    if bad = [] then begin
      Format.printf
        "bound chain oracle <= prevv <= dynamatic <= serial holds on %d \
         kernel(s)@."
        (List.length reports);
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "differential harness failed on: %s"
            (String.concat ", "
               (List.map (fun r -> r.Differential.kernel) bad)) )
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:
         "Differential harness: run every registered backend on each \
          kernel, require agreement on outcome and final memory, and check \
          the cycle bound chain oracle <= prevv <= dynamatic <= serial.  \
          Non-zero exit on any violation.")
    Term.(ret (const run $ kernels_arg))

(* --- show ----------------------------------------------------------------- *)

let show_cmd =
  let run kernel =
    Format.printf "%a@.@." Pv_kernels.Ast.pp_kernel kernel;
    let info = Pv_frontend.Depend.analyse kernel in
    Format.printf "%a@." Pv_memory.Portmap.pp info.Pv_frontend.Depend.portmap;
    Format.printf "ambiguous pairs before dimension reduction (Def. 1): %d@."
      (Pv_frontend.Depend.naive_pair_count info)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel and its dependence analysis.")
    Term.(const run $ kernel_arg)

(* --- run ------------------------------------------------------------------ *)

let inject_arg =
  let plan_conv =
    Arg.conv
      ( (fun s ->
          match Pv_dataflow.Fault.parse s with
          | Ok p -> Ok p
          | Error e -> Error (`Msg e)),
        Pv_dataflow.Fault.pp_plan )
  in
  let doc =
    "Fault-injection plan: comma-separated CYCLE:KIND:ARGS events, e.g. \
     $(b,40:drop-replay:c3,100:stall:c7:64,200:squash:i5).  Kinds: drop, \
     drop-replay, stall, flip, flip-replay, squash, pqflip, pqdrop.  The \
     *-replay kinds (and squash, and pqflip with detect) model detected \
     faults and must still verify; silent kinds may end in a diagnosed \
     deadlock."
  in
  Arg.(value & opt (some plan_conv) None & info [ "inject" ] ~docv:"PLAN" ~doc)

let fault_seed_arg =
  let doc =
    "Inject a random plan of detected (recoverable) faults derived \
     deterministically from this seed."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let engine_arg =
  let doc =
    "Simulator engine: $(b,event) (activity-driven wake set, the default) \
     or $(b,scan) (evaluate every node every cycle).  The engines are \
     cycle-equivalent; scan is the reference implementation."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("event", Pv_dataflow.Sim.Event); ("scan", Pv_dataflow.Sim.Scan) ])
        Pv_dataflow.Sim.default_config.Pv_dataflow.Sim.engine
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the run's metric snapshot (counters, gauges, histograms) \
           as a JSON object on stdout.")

(* the explicit plan plus, when seeded, a deterministic random recoverable
   plan sized to the kernel's instance count *)
let fault_plan compiled inject fault_seed =
  Option.value ~default:[] inject
  @
  match fault_seed with
  | None -> []
  | Some seed ->
      let instances = Pv_frontend.Trace.length compiled.Pipeline.trace in
      Pv_dataflow.Fault.random_recoverable ~seed
        ~n_chans:(Pv_dataflow.Graph.n_chans compiled.Pipeline.graph)
        ~max_seq:instances
        ~horizon:(100 + (4 * instances))
        ()

let print_metrics m =
  print_endline (Pv_obs.Json.to_string (Pv_obs.Metrics.to_json m))

let run_cmd =
  let run kernel dis cse fold inject fault_seed engine metrics =
    let kernel =
      if fold then Pv_frontend.Optimize.constant_fold kernel else kernel
    in
    let options = { Pv_frontend.Build.default_options with Pv_frontend.Build.cse } in
    let m = if metrics then Some (Pv_obs.Metrics.create ()) else None in
    match
      (let compiled = Pipeline.compile ~options kernel in
       let faults = fault_plan compiled inject fault_seed in
       if faults <> [] then
         Format.printf "@[<hov 2>injecting: %a@]@." Pv_dataflow.Fault.pp_plan
           faults;
       let sim_cfg =
         { Pv_dataflow.Sim.default_config with
           Pv_dataflow.Sim.faults;
           Pv_dataflow.Sim.engine }
       in
       let result = Pipeline.simulate ~sim_cfg ?metrics:m compiled dis in
       match result.Pipeline.outcome with
       | Pv_dataflow.Sim.Finished _ -> (
           match Pipeline.verify compiled result with
           | [] -> Ok result
           | l ->
               Error
                 (Printf.sprintf "%d memory mismatches vs the interpreter"
                    (List.length l)))
       | o ->
           Error
             (Format.asprintf "%a@\n%a" Pv_dataflow.Sim.pp_outcome o
                (Format.pp_print_option Pv_dataflow.Sim.pp_post_mortem)
                (Pipeline.post_mortem result)))
    with
    | Ok r ->
        Format.printf "%s / %s: %a@." kernel.Pv_kernels.Ast.name
          (Pipeline.name_of dis) Pv_dataflow.Sim.pp_outcome r.Pipeline.outcome;
        Format.printf "memory system: %a@." Pv_dataflow.Memif.pp_stats
          r.Pipeline.mem_stats;
        Format.printf "VERIFIED against the reference interpreter@.";
        Option.iter print_metrics m;
        `Ok ()
    | Error e -> `Error (false, e)
    | exception Invalid_argument m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate a kernel and verify the result, optionally under fault \
          injection.")
    Term.(
      ret
        (const run $ kernel_arg $ backend_arg $ cse_arg $ fold_arg
        $ inject_arg $ fault_seed_arg $ engine_arg $ metrics_arg))

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let output_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file (Chrome trace-event JSON).")
  in
  let max_cycles_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cycles" ] ~docv:"N" ~doc:"Simulation cycle budget.")
  in
  let run kernel dis engine inject fault_seed max_cycles out metrics =
    let compiled = Pipeline.compile kernel in
    let faults = fault_plan compiled inject fault_seed in
    if faults <> [] then
      Format.eprintf "@[<hov 2>injecting: %a@]@." Pv_dataflow.Fault.pp_plan
        faults;
    let sim_cfg =
      let d = Pv_dataflow.Sim.default_config in
      {
        d with
        Pv_dataflow.Sim.faults;
        engine;
        max_cycles =
          Option.value ~default:d.Pv_dataflow.Sim.max_cycles max_cycles;
      }
    in
    let tr = Pv_obs.Trace.create () in
    let m = Pv_obs.Metrics.create () in
    let result =
      Pipeline.simulate ~sim_cfg ~obs_trace:tr ~metrics:m compiled dis
    in
    Pv_obs.Trace.write ~process:kernel.Pv_kernels.Ast.name tr out;
    (* diagnostics on stderr so `--metrics > m.json` stays a clean document *)
    Format.eprintf "wrote %s: %d events%s — %a@." out
      (Pv_obs.Trace.event_count tr)
      (match Pv_obs.Trace.dropped tr with
      | 0 -> ""
      | n -> Printf.sprintf " (%d dropped)" n)
      Pv_dataflow.Sim.pp_outcome result.Pipeline.outcome;
    if metrics then print_metrics m
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate while recording a Chrome trace — epoch spans, squash and \
          validation instants, occupancy counter tracks.  Open the file in \
          Perfetto (ui.perfetto.dev) or chrome://tracing; timestamps are \
          cycles (1 cycle = 1 us).")
    Term.(
      const run $ kernel_arg $ backend_arg $ engine_arg
      $ inject_arg $ fault_seed_arg $ max_cycles_arg $ output_arg
      $ metrics_arg)

(* --- report --------------------------------------------------------------- *)

let report_cmd =
  let run kernel metrics =
    let points =
      List.map (fun dis -> Experiment.run kernel dis) (Experiment.paper_configs ())
    in
    Printf.printf "%-12s %8s %8s %8s %8s %10s\n" "scheme" "LUT" "FF" "CP(ns)"
      "cycles" "exec(us)";
    List.iter
      (fun (p : Experiment.point) ->
        Printf.printf "%-12s %8d %8d %8.2f %8d %10.2f%s\n" p.Experiment.config
          p.Experiment.report.Pv_resource.Report.luts
          p.Experiment.report.Pv_resource.Report.ffs
          p.Experiment.report.Pv_resource.Report.cp_ns p.Experiment.cycles
          p.Experiment.exec_us
          (if p.Experiment.verified then "" else "  NOT VERIFIED"))
      points;
    if metrics then
      print_endline
        (Pv_obs.Json.to_string
           (Pv_obs.Json.Obj
              (List.map
                 (fun (p : Experiment.point) ->
                   ( p.Experiment.config,
                     Pv_obs.Metrics.snapshot_to_json p.Experiment.metrics ))
                 points)))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Area, clock period and runtime for every scheme (one Table I/II row).")
    Term.(const run $ kernel_arg $ metrics_arg)

(* --- sweep ------------------------------------------------------------------ *)

let sweep_cmd =
  let kernels_arg =
    let doc = "Kernels to sweep (default: the paper's five benchmarks)." in
    Arg.(value & pos_all kernel_conv [] & info [] ~docv:"KERNEL" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains to fan the grid across (0 = one per available core)."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Recompute every point instead of reusing the result cache.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the points as a JSON array on stdout.")
  in
  let backends_arg =
    let doc =
      "Backends to include, by registry name (default: the paper's four \
       configurations)."
    in
    Arg.(
      value
      & opt (list backend_conv) (Experiment.paper_configs ())
      & info [ "backends" ] ~docv:"NAME,.." ~doc)
  in
  let run kernels jobs no_cache json schemes metrics =
    let kernels =
      match kernels with
      | [] -> Pv_kernels.Defs.paper_benchmarks ()
      | ks -> ks
    in
    let jobs = if jobs <= 0 then Parallel.default_jobs () else jobs in
    let cache =
      if no_cache then None
      else Some (Parallel.Cache.on_disk ~dir:(Parallel.Cache.default_dir ()) ())
    in
    let cells =
      List.concat_map (fun k -> List.map (fun d -> (k, d)) schemes) kernels
    in
    let m = if metrics then Some (Pv_obs.Metrics.create ()) else None in
    let results = Experiment.sweep ?cache ?metrics:m ~jobs cells in
    if json then (
      print_string "[\n";
      let n = List.length cells in
      List.iteri
        (fun i ((kernel, dis), result) ->
          let body =
            match result with
            | Ok p -> Experiment.point_to_json p
            | Error msg ->
                Printf.sprintf "{ \"kernel\": %S, \"config\": %S, \"error\": %S }"
                  kernel.Pv_kernels.Ast.name (Pipeline.name_of dis) msg
          in
          Printf.printf "  %s%s\n" body (if i = n - 1 then "" else ","))
        (List.combine cells results);
      print_string "]\n")
    else (
      Printf.printf "%-14s %-12s %8s %8s %8s %8s %10s\n" "kernel" "scheme"
        "LUT" "FF" "CP(ns)" "cycles" "exec(us)";
      List.iter2
        (fun (kernel, dis) result ->
          match result with
          | Ok (p : Experiment.point) ->
              Printf.printf "%-14s %-12s %8d %8d %8.2f %8d %10.2f%s\n"
                p.Experiment.kernel p.Experiment.config
                p.Experiment.report.Pv_resource.Report.luts
                p.Experiment.report.Pv_resource.Report.ffs
                p.Experiment.report.Pv_resource.Report.cp_ns
                p.Experiment.cycles p.Experiment.exec_us
                (if p.Experiment.verified then "" else "  NOT VERIFIED")
          | Error msg ->
              Printf.printf "%-14s %-12s infeasible: %s\n"
                kernel.Pv_kernels.Ast.name (Pipeline.name_of dis) msg)
        cells results);
    (* stats go to stderr so --json output stays a clean document *)
    (match cache with
    | None -> ()
    | Some cache ->
        Printf.eprintf "cache: %d hits, %d misses (%s)\n"
          (Parallel.Cache.hits cache)
          (Parallel.Cache.misses cache)
          (Parallel.Cache.default_dir ()));
    Printf.eprintf "%d points across %d worker(s) (%d effective)\n"
      (List.length cells) jobs
      (Parallel.effective_jobs jobs);
    (* aggregate metrics also to stderr, keeping --json a clean document *)
    Option.iter
      (fun m ->
        Printf.eprintf "%s\n"
          (Pv_obs.Json.to_string (Pv_obs.Metrics.to_json m)))
      m
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Evaluate a kernel x scheme grid across worker domains, reusing \
          cached results.  $(b,--metrics) prints the aggregated snapshot \
          (every point's metrics absorbed, plus runner.* telemetry) as JSON \
          on stderr.")
    Term.(
      const run $ kernels_arg $ jobs_arg $ no_cache_arg $ json_arg
      $ backends_arg $ metrics_arg)

(* --- emit ------------------------------------------------------------------ *)

let emit_cmd =
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run kernel dis output =
    let compiled = Pipeline.compile kernel in
    let nl =
      Pv_netlist.Elaborate.circuit compiled.Pipeline.graph
        compiled.Pipeline.info.Pv_frontend.Depend.portmap
        (Experiment.elaboration_of dis)
    in
    let entity =
      Printf.sprintf "%s_%s" kernel.Pv_kernels.Ast.name (Pipeline.name_of dis)
    in
    let path = match output with Some p -> p | None -> entity ^ ".vhd" in
    Pv_netlist.Emit.to_file path ~entity nl;
    let t = Pv_netlist.Primitive.totals nl in
    Format.printf "wrote %s (%a)@." path Pv_netlist.Primitive.pp_totals t
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Write the structural netlist (VHDL-flavoured).")
    Term.(const run $ kernel_arg $ backend_arg $ output_arg)

(* --- dot ------------------------------------------------------------------- *)

let dot_cmd =
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run kernel output =
    let compiled = Pipeline.compile kernel in
    let path =
      match output with Some p -> p | None -> kernel.Pv_kernels.Ast.name ^ ".dot"
    in
    Pv_dataflow.Dot.to_file path compiled.Pipeline.graph;
    Format.printf "wrote %s (%d nodes)@." path
      (Pv_dataflow.Graph.n_nodes compiled.Pipeline.graph)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Write the dataflow circuit as a Graphviz file.")
    Term.(const run $ kernel_arg $ output_arg)

(* --- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the profile as a JSON object instead of text.")
  in
  let run kernel dis engine json =
    let compiled = Pipeline.compile kernel in
    let init = Pv_kernels.Workload.default_init kernel in
    let mem =
      Pv_memory.Layout.initial_memory compiled.Pipeline.layout kernel ~init
    in
    let backend = Pipeline.backend_of compiled mem dis in
    let cfg = { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.engine } in
    let p = Pv_dataflow.Profile.run ~cfg compiled.Pipeline.graph backend in
    if json then
      print_endline (Pv_obs.Json.to_string (Pv_dataflow.Profile.to_json p))
    else begin
      Format.printf "%a" (Pv_dataflow.Profile.pp ~top:10) p;
      Format.printf "II = %.2f cycles/iteration@."
        (Pv_dataflow.Profile.initiation_interval p
           ~instances:(Pv_frontend.Trace.length compiled.Pipeline.trace))
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Simulate and report per-component utilisation and backpressure.")
    Term.(const run $ kernel_arg $ backend_arg $ engine_arg $ json_arg)

(* --- hotspots ----------------------------------------------------------------- *)

let hotspots_cmd =
  let kernels_arg =
    let doc = "Kernels to profile (default: the five paper benchmarks)." in
    Arg.(value & pos_all kernel_conv [] & info [] ~docv:"KERNEL" ~doc)
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Hot-node table size.")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write folded-stack lines for every profiled kernel to $(docv) \
             (flamegraph.pl / speedscope input).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON report object per kernel (LDJSON).")
  in
  let run kernels dis engine top folded json =
    let kernels =
      match kernels with
      | [] -> Pv_kernels.Defs.paper_benchmarks ()
      | ks -> ks
    in
    let folded_buf = Buffer.create 1024 in
    List.iter
      (fun kernel ->
        let name = kernel.Pv_kernels.Ast.name in
        let compiled = Pipeline.compile kernel in
        let prof = Pv_obs.Prof.create () in
        let sim_cfg =
          { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.engine }
        in
        let r = Pipeline.simulate ~sim_cfg ~prof compiled dis in
        (match r.Pipeline.outcome with
        | Pv_dataflow.Sim.Finished _ -> ()
        | o ->
            Format.eprintf "warning: %s/%s did not finish: %a@." name
              (Scheme.to_string dis) Pv_dataflow.Sim.pp_outcome o);
        Buffer.add_string folded_buf (Pv_obs.Prof.folded prof ~kernel:name);
        if json then
          print_endline
            (Pv_obs.Json.to_string (Pv_obs.Prof.to_json ~top prof ~kernel:name))
        else begin
          Format.printf "=== %s / %s (%d cycles) ===@." name
            (Scheme.to_string dis) r.Pipeline.cycles;
          Format.printf "%a@." (Pv_obs.Prof.pp ~top) prof
        end)
      kernels;
    match folded with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Buffer.contents folded_buf));
        Format.eprintf "wrote folded stacks to %s@." path
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "Simulate with the cycle-attribution profiler on and report where \
          the work goes: per-phase budget (circuit sweep, arbiter scan, \
          value validation, LSQ CAM, memory service), top-N hot nodes with \
          stall breakdowns, optional folded stacks for flamegraphs.")
    Term.(
      const run $ kernels_arg $ backend_arg $ engine_arg $ top_arg
      $ folded_arg $ json_arg)

(* --- vcd --------------------------------------------------------------------- *)

let vcd_cmd =
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let max_cycles_arg =
    Arg.(value & opt int 5000 & info [ "max-cycles" ] ~docv:"N")
  in
  let run kernel dis engine output max_cycles =
    let compiled = Pipeline.compile kernel in
    let init = Pv_kernels.Workload.default_init kernel in
    let mem =
      Pv_memory.Layout.initial_memory compiled.Pipeline.layout kernel ~init
    in
    let backend = Pipeline.backend_of compiled mem dis in
    let path =
      match output with Some p -> p | None -> kernel.Pv_kernels.Ast.name ^ ".vcd"
    in
    let cfg = { Pv_dataflow.Sim.default_config with Pv_dataflow.Sim.engine } in
    let outcome =
      Pv_dataflow.Vcd.record ~cfg ~max_cycles ~path compiled.Pipeline.graph
        backend
    in
    Format.printf "wrote %s (%a)@." path Pv_dataflow.Sim.pp_outcome outcome
  in
  Cmd.v
    (Cmd.info "vcd"
       ~doc:"Simulate while writing a VCD waveform (view with GTKWave).")
    Term.(
      const run $ kernel_arg $ backend_arg $ engine_arg
      $ output_arg $ max_cycles_arg)

(* --- area breakdown ----------------------------------------------------------- *)

let area_cmd =
  let depth_lvl_arg =
    Arg.(value & opt int 2 & info [ "levels" ] ~docv:"N"
           ~doc:"Hierarchy depth of the breakdown.")
  in
  let run kernel dis levels =
    let compiled = Pipeline.compile kernel in
    let nl =
      Pv_netlist.Elaborate.circuit compiled.Pipeline.graph
        compiled.Pipeline.info.Pv_frontend.Depend.portmap
        (Experiment.elaboration_of dis)
    in
    Printf.printf "%-32s %10s %10s
" "hierarchy" "LUT" "FF";
    List.iter
      (fun (k, t) ->
        if t.Pv_netlist.Primitive.luts > 0 || t.Pv_netlist.Primitive.ffs > 0 then
          Printf.printf "%-32s %10d %10d
" k t.Pv_netlist.Primitive.luts
            t.Pv_netlist.Primitive.ffs)
      (Pv_netlist.Primitive.group_totals ~depth:levels nl);
    let t = Pv_netlist.Primitive.totals nl in
    Printf.printf "%-32s %10d %10d
" "total" t.Pv_netlist.Primitive.luts
      t.Pv_netlist.Primitive.ffs
  in
  Cmd.v
    (Cmd.info "area" ~doc:"Hierarchical area breakdown of the netlist.")
    Term.(const run $ kernel_arg $ backend_arg $ depth_lvl_arg)

(* --- serve -------------------------------------------------------------------- *)

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (0 = one per core, capped; 1 = serial \
             reference).")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Pending-request bound: beyond it requests are shed with an \
             explicit $(b,overloaded) response instead of queueing.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Compute attempts per request before an error response.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt cooperative deadline; an overrun cancels the \
             simulation and retries the request.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Recompute every request instead of reusing the result cache.")
  in
  let stats_interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "stats-interval" ] ~docv:"SECONDS"
          ~doc:
            "Emit a {\"type\": \"stats\", ...} telemetry frame at least \
             $(docv) apart (checked between requests).  An {\"op\": \
             \"stats\"} input line requests one on demand regardless.")
  in
  let log_level_arg =
    let level_conv =
      Arg.conv
        ( (fun s ->
            match Pv_obs.Log.level_of_string s with
            | Some l -> Ok l
            | None -> Error (`Msg (Printf.sprintf "unknown log level %S" s))),
          fun ppf l -> Format.pp_print_string ppf (Pv_obs.Log.level_name l) )
    in
    Arg.(
      value
      & opt level_conv Pv_obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold on stderr (debug, info, warn, error): \
             sheds, worker kills, drain and the final summary as one LDJSON \
             line each.")
  in
  let run jobs queue attempts deadline no_cache stats_interval log_level
      metrics =
    let jobs = if jobs <= 0 then Parallel.default_jobs () else jobs in
    let t0 = Clock.now_ns () in
    let log =
      Pv_obs.Log.create ~level:log_level
        ~now_ms:(fun () -> Clock.elapsed_s t0 *. 1000.0)
        (fun line ->
          output_string stderr line;
          flush stderr)
    in
    let cache =
      if no_cache then None
      else
        Some
          (Parallel.Cache.on_disk ~log ~dir:(Parallel.Cache.default_dir ()) ())
    in
    let cfg =
      {
        Service.default_config with
        Service.jobs;
        Service.queue_capacity = queue;
        Service.cache;
        Service.policy =
          {
            Supervisor.default_policy with
            Supervisor.max_attempts = max 1 attempts;
            Supervisor.deadline_s = deadline;
          };
        Service.stats_interval;
        Service.log = log;
      }
    in
    (* graceful drain: the first SIGINT stops intake, every accepted
       request still gets its response line *)
    (try
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> Service.drain_now ()))
     with Invalid_argument _ -> ());
    let m = Pv_obs.Metrics.create () in
    let summary =
      Service.run ~metrics:m cfg
        ~next:(fun () -> In_channel.input_line stdin)
        ~emit:(fun line ->
          print_endline line;
          flush stdout)
    in
    Printf.eprintf "%s\n"
      (Pv_obs.Json.to_string (Service.summary_to_json summary));
    if metrics then print_metrics m;
    if summary.Service.lost > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve line-delimited JSON experiment requests from stdin: one \
          response line per request, in order.  Request: {\"id\": \"r1\", \
          \"kernel\": \"gaussian\", \"backend\": \"prevv16\"} with optional \
          engine/max_cycles/fault_seed.  SIGINT drains gracefully.")
    Term.(
      const run $ jobs_arg $ queue_arg $ attempts_arg $ deadline_arg
      $ no_cache_arg $ stats_interval_arg $ log_level_arg $ metrics_arg)

(* --- utilisation -------------------------------------------------------------- *)

let util_cmd =
  let run kernel =
    List.iter
      (fun dis ->
        let p = Experiment.run kernel dis in
        Format.printf "%-12s" p.Experiment.config;
        List.iter
          (fun dev ->
            let u = Pv_resource.Device.utilisation dev p.Experiment.report in
            Format.printf "  [%a, %d copies]" Pv_resource.Device.pp_utilisation u
              (Pv_resource.Device.copies_that_fit dev p.Experiment.report))
          Pv_resource.Device.devices;
        Format.printf "@.")
      (Experiment.paper_configs ())
  in
  Cmd.v
    (Cmd.info "util"
       ~doc:
         "Device utilisation per scheme (the edge-device argument of the           paper's introduction).")
    Term.(const run $ kernel_arg)

let () =
  let doc = "PreVV: LSQ-free memory disambiguation for dataflow circuits." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "prevv" ~version:"1.0.0" ~doc)
          [
            list_cmd; backends_cmd; show_cmd; run_cmd; bounds_cmd; trace_cmd;
            report_cmd; sweep_cmd; emit_cmd; dot_cmd; profile_cmd;
            hotspots_cmd; vcd_cmd; util_cmd; area_cmd; serve_cmd;
          ]))
