(* Tests for the front-end: dependence analysis, trace generation, circuit
   construction and throughput balancing. *)

open Pv_frontend
open Pv_kernels

let info_of k = Depend.analyse k

(* --- dependence analysis --------------------------------------------------- *)

let test_leaves_and_groups () =
  let info = info_of (Defs.two_mm ~n:4 ()) in
  Alcotest.(check int) "two leaves" 2 (List.length info.Depend.leaves);
  Alcotest.(check int) "two groups" 2 info.Depend.portmap.Pv_memory.Portmap.n_groups;
  Alcotest.(check int) "max depth 3" 3 info.Depend.max_loop_depth

let test_ambiguous_arrays () =
  let info = info_of (Defs.two_mm ~n:4 ()) in
  Alcotest.(check (list string)) "stored arrays are ambiguous" [ "tmp"; "D" ]
    (List.map fst info.Depend.ambiguous_arrays)

let test_affine_classification () =
  let info = info_of (Defs.two_mm ~n:4 ()) in
  List.iter
    (fun (a, cls) ->
      Alcotest.(check bool) (a ^ " affine") true (cls = Depend.Affine))
    info.Depend.ambiguous_arrays;
  let hist = info_of (Defs.histogram ()) in
  Alcotest.(check bool) "histogram a indirect" true
    (List.assoc "a" hist.Depend.ambiguous_arrays = Depend.Indirect)

let test_affine_of () =
  let params = [ ("N", 10) ] in
  let e_affine = Ast.((v "i" * v "N") + v "j" + i 3) in
  let e_indirect = Ast.(idx "b" (v "i")) in
  let e_bilinear = Ast.(v "i" * v "j") in
  (match Depend.affine_of ~params e_affine with
  | Some { Depend.coeffs; const } ->
      Alcotest.(check int) "const" 3 const;
      Alcotest.(check (list (pair string int))) "coeffs"
        [ ("i", 10); ("j", 1) ]
        (List.sort compare coeffs)
  | None -> Alcotest.fail "expected affine");
  Alcotest.(check bool) "indirect is not affine" true
    (Depend.affine_of ~params e_indirect = None);
  Alcotest.(check bool) "i*j is not affine" true
    (Depend.affine_of ~params e_bilinear = None)

let test_port_enumeration_order () =
  (* polyn_mult: c[i+j] += a[i]*b[j]
     index loads first (none), then value loads post-order: c, a, b, store c *)
  let info = info_of (Defs.polyn_mult ~n:4 ()) in
  let arrays =
    Array.to_list info.Depend.portmap.Pv_memory.Portmap.ports
    |> List.map (fun p -> p.Pv_memory.Portmap.array)
  in
  Alcotest.(check (list string)) "program order" [ "c"; "a"; "b"; "c" ] arrays

let test_naive_pair_count () =
  let info = info_of (Defs.gaussian ~n:6 ()) in
  (* 4 ambiguous loads x 1 store on array a *)
  Alcotest.(check int) "gaussian pairs" 4 (Depend.naive_pair_count info)

let test_conditional_ops () =
  let info = info_of (Defs.cond_update ()) in
  let conditional =
    List.concat_map
      (fun l -> List.filter (fun o -> o.Depend.op_conditional) l.Depend.ops)
      info.Depend.leaves
  in
  (* store s[y[i]] = s[y[i]] + x[i]: the index load of y, the value loads
     of y, s and x, and the store itself *)
  Alcotest.(check int) "conditional ops" 5 (List.length conditional)

(* --- trace ------------------------------------------------------------------ *)

let test_trace_length_matches_interpreter () =
  List.iter
    (fun k ->
      let info = info_of k in
      let trace = Trace.of_kernel k info in
      let init = Workload.default_init k in
      Alcotest.(check int)
        (k.Ast.name ^ " trace length")
        (Interp.count_instances k ~init)
        (Trace.length trace))
    [ Defs.polyn_mult ~n:6 (); Defs.gaussian ~n:6 (); Defs.two_mm ~n:3 () ]

let test_trace_rows () =
  let k = Defs.two_mm ~n:2 () in
  let info = info_of k in
  let t = Trace.of_kernel k info in
  (* 2 leaves x 2^3 instances *)
  Alcotest.(check int) "length" 16 (Trace.length t);
  Alcotest.(check (array int)) "first row" [| 0; 0; 0; 0 |] t.Trace.rows.(0);
  Alcotest.(check (array int)) "last row" [| 1; 1; 1; 1 |] t.Trace.rows.(15);
  let spec = Trace.gen_spec t in
  Alcotest.(check bool) "exhausted" true (spec.Pv_dataflow.Types.gen_next 16 = [||]);
  Alcotest.(check int) "group of 8" 1 (spec.Pv_dataflow.Types.gen_group 8)

let test_trace_data_dependent_bound () =
  let open Ast in
  let k =
    {
      name = "bad";
      arrays = [ ("a", 4) ];
      params = [];
      body = [ for_ "i" (i 0) (idx "a" (i 0)) [ store "a" (i 0) (i 1) ] ];
    }
  in
  let info = info_of k in
  Alcotest.(check bool) "raises Data_dependent_bound" true
    (try
       ignore (Trace.of_kernel k info);
       false
     with Trace.Data_dependent_bound _ -> true)

(* --- build ------------------------------------------------------------------ *)

let test_build_all_kernels_valid () =
  List.iter
    (fun k ->
      let compiled = Pv_core.Pipeline.compile k in
      (* Check.validate_exn runs inside Sim.create; run it directly here *)
      Pv_dataflow.Check.validate_exn compiled.Pv_core.Pipeline.graph;
      Alcotest.(check bool)
        (k.Ast.name ^ " has nodes")
        true
        (Pv_dataflow.Graph.n_nodes compiled.Pv_core.Pipeline.graph > 10))
    (Defs.all ())

let test_build_port_count_matches_analysis () =
  List.iter
    (fun k ->
      let compiled = Pv_core.Pipeline.compile k in
      let g = compiled.Pv_core.Pipeline.graph in
      let pm = compiled.Pv_core.Pipeline.info.Depend.portmap in
      let port_nodes =
        Pv_dataflow.Graph.count_nodes
          (fun n ->
            match n.Pv_dataflow.Graph.kind with
            | Pv_dataflow.Types.Load _ | Pv_dataflow.Types.Store _ -> true
            | _ -> false)
          g
      in
      Alcotest.(check int)
        (k.Ast.name ^ " ports")
        (Array.length pm.Pv_memory.Portmap.ports)
        port_nodes)
    (Defs.all ())

let test_build_strength_reduction () =
  (* i*n with constant n must become Mulc, not Mul *)
  let compiled = Pv_core.Pipeline.compile (Defs.two_mm ~n:4 ()) in
  let g = compiled.Pv_core.Pipeline.graph in
  let count op =
    Pv_dataflow.Graph.count_nodes
      (fun n -> n.Pv_dataflow.Graph.kind = Pv_dataflow.Types.Binop op)
      g
  in
  Alcotest.(check bool) "addr muls reduced" true (count Pv_dataflow.Types.Mulc > 0);
  (* the data multiply A[i][k]*B[k][j] stays a true multiplier *)
  Alcotest.(check bool) "data mul remains" true (count Pv_dataflow.Types.Mul > 0)

let test_skip_nodes_only_with_fake_tokens () =
  let count_skips options =
    let compiled = Pv_core.Pipeline.compile ~options (Defs.cond_update ()) in
    Pv_dataflow.Graph.count_nodes
      (fun n ->
        match n.Pv_dataflow.Graph.kind with
        | Pv_dataflow.Types.Skip _ -> true
        | _ -> false)
      compiled.Pv_core.Pipeline.graph
  in
  Alcotest.(check int) "with fake tokens: 2 ambiguous conditional ops" 2
    (count_skips Build.default_options);
  Alcotest.(check int) "without fake tokens: none" 0
    (count_skips { Build.default_options with Build.fake_tokens = false })

(* --- balance ----------------------------------------------------------------- *)

let test_balance_plan_covers_deficits () =
  let compiled =
    Pv_core.Pipeline.compile
      ~options:{ Build.default_options with Build.balance = false }
      (Defs.polyn_mult ~n:4 ())
  in
  let g = compiled.Pv_core.Pipeline.graph in
  let slots = Balance.plan g in
  Alcotest.(check bool) "some channels need slack" true
    (Array.exists (fun s -> s > 0) slots);
  let g' = Balance.insert_buffers g slots in
  Alcotest.(check bool) "buffers added" true
    (Pv_dataflow.Graph.n_nodes g' > Pv_dataflow.Graph.n_nodes g);
  Pv_dataflow.Check.validate_exn g'

let test_balance_improves_throughput () =
  let cycles options =
    let compiled = Pv_core.Pipeline.compile ~options (Defs.polyn_mult ~n:8 ()) in
    let r = Pv_core.Pipeline.simulate compiled (Pv_core.Pipeline.prevv 16) in
    r.Pv_core.Pipeline.cycles
  in
  let balanced = cycles Build.default_options in
  let unbalanced = cycles { Build.default_options with Build.balance = false } in
  Alcotest.(check bool)
    (Printf.sprintf "balanced %d < unbalanced %d" balanced unbalanced)
    true (balanced < unbalanced)

(* property: on randomized polyn sizes, the built circuit is structurally
   valid and its trace length matches the interpreter *)
let prop_build_valid =
  QCheck.Test.make ~count:15 ~name:"build validity over random sizes"
    QCheck.(int_range 2 20)
    (fun n ->
      let k = Defs.polyn_mult ~n () in
      let compiled = Pv_core.Pipeline.compile k in
      Pv_dataflow.Check.errors compiled.Pv_core.Pipeline.graph = []
      && Trace.length compiled.Pv_core.Pipeline.trace = n * n)

let () =
  Alcotest.run "pv_frontend"
    [
      ( "depend",
        [
          Alcotest.test_case "leaves and groups" `Quick test_leaves_and_groups;
          Alcotest.test_case "ambiguous arrays" `Quick test_ambiguous_arrays;
          Alcotest.test_case "affine classification" `Quick
            test_affine_classification;
          Alcotest.test_case "affine_of" `Quick test_affine_of;
          Alcotest.test_case "port enumeration order" `Quick
            test_port_enumeration_order;
          Alcotest.test_case "naive pair count" `Quick test_naive_pair_count;
          Alcotest.test_case "conditional ops" `Quick test_conditional_ops;
        ] );
      ( "trace",
        [
          Alcotest.test_case "length matches interpreter" `Quick
            test_trace_length_matches_interpreter;
          Alcotest.test_case "rows" `Quick test_trace_rows;
          Alcotest.test_case "data-dependent bound" `Quick
            test_trace_data_dependent_bound;
        ] );
      ( "build",
        [
          Alcotest.test_case "all kernels valid" `Quick
            test_build_all_kernels_valid;
          Alcotest.test_case "port counts" `Quick
            test_build_port_count_matches_analysis;
          Alcotest.test_case "strength reduction" `Quick
            test_build_strength_reduction;
          Alcotest.test_case "skip nodes" `Quick
            test_skip_nodes_only_with_fake_tokens;
        ] );
      ( "balance",
        [
          Alcotest.test_case "plan covers deficits" `Quick
            test_balance_plan_covers_deficits;
          Alcotest.test_case "improves throughput" `Quick
            test_balance_improves_throughput;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_build_valid ]);
    ]
