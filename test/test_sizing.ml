(* Guard and happy-path tests for the queue-depth sizing model
   (Sec. V-A, Eqs. 6-10). *)

open Pv_prevv

let flt = Alcotest.float 1e-9

(* Eq. 7 on a live queue, plus both argument guards *)
let test_wait_time () =
  Alcotest.check flt "t_token / depth" 15.0
    (Sizing.wait_time ~t_token:60.0 ~depth_q:4);
  Alcotest.check flt "depth 1 passes t_token through" 60.0
    (Sizing.wait_time ~t_token:60.0 ~depth_q:1);
  Alcotest.check_raises "zero depth rejected"
    (Invalid_argument "wait_time: depth_q must be positive") (fun () ->
      ignore (Sizing.wait_time ~t_token:60.0 ~depth_q:0));
  Alcotest.check_raises "negative depth rejected"
    (Invalid_argument "wait_time: depth_q must be positive") (fun () ->
      ignore (Sizing.wait_time ~t_token:60.0 ~depth_q:(-3)))

let test_pair_time () =
  (* Eq. 6: t_org * (2 + p_s) *)
  Alcotest.check flt "no squashes" 20.0 (Sizing.pair_time ~t_org:10.0 ~p_s:0.0);
  Alcotest.check flt "quarter squash rate" 22.5
    (Sizing.pair_time ~t_org:10.0 ~p_s:0.25)

let test_matched_depth () =
  (* Def. 2: smallest depth with t_w <= t_p, i.e. ceil (t_token / t_p) *)
  Alcotest.(check int)
    "ceil (60 / 20)" 3
    (Sizing.matched_depth ~t_org:10.0 ~p_s:0.0 ~t_token:60.0);
  Alcotest.(check int)
    "floor of 1" 1
    (Sizing.matched_depth ~t_org:10.0 ~p_s:0.0 ~t_token:5.0);
  Alcotest.check_raises "non-positive t_org rejected"
    (Invalid_argument "matched_depth: t_org must be positive") (fun () ->
      ignore (Sizing.matched_depth ~t_org:0.0 ~p_s:0.5 ~t_token:60.0));
  Alcotest.check_raises "negative t_org rejected"
    (Invalid_argument "matched_depth: t_org must be positive") (fun () ->
      ignore (Sizing.matched_depth ~t_org:(-1.0) ~p_s:0.0 ~t_token:60.0))

(* the matched depth really is the tipping point of Eq. 7 vs Eq. 6 *)
let prop_matched_depth_is_minimal =
  QCheck.Test.make ~count:300 ~name:"matched depth is the smallest viable"
    QCheck.(
      triple (float_range 0.5 20.0) (float_range 0.0 1.0)
        (float_range 0.5 200.0))
    (fun (t_org, p_s, t_token) ->
      let tp = Sizing.pair_time ~t_org ~p_s in
      let d = Sizing.matched_depth ~t_org ~p_s ~t_token in
      let ok_at depth = Sizing.wait_time ~t_token ~depth_q:depth <= tp in
      d >= 1 && ok_at d && (d = 1 || not (ok_at (d - 1))))

let () =
  Alcotest.run "pv_sizing"
    [
      ( "model",
        [
          Alcotest.test_case "wait_time" `Quick test_wait_time;
          Alcotest.test_case "pair_time" `Quick test_pair_time;
          Alcotest.test_case "matched_depth" `Quick test_matched_depth;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_matched_depth_is_minimal ]);
    ]
