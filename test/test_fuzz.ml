(* Differential fuzzing: randomly generated kernels must behave identically
   on the interpreter and on the simulated circuit under every backend,
   with and without the optimisation passes.

   Iteration counts scale with the FUZZ_ITERS environment variable (default
   1x): `FUZZ_ITERS=10 dune exec test/test_fuzz.exe` runs a 10x-deeper
   sweep, for soak testing outside the tier-1 budget. *)

open Pv_core

let iters base =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | None -> base
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> base * n
      | _ ->
          Printf.eprintf "FUZZ_ITERS=%S ignored (want a positive integer)\n" s;
          base)

let schemes = [ Pipeline.plain_lsq; Pipeline.fast_lsq; Pipeline.prevv 16; Pipeline.prevv 64 ]

let check_seed ?(options = Pv_frontend.Build.default_options) seed dis =
  let kernel = Pv_kernels.Generate.kernel seed in
  let init = Pv_kernels.Generate.init_for kernel seed in
  let compiled = Pipeline.compile ~options kernel in
  let result = Pipeline.simulate ~init compiled dis in
  match result.Pipeline.outcome with
  | Pv_dataflow.Sim.Finished _ -> (
      match Pipeline.verify ~init compiled result with
      | [] -> true
      | l ->
          QCheck.Test.fail_reportf "seed %d / %s: %d mismatches" seed
            (Pipeline.name_of dis) (List.length l))
  | o ->
      QCheck.Test.fail_reportf "seed %d / %s: %a" seed (Pipeline.name_of dis)
        Pv_dataflow.Sim.pp_outcome o

let prop_fuzz_all_backends =
  QCheck.Test.make ~count:(iters 40) ~name:"random kernels verify under every scheme"
    QCheck.(pair (int_range 0 100_000) (int_range 0 3))
    (fun (seed, which) -> check_seed seed (List.nth schemes which))

let prop_fuzz_with_cse =
  QCheck.Test.make ~count:(iters 25) ~name:"random kernels verify with CSE"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      check_seed
        ~options:{ Pv_frontend.Build.default_options with Pv_frontend.Build.cse = true }
        seed (Pipeline.prevv 16))

let prop_fuzz_folded =
  QCheck.Test.make ~count:(iters 25) ~name:"random kernels verify after folding"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let kernel =
        Pv_frontend.Optimize.constant_fold (Pv_kernels.Generate.kernel seed)
      in
      let init = Pv_kernels.Generate.init_for kernel seed in
      match Pipeline.check ~init kernel (Pipeline.prevv 64) with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

(* generated kernels are deterministic in their seed *)
let prop_generator_deterministic =
  QCheck.Test.make ~count:(iters 50) ~name:"generator is seed-deterministic"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      Pv_kernels.Generate.kernel seed = Pv_kernels.Generate.kernel seed)

(* backends agree with each other, not just with the interpreter *)
let prop_backends_agree =
  QCheck.Test.make ~count:(iters 20) ~name:"LSQ and PreVV final memories agree"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let kernel = Pv_kernels.Generate.kernel seed in
      let init = Pv_kernels.Generate.init_for kernel seed in
      let compiled = Pipeline.compile kernel in
      let run dis = (Pipeline.simulate ~init compiled dis).Pipeline.mem in
      run Pipeline.fast_lsq = run (Pipeline.prevv 16))

(* the event-driven engine is cycle-equivalent to the exhaustive scan on
   arbitrary generated kernels, under every backend, and never does more
   work (see test_sim_equiv.ml for the directed paper-kernel version) *)
let prop_engines_agree =
  QCheck.Test.make ~count:(iters 20)
    ~name:"scan and event engines are cycle-equivalent"
    QCheck.(pair (int_range 0 100_000) (int_range 0 3))
    (fun (seed, which) ->
      let kernel = Pv_kernels.Generate.kernel seed in
      let init = Pv_kernels.Generate.init_for kernel seed in
      let compiled = Pipeline.compile kernel in
      let dis = List.nth schemes which in
      let run engine =
        let sim_cfg = { Pv_dataflow.Sim.default_config with engine } in
        Pipeline.simulate ~sim_cfg ~init compiled dis
      in
      let scan = run Pv_dataflow.Sim.Scan in
      let event = run Pv_dataflow.Sim.Event in
      let sig_of r =
        match r.Pipeline.outcome with
        | Pv_dataflow.Sim.Finished { cycles } -> ("finished", cycles)
        | Pv_dataflow.Sim.Deadlock { at_cycle; _ } -> ("deadlock", at_cycle)
        | Pv_dataflow.Sim.Timeout { at_cycle; _ } -> ("timeout", at_cycle)
      in
      if
        sig_of scan = sig_of event
        && scan.Pipeline.cycles = event.Pipeline.cycles
        && scan.Pipeline.run_stats.Pv_dataflow.Sim.node_fires
           = event.Pipeline.run_stats.Pv_dataflow.Sim.node_fires
        && scan.Pipeline.mem = event.Pipeline.mem
        && event.Pipeline.run_stats.Pv_dataflow.Sim.evals
           <= scan.Pipeline.run_stats.Pv_dataflow.Sim.evals
      then true
      else
        QCheck.Test.fail_reportf
          "seed %d / %s: engines diverge (scan %s@%d, event %s@%d)" seed
          (Pipeline.name_of dis)
          (fst (sig_of scan))
          scan.Pipeline.cycles
          (fst (sig_of event))
          event.Pipeline.cycles)

(* resilience: any seed-derived plan of detected (recoverable) faults on
   any generated kernel still finishes with the interpreter's memory — the
   squash/replay machinery absorbs arbitrary transient disturbances *)
let prop_fuzz_recoverable_faults =
  QCheck.Test.make ~count:(iters 20)
    ~name:"random kernels survive random recoverable faults"
    QCheck.(pair (int_range 0 100_000) (int_range 1 1_000))
    (fun (seed, fseed) ->
      let kernel = Pv_kernels.Generate.kernel seed in
      let init = Pv_kernels.Generate.init_for kernel seed in
      let compiled = Pipeline.compile kernel in
      let fault_free = Pipeline.simulate ~init compiled (Pipeline.prevv 16) in
      match fault_free.Pipeline.outcome with
      | Pv_dataflow.Sim.Finished { cycles } -> (
          let faults =
            Pv_dataflow.Fault.random_recoverable ~n:4 ~seed:fseed
              ~n_chans:(Pv_dataflow.Graph.n_chans compiled.Pipeline.graph)
              ~max_seq:4 ~horizon:(max 20 (cycles / 2)) ()
          in
          let sim_cfg = { Pv_dataflow.Sim.default_config with faults } in
          let result =
            Pipeline.simulate ~sim_cfg ~init compiled (Pipeline.prevv 16)
          in
          match result.Pipeline.outcome with
          | Pv_dataflow.Sim.Finished _ -> (
              match Pipeline.verify ~init compiled result with
              | [] -> true
              | l ->
                  QCheck.Test.fail_reportf
                    "seed %d fault-seed %d under %s: %d mismatches" seed fseed
                    (Pv_dataflow.Fault.to_string faults)
                    (List.length l))
          | o ->
              QCheck.Test.fail_reportf "seed %d fault-seed %d under %s: %a"
                seed fseed
                (Pv_dataflow.Fault.to_string faults)
                Pv_dataflow.Sim.pp_outcome o)
      | o ->
          QCheck.Test.fail_reportf "seed %d fault-free run failed: %a" seed
            Pv_dataflow.Sim.pp_outcome o)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_all_backends;
          QCheck_alcotest.to_alcotest prop_fuzz_with_cse;
          QCheck_alcotest.to_alcotest prop_fuzz_folded;
          QCheck_alcotest.to_alcotest prop_generator_deterministic;
          QCheck_alcotest.to_alcotest prop_backends_agree;
          QCheck_alcotest.to_alcotest prop_engines_agree;
        ] );
      ( "resilience",
        [ QCheck_alcotest.to_alcotest prop_fuzz_recoverable_faults ] );
    ]
