(* Truth-table tests for the arbiter's validation rule (Eqs. 2-5) and the
   load admission gate. *)

open Pv_prevv
module PQ = Premature_queue
module PM = Pv_memory.Portmap

let queue_with entries =
  let q = PQ.create 16 in
  List.iter
    (fun (seq, pos, kind, index, value) ->
      ignore (PQ.push_exn q ~seq ~pos ~port:0 ~kind ~index ~value))
    entries;
  q

(* A store P_m arriving at the arbiter; entries are (seq,pos,kind,idx,val). *)
let violation entries ~seq ~pos ~index ~value =
  Arbiter.store_violation (queue_with entries) ~seq ~pos ~index ~value

let some = Alcotest.(option int)

(* Eq. 2-5 all satisfied: older store vs younger load, same index,
   different value -> squash at the load's iteration *)
let test_violation_hit () =
  Alcotest.check some "younger load exposed" (Some 7)
    (violation [ (7, 0, PM.OLoad, 100, 5) ] ~seq:3 ~pos:0 ~index:100 ~value:9)

(* Eq. 5 fails: same value means the premature load was right anyway *)
let test_value_match_no_violation () =
  Alcotest.check some "value validation passes" None
    (violation [ (7, 0, PM.OLoad, 100, 9) ] ~seq:3 ~pos:0 ~index:100 ~value:9)

(* Eq. 4 fails: different index *)
let test_index_mismatch () =
  Alcotest.check some "different address" None
    (violation [ (7, 0, PM.OLoad, 101, 5) ] ~seq:3 ~pos:0 ~index:100 ~value:9)

(* Eq. 3 fails: two stores never form a violation *)
let test_same_kind () =
  Alcotest.check some "store vs store" None
    (violation [ (7, 0, PM.OStore, 100, 5) ] ~seq:3 ~pos:0 ~index:100 ~value:9)

(* Eq. 2 fails: the queued load is older than the arriving store *)
let test_older_load_safe () =
  Alcotest.check some "older load untouched" None
    (violation [ (2, 0, PM.OLoad, 100, 5) ] ~seq:3 ~pos:0 ~index:100 ~value:9)

(* earliest erring iteration wins when several loads are wrong *)
let test_min_seq_err () =
  Alcotest.check some "earliest iter_err" (Some 5)
    (violation
       [ (9, 0, PM.OLoad, 100, 5); (5, 0, PM.OLoad, 100, 6); (7, 0, PM.OLoad, 100, 7) ]
       ~seq:3 ~pos:0 ~index:100 ~value:9)

(* same iteration: the ROM position is the tie-break (end of Sec. III) *)
let test_same_iteration_rom_order () =
  (* store at position 1, load at position 3 of the same iteration: the
     load should have seen the store's value -> violation *)
  Alcotest.check some "same-iter store-before-load" (Some 4)
    (violation [ (4, 3, PM.OLoad, 100, 5) ] ~seq:4 ~pos:1 ~index:100 ~value:9);
  (* accumulation order (load pos 0, store pos 1): no violation *)
  Alcotest.check some "same-iter load-before-store" None
    (violation [ (4, 0, PM.OLoad, 100, 5) ] ~seq:4 ~pos:1 ~index:100 ~value:9)

(* invalidated entries are ignored by the search *)
let test_invalid_entries_skipped () =
  let q = queue_with [ (7, 0, PM.OLoad, 100, 5) ] in
  PQ.invalidate_from q ~seq:0;
  Alcotest.check some "empty after invalidation" None
    (Arbiter.store_violation q ~seq:3 ~pos:0 ~index:100 ~value:9)

(* --- load gate -------------------------------------------------------------- *)

let gate entries ~seq ~pos ~index =
  Arbiter.load_gate (queue_with entries) ~seq ~pos ~index

let gate_t =
  Alcotest.testable
    (fun ppf -> function
      | Arbiter.Clear -> Format.pp_print_string ppf "Clear"
      | Arbiter.Wait -> Format.pp_print_string ppf "Wait"
      | Arbiter.Forward v -> Format.fprintf ppf "Forward %d" v)
    ( = )

let test_gate_clear () =
  Alcotest.check gate_t "no conflicting store" Arbiter.Clear
    (gate [ (2, 0, PM.OStore, 50, 1) ] ~seq:5 ~pos:0 ~index:100);
  Alcotest.check gate_t "younger store ignored" Arbiter.Clear
    (gate [ (9, 0, PM.OStore, 100, 1) ] ~seq:5 ~pos:0 ~index:100)

let test_gate_wait () =
  Alcotest.check gate_t "older uncommitted store" Arbiter.Wait
    (gate [ (2, 0, PM.OStore, 100, 1) ] ~seq:5 ~pos:0 ~index:100)

let test_gate_forward () =
  Alcotest.check gate_t "same-iteration earlier store forwards"
    (Arbiter.Forward 77)
    (gate [ (5, 0, PM.OStore, 100, 77) ] ~seq:5 ~pos:2 ~index:100)

let test_gate_youngest_older_wins () =
  (* two older stores to the same address: the youngest decides *)
  Alcotest.check gate_t "youngest older store decides" Arbiter.Wait
    (gate
       [ (5, 0, PM.OStore, 100, 1); (2, 0, PM.OStore, 100, 2) ]
       ~seq:7 ~pos:0 ~index:100);
  Alcotest.check gate_t "same-seq store closest" (Arbiter.Forward 9)
    (gate
       [ (2, 0, PM.OStore, 100, 1); (7, 0, PM.OStore, 100, 9) ]
       ~seq:7 ~pos:3 ~index:100)

(* regression: two same-index stores in ONE iteration — forwarding must
   take the youngest store still older than the load in ROM order (the
   last write the load may observe), not the oldest, and not whichever
   happened to arrive in the queue first *)
let test_gate_two_stores_same_iteration () =
  Alcotest.check gate_t "latest same-iter store forwards" (Arbiter.Forward 8)
    (gate
       [ (5, 0, PM.OStore, 100, 3); (5, 2, PM.OStore, 100, 8) ]
       ~seq:5 ~pos:4 ~index:100);
  (* premature arrivals are unordered: swapping queue order must not
     change the winner *)
  Alcotest.check gate_t "arrival order is irrelevant" (Arbiter.Forward 8)
    (gate
       [ (5, 2, PM.OStore, 100, 8); (5, 0, PM.OStore, 100, 3) ]
       ~seq:5 ~pos:4 ~index:100);
  (* a same-iteration store AFTER the load in ROM order does not qualify *)
  Alcotest.check gate_t "later store ignored" (Arbiter.Forward 3)
    (gate
       [ (5, 0, PM.OStore, 100, 3); (5, 6, PM.OStore, 100, 8) ]
       ~seq:5 ~pos:4 ~index:100)

(* property: the gate agrees with a reference "youngest qualifying store"
   over arbitrary queues (permutation-insensitive) *)
let prop_gate_youngest =
  let entry_gen =
    QCheck.(
      quad (int_range 0 4) (int_range 0 3) bool (pair (int_range 0 2) (int_range 0 99)))
  in
  QCheck.Test.make ~count:500 ~name:"load gate takes the youngest older store"
    QCheck.(pair (list_of_size Gen.(int_range 0 8) entry_gen)
              (pair (int_range 0 4) (int_range 0 3)))
    (fun (raw, (seq, pos)) ->
      (* one record per (seq, pos): the backend never holds two records of
         one ROM slot, and a duplicate key would make the youngest-store
         tie-break depend on arrival order *)
      let seen = Hashtbl.create 16 in
      let entries =
        List.filter_map
          (fun (s, p, is_store, (idx, v)) ->
            if Hashtbl.mem seen (s, p) then None
            else begin
              Hashtbl.add seen (s, p) ();
              Some (s, p, (if is_store then PM.OStore else PM.OLoad), idx, v)
            end)
          raw
      in
      let index = 1 in
      let got = gate entries ~seq ~pos ~index in
      let qualifying =
        List.filter
          (fun (s, p, k, i, _) ->
            k = PM.OStore && i = index
            && (s < seq || (s = seq && p < pos)))
          entries
      in
      let expect =
        match qualifying with
        | [] -> Arbiter.Clear
        | l ->
            let bs, _, _, _, bv =
              List.fold_left
                (fun ((bs, bp, _, _, _) as b) ((s, p, _, _, _) as e) ->
                  if s > bs || (s = bs && p > bp) then e else b)
                (List.hd l) (List.tl l)
            in
            if bs = seq then Arbiter.Forward bv else Arbiter.Wait
      in
      got = expect)

(* property: a violation requires all four conditions at once *)
let prop_violation_iff_conditions =
  QCheck.Test.make ~count:500 ~name:"Eqs. 2-5 are necessary and sufficient"
    QCheck.(
      tup4 (pair (int_range 0 9) (int_range 0 3))
        (pair (int_range 0 9) (int_range 0 3))
        (pair (int_range 0 3) (int_range 0 3))
        (pair bool (pair (int_range 0 3) (int_range 0 3))))
    (fun ((m_seq, m_pos), (n_seq, n_pos), (m_idx, n_idx), (n_is_load, (m_val, n_val))) ->
      let kind = if n_is_load then PM.OLoad else PM.OStore in
      let got =
        violation
          [ (n_seq, n_pos, kind, n_idx, n_val) ]
          ~seq:m_seq ~pos:m_pos ~index:m_idx ~value:m_val
      in
      let older = m_seq < n_seq || (m_seq = n_seq && m_pos < n_pos) in
      let expect =
        if n_is_load && older && m_idx = n_idx && m_val <> n_val then Some n_seq
        else None
      in
      got = expect)

(* property: the view-scanning fast paths agree with the whole-queue
   reference folds on random queue contents, including interleaved
   retirements (which exercise the kind views through swap-removal and
   compaction).  Entries are deduplicated by (seq, pos): the backend never
   holds two records of one ROM slot, and forwarding ties between
   duplicate keys would otherwise be resolved by arrival order in one
   implementation and view order in the other. *)
let prop_fast_matches_ref =
  let entry_gen =
    QCheck.(
      pair
        (quad (int_range 0 4) (int_range 0 3) bool
           (pair (int_range 0 2) (int_range 0 99)))
        bool)
  in
  QCheck.Test.make ~count:1000 ~name:"view scans = whole-queue reference folds"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 12) entry_gen)
        (tup4 (int_range 0 5) (int_range 0 3) (int_range 0 2) (int_range 0 99)))
    (fun (raw, (seq, pos, index, value)) ->
      let q = PQ.create 16 in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun ((s, p, is_store, (idx, v)), retire) ->
          if not (Hashtbl.mem seen (s, p)) then begin
            Hashtbl.add seen (s, p) ();
            ignore
              (PQ.record q ~seq:s ~pos:p ~port:0
                 ~kind:(if is_store then PM.OStore else PM.OLoad)
                 ~index:idx ~value:v);
            if retire then ignore (PQ.retire_eq q ~seq:s ~on_port:ignore)
          end)
        raw;
      Arbiter.store_violation q ~seq ~pos ~index ~value
      = Arbiter.store_violation_ref q ~seq ~pos ~index ~value
      && Arbiter.load_gate q ~seq ~pos ~index
         = Arbiter.load_gate_ref q ~seq ~pos ~index)

(* property: watermark-gated retirement sweeps leave the queue in exactly
   the state per-cycle full rescans produce, at every step of a random
   schedule of load admissions, frontier advances and squash rewinds.
   [qi] sweeps only when {!Arbiter.wm_pending} fires; [qr] rescans every
   step.  Any missing wm_note_load/wm_rewind hook (a stale watermark)
   shows up as a load left unretired in [qi]. *)
let prop_watermark_equiv =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (5, map2 (fun d i -> `Load (d, i)) (int_range 0 6) (int_range 0 3));
          (3, map (fun d -> `Advance d) (int_range 0 2));
          (1, map (fun d -> `Squash d) (int_range 0 3));
        ])
  in
  QCheck.Test.make ~count:500
    ~name:"incremental watermark sweeps = per-cycle rescans"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) op_gen))
    (fun ops ->
      let qi = PQ.create 64 and qr = PQ.create 64 in
      let wm = Arbiter.fresh_watermark () in
      let saf = ref 0 in
      let contents q =
        List.map
          (fun (e : PQ.entry) -> (e.PQ.e_seq, e.PQ.e_pos, e.PQ.e_index, e.PQ.e_value))
          (PQ.to_list q)
      in
      List.for_all
        (fun op ->
          (match op with
          | `Load (d, idx) ->
              (* admissions land anywhere from behind the frontier (a late
                 load, immediately retirable) to well ahead of it *)
              let seq = max 0 (!saf - 2 + d) in
              if
                PQ.record qi ~seq ~pos:0 ~port:0 ~kind:PM.OLoad ~index:idx
                  ~value:(idx * 7)
              then begin
                ignore
                  (PQ.record qr ~seq ~pos:0 ~port:0 ~kind:PM.OLoad ~index:idx
                     ~value:(idx * 7));
                Arbiter.wm_note_load wm ~seq ~saf:!saf
              end
          | `Advance d -> saf := !saf + d
          | `Squash d ->
              let err = max 0 (!saf - d) in
              ignore (PQ.retire_ge qi ~seq:err ~on_port:ignore);
              ignore (PQ.retire_ge qr ~seq:err ~on_port:ignore);
              if err < !saf then saf := err;
              Arbiter.wm_rewind wm ~saf:!saf);
          if Arbiter.wm_pending wm ~saf:!saf then begin
            ignore (PQ.retire_loads_below qi ~seq:!saf ~on_port:ignore);
            Arbiter.wm_mark wm ~saf:!saf
          end;
          ignore (PQ.retire_loads_below qr ~seq:!saf ~on_port:ignore);
          contents qi = contents qr)
        ops)

let () =
  Alcotest.run "pv_arbiter"
    [
      ( "validation",
        [
          Alcotest.test_case "violation hit" `Quick test_violation_hit;
          Alcotest.test_case "value match (Eq. 5)" `Quick
            test_value_match_no_violation;
          Alcotest.test_case "index mismatch (Eq. 4)" `Quick test_index_mismatch;
          Alcotest.test_case "same kind (Eq. 3)" `Quick test_same_kind;
          Alcotest.test_case "older load safe (Eq. 2)" `Quick test_older_load_safe;
          Alcotest.test_case "min iter_err" `Quick test_min_seq_err;
          Alcotest.test_case "same-iteration ROM order" `Quick
            test_same_iteration_rom_order;
          Alcotest.test_case "invalidated entries skipped" `Quick
            test_invalid_entries_skipped;
        ] );
      ( "load gate",
        [
          Alcotest.test_case "clear" `Quick test_gate_clear;
          Alcotest.test_case "wait" `Quick test_gate_wait;
          Alcotest.test_case "forward" `Quick test_gate_forward;
          Alcotest.test_case "youngest older wins" `Quick
            test_gate_youngest_older_wins;
          Alcotest.test_case "two stores, one iteration" `Quick
            test_gate_two_stores_same_iteration;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_violation_iff_conditions;
          QCheck_alcotest.to_alcotest prop_gate_youngest;
          QCheck_alcotest.to_alcotest prop_fast_matches_ref;
          QCheck_alcotest.to_alcotest prop_watermark_equiv;
        ] );
    ]
