(* The observability layer (DESIGN.md §16).

   Load-bearing properties:
   - the JSON printer/parser round-trips every document this repo writes;
   - the metrics registry has the documented merge semantics (counters
     add, gauges max, histograms add bucket counts) and its snapshots are
     deterministic: identical across simulator engines and worker counts;
   - the Chrome trace export is schema-valid (Perfetto-loadable) and its
     squash instants agree exactly with the backend's squash counter;
   - tracing disabled (the null sink) cannot perturb a run: outcomes,
     memory and every statistic are identical with and without a live
     trace buffer;
   - Profile.run honours the configured engine, and Scan/Event produce
     identical profiles;
   - the VCD writer declares and strobes the squash/epoch markers. *)

open Pv_core
module Sim = Pv_dataflow.Sim
module Json = Pv_obs.Json
module Metrics = Pv_obs.Metrics
module Trace = Pv_obs.Trace

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\" \\ line\nwith\tcontrol\x01chars");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 0; Json.Str ""; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' ->
      Alcotest.(check string)
        "print/parse/print fixpoint" (Json.to_string doc) (Json.to_string doc')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "nul"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_semantics () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.add m "c" 4;
  Metrics.set_gauge m "g" 7;
  Metrics.set_gauge_max m "g" 3;
  (* keeps 7 *)
  Metrics.set_gauge_max m "g" 9;
  Metrics.observe m "h" 0;
  Metrics.observe m "h" 5;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "c");
  Alcotest.(check int) "gauge high-water" 9 (Metrics.gauge_value m "g");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value m "nope");
  (* snapshot is name-sorted and survives a merge round-trip *)
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string))
    "sorted names" [ "c"; "g"; "h" ]
    (List.map fst snap);
  let m2 = Metrics.create () in
  Metrics.add m2 "c" 10;
  Metrics.set_gauge m2 "g" 2;
  Metrics.observe m2 "h" 100_000;
  Metrics.absorb m2 snap;
  Alcotest.(check int) "counters add" 15 (Metrics.counter_value m2 "c");
  Alcotest.(check int) "gauges max" 9 (Metrics.gauge_value m2 "g");
  (match List.assoc "h" (Metrics.snapshot m2) with
  | Metrics.S_hist h ->
      Alcotest.(check int) "hist counts add" 3 h.Metrics.count;
      Alcotest.(check int) "hist sum adds" 100_005 h.Metrics.sum;
      Alcotest.(check int) "hist min" 0 h.Metrics.min_v;
      Alcotest.(check int) "hist max" 100_000 h.Metrics.max_v
  | _ -> Alcotest.fail "h should be a histogram");
  (* merge_snapshots agrees with absorb *)
  let merged = Metrics.merge_snapshots snap snap in
  match List.assoc "c" merged with
  | Metrics.S_counter n -> Alcotest.(check int) "merged counter" 10 n
  | _ -> Alcotest.fail "c should be a counter"

let test_metrics_kind_conflict () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: \"x\" is a counter, not a gauge") (fun () ->
      Metrics.set_gauge m "x" 1)

(* ------------------------------------------------------------------ *)
(* Null sink and non-perturbation                                      *)
(* ------------------------------------------------------------------ *)

let test_null_sink_noop () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.instant t ~tid:Trace.tid_sim ~ts:1 "x";
  Trace.complete t ~tid:Trace.tid_sim ~ts:1 ~dur:2 "y";
  Trace.counter t ~tid:Trace.tid_queue ~ts:1 "z" 3;
  Alcotest.(check int) "no events recorded" 0 (Trace.event_count t);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t)

let test_trace_limit () =
  let t = Trace.create ~limit:3 () in
  for i = 1 to 5 do
    Trace.instant t ~tid:Trace.tid_sim ~ts:i "e"
  done;
  Alcotest.(check int) "capped" 3 (Trace.event_count t);
  Alcotest.(check int) "overflow counted" 2 (Trace.dropped t)

(* a truncated export says so in its footer; an untruncated one carries
   the zero so downstream tooling can assert on it unconditionally *)
let test_trace_truncation_footer () =
  let other t =
    match Json.member "otherData" (Trace.to_json ~process:"p" t) with
    | Some o -> o
    | None -> Alcotest.fail "otherData missing"
  in
  let t = Trace.create ~limit:3 () in
  for i = 1 to 5 do
    Trace.instant t ~tid:Trace.tid_sim ~ts:i "e"
  done;
  let o = other t in
  Alcotest.(check (option int))
    "dropped_events" (Some 2)
    (Option.bind (Json.member "dropped_events" o) Json.to_int_opt);
  Alcotest.(check bool)
    "truncated flag" true
    (Json.member "truncated" o = Some (Json.Bool true));
  (match Option.bind (Json.member "warning" o) Json.to_string_opt with
  | Some w -> Alcotest.(check bool) "warning is non-empty" true (w <> "")
  | None -> Alcotest.fail "truncated trace has no warning");
  let clean = Trace.create ~limit:10 () in
  Trace.instant clean ~tid:Trace.tid_sim ~ts:1 "e";
  let o = other clean in
  Alcotest.(check (option int))
    "clean export still carries the zero" (Some 0)
    (Option.bind (Json.member "dropped_events" o) Json.to_int_opt);
  Alcotest.(check bool)
    "no warning when nothing dropped" true
    (Json.member "warning" o = None)

(* a run that overflows its trace buffer surfaces the loss as a metric *)
let test_trace_dropped_metric () =
  let kernel = Pv_kernels.Defs.polyn_mult () in
  let compiled = Pipeline.compile kernel in
  let m = Metrics.create () in
  let tr = Trace.create ~limit:5 () in
  ignore (Pipeline.simulate ~obs_trace:tr ~metrics:m compiled (Pipeline.prevv 16));
  let snap = Metrics.snapshot m in
  let dropped =
    match List.assoc_opt "trace.dropped_events" snap with
    | Some (Metrics.S_counter n) -> n
    | _ -> Alcotest.fail "trace.dropped_events not recorded"
  in
  Alcotest.(check bool) "drops counted" true (dropped > 0);
  Alcotest.(check int) "metric mirrors the trace" (Trace.dropped tr) dropped

(* ------------------------------------------------------------------ *)
(* Structured logger                                                   *)
(* ------------------------------------------------------------------ *)

module Log = Pv_obs.Log

let collect_log ?level ?now_ms () =
  let buf = Buffer.create 256 in
  (Log.create ?level ?now_ms (Buffer.add_string buf), buf)

let log_lines buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

let test_log_ldjson () =
  let log, buf = collect_log () in
  Log.info log "started" ~fields:[ ("jobs", Json.Int 4) ];
  Log.warn log "shed" ~fields:[ ("id", Json.Str "r\"1\"") ];
  let lines = log_lines buf in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "log line is not JSON (%s): %s" e line
      | Ok j ->
          Alcotest.(check bool)
            "has ts_ms" true
            (Json.member "ts_ms" j <> None);
          Alcotest.(check bool)
            "has level" true
            (Json.member "level" j <> None);
          Alcotest.(check bool) "has msg" true (Json.member "msg" j <> None))
    lines;
  (* default timestamps are the event counter: ordered and deterministic *)
  let ts line =
    match Json.parse line with
    | Ok j -> (
        match Json.member "ts_ms" j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> Alcotest.fail "ts_ms missing")
    | Error e -> Alcotest.failf "bad line: %s" e
  in
  Alcotest.(check bool)
    "counter timestamps increase" true
    (ts (List.nth lines 0) < ts (List.nth lines 1))

let test_log_levels () =
  let log, buf = collect_log ~level:Log.Warn () in
  Alcotest.(check bool) "debug disabled" false (Log.enabled log Log.Debug);
  Alcotest.(check bool) "error enabled" true (Log.enabled log Log.Error);
  Log.debug log "dropped" ~fields:[];
  Log.info log "dropped too" ~fields:[];
  Log.warn log "kept" ~fields:[];
  Log.error log "kept too" ~fields:[];
  Alcotest.(check int) "below-threshold suppressed" 2
    (List.length (log_lines buf));
  (* the null logger is inert *)
  Log.error Log.null "nothing" ~fields:[];
  Alcotest.(check bool) "null disabled" false (Log.enabled Log.null Log.Error)

let test_log_rid () =
  let log, buf = collect_log () in
  let scoped = Log.with_rid log "req-7" in
  Log.info scoped "handled" ~fields:[];
  Log.info log "unscoped" ~fields:[];
  match log_lines buf with
  | [ scoped_line; plain_line ] ->
      (match Json.parse scoped_line with
      | Ok j ->
          Alcotest.(check (option string))
            "rid stamped" (Some "req-7")
            (Option.bind (Json.member "rid" j) Json.to_string_opt)
      | Error e -> Alcotest.failf "bad line: %s" e);
      (match Json.parse plain_line with
      | Ok j -> Alcotest.(check bool) "no rid" true (Json.member "rid" j = None)
      | Error e -> Alcotest.failf "bad line: %s" e)
  | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)

let result_sig (r : Pipeline.result) =
  let outcome =
    match r.Pipeline.outcome with
    | Sim.Finished { cycles } -> ("finished", cycles)
    | Sim.Deadlock { at_cycle; _ } -> ("deadlock", at_cycle)
    | Sim.Timeout { at_cycle; _ } -> ("timeout", at_cycle)
  in
  (outcome, r.Pipeline.cycles, r.Pipeline.mem, r.Pipeline.mem_stats,
   r.Pipeline.run_stats)

(* a live trace buffer must not change anything observable about a run —
   the zero-cost-when-disabled guarantee read the other way round *)
let test_tracing_does_not_perturb () =
  List.iter
    (fun (kernel, dis) ->
      let compiled = Pipeline.compile kernel in
      let plain = Pipeline.simulate compiled dis in
      let traced =
        Pipeline.simulate ~obs_trace:(Trace.create ()) compiled dis
      in
      Alcotest.(check bool)
        (kernel.Pv_kernels.Ast.name ^ "/" ^ Pipeline.name_of dis
        ^ ": identical result")
        true
        (result_sig plain = result_sig traced))
    [
      (Pv_kernels.Defs.polyn_mult (), Pipeline.prevv 16);
      (Pv_kernels.Defs.matvec (), Pipeline.prevv 16);
      (Pv_kernels.Defs.histogram (), Pipeline.fast_lsq);
    ]

(* ------------------------------------------------------------------ *)
(* Chrome trace schema                                                 *)
(* ------------------------------------------------------------------ *)

let trace_of kernel dis =
  let compiled = Pipeline.compile kernel in
  let tr = Trace.create () in
  let r = Pipeline.simulate ~obs_trace:tr compiled dis in
  (tr, r)

let get_events doc =
  match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
  | Some evs -> evs
  | None -> Alcotest.fail "traceEvents missing or not a list"

let field name ev = Json.member name ev

let str_field name ev =
  match Option.bind (field name ev) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "event field %S missing or not a string" name

let int_field name ev =
  match Option.bind (field name ev) Json.to_int_opt with
  | Some n -> n
  | None -> Alcotest.failf "event field %S missing or not an int" name

let test_trace_schema () =
  let tr, _ = trace_of (Pv_kernels.Defs.polyn_mult ()) (Pipeline.prevv 16) in
  let rendered = Json.to_string (Trace.to_json ~process:"polyn_mult" tr) in
  let doc =
    match Json.parse rendered with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  in
  let evs = get_events doc in
  Alcotest.(check bool) "has events" true (List.length evs > 100);
  (* every event is schema-valid *)
  List.iter
    (fun ev ->
      let ph = str_field "ph" ev in
      ignore (str_field "name" ev);
      Alcotest.(check int) "pid" 1 (int_field "pid" ev);
      ignore (int_field "tid" ev);
      match ph with
      | "M" -> ()
      | "X" ->
          Alcotest.(check bool) "ts >= 0" true (int_field "ts" ev >= 0);
          Alcotest.(check bool) "dur >= 0" true (int_field "dur" ev >= 0)
      | "i" ->
          Alcotest.(check string) "instant scope" "t" (str_field "s" ev)
      | "C" ->
          let v =
            Option.bind (field "args" ev) (fun a ->
                Option.bind (Json.member "value" a) Json.to_int_opt)
          in
          Alcotest.(check bool) "counter has value" true (v <> None)
      | ph -> Alcotest.failf "unknown phase %S" ph)
    evs;
  let named ph name =
    List.filter
      (fun ev -> str_field "ph" ev = ph && str_field "name" ev = name)
      evs
  in
  (* process metadata *)
  (match named "M" "process_name" with
  | [ ev ] ->
      let pname =
        Option.bind (field "args" ev) (fun a ->
            Option.bind (Json.member "name" a) Json.to_string_opt)
      in
      Alcotest.(check (option string)) "process name" (Some "polyn_mult") pname
  | _ -> Alcotest.fail "expected exactly one process_name metadata event");
  Alcotest.(check bool)
    "thread metadata present" true
    (List.length (named "M" "thread_name") >= 2);
  (* the PreVV-specific content: every store validation is an arbiter
     instant, and the premature queue has a counter track *)
  let validations = named "i" "validation" in
  Alcotest.(check int)
    "one validation instant per store" 2304
    (List.length validations);
  List.iter
    (fun ev ->
      Alcotest.(check int) "validation on arbiter track" 3 (int_field "tid" ev))
    validations;
  Alcotest.(check bool)
    "pq occupancy counter track" true
    (List.length (named "C" "pq_occupancy") > 0);
  Alcotest.(check bool)
    "in-flight counter track" true
    (List.length (named "C" "in_flight_tokens") > 0);
  (* counter tracks are emitted in cycle order: within each track the
     timestamps never go backwards *)
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      if str_field "ph" ev = "C" then begin
        let name = str_field "name" ev in
        let ts = int_field "ts" ev in
        let last =
          match Hashtbl.find_opt tracks name with Some t -> t | None -> -1
        in
        Alcotest.(check bool)
          (name ^ ": counter ts monotone") true (ts >= last);
        Hashtbl.replace tracks name ts
      end)
    evs

let test_trace_fault_instants () =
  let kernel = Pv_kernels.Defs.histogram () in
  let compiled = Pipeline.compile kernel in
  let instances = Pv_frontend.Trace.length compiled.Pipeline.trace in
  let faults =
    Pv_dataflow.Fault.random_recoverable ~seed:7
      ~n_chans:(Pv_dataflow.Graph.n_chans compiled.Pipeline.graph)
      ~max_seq:instances
      ~horizon:(100 + (4 * instances))
      ()
  in
  let sim_cfg = { Sim.default_config with Sim.faults } in
  let tr = Trace.create () in
  let r =
    Pipeline.simulate ~sim_cfg ~obs_trace:tr compiled (Pipeline.prevv 16)
  in
  (* the run must still complete (the plan is recoverable) and each fired
     fault event appears as an instant on the fault track *)
  (match r.Pipeline.outcome with
  | Sim.Finished _ -> ()
  | _ -> Alcotest.fail "recoverable plan should still finish");
  Alcotest.(check bool) "plan is non-empty" true (faults <> []);
  let fault_instants =
    List.filter
      (fun (e : Trace.event) -> e.Trace.tid = Trace.tid_fault)
      (Trace.events tr)
  in
  Alcotest.(check bool)
    "fault instants on the fault track" true
    (List.length fault_instants > 0)

let test_trace_squash_instants () =
  let tr, r = trace_of (Pv_kernels.Defs.matvec ()) (Pipeline.prevv 16) in
  let squashes = r.Pipeline.mem_stats.Pv_dataflow.Memif.squashes in
  Alcotest.(check bool) "matvec squashes under prevv16" true (squashes > 0);
  let evs = Trace.events tr in
  let count ph name =
    List.length
      (List.filter
         (fun (e : Trace.event) -> e.Trace.ph = ph && e.Trace.name = name)
         evs)
  in
  Alcotest.(check int)
    "one sim squash instant per squash" squashes (count 'i' "squash");
  Alcotest.(check int)
    "one backend squash instant per squash" squashes
    (count 'i' "backend_squash");
  (* every squash closes an epoch span ("epoch N"); the final epoch
     closes when the run ends *)
  let epoch_spans =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           e.Trace.ph = 'X'
           && String.length e.Trace.name >= 5
           && String.sub e.Trace.name 0 5 = "epoch")
         evs)
  in
  Alcotest.(check int) "epoch spans" (squashes + 1) epoch_spans

(* ------------------------------------------------------------------ *)
(* Metric determinism                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_str s = Json.to_string (Metrics.snapshot_to_json s)

let metrics_of engine kernel dis =
  let compiled = Pipeline.compile kernel in
  let sim_cfg = { Sim.default_config with Sim.engine } in
  let m = Metrics.create () in
  ignore (Pipeline.simulate ~sim_cfg ~metrics:m compiled dis);
  Metrics.snapshot m

let test_metrics_engine_invariant () =
  List.iter
    (fun (kernel, dis) ->
      let scan = metrics_of Sim.Scan kernel dis in
      let event = metrics_of Sim.Event kernel dis in
      Alcotest.(check string)
        (kernel.Pv_kernels.Ast.name ^ "/" ^ Pipeline.name_of dis
        ^ ": scan = event")
        (snapshot_str scan) (snapshot_str event))
    [
      (Pv_kernels.Defs.matvec (), Pipeline.prevv 16);
      (Pv_kernels.Defs.gaussian (), Pipeline.prevv 64);
      (Pv_kernels.Defs.histogram (), Pipeline.fast_lsq);
      (Pv_kernels.Defs.polyn_mult (), Pipeline.plain_lsq);
    ]

(* drop the runner.* telemetry (worker loads, cache hits): that part is
   runtime-dependent by design; everything else must be jobs-invariant *)
let deterministic_part snap =
  List.filter
    (fun (name, _) ->
      not
        (String.length name >= 7 && String.sub name 0 7 = "runner."))
    snap

let test_sweep_metrics_jobs_invariant () =
  let cells =
    [
      (Pv_kernels.Defs.histogram (), Pipeline.prevv 16);
      (Pv_kernels.Defs.histogram (), Pipeline.fast_lsq);
      (Pv_kernels.Defs.gaussian (), Pipeline.prevv 16);
      (Pv_kernels.Defs.gaussian (), Pipeline.fast_lsq);
    ]
  in
  let sweep jobs =
    let m = Metrics.create () in
    let rs = Experiment.sweep ~metrics:m ~jobs cells in
    (rs, Metrics.snapshot m)
  in
  let serial, m1 = sweep 1 in
  let parallel, m4 = sweep 4 in
  (* per-point: byte-identical JSON and identical embedded snapshots *)
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ok (pa : Experiment.point), Ok pb ->
          Alcotest.(check string)
            "point JSON identical"
            (Experiment.point_to_json pa)
            (Experiment.point_to_json pb);
          Alcotest.(check string)
            "point metrics identical"
            (snapshot_str pa.Experiment.metrics)
            (snapshot_str pb.Experiment.metrics)
      | _ -> Alcotest.fail "sweep point failed")
    serial parallel;
  (* aggregate: equal once the runner telemetry is stripped *)
  Alcotest.(check string)
    "aggregated metrics jobs-invariant"
    (snapshot_str (deterministic_part m1))
    (snapshot_str (deterministic_part m4));
  (* the telemetry itself is present and accounts for every cell *)
  let m = Metrics.create () in
  Metrics.absorb m m1;
  Alcotest.(check int) "runner.points" (List.length cells)
    (Metrics.counter_value m "runner.points");
  Alcotest.(check int) "runner.errors" 0 (Metrics.counter_value m "runner.errors")

let test_cached_point_keeps_metrics () =
  let cache = Parallel.Cache.in_memory () in
  let kernel = Pv_kernels.Defs.histogram () in
  let cold, w1 = Experiment.run_cached ~cache kernel (Pipeline.prevv 16) in
  let hot, w2 = Experiment.run_cached ~cache kernel (Pipeline.prevv 16) in
  Alcotest.(check bool) "first is a miss" true (w1 = `Miss);
  Alcotest.(check bool) "second is a hit" true (w2 = `Hit);
  Alcotest.(check bool)
    "snapshot is non-empty" true
    (cold.Experiment.metrics <> []);
  Alcotest.(check string)
    "snapshot rides the cache"
    (snapshot_str cold.Experiment.metrics)
    (snapshot_str hot.Experiment.metrics)

(* ------------------------------------------------------------------ *)
(* Profile engine equality                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_engine_invariant () =
  let kernel = Pv_kernels.Defs.gaussian () in
  let compiled = Pipeline.compile kernel in
  let profile engine =
    let init = Pv_kernels.Workload.default_init kernel in
    let mem =
      Pv_memory.Layout.initial_memory compiled.Pipeline.layout kernel ~init
    in
    let backend = Pipeline.backend_of compiled mem (Pipeline.prevv 16) in
    let cfg = { Sim.default_config with Sim.engine } in
    Pv_dataflow.Profile.run ~cfg compiled.Pipeline.graph backend
  in
  let scan = profile Sim.Scan and event = profile Sim.Event in
  Alcotest.(check string)
    "profiles identical across engines"
    (Json.to_string (Pv_dataflow.Profile.to_json scan))
    (Json.to_string (Pv_dataflow.Profile.to_json event))

(* ------------------------------------------------------------------ *)
(* VCD squash/epoch markers                                            *)
(* ------------------------------------------------------------------ *)

let test_vcd_squash_marker () =
  let kernel = Pv_kernels.Defs.matvec () in
  let compiled = Pipeline.compile kernel in
  let init = Pv_kernels.Workload.default_init kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pipeline.layout kernel ~init
  in
  let backend = Pipeline.backend_of compiled mem (Pipeline.prevv 16) in
  let path = Filename.temp_file "prevv_obs" ".vcd" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore
        (Pv_dataflow.Vcd.record ~max_cycles:5_000 ~path
           compiled.Pipeline.graph backend);
      let ic = open_in path in
      let body =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* the header declares the two marker signals... *)
      let squash_id = ref None in
      String.split_on_char '\n' body
      |> List.iter (fun line ->
             match String.split_on_char ' ' line with
             | [ "$var"; "wire"; "1"; id; "squash"; "$end" ] ->
                 squash_id := Some id
             | _ -> ());
      Alcotest.(check bool)
        "epoch vector declared" true
        (List.exists
           (fun line ->
             match String.split_on_char ' ' line with
             | [ "$var"; "wire"; "32"; _; "epoch"; "$end" ] -> true
             | _ -> false)
           (String.split_on_char '\n' body));
      match !squash_id with
      | None -> Alcotest.fail "squash strobe not declared"
      | Some id ->
          (* ...and matvec's squashes strobe it high at least once *)
          let strobe = "\n1" ^ id ^ "\n" in
          let found =
            let n = String.length body and k = String.length strobe in
            let rec scan i =
              if i + k > n then false
              else String.sub body i k = strobe || scan (i + 1)
            in
            scan 0
          in
          Alcotest.(check bool) "squash strobed high" true found)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "semantics" `Quick test_metrics_semantics;
          Alcotest.test_case "kind conflict" `Quick test_metrics_kind_conflict;
        ] );
      ( "trace",
        [
          Alcotest.test_case "null sink is a no-op" `Quick test_null_sink_noop;
          Alcotest.test_case "event limit" `Quick test_trace_limit;
          Alcotest.test_case "truncation footer" `Quick
            test_trace_truncation_footer;
          Alcotest.test_case "dropped-events metric" `Quick
            test_trace_dropped_metric;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_tracing_does_not_perturb;
          Alcotest.test_case "chrome schema" `Quick test_trace_schema;
          Alcotest.test_case "squash instants" `Quick
            test_trace_squash_instants;
          Alcotest.test_case "fault instants" `Quick test_trace_fault_instants;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "metrics engine-invariant" `Quick
            test_metrics_engine_invariant;
          Alcotest.test_case "sweep metrics jobs-invariant" `Quick
            test_sweep_metrics_jobs_invariant;
          Alcotest.test_case "cached point keeps metrics" `Quick
            test_cached_point_keeps_metrics;
        ] );
      ( "profile",
        [
          Alcotest.test_case "engine-invariant" `Quick
            test_profile_engine_invariant;
        ] );
      ( "log",
        [
          Alcotest.test_case "lines are LDJSON" `Quick test_log_ldjson;
          Alcotest.test_case "level threshold" `Quick test_log_levels;
          Alcotest.test_case "request-scoped ids" `Quick test_log_rid;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "squash marker" `Quick test_vcd_squash_marker;
        ] );
    ]
