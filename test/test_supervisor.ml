(* The supervision layer (DESIGN.md §18).

   The load-bearing properties:
   - backoff is seed-deterministic: same (policy, label) gives the same
     schedule, every delay respects the exponential envelope and cap;
   - a task that keeps failing is retried exactly max_attempts times and
     comes back as a structured task_error while the rest of the grid
     completes — one crash never poisons the batch;
   - a worker killed mid-task (Kill_worker) takes down only itself: the
     supervisor respawns a replacement and the task still completes;
   - a cooperative deadline cancels a runaway task (the simulator's
     cancel hook raises Sim.Cancelled) and is reported as deadline_hit. *)

open Pv_core

exception Flaky of int

let quick_policy =
  {
    Supervisor.default_policy with
    Supervisor.base_delay_s = 0.0005;
    Supervisor.max_delay_s = 0.002;
  }

(* ------------------------------------------------------------------ *)
(* Backoff determinism                                                 *)
(* ------------------------------------------------------------------ *)

let test_backoff_deterministic () =
  let p = { quick_policy with Supervisor.max_attempts = 6; Supervisor.seed = 42 } in
  let a = Supervisor.backoff_schedule p ~label:"gaussian/prevv16" in
  let b = Supervisor.backoff_schedule p ~label:"gaussian/prevv16" in
  Alcotest.(check (list (float 0.0))) "same seed => same schedule" a b;
  Alcotest.(check int) "max_attempts - 1 delays" 5 (List.length a);
  (* a different seed or label jitters differently somewhere *)
  let c =
    Supervisor.backoff_schedule { p with Supervisor.seed = 43 }
      ~label:"gaussian/prevv16"
  in
  let d = Supervisor.backoff_schedule p ~label:"matvec/prevv16" in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check bool) "different label differs" true (a <> d);
  (* envelope: delay n sits in [0.5, 1.5) x min(base * 2^(n-1), cap) *)
  List.iteri
    (fun i delay ->
      let base =
        Float.min
          (p.Supervisor.base_delay_s *. (2.0 ** float_of_int i))
          p.Supervisor.max_delay_s
      in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in envelope" (i + 1))
        true
        (delay >= 0.5 *. base && delay < 1.5 *. base))
    a

(* ------------------------------------------------------------------ *)
(* Crash isolation and retry budget                                    *)
(* ------------------------------------------------------------------ *)

let test_failing_task_isolated () =
  List.iter
    (fun jobs ->
      let results, stats =
        Supervisor.run_tasks ~policy:quick_policy ~jobs
          ~label:(Printf.sprintf "task%d")
          (fun ~token:_ i -> if i = 2 then raise (Flaky i) else i * 10)
          [ 0; 1; 2; 3; 4 ]
      in
      let tag = Printf.sprintf "(jobs=%d)" jobs in
      List.iteri
        (fun i r ->
          match (i, r) with
          | 2, Error (e : Supervisor.task_error) ->
              Alcotest.(check string)
                ("errors section names the point " ^ tag)
                "task2" e.Supervisor.label;
              Alcotest.(check int)
                ("attempts = budget " ^ tag)
                quick_policy.Supervisor.max_attempts e.Supervisor.attempts;
              Alcotest.(check bool)
                ("last exception recorded " ^ tag)
                true
                (e.Supervisor.last_error <> "")
          | 2, Ok _ -> Alcotest.fail ("task2 should fail " ^ tag)
          | i, Ok v ->
              Alcotest.(check int) ("rest of grid completes " ^ tag) (i * 10) v
          | _, Error _ -> Alcotest.fail ("only task2 may fail " ^ tag))
        results;
      Alcotest.(check int) ("completed " ^ tag) 4 stats.Supervisor.completed;
      Alcotest.(check int) ("failed " ^ tag) 1 stats.Supervisor.failed;
      Alcotest.(check int)
        ("retries = budget - 1 " ^ tag)
        (quick_policy.Supervisor.max_attempts - 1)
        stats.Supervisor.retries)
    [ 1; 2 ]

let test_non_retryable_fails_fast () =
  let results, stats =
    Supervisor.run_tasks ~policy:quick_policy ~jobs:1
      ~label:(Printf.sprintf "t%d")
      (fun ~token:_ i ->
        if i = 0 then invalid_arg "infeasible configuration" else i)
      [ 0; 1 ]
  in
  (match List.hd results with
  | Error e ->
      Alcotest.(check int) "one attempt only" 1 e.Supervisor.attempts;
      Alcotest.(check bool) "message kept" true
        (e.Supervisor.last_error <> "")
  | Ok _ -> Alcotest.fail "expected failure");
  Alcotest.(check int) "no retries burned" 0 stats.Supervisor.retries

let test_flaky_task_recovers () =
  (* fails twice, succeeds on the third attempt: inside the budget *)
  let tries = Atomic.make 0 in
  let results, stats =
    Supervisor.run_tasks ~policy:quick_policy ~jobs:1
      ~label:(fun _ -> "flaky")
      (fun ~token:_ () ->
        if Atomic.fetch_and_add tries 1 < 2 then raise (Flaky 0) else 99)
      [ () ]
  in
  (match results with
  | [ Ok v ] -> Alcotest.(check int) "recovered value" 99 v
  | _ -> Alcotest.fail "expected recovery");
  Alcotest.(check int) "two retries" 2 stats.Supervisor.retries;
  Alcotest.(check int) "no failure" 0 stats.Supervisor.failed

(* ------------------------------------------------------------------ *)
(* Killed workers                                                      *)
(* ------------------------------------------------------------------ *)

let test_killed_worker_respawned () =
  (* task 0 kills its worker once, then succeeds on retry; with 2
     workers over 6 tasks the pool must respawn and finish everything *)
  let killed = Atomic.make false in
  let results, stats =
    Supervisor.run_tasks ~policy:quick_policy ~jobs:2
      ~label:(Printf.sprintf "task%d")
      (fun ~token:_ i ->
        if i = 0 && not (Atomic.exchange killed true) then
          raise Supervisor.Kill_worker
        else i + 100)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) (Printf.sprintf "task %d done" i) (i + 100) v
      | Error e ->
          Alcotest.failf "task %d failed: %s" i e.Supervisor.last_error)
    results;
  Alcotest.(check int) "all completed" 6 stats.Supervisor.completed;
  Alcotest.(check bool) "replacement spawned" true
    (stats.Supervisor.respawns >= 1)

let test_kill_exhausts_budget () =
  (* a task that kills its worker every time ends as a task_error with
     the kill count recorded *)
  let results, _ =
    Supervisor.run_tasks
      ~policy:{ quick_policy with Supervisor.max_attempts = 2 }
      ~jobs:2
      ~label:(Printf.sprintf "task%d")
      (fun ~token:_ i ->
        if i = 0 then raise Supervisor.Kill_worker else i)
      [ 0; 1; 2 ]
  in
  match List.hd results with
  | Error e ->
      Alcotest.(check int) "attempts" 2 e.Supervisor.attempts;
      Alcotest.(check int) "kills recorded" 2 e.Supervisor.worker_kills
  | Ok _ -> Alcotest.fail "expected kill exhaustion"

(* ------------------------------------------------------------------ *)
(* Deadlines and cooperative cancellation                              *)
(* ------------------------------------------------------------------ *)

let test_token_deadline () =
  let t = Supervisor.Token.create ~deadline_s:(-1.0) () in
  Alcotest.(check bool) "past deadline already cancelled" true
    (Supervisor.Token.cancelled t);
  let u = Supervisor.Token.create () in
  Alcotest.(check bool) "fresh token live" false (Supervisor.Token.cancelled u);
  Supervisor.Token.cancel u;
  Alcotest.(check bool) "cancel sticks" true (Supervisor.Token.cancelled u)

let test_deadline_overrun_reported () =
  let policy =
    { quick_policy with
      Supervisor.max_attempts = 2;
      Supervisor.deadline_s = Some 0.02 }
  in
  let results, stats =
    Supervisor.run_tasks ~policy ~jobs:1
      ~label:(fun _ -> "spinner")
      (fun ~token () ->
        (* a runaway task that at least polls its token, like Sim does *)
        while not (Supervisor.Token.cancelled token) do
          ignore (Sys.opaque_identity ())
        done;
        raise Exit)
      [ () ]
  in
  (match results with
  | [ Error e ] ->
      Alcotest.(check bool) "deadline_hit" true e.Supervisor.deadline_hit;
      Alcotest.(check int) "retried to budget" 2 e.Supervisor.attempts
  | _ -> Alcotest.fail "expected deadline failure");
  Alcotest.(check int) "deadline hits counted" 2 stats.Supervisor.deadline_hits

let test_sim_cancel_hook () =
  (* the simulator's cancel hook: an already-cancelled token turns the
     run into a deterministic Cancelled error *)
  let sim_cfg =
    { Pv_dataflow.Sim.default_config with
      Pv_dataflow.Sim.cancel = (fun () -> true) }
  in
  match
    Experiment.run_checked ~sim_cfg (Pv_kernels.Defs.gaussian ())
      (Pipeline.prevv 16)
  with
  | Error msg ->
      Alcotest.(check bool) "names the cancel cycle" true
        (String.length msg >= 9 && String.sub msg 0 9 = "cancelled")
  | Ok _ -> Alcotest.fail "cancelled run must not produce a point"

(* ------------------------------------------------------------------ *)
(* Supervised sweep over real cells                                    *)
(* ------------------------------------------------------------------ *)

let test_sweep_supervised_partial_results () =
  (* one infeasible cell (depth 2 cannot hold one body instance): the
     errors section names it, the other cells complete *)
  let kernel = Pv_kernels.Defs.gaussian () in
  let cells =
    [ (kernel, Pipeline.prevv 1); (kernel, Pipeline.prevv 16);
      (kernel, Pipeline.fast_lsq) ]
  in
  let m = Pv_obs.Metrics.create () in
  let results, stats =
    Experiment.sweep_supervised ~policy:quick_policy ~metrics:m ~jobs:2 cells
  in
  (match results with
  | [ Error e; Ok p16; Ok plsq ] ->
      Alcotest.(check string)
        "error names kernel/config" "gaussian/prevv1" e.Supervisor.label;
      Alcotest.(check int) "infeasible fails fast" 1 e.Supervisor.attempts;
      Alcotest.(check bool) "points verified" true
        (p16.Experiment.verified && plsq.Experiment.verified)
  | _ -> Alcotest.fail "expected [Error; Ok; Ok]");
  Alcotest.(check int) "stats.completed" 2 stats.Supervisor.completed;
  Alcotest.(check int) "stats.failed" 1 stats.Supervisor.failed;
  (* the supervised sweep matches the bare runs point for point *)
  let reference = Experiment.run kernel (Pipeline.prevv 16) in
  (match results with
  | [ _; Ok p; _ ] ->
      Alcotest.(check string) "same rendering as bare run"
        (Experiment.point_to_json reference)
        (Experiment.point_to_json p)
  | _ -> ());
  (* the task_error JSON is parseable and self-describing *)
  match results with
  | Error e :: _ -> (
      match
        Pv_obs.Json.parse (Pv_obs.Json.to_string (Supervisor.task_error_to_json e))
      with
      | Ok j ->
          Alcotest.(check (option string))
            "json label" (Some "gaussian/prevv1")
            (Option.bind (Pv_obs.Json.member "label" j) Pv_obs.Json.to_string_opt)
      | Error msg -> Alcotest.failf "task_error json unparseable: %s" msg)
  | _ -> ()

let test_paper_grid_supervised_shape () =
  let rows, stats = Experiment.paper_grid_supervised ~jobs:2 () in
  Alcotest.(check int) "five kernel rows" 5 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "four configs per row" 4 (List.length row);
      List.iter
        (function
          | Ok (p : Experiment.point) ->
              Alcotest.(check bool)
                (p.Experiment.kernel ^ "/" ^ p.Experiment.config ^ " verified")
                true p.Experiment.verified
          | Error e -> Alcotest.failf "unexpected grid error: %s"
                         e.Supervisor.last_error)
        row)
    rows;
  Alcotest.(check int) "all 20 points" 20 stats.Supervisor.completed

let () =
  Alcotest.run "supervisor"
    [
      ( "backoff",
        [ Alcotest.test_case "deterministic schedule" `Quick
            test_backoff_deterministic ] );
      ( "isolation",
        [
          Alcotest.test_case "failing task isolated" `Quick
            test_failing_task_isolated;
          Alcotest.test_case "non-retryable fails fast" `Quick
            test_non_retryable_fails_fast;
          Alcotest.test_case "flaky task recovers" `Quick
            test_flaky_task_recovers;
        ] );
      ( "kills",
        [
          Alcotest.test_case "killed worker respawned" `Quick
            test_killed_worker_respawned;
          Alcotest.test_case "kill exhausts budget" `Quick
            test_kill_exhausts_budget;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "token deadline" `Quick test_token_deadline;
          Alcotest.test_case "deadline overrun reported" `Quick
            test_deadline_overrun_reported;
          Alcotest.test_case "sim cancel hook" `Quick test_sim_cancel_hook;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "partial results + errors section" `Quick
            test_sweep_supervised_partial_results;
          Alcotest.test_case "paper grid supervised" `Quick
            test_paper_grid_supervised_shape;
        ] );
    ]
