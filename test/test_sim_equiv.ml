(* Engine equivalence: the event-driven scheduler must be cycle-equivalent
   to the exhaustive per-cycle scan — identical outcome, cycle count,
   per-node fire counts, generator traffic, backend statistics and final
   memory — while performing strictly fewer node evaluations.  Checked on
   every paper kernel under every registered backend (the scheme registry,
   so the oracle / serial bound backends ride along automatically), on a
   few stress kernels, and on fault-injected runs that exercise the squash
   wake-alls and the timed stall wakes. *)

open Pv_core
module Sim = Pv_dataflow.Sim
module Fault = Pv_dataflow.Fault

(* every registered scheme, registry order — not a hard-coded list, so a
   newly registered backend is covered without touching this file *)
let schemes =
  List.map (fun (module M : Scheme.S) -> (M.name, M.config)) (Scheme.all ())

let run ?(faults = []) engine compiled dis =
  let sim_cfg = { Sim.default_config with Sim.engine; faults } in
  Pipeline.simulate ~sim_cfg compiled dis

let outcome_sig = function
  | Sim.Finished { cycles } -> ("finished", cycles)
  | Sim.Deadlock { at_cycle; _ } -> ("deadlock", at_cycle)
  | Sim.Timeout { at_cycle; _ } -> ("timeout", at_cycle)

(* Run both engines and assert bit-identical observable behaviour; returns
   (scan evals, event evals) for the caller's efficiency assertion. *)
let check_equiv ?faults name compiled dis =
  let scan = run ?faults Sim.Scan compiled dis in
  let event = run ?faults Sim.Event compiled dis in
  Alcotest.(check (pair string int))
    (name ^ ": outcome")
    (outcome_sig scan.Pipeline.outcome)
    (outcome_sig event.Pipeline.outcome);
  Alcotest.(check int) (name ^ ": cycles") scan.Pipeline.cycles
    event.Pipeline.cycles;
  Alcotest.(check (array int))
    (name ^ ": per-node fire counts")
    scan.Pipeline.run_stats.Sim.node_fires
    event.Pipeline.run_stats.Sim.node_fires;
  Alcotest.(check int)
    (name ^ ": generator instances")
    scan.Pipeline.run_stats.Sim.gen_instances
    event.Pipeline.run_stats.Sim.gen_instances;
  Alcotest.(check (array int))
    (name ^ ": final memory")
    scan.Pipeline.mem event.Pipeline.mem;
  Alcotest.(check bool)
    (name ^ ": backend statistics")
    true
    (scan.Pipeline.mem_stats = event.Pipeline.mem_stats);
  (scan.Pipeline.run_stats.Sim.evals, event.Pipeline.run_stats.Sim.evals)

let test_kernel kernel () =
  let compiled = Pipeline.compile kernel in
  List.iter
    (fun (sname, dis) ->
      let name = kernel.Pv_kernels.Ast.name ^ "/" ^ sname in
      let scan_evals, event_evals = check_equiv name compiled dis in
      if event_evals >= scan_evals then
        Alcotest.failf "%s: event engine not cheaper (%d >= %d evals)" name
          event_evals scan_evals)
    schemes

(* Fault plans drive the conservative wake paths: the wake-all on any fired
   fault, the timed wake at a stall expiry, and the wake-all per squash. *)
let test_faulted kernel () =
  let compiled = Pipeline.compile kernel in
  let n_chans = Pv_dataflow.Graph.n_chans compiled.Pipeline.graph in
  let base = Pipeline.simulate compiled (Pipeline.prevv 16) in
  let horizon =
    match base.Pipeline.outcome with
    | Sim.Finished { cycles } -> max 20 (cycles / 2)
    | _ -> Alcotest.fail "fault-free run did not finish"
  in
  (* a hand-built plan hitting every sim-level fault kind... *)
  let manual =
    [
      { Fault.at_cycle = 5; action = Fault.Stall { chan = 1; cycles = 9 } };
      { Fault.at_cycle = 11; action = Fault.Drop { chan = 2 } };
      { Fault.at_cycle = 17; action = Fault.Flip { chan = 3; mask = 0 } };
      { Fault.at_cycle = 23; action = Fault.Drop_replay { chan = 4 } };
      { Fault.at_cycle = 29; action = Fault.Flip_replay { chan = 5; mask = 1 } };
    ]
  in
  (* ...applied under every registered scheme (the bound backends refuse
     replay injection — the *-replay actions must then be no-ops for them),
     plus seeded recoverable plans (stalls, drops, flips, squashes) *)
  List.iter
    (fun (sname, dis) ->
      let tag = kernel.Pv_kernels.Ast.name ^ "/" ^ sname in
      ignore (check_equiv (tag ^ "/manual-faults") compiled ~faults:manual dis);
      for fseed = 1 to 4 do
        let faults =
          Fault.random_recoverable ~n:4 ~seed:fseed ~n_chans ~max_seq:4
            ~horizon ()
        in
        ignore
          (check_equiv
             (Printf.sprintf "%s/faults-seed%d" tag fseed)
             compiled ~faults dis)
      done)
    schemes

let kernel_case k =
  Alcotest.test_case k.Pv_kernels.Ast.name `Quick (test_kernel k)

let () =
  let paper = Pv_kernels.Defs.paper_benchmarks () in
  let stress =
    [
      Pv_kernels.Defs.cond_update ();
      Pv_kernels.Defs.triangular_tight ();
      Pv_kernels.Defs.gaussian ();
      Pv_kernels.Defs.running_max ();
    ]
  in
  Alcotest.run "sim_equiv"
    [
      ("paper kernels x registered backends", List.map kernel_case paper);
      ("stress kernels", List.map kernel_case stress);
      ( "under injected faults",
        [
          Alcotest.test_case "histogram" `Quick
            (test_faulted (Pv_kernels.Defs.histogram ()));
          Alcotest.test_case "running_max" `Quick
            (test_faulted (Pv_kernels.Defs.running_max ()));
        ] );
    ]
