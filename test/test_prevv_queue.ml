(* Tests for the premature queue (Sec. IV-B / Fig. 4): circular pointer
   behaviour, collapse on out-of-order retirement, and a FIFO-model
   property. *)

open Pv_prevv
module PQ = Premature_queue
module PM = Pv_memory.Portmap

let push q ?(kind = PM.OStore) ?(pos = 0) ?(port = 0) ?(index = 0) ?(value = 0)
    seq =
  ignore (PQ.push_exn q ~seq ~pos ~port ~kind ~index ~value)

let seqs q = List.map (fun e -> e.PQ.e_seq) (PQ.to_list q)

let test_empty_full () =
  let q = PQ.create 4 in
  Alcotest.(check bool) "empty" true (PQ.is_empty q);
  Alcotest.(check bool) "state" true (PQ.state q = `Empty);
  for s = 0 to 3 do push q s done;
  Alcotest.(check bool) "full" true (PQ.is_full q);
  Alcotest.(check bool) "state full" true (PQ.state q = `Full);
  Alcotest.check_raises "push on full" PQ.Full (fun () -> push q 4)

let test_fig4_states () =
  let q = PQ.create 8 in
  for s = 0 to 4 do push q s done;
  Alcotest.(check bool) "normal" true (PQ.state q = `Normal);
  PQ.retire_seq q ~seq:0;
  PQ.retire_seq q ~seq:1;
  PQ.retire_seq q ~seq:2;
  Alcotest.(check int) "head advanced" 3 q.PQ.head;
  for s = 5 to 9 do push q s done;
  Alcotest.(check bool) "wrapped" true (PQ.state q = `Wrapped);
  Alcotest.(check bool) "tail behind head" true (q.PQ.tail < q.PQ.head)

let test_arrival_order_preserved () =
  let q = PQ.create 8 in
  List.iter (push q) [ 5; 2; 7; 1 ];
  Alcotest.(check (list int)) "arrival order" [ 5; 2; 7; 1 ] (seqs q)

let test_collapse_reclaims_middle () =
  (* retire an entry that is NOT at the head: the slot must be reclaimed *)
  let q = PQ.create 4 in
  List.iter (push q) [ 10; 11; 12; 13 ];
  Alcotest.(check bool) "full before" true (PQ.is_full q);
  PQ.retire_seq q ~seq:12;
  Alcotest.(check int) "occupancy dropped" 3 (PQ.occupancy q);
  Alcotest.(check bool) "no longer full" true (not (PQ.is_full q));
  push q 14;
  Alcotest.(check (list int)) "order preserved after collapse" [ 10; 11; 13; 14 ]
    (seqs q)

let test_invalidate_from () =
  let q = PQ.create 8 in
  List.iter (push q) [ 1; 5; 2; 6; 3 ];
  PQ.invalidate_from q ~seq:4;
  Alcotest.(check (list int)) "only older survive" [ 1; 2; 3 ] (seqs q)

let test_retire_if_returns_entries () =
  let q = PQ.create 8 in
  push q ~kind:PM.OLoad ~port:3 4;
  push q ~kind:PM.OStore ~port:5 4;
  push q ~kind:PM.OLoad ~port:3 5;
  let retired = PQ.retire_if q (fun e -> e.PQ.e_kind = PM.OLoad) in
  Alcotest.(check int) "two loads retired" 2 (List.length retired);
  Alcotest.(check (list int)) "ports" [ 3; 3 ]
    (List.map (fun e -> e.PQ.e_port) retired);
  Alcotest.(check (list int)) "store remains" [ 4 ] (seqs q)

let test_wrap_stress () =
  (* continuous push/retire cycling through the buffer many times *)
  let q = PQ.create 5 in
  for s = 0 to 99 do
    push q s;
    if s >= 3 then PQ.retire_seq q ~seq:(s - 3)
  done;
  (* pushes 0..99, retires 0..96 *)
  Alcotest.(check (list int)) "last three remain" [ 97; 98; 99 ] (seqs q)

let test_wrapped_to_full () =
  (* Fig. 4 full transition sequence: Empty → Normal → Wrapped → Full,
     then drain back to Empty *)
  let q = PQ.create 4 in
  Alcotest.(check bool) "starts empty" true (PQ.state q = `Empty);
  List.iter (push q) [ 0; 1; 2 ];
  Alcotest.(check bool) "normal region" true (PQ.state q = `Normal);
  PQ.retire_seq q ~seq:0;
  PQ.retire_seq q ~seq:1;
  push q 3;
  (* head at slot 2, tail wrapped to 0: the live region crosses the end *)
  Alcotest.(check bool) "wrapped" true (PQ.state q = `Wrapped);
  Alcotest.(check bool) "tail wrapped past head" true (q.PQ.tail <= q.PQ.head);
  push q 4;
  Alcotest.(check bool) "still wrapped" true (PQ.state q = `Wrapped);
  push q 5;
  Alcotest.(check bool) "full" true (PQ.state q = `Full);
  Alcotest.(check bool) "is_full" true (PQ.is_full q);
  List.iter (fun s -> PQ.retire_seq q ~seq:s) [ 2; 3; 4; 5 ];
  Alcotest.(check bool) "drained to empty" true (PQ.state q = `Empty)

let test_retire_behind_live_frees_slots () =
  (* commits follow program order but arrival order differs: retiring the
     older seq sitting BEHIND a younger live one must still free capacity *)
  let q = PQ.create 3 in
  List.iter (push q) [ 7; 5; 6 ];
  Alcotest.(check bool) "full before" true (PQ.is_full q);
  (* 5 and 6 retire first (program order) though they arrived after 7 *)
  PQ.retire_seq q ~seq:5;
  PQ.retire_seq q ~seq:6;
  Alcotest.(check int) "two slots reclaimed" 1 (PQ.occupancy q);
  push q 8;
  push q 9;
  Alcotest.(check (list int)) "live entries in arrival order" [ 7; 8; 9 ]
    (seqs q)

let test_fragmentation_without_collapse () =
  (* the naive pointer queue (ablation): interior retirees keep their slots
     until the head passes them, so out-of-order retirement fragments the
     queue and admission backpressures while mostly-dead *)
  let q = PQ.create ~collapse:false 4 in
  List.iter (push q) [ 0; 1; 2; 3 ];
  PQ.retire_seq q ~seq:1;
  PQ.retire_seq q ~seq:2;
  (* only the head entry (seq 0) and seq 3 are live, yet nothing freed *)
  Alcotest.(check int) "interior retirees still occupy" 4 (PQ.occupancy q);
  Alcotest.(check bool) "still full (fragmented)" true (PQ.is_full q);
  Alcotest.(check bool) "push_opt backpressures" true
    (PQ.push_opt q ~seq:4 ~pos:0 ~port:0 ~kind:PM.OStore ~index:0 ~value:0
    = None);
  Alcotest.(check (list int)) "live view hides dead slots" [ 0; 3 ] (seqs q);
  (* once the head retires, it sweeps past the dead interior in one go *)
  PQ.retire_seq q ~seq:0;
  Alcotest.(check int) "head sweep reclaims the run" 1 (PQ.occupancy q);
  (* the collapsing queue frees the same slots immediately *)
  let c = PQ.create 4 in
  List.iter (push c) [ 0; 1; 2; 3 ];
  PQ.retire_seq c ~seq:1;
  PQ.retire_seq c ~seq:2;
  Alcotest.(check int) "collapse reclaims interior at once" 2 (PQ.occupancy c)

let test_push_opt () =
  let q = PQ.create 2 in
  let p seq =
    PQ.push_opt q ~seq ~pos:0 ~port:0 ~kind:PM.OStore ~index:0 ~value:0
  in
  Alcotest.(check bool) "first admitted" true (p 0 <> None);
  Alcotest.(check bool) "second admitted" true (p 1 <> None);
  Alcotest.(check bool) "full queue refuses without raising" true (p 2 = None);
  PQ.retire_seq q ~seq:0;
  Alcotest.(check bool) "admits again after retire" true (p 2 <> None)

let test_fault_hooks () =
  let q = PQ.create 8 in
  List.iteri (fun k s -> push q ~value:(100 + k) s) [ 4; 5; 6 ];
  (match PQ.nth_valid q 1 with
  | Some e ->
      Alcotest.(check int) "nth_valid picks arrival order" 5 e.PQ.e_seq;
      Alcotest.(check int) "value" 101 e.PQ.e_value
  | None -> Alcotest.fail "nth_valid 1 missing");
  Alcotest.(check bool) "nth_valid out of range" true (PQ.nth_valid q 5 = None);
  (* corrupt returns the ORIGINAL entry and leaves the flipped copy live *)
  (match PQ.corrupt q ~slot:1 ~mask:0xf with
  | Some e -> Alcotest.(check int) "corrupt returns original" 101 e.PQ.e_value
  | None -> Alcotest.fail "corrupt missed");
  (match PQ.nth_valid q 1 with
  | Some e -> Alcotest.(check int) "value flipped in place" (101 lxor 0xf) e.PQ.e_value
  | None -> Alcotest.fail "entry vanished after corrupt");
  Alcotest.(check int) "corrupt keeps occupancy" 3 (PQ.occupancy q);
  Alcotest.(check bool) "corrupt out of range" true
    (PQ.corrupt q ~slot:9 ~mask:1 = None);
  (* drop erases the record as if never made *)
  (match PQ.drop q ~slot:0 with
  | Some e -> Alcotest.(check int) "drop returns the lost entry" 4 e.PQ.e_seq
  | None -> Alcotest.fail "drop missed");
  Alcotest.(check (list int)) "record gone" [ 5; 6 ] (seqs q);
  Alcotest.(check bool) "drop out of range" true (PQ.drop q ~slot:9 = None)

let test_create_guard () =
  Alcotest.check_raises "zero depth"
    (Invalid_argument "Premature_queue.create: depth must be > 0") (fun () ->
      ignore (PQ.create 0))

(* property: the queue behaves like a list-based FIFO-with-removal model *)
let prop_matches_model =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun s -> `Push s) (int_range 0 50));
          (2, map (fun s -> `Retire s) (int_range 0 50));
          (1, map (fun s -> `InvalidateFrom s) (int_range 0 50));
        ])
  in
  QCheck.Test.make ~count:200 ~name:"queue matches FIFO-with-removal model"
    QCheck.(make Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let q = PQ.create 8 in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push s ->
              if List.length !model < 8 then begin
                push q s;
                model := !model @ [ s ]
              end
              else begin
                (try
                   push q s;
                   raise Exit
                 with PQ.Full -> ())
              end
          | `Retire s ->
              PQ.retire_seq q ~seq:s;
              model := List.filter (fun x -> x <> s) !model
          | `InvalidateFrom s ->
              PQ.invalidate_from q ~seq:s;
              model := List.filter (fun x -> x < s) !model)
        ops;
      seqs q = !model && PQ.occupancy q = List.length !model)

let () =
  Alcotest.run "pv_prevv_queue"
    [
      ( "queue",
        [
          Alcotest.test_case "empty/full" `Quick test_empty_full;
          Alcotest.test_case "Fig. 4 states" `Quick test_fig4_states;
          Alcotest.test_case "arrival order" `Quick test_arrival_order_preserved;
          Alcotest.test_case "collapse middle slot" `Quick
            test_collapse_reclaims_middle;
          Alcotest.test_case "invalidate_from" `Quick test_invalidate_from;
          Alcotest.test_case "retire_if" `Quick test_retire_if_returns_entries;
          Alcotest.test_case "wrap stress" `Quick test_wrap_stress;
          Alcotest.test_case "wrapped to full (Fig. 4)" `Quick
            test_wrapped_to_full;
          Alcotest.test_case "retire behind live frees slots" `Quick
            test_retire_behind_live_frees_slots;
          Alcotest.test_case "fragmentation without collapse" `Quick
            test_fragmentation_without_collapse;
          Alcotest.test_case "push_opt backpressure" `Quick test_push_opt;
          Alcotest.test_case "fault hooks" `Quick test_fault_hooks;
          Alcotest.test_case "create guard" `Quick test_create_guard;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
    ]
