(* The prevv serve request/response protocol and its delivery
   invariants: parse round-trips, every accepted line gets exactly one
   response ([lost = 0]) even with a worker killed mid-soak, parallel
   output is byte-identical to the serial replay, overload sheds
   explicitly instead of dropping, and identical in-flight requests share
   one computation. *)

open Pv_core

let quick_policy =
  {
    Supervisor.default_policy with
    Supervisor.base_delay_s = 0.0005;
    Supervisor.max_delay_s = 0.002;
  }

(* Run a fixed request list through the service, collecting responses. *)
let run_requests ?metrics config reqs =
  let remaining = ref (List.map Service.request_to_json reqs) in
  let next () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let out = Buffer.create 4096 in
  let summary =
    Service.run ?metrics config ~next ~emit:(fun line ->
        Buffer.add_string out line;
        Buffer.add_char out '\n')
  in
  (Buffer.contents out, summary)

(* Distinct max_cycles make every request its own computation: no
   dedupe, no cache reuse — each one must reach a worker. *)
let cold_requests n =
  List.init n (fun i ->
      Service.request
        ~id:(Printf.sprintf "r%04d" i)
        ~kernel:"gaussian" ~backend:"prevv16"
        ~max_cycles:(100_000 + i) ())

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_parse_round_trip () =
  let r =
    Service.request ~id:"r1" ~kernel:"histogram" ~backend:"fast_lsq"
      ~engine:Pv_dataflow.Sim.Scan ~max_cycles:1234 ~fault_seed:7 ()
  in
  match Service.parse_request (Service.request_to_json r) with
  | Ok r' ->
      Alcotest.(check bool) "round-trips" true (r = r');
      Alcotest.(check string) "same key" (Service.request_key r)
        (Service.request_key r')
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_parse_defaults_and_errors () =
  (match Service.parse_request {|{"id":"a","kernel":"matvec","backend":"prevv16"}|} with
  | Ok r ->
      Alcotest.(check bool) "engine defaults to event" true
        (r.Service.engine = Pv_dataflow.Sim.Event);
      Alcotest.(check bool) "optionals default to None" true
        (r.Service.max_cycles = None && r.Service.fault_seed = None)
  | Error e -> Alcotest.failf "minimal request rejected: %s" e);
  List.iter
    (fun (name, line) ->
      match Service.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not parse" name)
    [
      ("missing kernel", {|{"id":"a","backend":"prevv16"}|});
      ("ill-typed id", {|{"id":3,"kernel":"matvec","backend":"prevv16"}|});
      ("bad engine", {|{"id":"a","kernel":"matvec","backend":"prevv16","engine":"warp"}|});
      ("not json", "nonsense");
    ]

let test_request_key_ignores_id () =
  let a = Service.request ~id:"a" ~kernel:"matvec" ~backend:"prevv16" () in
  let b = Service.request ~id:"b" ~kernel:"matvec" ~backend:"prevv16" () in
  let c = Service.request ~id:"a" ~kernel:"matvec" ~backend:"prevv64" () in
  Alcotest.(check string) "id not part of the key" (Service.request_key a)
    (Service.request_key b);
  Alcotest.(check bool) "backend is" true
    (Service.request_key a <> Service.request_key c)

(* ------------------------------------------------------------------ *)
(* Delivery invariants                                                 *)
(* ------------------------------------------------------------------ *)

let test_soak_kill_zero_lost () =
  (* a worker killed mid-soak: its request is requeued, the replacement
     recomputes it, and the output is still byte-identical to the serial
     replay of the same stream *)
  let n = 60 in
  let reqs = cold_requests n in
  let config jobs kill_at =
    {
      Service.default_config with
      Service.jobs;
      Service.queue_capacity = 2 * n;  (* unoverflowable: no sheds *)
      Service.policy = quick_policy;
      Service.kill_at;
    }
  in
  let out_par, s_par = run_requests (config 2 [ n / 2 ]) reqs in
  Alcotest.(check int) "received" n s_par.Service.received;
  Alcotest.(check int) "responded = received" n s_par.Service.responded;
  Alcotest.(check int) "zero lost" 0 s_par.Service.lost;
  Alcotest.(check int) "no duplicates" n
    (List.length (String.split_on_char '\n' (String.trim out_par)));
  Alcotest.(check int) "the injected kill fired" 1 s_par.Service.worker_kills;
  Alcotest.(check bool) "replacement worker spawned" true
    (s_par.Service.respawns >= 1);
  Alcotest.(check int) "nothing shed" 0 s_par.Service.shed;
  let out_ser, s_ser = run_requests (config 1 []) reqs in
  Alcotest.(check int) "serial zero lost" 0 s_ser.Service.lost;
  Alcotest.(check string) "byte-identical to serial replay" out_ser out_par

let test_overload_sheds_explicitly () =
  (* far more cold requests than a tiny queue can hold: the excess is
     shed with an explicit overloaded response, never silently *)
  let n = 30 in
  let config =
    {
      Service.default_config with
      Service.jobs = 2;
      Service.queue_capacity = 2;
      Service.policy = quick_policy;
    }
  in
  let out, s = run_requests config (cold_requests n) in
  Alcotest.(check int) "received" n s.Service.received;
  Alcotest.(check int) "responded = received" n s.Service.responded;
  Alcotest.(check int) "zero lost" 0 s.Service.lost;
  Alcotest.(check bool) "overload actually shed" true (s.Service.shed > 0);
  let shed_lines =
    List.filter
      (fun l -> l <> "" &&
        (match Pv_obs.Json.parse l with
        | Ok j ->
            Option.bind (Pv_obs.Json.member "status" j)
              Pv_obs.Json.to_string_opt
            = Some "overloaded"
        | Error _ -> false))
      (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "every shed visible as a response line"
    s.Service.shed (List.length shed_lines);
  (* every shed carries backoff advice derived from the live queue *)
  List.iter
    (fun l ->
      match Pv_obs.Json.parse l with
      | Ok j -> (
          match
            Option.bind
              (Pv_obs.Json.member "retry_after_ms" j)
              Pv_obs.Json.to_int_opt
          with
          | Some ms ->
              Alcotest.(check bool) "retry_after_ms is positive" true (ms >= 1)
          | None -> Alcotest.failf "shed line lacks retry_after_ms: %s" l)
      | Error e -> Alcotest.failf "shed line unparseable: %s" e)
    shed_lines

let test_dedup_in_flight () =
  (* identical requests (same key, different ids) share one computation;
     each still gets its own response line with its own id *)
  let n = 12 in
  let reqs =
    List.init n (fun i ->
        Service.request
          ~id:(Printf.sprintf "dup%02d" i)
          ~kernel:"matvec" ~backend:"prevv16" ~max_cycles:123_457 ())
  in
  let config =
    {
      Service.default_config with
      Service.jobs = 2;
      Service.queue_capacity = 2 * n;
      Service.policy = quick_policy;
    }
  in
  let out, s = run_requests config reqs in
  Alcotest.(check int) "responded = received" n s.Service.responded;
  Alcotest.(check int) "zero lost" 0 s.Service.lost;
  Alcotest.(check bool) "in-flight dedupe engaged" true (s.Service.dedup_hits > 0);
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one line per request" n (List.length lines);
  List.iteri
    (fun i line ->
      match Pv_obs.Json.parse line with
      | Ok j ->
          Alcotest.(check (option string))
            (Printf.sprintf "line %d carries its own id" i)
            (Some (Printf.sprintf "dup%02d" i))
            (Option.bind (Pv_obs.Json.member "id" j) Pv_obs.Json.to_string_opt)
      | Error e -> Alcotest.failf "line %d unparseable: %s" i e)
    lines;
  (* every body (id aside) is identical: strip the id by re-parsing *)
  match lines with
  | first :: rest ->
      let body l =
        match Pv_obs.Json.parse l with
        | Ok j ->
            Option.map Pv_obs.Json.to_string (Pv_obs.Json.member "result" j)
        | Error _ -> None
      in
      Alcotest.(check bool) "responses carry a result" true (body first <> None);
      List.iter
        (fun l ->
          Alcotest.(check (option string)) "same result in every body"
            (body first) (body l))
        rest
  | [] -> Alcotest.fail "no output"

let test_error_and_bad_lines () =
  (* unknown kernel => error response; non-JSON => bad_request; both
     still counted and answered *)
  let lines =
    ref
      [
        Service.request_to_json
          (Service.request ~id:"good" ~kernel:"matvec" ~backend:"prevv16" ());
        {|{"id":"ghost","kernel":"nope","backend":"prevv16"}|};
        "not json at all";
      ]
  in
  let next () =
    match !lines with [] -> None | l :: r -> lines := r; Some l
  in
  let out = Buffer.create 256 in
  let s =
    Service.run
      { Service.default_config with Service.policy = quick_policy }
      ~next
      ~emit:(fun l -> Buffer.add_string out l; Buffer.add_char out '\n')
  in
  Alcotest.(check int) "received" 3 s.Service.received;
  Alcotest.(check int) "responded" 3 s.Service.responded;
  Alcotest.(check int) "ok" 1 s.Service.ok;
  Alcotest.(check int) "errors" 1 s.Service.errors;
  Alcotest.(check int) "bad_requests" 1 s.Service.bad_requests;
  Alcotest.(check int) "zero lost" 0 s.Service.lost;
  let statuses =
    List.filter_map
      (fun l ->
        if l = "" then None
        else
          match Pv_obs.Json.parse l with
          | Ok j -> Option.bind (Pv_obs.Json.member "status" j) Pv_obs.Json.to_string_opt
          | Error _ -> None)
      (String.split_on_char '\n' (Buffer.contents out))
  in
  Alcotest.(check (list string)) "statuses in arrival order"
    [ "ok"; "error"; "bad_request" ] statuses

let test_stats_frames () =
  (* [{"op":"stats"}] control lines are answered out-of-band with a
     stats frame and never counted as requests; each frame satisfies the
     conservation identity received = responded + shed + errors +
     in_flight (every received request is in exactly one state) *)
  let reqs = List.map Service.request_to_json (cold_requests 6) in
  let stats_line = {|{"op":"stats"}|} in
  let remaining =
    ref ((stats_line :: List.concat_map (fun r -> [ r; stats_line ]) reqs))
  in
  let next () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let out = Buffer.create 4096 in
  let s =
    Service.run
      {
        Service.default_config with
        Service.jobs = 2;
        Service.queue_capacity = 16;
        Service.policy = quick_policy;
      }
      ~next
      ~emit:(fun l -> Buffer.add_string out l; Buffer.add_char out '\n')
  in
  Alcotest.(check int) "stats lines not counted as requests" 6
    s.Service.received;
  Alcotest.(check int) "zero lost" 0 s.Service.lost;
  let frames =
    List.filter_map
      (fun l ->
        if l = "" then None
        else
          match Pv_obs.Json.parse l with
          | Ok j
            when Option.bind (Pv_obs.Json.member "type" j)
                   Pv_obs.Json.to_string_opt
                 = Some "stats" ->
              Some j
          | _ -> None)
      (String.split_on_char '\n' (Buffer.contents out))
  in
  Alcotest.(check int) "one frame per control line" 7 (List.length frames);
  List.iteri
    (fun i j ->
      let field name =
        match
          Option.bind (Pv_obs.Json.member name j) Pv_obs.Json.to_int_opt
        with
        | Some v -> v
        | None -> Alcotest.failf "frame %d lacks %s" i name
      in
      Alcotest.(check int)
        (Printf.sprintf
           "frame %d: received = responded + shed + errors + in_flight" i)
        (field "received")
        (field "responded" + field "shed" + field "errors"
        + field "in_flight"))
    frames;
  match List.rev frames with
  | last :: _ ->
      Alcotest.(check (option int)) "final frame saw every request" (Some 6)
        (Option.bind (Pv_obs.Json.member "received" last)
           Pv_obs.Json.to_int_opt)
  | [] -> Alcotest.fail "no stats frames"

let test_summary_json_well_formed () =
  let _, s =
    run_requests
      { Service.default_config with Service.policy = quick_policy }
      (cold_requests 3)
  in
  match Pv_obs.Json.parse (Pv_obs.Json.to_string (Service.summary_to_json s)) with
  | Ok j ->
      Alcotest.(check (option int)) "summary.received" (Some 3)
        (Option.bind (Pv_obs.Json.member "received" j) Pv_obs.Json.to_int_opt);
      Alcotest.(check (option int)) "summary.lost" (Some 0)
        (Option.bind (Pv_obs.Json.member "lost" j) Pv_obs.Json.to_int_opt)
  | Error e -> Alcotest.failf "summary json unparseable: %s" e

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse round-trip" `Quick test_parse_round_trip;
          Alcotest.test_case "defaults and parse errors" `Quick
            test_parse_defaults_and_errors;
          Alcotest.test_case "request key ignores id" `Quick
            test_request_key_ignores_id;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "kill mid-soak, zero lost, serial-identical"
            `Quick test_soak_kill_zero_lost;
          Alcotest.test_case "overload sheds explicitly" `Quick
            test_overload_sheds_explicitly;
          Alcotest.test_case "in-flight dedupe" `Quick test_dedup_in_flight;
          Alcotest.test_case "error and bad lines answered" `Quick
            test_error_and_bad_lines;
          Alcotest.test_case "summary json" `Quick test_summary_json_well_formed;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats frames conserve request states" `Quick
            test_stats_frames;
        ] );
    ]
