(* The scheme registry: name round-trips (the one parser shared by CLI and
   bench), fingerprint distinctness (the cache-key component), registry
   behaviour, the grep-enforced "no backend match outside the adapter
   module" rule, and the differential harness's acceptance criterion —
   oracle <= prevv <= dynamatic <= serial on every paper kernel. *)

open Pv_core

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n > 0 && go 0

(* ------------------------------------------------------------------ *)
(* Name round-trips                                                    *)
(* ------------------------------------------------------------------ *)

let canonical_gen =
  QCheck.Gen.(
    oneof
      [
        return Pipeline.plain_lsq;
        return Pipeline.fast_lsq;
        return Pipeline.oracle;
        return Pipeline.serial;
        map (fun d -> Pipeline.prevv d) (int_range 1 512);
      ])

let canonical_arb =
  QCheck.make ~print:Scheme.to_string canonical_gen

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"of_string (to_string d) = Ok d"
    canonical_arb (fun d -> Scheme.of_string (Scheme.to_string d) = Ok d)

let registry_roundtrip () =
  List.iter
    (fun (module M : Scheme.S) ->
      Alcotest.(check bool)
        (M.name ^ " round-trips")
        true
        (Scheme.of_string M.name = Ok M.config);
      Alcotest.(check string)
        (M.name ^ " = to_string config")
        M.name
        (Scheme.to_string M.config))
    (Scheme.all ())

let bogus_names () =
  List.iter
    (fun s ->
      match Scheme.of_string s with
      | Ok _ -> Alcotest.failf "bogus backend name %S parsed" s
      | Error msg ->
          (* the error must teach: it lists the known names *)
          List.iter
            (fun known ->
              if not (contains ~needle:known msg) then
                Alcotest.failf "error for %S does not mention %S: %s" s known
                  msg)
            [ "dynamatic"; "prevv"; "oracle"; "serial" ])
    [ ""; "lsq"; "prevv0"; "prevv-1"; "prevvx"; "oracle2"; "PREVV16"; "-b" ]

let aliases () =
  Alcotest.(check bool)
    "plain-lsq alias" true
    (Scheme.of_string "plain-lsq" = Ok Pipeline.plain_lsq);
  Alcotest.(check bool)
    "bare prevv means the paper's default depth" true
    (Scheme.of_string "prevv" = Ok (Pipeline.prevv 16))

(* ------------------------------------------------------------------ *)
(* Fingerprints and the registry                                       *)
(* ------------------------------------------------------------------ *)

let fingerprints_distinct () =
  let configs =
    List.map (fun (module M : Scheme.S) -> M.config) (Scheme.all ())
    @ List.init 8 (fun i -> Pipeline.prevv (1 lsl i))
  in
  let prints =
    List.map (fun d -> (Scheme.to_string d, Scheme.fingerprint_of d)) configs
  in
  List.iteri
    (fun i (n1, f1) ->
      List.iteri
        (fun j (n2, f2) ->
          if i < j && n1 <> n2 && f1 = f2 then
            Alcotest.failf "fingerprint collision: %s and %s -> %s" n1 n2 f1)
        prints)
    prints;
  (* and stable: the cache key must not drift between invocations *)
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Scheme.to_string d ^ " fingerprint stable")
        (Scheme.fingerprint_of d) (Scheme.fingerprint_of d))
    configs

let registry_shape () =
  let names = List.map (fun (module M : Scheme.S) -> M.name) (Scheme.all ()) in
  Alcotest.(check (list string))
    "registration order"
    [ "dynamatic"; "fast-lsq"; "prevv16"; "prevv64"; "oracle"; "serial" ]
    names;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " family registered") true
        (Scheme.lookup f <> None))
    [ "dynamatic"; "fast-lsq"; "prevv"; "oracle"; "serial" ];
  (* duplicate family keys are a programming error, refused loudly *)
  match
    Scheme.register
      {
        Scheme.f_name = "prevv";
        f_doc = "dup";
        f_parse = (fun _ -> None);
        f_defaults = [];
      }
  with
  | () -> Alcotest.fail "duplicate family registration accepted"
  | exception Invalid_argument _ -> ()

let descriptions () =
  List.iter
    (fun (module M : Scheme.S) ->
      if String.length M.description < 10 then
        Alcotest.failf "%s: description too short for the README table"
          M.name)
    (Scheme.all ())

(* ------------------------------------------------------------------ *)
(* Grep enforcement: no backend match arms outside the adapter module   *)
(* ------------------------------------------------------------------ *)

(* Tests run under _build/default/test; walk up to the checkout root. *)
let rec source_root dir =
  if Sys.file_exists (Filename.concat dir "lib/core/scheme.ml") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else source_root parent

let rec ml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_files path
         else if
           Filename.check_suffix entry ".ml"
           || Filename.check_suffix entry ".mli"
         then [ path ]
         else [])

let no_backend_match_outside_adapters () =
  match source_root (Sys.getcwd ()) with
  | None ->
      (* outside a checkout (e.g. an installed test binary): nothing to scan *)
      print_endline "source tree not found; skipping scan"
  | Some root ->
      let allow =
        [ "lib/core/scheme.ml"; "lib/core/scheme.mli"; "lib/core/pipeline.mli" ]
        |> List.map (Filename.concat root)
      in
      let constructors =
        [ "Plain_lsq"; "Fast_lsq"; "Prevv"; "Oracle"; "Serial";
          "backend_handle"; "Lsq_handle"; "Prevv_handle" ]
      in
      let offenders = ref [] in
      List.iter
        (fun sub ->
          let dir = Filename.concat root sub in
          if Sys.file_exists dir then
            List.iter
              (fun file ->
                if not (List.mem file allow) then begin
                  let ic = open_in file in
                  let lineno = ref 0 in
                  (try
                     while true do
                       let line = input_line ic in
                       incr lineno;
                       let t = String.trim line in
                       (* a match arm: leading "|", naming a backend
                          constructor; " of " exempts variant declarations
                          (the re-exported type equation) *)
                       if
                         String.length t > 0
                         && t.[0] = '|'
                         && (not (contains ~needle:" of " t))
                         && List.exists
                              (fun c -> contains ~needle:c t)
                              constructors
                       then
                         offenders :=
                           Printf.sprintf "%s:%d: %s" file !lineno t
                           :: !offenders
                     done
                   with End_of_file -> ());
                  close_in ic
                end)
              (ml_files dir))
        [ "lib"; "bin"; "bench"; "test"; "examples" ];
      match !offenders with
      | [] -> ()
      | o ->
          Alcotest.failf
            "backend match arms outside the scheme adapter module:\n%s"
            (String.concat "\n" (List.rev o))

(* ------------------------------------------------------------------ *)
(* Differential acceptance: the bound chain on every paper kernel       *)
(* ------------------------------------------------------------------ *)

let differential_paper_kernels () =
  List.iter
    (fun kernel ->
      let r = Differential.run kernel in
      if not (Differential.ok r) then
        Alcotest.failf "differential harness failed:@\n%a" Differential.pp r)
    (Pv_kernels.Defs.paper_benchmarks ())

let () =
  Alcotest.run "scheme"
    [
      ( "names",
        [
          QCheck_alcotest.to_alcotest roundtrip;
          Alcotest.test_case "registry names round-trip" `Quick
            registry_roundtrip;
          Alcotest.test_case "bogus names rejected" `Quick bogus_names;
          Alcotest.test_case "aliases" `Quick aliases;
        ] );
      ( "registry",
        [
          Alcotest.test_case "fingerprints distinct & stable" `Quick
            fingerprints_distinct;
          Alcotest.test_case "registration order & duplicates" `Quick
            registry_shape;
          Alcotest.test_case "descriptions usable" `Quick descriptions;
        ] );
      ( "encapsulation",
        [
          Alcotest.test_case "no match on backends outside adapters" `Quick
            no_backend_match_outside_adapters;
        ] );
      ( "bound chain",
        [
          Alcotest.test_case "oracle <= prevv <= dynamatic <= serial" `Quick
            differential_paper_kernels;
        ] );
    ]
